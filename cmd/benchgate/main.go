// Command benchgate is the CI bench-regression gate: it parses `go test
// -bench` output, compares each variant's best ns/op against the recorded
// baseline in BENCH_topology.json, and exits non-zero when any variant
// regressed by more than the allowed fraction.
//
// Usage:
//
//	go test -run='^$' -bench BenchmarkDeepTopology -benchtime=3x -count=3 \
//	    ./internal/fleet | tee bench.out
//	go run ./cmd/benchgate -bench bench.out -baseline BENCH_topology.json
//
// The best (minimum) ns/op across the -count repetitions is compared, not
// the mean: CI runners are noisy upward — a process getting descheduled
// slows an iteration, nothing speeds one up — so the minimum is the
// lowest-noise estimate of the true cost.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// baselineFile mirrors the BENCH_topology.json schema (the fields the
// gate needs; the file carries more context for humans).
type baselineFile struct {
	Benchmark string                    `json:"benchmark"`
	Results   map[string]baselineResult `json:"results"`
}

type baselineResult struct {
	NsPerOp float64 `json:"ns_per_op"`
}

// parseBench extracts per-variant best ns/op from `go test -bench`
// output. A line looks like:
//
//	BenchmarkDeepTopology/indexed-8   3   376112306 ns/op   79768 frames/run
//
// The variant is the path segment after the benchmark name, with the
// trailing -GOMAXPROCS suffix stripped; a benchmark with no sub-benchmarks
// gets the variant "" .
func parseBench(r io.Reader, benchmark string) (map[string]float64, error) {
	best := map[string]float64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], benchmark) {
			continue
		}
		ns := -1.0
		for i := 2; i < len(fields); i++ {
			if fields[i] == "ns/op" {
				v, err := strconv.ParseFloat(fields[i-1], 64)
				if err != nil {
					return nil, fmt.Errorf("benchgate: bad ns/op in %q: %w", sc.Text(), err)
				}
				ns = v
				break
			}
		}
		if ns < 0 {
			continue
		}
		variant := strings.TrimPrefix(fields[0], benchmark)
		variant = strings.TrimPrefix(variant, "/")
		// Strip only a trailing -GOMAXPROCS suffix (absent at
		// GOMAXPROCS=1): a hyphen inside the variant name itself must
		// survive.
		if i := strings.LastIndex(variant, "-"); i >= 0 && i < len(variant)-1 {
			if _, err := strconv.Atoi(variant[i+1:]); err == nil {
				variant = variant[:i]
			}
		}
		if cur, ok := best[variant]; !ok || ns < cur {
			best[variant] = ns
		}
	}
	return best, sc.Err()
}

// gate compares measured variants against the baseline and returns one
// line per variant plus an error naming every regression beyond
// maxRegress (a fraction: 0.30 allows +30%).
func gate(baseline baselineFile, measured map[string]float64, maxRegress float64) ([]string, error) {
	variants := make([]string, 0, len(baseline.Results))
	for v := range baseline.Results {
		variants = append(variants, v)
	}
	sort.Strings(variants)
	var report []string
	var failures []string
	for _, variant := range variants {
		base := baseline.Results[variant]
		got, ok := measured[variant]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: not measured", variant))
			continue
		}
		ratio := got / base.NsPerOp
		line := fmt.Sprintf("%-10s baseline %12.0f ns/op  measured %12.0f ns/op  ratio %.2fx (limit %.2fx)",
			variant, base.NsPerOp, got, ratio, 1+maxRegress)
		report = append(report, line)
		if ratio > 1+maxRegress {
			failures = append(failures, fmt.Sprintf("%s: %.2fx over baseline (limit %.2fx)",
				variant, ratio, 1+maxRegress))
		}
	}
	if len(failures) > 0 {
		return report, fmt.Errorf("bench regression: %s", strings.Join(failures, "; "))
	}
	return report, nil
}

func run(benchPath, baselinePath string, maxRegress float64, out io.Writer) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var baseline baselineFile
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return fmt.Errorf("benchgate: %s: %w", baselinePath, err)
	}
	if baseline.Benchmark == "" || len(baseline.Results) == 0 {
		return fmt.Errorf("benchgate: %s carries no baseline results", baselinePath)
	}
	f, err := os.Open(benchPath)
	if err != nil {
		return err
	}
	defer f.Close()
	measured, err := parseBench(f, baseline.Benchmark)
	if err != nil {
		return err
	}
	report, gateErr := gate(baseline, measured, maxRegress)
	fmt.Fprintf(out, "benchgate: %s vs %s\n", baseline.Benchmark, baselinePath)
	for _, line := range report {
		fmt.Fprintln(out, "  "+line)
	}
	return gateErr
}

func main() {
	bench := flag.String("bench", "bench.out", "go test -bench output to check")
	baseline := flag.String("baseline", "BENCH_topology.json", "recorded baseline JSON")
	maxRegress := flag.Float64("max-regress", 0.30, "allowed ns/op regression fraction over baseline")
	flag.Parse()
	if err := run(*bench, *baseline, *maxRegress, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
