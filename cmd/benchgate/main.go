// Command benchgate is the CI bench-regression gate: it parses `go test
// -bench` output, compares each variant's best ns/op — and, where the
// baseline records them, allocs/op — against the recorded baseline in
// BENCH_topology.json, and exits non-zero when any variant regressed by
// more than the allowed fraction.
//
// Usage:
//
//	go test -run='^$' -bench 'BenchmarkDeepTopology|BenchmarkHugeFleet' \
//	    -benchtime=3x -count=3 ./internal/fleet | tee bench.out
//	go run ./cmd/benchgate -bench bench.out -baseline BENCH_topology.json
//
// The best (minimum) value across the -count repetitions is compared, not
// the mean: CI runners are noisy upward — a process getting descheduled
// slows an iteration, nothing speeds one up — so the minimum is the
// lowest-noise estimate of the true cost. The same logic covers the alloc
// counters (allocations only spuriously go up, e.g. via testing overhead
// on a short run).
//
// The baseline file carries a "benchmarks" map keyed by benchmark name;
// the legacy single-benchmark form ("benchmark" + "results" at top level)
// still loads. Baseline entries without alloc fields gate on ns/op alone,
// so re-recording allocations is opt-in per benchmark.
//
// With -update the gate runs in reverse: the bench output's best values
// are written back into the baseline file (ns/op always; B/op and
// allocs/op when measured), the "recorded" date is stamped, and every
// hand-written field — descriptions, scenario shapes, history, notes —
// is preserved. A new benchmark lands by adding a skeleton entry with an
// empty "results" object and running -update.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// baselineFile mirrors the BENCH_topology.json schema (the fields the
// gate needs; the file carries more context for humans). Benchmarks is
// the current multi-benchmark form; Benchmark/Results is the legacy
// single-benchmark layout, still accepted.
type baselineFile struct {
	Benchmark  string                    `json:"benchmark,omitempty"`
	Results    map[string]baselineResult `json:"results,omitempty"`
	Benchmarks map[string]baselineBench  `json:"benchmarks,omitempty"`
}

type baselineBench struct {
	Results map[string]baselineResult `json:"results"`
}

// baselineResult is one variant's recorded cost. AllocsPerOp is a pointer
// so a baseline recorded before alloc tracking simply lacks the field and
// is gated on time alone.
type baselineResult struct {
	NsPerOp     float64  `json:"ns_per_op"`
	BPerOp      float64  `json:"b_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// benches returns the baseline's benchmark map, lifting the legacy
// single-benchmark layout into it.
func (b *baselineFile) benches() map[string]baselineBench {
	if len(b.Benchmarks) > 0 {
		return b.Benchmarks
	}
	if b.Benchmark != "" && len(b.Results) > 0 {
		return map[string]baselineBench{b.Benchmark: {Results: b.Results}}
	}
	return nil
}

// measurement is one variant's best observed cost across repetitions.
// The alloc fields are only meaningful when hasAllocs is set (the
// benchmark ran with b.ReportAllocs() or -benchmem).
type measurement struct {
	nsPerOp     float64
	bPerOp      float64
	allocsPerOp float64
	hasAllocs   bool
}

// metric extracts the value labelled unit from a benchmark output line's
// fields ("376112306 ns/op" → 376112306), or ok=false.
func metric(fields []string, unit string) (float64, bool, error) {
	for i := 2; i < len(fields); i++ {
		if fields[i] == unit {
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				return 0, false, fmt.Errorf("benchgate: bad %s in %q: %w", unit, strings.Join(fields, " "), err)
			}
			return v, true, nil
		}
	}
	return 0, false, nil
}

// splitVariant matches a benchmark-output name (fields[0]) against the
// configured benchmark names, longest name first, and returns the
// matched benchmark and the variant: the path segment after the name,
// with the trailing -GOMAXPROCS suffix stripped. A benchmark with no
// sub-benchmarks gets the variant "".
func splitVariant(name string, benchmarks []string) (string, string, bool) {
	for _, bench := range benchmarks {
		if !strings.HasPrefix(name, bench) {
			continue
		}
		variant := strings.TrimPrefix(name, bench)
		// The name must end exactly at a boundary: a sub-benchmark slash,
		// a -GOMAXPROCS suffix, or the end — "BenchmarkHuge" must not
		// claim "BenchmarkHugeFleet" lines.
		if variant != "" && variant[0] != '/' && variant[0] != '-' {
			continue
		}
		variant = strings.TrimPrefix(variant, "/")
		// Strip only a trailing -GOMAXPROCS suffix (absent at
		// GOMAXPROCS=1): a hyphen inside the variant name itself must
		// survive.
		if i := strings.LastIndex(variant, "-"); i >= 0 && i < len(variant)-1 {
			if _, err := strconv.Atoi(variant[i+1:]); err == nil {
				variant = variant[:i]
			}
		}
		return bench, variant, true
	}
	return "", "", false
}

// parseBench extracts per-benchmark, per-variant best measurements from
// `go test -bench` output. A line looks like:
//
//	BenchmarkDeepTopology/indexed-8   3   376112306 ns/op   5801064 B/op   384 allocs/op
//
// Each metric takes its minimum across repetitions independently.
func parseBench(r io.Reader, benchmarks []string) (map[string]map[string]measurement, error) {
	// Longest benchmark name first so the most specific prefix wins.
	ordered := append([]string(nil), benchmarks...)
	sort.Slice(ordered, func(i, j int) bool { return len(ordered[i]) > len(ordered[j]) })
	best := map[string]map[string]measurement{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 {
			continue
		}
		bench, variant, ok := splitVariant(fields[0], ordered)
		if !ok {
			continue
		}
		ns, ok, err := metric(fields, "ns/op")
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		bytesOp, _, err := metric(fields, "B/op")
		if err != nil {
			return nil, err
		}
		allocs, hasAllocs, err := metric(fields, "allocs/op")
		if err != nil {
			return nil, err
		}
		if best[bench] == nil {
			best[bench] = map[string]measurement{}
		}
		cur, seen := best[bench][variant]
		if !seen {
			best[bench][variant] = measurement{nsPerOp: ns, bPerOp: bytesOp, allocsPerOp: allocs, hasAllocs: hasAllocs}
			continue
		}
		if ns < cur.nsPerOp {
			cur.nsPerOp = ns
		}
		if hasAllocs {
			if !cur.hasAllocs || allocs < cur.allocsPerOp {
				cur.allocsPerOp = allocs
			}
			if !cur.hasAllocs || bytesOp < cur.bPerOp {
				cur.bPerOp = bytesOp
			}
			cur.hasAllocs = true
		}
		best[bench][variant] = cur
	}
	return best, sc.Err()
}

// gate compares one benchmark's measured variants against its baseline
// and returns one line per gated metric plus an error naming every
// regression beyond maxRegress (a fraction: 0.30 allows +30%).
func gate(bench string, baseline baselineBench, measured map[string]measurement, maxRegress float64) ([]string, error) {
	variants := make([]string, 0, len(baseline.Results))
	for v := range baseline.Results {
		variants = append(variants, v)
	}
	sort.Strings(variants)
	var report []string
	var failures []string
	label := func(variant string) string {
		if variant == "" {
			return bench
		}
		return bench + "/" + variant
	}
	for _, variant := range variants {
		base := baseline.Results[variant]
		got, ok := measured[variant]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: not measured", label(variant)))
			continue
		}
		ratio := got.nsPerOp / base.NsPerOp
		line := fmt.Sprintf("%-34s baseline %12.0f ns/op  measured %12.0f ns/op  ratio %.2fx (limit %.2fx)",
			label(variant), base.NsPerOp, got.nsPerOp, ratio, 1+maxRegress)
		report = append(report, line)
		if ratio > 1+maxRegress {
			failures = append(failures, fmt.Sprintf("%s: %.2fx over baseline (limit %.2fx)",
				label(variant), ratio, 1+maxRegress))
		}
		if base.AllocsPerOp == nil {
			continue
		}
		if !got.hasAllocs {
			failures = append(failures, fmt.Sprintf("%s: allocs/op not measured (baseline records %.0f)",
				label(variant), *base.AllocsPerOp))
			continue
		}
		aratio := got.allocsPerOp / *base.AllocsPerOp
		report = append(report, fmt.Sprintf("%-34s baseline %12.0f allocs/op  measured %9.0f allocs/op  ratio %.2fx (limit %.2fx)",
			label(variant), *base.AllocsPerOp, got.allocsPerOp, aratio, 1+maxRegress))
		if aratio > 1+maxRegress {
			failures = append(failures, fmt.Sprintf("%s: %.2fx allocs/op over baseline (limit %.2fx)",
				label(variant), aratio, 1+maxRegress))
		}
		// B/op rides the same opt-in: recorded bytes are gated too, so an
		// allocation-count-neutral size blowup cannot slip through.
		if base.BPerOp <= 0 {
			continue
		}
		bratio := got.bPerOp / base.BPerOp
		report = append(report, fmt.Sprintf("%-34s baseline %12.0f B/op       measured %9.0f B/op       ratio %.2fx (limit %.2fx)",
			label(variant), base.BPerOp, got.bPerOp, bratio, 1+maxRegress))
		if bratio > 1+maxRegress {
			failures = append(failures, fmt.Sprintf("%s: %.2fx B/op over baseline (limit %.2fx)",
				label(variant), bratio, 1+maxRegress))
		}
	}
	if len(failures) > 0 {
		return report, fmt.Errorf("bench regression: %s", strings.Join(failures, "; "))
	}
	return report, nil
}

// timeNow stamps the "recorded" field on -update; a variable so tests can
// pin the date.
var timeNow = time.Now

// updateBaseline rewrites the measured metrics in the baseline file from a
// fresh `go test -bench` run: every recorded variant's ns_per_op — plus
// b_per_op and allocs_per_op when the run reports them — is replaced by
// the run's best (minimum) value, the top-level "recorded" date is
// stamped, and every human-facing field (descriptions, scenario shapes,
// history, notes) is carried through untouched. Variants measured in the
// run but absent from a recorded benchmark's results are added bare, so a
// new benchmark lands by writing a skeleton entry and running -update.
// Recorded variants the run did not measure keep their old numbers, with
// a warning — refreshing a subset is legitimate (a narrower -bench regex),
// silently aging the rest is not.
func updateBaseline(benchPath, baselinePath string, out io.Writer) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	// The generic document keeps every field the gate's typed view ignores;
	// json.Number keeps the untouched metrics byte-exact.
	var doc map[string]any
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("benchgate: %s: %w", baselinePath, err)
	}
	var baseline baselineFile
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return fmt.Errorf("benchgate: %s: %w", baselinePath, err)
	}
	benches := baseline.benches()
	if len(benches) == 0 {
		return fmt.Errorf("benchgate: %s carries no baseline results", baselinePath)
	}
	names := make([]string, 0, len(benches))
	for name := range benches {
		names = append(names, name)
	}
	sort.Strings(names)
	f, err := os.Open(benchPath)
	if err != nil {
		return err
	}
	measured, err := parseBench(f, names)
	f.Close()
	if err != nil {
		return err
	}

	// results locates one benchmark's results object inside the generic
	// document, for both the multi-benchmark and legacy layouts.
	results := func(bench string) map[string]any {
		if all, ok := doc["benchmarks"].(map[string]any); ok {
			if entry, ok := all[bench].(map[string]any); ok {
				res, ok := entry["results"].(map[string]any)
				if !ok {
					res = map[string]any{}
					entry["results"] = res
				}
				return res
			}
			return nil
		}
		if res, ok := doc["results"].(map[string]any); ok {
			return res
		}
		return nil
	}
	num := func(v float64) json.Number {
		return json.Number(strconv.FormatFloat(v, 'f', -1, 64))
	}
	for _, bench := range names {
		res := results(bench)
		if res == nil {
			return fmt.Errorf("benchgate: %s: cannot locate results for %s", baselinePath, bench)
		}
		variants := make([]string, 0, len(measured[bench]))
		for v := range measured[bench] {
			variants = append(variants, v)
		}
		sort.Strings(variants)
		for _, variant := range variants {
			got := measured[bench][variant]
			entry, ok := res[variant].(map[string]any)
			if !ok {
				entry = map[string]any{}
				res[variant] = entry
			}
			entry["ns_per_op"] = num(got.nsPerOp)
			if got.hasAllocs {
				entry["b_per_op"] = num(got.bPerOp)
				entry["allocs_per_op"] = num(got.allocsPerOp)
			}
			label := bench
			if variant != "" {
				label += "/" + variant
			}
			fmt.Fprintf(out, "benchgate: updated %-34s %12.0f ns/op\n", label, got.nsPerOp)
		}
		for variant := range benches[bench].Results {
			if _, ok := measured[bench][variant]; !ok {
				fmt.Fprintf(out, "benchgate: warning: %s/%s not in %s, keeping old numbers\n",
					bench, variant, benchPath)
			}
		}
	}
	if _, ok := doc["recorded"]; ok {
		doc["recorded"] = timeNow().Format("2006-01-02")
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(baselinePath, append(buf, '\n'), 0o644)
}

func run(benchPath, baselinePath string, maxRegress float64, out io.Writer) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var baseline baselineFile
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return fmt.Errorf("benchgate: %s: %w", baselinePath, err)
	}
	benches := baseline.benches()
	if len(benches) == 0 {
		return fmt.Errorf("benchgate: %s carries no baseline results", baselinePath)
	}
	names := make([]string, 0, len(benches))
	for name := range benches {
		names = append(names, name)
	}
	sort.Strings(names)
	f, err := os.Open(benchPath)
	if err != nil {
		return err
	}
	defer f.Close()
	measured, err := parseBench(f, names)
	if err != nil {
		return err
	}
	var gateErrs []string
	for _, name := range names {
		report, err := gate(name, benches[name], measured[name], maxRegress)
		fmt.Fprintf(out, "benchgate: %s vs %s\n", name, baselinePath)
		for _, line := range report {
			fmt.Fprintln(out, "  "+line)
		}
		if err != nil {
			gateErrs = append(gateErrs, err.Error())
		}
	}
	if len(gateErrs) > 0 {
		return fmt.Errorf("%s", strings.Join(gateErrs, "; "))
	}
	return nil
}

func main() {
	bench := flag.String("bench", "bench.out", "go test -bench output to check")
	baseline := flag.String("baseline", "BENCH_topology.json", "recorded baseline JSON")
	maxRegress := flag.Float64("max-regress", 0.30, "allowed regression fraction over baseline (ns/op, and allocs/op + B/op where recorded)")
	doUpdate := flag.Bool("update", false, "rewrite the baseline's measured metrics from the bench output instead of gating")
	flag.Parse()
	if *doUpdate {
		if err := updateBaseline(*bench, *baseline, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if err := run(*bench, *baseline, *maxRegress, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
