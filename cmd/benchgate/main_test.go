package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: camsim/internal/fleet
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkDeepTopology/indexed-8         	       3	 376112306 ns/op	 79768 frames/run
BenchmarkDeepTopology/indexed-8         	       3	 391220101 ns/op	 79768 frames/run
BenchmarkDeepTopology/indexed-8         	       3	 380000000 ns/op	 79768 frames/run
BenchmarkDeepTopology/scan-8            	       3	 442383848 ns/op	 79768 frames/run
BenchmarkDeepTopology/scan-8            	       3	 460000000 ns/op	 79768 frames/run
PASS
`

func testBaseline() baselineFile {
	return baselineFile{
		Benchmark: "BenchmarkDeepTopology",
		Results: map[string]baselineResult{
			"indexed": {NsPerOp: 376112306},
			"scan":    {NsPerOp: 442383848},
		},
	}
}

func TestParseBenchTakesBestPerVariant(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench), "BenchmarkDeepTopology")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("variants: %v", got)
	}
	if got["indexed"] != 376112306 {
		t.Fatalf("indexed best %v, want the minimum across -count runs", got["indexed"])
	}
	if got["scan"] != 442383848 {
		t.Fatalf("scan best %v", got["scan"])
	}
}

func TestGatePassesWithinLimit(t *testing.T) {
	measured := map[string]float64{"indexed": 376112306 * 1.25, "scan": 442383848}
	report, err := gate(testBaseline(), measured, 0.30)
	if err != nil {
		t.Fatalf("within-limit run failed: %v\n%v", err, report)
	}
	if len(report) != 2 {
		t.Fatalf("report: %v", report)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	measured := map[string]float64{"indexed": 376112306 * 1.5, "scan": 442383848}
	if _, err := gate(testBaseline(), measured, 0.30); err == nil {
		t.Fatal("a 1.5x regression passed the 30% gate")
	} else if !strings.Contains(err.Error(), "indexed") {
		t.Fatalf("regression error does not name the variant: %v", err)
	}
}

func TestParseBenchKeepsHyphenatedVariants(t *testing.T) {
	// Only a trailing -GOMAXPROCS suffix is stripped; at GOMAXPROCS=1 go
	// test appends none, and hyphens inside a variant name must survive.
	out := "BenchmarkX/in-camera-8   1   100 ns/op\nBenchmarkX/in-camera   1   90 ns/op\n"
	got, err := parseBench(strings.NewReader(out), "BenchmarkX")
	if err != nil {
		t.Fatal(err)
	}
	if got["in-camera"] != 90 {
		t.Fatalf("hyphenated variant mangled: %v", got)
	}
}

func TestGateFailsOnMissingVariant(t *testing.T) {
	if _, err := gate(testBaseline(), map[string]float64{"indexed": 1}, 0.30); err == nil {
		t.Fatal("missing scan variant passed the gate")
	}
}
