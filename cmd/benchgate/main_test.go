package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: camsim/internal/fleet
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkDeepTopology/indexed-8         	       3	 104232684 ns/op	 79731 frames/run	 5801064 B/op	 384 allocs/op
BenchmarkDeepTopology/indexed-8         	       3	 106627184 ns/op	 79731 frames/run	 5801144 B/op	 385 allocs/op
BenchmarkDeepTopology/indexed-8         	       3	 105211636 ns/op	 79731 frames/run	 5801144 B/op	 385 allocs/op
BenchmarkDeepTopology/scan-8            	       3	 190398320 ns/op	 79731 frames/run	 5800352 B/op	 379 allocs/op
BenchmarkDeepTopology/scan-8            	       3	 204509789 ns/op	 79731 frames/run	 5800432 B/op	 380 allocs/op
BenchmarkHugeFleet-8                    	       3	 474008193 ns/op	 200475 frames/run	 31441466 B/op	 483 allocs/op
BenchmarkHugeFleet-8                    	       3	 505142807 ns/op	 200475 frames/run	 31441552 B/op	 484 allocs/op
PASS
`

func allocs(v float64) *float64 { return &v }

func testBaseline() baselineFile {
	return baselineFile{
		Benchmarks: map[string]baselineBench{
			"BenchmarkDeepTopology": {Results: map[string]baselineResult{
				"indexed": {NsPerOp: 104232684, BPerOp: 5801064, AllocsPerOp: allocs(384)},
				"scan":    {NsPerOp: 190398320, BPerOp: 5800352, AllocsPerOp: allocs(379)},
			}},
			"BenchmarkHugeFleet": {Results: map[string]baselineResult{
				"": {NsPerOp: 474008193, BPerOp: 31441466, AllocsPerOp: allocs(483)},
			}},
		},
	}
}

func parseSample(t *testing.T) map[string]map[string]measurement {
	t.Helper()
	got, err := parseBench(strings.NewReader(sampleBench),
		[]string{"BenchmarkDeepTopology", "BenchmarkHugeFleet"})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestParseBenchTakesBestPerVariant(t *testing.T) {
	got := parseSample(t)
	if len(got) != 2 || len(got["BenchmarkDeepTopology"]) != 2 {
		t.Fatalf("benchmarks parsed: %v", got)
	}
	idx := got["BenchmarkDeepTopology"]["indexed"]
	if idx.nsPerOp != 104232684 {
		t.Fatalf("indexed best %v, want the minimum across -count runs", idx.nsPerOp)
	}
	if !idx.hasAllocs || idx.allocsPerOp != 384 || idx.bPerOp != 5801064 {
		t.Fatalf("indexed alloc metrics not the per-metric minimum: %+v", idx)
	}
	if got["BenchmarkDeepTopology"]["scan"].nsPerOp != 190398320 {
		t.Fatalf("scan best %v", got["BenchmarkDeepTopology"]["scan"].nsPerOp)
	}
	// A benchmark with no sub-benchmarks lands under the "" variant.
	huge := got["BenchmarkHugeFleet"][""]
	if huge.nsPerOp != 474008193 || huge.allocsPerOp != 483 {
		t.Fatalf("HugeFleet measurement: %+v", huge)
	}
}

func TestGatePassesWithinLimit(t *testing.T) {
	base := testBaseline()
	measured := parseSample(t)
	for name, bench := range base.Benchmarks {
		report, err := gate(name, bench, measured[name], 0.30)
		if err != nil {
			t.Fatalf("%s: within-limit run failed: %v\n%v", name, err, report)
		}
		// One line each for ns/op, allocs/op and B/op per variant.
		if len(report) != 3*len(bench.Results) {
			t.Fatalf("%s report: %v", name, report)
		}
	}
}

func TestGateFailsOnNsRegression(t *testing.T) {
	base := testBaseline().Benchmarks["BenchmarkDeepTopology"]
	measured := map[string]measurement{
		"indexed": {nsPerOp: 104232684 * 1.5, allocsPerOp: 384, hasAllocs: true},
		"scan":    {nsPerOp: 190398320, allocsPerOp: 379, hasAllocs: true},
	}
	if _, err := gate("BenchmarkDeepTopology", base, measured, 0.30); err == nil {
		t.Fatal("a 1.5x regression passed the 30% gate")
	} else if !strings.Contains(err.Error(), "indexed") {
		t.Fatalf("regression error does not name the variant: %v", err)
	}
}

func TestGateFailsOnAllocsRegression(t *testing.T) {
	base := testBaseline().Benchmarks["BenchmarkDeepTopology"]
	measured := map[string]measurement{
		"indexed": {nsPerOp: 104232684, bPerOp: 5801064, allocsPerOp: 384 * 2, hasAllocs: true},
		"scan":    {nsPerOp: 190398320, bPerOp: 5800352, allocsPerOp: 379, hasAllocs: true},
	}
	if _, err := gate("BenchmarkDeepTopology", base, measured, 0.30); err == nil {
		t.Fatal("a 2x allocs/op regression passed the 30% gate")
	} else if !strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("allocs regression error not named: %v", err)
	}
}

func TestGateFailsOnBytesRegression(t *testing.T) {
	// Same allocation count, 10x the bytes: the size blowup must fail on
	// its own.
	base := testBaseline().Benchmarks["BenchmarkDeepTopology"]
	measured := map[string]measurement{
		"indexed": {nsPerOp: 104232684, bPerOp: 5801064 * 10, allocsPerOp: 384, hasAllocs: true},
		"scan":    {nsPerOp: 190398320, bPerOp: 5800352, allocsPerOp: 379, hasAllocs: true},
	}
	if _, err := gate("BenchmarkDeepTopology", base, measured, 0.30); err == nil {
		t.Fatal("a 10x B/op regression passed the 30% gate")
	} else if !strings.Contains(err.Error(), "B/op") {
		t.Fatalf("bytes regression error not named: %v", err)
	}
}

func TestGateToleratesBaselineWithoutAllocs(t *testing.T) {
	// A baseline recorded before alloc tracking gates on ns/op alone,
	// whatever the measured allocation count says.
	base := baselineBench{Results: map[string]baselineResult{
		"indexed": {NsPerOp: 100},
	}}
	measured := map[string]measurement{
		"indexed": {nsPerOp: 101, allocsPerOp: 1e9, hasAllocs: true},
	}
	report, err := gate("BenchmarkX", base, measured, 0.30)
	if err != nil {
		t.Fatalf("alloc-less baseline failed the gate: %v", err)
	}
	if len(report) != 1 {
		t.Fatalf("expected the single ns/op line, got %v", report)
	}
}

func TestGateFailsWhenAllocsExpectedButUnmeasured(t *testing.T) {
	base := baselineBench{Results: map[string]baselineResult{
		"indexed": {NsPerOp: 100, AllocsPerOp: allocs(10)},
	}}
	measured := map[string]measurement{"indexed": {nsPerOp: 100}}
	if _, err := gate("BenchmarkX", base, measured, 0.30); err == nil {
		t.Fatal("missing alloc measurement passed a baseline that records allocs")
	}
}

func TestParseBenchKeepsHyphenatedVariants(t *testing.T) {
	// Only a trailing -GOMAXPROCS suffix is stripped; at GOMAXPROCS=1 go
	// test appends none, and hyphens inside a variant name must survive.
	out := "BenchmarkX/in-camera-8   1   100 ns/op\nBenchmarkX/in-camera   1   90 ns/op\n"
	got, err := parseBench(strings.NewReader(out), []string{"BenchmarkX"})
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkX"]["in-camera"].nsPerOp != 90 {
		t.Fatalf("hyphenated variant mangled: %v", got)
	}
}

func TestParseBenchPrefersLongestBenchmarkName(t *testing.T) {
	// With overlapping configured names, a line must land under the most
	// specific one, and a bare prefix must not claim a longer benchmark's
	// lines at a non-boundary.
	out := "BenchmarkHugeFleet-8   1   100 ns/op\nBenchmarkHuge-8   1   50 ns/op\n"
	got, err := parseBench(strings.NewReader(out), []string{"BenchmarkHuge", "BenchmarkHugeFleet"})
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkHugeFleet"][""].nsPerOp != 100 || got["BenchmarkHuge"][""].nsPerOp != 50 {
		t.Fatalf("prefix collision: %v", got)
	}
}

func TestGateFailsOnMissingVariant(t *testing.T) {
	base := testBaseline().Benchmarks["BenchmarkDeepTopology"]
	measured := map[string]measurement{"indexed": {nsPerOp: 1, allocsPerOp: 1, hasAllocs: true}}
	if _, err := gate("BenchmarkDeepTopology", base, measured, 0.30); err == nil {
		t.Fatal("missing scan variant passed the gate")
	}
}

// writeUpdateFixture lays out a baseline and bench output in a temp dir
// and pins the recorded date, returning the two paths.
func writeUpdateFixture(t *testing.T, baseline, bench string) (string, string) {
	t.Helper()
	dir := t.TempDir()
	basePath := filepath.Join(dir, "baseline.json")
	benchPath := filepath.Join(dir, "bench.out")
	if err := os.WriteFile(basePath, []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(benchPath, []byte(bench), 0o644); err != nil {
		t.Fatal(err)
	}
	old := timeNow
	timeNow = func() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC) }
	t.Cleanup(func() { timeNow = old })
	return benchPath, basePath
}

func TestUpdateRewritesMetricsAndKeepsProse(t *testing.T) {
	const baseline = `{
	  "package": "camsim/internal/fleet",
	  "recorded": "2026-07-29",
	  "benchmarks": {
	    "BenchmarkDeepTopology": {
	      "scenario": {"cameras": 10000},
	      "results": {
	        "indexed": {"description": "production path", "ns_per_op": 1, "b_per_op": 2, "allocs_per_op": 3},
	        "scan": {"description": "baseline path", "ns_per_op": 4, "b_per_op": 5, "allocs_per_op": 6}
	      }
	    }
	  },
	  "notes": "hand-written context"
	}`
	benchPath, basePath := writeUpdateFixture(t, baseline, sampleBench)
	var out strings.Builder
	if err := updateBaseline(benchPath, basePath, &out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("rewritten baseline is not valid JSON: %v", err)
	}
	if doc["recorded"] != "2026-08-08" {
		t.Fatalf("recorded = %v", doc["recorded"])
	}
	if doc["notes"] != "hand-written context" || doc["package"] != "camsim/internal/fleet" {
		t.Fatal("human-facing fields not preserved")
	}
	var typed baselineFile
	if err := json.Unmarshal(raw, &typed); err != nil {
		t.Fatal(err)
	}
	idx := typed.Benchmarks["BenchmarkDeepTopology"].Results["indexed"]
	if idx.NsPerOp != 104232684 || idx.BPerOp != 5801064 || *idx.AllocsPerOp != 384 {
		t.Fatalf("indexed metrics not refreshed to the run's best: %+v", idx)
	}
	entry := doc["benchmarks"].(map[string]any)["BenchmarkDeepTopology"].(map[string]any)
	if entry["scenario"].(map[string]any)["cameras"].(float64) != 10000 {
		t.Fatal("scenario context dropped")
	}
	res := entry["results"].(map[string]any)["indexed"].(map[string]any)
	if res["description"] != "production path" {
		t.Fatal("variant description dropped")
	}
	if !strings.Contains(out.String(), "BenchmarkDeepTopology/indexed") {
		t.Fatalf("update not reported: %s", out.String())
	}
	// The rewritten file must still pass its own gate against the same run.
	var gateOut strings.Builder
	if err := run(benchPath, basePath, 0.0, &gateOut); err != nil {
		t.Fatalf("freshly updated baseline fails its own gate: %v\n%s", err, gateOut.String())
	}
}

func TestUpdateFillsSkeletonBenchmark(t *testing.T) {
	// A new benchmark lands by writing a results-free skeleton and letting
	// -update fill the numbers from the run.
	const baseline = `{
	  "recorded": "2026-07-29",
	  "benchmarks": {
	    "BenchmarkHugeFleet": {
	      "scenario": {"cameras": 100000},
	      "results": {}
	    }
	  }
	}`
	benchPath, basePath := writeUpdateFixture(t, baseline, sampleBench)
	if err := updateBaseline(benchPath, basePath, io.Discard); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(basePath)
	var typed baselineFile
	if err := json.Unmarshal(raw, &typed); err != nil {
		t.Fatal(err)
	}
	huge := typed.Benchmarks["BenchmarkHugeFleet"].Results[""]
	if huge.NsPerOp != 474008193 || *huge.AllocsPerOp != 483 {
		t.Fatalf("skeleton not filled: %+v", huge)
	}
}

func TestUpdateKeepsUnmeasuredVariants(t *testing.T) {
	const baseline = `{
	  "benchmarks": {
	    "BenchmarkDeepTopology": {
	      "results": {"indexed": {"ns_per_op": 7}, "ghost": {"ns_per_op": 42}}
	    }
	  }
	}`
	benchPath, basePath := writeUpdateFixture(t, baseline, sampleBench)
	var out strings.Builder
	if err := updateBaseline(benchPath, basePath, &out); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(basePath)
	var typed baselineFile
	if err := json.Unmarshal(raw, &typed); err != nil {
		t.Fatal(err)
	}
	if got := typed.Benchmarks["BenchmarkDeepTopology"].Results["ghost"].NsPerOp; got != 42 {
		t.Fatalf("unmeasured variant rewritten to %v", got)
	}
	if !strings.Contains(out.String(), "ghost") || !strings.Contains(out.String(), "keeping old numbers") {
		t.Fatalf("missing-variant warning not printed: %s", out.String())
	}
}

func TestUpdateHandlesLegacyLayout(t *testing.T) {
	const baseline = `{
	  "benchmark": "BenchmarkHugeFleet",
	  "results": {"": {"ns_per_op": 1, "b_per_op": 1, "allocs_per_op": 1}}
	}`
	benchPath, basePath := writeUpdateFixture(t, baseline, sampleBench)
	if err := updateBaseline(benchPath, basePath, io.Discard); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(basePath)
	var typed baselineFile
	if err := json.Unmarshal(raw, &typed); err != nil {
		t.Fatal(err)
	}
	if typed.Results[""].NsPerOp != 474008193 {
		t.Fatalf("legacy layout not updated: %+v", typed.Results)
	}
}

func TestLegacySingleBenchmarkBaselineStillLoads(t *testing.T) {
	legacy := baselineFile{
		Benchmark: "BenchmarkDeepTopology",
		Results:   map[string]baselineResult{"indexed": {NsPerOp: 1}},
	}
	benches := legacy.benches()
	if len(benches) != 1 || benches["BenchmarkDeepTopology"].Results["indexed"].NsPerOp != 1 {
		t.Fatalf("legacy layout not lifted: %v", benches)
	}
}
