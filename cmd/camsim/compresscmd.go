package main

import (
	"flag"
	"fmt"
	"math/rand"

	"camsim/internal/compress"
	"camsim/internal/core"
	"camsim/internal/energy"
	"camsim/internal/platform"
	"camsim/internal/rig"
	"camsim/internal/vr"
)

// cmdCompressBlock runs E15, the extension the paper's §II sketches but
// does not evaluate: in-camera lossless compression treated as an optional
// pipeline block. It measures real compression ratios on rig sensor
// frames, then re-evaluates both case studies' offload economics with the
// block inserted.
func cmdCompressBlock(args []string) error {
	fs := flag.NewFlagSet("compress-block", flag.ContinueOnError)
	seed := fs.Int64("seed", 15, "scene seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Measure the real codec on real synthetic sensor content.
	r := rig.NewRig(rand.New(rand.NewSource(*seed)), 4, 256, 128, 0.75, 3)
	codec, err := compress.NewCodec(12)
	if err != nil {
		return err
	}
	var ratioSum float64
	for i := 0; i < r.Cameras; i++ {
		raw := vr.CaptureFrame(r.View(i))
		enc, err := codec.Encode(raw)
		if err != nil {
			return err
		}
		ratioSum += compress.Ratio(raw, enc)
	}
	ratio := ratioSum / float64(r.Cameras)
	fmt.Printf("measured lossless ratio on rig sensor frames: %.3f (predictive + Rice coding)\n\n", ratio)

	// VR side: insert compression after the sensor and re-run the Fig. 10
	// sensor-offload configuration across links.
	m := vr.PaperByteModel()
	compressedSensor := int64(float64(m.Sensor) * ratio)
	// Throughput of the compression block at full scale: 6 ops/pixel over
	// 16×4K on the ARM cores (~3 cycles/op at 1 GHz per core, 2 cores).
	pixels := int64(16) * 3840 * 2160
	ops := compress.PixelOps(3840, 2160) * 16
	const armOpsPerSec = 2 * 1e9 / 3
	compressFPS := armOpsPerSec / float64(ops)
	_ = pixels

	p := &core.ThroughputPipeline{
		SensorBytes: m.Sensor,
		Stages: []core.Stage{
			{Name: "compress", OutputBytes: compressedSensor,
				FPS: map[string]float64{"CPU": compressFPS}},
		},
	}
	fmt.Println("VR sensor offload with an in-camera compression block (25 GbE):")
	for _, pl := range []core.Placement{{}, {InCamera: 1, Impl: []string{"CPU"}}} {
		a, err := p.Evaluate(pl, platform.Ethernet25G.BytesPerSecond())
		if err != nil {
			return err
		}
		fmt.Printf("  %-22s comm %6.2f FPS, compute %7.2f FPS -> total %6.2f FPS\n",
			a.Label, a.CommFPS, a.ComputeFPS, a.TotalFPS)
	}
	fmt.Printf("  (raw offload needs %.0f Gb/s for 30 FPS; compressed needs %.0f Gb/s)\n\n",
		30*float64(m.Sensor)*8/1e9, 30*float64(compressedSensor)*8/1e9)

	// FA side: compress the QVGA frame before backscatter offload.
	const w, h = 160, 120
	sensor := energy.DefaultSensor()
	radio := energy.BackscatterRadio()
	mcu := energy.DefaultMCU()
	capture := sensor.CaptureEnergy(w, h)
	rawBytes := int64(w * h)
	compBytes := int64(float64(rawBytes) * ratio)
	compressE := energy.Energy(float64(compress.PixelOps(w, h))) * mcu.EnergyPerCycle * 2

	eRaw := capture + radio.TransmitEnergy(rawBytes)
	eComp := capture + compressE + radio.TransmitEnergy(compBytes)
	harv := energy.DefaultHarvester()
	fmt.Println("FA raw-offload with compression (backscatter radio):")
	fmt.Printf("  offload raw:        %v/frame -> %.1f FPS sustainable\n", eRaw, harv.SustainableFPS(eRaw))
	fmt.Printf("  compress + offload: %v/frame -> %.1f FPS sustainable\n", eComp, harv.SustainableFPS(eComp))
	fmt.Println("\nconclusion: compression is a worthwhile optional block exactly when the")
	fmt.Println("saved transmit energy/bandwidth exceeds its compute cost — the same")
	fmt.Println("computation-communication balance the paper draws for every other block")
	return nil
}
