package main

import (
	"testing"

	"camsim/internal/core"
)

// The experiment commands print to stdout; these tests pin down that each
// fast (non-training) experiment runs to completion on its defaults.
// Training-heavy experiments (nn-topology, bitwidth, fig4c, fa-e2e) are
// exercised by the `camsim all` run recorded in experiment_output.txt.

func TestCommandsRegistered(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range commands() {
		if c.name == "" || c.brief == "" || c.run == nil {
			t.Fatalf("incomplete command %+v", c)
		}
		if seen[c.name] {
			t.Fatalf("duplicate command %q", c.name)
		}
		seen[c.name] = true
	}
	if len(seen) != 18 {
		t.Fatalf("expected 18 experiments, found %d", len(seen))
	}
}

func TestFastCommandsRun(t *testing.T) {
	fast := map[string]func([]string) error{
		"pe-sweep":        cmdPESweep,
		"fig6":            cmdFig6,
		"fig9":            cmdFig9,
		"fig10":           cmdFig10,
		"table1":          cmdTable1,
		"linksweep":       cmdLinkSweep,
		"fa-offload":      cmdFAOffload,
		"stereo-baseline": cmdStereoBaseline,
		"compress-block":  cmdCompressBlock,
		"fleet":           cmdFleet,
		"topo":            cmdTopo,
	}
	for name, run := range fast {
		if err := run(nil); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestCommandsRejectBadFlags(t *testing.T) {
	if err := cmdFig7([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("fig7 accepted an unknown flag")
	}
	if err := cmdStereoBaseline([]string{"-bogus"}); err == nil {
		t.Fatal("stereo-baseline accepted an unknown flag")
	}
	if err := cmdFleet([]string{"-n", "2"}); err == nil {
		t.Fatal("fleet accepted a 2-camera fleet")
	}
	if err := cmdTopo([]string{"-not-a-flag"}); err == nil {
		t.Fatal("topo accepted an unknown flag")
	}
}

func TestFig10PipelineMatchesPaperTotals(t *testing.T) {
	// The assembled platform+byte-model pipeline must produce the nine
	// Fig. 10 totals end to end (the same invariant internal/core checks
	// with hand-written numbers — here it validates the wiring).
	p := fig10Pipeline()
	cases := []struct {
		impl  []string
		total float64
	}{
		{nil, 15.8},
		{[]string{"CPU"}, 15.8},
		{[]string{"CPU", "CPU"}, 3.95},
		{[]string{"CPU", "CPU", "CPU"}, 0.09},
		{[]string{"CPU", "CPU", "GPU"}, 5.27},
		{[]string{"CPU", "CPU", "FPGA"}, 11.2},
		{[]string{"CPU", "CPU", "CPU", "CPU"}, 0.09},
		{[]string{"CPU", "CPU", "GPU", "GPU"}, 5.27},
		{[]string{"CPU", "CPU", "FPGA", "FPGA"}, 31.6},
	}
	for _, c := range cases {
		a, err := p.Evaluate(corePlacement(c.impl), 3.125e9)
		if err != nil {
			t.Fatal(err)
		}
		if d := a.TotalFPS/c.total - 1; d > 0.01 || d < -0.01 {
			t.Fatalf("%v: total %v, want %v", c.impl, a.TotalFPS, c.total)
		}
	}
}

// corePlacement builds a placement from an impl list.
func corePlacement(impl []string) core.Placement {
	return core.Placement{InCamera: len(impl), Impl: impl}
}
