package main

import (
	"flag"
	"fmt"
)

// flagGroup is one titled block of a subcommand's -h output.
type flagGroup struct {
	title string
	names []string
}

// groupedUsage builds a flag.FlagSet Usage function that prints the
// flags in labelled groups (instead of one alphabetical blob) and then
// names the scenario sections a -scenario JSON file may carry, so the
// strictly-decoded file format is discoverable from -h alone.
func groupedUsage(fs *flag.FlagSet, synopsis string, groups []flagGroup) func() {
	return func() {
		o := fs.Output()
		fmt.Fprintf(o, "usage: camsim %s\n", synopsis)
		for _, g := range groups {
			fmt.Fprintf(o, "\n%s:\n", g.title)
			for _, name := range g.names {
				f := fs.Lookup(name)
				if f == nil {
					continue
				}
				fmt.Fprintf(o, "  -%s (default %v)\n        %s\n", f.Name, f.DefValue, f.Usage)
			}
		}
		fmt.Fprintln(o, "\nscenario sections (-scenario file.json, strictly decoded; see package")
		fmt.Fprintln(o, "camsim/internal/fleet docs for every field):")
		fmt.Fprintln(o, "  required   duration, classes (each with fps, frame_bytes or placements)")
		fmt.Fprintln(o, "  topology   uplink — or gateways, or tiers (per-tier downlink, compute)")
		fmt.Fprintln(o, "  optional   global, federated (model), telemetry, dynamics (events),")
		fmt.Fprintln(o, "             per-class policy")
	}
}

// topoUsage groups the topo flags: which demo runs, then the knobs every
// demo shares, then scenario-file I/O.
func topoUsage(fs *flag.FlagSet) func() {
	return groupedUsage(fs, "topo [flags]", []flagGroup{
		{"demo selection (default: adaptive-placement policy comparison)",
			[]string{"compute", "depth", "dynamics", "fl", "global"}},
		{"simulation", []string{"seed", "duration", "workers"}},
		{"scenario files", []string{"scenario", "timeseries"}},
	})
}

// fleetUsage groups the fleet flags: the sweep's shape, the shared
// simulation knobs, then scenario-file I/O.
func fleetUsage(fs *flag.FlagSet) func() {
	return groupedUsage(fs, "fleet [flags]", []flagGroup{
		{"sweep shape", []string{"n", "gbps", "contention"}},
		{"simulation", []string{"seed", "duration", "workers"}},
		{"scenario files", []string{"scenario", "timeseries"}},
	})
}
