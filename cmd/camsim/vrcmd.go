package main

import (
	"flag"
	"fmt"
	"math/rand"

	"camsim/internal/bilateral"
	"camsim/internal/core"
	"camsim/internal/img"
	"camsim/internal/platform"
	"camsim/internal/quality"
	"camsim/internal/rig"
	"camsim/internal/stereo"
	"camsim/internal/vr"
)

// cmdFig6 reproduces E8 (Fig. 6): bilateral smoothing of a noisy step
// signal preserves the edge a plain moving average destroys, shown as an
// ASCII plot of the 1-D profiles.
func cmdFig6(args []string) error {
	const w, h = 64, 16
	rng := rand.New(rand.NewSource(6))
	clean := img.NewGray(w, h)
	noisy := img.NewGray(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := float32(0.25)
			if x >= w/2 {
				v = 0.75
			}
			clean.Pix[y*w+x] = v
			noisy.Pix[y*w+x] = v + 0.1*float32(rng.NormFloat64())
		}
	}
	noisy.Clamp01()
	box := img.BoxFilter(noisy, 4)
	bilat := bilateral.Filter(noisy, noisy, 4, 16, 2)

	profile := func(g *img.Gray) []float64 {
		out := make([]float64, w)
		for x := 0; x < w; x++ {
			var s float64
			for y := 0; y < h; y++ {
				s += float64(g.At(x, y))
			}
			out[x] = s / h
		}
		return out
	}
	plot := func(label string, p []float64) {
		fmt.Printf("%-22s ", label)
		for _, v := range p {
			idx := int(v * 9.999)
			if idx < 0 {
				idx = 0
			}
			if idx > 9 {
				idx = 9
			}
			fmt.Print(string("0123456789"[idx]))
		}
		fmt.Println()
	}
	fmt.Println("column-mean intensity profiles (0=dark, 9=bright); note where the step survives")
	plot("a) clean step", profile(clean))
	plot("b) + sensor noise", profile(noisy))
	plot("c) moving average", profile(box))
	plot("d) bilateral grid", profile(bilat))

	edge := func(p []float64) float64 { return p[w/2+3] - p[w/2-4] }
	fmt.Printf("\nedge amplitude: clean %.2f, box blur %.2f, bilateral %.2f (paper: bilateral preserves the edge)\n",
		edge(profile(clean)), edge(profile(box)), edge(profile(bilat)))
	return nil
}

// cmdFig7 reproduces E9 (Fig. 7): depth-map quality (MS-SSIM vs the
// fine-grid reference) against bilateral grid size, for three input
// resolutions. The paper's finding: grid size matters more than input
// resolution.
func cmdFig7(args []string) error {
	fs := flag.NewFlagSet("fig7", flag.ContinueOnError)
	seed := fs.Int64("seed", 9, "scene seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Working resolutions standing in for the paper's 5/7/8 MP inputs,
	// with the same 2:1 aspect progression.
	resolutions := []struct {
		label string
		w, h  int
	}{
		{"5MP-proxy", 192, 96},
		{"7MP-proxy", 256, 128},
		{"8MP-proxy", 288, 144},
	}
	fmt.Println("res         cells/vertex  grid-vertices  grid-bytes  MS-SSIM   (paper Fig. 7 shape)")
	for _, res := range resolutions {
		r := rig.NewRig(rand.New(rand.NewSource(*seed)), 4, res.w, res.h, 0.75, 3)
		left, right, _ := r.Pair(0)
		maxD := r.MaxDisparity()

		// Fine-grid reference (cell 4, like the paper's best point).
		ref, _, err := bilateral.Solve(left, right, bilateral.DefaultBSSAConfig(maxD))
		if err != nil {
			return err
		}
		norm := func(g *img.Gray) *img.Gray {
			o := g.Clone()
			for i := range o.Pix {
				o.Pix[i] /= float32(maxD)
			}
			return o
		}
		for _, cell := range []float64{4, 8, 16, 32, 64} {
			cfg := bilateral.DefaultBSSAConfig(maxD)
			cfg.CellXY = cell
			cfg.IntensityBins = maxI(2, int(64/cell))
			d, st, err := bilateral.Solve(left, right, cfg)
			if err != nil {
				return err
			}
			q := quality.MSSSIM(norm(ref), norm(d))
			fmt.Printf("%-11s %8.0f      %9d      %8d    %.4f\n",
				res.label, cell, st.GridVertices, st.GridBytes, q)
		}
	}
	return nil
}

// cmdFig9 reproduces E10 (Fig. 9): the per-block computation share and
// output data size, at full scale (paper byte model) and as measured on
// the scaled synthetic pipeline.
func cmdFig9(args []string) error {
	m := vr.PaperByteModel()
	share := vr.ComputeShare()
	names := []string{"B1 pre-processing", "B2 image alignment", "B3 depth estimation", "B4 image stitching"}
	fmt.Println("block                compute-share   output (16-cam frame-set)")
	fmt.Printf("sensor                      —          %7.1f MB\n", float64(m.Sensor)/1e6)
	for i, n := range names {
		fmt.Printf("%-20s   %4.0f%%         %7.1f MB\n", n, share[i]*100, float64(m.Stage(i+1))/1e6)
	}

	r := rig.NewRig(rand.New(rand.NewSource(10)), 4, 128, 64, 0.75, 3)
	res, err := vr.NewPipeline(r).Run()
	if err != nil {
		return err
	}
	fmt.Printf("\nscaled synthetic pipeline (%d cams at %dx%d) output bytes:\n", r.Cameras, r.ViewW, r.ViewH)
	fmt.Printf("sensor %d  B1 %d  B2 %d  B3 %d  B4 %d   (same shape: B2 largest, B4 smallest)\n",
		res.Bytes.Sensor, res.Bytes.B1, res.Bytes.B2, res.Bytes.B3, res.Bytes.B4)
	return nil
}

// fig10Pipeline assembles the paper's VR pipeline for the core framework.
func fig10Pipeline() *core.ThroughputPipeline {
	m := vr.PaperByteModel()
	tp := platform.PaperThroughput()
	fps := func(block int) map[string]float64 {
		out := map[string]float64{}
		for _, d := range []platform.Device{platform.CPU, platform.GPU, platform.FPGA} {
			out[d.String()] = tp.BlockFPS(block, d)
		}
		return out
	}
	return &core.ThroughputPipeline{
		SensorBytes: m.Sensor,
		Stages: []core.Stage{
			{Name: "B1", OutputBytes: m.B1, FPS: map[string]float64{"CPU": tp.BlockFPS(1, platform.CPU)}},
			{Name: "B2", OutputBytes: m.B2, FPS: map[string]float64{"CPU": tp.BlockFPS(2, platform.CPU)}},
			{Name: "B3", OutputBytes: m.B3, FPS: fps(3)},
			{Name: "B4", OutputBytes: m.B4, FPS: fps(4)},
		},
	}
}

// cmdFig10 reproduces E11 (Fig. 10): the nine pipeline/offload
// configurations against the 30 FPS real-time threshold on 25 GbE.
func cmdFig10(args []string) error {
	p := fig10Pipeline()
	link := platform.Ethernet25G
	type cfg struct {
		label string
		pl    core.Placement
	}
	dev := func(d string, n int) []string {
		impl := make([]string, n)
		for i := range impl {
			impl[i] = "CPU"
		}
		if n >= 3 {
			impl[2] = d
		}
		if n >= 4 {
			impl[3] = d
		}
		return impl
	}
	configs := []cfg{
		{"S~", core.Placement{}},
		{"SB1~", core.Placement{InCamera: 1, Impl: dev("CPU", 1)}},
		{"SB1B2~", core.Placement{InCamera: 2, Impl: dev("CPU", 2)}},
		{"SB1B2B3C~", core.Placement{InCamera: 3, Impl: dev("CPU", 3)}},
		{"SB1B2B3G~", core.Placement{InCamera: 3, Impl: dev("GPU", 3)}},
		{"SB1B2B3F~", core.Placement{InCamera: 3, Impl: dev("FPGA", 3)}},
		{"SB1B2B3CB4C~", core.Placement{InCamera: 4, Impl: dev("CPU", 4)}},
		{"SB1B2B3GB4G~", core.Placement{InCamera: 4, Impl: dev("GPU", 4)}},
		{"SB1B2B3FB4F~", core.Placement{InCamera: 4, Impl: dev("FPGA", 4)}},
	}
	fmt.Printf("link: %s (%.3f GB/s); real-time target: 30 FPS\n\n", link.Name, link.BytesPerSecond()/1e9)
	fmt.Println("config         compute-FPS  comm-FPS  total-FPS  bottleneck              real-time?")
	for _, c := range configs {
		a, err := p.Evaluate(c.pl, link.BytesPerSecond())
		if err != nil {
			return err
		}
		rt := ""
		if a.MeetsRealTime(30) {
			rt = "YES"
		}
		compute := fmt.Sprintf("%8.2f", a.ComputeFPS)
		if a.ComputeFPS >= core.MaxFPS {
			compute = "       —"
		}
		fmt.Printf("%-13s %s   %8.2f  %8.2f   %-22s %s\n",
			c.label, compute, a.CommFPS, a.TotalFPS, a.Bottleneck, rt)
	}
	fmt.Println("\npaper: only the full pipeline with FPGA acceleration meets the 30 FPS upload requirement")
	return nil
}

// cmdTable1 reproduces E12 (Table I): FPGA resource requirements on the
// evaluation (Zynq) and target (Virtex UltraScale+) platforms.
func cmdTable1(args []string) error {
	type rowSpec struct {
		model   platform.FPGAModel
		fpgas   int
		cameras int
		paper   [3]float64 // logic, RAM, DSP percentages from Table I
	}
	rows := []rowSpec{
		{platform.Zynq7020(), 1, 2, [3]float64{45.91, 6.70, 94.09}},
		{platform.VirtexUltraScalePlus(), 16, 16, [3]float64{67.10, 17.60, 99.98}},
	}
	fmt.Println("                         Evaluation            Target")
	fmt.Println("resource                 (model / paper)       (model / paper)")
	var cells [5][2]string
	for i, r := range rows {
		u := r.model.Utilization(r.model.MaxComputeUnits())
		cells[0][i] = fmt.Sprintf("%d", r.fpgas)
		cells[1][i] = fmt.Sprintf("%d", r.cameras)
		cells[2][i] = fmt.Sprintf("%.2f%% / %.2f%%", u.LogicPct, r.paper[0])
		cells[3][i] = fmt.Sprintf("%.2f%% / %.2f%%", u.RAMPct, r.paper[1])
		cells[4][i] = fmt.Sprintf("%.2f%% / %.2f%%", u.DSPPct, r.paper[2])
	}
	labels := []string{"FPGA (#)", "Cameras", "Logic", "RAM", "DSP"}
	for i, l := range labels {
		fmt.Printf("%-24s %-21s %s\n", l, cells[i][0], cells[i][1])
	}
	z := platform.Zynq7020()
	v := platform.VirtexUltraScalePlus()
	fmt.Printf("\ncompute units: %d on the Zynq (paper: 12), %d on the Virtex (paper: 682); clock 125 MHz\n",
		z.MaxComputeUnits(), v.MaxComputeUnits())
	fmt.Printf("modelled B3 throughput: Zynq 2-camera %.1f FPS (paper 31.6); Virtex 16-camera %.1f FPS\n",
		z.DepthFPS(z.MaxComputeUnits(), platform.EvalVerticesPerFrame, platform.CalibratedCyclesPerVertex),
		v.DepthFPS(v.MaxComputeUnits(), platform.EvalVerticesPerFrame*8, platform.CalibratedCyclesPerVertex))
	return nil
}

// cmdLinkSweep reproduces E13 (§IV-C): upload rates of raw sensor data and
// the in-camera alternative across uplink speeds, locating the crossover
// where fast networks remove the in-camera incentive.
func cmdLinkSweep(args []string) error {
	p := fig10Pipeline()
	full := core.Placement{InCamera: 4, Impl: []string{"CPU", "CPU", "FPGA", "FPGA"}}
	fmt.Println("link      raw-offload-FPS  full-in-camera-FPS  best strategy")
	for _, gbps := range []float64{1, 10, 25, 40, 100, 200, 400} {
		link := platform.Link{Name: fmt.Sprintf("%.0fG", gbps), Gbps: gbps}
		raw, err := p.Evaluate(core.Placement{}, link.BytesPerSecond())
		if err != nil {
			return err
		}
		in, err := p.Evaluate(full, link.BytesPerSecond())
		if err != nil {
			return err
		}
		bestLabel := "in-camera"
		if raw.TotalFPS >= in.TotalFPS {
			bestLabel = "offload raw"
		}
		fmt.Printf("%-8s  %12.1f     %12.1f        %s\n", link.Name, raw.TotalFPS, in.TotalFPS, bestLabel)
	}
	_, gbps := p.Crossover(30)
	raw400, _ := p.Evaluate(core.Placement{}, platform.Ethernet400G.BytesPerSecond())
	fmt.Printf("\nraw offload reaches 30 FPS at %.1f Gb/s; at 400 GbE it uploads %.0f FPS\n", gbps, raw400.TotalFPS)
	fmt.Println("(paper reports 395 FPS at 400 GbE for the 8-bit 126.6 MB rig output; our 12-bit")
	fmt.Println(" raw model gives 253 FPS — see EXPERIMENTS.md for the reconciliation)")
	return nil
}

// cmdStereoBaseline reproduces E14: BSSA against the block-matching
// baseline on rig pairs — quality vs ground truth and work performed.
func cmdStereoBaseline(args []string) error {
	fs := flag.NewFlagSet("stereo-baseline", flag.ContinueOnError)
	seed := fs.Int64("seed", 11, "scene seed")
	pairs := fs.Int("pairs", 2, "stereo pairs to evaluate")
	if err := fs.Parse(args); err != nil {
		return err
	}
	r := rig.NewRig(rand.New(rand.NewSource(*seed)), 2**pairs, 192, 96, 0.75, 3)
	fmt.Println("pair  method        MAE(px)  bad>2px   work (ops)")
	for i := 0; i < r.Cameras; i += 2 {
		left, right, gt := r.Pair(i)
		bm := stereo.BlockMatch(left, right, stereo.Config{MaxDisparity: r.MaxDisparity(), WindowRadius: 3})
		bssa, st, err := bilateral.Solve(left, right, bilateral.DefaultBSSAConfig(r.MaxDisparity()))
		if err != nil {
			return err
		}
		fmt.Printf("%4d  %-12s  %6.3f   %5.1f%%   %d\n", i/2, "block-match",
			stereo.MeanAbsError(bm.Disparity, gt), stereo.BadPixelRate(bm.Disparity, gt, 2)*100, bm.CostVolumeOps)
		fmt.Printf("%4d  %-12s  %6.3f   %5.1f%%   %d\n", i/2, "BSSA",
			stereo.MeanAbsError(bssa, gt), stereo.BadPixelRate(bssa, gt, 2)*100, st.VertexOps)
	}
	fmt.Println("\npaper context: bilateral-space refinement yields faster, higher-quality output (§IV-A)")
	return nil
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
