// Command camsim regenerates every table and figure of the paper's
// evaluation from the camsim library. Each experiment is a subcommand;
// `camsim all` runs the full battery in order.
//
// Usage:
//
//	camsim <experiment> [flags]
//
// Experiments (paper artifact → subcommand):
//
//	nn-topology     E1  §III-A NN topology accuracy/energy sweep
//	pe-sweep        E2  §III-A accelerator geometry (energy-optimal 8 PEs)
//	bitwidth        E3  §III-A datapath width (float/16/8/4-bit, −41% power)
//	sigmoid         E4  §III-A sigmoid LUT approximation
//	fig4c           E5  Fig. 4c Viola-Jones parameter sensitivity
//	fa-e2e          E6  §III end-to-end face-authentication workload
//	fa-offload      E7  §III offload-vs-onload energy on harvested power
//	fig6            E8  Fig. 6 bilateral filter edge-aware smoothing demo
//	fig7            E9  Fig. 7 bilateral grid size vs depth quality
//	fig9            E10 Fig. 9 per-block compute share and output bytes
//	fig10           E11 Fig. 10 pipeline configurations vs 30 FPS target
//	table1          E12 Table I FPGA resource requirements
//	linksweep       E13 §IV-C uplink bandwidth sensitivity (400 GbE)
//	stereo-baseline E14 BSSA vs block-matching quality/work comparison
//
// Beyond the paper, `camsim fleet` scales the placement tradeoff to
// populations of cameras contending for one shared uplink (internal/fleet):
// it sweeps fleet size against VR placement for a mixed face-auth + VR
// fleet and reports offload-latency percentiles, drops and utilization per
// class. See `camsim fleet -h` for the knobs (fleet size, uplink Gb/s,
// fair-share vs FIFO contention, sweep parallelism). `camsim topo` goes a
// tier further: cameras attach to edge gateways with finite links that
// share a WAN, and adaptive per-class policies (latency-threshold,
// hysteresis) move cameras between Fig. 10 placements at runtime as
// observed offload latency degrades. `camsim topo -depth n` deepens the
// network into an n-tier camera→gateway→metro→core chain where every hop
// adds transmission plus one-way propagation delay to offload latency.
// `camsim topo -global` flips to the energy axis: an uncongested fleet
// where per-link forwarding costs make raw offload expensive, compared
// across no energy policy, the per-class energy-latency policy, and the
// global controller that sheds watts only down to a fleet-wide power
// budget. `camsim topo -compute` gives every tier a finite core pool:
// frames queue for service after transit, so a fleet with half-idle
// links can still congest a gateway's cores, and placement becomes the
// joint network+compute decision — shipping fewer bytes also needs less
// tier service. `camsim topo -fl` makes the tier tree bidirectional: the fleet
// trains a model with round-structured federated learning, update blobs
// aggregated in-network on the way up and the merged model broadcast
// back down per-tier downlinks. Both `fleet` and `topo` also accept
// `-scenario file.json` to
// run a JSON scenario from disk (strictly decoded — unknown fields are
// rejected); a scenario whose telemetry section sets streaming with a
// window_sec can add `-timeseries out.csv` (or out.json) to write its
// windowed per-class latency/drop/utilization time series to disk.
//
// The scenario format is documented in the camsim/internal/fleet package
// comment; ARCHITECTURE.md at the repository root maps the simulator
// design (event loop, link layout, seed families, controllers) these
// experiments drive.
package main

import (
	"fmt"
	"os"
	"sort"
)

type command struct {
	name  string
	brief string
	run   func(args []string) error
}

func commands() []command {
	return []command{
		{"nn-topology", "E1: NN topology accuracy vs energy sweep", cmdNNTopology},
		{"pe-sweep", "E2: accelerator geometry sweep (PE count)", cmdPESweep},
		{"bitwidth", "E3: datapath bit-width accuracy/power sweep", cmdBitwidth},
		{"sigmoid", "E4: sigmoid LUT approximation error", cmdSigmoid},
		{"fig4c", "E5: Viola-Jones parameter sensitivity (Fig. 4c)", cmdFig4c},
		{"fa-e2e", "E6: end-to-end face-authentication workload", cmdFAE2E},
		{"fa-offload", "E7: offload vs onload on harvested power", cmdFAOffload},
		{"fig6", "E8: bilateral filter demo (Fig. 6)", cmdFig6},
		{"fig7", "E9: grid size vs depth quality (Fig. 7)", cmdFig7},
		{"fig9", "E10: per-block compute share and bytes (Fig. 9)", cmdFig9},
		{"fig10", "E11: pipeline configurations (Fig. 10)", cmdFig10},
		{"table1", "E12: FPGA resource requirements (Table I)", cmdTable1},
		{"linksweep", "E13: uplink bandwidth sensitivity", cmdLinkSweep},
		{"stereo-baseline", "E14: BSSA vs block matching", cmdStereoBaseline},
		{"compress-block", "E15: in-camera compression as an optional block", cmdCompressBlock},
		{"fa-roc", "E16: authentication threshold sweep (miss vs false-accept)", cmdFAROC},
		{"fleet", "F1: camera-fleet sweep with shared-uplink contention", cmdFleet},
		{"topo", "F2: tiered gateway topology with adaptive placement", cmdTopo},
	}
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	name := os.Args[1]
	args := os.Args[2:]
	if name == "all" {
		for _, c := range commands() {
			fmt.Printf("\n================ %s — %s ================\n", c.name, c.brief)
			if err := c.run(nil); err != nil {
				fmt.Fprintf(os.Stderr, "camsim %s: %v\n", c.name, err)
				os.Exit(1)
			}
		}
		return
	}
	for _, c := range commands() {
		if c.name == name {
			if err := c.run(args); err != nil {
				fmt.Fprintf(os.Stderr, "camsim %s: %v\n", name, err)
				os.Exit(1)
			}
			return
		}
	}
	fmt.Fprintf(os.Stderr, "camsim: unknown experiment %q\n\n", name)
	usage()
	os.Exit(2)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: camsim <experiment> [flags]")
	fmt.Fprintln(os.Stderr, "\nexperiments:")
	cs := commands()
	sort.Slice(cs, func(i, j int) bool { return cs[i].name < cs[j].name })
	for _, c := range cs {
		fmt.Fprintf(os.Stderr, "  %-16s %s\n", c.name, c.brief)
	}
	fmt.Fprintln(os.Stderr, "  all              run every experiment in order")
}
