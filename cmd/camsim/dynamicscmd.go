package main

import (
	"fmt"

	"camsim/internal/fleet"
)

// reportDynamicsTopo renders the -dynamics variant of the topo
// experiment: the two-gateway fleet of DynamicsDemoScenario living
// through a scheduled day of fleet weather — a diurnal rate swell,
// camera churn, a gateway outage with re-homing to the sibling, a
// backhaul degradation — next to the identical fleet with the schedule
// stripped, so every divergence in the comparison is the dynamics
// engine's doing.
func reportDynamicsTopo(seed int64, duration float64, workers int) error {
	dyn := fleet.DynamicsDemoScenario(seed)
	dyn.Duration = duration
	steady := dyn
	steady.Name = "topo-dynamics/steady"
	steady.Dynamics = nil
	scenarios := []fleet.Scenario{steady, dyn}
	outcomes := fleet.Sweep(scenarios, workers)
	for _, o := range outcomes {
		if o.Err != nil {
			return o.Err
		}
	}

	fmt.Printf("fleet dynamics: %d cameras behind 2 gateways, %gs of capture, seed %d\n",
		dyn.Cameras(), duration, seed)
	for _, ti := range outcomes[0].Result.Tiers {
		line := fmt.Sprintf("  %-8s %.1f Gb/s %-10s", ti.Label(), ti.Gbps, ti.Contention)
		if ti.Compute != nil {
			line += fmt.Sprintf("  %d core(s)", ti.Compute.Cores)
		}
		fmt.Println(line)
	}

	fmt.Println("\nfault schedule:")
	for _, ev := range dyn.Dynamics.Events {
		target := ev.Class
		if target == "" {
			target = ev.Tier
		}
		detail := ""
		switch ev.Kind {
		case fleet.DynCameraJoin, fleet.DynCameraLeave:
			detail = fmt.Sprintf("×%d", ev.Count)
		case fleet.DynLinkDegrade:
			detail = fmt.Sprintf("factor %g", ev.Factor)
		case fleet.DynTierOutage:
			detail = "fallback " + ev.Fallback
		case fleet.DynFPSProfile:
			detail = fmt.Sprintf("×%g", ev.Multiplier)
		case fleet.DynComputeScale:
			detail = fmt.Sprintf("%d cores", ev.Cores)
		}
		fmt.Printf("  t=%-5g %-14s %-9s %s\n", ev.Time, ev.Kind, target, detail)
	}
	fmt.Println()

	fmt.Printf("%-9s %10s %10s %9s %9s %8s %8s\n",
		"run", "captured", "offloaded", "east-p95", "west-p95", "drops", "outage")
	labels := []string{"steady", "dynamic"}
	for i, o := range outcomes {
		r := o.Result
		fmt.Printf("%-9s %10d %10d %9s %9s %7.1f%% %8d\n",
			labels[i], r.Total.Captured, r.Total.Offloaded,
			fleet.FormatLatency(r.Classes[0].LatencyP95),
			fleet.FormatLatency(r.Classes[1].LatencyP95),
			r.Total.DropRate()*100, r.Total.DroppedOutage)
	}

	d := outcomes[1].Result.Dynamics
	fmt.Printf("\ndynamics ledger: %d events  joined %d  left %d  rehomed %d  outage-drops %d\n",
		d.Events, d.Joined, d.Left, d.Rehomed, d.DroppedOutage)
	for _, ti := range outcomes[1].Result.Tiers {
		if ti.DowntimeSec > 0 || ti.OutageDrops > 0 {
			fmt.Printf("  %-8s down %.2fs  outage-drops %d\n", ti.Label(), ti.DowntimeSec, ti.OutageDrops)
		}
	}

	fmt.Println("\nper-tier and per-class detail:")
	for _, o := range outcomes {
		fmt.Print(o.Result.Table())
	}
	fmt.Println("\ndynamics reading of the paper's tradeoff: a fleet provisioned for its")
	fmt.Println("nominal rates meets a real day — the diurnal swell and the day-shift")
	fmt.Println("joiners push the east gateway toward saturation, the outage drops every")
	fmt.Println("frame it was carrying and re-homes the east cameras onto the sibling")
	fmt.Println("gateway (which then carries both populations through its own degraded")
	fmt.Println("window), and recovery re-homes them back. The steady run is the control:")
	fmt.Println("every extra capture, drop and re-homing in the dynamic column is the")
	fmt.Println("scheduled weather, replayed bit-for-bit from the scenario's seed.")
	return nil
}
