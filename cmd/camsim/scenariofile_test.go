package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"camsim/internal/fleet"
)

// exampleScenario is the checked-in JSON the energy-placement example (and
// this test) drive through the -scenario loader.
const exampleScenario = "../../examples/energy-placement/scenario.json"

// TestScenarioFileRoundTrip pins the file-driven scenario surface: the
// examples/ JSON must parse, survive a marshal → re-parse round trip
// unchanged (so every new field — tiers' tx_per_byte_j, the
// energy-latency policy knobs, the global section — is actually wired
// through the codec), and run to the same table as the original.
func TestScenarioFileRoundTrip(t *testing.T) {
	data, err := os.ReadFile(filepath.FromSlash(exampleScenario))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := fleet.ParseScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Global == nil || len(sc.Tiers) == 0 {
		t.Fatalf("example scenario lost its energy sections: %+v", sc)
	}
	out, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	again, err := fleet.ParseScenario(out)
	if err != nil {
		t.Fatalf("re-parse: %v\njson: %s", err, out)
	}
	if !reflect.DeepEqual(sc, again) {
		t.Fatalf("round trip changed the scenario:\n%+v\nvs\n%+v", sc, again)
	}
	r1, err := fleet.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := fleet.Run(again)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Table() != r2.Table() {
		t.Fatalf("round-tripped scenario runs differently:\n%s\nvs\n%s", r1.Table(), r2.Table())
	}
}

func TestRunScenarioFile(t *testing.T) {
	out := captureStdout(t, func() error { return runScenarioFile(filepath.FromSlash(exampleScenario)) })
	for _, want := range []string{"warehouse-energy", "global budget 26.0W", "energy camera"} {
		if !strings.Contains(out, want) {
			t.Fatalf("scenario-file output missing %q:\n%s", want, out)
		}
	}
	if err := runScenarioFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("accepted a missing scenario file")
	}
}

// TestScenarioFileRejectsUnknownFields pins strict decoding: a typoed
// knob in a scenario file must fail, not silently run without it.
func TestScenarioFileRejectsUnknownFields(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{
	  "name": "typo", "duration_sec": 1,
	  "uplink": {"gbps": 1}, "budget_watts": 10,
	  "classes": [{"name": "c", "count": 1, "fps": 1}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := runScenarioFile(bad)
	if err == nil || !strings.Contains(err.Error(), "budget_watts") {
		t.Fatalf("unknown field not rejected: %v", err)
	}
}
