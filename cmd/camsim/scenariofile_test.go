package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"camsim/internal/fleet"
)

// exampleScenario is the checked-in JSON the energy-placement example (and
// this test) drive through the -scenario loader; federatedScenario is the
// federated-fleet example's, exercising downlinks and the federated
// section through the same codec.
const (
	exampleScenario   = "../../examples/energy-placement/scenario.json"
	federatedScenario = "../../examples/federated-fleet/scenario.json"
	computeScenario   = "../../examples/compute-placement/scenario.json"
	dynamicsScenario  = "../../examples/fleet-dynamics/scenario.json"
)

// TestScenarioFileRoundTrip pins the file-driven scenario surface: the
// examples/ JSON must parse, survive a marshal → re-parse round trip
// unchanged (so every new field — tiers' tx_per_byte_j, the
// energy-latency policy knobs, the global section — is actually wired
// through the codec), and run to the same table as the original.
func TestScenarioFileRoundTrip(t *testing.T) {
	data, err := os.ReadFile(filepath.FromSlash(exampleScenario))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := fleet.ParseScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Global == nil || len(sc.Tiers) == 0 {
		t.Fatalf("example scenario lost its energy sections: %+v", sc)
	}
	out, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	again, err := fleet.ParseScenario(out)
	if err != nil {
		t.Fatalf("re-parse: %v\njson: %s", err, out)
	}
	if !reflect.DeepEqual(sc, again) {
		t.Fatalf("round trip changed the scenario:\n%+v\nvs\n%+v", sc, again)
	}
	r1, err := fleet.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := fleet.Run(again)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Table() != r2.Table() {
		t.Fatalf("round-tripped scenario runs differently:\n%s\nvs\n%s", r1.Table(), r2.Table())
	}
}

// TestFederatedScenarioFileRoundTrip gives the federated example the same
// codec guarantee: tier downlinks and the federated section must survive
// a marshal → re-parse round trip and replay to the identical table.
func TestFederatedScenarioFileRoundTrip(t *testing.T) {
	data, err := os.ReadFile(filepath.FromSlash(federatedScenario))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := fleet.ParseScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Federated == nil || sc.Tiers[0].Downlink == nil {
		t.Fatalf("example scenario lost its federated sections: %+v", sc)
	}
	out, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	again, err := fleet.ParseScenario(out)
	if err != nil {
		t.Fatalf("re-parse: %v\njson: %s", err, out)
	}
	if !reflect.DeepEqual(sc, again) {
		t.Fatalf("round trip changed the scenario:\n%+v\nvs\n%+v", sc, again)
	}
	r1, err := fleet.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := fleet.Run(again)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Table() != r2.Table() {
		t.Fatalf("round-tripped scenario runs differently:\n%s\nvs\n%s", r1.Table(), r2.Table())
	}
}

// TestComputeScenarioFileRoundTrip gives the compute example the same
// codec guarantee: the per-tier compute sections — core pools, service
// rates, per-class service_sec overrides, disciplines — must survive a
// marshal → re-parse round trip and replay to the identical table.
func TestComputeScenarioFileRoundTrip(t *testing.T) {
	data, err := os.ReadFile(filepath.FromSlash(computeScenario))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := fleet.ParseScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Tiers[0].Compute == nil || len(sc.Tiers[0].Compute.ServiceSec) == 0 {
		t.Fatalf("example scenario lost its compute sections: %+v", sc)
	}
	out, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	again, err := fleet.ParseScenario(out)
	if err != nil {
		t.Fatalf("re-parse: %v\njson: %s", err, out)
	}
	if !reflect.DeepEqual(sc, again) {
		t.Fatalf("round trip changed the scenario:\n%+v\nvs\n%+v", sc, again)
	}
	r1, err := fleet.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := fleet.Run(again)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Table() != r2.Table() {
		t.Fatalf("round-tripped scenario runs differently:\n%s\nvs\n%s", r1.Table(), r2.Table())
	}
}

// TestDynamicsScenarioFileRoundTrip gives the dynamics example the same
// codec guarantee: the fault schedule — event times, kinds, churn
// counts, fallbacks, factors — must survive a marshal → re-parse round
// trip and replay to the identical table.
func TestDynamicsScenarioFileRoundTrip(t *testing.T) {
	data, err := os.ReadFile(filepath.FromSlash(dynamicsScenario))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := fleet.ParseScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Dynamics == nil || len(sc.Dynamics.Events) == 0 {
		t.Fatalf("example scenario lost its dynamics section: %+v", sc)
	}
	out, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	again, err := fleet.ParseScenario(out)
	if err != nil {
		t.Fatalf("re-parse: %v\njson: %s", err, out)
	}
	if !reflect.DeepEqual(sc, again) {
		t.Fatalf("round trip changed the scenario:\n%+v\nvs\n%+v", sc, again)
	}
	r1, err := fleet.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := fleet.Run(again)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Table() != r2.Table() {
		t.Fatalf("round-tripped scenario runs differently:\n%s\nvs\n%s", r1.Table(), r2.Table())
	}
}

func TestRunScenarioFile(t *testing.T) {
	out := captureStdout(t, func() error { return runScenarioFile(filepath.FromSlash(exampleScenario), "") })
	for _, want := range []string{"warehouse-energy", "global budget 26.0W", "energy camera"} {
		if !strings.Contains(out, want) {
			t.Fatalf("scenario-file output missing %q:\n%s", want, out)
		}
	}
	if err := runScenarioFile(filepath.Join(t.TempDir(), "missing.json"), ""); err == nil {
		t.Fatal("accepted a missing scenario file")
	}
}

// TestRunScenarioFileTimeSeries drives the -timeseries surface: a
// streaming scenario writes its windowed telemetry as CSV or JSON by
// extension, and a scenario without windows rejects the flag instead of
// writing an empty file.
func TestRunScenarioFileTimeSeries(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "streaming.json")
	if err := os.WriteFile(path, []byte(`{
	  "name": "ts-demo", "seed": 3, "duration_sec": 2,
	  "uplink": {"gbps": 0.01},
	  "classes": [{"name": "cam", "count": 4, "fps": 5, "frame_bytes": 100000}],
	  "telemetry": {"streaming": true, "window_sec": 0.5}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}

	csvOut := filepath.Join(dir, "out.csv")
	out := captureStdout(t, func() error { return runScenarioFile(path, csvOut) })
	if !strings.Contains(out, "time series:") || !strings.Contains(out, "windows of 0.5s") {
		t.Fatalf("missing time-series summary:\n%s", out)
	}
	csv, err := os.ReadFile(csvOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "window,start_sec,end_sec,kind,name,") {
		t.Fatalf("CSV header wrong: %.80s", csv)
	}
	if !strings.Contains(string(csv), ",class,cam,") || !strings.Contains(string(csv), ",tier,wan,") {
		t.Fatalf("CSV rows missing class/tier entries:\n%s", csv)
	}

	jsonOut := filepath.Join(dir, "out.json")
	captureStdout(t, func() error { return runScenarioFile(path, jsonOut) })
	js, err := os.ReadFile(jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	var ts fleet.TimeSeries
	if err := json.Unmarshal(js, &ts); err != nil {
		t.Fatalf("JSON output does not parse: %v", err)
	}
	if ts.WindowSec != 0.5 || len(ts.Windows) == 0 {
		t.Fatalf("JSON time series malformed: %+v", ts)
	}

	// No window in the scenario → the flag must fail loudly.
	if err := runScenarioFile(filepath.FromSlash(exampleScenario), filepath.Join(dir, "nope.csv")); err == nil ||
		!strings.Contains(err.Error(), "window_sec") {
		t.Fatalf("windowless scenario accepted -timeseries: %v", err)
	}
}

// TestScenarioFileRejectsUnknownFields pins strict decoding: a typoed
// knob in a scenario file must fail, not silently run without it.
func TestScenarioFileRejectsUnknownFields(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{
	  "name": "typo", "duration_sec": 1,
	  "uplink": {"gbps": 1}, "budget_watts": 10,
	  "classes": [{"name": "c", "count": 1, "fps": 1}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := runScenarioFile(bad, "")
	if err == nil || !strings.Contains(err.Error(), "budget_watts") {
		t.Fatalf("unknown field not rejected: %v", err)
	}
	if !strings.Contains(err.Error(), bad) {
		t.Fatalf("parse error does not name the file: %v", err)
	}
}

// TestScenarioFileErrorsNameTheFile pins the error surface a sweep over
// many scenario files depends on: whichever stage fails — decoding or
// validation — the message carries the offending file's path.
func TestScenarioFileErrorsNameTheFile(t *testing.T) {
	cases := []struct {
		name, body string
	}{
		{"syntax", `{"name": "broken"`},
		{"validation", `{
		  "name": "fl-flat", "duration_sec": 1,
		  "uplink": {"gbps": 1},
		  "classes": [{"name": "c", "count": 1, "fps": 1, "frame_bytes": 10}],
		  "federated": {"rounds": 1, "update_bytes": 100}
		}`},
	}
	for _, tc := range cases {
		path := filepath.Join(t.TempDir(), tc.name+".json")
		if err := os.WriteFile(path, []byte(tc.body), 0o644); err != nil {
			t.Fatal(err)
		}
		err := runScenarioFile(path, "")
		if err == nil || !strings.Contains(err.Error(), path) {
			t.Errorf("%s error does not name the file: %v", tc.name, err)
		}
	}
}
