package main

import (
	"flag"
	"fmt"

	"camsim/internal/fleet"
)

// cmdTopo runs F2: the tiered-topology extension of the fleet experiment.
// Two edge gateways each aggregate adaptive VR camera heads and battery-
// free face-auth cameras over finite camera→gateway links, and both funnel
// into a shared WAN. The same congested fleet is run once per placement
// policy: static (pinned at raw sensor offload), latency-threshold
// (one-way escalation toward in-camera compute) and hysteresis (two-way
// with a dead band). The point is the runtime version of the paper's
// tradeoff: when the network tier is the bottleneck, moving computation
// into the camera is the only thing that restores latency.
//
// With -depth n (n ≥ 2) the network deepens into an n-tier chain —
// camera → gateway → metro… → core — each hop with its own capacity and
// one-way propagation delay, so reported latencies include the
// accumulated propagation floor no placement can adapt away.
//
// With -global the experiment flips to the energy side of the scale: an
// *uncongested* two-gateway fleet where latency never asks the cameras to
// move, compared across nobody watching energy (static), each class
// minimizing its own energy (the energy-latency policy), and the global
// controller shedding watts only down to a fleet-wide power budget.
//
// With -fl the fleet trains a model: two gateway populations run
// round-structured federated learning over the frame traffic, pushing
// per-camera updates up the tree (aggregated in-network at each tier)
// and receiving the merged model back down the new tier downlinks.
//
// With -compute every tier owns a finite core pool and frames queue for
// service after transit, so the experiment becomes the joint
// network+compute placement problem: a fleet whose links are half idle
// can still drown a gateway's cores, and only placement that shrinks
// the shipped payload relieves them.
//
// With -dynamics the fleet lives through a scheduled day of weather —
// a diurnal rate swell, camera churn, a gateway outage whose cameras
// re-home to the sibling and back, a degraded backhaul — compared
// against the identical fleet with the schedule stripped.
func cmdTopo(args []string) error {
	fs := flag.NewFlagSet("topo", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "simulation seed")
	duration := fs.Float64("duration", 8, "simulated seconds of capture")
	depth := fs.Int("depth", 0, "network tiers between camera and cloud (0 = classic two-gateway demo, ≥2 = gateway→metro→core chain)")
	global := fs.Bool("global", false, "run the energy-aware placement demo (static vs energy-latency vs global budget)")
	flDemo := fs.Bool("fl", false, "run the federated-learning demo (in-network aggregation over bidirectional tiers)")
	compute := fs.Bool("compute", false, "run the finite-compute demo (per-tier core pools; static vs adaptive vs global)")
	dynamics := fs.Bool("dynamics", false, "run the fleet-dynamics demo (churn, outage with re-homing, link degradation on a fault schedule)")
	workers := fs.Int("workers", 0, "parallel sweep workers (0 = GOMAXPROCS)")
	scenario := fs.String("scenario", "", "run one JSON scenario file instead of the built-in demo (other flags ignored)")
	timeseries := fs.String("timeseries", "", "with -scenario: write the windowed telemetry time series to this file (.json for JSON, else CSV)")
	fs.Usage = topoUsage(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scenario != "" {
		return runScenarioFile(*scenario, *timeseries)
	}
	if *timeseries != "" {
		return fmt.Errorf("topo: -timeseries needs -scenario (the built-in demos have no telemetry section)")
	}
	if *depth != 0 && *depth < 2 {
		return fmt.Errorf("topo: -depth must be 0 (classic demo) or ≥ 2, got %d", *depth)
	}
	demos := 0
	for _, on := range []bool{*flDemo, *global, *compute, *dynamics, *depth != 0} {
		if on {
			demos++
		}
	}
	if demos > 1 {
		return fmt.Errorf("topo: -fl, -global, -compute, -dynamics and -depth are separate demos; pick one")
	}
	if *flDemo {
		return reportFederatedTopo(*seed, *duration)
	}
	if *compute {
		return reportComputeTopo(*seed, *duration, *workers)
	}
	if *dynamics {
		return reportDynamicsTopo(*seed, *duration, *workers)
	}
	if *global {
		return reportGlobalTopo(*seed, *duration, *workers)
	}

	policies := []string{fleet.PolicyStatic, fleet.PolicyLatencyThreshold, fleet.PolicyHysteresis}
	var scenarios []fleet.Scenario
	for _, pol := range policies {
		var sc fleet.Scenario
		var err error
		if *depth >= 2 {
			sc, err = fleet.DeepTopologyScenario(*seed, *depth, pol)
		} else {
			sc, err = fleet.TopologyDemoScenario(*seed, pol)
		}
		if err != nil {
			return err
		}
		sc.Duration = *duration
		scenarios = append(scenarios, sc)
	}
	outcomes := fleet.Sweep(scenarios, *workers)
	for _, o := range outcomes {
		if o.Err != nil {
			return o.Err
		}
	}
	if *depth >= 2 {
		return reportDeepTopo(scenarios, outcomes, policies, *duration, *seed)
	}

	sc := scenarios[0]
	fmt.Printf("tiered fleet: %d cameras behind %d gateways, WAN %.1f Gb/s, %gs of capture, seed %d\n",
		sc.Cameras(), len(sc.Gateways), sc.Uplink.Gbps, *duration, *seed)
	for _, gw := range sc.Gateways {
		fmt.Printf("  %s: %.1f Gb/s %s uplink\n", gw.Name, gw.Uplink.Gbps, gw.Uplink.Contention)
	}
	fmt.Println()

	fmt.Printf("%-18s %8s %8s %8s %9s %7s %7s %7s %7s\n",
		"policy", "VR-p50", "VR-p95", "FA-p95", "VR-drop", "moves", "gw-a", "gw-b", "wan")
	for i, o := range outcomes {
		r := o.Result
		vrA, faA := r.Classes[0], r.Classes[1]
		fmt.Printf("%-18s %8s %8s %8s %8.1f%% %7d %6.1f%% %6.1f%% %6.1f%%\n",
			policies[i],
			fleet.FormatLatency(vrA.LatencyP50), fleet.FormatLatency(vrA.LatencyP95),
			fleet.FormatLatency(faA.LatencyP95),
			vrA.DropRate()*100, r.Total.Switches,
			r.Tiers[0].Utilization*100, r.Tiers[1].Utilization*100, r.Tiers[2].Utilization*100)
	}

	fmt.Println("\nper-tier and per-class detail:")
	for _, o := range outcomes {
		fmt.Print(o.Result.Table())
	}
	fmt.Println("\ntiered reading of the paper's tradeoff: at raw offload the VR heads")
	fmt.Println("oversubscribe their gateway links several times over and the static fleet")
	fmt.Println("drowns in queue drops; the adaptive policies watch offload latency, shift")
	fmt.Println("the cameras to the full in-camera pipeline placement, and restore both")
	fmt.Println("VR latency and the gateway tiers — while the face-auth chips ride along")
	fmt.Println("at millisecond latencies under fair-share either way.")
	return nil
}

// reportGlobalTopo renders the -global variant: the same uncongested
// fleet under three energy regimes — nobody minimizing energy, per-class
// greedy minimization, and the budgeted global controller.
func reportGlobalTopo(seed int64, duration float64, workers int) error {
	modes := []string{fleet.PolicyStatic, fleet.PolicyEnergyLatency, fleet.GlobalModeBudget}
	var scenarios []fleet.Scenario
	for _, mode := range modes {
		sc, err := fleet.EnergyDemoScenario(seed, mode)
		if err != nil {
			return err
		}
		sc.Duration = duration
		scenarios = append(scenarios, sc)
	}
	outcomes := fleet.Sweep(scenarios, workers)
	for _, o := range outcomes {
		if o.Err != nil {
			return o.Err
		}
	}

	sc := scenarios[0]
	fmt.Printf("energy placement: %d cameras behind 2 gateways, %gs of capture, seed %d\n",
		sc.Cameras(), duration, seed)
	for _, ti := range outcomes[0].Result.Tiers {
		fmt.Printf("  %-12s %.1f Gb/s %-10s fwd %.3g J/byte\n",
			ti.Label(), ti.Gbps, ti.Contention, ti.TxPerByteJ)
	}
	fmt.Println()

	fmt.Printf("%-16s %9s %9s %8s %8s %7s\n",
		"mode", "proj-W", "avg-W", "VR-p50", "VR-p95", "moves")
	for i, o := range outcomes {
		r := o.Result
		vrA := r.Classes[0]
		fmt.Printf("%-16s %9.1f %9.1f %8s %8s %7d\n",
			modes[i], r.Energy.ProjectedW, r.Energy.AvgPowerW,
			fleet.FormatLatency(vrA.LatencyP50), fleet.FormatLatency(vrA.LatencyP95),
			r.Total.Switches)
	}

	fmt.Println("\nper-class detail and global epochs:")
	for _, o := range outcomes {
		fmt.Print(o.Result.Table())
	}
	fmt.Println("\nenergy reading of the paper's tradeoff: the links are half idle, so no")
	fmt.Println("latency policy ever moves a camera — but raw offload ships ~12 MB per frame")
	fmt.Println("through radio and every forwarding hop, and the watts add up. The local")
	fmt.Println("energy-latency policy walks its whole class in-camera (cheapest for each")
	fmt.Println("class, slowest frames); the global controller spends its fleet-wide budget")
	fmt.Println("instead, moving only the cameras it must and leaving the rest on the fast")
	fmt.Println("raw-offload placement.")
	return nil
}

// reportFederatedTopo renders the -fl variant: a two-gateway fleet that
// trains a face-auth model with round-structured federated learning while
// its frame traffic keeps flowing. The report leads with the bidirectional
// link table, then the per-round cadence, then the aggregation ledger —
// the bytes the in-network merge kept off the WAN.
func reportFederatedTopo(seed int64, duration float64) error {
	sc := fleet.FederatedDemoScenario(seed)
	sc.Duration = duration
	res, err := fleet.Run(sc)
	if err != nil {
		return err
	}
	f := res.Federated

	fmt.Printf("federated fleet: %d cameras training across %d tiers, %gs of capture, seed %d\n",
		sc.Cameras(), len(sc.Tiers), duration, seed)
	for _, ti := range res.Tiers {
		fmt.Printf("  %-10s up %.1f Gb/s %-10s  down %.1f Gb/s %-10s  prop %s\n",
			ti.Label(), ti.Gbps, ti.Contention, ti.DownGbps, ti.DownContention,
			fleet.FormatLatency(ti.PropagationSec))
	}
	fmt.Printf("  model %v weights ×%gB, updates compressed ×%g: %dB up, %dB down\n\n",
		sc.Federated.Model.Layers, sc.Federated.Model.BytesPerWeight,
		sc.Federated.Model.Compress, f.UpdateBytes, f.ModelBytes)

	fmt.Printf("%-7s %9s %9s %9s %10s %14s\n",
		"round", "start", "agg-done", "end", "latency", "straggler-p95")
	for i, rd := range f.PerRound {
		fmt.Printf("%-7d %8.3fs %8.3fs %8.3fs %10s %14s\n",
			i+1, rd.Start, rd.AggDone, rd.End,
			fleet.FormatLatency(rd.Latency), fleet.FormatLatency(rd.StragglerP95))
	}
	fmt.Printf("\nround latency p50 %s p95 %s, %d cameras per round\n",
		fleet.FormatLatency(f.RoundP50), fleet.FormatLatency(f.RoundP95), f.Cameras)
	fmt.Printf("upstream %.3g MB, downstream %.3g MB; without in-network aggregation\n",
		f.UpBytes/1e6, f.DownBytes/1e6)
	fmt.Printf("the updates would have cost %.3g MB (%.1f%% saved)\n",
		f.NaiveUpBytes/1e6, f.SavedFraction()*100)

	fmt.Println("\nper-tier and per-class detail:")
	fmt.Print(res.Table())
	fmt.Println("\nfederated reading of the paper's tradeoff: the edge links absorb one")
	fmt.Println("update per camera per round alongside the frame traffic, but each tier")
	fmt.Println("merges its fan-in before forwarding, so the WAN carries a single blob per")
	fmt.Println("round — the same in-network computation that moves vision work into the")
	fmt.Println("cameras also keeps the training traffic from ever reaching the core.")
	return nil
}

// reportDeepTopo renders the -depth variant: the tier chain with its
// per-hop delays, then per-policy latency and per-tier utilization.
func reportDeepTopo(scenarios []fleet.Scenario, outcomes []fleet.Outcome, policies []string, duration float64, seed int64) error {
	sc := scenarios[0]
	r0 := outcomes[0].Result
	fmt.Printf("deep topology: %d cameras across %d tiers, %gs of capture, seed %d\n",
		sc.Cameras(), len(sc.Tiers), duration, seed)
	for _, ti := range r0.Tiers {
		fmt.Printf("  %-16s %.1f Gb/s %-10s prop %s\n",
			ti.Label(), ti.Gbps, ti.Contention, fleet.FormatLatency(ti.PropagationSec))
	}
	// The leaf-to-root propagation floor below every reported latency:
	// gateway chains are symmetric here, so follow the first leaf up the
	// resolved tree the result already carries.
	at := r0.Tiers[0]
	propFloor := at.PropagationSec
	for at.Parent != "" {
		next := r0.TierNamed(at.Parent)
		if next == nil {
			break
		}
		at = *next
		propFloor += at.PropagationSec
	}
	fmt.Printf("  propagation floor (one-way, leaf to cloud): %s\n\n", fleet.FormatLatency(propFloor))

	fmt.Printf("%-18s %8s %8s %8s %9s %7s\n",
		"policy", "VR-p50", "VR-p95", "FA-p95", "VR-drop", "moves")
	for i, o := range outcomes {
		r := o.Result
		vrA, faA := r.Classes[0], r.Classes[1]
		fmt.Printf("%-18s %8s %8s %8s %8.1f%% %7d\n",
			policies[i],
			fleet.FormatLatency(vrA.LatencyP50), fleet.FormatLatency(vrA.LatencyP95),
			fleet.FormatLatency(faA.LatencyP95),
			vrA.DropRate()*100, r.Total.Switches)
	}

	fmt.Println("\nper-tier and per-class detail:")
	for _, o := range outcomes {
		fmt.Print(o.Result.Table())
	}
	fmt.Println("\nthe deep chain sharpens the tradeoff: every hop adds transmission plus")
	fmt.Println("propagation, so even after the adaptive policies shift the VR heads to")
	fmt.Println("in-camera compute, offload latency bottoms out at the propagation floor —")
	fmt.Println("computation placement can win back queueing delay, never the speed of light.")
	return nil
}
