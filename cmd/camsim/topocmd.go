package main

import (
	"flag"
	"fmt"

	"camsim/internal/fleet"
)

// cmdTopo runs F2: the tiered-topology extension of the fleet experiment.
// Two edge gateways each aggregate adaptive VR camera heads and battery-
// free face-auth cameras over finite camera→gateway links, and both funnel
// into a shared WAN. The same congested fleet is run once per placement
// policy: static (pinned at raw sensor offload), latency-threshold
// (one-way escalation toward in-camera compute) and hysteresis (two-way
// with a dead band). The point is the runtime version of the paper's
// tradeoff: when the network tier is the bottleneck, moving computation
// into the camera is the only thing that restores latency.
func cmdTopo(args []string) error {
	fs := flag.NewFlagSet("topo", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "simulation seed")
	duration := fs.Float64("duration", 8, "simulated seconds of capture")
	workers := fs.Int("workers", 0, "parallel sweep workers (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	policies := []string{fleet.PolicyStatic, fleet.PolicyLatencyThreshold, fleet.PolicyHysteresis}
	var scenarios []fleet.Scenario
	for _, pol := range policies {
		sc, err := fleet.TopologyDemoScenario(*seed, pol)
		if err != nil {
			return err
		}
		sc.Duration = *duration
		scenarios = append(scenarios, sc)
	}
	outcomes := fleet.Sweep(scenarios, *workers)
	for _, o := range outcomes {
		if o.Err != nil {
			return o.Err
		}
	}

	sc := scenarios[0]
	fmt.Printf("tiered fleet: %d cameras behind %d gateways, WAN %.1f Gb/s, %gs of capture, seed %d\n",
		sc.Cameras(), len(sc.Gateways), sc.Uplink.Gbps, *duration, *seed)
	for _, gw := range sc.Gateways {
		fmt.Printf("  %s: %.1f Gb/s %s uplink\n", gw.Name, gw.Uplink.Gbps, gw.Uplink.Contention)
	}
	fmt.Println()

	fmt.Printf("%-18s %8s %8s %8s %9s %7s %7s %7s %7s\n",
		"policy", "VR-p50", "VR-p95", "FA-p95", "VR-drop", "moves", "gw-a", "gw-b", "wan")
	for i, o := range outcomes {
		r := o.Result
		vrA, faA := r.Classes[0], r.Classes[1]
		fmt.Printf("%-18s %8s %8s %8s %8.1f%% %7d %6.1f%% %6.1f%% %6.1f%%\n",
			policies[i],
			fleet.FormatLatency(vrA.LatencyP50), fleet.FormatLatency(vrA.LatencyP95),
			fleet.FormatLatency(faA.LatencyP95),
			vrA.DropRate()*100, r.Total.Switches,
			r.Tiers[0].Utilization*100, r.Tiers[1].Utilization*100, r.Tiers[2].Utilization*100)
	}

	fmt.Println("\nper-tier and per-class detail:")
	for _, o := range outcomes {
		fmt.Print(o.Result.Table())
	}
	fmt.Println("\ntiered reading of the paper's tradeoff: at raw offload the VR heads")
	fmt.Println("oversubscribe their gateway links several times over and the static fleet")
	fmt.Println("drowns in queue drops; the adaptive policies watch offload latency, shift")
	fmt.Println("the cameras to the full in-camera pipeline placement, and restore both")
	fmt.Println("VR latency and the gateway tiers — while the face-auth chips ride along")
	fmt.Println("at millisecond latencies under fair-share either way.")
	return nil
}
