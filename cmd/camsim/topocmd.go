package main

import (
	"flag"
	"fmt"

	"camsim/internal/fleet"
)

// cmdTopo runs F2: the tiered-topology extension of the fleet experiment.
// Two edge gateways each aggregate adaptive VR camera heads and battery-
// free face-auth cameras over finite camera→gateway links, and both funnel
// into a shared WAN. The same congested fleet is run once per placement
// policy: static (pinned at raw sensor offload), latency-threshold
// (one-way escalation toward in-camera compute) and hysteresis (two-way
// with a dead band). The point is the runtime version of the paper's
// tradeoff: when the network tier is the bottleneck, moving computation
// into the camera is the only thing that restores latency.
//
// With -depth n (n ≥ 2) the network deepens into an n-tier chain —
// camera → gateway → metro… → core — each hop with its own capacity and
// one-way propagation delay, so reported latencies include the
// accumulated propagation floor no placement can adapt away.
func cmdTopo(args []string) error {
	fs := flag.NewFlagSet("topo", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "simulation seed")
	duration := fs.Float64("duration", 8, "simulated seconds of capture")
	depth := fs.Int("depth", 0, "network tiers between camera and cloud (0 = classic two-gateway demo, ≥2 = gateway→metro→core chain)")
	workers := fs.Int("workers", 0, "parallel sweep workers (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *depth != 0 && *depth < 2 {
		return fmt.Errorf("topo: -depth must be 0 (classic demo) or ≥ 2, got %d", *depth)
	}

	policies := []string{fleet.PolicyStatic, fleet.PolicyLatencyThreshold, fleet.PolicyHysteresis}
	var scenarios []fleet.Scenario
	for _, pol := range policies {
		var sc fleet.Scenario
		var err error
		if *depth >= 2 {
			sc, err = fleet.DeepTopologyScenario(*seed, *depth, pol)
		} else {
			sc, err = fleet.TopologyDemoScenario(*seed, pol)
		}
		if err != nil {
			return err
		}
		sc.Duration = *duration
		scenarios = append(scenarios, sc)
	}
	outcomes := fleet.Sweep(scenarios, *workers)
	for _, o := range outcomes {
		if o.Err != nil {
			return o.Err
		}
	}
	if *depth >= 2 {
		return reportDeepTopo(scenarios, outcomes, policies, *duration, *seed)
	}

	sc := scenarios[0]
	fmt.Printf("tiered fleet: %d cameras behind %d gateways, WAN %.1f Gb/s, %gs of capture, seed %d\n",
		sc.Cameras(), len(sc.Gateways), sc.Uplink.Gbps, *duration, *seed)
	for _, gw := range sc.Gateways {
		fmt.Printf("  %s: %.1f Gb/s %s uplink\n", gw.Name, gw.Uplink.Gbps, gw.Uplink.Contention)
	}
	fmt.Println()

	fmt.Printf("%-18s %8s %8s %8s %9s %7s %7s %7s %7s\n",
		"policy", "VR-p50", "VR-p95", "FA-p95", "VR-drop", "moves", "gw-a", "gw-b", "wan")
	for i, o := range outcomes {
		r := o.Result
		vrA, faA := r.Classes[0], r.Classes[1]
		fmt.Printf("%-18s %8s %8s %8s %8.1f%% %7d %6.1f%% %6.1f%% %6.1f%%\n",
			policies[i],
			fleet.FormatLatency(vrA.LatencyP50), fleet.FormatLatency(vrA.LatencyP95),
			fleet.FormatLatency(faA.LatencyP95),
			vrA.DropRate()*100, r.Total.Switches,
			r.Tiers[0].Utilization*100, r.Tiers[1].Utilization*100, r.Tiers[2].Utilization*100)
	}

	fmt.Println("\nper-tier and per-class detail:")
	for _, o := range outcomes {
		fmt.Print(o.Result.Table())
	}
	fmt.Println("\ntiered reading of the paper's tradeoff: at raw offload the VR heads")
	fmt.Println("oversubscribe their gateway links several times over and the static fleet")
	fmt.Println("drowns in queue drops; the adaptive policies watch offload latency, shift")
	fmt.Println("the cameras to the full in-camera pipeline placement, and restore both")
	fmt.Println("VR latency and the gateway tiers — while the face-auth chips ride along")
	fmt.Println("at millisecond latencies under fair-share either way.")
	return nil
}

// reportDeepTopo renders the -depth variant: the tier chain with its
// per-hop delays, then per-policy latency and per-tier utilization.
func reportDeepTopo(scenarios []fleet.Scenario, outcomes []fleet.Outcome, policies []string, duration float64, seed int64) error {
	sc := scenarios[0]
	r0 := outcomes[0].Result
	fmt.Printf("deep topology: %d cameras across %d tiers, %gs of capture, seed %d\n",
		sc.Cameras(), len(sc.Tiers), duration, seed)
	for _, ti := range r0.Tiers {
		fmt.Printf("  %-16s %.1f Gb/s %-10s prop %s\n",
			ti.Label(), ti.Gbps, ti.Contention, fleet.FormatLatency(ti.PropagationSec))
	}
	// The leaf-to-root propagation floor below every reported latency:
	// gateway chains are symmetric here, so follow the first leaf up the
	// resolved tree the result already carries.
	at := r0.Tiers[0]
	propFloor := at.PropagationSec
	for at.Parent != "" {
		next := r0.TierNamed(at.Parent)
		if next == nil {
			break
		}
		at = *next
		propFloor += at.PropagationSec
	}
	fmt.Printf("  propagation floor (one-way, leaf to cloud): %s\n\n", fleet.FormatLatency(propFloor))

	fmt.Printf("%-18s %8s %8s %8s %9s %7s\n",
		"policy", "VR-p50", "VR-p95", "FA-p95", "VR-drop", "moves")
	for i, o := range outcomes {
		r := o.Result
		vrA, faA := r.Classes[0], r.Classes[1]
		fmt.Printf("%-18s %8s %8s %8s %8.1f%% %7d\n",
			policies[i],
			fleet.FormatLatency(vrA.LatencyP50), fleet.FormatLatency(vrA.LatencyP95),
			fleet.FormatLatency(faA.LatencyP95),
			vrA.DropRate()*100, r.Total.Switches)
	}

	fmt.Println("\nper-tier and per-class detail:")
	for _, o := range outcomes {
		fmt.Print(o.Result.Table())
	}
	fmt.Println("\nthe deep chain sharpens the tradeoff: every hop adds transmission plus")
	fmt.Println("propagation, so even after the adaptive policies shift the VR heads to")
	fmt.Println("in-camera compute, offload latency bottoms out at the propagation floor —")
	fmt.Println("computation placement can win back queueing delay, never the speed of light.")
	return nil
}
