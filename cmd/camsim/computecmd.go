package main

import (
	"fmt"

	"camsim/internal/fleet"
)

// reportComputeTopo renders the -compute variant of the topo experiment:
// the two-gateway fleet where every tier owns a finite core pool, so a
// frame pays capture + transit + queueing + service instead of riding
// free once the link drains. gw-a's single 16 FPS core is undersized for
// its two raw VR heads, and the run compares who notices: nobody
// (static), the per-class controllers (adaptive), or the global
// controller doing the joint network+compute placement (global).
func reportComputeTopo(seed int64, duration float64, workers int) error {
	modes := []string{fleet.PolicyStatic, fleet.ComputeModeAdaptive, fleet.GlobalModeBudget}
	var scenarios []fleet.Scenario
	for _, mode := range modes {
		sc, err := fleet.ComputeDemoScenario(seed, mode)
		if err != nil {
			return err
		}
		sc.Duration = duration
		scenarios = append(scenarios, sc)
	}
	outcomes := fleet.Sweep(scenarios, workers)
	for _, o := range outcomes {
		if o.Err != nil {
			return o.Err
		}
	}

	sc := scenarios[0]
	fmt.Printf("finite-compute fleet: %d cameras behind 2 gateways, %gs of capture, seed %d\n",
		sc.Cameras(), duration, seed)
	for _, ti := range outcomes[0].Result.Tiers {
		c := ti.Compute
		fmt.Printf("  %-8s %.1f Gb/s uplink, %d core(s) × %g fps %s\n",
			ti.Label(), ti.Gbps, c.Cores, computeRateFPS(sc, ti.Name), c.Discipline)
	}

	// The placement rows of the congested gateway's classes, priced in
	// deterministic delay floor: in-camera compute seconds plus expected
	// tier service for the bytes the row ships. This is the cost signal
	// the controllers weigh — note the harvesting face-auth class's rows
	// now differ even though its radio bytes are nearly free.
	fmt.Println("\nplacement delay floors at gw-a (compute seconds + expected tier service):")
	for _, name := range []string{"vr-gw-a", "fa-gw-a"} {
		rows, err := sc.RowDelaySeconds(name)
		if err != nil {
			return err
		}
		fmt.Printf("  %-8s", name)
		for ri, d := range rows {
			fmt.Printf("  %s %s", placementRowName(sc, name, ri), fleet.FormatLatency(d))
		}
		fmt.Println()
	}
	fmt.Println()

	fmt.Printf("%-10s %8s %8s %8s %7s %9s %10s %8s\n",
		"mode", "VR-p50", "VR-p95", "FA-p95", "moves", "gwa-cpu", "gwa-wait95", "proj-W")
	for i, o := range outcomes {
		r := o.Result
		vrA, faA := r.Classes[0], r.Classes[1]
		gwa := r.TierNamed("gw-a")
		fmt.Printf("%-10s %8s %8s %8s %7d %8.1f%% %10s %8.1f\n",
			modes[i],
			fleet.FormatLatency(vrA.LatencyP50), fleet.FormatLatency(vrA.LatencyP95),
			fleet.FormatLatency(faA.LatencyP95),
			r.Total.Switches,
			gwa.Compute.Utilization*100, fleet.FormatLatency(gwa.Compute.WaitP95),
			r.Energy.ProjectedW)
	}

	fmt.Println("\nper-tier and per-class detail:")
	for _, o := range outcomes {
		fmt.Print(o.Result.Table())
	}
	fmt.Println("\ncompute reading of the paper's tradeoff: the links are half idle, so a")
	fmt.Println("network-only model calls this fleet healthy — but gw-a's single core only")
	fmt.Println("serves 16 raw frames a second against 20 offered, and the static fleet's")
	fmt.Println("compute queue (and every face-auth crop stuck behind it in FIFO) grows for")
	fmt.Println("the whole run. Service demand scales with the bytes a placement ships, so")
	fmt.Println("moving the VR pipeline in-camera is also what relieves the core pool: the")
	fmt.Println("adaptive controllers buy the relief per class, and the global controller")
	fmt.Println("makes it a joint call — relieving gw-a for latency while refusing energy")
	fmt.Println("moves whose delay floor would break the fleet's latency target.")
	return nil
}

// computeRateFPS digs the configured base service rate for the tier out
// of the scenario (TierStats reports derived utilization, not the rate).
func computeRateFPS(sc fleet.Scenario, tier string) float64 {
	for _, ti := range sc.Tiers {
		if ti.Name == tier && ti.Compute != nil {
			return ti.Compute.ServiceRateFPS
		}
	}
	return 0
}

// placementRowName names the class's placement row ri, for the delay
// floor table.
func placementRowName(sc fleet.Scenario, class string, ri int) string {
	for _, c := range sc.Classes {
		if c.Name == class && ri < len(c.Placements) {
			return c.Placements[ri].Name
		}
	}
	return fmt.Sprintf("row%d", ri)
}
