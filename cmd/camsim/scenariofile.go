package main

import (
	"fmt"
	"os"

	"camsim/internal/fleet"
)

// runScenarioFile loads one JSON fleet.Scenario from disk, runs it, and
// prints its stat table — the file-driven face of `camsim fleet` and
// `camsim topo` (-scenario). Decoding is strict: unknown fields are
// rejected rather than silently ignored, so a typoed knob fails loudly —
// and every parse, validation or run error names the file, so a sweep
// over many scenario files points at the one that broke.
func runScenarioFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	sc, err := fleet.ParseScenario(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	res, err := fleet.Run(sc)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Printf("scenario file %s: %d cameras across %d tiers, seed %d\n\n",
		path, sc.Cameras(), len(res.Tiers), sc.Seed)
	fmt.Print(res.Table())
	return nil
}
