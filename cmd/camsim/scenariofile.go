package main

import (
	"fmt"
	"os"
	"strings"

	"camsim/internal/fleet"
)

// runScenarioFile loads one JSON fleet.Scenario from disk, runs it, and
// prints its stat table — the file-driven face of `camsim fleet` and
// `camsim topo` (-scenario). Decoding is strict: unknown fields are
// rejected rather than silently ignored, so a typoed knob fails loudly —
// and every parse, validation or run error names the file, so a sweep
// over many scenario files points at the one that broke.
//
// A non-empty timeseries path writes the run's windowed telemetry there
// (the scenario must enable telemetry.streaming with a window_sec): JSON
// when the path ends in .json, CSV otherwise.
func runScenarioFile(path, timeseries string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	sc, err := fleet.ParseScenario(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	res, err := fleet.Run(sc)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Printf("scenario file %s: %d cameras across %d tiers, seed %d\n\n",
		path, sc.Cameras(), len(res.Tiers), sc.Seed)
	fmt.Print(res.Table())
	if timeseries != "" {
		if err := writeTimeSeries(res, timeseries); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Printf("\ntime series: %d windows of %gs written to %s\n",
			len(res.TimeSeries.Windows), res.TimeSeries.WindowSec, timeseries)
	}
	return nil
}

// writeTimeSeries renders the run's windowed telemetry to out, JSON for
// a .json path and CSV for everything else.
func writeTimeSeries(res *fleet.Result, out string) error {
	ts := res.TimeSeries
	if ts == nil {
		return fmt.Errorf("-timeseries needs the scenario to set telemetry {\"streaming\": true, \"window_sec\": ...}")
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if strings.HasSuffix(strings.ToLower(out), ".json") {
		err = ts.WriteJSON(f)
	} else {
		err = ts.WriteCSV(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
