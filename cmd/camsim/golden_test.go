package main

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// captureStdout runs fn with os.Stdout redirected into a pipe and returns
// everything it printed. The reader drains concurrently so output larger
// than the pipe buffer cannot deadlock the writer.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() {
		// Restore even if fn panics, so a failure here cannot swallow the
		// rest of the package's output.
		os.Stdout = old
		w.Close()
		r.Close()
	}()
	done := make(chan []byte, 1)
	go func() {
		data, _ := io.ReadAll(r)
		done <- data
	}()
	ferr := fn()
	os.Stdout = old
	w.Close()
	out := <-done
	if ferr != nil {
		t.Fatalf("command failed: %v\noutput so far:\n%s", ferr, out)
	}
	return string(out)
}

// TestGoldenOutputsAcrossGOMAXPROCS pins the fleet and topology experiment
// outputs byte-for-byte: a fixed seed must print the identical bytes at
// GOMAXPROCS 1, 2 and 8 (the sweep worker pool parallelizes across
// scenario points without perturbing any point's arithmetic), and those
// bytes must match the checked-in goldens. Regenerate with
// `go test ./cmd/camsim -run Golden -update`.
func TestGoldenOutputsAcrossGOMAXPROCS(t *testing.T) {
	cases := []struct {
		name string
		run  func([]string) error
		args []string
	}{
		{"fleet", cmdFleet, []string{"-n", "16", "-duration", "2", "-seed", "1"}},
		{"topo", cmdTopo, []string{"-duration", "3", "-seed", "1"}},
		{"topo-depth", cmdTopo, []string{"-duration", "3", "-seed", "1", "-depth", "3"}},
		{"topo-global", cmdTopo, []string{"-duration", "6", "-seed", "1", "-global"}},
		{"topo-compute", cmdTopo, []string{"-duration", "6", "-seed", "1", "-compute"}},
		{"topo-fl", cmdTopo, []string{"-duration", "8", "-seed", "1", "-fl"}},
		{"topo-dynamics", cmdTopo, []string{"-duration", "8", "-seed", "1", "-dynamics"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var first string
			for _, procs := range []int{1, 2, 8} {
				prev := runtime.GOMAXPROCS(procs)
				out := captureStdout(t, func() error { return tc.run(tc.args) })
				runtime.GOMAXPROCS(prev)
				if first == "" {
					first = out
				} else if out != first {
					t.Fatalf("output at GOMAXPROCS=%d differs from GOMAXPROCS=1", procs)
				}
			}
			golden := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(first), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(want, []byte(first)) {
				t.Fatalf("%s output diverged from golden file.\ngot:\n%s\nwant:\n%s", tc.name, first, want)
			}
		})
	}
}
