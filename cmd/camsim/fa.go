package main

import (
	"flag"
	"fmt"
	"math/rand"

	"camsim/internal/energy"
	"camsim/internal/faceauth"
	"camsim/internal/fixed"
	"camsim/internal/img"
	"camsim/internal/nn"
	"camsim/internal/quality"
	"camsim/internal/snnap"
	"camsim/internal/synth"
	"camsim/internal/vj"
)

// cmdNNTopology reproduces E1 (§III-A): train NNs of increasing input
// window and hidden width on the synthetic verification task, reporting
// classification error against simulated accelerator energy. The paper's
// observations: small inputs (5×5) are cheap but inaccurate, the selected
// 400-8-1 design is the accuracy/energy compromise, and halving error
// costs roughly an order of magnitude in energy.
func cmdNNTopology(args []string) error {
	fs := flag.NewFlagSet("nn-topology", flag.ContinueOnError)
	samples := fs.Int("samples", 500, "positive and negative samples each")
	epochs := fs.Int("epochs", 200, "RPROP epochs")
	seed := fs.Int64("seed", 1, "experiment seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	type row struct {
		window, hidden int
	}
	rows := []row{{5, 4}, {8, 8}, {12, 8}, {16, 8}, {20, 8}, {20, 16}}
	fmt.Println("topology   window  error%   energy/inf   latency   (paper: 400-8-1 at 5.9% on LFW)")
	for _, r := range rows {
		rng := rand.New(rand.NewSource(*seed))
		set := synth.BuildVerificationSet(rng, synth.VerificationConfig{
			Size: r.window, Positives: *samples, Negatives: *samples,
			Impostors: 20, TrainFrac: 0.5, Hard: true, TargetSeed: 7,
		})
		inputs := r.window * r.window
		// RPROP occasionally sticks in a one-class minimum; keep the best
		// of a few restarts by final training MSE, as FANN users would.
		train := nn.ToTrainSamples(set.Train)
		var net *nn.Network
		bestMSE := 1e9
		for restart := int64(0); restart < 3; restart++ {
			cand := nn.New(rand.New(rand.NewSource(*seed+1+restart)), inputs, r.hidden, 1)
			if mse := cand.TrainRPROP(train, nn.DefaultRPROP(*epochs)); mse < bestMSE {
				bestMSE = mse
				net = cand
			}
		}
		q := fixed.QuantizeNet(net, 8, nil)
		c := nn.Evaluate(set.Test, q.Predict)
		rep := snnap.MustSimulate([]int{inputs, r.hidden, 1}, snnap.DefaultConfig())
		fmt.Printf("%-10s %2dx%-2d   %5.1f    %-10v   %.1f µs\n",
			net.Topology(), r.window, r.window, c.Error()*100, rep.Energy, rep.LatencySec*1e6)
	}
	return nil
}

// cmdPESweep reproduces E2 (§III-A): energy per inference of the 400-8-1
// network across accelerator geometries at 30 MHz / 0.9 V. The paper finds
// the optimum at 8 PEs.
func cmdPESweep(args []string) error {
	reports, err := snnap.SweepPEs([]int{400, 8, 1}, []int{1, 2, 4, 8, 16, 32}, snnap.DefaultConfig())
	if err != nil {
		return err
	}
	fmt.Println("PEs  energy/inf  cycles  util   active-power   (paper optimum: 8 PEs)")
	best := 0
	for i, r := range reports {
		if r.Energy < reports[best].Energy {
			best = i
		}
	}
	for i, r := range reports {
		mark := " "
		if i == best {
			mark = "*"
		}
		fmt.Printf("%3d%s %-10v  %6d  %.2f   %v\n",
			r.Config.PEs, mark, r.Energy, r.Cycles, r.Utilization, r.ActivePower)
	}
	return nil
}

// cmdBitwidth reproduces E3 (§III-A): accuracy loss and power across
// datapath widths. Paper: ≤0.4% loss at 16/8-bit, >1% at 4-bit; 8-bit is
// 41% lower power than 16-bit at 8 PEs.
func cmdBitwidth(args []string) error {
	fs := flag.NewFlagSet("bitwidth", flag.ContinueOnError)
	samples := fs.Int("samples", 500, "positive and negative samples each")
	epochs := fs.Int("epochs", 200, "RPROP epochs")
	seed := fs.Int64("seed", 21, "experiment seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	set := synth.BuildVerificationSet(rng, synth.VerificationConfig{
		Size: 20, Positives: *samples, Negatives: *samples,
		Impostors: 25, TrainFrac: 0.5, Hard: true, TargetSeed: 7,
	})
	net := nn.New(rand.New(rand.NewSource(*seed+1)), 400, 8, 1)
	net.TrainRPROP(nn.ToTrainSamples(set.Train), nn.DefaultRPROP(*epochs))
	floatErr := nn.Evaluate(set.Test, net.Predict).Error()

	var e16 energy.Energy
	fmt.Println("datapath  error%  Δ vs float  energy/inf  power-vs-16bit   (paper: −41% at 8-bit)")
	fmt.Printf("float     %5.1f      —           —          —\n", floatErr*100)
	for _, bits := range []int{16, 8, 4} {
		q := fixed.QuantizeNet(net, bits, nil)
		errQ := nn.Evaluate(set.Test, q.Predict).Error()
		cfg := snnap.DefaultConfig()
		cfg.Bits = bits
		rep := snnap.MustSimulate([]int{400, 8, 1}, cfg)
		if bits == 16 {
			e16 = rep.Energy
		}
		fmt.Printf("%2d-bit    %5.1f    %+5.1f pp     %-9v  %+.1f%%\n",
			bits, errQ*100, (errQ-floatErr)*100, rep.Energy,
			(float64(rep.Energy)/float64(e16)-1)*100)
	}
	return nil
}

// cmdSigmoid reproduces E4 (§III-A): the 256-entry LUT's deviation from
// the exact sigmoid and its effect on classification, which the paper
// reports as negligible.
func cmdSigmoid(args []string) error {
	fmt.Println("entries  max |LUT − sigmoid|   (paper: 256 entries, negligible accuracy effect)")
	for _, n := range []int{16, 64, 256, 1024} {
		lut := fixed.NewSigmoidLUT(n, 8, 8)
		fmt.Printf("%7d  %.5f\n", n, lut.MaxAbsError())
	}

	rng := rand.New(rand.NewSource(4))
	set := synth.BuildVerificationSet(rng, synth.VerificationConfig{
		Size: 20, Positives: 150, Negatives: 150, Impostors: 20,
		TrainFrac: 0.9, Hard: true, TargetSeed: 7,
	})
	net := nn.New(rand.New(rand.NewSource(5)), 400, 8, 1)
	net.TrainRPROP(nn.ToTrainSamples(set.Train), nn.DefaultRPROP(120))
	qLUT := fixed.QuantizeNet(net, 8, nil)
	qExact := fixed.QuantizeNet(net, 8, nil)
	qExact.ExactSigmoid = true
	eLUT := nn.Evaluate(set.Test, qLUT.Predict).Error()
	eExact := nn.Evaluate(set.Test, qExact.Predict).Error()
	fmt.Printf("\n8-bit datapath error: %.1f%% with 256-entry LUT vs %.1f%% with exact sigmoid (Δ %.2f pp)\n",
		eLUT*100, eExact*100, (eLUT-eExact)*100)
	return nil
}

// cmdFig4c reproduces E5 (Fig. 4c): detector accuracy (F1, precision,
// recall, relative to the finest operating point) across scale factor,
// static step size and adaptive step size.
func cmdFig4c(args []string) error {
	fs := flag.NewFlagSet("fig4c", flag.ContinueOnError)
	scenes := fs.Int("scenes", 20, "evaluation scenes")
	seed := fs.Int64("seed", 42, "experiment seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	cascade, err := vj.Train(rng,
		synth.FaceChips(rng, 300, 20), synth.NonFaceChips(rng, 600, 20), vj.DefaultTrainConfig())
	if err != nil {
		return err
	}
	scs := makeScenes(*seed+1, *scenes)

	eval := func(p vj.DetectParams) (quality.DetectionStats, vj.DetectStats) {
		// Merge threshold 1: at coarse strides a true face may produce a
		// single raw hit, and requiring 2 neighbours would zero the recall
		// instead of degrading it gracefully as in Fig. 4c.
		p.MinNeighbors = 1
		return cascade.EvaluateOnScenes(scs, p)
	}
	base, baseWork := eval(vj.DefaultDetectParams())
	rel := func(v, ref float64) float64 {
		if ref == 0 {
			return 100
		}
		return 100 * v / ref
	}
	printRow := func(label string, s quality.DetectionStats, w vj.DetectStats) {
		fmt.Printf("%-22s  F1 %5.1f%%  P %5.1f%%  R %5.1f%%   windows %8d\n",
			label, rel(s.F1(), base.F1()), rel(s.Precision(), base.Precision()),
			rel(s.Recall(), base.Recall()), w.Windows)
	}
	fmt.Println("relative accuracy vs (scale 1.25, step 4, adaptive off); 100% = reference")
	fmt.Println("\n-- scale factor sweep (paper: 1.25–2.0) --")
	for _, sf := range []float64{1.25, 1.5, 1.75, 2.0} {
		p := vj.DefaultDetectParams()
		p.ScaleFactor = sf
		s, w := eval(p)
		printRow(fmt.Sprintf("scale %.2f", sf), s, w)
	}
	fmt.Println("\n-- static step-size sweep (paper: 4–16) --")
	for _, ss := range []int{4, 8, 12, 16} {
		p := vj.DefaultDetectParams()
		p.StepSize = ss
		s, w := eval(p)
		printRow(fmt.Sprintf("step %d", ss), s, w)
	}
	fmt.Println("\n-- adaptive step sweep (paper: 0.0–0.4) --")
	for _, as := range []float64{0, 0.1, 0.2, 0.3, 0.4} {
		p := vj.DefaultDetectParams()
		p.AdaptiveStep = as
		s, w := eval(p)
		printRow(fmt.Sprintf("adaptive %.1f", as), s, w)
	}
	_ = baseWork
	return nil
}

// makeScenes renders labelled detection scenes for the Fig. 4c harness.
func makeScenes(seed int64, n int) []struct {
	Image *img.Gray
	Faces []quality.Box
} {
	rng := rand.New(rand.NewSource(seed))
	out := make([]struct {
		Image *img.Gray
		Faces []quality.Box
	}, n)
	for i := range out {
		sc := synth.BuildDetectionScene(rng, synth.SceneConfig{
			W: 256, H: 192, MaxFaces: 2, MinSize: 36, MaxSize: 72,
			Clutter: 5, NoiseSig: 0.01, ForceFace: true,
		})
		out[i].Image = sc.Image
		out[i].Faces = sc.Faces
	}
	return out
}

// cmdFAE2E reproduces E6 (§III): the end-to-end face-authentication
// workload across pipeline configurations, on the MCU baseline and the
// accelerator SoC.
func cmdFAE2E(args []string) error {
	fs := flag.NewFlagSet("fa-e2e", flag.ContinueOnError)
	frames := fs.Int("frames", 300, "trace length (1 FPS security trace)")
	seed := fs.Int64("seed", 33, "trace seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sys, err := faceauth.Build(faceauth.DefaultBuildOptions())
	if err != nil {
		return err
	}
	tcfg := synth.DefaultTraceConfig(*frames)
	tcfg.VisitRate = 4
	tr := synth.NewTrace(*seed, tcfg)
	st := tr.Stats()
	fmt.Printf("trace: %d frames at 1 FPS, %d with motion, %d with faces, %d with the target\n\n",
		st.Frames, st.MotionFrames, st.FaceFrames, st.TargetFrames)

	configs := []faceauth.PipelineConfig{
		{OffloadRaw: true},
		{},
		{UseAccel: true},
		{UseMotion: true, UseAccel: true},
		{UseMotion: true, UseVJ: true},
		{UseMotion: true, UseVJ: true, UseAccel: true},
	}
	fmt.Println("config              energy/frame  avg power   sustainable-FPS  miss%  falseacc%  NN-runs")
	for _, cfg := range configs {
		rep := sys.RunTrace(tr, cfg)
		fmt.Printf("%-18s  %-12v  %-10v  %7.1f          %5.1f  %6.2f     %d\n",
			cfg.Label(), rep.EnergyPerFrame, rep.AveragePower, rep.SustainableFPS,
			rep.Confusion.MissRate()*100, rep.Confusion.FalseAcceptRate()*100, rep.NNRuns)
	}
	fmt.Println("\npaper: progressive filtering makes even the most power-efficient NN " +
		"design significantly better; multi-stage true-miss rate ~0% on real data")
	return nil
}

// cmdFAOffload reproduces E7: the offload-vs-onload energy comparison on
// the harvested supply, through the core framework's energy pipeline.
func cmdFAOffload(args []string) error {
	harv := energy.DefaultHarvester()
	sensor := energy.DefaultSensor()
	mcu := energy.DefaultMCU()
	accel := snnap.MustSimulate([]int{400, 8, 1}, snnap.DefaultConfig())

	const w, h = 160, 120
	capture := sensor.CaptureEnergy(w, h)
	fmt.Printf("frame: %dx%d, capture %v; harvest budget %v\n\n", w, h, capture, harv.HarvestPower)
	fmt.Println("strategy                      energy/frame   sustainable-FPS")
	for _, radio := range []energy.RadioModel{energy.BackscatterRadio(), energy.ActiveRadio()} {
		e := capture + radio.TransmitEnergy(w*h)
		fmt.Printf("offload raw (%-11s)      %-12v   %.2f\n", radio.Name, e, harv.SustainableFPS(e))
	}
	mcuE, _ := mcu.InferenceEnergy(3217, 9)
	eMCU := capture + mcu.PixelOpEnergy(w*h) + mcuE
	fmt.Printf("onload NN (MCU software)      %-12v   %.2f\n", eMCU, harv.SustainableFPS(eMCU))
	eAccel := capture + accel.Energy
	fmt.Printf("onload NN (accelerator)       %-12v   %.2f\n", eAccel, harv.SustainableFPS(eAccel))
	fmt.Println("\npaper: minimizing both data communicated and computational cost " +
		"is the objective of in-camera computing (§II)")
	return nil
}

// cmdFAROC sweeps the authentication decision threshold, exposing the
// miss-rate vs false-accept tradeoff behind the paper's "0% true miss"
// operating point (an extension: the paper fixes the threshold at 0.5).
func cmdFAROC(args []string) error {
	fs := flag.NewFlagSet("fa-roc", flag.ContinueOnError)
	samples := fs.Int("samples", 400, "positive and negative samples each")
	seed := fs.Int64("seed", 21, "experiment seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	set := synth.BuildVerificationSet(rng, synth.VerificationConfig{
		Size: 20, Positives: *samples, Negatives: *samples,
		Impostors: 25, TrainFrac: 0.5, Hard: false, TargetSeed: 7,
	})
	net := nn.New(rand.New(rand.NewSource(*seed+1)), 400, 8, 1)
	net.TrainRPROP(nn.ToTrainSamples(set.Train), nn.DefaultRPROP(150))
	q := fixed.QuantizeNet(net, 8, nil)
	score := func(in []float64) float64 { return q.Forward(in)[0] }

	fmt.Println("threshold  miss%   false-accept%   (8-bit datapath, security-camera protocol)")
	for _, thr := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		c := nn.EvaluateThreshold(set.Test, score, thr)
		marker := ""
		if thr == 0.5 {
			marker = "  <- paper's operating point"
		}
		fmt.Printf("   %.1f     %5.1f   %5.1f%s\n",
			thr, c.MissRate()*100, c.FalseAcceptRate()*100, marker)
	}
	fmt.Println("\nlowering the threshold buys miss rate with false accepts; the pipeline's")
	fmt.Println("VJ pre-filter absorbs most of that cost by rejecting non-faces upstream")
	return nil
}
