package main

import (
	"flag"
	"fmt"

	"camsim/internal/core"
	"camsim/internal/fleet"
)

// cmdFleet runs F1: the fleet-scale extension of the paper's tradeoff —
// mixed populations of face-authentication and VR cameras share one
// uplink, swept over fleet size × VR placement. Where Fig. 10 asks which
// placement meets 30 FPS on a private link, this asks which placement
// keeps offload latency and drops bounded as the fleet grows and the link
// is contended.
func cmdFleet(args []string) error {
	fs := flag.NewFlagSet("fleet", flag.ContinueOnError)
	n := fs.Int("n", 200, "cameras in the largest fleet point (75% face-auth, 25% VR)")
	seed := fs.Int64("seed", 1, "simulation seed")
	duration := fs.Float64("duration", 10, "simulated seconds of capture")
	gbps := fs.Float64("gbps", 10, "shared uplink capacity, Gb/s")
	contention := fs.String("contention", fleet.ContentionFairShare,
		"uplink contention model: fair-share or fifo")
	workers := fs.Int("workers", 0, "parallel sweep workers (0 = GOMAXPROCS)")
	scenario := fs.String("scenario", "", "run one JSON scenario file instead of the built-in sweep (other flags ignored)")
	timeseries := fs.String("timeseries", "", "with -scenario: write the windowed telemetry time series to this file (.json for JSON, else CSV)")
	fs.Usage = fleetUsage(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scenario != "" {
		return runScenarioFile(*scenario, *timeseries)
	}
	if *timeseries != "" {
		return fmt.Errorf("fleet: -timeseries needs -scenario (the built-in sweep has no telemetry section)")
	}
	// The sweep's smallest point is n/4 cameras, a quarter of them VR, so
	// both classes need n ≥ 16 to be non-empty.
	if *n < 16 {
		return fmt.Errorf("fleet: need at least 16 cameras, got %d", *n)
	}

	placements := []struct {
		label string
		pl    core.Placement
	}{
		{"S~ (raw offload)", core.Placement{}},
		{"SB1B2B3F~", core.Placement{InCamera: 3, Impl: []string{"CPU", "CPU", "FPGA"}}},
		{"SB1B2B3FB4F~", core.Placement{InCamera: 4, Impl: []string{"CPU", "CPU", "FPGA", "FPGA"}}},
	}
	sizes := []int{*n / 4, *n / 2, *n}

	var scenarios []fleet.Scenario
	for _, size := range sizes {
		for _, p := range placements {
			vrCount := size / 4
			faCount := size - vrCount
			vrClass, err := fleet.VRClass(vrCount, p.pl, 30)
			if err != nil {
				return err
			}
			scenarios = append(scenarios, fleet.Scenario{
				Name:     fmt.Sprintf("n%d/%s", size, p.label),
				Seed:     *seed,
				Duration: *duration,
				Uplink:   fleet.UplinkConfig{Gbps: *gbps, Contention: *contention},
				Classes:  []fleet.Class{fleet.FaceAuthClass(faCount), vrClass},
			})
		}
	}

	outcomes := fleet.Sweep(scenarios, *workers)
	for _, o := range outcomes {
		if o.Err != nil {
			return o.Err
		}
	}

	fmt.Printf("fleet sweep: %d scenario points, uplink %.1f Gb/s (%s), %gs of capture, seed %d\n\n",
		len(scenarios), *gbps, *contention, *duration, *seed)
	fmt.Printf("%-6s %-18s %8s %8s %8s %9s %9s %7s\n",
		"cams", "VR placement", "VR-p50", "VR-p95", "FA-p95", "VR-drop", "FA-drop", "util")
	for i, o := range outcomes {
		size := sizes[i/len(placements)]
		p := placements[i%len(placements)]
		fa, vr := o.Result.Classes[0], o.Result.Classes[1]
		fmt.Printf("%-6d %-18s %8s %8s %8s %8.1f%% %8.1f%% %6.1f%%\n",
			size, p.label,
			fleet.FormatLatency(vr.LatencyP50), fleet.FormatLatency(vr.LatencyP95),
			fleet.FormatLatency(fa.LatencyP95),
			vr.DropRate()*100, fa.DropRate()*100, o.Result.UplinkUtilization*100)
	}

	fmt.Println("\nper-class detail of the largest fleet:")
	for i := len(outcomes) - len(placements); i < len(outcomes); i++ {
		fmt.Print(outcomes[i].Result.Table())
	}
	fmt.Println("\nfleet-scale reading of the paper's tradeoff: raw offload and even the")
	fmt.Println("depth-only placement saturate the shared uplink as the fleet grows (the B3")
	fmt.Println("output is *larger* than the sensor's); only the full in-camera pipeline,")
	fmt.Println("which ships the stitched eye pair, scales — and under fair-share contention")
	fmt.Println("the harvested face-auth chips keep millisecond latencies regardless.")
	return nil
}
