// Command faceauth runs the complete battery-free face-authentication
// camera (case study 1, §III) on a synthetic security trace: it trains the
// Viola-Jones pre-filter and the 400-8-1 verification network, replays the
// trace through the full MD→VJ→NN pipeline on the simulated accelerator
// SoC, and reports accuracy, energy and harvested-power sustainability.
package main

import (
	"flag"
	"fmt"
	"os"

	"camsim/internal/faceauth"
	"camsim/internal/synth"
)

func main() {
	frames := flag.Int("frames", 400, "trace length in frames (1 FPS)")
	seed := flag.Int64("seed", 33, "trace seed")
	visitRate := flag.Float64("visit-rate", 4, "visits per 100 frames")
	flag.Parse()

	fmt.Println("training Viola-Jones cascade and 400-8-1 verification network...")
	sys, err := faceauth.Build(faceauth.DefaultBuildOptions())
	if err != nil {
		fmt.Fprintln(os.Stderr, "faceauth:", err)
		os.Exit(1)
	}
	fmt.Printf("cascade: %d stages %v; held-out NN error %.1f%% (8-bit datapath)\n\n",
		len(sys.Cascade.Stages), sys.Cascade.NumFeaturesPerStage(),
		sys.TestConfusion.Error()*100)

	cfg := synth.DefaultTraceConfig(*frames)
	cfg.VisitRate = *visitRate
	tr := synth.NewTrace(*seed, cfg)
	st := tr.Stats()
	fmt.Printf("trace: %d frames, %d motion, %d face, %d target\n\n",
		st.Frames, st.MotionFrames, st.FaceFrames, st.TargetFrames)

	rep := sys.RunTrace(tr, faceauth.PipelineConfig{UseMotion: true, UseVJ: true, UseAccel: true})
	fmt.Printf("pipeline %s:\n", rep.Config.Label())
	fmt.Printf("  frames past motion gate: %d (%.0f%% filtered)\n",
		rep.MotionPassed, 100*(1-float64(rep.MotionPassed)/float64(rep.Frames)))
	fmt.Printf("  detector fired on:       %d frames; NN inferences: %d\n", rep.VJPassed, rep.NNRuns)
	fmt.Printf("  true-miss rate:          %.1f%%   false-accept rate: %.2f%%\n",
		rep.Confusion.MissRate()*100, rep.Confusion.FalseAcceptRate()*100)
	fmt.Printf("  energy/frame:            %v (avg power %v at 1 FPS)\n", rep.EnergyPerFrame, rep.AveragePower)
	fmt.Printf("  sustainable on %v harvest: %.1f FPS\n",
		sys.Harvester.HarvestPower, rep.SustainableFPS)

	base := sys.RunTrace(tr, faceauth.PipelineConfig{OffloadRaw: true})
	fmt.Printf("\nvs raw offload over %s: %v/frame (%.1fx the in-camera pipeline)\n",
		sys.Radio.Name, base.EnergyPerFrame, float64(base.EnergyPerFrame)/float64(rep.EnergyPerFrame))
}
