// Command faceauth runs the complete battery-free face-authentication
// camera (case study 1, §III) on a synthetic security trace: it trains the
// Viola-Jones pre-filter and the 400-8-1 verification network, replays the
// trace through the full MD→VJ→NN pipeline on the simulated accelerator
// SoC, and reports accuracy, energy and harvested-power sustainability.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"camsim/internal/faceauth"
	"camsim/internal/synth"
)

// run executes the experiment with the given command-line arguments,
// writing the report to w (split from main for the smoke test).
func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("faceauth", flag.ContinueOnError)
	frames := fs.Int("frames", 400, "trace length in frames (1 FPS)")
	seed := fs.Int64("seed", 33, "trace seed")
	visitRate := fs.Float64("visit-rate", 4, "visits per 100 frames")
	if err := fs.Parse(args); err != nil {
		return err
	}

	fmt.Fprintln(w, "training Viola-Jones cascade and 400-8-1 verification network...")
	sys, err := faceauth.Build(faceauth.DefaultBuildOptions())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "cascade: %d stages %v; held-out NN error %.1f%% (8-bit datapath)\n\n",
		len(sys.Cascade.Stages), sys.Cascade.NumFeaturesPerStage(),
		sys.TestConfusion.Error()*100)

	cfg := synth.DefaultTraceConfig(*frames)
	cfg.VisitRate = *visitRate
	tr := synth.NewTrace(*seed, cfg)
	st := tr.Stats()
	fmt.Fprintf(w, "trace: %d frames, %d motion, %d face, %d target\n\n",
		st.Frames, st.MotionFrames, st.FaceFrames, st.TargetFrames)

	rep := sys.RunTrace(tr, faceauth.PipelineConfig{UseMotion: true, UseVJ: true, UseAccel: true})
	fmt.Fprintf(w, "pipeline %s:\n", rep.Config.Label())
	fmt.Fprintf(w, "  frames past motion gate: %d (%.0f%% filtered)\n",
		rep.MotionPassed, 100*(1-float64(rep.MotionPassed)/float64(rep.Frames)))
	fmt.Fprintf(w, "  detector fired on:       %d frames; NN inferences: %d\n", rep.VJPassed, rep.NNRuns)
	fmt.Fprintf(w, "  true-miss rate:          %.1f%%   false-accept rate: %.2f%%\n",
		rep.Confusion.MissRate()*100, rep.Confusion.FalseAcceptRate()*100)
	fmt.Fprintf(w, "  energy/frame:            %v (avg power %v at 1 FPS)\n", rep.EnergyPerFrame, rep.AveragePower)
	fmt.Fprintf(w, "  sustainable on %v harvest: %.1f FPS\n",
		sys.Harvester.HarvestPower, rep.SustainableFPS)

	base := sys.RunTrace(tr, faceauth.PipelineConfig{OffloadRaw: true})
	fmt.Fprintf(w, "\nvs raw offload over %s: %v/frame (%.1fx the in-camera pipeline)\n",
		sys.Radio.Name, base.EnergyPerFrame, float64(base.EnergyPerFrame)/float64(rep.EnergyPerFrame))
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // -h already printed the usage; not a failure
		}
		fmt.Fprintln(os.Stderr, "faceauth:", err)
		os.Exit(1)
	}
}
