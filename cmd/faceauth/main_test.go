package main

import (
	"strings"
	"testing"
)

// The command prints a free-form report; this smoke test pins down that it
// runs to completion on a short trace and that the report keeps its shape
// (training summary, trace stats, pipeline energy, offload comparison).
func TestRunOutputShape(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-frames", "60", "-seed", "33"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"cascade:",
		"trace: 60 frames",
		"pipeline MD+VJ+NN(accel):",
		"energy/frame:",
		"sustainable on",
		"vs raw offload over",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &b); err == nil {
		t.Fatal("accepted an unknown flag")
	}
}
