// Command fleetvet runs the repo's determinism-invariant analyzer suite
// (internal/lint) over the module:
//
//	go run ./cmd/fleetvet ./...
//
// Patterns are module-relative: "./..." (or no argument) analyzes every
// package in the module, "./internal/fleet/..." one subtree, and
// "./internal/fleet" a single package. Only packages a rule guards are
// loaded and type-checked at all, so a whole-module run costs what the
// guarded subtree costs.
//
// Diagnostics print as file:line:col: rule: message — the go-vet shape
// CI's problem matchers annotate — and any diagnostic makes the exit
// status 1 (2 for usage or load errors).
package main

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"

	"camsim/internal/lint"
)

func main() {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetvet:", err)
		os.Exit(2)
	}
	os.Exit(run(cwd, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment injected: the directory whose module
// is analyzed, the patterns, and the output streams.
func run(dir string, args []string, stdout, stderr io.Writer) int {
	root, err := lint.FindModuleRoot(dir)
	if err != nil {
		fmt.Fprintln(stderr, "fleetvet:", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "fleetvet:", err)
		return 2
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	rels, err := expandPatterns(root, args)
	if err != nil {
		fmt.Fprintln(stderr, "fleetvet:", err)
		return 2
	}

	analyzers := lint.All()
	var diags []lint.Diagnostic
	for _, rel := range rels {
		var active []*lint.Analyzer
		for _, a := range analyzers {
			if a.AppliesTo(rel) {
				active = append(active, a)
			}
		}
		if len(active) == 0 {
			continue
		}
		importPath := loader.Module()
		if rel != "" {
			importPath += "/" + rel
		}
		pkg, err := loader.Load(importPath)
		if err != nil {
			fmt.Fprintln(stderr, "fleetvet:", err)
			return 2
		}
		diags = append(diags, lint.RunPackage(pkg, active)...)
	}

	for _, d := range diags {
		// Paths print module-relative so CI annotations resolve regardless
		// of the runner's checkout directory.
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = filepath.ToSlash(rel)
		}
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "fleetvet: %d diagnostic(s)\n", len(diags))
		return 1
	}
	return 0
}

// expandPatterns resolves module-relative package patterns — "./...",
// "./dir/...", "./dir" — into the sorted set of module-relative package
// directories containing Go files.
func expandPatterns(root string, patterns []string) ([]string, error) {
	set := make(map[string]bool)
	for _, pat := range patterns {
		pat = path.Clean(filepath.ToSlash(pat))
		rel, recursive := strings.CutSuffix(pat, "/...")
		if pat == "..." {
			rel, recursive = "", true
		}
		if rel == "." || rel == "" {
			rel = ""
		} else {
			rel = strings.TrimPrefix(rel, "./")
		}
		base := filepath.Join(root, filepath.FromSlash(rel))
		fi, err := os.Stat(base)
		if err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("pattern %q: no directory %s", pat, base)
		}
		if !recursive {
			if hasGoFiles(base) {
				set[rel] = true
			}
			continue
		}
		err = filepath.WalkDir(base, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return fs.SkipDir
			}
			if hasGoFiles(p) {
				r, err := filepath.Rel(root, p)
				if err != nil {
					return err
				}
				if r == "." {
					r = ""
				}
				set[filepath.ToSlash(r)] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	rels := make([]string, 0, len(set))
	for rel := range set {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	return rels, nil
}

// hasGoFiles reports whether the directory holds at least one non-test
// Go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") &&
			!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_") {
			return true
		}
	}
	return false
}
