package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunCleanTree runs the suite over this repository itself: the tree
// must be diagnostic-free, because CI gates on exactly this invocation.
func TestRunCleanTree(t *testing.T) {
	var out, errw bytes.Buffer
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	code := run(cwd, []string{"./..."}, &out, &errw)
	if code != 0 {
		t.Fatalf("fleetvet on the repo tree exited %d:\n%s%s", code, out.String(), errw.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run printed diagnostics:\n%s", out.String())
	}
}

// TestRunFlagsViolations builds a throwaway module seeded with one
// violation per rule and checks the driver reports each with file:line
// positions and a failing exit status.
func TestRunFlagsViolations(t *testing.T) {
	root := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		p := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module example.com/m\n\ngo 1.24\n")
	write("internal/fleet/scenario.go", `package fleet

// Scenario carries a violation for scenariocopy.
type Scenario struct {
	Name  string `+"`json:\"name\"`"+`
	NoTag int
}
`)
	write("internal/fleet/bad.go", `package fleet

import "time"

func stamp() int64 {
	return time.Now().Unix()
}

func order(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

func spawn() {
	go func() {}()
}
`)
	write("cmd/other/main.go", `package main

import "time"

// Outside the guarded scope: fleetvet must ignore this entirely.
func main() { _ = time.Now() }
`)

	var out, errw bytes.Buffer
	code := run(filepath.Join(root, "internal"), []string{"./..."}, &out, &errw)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	got := out.String()
	for _, want := range []string{
		"internal/fleet/bad.go:6:", "detsource: wall-clock read time.Now",
		"internal/fleet/bad.go:11:", "detmap: range over map m collects into",
		"internal/fleet/bad.go:18:", "detconc: go statement",
		"internal/fleet/scenario.go:6:", "scenariocopy: field Scenario.NoTag has no json tag",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "cmd/other") {
		t.Errorf("diagnostic outside the guarded scope:\n%s", got)
	}
}

// TestExpandPatterns pins the pattern grammar the driver accepts.
func TestExpandPatterns(t *testing.T) {
	root := t.TempDir()
	for _, rel := range []string{"a", "a/b", "c", "c/testdata/pkg", "d"} {
		dir := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if rel == "d" {
			continue // directory with no Go files
		}
		if err := os.WriteFile(filepath.Join(dir, "f.go"), []byte("package p\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		patterns []string
		want     []string
	}{
		{[]string{"./..."}, []string{"a", "a/b", "c"}},
		{[]string{"./a/..."}, []string{"a", "a/b"}},
		{[]string{"./c"}, []string{"c"}},
		{[]string{"./a/b", "./c/..."}, []string{"a/b", "c"}},
	}
	for _, c := range cases {
		got, err := expandPatterns(root, c.patterns)
		if err != nil {
			t.Errorf("expandPatterns(%v): %v", c.patterns, err)
			continue
		}
		if strings.Join(got, ",") != strings.Join(c.want, ",") {
			t.Errorf("expandPatterns(%v) = %v, want %v", c.patterns, got, c.want)
		}
	}
	if _, err := expandPatterns(root, []string{"./missing"}); err == nil {
		t.Error("expandPatterns accepted a pattern with no directory")
	}
}
