// Command vrpipe runs the complete real-time VR video pipeline (case
// study 2, §IV) over a synthetic camera rig at working resolution: B1
// pre-processing, B2 alignment, B3 bilateral-space depth, B4 stitching —
// then evaluates output quality against the rig's ground truth and maps
// the workload onto the CPU/GPU/FPGA platform models to report which
// deployment sustains 30 FPS at full scale.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"camsim/internal/img"
	"camsim/internal/platform"
	"camsim/internal/quality"
	"camsim/internal/rig"
	"camsim/internal/stereo"
	"camsim/internal/vr"
)

// run executes the pipeline with the given command-line arguments, writing
// the report to w (split from main for the smoke test).
func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("vrpipe", flag.ContinueOnError)
	cams := fs.Int("cams", 8, "cameras in the rig (even)")
	viewW := fs.Int("width", 192, "camera view width")
	viewH := fs.Int("height", 96, "camera view height")
	seed := fs.Int64("seed", 5, "scene seed")
	outDir := fs.String("out", "", "optional directory for PGM dumps of the outputs")
	if err := fs.Parse(args); err != nil {
		return err
	}

	r := rig.NewRig(rand.New(rand.NewSource(*seed)), *cams, *viewW, *viewH, 0.75, 3)
	fmt.Fprintf(w, "rig: %d cameras, %dx%d views, max disparity %d px, panorama %d px wide\n",
		r.Cameras, r.ViewW, r.ViewH, r.MaxDisparity(), r.PanoramaWidth())

	p := vr.NewPipeline(r)
	start := time.Now()
	res, err := p.Run()
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	// Depth quality vs ground truth.
	var mae float64
	for i := 0; i < r.Cameras; i += 2 {
		_, _, gt := r.Pair(i)
		mae += stereo.MeanAbsError(res.Disparities[i/2], gt)
	}
	mae /= float64(r.Cameras / 2)

	// Stitch quality vs the reference panorama.
	ref := r.ReferencePanorama()
	pw := ref.W
	if res.Panorama.W < pw {
		pw = res.Panorama.W
	}
	ssim := quality.SSIM(ref.SubImage(0, 0, pw, ref.H), res.Panorama.SubImage(0, 0, pw, res.Panorama.H))

	fmt.Fprintf(w, "\nfull-rig frame processed in %v (working resolution)\n", elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "depth MAE vs ground truth: %.2f px; panorama SSIM vs reference: %.3f\n", mae, ssim)
	fmt.Fprintf(w, "stage bytes: sensor %d, B1 %d, B2 %d, B3 %d, B4 %d\n",
		res.Bytes.Sensor, res.Bytes.B1, res.Bytes.B2, res.Bytes.B3, res.Bytes.B4)

	// Full-scale deployment projection.
	m := vr.PaperByteModel()
	tp := platform.PaperThroughput()
	link := platform.Ethernet25G
	fmt.Fprintf(w, "\nfull-scale (16x4K) deployment on %s:\n", link.Name)
	for _, d := range []platform.Device{platform.CPU, platform.GPU, platform.FPGA} {
		compute := tp.BlockFPS(3, d) // B3 dominates
		comm := link.FPS(m.B4)
		total := compute
		if comm < total {
			total = comm
		}
		verdict := "below real time"
		if compute >= 30 && comm >= 30 {
			verdict = "REAL TIME"
		}
		fmt.Fprintf(w, "  B3 on %-4s: compute %6.2f FPS, upload %6.2f FPS -> %6.2f FPS  %s\n",
			d, compute, comm, total, verdict)
	}

	if *outDir != "" {
		dump := func(name string, g *img.Gray) error {
			path := *outDir + "/" + name + ".pgm"
			c := g.Clone()
			c.Normalize()
			if err := img.SavePGM(path, c); err != nil {
				return fmt.Errorf("save: %w", err)
			}
			fmt.Fprintln(w, "wrote", path)
			return nil
		}
		for _, d := range []struct {
			name string
			img  *img.Gray
		}{
			{"panorama", res.Panorama},
			{"left_eye", res.LeftEye},
			{"right_eye", res.RightEye},
			{"depth_pair0", res.Disparities[0]},
		} {
			if err := dump(d.name, d.img); err != nil {
				return err
			}
		}
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // -h already printed the usage; not a failure
		}
		fmt.Fprintln(os.Stderr, "vrpipe:", err)
		os.Exit(1)
	}
}
