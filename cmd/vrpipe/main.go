// Command vrpipe runs the complete real-time VR video pipeline (case
// study 2, §IV) over a synthetic camera rig at working resolution: B1
// pre-processing, B2 alignment, B3 bilateral-space depth, B4 stitching —
// then evaluates output quality against the rig's ground truth and maps
// the workload onto the CPU/GPU/FPGA platform models to report which
// deployment sustains 30 FPS at full scale.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"camsim/internal/img"
	"camsim/internal/platform"
	"camsim/internal/quality"
	"camsim/internal/rig"
	"camsim/internal/stereo"
	"camsim/internal/vr"
)

func main() {
	cams := flag.Int("cams", 8, "cameras in the rig (even)")
	viewW := flag.Int("width", 192, "camera view width")
	viewH := flag.Int("height", 96, "camera view height")
	seed := flag.Int64("seed", 5, "scene seed")
	outDir := flag.String("out", "", "optional directory for PGM dumps of the outputs")
	flag.Parse()

	r := rig.NewRig(rand.New(rand.NewSource(*seed)), *cams, *viewW, *viewH, 0.75, 3)
	fmt.Printf("rig: %d cameras, %dx%d views, max disparity %d px, panorama %d px wide\n",
		r.Cameras, r.ViewW, r.ViewH, r.MaxDisparity(), r.PanoramaWidth())

	p := vr.NewPipeline(r)
	start := time.Now()
	res, err := p.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vrpipe:", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	// Depth quality vs ground truth.
	var mae float64
	for i := 0; i < r.Cameras; i += 2 {
		_, _, gt := r.Pair(i)
		mae += stereo.MeanAbsError(res.Disparities[i/2], gt)
	}
	mae /= float64(r.Cameras / 2)

	// Stitch quality vs the reference panorama.
	ref := r.ReferencePanorama()
	w := ref.W
	if res.Panorama.W < w {
		w = res.Panorama.W
	}
	ssim := quality.SSIM(ref.SubImage(0, 0, w, ref.H), res.Panorama.SubImage(0, 0, w, res.Panorama.H))

	fmt.Printf("\nfull-rig frame processed in %v (working resolution)\n", elapsed.Round(time.Millisecond))
	fmt.Printf("depth MAE vs ground truth: %.2f px; panorama SSIM vs reference: %.3f\n", mae, ssim)
	fmt.Printf("stage bytes: sensor %d, B1 %d, B2 %d, B3 %d, B4 %d\n",
		res.Bytes.Sensor, res.Bytes.B1, res.Bytes.B2, res.Bytes.B3, res.Bytes.B4)

	// Full-scale deployment projection.
	m := vr.PaperByteModel()
	tp := platform.PaperThroughput()
	link := platform.Ethernet25G
	fmt.Printf("\nfull-scale (16x4K) deployment on %s:\n", link.Name)
	for _, d := range []platform.Device{platform.CPU, platform.GPU, platform.FPGA} {
		compute := tp.BlockFPS(3, d) // B3 dominates
		comm := link.FPS(m.B4)
		total := compute
		if comm < total {
			total = comm
		}
		verdict := "below real time"
		if compute >= 30 && comm >= 30 {
			verdict = "REAL TIME"
		}
		fmt.Printf("  B3 on %-4s: compute %6.2f FPS, upload %6.2f FPS -> %6.2f FPS  %s\n",
			d, compute, comm, total, verdict)
	}

	if *outDir != "" {
		dump := func(name string, g *img.Gray) {
			path := *outDir + "/" + name + ".pgm"
			c := g.Clone()
			c.Normalize()
			if err := img.SavePGM(path, c); err != nil {
				fmt.Fprintln(os.Stderr, "vrpipe: save:", err)
				os.Exit(1)
			}
			fmt.Println("wrote", path)
		}
		dump("panorama", res.Panorama)
		dump("left_eye", res.LeftEye)
		dump("right_eye", res.RightEye)
		dump("depth_pair0", res.Disparities[0])
	}
}
