package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The command prints a free-form report; this smoke test pins down that a
// small rig runs to completion and that the report keeps its shape (rig
// geometry, quality metrics, stage bytes, full-scale projection).
func TestRunOutputShape(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-cams", "4", "-width", "64", "-height", "32"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"rig: 4 cameras, 64x32 views",
		"depth MAE vs ground truth:",
		"stage bytes: sensor",
		"full-scale (16x4K) deployment",
		"B3 on FPGA",
		"REAL TIME",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunWritesPGMDumps(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := run([]string{"-cams", "4", "-width", "64", "-height", "32", "-out", dir}, &b); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"panorama", "left_eye", "right_eye", "depth_pair0"} {
		if _, err := os.Stat(filepath.Join(dir, name+".pgm")); err != nil {
			t.Fatalf("missing dump %s: %v", name, err)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-bogus"}, &b); err == nil {
		t.Fatal("accepted an unknown flag")
	}
}
