// Cross-package integration tests: the assembled case studies must
// reproduce the paper's headline claims end to end, with every number
// flowing through the same code paths the cmd/ tools use.
package camsim_test

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"camsim/internal/bilateral"
	"camsim/internal/compress"
	"camsim/internal/core"
	"camsim/internal/energy"
	"camsim/internal/platform"
	"camsim/internal/quality"
	"camsim/internal/rig"
	"camsim/internal/snnap"
	"camsim/internal/stereo"
	"camsim/internal/vr"
)

// TestHeadlineFig10 reproduces the paper's central result through the
// fully assembled byte model + platform model + cost framework.
func TestHeadlineFig10(t *testing.T) {
	p := paperPipeline()
	link := platform.Ethernet25G.BytesPerSecond()
	var realTime []string
	for _, pl := range p.Enumerate([]string{"CPU", "GPU", "FPGA"}) {
		a, err := p.Evaluate(pl, link)
		if err != nil {
			t.Fatal(err)
		}
		if a.MeetsRealTime(30) {
			realTime = append(realTime, a.Label)
		}
	}
	// Every real-time configuration must be the full pipeline with B3 on
	// the FPGA (B4's device never bottlenecks, so all three B4 variants
	// qualify — the paper plots only the matched-device ones).
	if len(realTime) != 3 {
		t.Fatalf("real-time configs: %v — expected the three full FPGA-B3 pipelines", realTime)
	}
	for _, l := range realTime {
		if !contains(l, "B3(FPGA)") || !contains(l, "B4(") {
			t.Fatalf("unexpected real-time config %q", l)
		}
	}
}

// TestHeadlineAcceleratorDesignPoint ties the three §III-A explorations
// together: 8 PEs optimal, 8-bit −41% vs 16-bit, sub-µW at 1 FPS.
func TestHeadlineAcceleratorDesignPoint(t *testing.T) {
	topo := []int{400, 8, 1}
	reports, err := snnap.SweepPEs(topo, []int{1, 2, 4, 8, 16, 32}, snnap.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	best := reports[0]
	for _, r := range reports {
		if r.Energy < best.Energy {
			best = r
		}
	}
	if best.Config.PEs != 8 {
		t.Fatalf("energy-optimal geometry %d PEs, want 8", best.Config.PEs)
	}
	cfg16 := snnap.DefaultConfig()
	cfg16.Bits = 16
	r16 := snnap.MustSimulate(topo, cfg16)
	reduction := 1 - float64(best.Energy)/float64(r16.Energy)
	if math.Abs(reduction-0.41) > 0.04 {
		t.Fatalf("16→8-bit reduction %.1f%%, want 41±4", reduction*100)
	}
	if avg := best.Energy.Average(1); avg >= energy.Microwatt {
		t.Fatalf("1 FPS average power %v, want sub-µW", avg)
	}
}

// TestAcceleratorAlwaysBeatsMCU is a property over random topologies: the
// simulated ASIC never loses to the software baseline.
func TestAcceleratorAlwaysBeatsMCU(t *testing.T) {
	mcu := energy.DefaultMCU()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inputs := 9 + rng.Intn(600)
		hidden := 1 + rng.Intn(32)
		outputs := 1 + rng.Intn(4)
		rep := snnap.MustSimulate([]int{inputs, hidden, outputs}, snnap.DefaultConfig())
		mcuE, _ := mcu.InferenceEnergy(int(rep.MACs), int(rep.SigmoidOps))
		return mcuE > rep.Energy
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestVRPipelineQualityAtTwoScales runs the full B1–B4 flow at two
// resolutions; quality gates must hold at both (no resolution-specific
// tuning hidden anywhere).
func TestVRPipelineQualityAtTwoScales(t *testing.T) {
	for _, sz := range []struct{ w, h int }{{128, 64}, {192, 96}} {
		r := rig.NewRig(rand.New(rand.NewSource(77)), 4, sz.w, sz.h, 0.75, 3)
		res, err := vr.NewPipeline(r).Run()
		if err != nil {
			t.Fatal(err)
		}
		_, _, gt := r.Pair(0)
		if mae := stereo.MeanAbsError(res.Disparities[0], gt); mae > 3 {
			t.Fatalf("%dx%d: depth MAE %v", sz.w, sz.h, mae)
		}
		ref := r.ReferencePanorama()
		w := ref.W
		if res.Panorama.W < w {
			w = res.Panorama.W
		}
		s := quality.SSIM(ref.SubImage(0, 0, w, ref.H), res.Panorama.SubImage(0, 0, w, ref.H))
		if s < 0.85 {
			t.Fatalf("%dx%d: panorama SSIM %v", sz.w, sz.h, s)
		}
	}
}

// TestCompressionBlockEconomics checks the E15 extension end to end: the
// codec round-trips sensor frames, compresses them meaningfully, and the
// framework prices the block consistently.
func TestCompressionBlockEconomics(t *testing.T) {
	r := rig.NewRig(rand.New(rand.NewSource(15)), 2, 192, 96, 0.75, 3)
	raw := vr.CaptureFrame(r.View(0))
	codec, err := compress.NewCodec(12)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := codec.Encode(raw)
	if err != nil {
		t.Fatal(err)
	}
	ratio := compress.Ratio(raw, enc)
	if ratio >= 0.9 {
		t.Fatalf("sensor frame ratio %v — block would never pay off", ratio)
	}
	p := &core.ThroughputPipeline{
		SensorBytes: raw.SizeBytes(),
		Stages: []core.Stage{{
			Name:        "compress",
			OutputBytes: int64(len(enc)),
			FPS:         map[string]float64{"HW": 1000},
		}},
	}
	rawA, err := p.Evaluate(core.Placement{}, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	compA, err := p.Evaluate(core.Placement{InCamera: 1, Impl: []string{"HW"}}, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if compA.CommFPS <= rawA.CommFPS {
		t.Fatalf("compression did not raise upload FPS: %v vs %v", compA.CommFPS, rawA.CommFPS)
	}
	gain := compA.CommFPS / rawA.CommFPS
	if math.Abs(gain-1/ratio) > 0.01*gain {
		t.Fatalf("framework gain %v inconsistent with measured ratio %v", gain, ratio)
	}
}

// TestBSSAQualityCostFrontier: across grid sizes, BSSA's cost (bytes) and
// quality (MAE vs ground truth) must be monotonically traded — no design
// point should be strictly dominated, matching the clean Fig. 7 frontier.
func TestBSSAQualityCostFrontier(t *testing.T) {
	r := rig.NewRig(rand.New(rand.NewSource(31)), 4, 192, 96, 0.75, 3)
	left, right, gt := r.Pair(0)
	type pt struct {
		cell  float64
		bytes int64
		mae   float64
	}
	var pts []pt
	for _, cell := range []float64{4, 8, 16, 32} {
		cfg := bilateral.DefaultBSSAConfig(r.MaxDisparity())
		cfg.CellXY = cell
		cfg.IntensityBins = int(math.Max(2, 64/cell))
		d, st, err := bilateral.Solve(left, right, cfg)
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, pt{cell, st.GridBytes, stereo.MeanAbsError(d, gt)})
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].bytes >= pts[i-1].bytes {
			t.Fatalf("grid bytes not decreasing: %+v", pts)
		}
	}
	// Quality at the finest grid must beat the coarsest clearly.
	if pts[0].mae >= pts[len(pts)-1].mae {
		t.Fatalf("fine grid (%v MAE) not better than coarse (%v)", pts[0].mae, pts[len(pts)-1].mae)
	}
}

// TestEnergyFrameworkMatchesTraceSimulator cross-validates the analytic
// EnergyPipeline against per-frame accounting: a two-stage filter chain
// with known pass rates must produce the same expected energy as explicit
// frame-by-frame simulation.
func TestEnergyFrameworkMatchesTraceSimulator(t *testing.T) {
	const frames = 10000
	rng := rand.New(rand.NewSource(8))
	const (
		capE   = 3.3e-6
		mdE    = 0.9e-9
		vjE    = 0.6e-6
		nnE    = 4.9e-9
		mdPass = 0.2
		vjPass = 0.6
	)
	var simulated float64
	for f := 0; f < frames; f++ {
		simulated += capE + mdE
		if rng.Float64() >= mdPass {
			continue
		}
		simulated += vjE
		if rng.Float64() >= vjPass {
			continue
		}
		simulated += nnE
	}
	simulated /= frames

	p := &core.EnergyPipeline{
		CaptureEnergy: capE,
		Stages: []core.EnergyStage{
			{Name: "MD", EnergyPerFrame: mdE, PassRate: mdPass},
			{Name: "VJ", EnergyPerFrame: vjE, PassRate: vjPass},
			{Name: "NN", EnergyPerFrame: nnE, PassRate: 0},
		},
	}
	a, err := p.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(a.Total-simulated) / simulated; rel > 0.05 {
		t.Fatalf("framework %.4g J vs simulated %.4g J (rel %.3f)", a.Total, simulated, rel)
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
