// Adaptive-fleet: drive the tiered internal/fleet simulator from a JSON
// topology scenario — two edge gateways feeding a shared WAN — and compare
// placement policies on the same congested fleet.
//
// Each gateway aggregates four VR camera heads and a population of
// battery-free face-authentication cameras. The VR heads carry a runtime
// cost table with two Fig. 10 placements: raw sensor offload (~12.4 MB per
// frame, no in-camera compute) and the full in-camera pipeline (~1.1 MB
// stitched output, 31.6 ms of compute). At raw offload the heads
// oversubscribe their 2 Gb/s gateway links several times over; the
// latency-threshold policy watches offload latency and queue drops and
// shifts cameras to in-camera compute until the tier recovers — the
// paper's computation-communication tradeoff re-decided at runtime.
package main

import (
	"fmt"

	"camsim/internal/fleet"
)

const scenarioJSON = `{
  "name": "campus-topo",
  "seed": 1,
  "duration_sec": 10,
  "uplink": {"gbps": 4, "contention": "fair-share"},
  "gateways": [
    {"name": "gw-north", "uplink": {"gbps": 2, "contention": "fair-share"}},
    {"name": "gw-south", "uplink": {"gbps": 2, "contention": "fair-share"}}
  ],
  "classes": [
    {"name": "vr-north", "count": 4, "fps": 30, "gateway": "gw-north",
     "capture_j": 5e-3, "tx_fixed_j": 1e-4, "tx_per_byte_j": 4e-8,
     "placements": [
       {"name": "raw", "frame_bytes": 12400000, "compute_sec": 0.0001, "compute_j": 0.0002},
       {"name": "in-camera", "frame_bytes": 1122000, "compute_sec": 0.0316, "compute_j": 0.316}
     ],
     "policy": {"kind": "latency-threshold", "interval_sec": 0.5,
                "high_sec": 0.2, "move_fraction": 0.5}},
    {"name": "fa-north", "count": 80, "fps": 1, "arrival": "poisson",
     "gateway": "gw-north", "frame_bytes": 400, "offload_prob": 0.1,
     "compute_sec": 0.02, "capture_j": 3.3e-6, "compute_j": 3e-7,
     "tx_fixed_j": 2e-6, "tx_per_byte_j": 4.8e-10,
     "harvest_w": 2e-4, "store_j": 0.07},
    {"name": "vr-south", "count": 4, "fps": 30, "gateway": "gw-south",
     "capture_j": 5e-3, "tx_fixed_j": 1e-4, "tx_per_byte_j": 4e-8,
     "placements": [
       {"name": "raw", "frame_bytes": 12400000, "compute_sec": 0.0001, "compute_j": 0.0002},
       {"name": "in-camera", "frame_bytes": 1122000, "compute_sec": 0.0316, "compute_j": 0.316}
     ],
     "policy": {"kind": "latency-threshold", "interval_sec": 0.5,
                "high_sec": 0.2, "move_fraction": 0.5}},
    {"name": "fa-south", "count": 80, "fps": 1, "arrival": "poisson",
     "gateway": "gw-south", "frame_bytes": 400, "offload_prob": 0.1,
     "compute_sec": 0.02, "capture_j": 3.3e-6, "compute_j": 3e-7,
     "tx_fixed_j": 2e-6, "tx_per_byte_j": 4.8e-10,
     "harvest_w": 2e-4, "store_j": 0.07}
  ]
}`

func main() {
	base, err := fleet.ParseScenario([]byte(scenarioJSON))
	if err != nil {
		panic(err)
	}

	// The same tiered population with the VR classes pinned (static) and
	// adapting (latency-threshold), swept across the worker pool.
	var scenarios []fleet.Scenario
	for _, kind := range []string{fleet.PolicyStatic, fleet.PolicyLatencyThreshold} {
		sc := base
		sc.Name = base.Name + "/" + kind
		sc.Classes = append([]fleet.Class(nil), base.Classes...)
		for i := range sc.Classes {
			if len(sc.Classes[i].Placements) > 0 {
				sc.Classes[i].Policy.Kind = kind
			}
		}
		scenarios = append(scenarios, sc)
	}
	for _, o := range fleet.Sweep(scenarios, 0) {
		if o.Err != nil {
			panic(o.Err)
		}
		fmt.Print(o.Result.Table())
		fmt.Println()
	}

	fmt.Println("pinned at raw offload the VR heads drown their gateway tier and spend")
	fmt.Println("seconds per frame; the latency-threshold controller sees the congestion")
	fmt.Println("inside a second and walks every head to the in-camera placement — lower")
	fmt.Println("p95, fewer drops, and both tiers back under their capacity.")
}
