// Fleet-sweep: drive the internal/fleet simulator from a JSON scenario —
// the configuration surface a deployment tool would use — and compare the
// two uplink contention models on the same mixed fleet.
//
// The fleet pairs bandwidth-hungry VR camera heads with battery-free
// face-authentication cameras on one 1 Gb/s uplink. Under FIFO the VR
// frames head-of-line-block the tiny authentication chips; under
// fair-share the chips keep millisecond latencies while the VR class
// absorbs the contention.
package main

import (
	"fmt"

	"camsim/internal/fleet"
)

const scenarioJSON = `{
  "name": "corridor-mixed",
  "seed": 1,
  "duration_sec": 20,
  "uplink": {"gbps": 1, "contention": "fair-share"},
  "classes": [
    {"name": "faceauth-door", "count": 120, "fps": 1, "arrival": "poisson",
     "frame_bytes": 400, "offload_prob": 0.1, "compute_sec": 0.02,
     "capture_j": 3.3e-6, "compute_j": 3e-7,
     "tx_fixed_j": 2e-6, "tx_per_byte_j": 4.8e-10,
     "harvest_w": 2e-4, "store_j": 0.07},
    {"name": "vr-lobby", "count": 12, "fps": 30,
     "frame_bytes": 1122000, "compute_sec": 0.0316,
     "capture_j": 5e-3, "compute_j": 0.316,
     "tx_fixed_j": 1e-4, "tx_per_byte_j": 4e-8}
  ]
}`

func main() {
	base, err := fleet.ParseScenario([]byte(scenarioJSON))
	if err != nil {
		panic(err)
	}

	// The same population under both contention disciplines, swept in
	// parallel across the worker pool.
	var scenarios []fleet.Scenario
	for _, contention := range []string{fleet.ContentionFairShare, fleet.ContentionFIFO} {
		sc := base
		sc.Name = base.Name + "/" + contention
		sc.Uplink.Contention = contention
		scenarios = append(scenarios, sc)
	}
	for _, o := range fleet.Sweep(scenarios, 0) {
		if o.Err != nil {
			panic(o.Err)
		}
		fmt.Print(o.Result.Table())
		fmt.Println()
	}

	fmt.Println("the contention model is the whole story for the small flows: the same")
	fmt.Println("face-auth chips that clear in milliseconds under fair-share wait behind")
	fmt.Println("megabyte VR frames under FIFO.")
}
