// Quickstart: model a camera application as an in-camera processing
// pipeline (the paper's Fig. 1) and find the placement — which blocks run
// in the camera, which implementation each uses, where the data is
// offloaded — that maximizes end-to-end throughput.
package main

import (
	"fmt"

	"camsim/internal/core"
)

func main() {
	// A hypothetical three-block pipeline behind a 24 MB/frame sensor.
	// Each block shrinks (or expands!) the data and has one or more
	// implementations with different throughputs.
	pipeline := &core.ThroughputPipeline{
		SensorBytes: 24e6,
		Stages: []core.Stage{
			{Name: "denoise", OutputBytes: 24e6, FPS: map[string]float64{"CPU": 120}},
			{Name: "features", OutputBytes: 60e6, // feature maps are bigger than pixels
				FPS: map[string]float64{"CPU": 9, "FPGA": 85}},
			{Name: "classify", OutputBytes: 2e3, // a label is tiny
				FPS: map[string]float64{"CPU": 40, "FPGA": 200}},
		},
	}

	const linkBytesPerSec = 100e6 // a 800 Mb/s uplink
	const target = 30.0

	fmt.Println("placement                                  compute  comm   total  real-time?")
	for _, pl := range pipeline.Enumerate(nil) {
		a, err := pipeline.Evaluate(pl, linkBytesPerSec)
		if err != nil {
			panic(err)
		}
		mark := ""
		if a.MeetsRealTime(target) {
			mark = "YES"
		}
		fmt.Printf("%-42s %7.1f %6.1f %7.1f  %s\n", a.Label, a.ComputeFPS, a.CommFPS, a.TotalFPS, mark)
	}

	best, err := pipeline.Best(pipeline.Enumerate(nil), linkBytesPerSec)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nbest placement: %s at %.1f FPS (bottleneck: %s)\n",
		best.Label, best.TotalFPS, best.Bottleneck)
	fmt.Println("\nthe lesson from the paper: the winning design runs the data-reducing")
	fmt.Println("block in-camera even though an intermediate stage *expands* the data —")
	fmt.Println("judging blocks in isolation would have missed it.")
}
