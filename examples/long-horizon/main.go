// Long-horizon: the streaming-telemetry path on a run long enough that
// keeping every latency sample would be the dominant memory cost.
//
// Two campus gateways of Poisson face-auth cameras and a handful of
// metro backbone feeds share a tier tree for two simulated minutes. The
// scenario file opts into telemetry {"streaming": true, "window_sec": 10}:
// per-class latency lands in mergeable KLL quantile sketches
// (internal/fleet/quantile) instead of per-sample slices, so the
// simulator's memory is bounded by sketch capacity — independent of how
// many frames the horizon spans — and the run emits a per-window time
// series (the same one `camsim fleet -scenario ... -timeseries out.csv`
// writes to disk).
//
// To show what the sketch's documented rank-error bound (quantile.Eps)
// costs, the program reruns the identical scenario with the telemetry
// section removed and prints the exact nearest-rank percentiles next to
// the streaming estimates: the event sequence is byte-identical either
// way — only the statistics accumulator changes.
package main

import (
	_ "embed"
	"fmt"

	"camsim/internal/fleet"
)

//go:embed scenario.json
var scenarioJSON []byte

func main() {
	streaming, err := fleet.ParseScenario(scenarioJSON)
	if err != nil {
		panic(err)
	}
	exact := streaming
	exact.Name = streaming.Name + "/exact"
	exact.Telemetry = nil

	outcomes := fleet.Sweep([]fleet.Scenario{streaming, exact}, 0)
	for _, o := range outcomes {
		if o.Err != nil {
			panic(o.Err)
		}
	}
	sres, eres := outcomes[0].Result, outcomes[1].Result
	ts := sres.TimeSeries

	fmt.Printf("long-horizon: %d cameras, %gs simulated, %d offloads — "+
		"%d telemetry windows of %gs\n\n",
		streaming.Cameras(), streaming.Duration, sres.Total.Offloaded,
		len(ts.Windows), ts.WindowSec)

	// The windowed time series: fleet traffic and tail latency per window,
	// plus the core link's utilization over just that window.
	coreIdx := -1
	for i, name := range ts.Tiers {
		if name == "core" {
			coreIdx = i
		}
	}
	fmt.Printf("%-8s %-12s %9s %7s %10s %10s %9s\n",
		"window", "span", "offloads", "drops", "east-p95", "west-p95", "core-util")
	for _, w := range ts.Windows {
		var off, drops int64
		for _, wc := range w.Classes {
			off += wc.Offloaded
			drops += wc.DroppedQueue + wc.DroppedEnergy
		}
		east, west := w.Classes[0], w.Classes[1]
		span := fmt.Sprintf("%.0f-%.2fs", w.Start, w.End)
		fmt.Printf("%-8d %-12s %9d %7d %10s %10s %8.1f%%\n",
			w.Index, span, off, drops,
			fleet.FormatLatency(east.P95), fleet.FormatLatency(west.P95),
			w.TierUtil[coreIdx]*100)
	}

	// Streaming estimates vs the exact path on the identical run: the
	// sketch holds its rank-error bound while never storing the samples.
	fmt.Println("\nstreaming sketch vs exact nearest-rank (same event sequence):")
	fmt.Printf("%-12s %12s %12s %12s %12s\n",
		"class", "sketch-p95", "exact-p95", "sketch-p99", "exact-p99")
	for i, sc := range sres.Classes {
		ec := eres.Classes[i]
		fmt.Printf("%-12s %12s %12s %12s %12s\n", sc.Name,
			fleet.FormatLatency(sc.LatencyP95), fleet.FormatLatency(ec.LatencyP95),
			fleet.FormatLatency(sc.LatencyP99), fleet.FormatLatency(ec.LatencyP99))
	}
	fmt.Printf("%-12s %12s %12s %12s %12s\n", "fleet",
		fleet.FormatLatency(sres.Total.LatencyP95), fleet.FormatLatency(eres.Total.LatencyP95),
		fleet.FormatLatency(sres.Total.LatencyP99), fleet.FormatLatency(eres.Total.LatencyP99))

	fmt.Println("\nstreaming detail:")
	fmt.Print(sres.Table())
}
