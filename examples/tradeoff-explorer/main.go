// Tradeoff explorer: sweep the uplink bandwidth and watch the optimal
// placement move from "process everything in-camera" to "ship raw pixels"
// — the paper's §IV-C observation, generalized. Also prints the Pareto
// frontier of (hardware cost, throughput) across placements.
package main

import (
	"fmt"

	"camsim/internal/core"
	"camsim/internal/platform"
	"camsim/internal/vr"
)

func main() {
	m := vr.PaperByteModel()
	tp := platform.PaperThroughput()
	pipeline := &core.ThroughputPipeline{
		SensorBytes: m.Sensor,
		Stages: []core.Stage{
			{Name: "B1", OutputBytes: m.B1, FPS: map[string]float64{"CPU": tp.BlockFPS(1, platform.CPU)}},
			{Name: "B2", OutputBytes: m.B2, FPS: map[string]float64{"CPU": tp.BlockFPS(2, platform.CPU)}},
			{Name: "B3", OutputBytes: m.B3, FPS: map[string]float64{
				"CPU": tp.BlockFPS(3, platform.CPU), "GPU": tp.BlockFPS(3, platform.GPU),
				"FPGA": tp.BlockFPS(3, platform.FPGA)}},
			{Name: "B4", OutputBytes: m.B4, FPS: map[string]float64{
				"CPU": tp.BlockFPS(4, platform.CPU), "GPU": tp.BlockFPS(4, platform.GPU),
				"FPGA": tp.BlockFPS(4, platform.FPGA)}},
		},
	}
	placements := pipeline.Enumerate([]string{"CPU", "GPU", "FPGA"})

	fmt.Println("-- best placement per uplink speed --")
	fmt.Println("uplink    best placement                              total FPS")
	for _, gbps := range []float64{1, 5, 10, 25, 50, 100, 200, 400} {
		best, err := pipeline.Best(placements, gbps*1e9/8)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%5.0fG    %-42s  %8.2f\n", gbps, best.Label, best.TotalFPS)
	}

	// Pareto frontier of hardware cost vs throughput at 25 GbE. Cost model:
	// CPU is free (it ships with the SoC), GPU and FPGA devices cost 1 unit
	// each, counted once per distinct device used.
	fmt.Println("\n-- Pareto frontier (hardware cost vs FPS at 25 GbE) --")
	var points []core.ParetoPoint
	for _, pl := range placements {
		a, err := pipeline.Evaluate(pl, platform.Ethernet25G.BytesPerSecond())
		if err != nil {
			panic(err)
		}
		devices := map[string]bool{}
		for _, impl := range pl.Impl {
			if impl != "CPU" {
				devices[impl] = true
			}
		}
		points = append(points, core.ParetoPoint{
			Label: a.Label, Cost: float64(len(devices)), Value: a.TotalFPS,
		})
	}
	for _, p := range core.Pareto(points) {
		fmt.Printf("cost %.0f  %-42s  %8.2f FPS\n", p.Cost, p.Label, p.Value)
	}
}
