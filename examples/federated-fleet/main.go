// Federated-fleet: round-structured federated learning over a
// bidirectional tier tree, driven from a JSON scenario file (the same
// format `camsim topo -scenario` loads).
//
// Two campus gateways each carry 32 face-auth cameras that train the
// paper's 400-8-1 authentication MLP while their frame traffic keeps
// flowing. Every round each camera computes on its local footage and
// pushes an update blob up its gateway uplink; the metro tier merges the
// two gateways' fan-in into a single blob before the core hop, the cloud
// aggregates, and the merged model rides the new tier downlinks back to
// the cameras — whose delivery starts the next round.
//
// The file trains uncompressed (compress 1). The program reruns the same
// fleet with the update blobs sparsified to 50% and 25% of the model,
// the knob the paper's computation-communication tradeoff turns: smaller
// updates cost edge compute to produce but shrink every hop of the
// round trip, and in-network aggregation already keeps the WAN at one
// blob per round regardless.
package main

import (
	_ "embed"
	"fmt"

	"camsim/internal/fleet"
)

//go:embed scenario.json
var scenarioJSON []byte

func main() {
	base, err := fleet.ParseScenario(scenarioJSON)
	if err != nil {
		panic(err)
	}

	compressions := []float64{1, 0.5, 0.25}
	var scenarios []fleet.Scenario
	for _, cx := range compressions {
		sc := base
		sc.Name = fmt.Sprintf("%s/x%g", base.Name, cx)
		sc.Federated = base.Federated.Clone()
		sc.Federated.Model.Compress = cx
		scenarios = append(scenarios, sc)
	}
	outcomes := fleet.Sweep(scenarios, 0)

	fmt.Printf("%-24s %9s %9s %9s %9s %10s %8s\n",
		"scenario", "update-B", "up-MB", "down-MB", "naive-MB", "round-p95", "saved")
	for i, o := range outcomes {
		if o.Err != nil {
			panic(o.Err)
		}
		f := o.Result.Federated
		fmt.Printf("%-24s %9d %9.3f %9.3f %9.3f %10s %7.1f%%\n",
			scenarios[i].Name, f.UpdateBytes, f.UpBytes/1e6, f.DownBytes/1e6,
			f.NaiveUpBytes/1e6, fleet.FormatLatency(f.RoundP95),
			f.SavedFraction()*100)
	}

	fmt.Println("\nuncompressed detail:")
	fmt.Print(outcomes[0].Result.Table())
}
