// Energy-placement: the energy-aware side of the computation-communication
// tradeoff, driven from a JSON scenario file (the same format `camsim topo
// -scenario` loads).
//
// Two warehouse gateways each carry a pair of VR camera heads and a
// population of battery-free face-auth cameras, with every network link
// priced in forwarding joules per byte ("tx_per_byte_j" on the tier). The
// links are half idle, so no latency policy would ever move a camera — but
// the raw-offload placement ships ~12 MB per frame through the camera
// radio and two forwarding hops, and the watts add up. The scenario's
// "global" section runs the fleet-wide energy-aware controller: each
// epoch it prices every placement row in joules per frame, projects the
// fleet's placement power, and greedily moves cameras to the in-camera
// pipeline until the projection fits the 26 W budget — and no further, so
// the cameras that fit keep the fast raw placement.
//
// The same scenario is also run with the budget stripped, as the
// do-nothing baseline, and with each VR class's local energy-latency
// policy given a positive energy weight (energy_weight is 0 in the file),
// as the greedy per-class alternative that cannot see the fleet.
package main

import (
	_ "embed"
	"fmt"

	"camsim/internal/fleet"
)

//go:embed scenario.json
var scenarioJSON []byte

func main() {
	base, err := fleet.ParseScenario(scenarioJSON)
	if err != nil {
		panic(err)
	}

	baseline := base
	baseline.Name = base.Name + "/no-budget"
	baseline.Global = nil

	local := base
	local.Name = base.Name + "/local-greedy"
	local.Global = nil
	local.Classes = append([]fleet.Class(nil), base.Classes...)
	for i := range local.Classes {
		if len(local.Classes[i].Placements) > 0 {
			local.Classes[i].Policy.EnergyWeight = 1
		}
	}

	scenarios := []fleet.Scenario{baseline, local, base}
	outcomes := fleet.Sweep(scenarios, 0)
	fmt.Printf("%-28s %9s %9s %8s %8s\n", "scenario", "proj-W", "avg-W", "VR-p50", "moves")
	for i, o := range outcomes {
		if o.Err != nil {
			panic(o.Err)
		}
		r := o.Result
		fmt.Printf("%-28s %9.1f %9.1f %8s %8d\n", scenarios[i].Name,
			r.Energy.ProjectedW, r.Energy.AvgPowerW,
			fleet.FormatLatency(r.Classes[0].LatencyP50), r.Total.Switches)
	}
	fmt.Println()
	for _, o := range outcomes {
		fmt.Print(o.Result.Table())
		fmt.Println()
	}

	fmt.Println("with no budget the fleet burns ~35 W shipping raw sensor frames; the")
	fmt.Println("per-class greedy policy drops to the all-in-camera floor (~16 W) and gives")
	fmt.Println("every frame the 31.6 ms compute latency; the global controller lands the")
	fmt.Println("fleet just under its 26 W budget and stops, keeping the remaining heads on")
	fmt.Println("the fast raw placement — energy spent exactly where latency buys the most.")
}
