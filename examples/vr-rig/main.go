// VR rig example: run the depth-estimation block over a synthetic stereo
// rig at several bilateral-grid design points and watch the quality/cost
// tradeoff of Fig. 7 emerge, then check which grid still fits the FPGA's
// real-time budget.
package main

import (
	"fmt"
	"math/rand"

	"camsim/internal/bilateral"
	"camsim/internal/img"
	"camsim/internal/platform"
	"camsim/internal/rig"
	"camsim/internal/stereo"
)

func main() {
	r := rig.NewRig(rand.New(rand.NewSource(7)), 4, 256, 128, 0.75, 3)
	left, right, gt := r.Pair(0)
	maxD := r.MaxDisparity()
	fmt.Printf("stereo pair: %dx%d, disparity range up to %d px\n\n", left.W, left.H, maxD)

	fpga := platform.Zynq7020()
	cus := fpga.MaxComputeUnits()

	fmt.Println("grid cell  vertices   bytes     MAE(px)  bad>2px  FPGA FPS (12 CUs, full 4K pair)")
	for _, cell := range []float64{4, 8, 16, 32, 64} {
		cfg := bilateral.DefaultBSSAConfig(maxD)
		cfg.CellXY = cell
		cfg.IntensityBins = max(2, int(64/cell))
		disp, st, err := bilateral.Solve(left, right, cfg)
		if err != nil {
			panic(err)
		}
		// Project the same cell size onto the full-scale 4K pair.
		fullVertices := int64(3840/cell) * int64(2160/cell) * int64(cfg.IntensityBins)
		fps := fpga.DepthFPS(cus, fullVertices, platform.CalibratedCyclesPerVertex)
		fmt.Printf("%8.0f  %8d  %8d   %6.3f   %5.1f%%   %7.1f\n",
			cell, st.GridVertices, st.GridBytes,
			stereo.MeanAbsError(disp, gt), stereo.BadPixelRate(disp, gt, 2)*100, fps)
	}

	// Show the depth map as coarse ASCII for a quick visual check.
	cfg := bilateral.DefaultBSSAConfig(maxD)
	disp, _, err := bilateral.Solve(left, right, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println("\nrefined disparity (darker = far, brighter = near):")
	printAscii(disp, 72, 18)
	fmt.Println("\nground truth:")
	printAscii(gt, 72, 18)
}

func printAscii(g *img.Gray, w, h int) {
	small := img.ResizeBilinear(g, w, h)
	small.Normalize()
	ramp := " .:-=+*#%@"
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			idx := int(small.At(x, y) * 9.99)
			if idx < 0 {
				idx = 0
			}
			if idx > 9 {
				idx = 9
			}
			fmt.Print(string(ramp[idx]))
		}
		fmt.Println()
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
