// Deep-topology: drive the internal/fleet simulator over an
// arbitrary-depth tier tree described in JSON — camera → gateway → metro →
// core — and watch how propagation delay reshapes the paper's
// computation-communication tradeoff.
//
// The "tiers" scenario form generalizes the two-tier "gateways" form: each
// tier names its parent (the one with no parent is the root link out of
// the network), carries its own uplink capacity and contention discipline,
// and a one-way propagation_sec delay. A class attaches its cameras to a
// tier by name ("tier"); every offload then rides each link from the
// attach point to the root, paying transmission plus propagation at every
// hop. The walkthrough below runs the same fleet twice — VR heads pinned
// at raw sensor offload, then free to adapt — and separates what
// adaptation can win back (queueing on congested links) from what it never
// can (the ~12 ms of accumulated propagation between a gateway camera and
// the cloud).
package main

import (
	"fmt"

	"camsim/internal/fleet"
)

const scenarioJSON = `{
  "name": "metro-chain",
  "seed": 1,
  "duration_sec": 10,
  "tiers": [
    {"name": "gw-east",  "parent": "metro", "uplink": {"gbps": 2, "contention": "fair-share"}, "propagation_sec": 0.0002},
    {"name": "gw-west",  "parent": "metro", "uplink": {"gbps": 2, "contention": "fair-share"}, "propagation_sec": 0.0002},
    {"name": "metro",    "parent": "core",  "uplink": {"gbps": 4, "contention": "fair-share"}, "propagation_sec": 0.002},
    {"name": "core",                        "uplink": {"gbps": 8, "contention": "fair-share"}, "propagation_sec": 0.01}
  ],
  "classes": [
    {"name": "vr-east", "count": 4, "fps": 30, "tier": "gw-east",
     "capture_j": 5e-3, "tx_fixed_j": 1e-4, "tx_per_byte_j": 4e-8,
     "placements": [
       {"name": "raw", "frame_bytes": 12400000, "compute_sec": 0.0001, "compute_j": 0.0002},
       {"name": "in-camera", "frame_bytes": 1122000, "compute_sec": 0.0316, "compute_j": 0.316}
     ],
     "policy": {"kind": "latency-threshold", "interval_sec": 0.5,
                "high_sec": 0.2, "move_fraction": 0.5}},
    {"name": "fa-east", "count": 80, "fps": 1, "arrival": "poisson",
     "tier": "gw-east", "frame_bytes": 400, "offload_prob": 0.1,
     "compute_sec": 0.02, "capture_j": 3.3e-6, "compute_j": 3e-7,
     "tx_fixed_j": 2e-6, "tx_per_byte_j": 4.8e-10,
     "harvest_w": 2e-4, "store_j": 0.07},
    {"name": "vr-west", "count": 4, "fps": 30, "tier": "gw-west",
     "capture_j": 5e-3, "tx_fixed_j": 1e-4, "tx_per_byte_j": 4e-8,
     "placements": [
       {"name": "raw", "frame_bytes": 12400000, "compute_sec": 0.0001, "compute_j": 0.0002},
       {"name": "in-camera", "frame_bytes": 1122000, "compute_sec": 0.0316, "compute_j": 0.316}
     ],
     "policy": {"kind": "latency-threshold", "interval_sec": 0.5,
                "high_sec": 0.2, "move_fraction": 0.5}},
    {"name": "fa-west", "count": 80, "fps": 1, "arrival": "poisson",
     "tier": "gw-west", "frame_bytes": 400, "offload_prob": 0.1,
     "compute_sec": 0.02, "capture_j": 3.3e-6, "compute_j": 3e-7,
     "tx_fixed_j": 2e-6, "tx_per_byte_j": 4.8e-10,
     "harvest_w": 2e-4, "store_j": 0.07}
  ]
}`

func main() {
	base, err := fleet.ParseScenario([]byte(scenarioJSON))
	if err != nil {
		panic(err)
	}

	// The same deep-tier population with the VR classes pinned (static)
	// and adapting (latency-threshold), swept across the worker pool.
	var scenarios []fleet.Scenario
	for _, kind := range []string{fleet.PolicyStatic, fleet.PolicyLatencyThreshold} {
		sc := base
		sc.Name = base.Name + "/" + kind
		sc.Classes = append([]fleet.Class(nil), base.Classes...)
		for i := range sc.Classes {
			if len(sc.Classes[i].Placements) > 0 {
				sc.Classes[i].Policy.Kind = kind
			}
		}
		scenarios = append(scenarios, sc)
	}
	results := fleet.Sweep(scenarios, 0)
	for _, o := range results {
		if o.Err != nil {
			panic(o.Err)
		}
		fmt.Print(o.Result.Table())
		fmt.Println()
	}

	// Hop-delay accounting: how much of the fleet's time in the network
	// was pure propagation, tier by tier.
	adapted := results[1].Result
	fmt.Println("hop-delay accounting (adaptive run):")
	for _, ti := range adapted.Tiers {
		if ti.PropagationSec == 0 {
			continue
		}
		fmt.Printf("  %-10s %6d transfers x %8s one-way = %8.2fs total propagation\n",
			ti.Name, ti.Transfers, fleet.FormatLatency(ti.PropagationSec), ti.PropDelayTotal())
	}

	fmt.Println()
	fmt.Println("pinned at raw offload the VR heads drown their gateway tier; adapting to")
	fmt.Println("in-camera compute drains the queues — but the face-auth p50 never dips")
	fmt.Println("below ~32ms: 20ms of in-camera processing plus the 12.2ms the chain's")
	fmt.Println("propagation adds on the way to the cloud. Placement moves computation,")
	fmt.Println("not distance.")
}
