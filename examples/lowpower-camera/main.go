// Low-power camera example: size a battery-free face-authentication
// camera with the energy-pipeline framework — how much does each optional
// filtering block save, and what frame rate can harvested RF power
// sustain? (Case study 1 of the paper, driven through the public
// framework rather than the full trace simulator.)
package main

import (
	"fmt"

	"camsim/internal/core"
	"camsim/internal/energy"
	"camsim/internal/snnap"
)

func main() {
	const w, h = 160, 120

	sensor := energy.DefaultSensor()
	mcu := energy.DefaultMCU()
	vjAccel := energy.DefaultVJAccel()
	stream := energy.DefaultStreamAccel()
	harvester := energy.DefaultHarvester()

	// Block energies from the hardware models.
	capture := float64(sensor.CaptureEnergy(w, h))
	motionE := float64(energy.Energy(w*h) * stream.MotionPerPixel)
	vjE := float64(vjAccel.DetectEnergy(w*h, 60_000)) // ~60k features/frame
	accel := snnap.MustSimulate([]int{400, 8, 1}, snnap.DefaultConfig())
	nnAccelE := float64(accel.Energy) * 15 // multi-crop authentication
	nnMCUE, _ := mcu.InferenceEnergy(3217, 9)

	// Pass rates measured on the synthetic security workload: ~20% of
	// frames have motion, ~60% of those contain a face candidate.
	build := func(md, vj bool, nnE float64) *core.EnergyPipeline {
		p := &core.EnergyPipeline{CaptureEnergy: capture}
		if md {
			p.Stages = append(p.Stages, core.EnergyStage{Name: "MD", EnergyPerFrame: motionE, PassRate: 0.20})
		}
		if vj {
			p.Stages = append(p.Stages, core.EnergyStage{Name: "VJ", EnergyPerFrame: vjE, PassRate: 0.60})
		}
		p.Stages = append(p.Stages, core.EnergyStage{Name: "NN", EnergyPerFrame: nnE, PassRate: 0})
		return p
	}

	fmt.Println("pipeline              energy/frame   sustainable FPS on harvested 200 µW")
	cases := []struct {
		label string
		p     *core.EnergyPipeline
	}{
		{"NN(MCU) every frame", build(false, false, float64(nnMCUE))},
		{"NN(accel) every frame", build(false, false, nnAccelE)},
		{"MD+NN(accel)", build(true, false, nnAccelE)},
		{"MD+VJ+NN(accel)", build(true, true, nnAccelE)},
	}
	for _, c := range cases {
		a, err := c.p.Evaluate()
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-21s %-14v %.1f\n", c.label,
			energy.Energy(a.Total), a.SustainableFPS(float64(harvester.HarvestPower)))
	}

	// And the offload alternative for contrast.
	radio := energy.BackscatterRadio()
	off := &core.EnergyPipeline{
		CaptureEnergy: capture, OffloadBytes: w * h,
		OffloadFixed: float64(radio.WakeOverhead), OffloadPerByte: float64(radio.EnergyPerBit) * 8,
	}
	a, err := off.Evaluate()
	if err != nil {
		panic(err)
	}
	fmt.Printf("%-21s %-14v %.1f   <- the WISPCam baseline\n", "offload raw frames",
		energy.Energy(a.Total), a.SustainableFPS(float64(harvester.HarvestPower)))
}
