// Fleet-dynamics: a provisioned fleet living through a scheduled day of
// weather, driven from a JSON scenario file (the same format
// `camsim topo -scenario` loads).
//
// Two 24-camera populations sit behind half-utilized gateways, and the
// scenario's `dynamics` section scripts the day: the east population's
// frame rate doubles on a diurnal swell, six day-shift cameras join it,
// their gateway then fails outright — every in-flight frame is dropped
// and accounted, and the east cameras re-home to the sibling gateway
// until recovery re-homes them back — after which the sibling's own
// backhaul degrades to half capacity for a window. The program runs the
// same fleet twice, schedule stripped and schedule live, so every
// divergence in the comparison is the dynamics engine's doing, and then
// prints the windowed availability columns (per-tier downtime and
// capacity fraction) the streaming telemetry adds for exactly this kind
// of run. Edit scenario.json and re-run to explore; the whole schedule
// replays bit-for-bit from the scenario's seed.
package main

import (
	_ "embed"
	"fmt"

	"camsim/internal/fleet"
)

//go:embed scenario.json
var scenarioJSON []byte

func main() {
	dynamic, err := fleet.ParseScenario(scenarioJSON)
	if err != nil {
		panic(err)
	}
	steady := dynamic
	steady.Name = dynamic.Name + "/steady"
	steady.Dynamics = nil

	outcomes := fleet.Sweep([]fleet.Scenario{steady, dynamic}, 0)
	for _, o := range outcomes {
		if o.Err != nil {
			panic(o.Err)
		}
	}

	fmt.Printf("fleet-dynamics: %d cameras provisioned, %gs simulated, %d scheduled events\n\n",
		dynamic.Cameras(), dynamic.Duration, len(dynamic.Dynamics.Events))

	fmt.Printf("%-9s %10s %10s %9s %9s %8s\n",
		"run", "captured", "offloaded", "east-p95", "west-p95", "outage")
	for i, name := range []string{"steady", "dynamic"} {
		r := outcomes[i].Result
		fmt.Printf("%-9s %10d %10d %9s %9s %8d\n", name,
			r.Total.Captured, r.Total.Offloaded,
			fleet.FormatLatency(r.Classes[0].LatencyP95),
			fleet.FormatLatency(r.Classes[1].LatencyP95),
			r.Total.DroppedOutage)
	}

	r := outcomes[1].Result
	d := r.Dynamics
	fmt.Printf("\ndynamics ledger: joined %d  left %d  rehomed %d  outage-drops %d\n",
		d.Joined, d.Left, d.Rehomed, d.DroppedOutage)

	fmt.Println("\nper-window availability (the same columns ride the CSV/JSON time")
	fmt.Println("series behind `camsim topo -scenario ... -timeseries`):")
	fmt.Printf("%-10s %10s %11s %11s\n", "window", "gw-a-down", "gw-a-cap", "gw-b-cap")
	for _, w := range r.TimeSeries.Windows {
		fmt.Printf("%4.1f-%4.1fs %9.2fs %10.0f%% %10.0f%%\n",
			w.Start, w.End, w.TierDownSec[0], w.TierCapFrac[0]*100, w.TierCapFrac[1]*100)
	}

	fmt.Println("\ndynamic run in full:")
	fmt.Print(r.Table())
}
