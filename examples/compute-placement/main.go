// Compute-placement: finite compute at every tier, driven from a JSON
// scenario file (the same format `camsim topo -scenario` loads).
//
// The gateway owns a single core that services 25 reference frames a
// second, and four cameras offload 40 raw frames a second at it: the
// network link is half idle, but every frame must be serviced before the
// uplink forwards it, so a compute queue grows where a network-only
// model sees a healthy fleet. Service demand scales with the bytes a
// placement ships — the "edge" row offloads a 10×-smaller payload and
// needs 10× less tier service — so the cameras' hysteresis policy, which
// only watches end-to-end latency, ends up relieving the core pool too:
// the program runs the scenario once with the policy pinned static and
// once adaptive, and prints the gateway pool's utilization and
// queueing-wait p95 next to each class's latency, plus the per-row delay
// floors (Scenario.RowDelaySeconds) the controllers price.
package main

import (
	_ "embed"
	"fmt"

	"camsim/internal/fleet"
)

//go:embed scenario.json
var scenarioJSON []byte

func main() {
	adaptive, err := fleet.ParseScenario(scenarioJSON)
	if err != nil {
		panic(err)
	}
	static := adaptive
	static.Name = adaptive.Name + "/static"
	static.Classes = append([]fleet.Class(nil), adaptive.Classes...)
	for i := range static.Classes {
		static.Classes[i].Policy.Kind = fleet.PolicyStatic
	}

	outcomes := fleet.Sweep([]fleet.Scenario{static, adaptive}, 0)
	for _, o := range outcomes {
		if o.Err != nil {
			panic(o.Err)
		}
	}

	fmt.Printf("compute-placement: %d cameras, %gs simulated\n\n",
		adaptive.Cameras(), adaptive.Duration)

	fmt.Println("placement delay floors at the gateway (in-camera compute + expected tier service):")
	for _, cl := range adaptive.Classes {
		rows, err := adaptive.RowDelaySeconds(cl.Name)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %-4s", cl.Name)
		for ri, d := range rows {
			name := fmt.Sprintf("row%d", ri)
			if ri < len(cl.Placements) {
				name = cl.Placements[ri].Name
			}
			fmt.Printf("  %s %s", name, fleet.FormatLatency(d))
		}
		fmt.Println()
	}
	fmt.Println()

	fmt.Printf("%-10s %10s %12s %10s %10s %8s\n",
		"policy", "gw-cpu", "gw-wait-p95", "cam-p95", "fa-p95", "dropQ")
	for i, name := range []string{"static", "hysteresis"} {
		r := outcomes[i].Result
		gw := r.TierNamed("gw").Compute
		fmt.Printf("%-10s %9.1f%% %12s %10s %10s %8d\n",
			name, gw.Utilization*100, fleet.FormatLatency(gw.WaitP95),
			fleet.FormatLatency(r.Classes[0].LatencyP95),
			fleet.FormatLatency(r.Classes[1].LatencyP95),
			r.Total.DroppedQueue)
	}

	fmt.Println("\nadaptive run in full:")
	fmt.Print(outcomes[1].Result.Table())
}
