package compress

import (
	"math/rand"
	"testing"
	"testing/quick"

	"camsim/internal/img"
	"camsim/internal/rig"
	"camsim/internal/vr"
)

func mustCodec(t testing.TB, bits int) *Codec {
	t.Helper()
	c, err := NewCodec(bits)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCodecValidation(t *testing.T) {
	for _, bits := range []int{0, 17, -3} {
		if _, err := NewCodec(bits); err == nil {
			t.Fatalf("accepted precision %d", bits)
		}
	}
	if _, err := NewCodec(12); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripRandomFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, bits := range []int{8, 10, 12, 16} {
		c := mustCodec(t, bits)
		r := img.NewRaw(37, 23, bits, img.BayerRGGB)
		for i := range r.Pix {
			r.Pix[i] = uint16(rng.Intn(int(r.MaxValue()) + 1))
		}
		enc, err := c.Encode(r)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := c.Decode(enc)
		if err != nil {
			t.Fatal(err)
		}
		if dec.W != r.W || dec.H != r.H {
			t.Fatalf("size %dx%d", dec.W, dec.H)
		}
		for i := range r.Pix {
			if dec.Pix[i] != r.Pix[i] {
				t.Fatalf("bits=%d: sample %d: %d != %d", bits, i, dec.Pix[i], r.Pix[i])
			}
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	c := mustCodec(t, 12)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := 1 + rng.Intn(40)
		h := 1 + rng.Intn(20)
		r := img.NewRaw(w, h, 12, img.BayerRGGB)
		switch rng.Intn(3) {
		case 0: // smooth gradient
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					r.Pix[y*w+x] = uint16((x*40 + y*13) % 4096)
				}
			}
		case 1: // constant
			v := uint16(rng.Intn(4096))
			for i := range r.Pix {
				r.Pix[i] = v
			}
		default: // white noise (worst case, exercises the escape path)
			for i := range r.Pix {
				r.Pix[i] = uint16(rng.Intn(4096))
			}
		}
		enc, err := c.Encode(r)
		if err != nil {
			return false
		}
		dec, err := c.Decode(enc)
		if err != nil {
			return false
		}
		for i := range r.Pix {
			if dec.Pix[i] != r.Pix[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressionRatioOnCameraContent(t *testing.T) {
	// Real camera content (the VR rig's sensor output) must compress well
	// below 1.0 — that is what makes the optional block worth its ops.
	r := rig.NewRig(rand.New(rand.NewSource(3)), 2, 192, 96, 0.75, 3)
	raw := vr.CaptureFrame(r.View(0))
	c := mustCodec(t, 12)
	enc, err := c.Encode(raw)
	if err != nil {
		t.Fatal(err)
	}
	ratio := Ratio(raw, enc)
	if ratio > 0.8 {
		t.Fatalf("camera frame compressed to %.2f of raw, want < 0.8", ratio)
	}
	// And it must be lossless.
	dec, err := c.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range raw.Pix {
		if dec.Pix[i] != raw.Pix[i] {
			t.Fatal("lossy round trip on camera content")
		}
	}
}

func TestConstantFrameCompressesHard(t *testing.T) {
	r := img.NewRaw(64, 64, 12, img.BayerRGGB)
	for i := range r.Pix {
		r.Pix[i] = 2048
	}
	c := mustCodec(t, 12)
	enc, err := c.Encode(r)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := Ratio(r, enc); ratio > 0.15 {
		t.Fatalf("constant frame ratio %.3f, want < 0.15", ratio)
	}
}

func TestNoiseFrameDoesNotExplode(t *testing.T) {
	// Incompressible content must stay within ~40% overhead of raw
	// (the Rice escape bounds the worst case).
	rng := rand.New(rand.NewSource(4))
	r := img.NewRaw(64, 64, 12, img.BayerRGGB)
	for i := range r.Pix {
		r.Pix[i] = uint16(rng.Intn(4096))
	}
	c := mustCodec(t, 12)
	enc, err := c.Encode(r)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := Ratio(r, enc); ratio > 1.4 {
		t.Fatalf("noise frame ratio %.3f, want <= 1.4", ratio)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	c := mustCodec(t, 12)
	cases := [][]byte{
		nil,
		[]byte("nope"),
		[]byte("CSR1\x0c\x00\xff\xff\xff\xff\xff\xff\xff\xff"), // absurd dims
	}
	for i, data := range cases {
		if _, err := c.Decode(data); err == nil {
			t.Fatalf("case %d: accepted garbage", i)
		}
	}
	// Truncated but plausible header.
	r := img.NewRaw(16, 16, 12, img.BayerRGGB)
	enc, err := c.Encode(r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decode(enc[:len(enc)/2]); err == nil {
		t.Fatal("accepted truncated stream")
	}
}

func TestDecodeRejectsPrecisionMismatch(t *testing.T) {
	c12 := mustCodec(t, 12)
	c8 := mustCodec(t, 8)
	enc, err := c12.Encode(img.NewRaw(8, 8, 12, img.BayerRGGB))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c8.Decode(enc); err == nil {
		t.Fatal("8-bit codec accepted 12-bit stream")
	}
	if _, err := c8.Encode(img.NewRaw(8, 8, 12, img.BayerRGGB)); err == nil {
		t.Fatal("8-bit codec encoded 12-bit frame")
	}
}

func TestZigzagRoundTrip(t *testing.T) {
	f := func(d int32) bool {
		if d < -1<<30 || d > 1<<30 {
			return true
		}
		return unzigzag(zigzag(d)) == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPixelOps(t *testing.T) {
	if PixelOps(160, 120) != 160*120*6 {
		t.Fatal("PixelOps model changed unexpectedly")
	}
}

func BenchmarkEncodeQVGA(b *testing.B) {
	r := rig.NewRig(rand.New(rand.NewSource(1)), 2, 320, 240, 0.75, 3)
	raw := vr.CaptureFrame(r.View(0))
	c := mustCodec(b, 12)
	b.SetBytes(raw.SizeBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(raw); err != nil {
			b.Fatal(err)
		}
	}
}
