// Package compress implements in-camera frame compression, the optional
// pipeline block the paper's §II points at but does not evaluate
// ("compression can be treated as an optional block in in-camera
// processing pipelines"). It provides a real lossless codec suited to
// streaming camera hardware: per-row left-prediction residuals followed by
// Rice/Golomb coding with per-row adaptive parameters — the scheme used by
// low-complexity hardware codecs (CCSDS-123/FELICS family).
//
// The codec exists so the tradeoff framework can price the block honestly:
// Encode returns real bytes for real frames, and the compute cost is a
// counted number of per-pixel operations.
package compress

import (
	"encoding/binary"
	"fmt"

	"camsim/internal/img"
)

// Codec holds the (few) parameters of the hardware-friendly coder.
type Codec struct {
	// Bits is the sample precision of the input frames (matches img.Raw).
	Bits int
}

// NewCodec returns a codec for the given sample precision (1..16).
func NewCodec(sampleBits int) (*Codec, error) {
	if sampleBits < 1 || sampleBits > 16 {
		return nil, fmt.Errorf("compress: unsupported sample precision %d", sampleBits)
	}
	return &Codec{Bits: sampleBits}, nil
}

// magic identifies the stream format.
var magic = [4]byte{'C', 'S', 'R', '1'}

// Encode compresses a raw frame. The returned byte count is the
// communication payload a pipeline placement would ship.
func (c *Codec) Encode(r *img.Raw) ([]byte, error) {
	if r.Bits != c.Bits {
		return nil, fmt.Errorf("compress: frame precision %d, codec %d", r.Bits, c.Bits)
	}
	var bw bitWriter
	hdr := make([]byte, 4+2+4+4)
	copy(hdr, magic[:])
	binary.LittleEndian.PutUint16(hdr[4:], uint16(c.Bits))
	binary.LittleEndian.PutUint32(hdr[6:], uint32(r.W))
	binary.LittleEndian.PutUint32(hdr[10:], uint32(r.H))
	bw.buf = append(bw.buf, hdr...)

	for y := 0; y < r.H; y++ {
		row := r.Pix[y*r.W : (y+1)*r.W]
		// Choose the Rice parameter k for this row from the mean absolute
		// residual (the standard FELICS/JPEG-LS heuristic).
		var sumAbs uint64
		prev := uint16(0)
		if y > 0 {
			prev = r.Pix[(y-1)*r.W] // top neighbour predicts the first sample
		}
		p := prev
		for x, v := range row {
			pred := p
			if x == 0 {
				pred = prev
			}
			d := int32(v) - int32(pred)
			if d < 0 {
				d = -d
			}
			sumAbs += uint64(d)
			p = v
		}
		mean := sumAbs / uint64(len(row))
		k := 0
		for uint64(1)<<uint(k) < mean+1 && k < c.Bits {
			k++
		}
		bw.writeBits(uint64(k), 5)

		// Encode residuals with zig-zag mapping then Rice(k).
		p = prev
		for x, v := range row {
			pred := p
			if x == 0 {
				pred = prev
			}
			d := int32(v) - int32(pred)
			u := zigzag(d)
			bw.writeRice(u, k)
			p = v
		}
	}
	bw.flush()
	return bw.buf, nil
}

// Decode reverses Encode exactly.
func (c *Codec) Decode(data []byte) (*img.Raw, error) {
	if len(data) < 14 || string(data[:4]) != string(magic[:]) {
		return nil, fmt.Errorf("compress: bad stream header")
	}
	bitsP := int(binary.LittleEndian.Uint16(data[4:]))
	w := int(binary.LittleEndian.Uint32(data[6:]))
	h := int(binary.LittleEndian.Uint32(data[10:]))
	if bitsP != c.Bits {
		return nil, fmt.Errorf("compress: stream precision %d, codec %d", bitsP, c.Bits)
	}
	if w <= 0 || h <= 0 || w > 1<<16 || h > 1<<16 {
		return nil, fmt.Errorf("compress: implausible dimensions %dx%d", w, h)
	}
	out := img.NewRaw(w, h, c.Bits, img.BayerRGGB)
	br := bitReader{buf: data[14:]}
	for y := 0; y < h; y++ {
		k, err := br.readBits(5)
		if err != nil {
			return nil, err
		}
		prev := uint16(0)
		if y > 0 {
			prev = out.Pix[(y-1)*w]
		}
		p := prev
		for x := 0; x < w; x++ {
			u, err := br.readRice(int(k))
			if err != nil {
				return nil, err
			}
			pred := p
			if x == 0 {
				pred = prev
			}
			v := int32(pred) + unzigzag(u)
			if v < 0 || v > int32(out.MaxValue()) {
				return nil, fmt.Errorf("compress: sample out of range at (%d,%d)", x, y)
			}
			out.Pix[y*w+x] = uint16(v)
			p = uint16(v)
		}
	}
	return out, nil
}

// PixelOps returns the per-pixel operation count of encoding (predict,
// subtract, zig-zag, Rice emit ≈ 6 ops), the number the energy/throughput
// models charge for the optional block.
func PixelOps(w, h int) int64 { return int64(w) * int64(h) * 6 }

// Ratio returns compressed/raw size for a frame (1.0 means no gain).
func Ratio(r *img.Raw, encoded []byte) float64 {
	raw := r.SizeBytes()
	if raw == 0 {
		return 1
	}
	return float64(len(encoded)) / float64(raw)
}

func zigzag(d int32) uint64 {
	if d >= 0 {
		return uint64(d) << 1
	}
	return uint64(-d)<<1 - 1
}

func unzigzag(u uint64) int32 {
	if u&1 == 0 {
		return int32(u >> 1)
	}
	return -int32((u + 1) >> 1)
}

// bitWriter emits MSB-first bits.
type bitWriter struct {
	buf  []byte
	cur  uint8
	nCur int
}

func (w *bitWriter) writeBits(v uint64, n int) {
	for i := n - 1; i >= 0; i-- {
		bit := uint8(v>>uint(i)) & 1
		w.cur = w.cur<<1 | bit
		w.nCur++
		if w.nCur == 8 {
			w.buf = append(w.buf, w.cur)
			w.cur, w.nCur = 0, 0
		}
	}
}

// writeRice encodes u as quotient unary + k remainder bits, with an escape
// to plain 32-bit encoding for pathological quotients.
func (w *bitWriter) writeRice(u uint64, k int) {
	q := u >> uint(k)
	if q >= 48 {
		// Escape: 48 ones then 32 raw bits.
		for i := 0; i < 48; i++ {
			w.writeBits(1, 1)
		}
		w.writeBits(0, 1)
		w.writeBits(u, 32)
		return
	}
	for i := uint64(0); i < q; i++ {
		w.writeBits(1, 1)
	}
	w.writeBits(0, 1)
	if k > 0 {
		w.writeBits(u&(1<<uint(k)-1), k)
	}
}

func (w *bitWriter) flush() {
	if w.nCur > 0 {
		w.cur <<= uint(8 - w.nCur)
		w.buf = append(w.buf, w.cur)
		w.cur, w.nCur = 0, 0
	}
}

// bitReader consumes MSB-first bits.
type bitReader struct {
	buf  []byte
	pos  int
	cur  uint8
	nCur int
}

func (r *bitReader) readBit() (uint8, error) {
	if r.nCur == 0 {
		if r.pos >= len(r.buf) {
			return 0, fmt.Errorf("compress: truncated stream")
		}
		r.cur = r.buf[r.pos]
		r.pos++
		r.nCur = 8
	}
	bit := r.cur >> 7
	r.cur <<= 1
	r.nCur--
	return bit, nil
}

func (r *bitReader) readBits(n int) (uint64, error) {
	var v uint64
	for i := 0; i < n; i++ {
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

func (r *bitReader) readRice(k int) (uint64, error) {
	var q uint64
	for {
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		if b == 0 {
			break
		}
		q++
		if q == 48 {
			// Escape marker: a separator 0 then 32 raw bits follow.
			if b, err := r.readBit(); err != nil {
				return 0, err
			} else if b != 0 {
				return 0, fmt.Errorf("compress: bad escape")
			}
			return r.readBits(32)
		}
	}
	if k == 0 {
		return q, nil
	}
	rem, err := r.readBits(k)
	if err != nil {
		return 0, err
	}
	return q<<uint(k) | rem, nil
}
