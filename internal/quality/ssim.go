// Package quality implements the image-quality and detection-accuracy
// metrics used in the paper's evaluation: SSIM and MS-SSIM (Wang et al.,
// Asilomar 2003) for depth-map quality (Fig. 7), PSNR, and precision /
// recall / F1 with IoU box matching for face detection (Fig. 4c).
package quality

import (
	"fmt"
	"math"

	"camsim/internal/img"
)

// SSIM constants for data in [0, 1], following Wang et al.: C1=(K1·L)²,
// C2=(K2·L)² with K1=0.01, K2=0.03, L=1.
const (
	ssimC1 = 0.01 * 0.01
	ssimC2 = 0.03 * 0.03
)

// SSIM computes the mean structural-similarity index between two
// equal-size images using an 8×8 sliding window (stride 1) and uniform
// weighting. Inputs are expected in [0, 1]; the result is in [-1, 1]
// with 1 meaning identical.
func SSIM(a, b *img.Gray) float64 {
	mean, _ := ssimComponents(a, b)
	return mean
}

// SSIMAndContrast returns mean SSIM and the mean contrast-structure term
// cs(x,y) = (2σxy + C2)/(σx²+σy²+C2), which MS-SSIM needs per scale.
func SSIMAndContrast(a, b *img.Gray) (ssim, cs float64) {
	return ssimComponents(a, b)
}

func ssimComponents(a, b *img.Gray) (ssim, cs float64) {
	if a.W != b.W || a.H != b.H {
		panic(fmt.Sprintf("quality: size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H))
	}
	const win = 8
	if a.W < win || a.H < win {
		// Fall back to a single global window for tiny images.
		return ssimWindowGlobal(a, b)
	}
	ia := img.NewIntegral(a)
	ib := img.NewIntegral(b)
	iaa := img.NewSquaredIntegral(a)
	ibb := img.NewSquaredIntegral(b)
	iab := integralProduct(a, b)

	n := float64(win * win)
	var sumS, sumCS float64
	var count int
	for y := 0; y+win <= a.H; y++ {
		for x := 0; x+win <= a.W; x++ {
			sa := ia.Sum(x, y, win, win)
			sb := ib.Sum(x, y, win, win)
			saa := iaa.Sum(x, y, win, win)
			sbb := ibb.Sum(x, y, win, win)
			sab := iab.Sum(x, y, win, win)
			mua := sa / n
			mub := sb / n
			va := saa/n - mua*mua
			vb := sbb/n - mub*mub
			if va < 0 {
				va = 0
			}
			if vb < 0 {
				vb = 0
			}
			cov := sab/n - mua*mub
			l := (2*mua*mub + ssimC1) / (mua*mua + mub*mub + ssimC1)
			c := (2*cov + ssimC2) / (va + vb + ssimC2)
			sumS += l * c
			sumCS += c
			count++
		}
	}
	return sumS / float64(count), sumCS / float64(count)
}

// ssimWindowGlobal evaluates SSIM over the whole (small) image as one window.
func ssimWindowGlobal(a, b *img.Gray) (ssim, cs float64) {
	n := float64(len(a.Pix))
	if n == 0 {
		return 1, 1
	}
	var sa, sb, saa, sbb, sab float64
	for i := range a.Pix {
		x := float64(a.Pix[i])
		y := float64(b.Pix[i])
		sa += x
		sb += y
		saa += x * x
		sbb += y * y
		sab += x * y
	}
	mua, mub := sa/n, sb/n
	va := saa/n - mua*mua
	vb := sbb/n - mub*mub
	if va < 0 {
		va = 0
	}
	if vb < 0 {
		vb = 0
	}
	cov := sab/n - mua*mub
	l := (2*mua*mub + ssimC1) / (mua*mua + mub*mub + ssimC1)
	c := (2*cov + ssimC2) / (va + vb + ssimC2)
	return l * c, c
}

// integralProduct builds the summed-area table of the per-pixel product a·b.
func integralProduct(a, b *img.Gray) *img.Integral {
	prod := img.NewGray(a.W, a.H)
	for i := range a.Pix {
		prod.Pix[i] = a.Pix[i] * b.Pix[i]
	}
	return img.NewIntegral(prod)
}

// msSSIMWeights are the five per-scale exponents from Wang et al. (2003).
var msSSIMWeights = []float64{0.0448, 0.2856, 0.3001, 0.2363, 0.1333}

// MSSSIM computes multi-scale SSIM over up to five dyadic scales. The
// contrast-structure term is taken at every scale and the luminance term
// only at the coarsest, each raised to the standard exponents. Fewer scales
// are used (with renormalized weights) if the image is too small to halve
// five times while keeping an 8-pixel window.
func MSSSIM(a, b *img.Gray) float64 {
	if a.W != b.W || a.H != b.H {
		panic(fmt.Sprintf("quality: size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H))
	}
	scales := len(msSSIMWeights)
	// Determine how many scales the image supports (window of 8 minimum).
	maxScales := 1
	w, h := a.W, a.H
	for maxScales < scales && w/2 >= 8 && h/2 >= 8 {
		w, h = w/2, h/2
		maxScales++
	}
	weights := msSSIMWeights[:maxScales]
	var wsum float64
	for _, v := range weights {
		wsum += v
	}

	ca, cb := a, b
	result := 1.0
	for s := 0; s < maxScales; s++ {
		ssim, cs := ssimComponents(ca, cb)
		wnorm := weights[s] / wsum
		if s == maxScales-1 {
			// Luminance·contrast at the coarsest scale.
			result *= signedPow(ssim, wnorm)
		} else {
			result *= signedPow(cs, wnorm)
			ca = img.Downsample(ca, 1)
			cb = img.Downsample(cb, 1)
		}
	}
	return result
}

// signedPow computes sign(v)·|v|^p, keeping MS-SSIM defined when a scale's
// contrast term is slightly negative on adversarial inputs.
func signedPow(v, p float64) float64 {
	if v >= 0 {
		return math.Pow(v, p)
	}
	return -math.Pow(-v, p)
}

// PSNR returns the peak signal-to-noise ratio in dB between two equal-size
// images with peak value 1.0. Identical images return +Inf.
func PSNR(a, b *img.Gray) float64 {
	if a.W != b.W || a.H != b.H {
		panic(fmt.Sprintf("quality: size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H))
	}
	var mse float64
	for i := range a.Pix {
		d := float64(a.Pix[i] - b.Pix[i])
		mse += d * d
	}
	mse /= float64(len(a.Pix))
	if mse == 0 {
		return math.Inf(1)
	}
	return -10 * math.Log10(mse)
}
