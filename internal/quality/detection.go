package quality

import "sort"

// Box is an axis-aligned detection rectangle with an optional confidence
// score used for greedy matching order.
type Box struct {
	X, Y, W, H int
	Score      float64
}

// IoU returns the intersection-over-union of two boxes (0 when disjoint
// or either box is empty).
func IoU(a, b Box) float64 {
	ix0 := maxInt(a.X, b.X)
	iy0 := maxInt(a.Y, b.Y)
	ix1 := minInt(a.X+a.W, b.X+b.W)
	iy1 := minInt(a.Y+a.H, b.Y+b.H)
	iw := ix1 - ix0
	ih := iy1 - iy0
	if iw <= 0 || ih <= 0 {
		return 0
	}
	inter := float64(iw * ih)
	union := float64(a.W*a.H+b.W*b.H) - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// DetectionStats aggregates matching outcomes over one or more images.
type DetectionStats struct {
	TruePositives  int
	FalsePositives int
	FalseNegatives int
}

// Add accumulates another stats value into s.
func (s *DetectionStats) Add(o DetectionStats) {
	s.TruePositives += o.TruePositives
	s.FalsePositives += o.FalsePositives
	s.FalseNegatives += o.FalseNegatives
}

// Precision returns TP/(TP+FP), or 1 when there are no detections at all
// (vacuous precision, the convention used for relative-accuracy plots).
func (s DetectionStats) Precision() float64 {
	d := s.TruePositives + s.FalsePositives
	if d == 0 {
		return 1
	}
	return float64(s.TruePositives) / float64(d)
}

// Recall returns TP/(TP+FN), or 1 when there is no ground truth.
func (s DetectionStats) Recall() float64 {
	d := s.TruePositives + s.FalseNegatives
	if d == 0 {
		return 1
	}
	return float64(s.TruePositives) / float64(d)
}

// F1 returns the harmonic mean of precision and recall (0 when both are 0).
func (s DetectionStats) F1() float64 {
	p, r := s.Precision(), s.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// MatchDetections greedily matches predicted boxes to ground-truth boxes at
// the given IoU threshold. Predictions are considered in decreasing score
// order; each ground-truth box can be matched at most once. Unmatched
// predictions are false positives, unmatched truths false negatives.
func MatchDetections(pred, truth []Box, iouThreshold float64) DetectionStats {
	order := make([]int, len(pred))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return pred[order[a]].Score > pred[order[b]].Score })

	used := make([]bool, len(truth))
	var s DetectionStats
	for _, pi := range order {
		best := -1
		bestIoU := iouThreshold
		for ti := range truth {
			if used[ti] {
				continue
			}
			if v := IoU(pred[pi], truth[ti]); v >= bestIoU {
				bestIoU = v
				best = ti
			}
		}
		if best >= 0 {
			used[best] = true
			s.TruePositives++
		} else {
			s.FalsePositives++
		}
	}
	for _, u := range used {
		if !u {
			s.FalseNegatives++
		}
	}
	return s
}

// NonMaxSuppress keeps the highest-scoring boxes, removing any box whose IoU
// with an already-kept box is at least overlap. Input order is not modified.
func NonMaxSuppress(boxes []Box, overlap float64) []Box {
	order := make([]int, len(boxes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return boxes[order[a]].Score > boxes[order[b]].Score })
	var kept []Box
	for _, i := range order {
		b := boxes[i]
		ok := true
		for _, k := range kept {
			if IoU(b, k) >= overlap {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, b)
		}
	}
	return kept
}

// MergeOverlapping clusters boxes with pairwise IoU ≥ overlap and returns
// one averaged box per cluster, scored by the cluster size. Viola-Jones
// style detectors use this to merge the multiple hits a true face produces.
func MergeOverlapping(boxes []Box, overlap float64, minNeighbors int) []Box {
	n := len(boxes)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if IoU(boxes[i], boxes[j]) >= overlap {
				parent[find(i)] = find(j)
			}
		}
	}
	clusters := map[int][]Box{}
	for i, b := range boxes {
		r := find(i)
		clusters[r] = append(clusters[r], b)
	}
	roots := make([]int, 0, len(clusters))
	for r := range clusters {
		roots = append(roots, r)
	}
	sort.Ints(roots) // deterministic output order
	var out []Box
	for _, r := range roots {
		c := clusters[r]
		if len(c) < minNeighbors {
			continue
		}
		var sx, sy, sw, sh, ss float64
		for _, b := range c {
			sx += float64(b.X)
			sy += float64(b.Y)
			sw += float64(b.W)
			sh += float64(b.H)
			ss += b.Score
		}
		k := float64(len(c))
		out = append(out, Box{
			X: int(sx/k + 0.5), Y: int(sy/k + 0.5),
			W: int(sw/k + 0.5), H: int(sh/k + 0.5),
			Score: float64(len(c)) + ss/k/1e6, // neighbours dominate, mean score tiebreaks
		})
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
