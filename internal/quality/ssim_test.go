package quality

import (
	"math"
	"math/rand"
	"testing"

	"camsim/internal/img"
)

func randomImage(seed int64, w, h int) *img.Gray {
	rng := rand.New(rand.NewSource(seed))
	g := img.NewGray(w, h)
	for i := range g.Pix {
		g.Pix[i] = rng.Float32()
	}
	return g
}

func TestSSIMIdenticalIsOne(t *testing.T) {
	g := randomImage(1, 32, 32)
	if s := SSIM(g, g.Clone()); math.Abs(s-1) > 1e-5 {
		t.Fatalf("SSIM(x,x) = %v, want 1", s)
	}
}

func TestSSIMDecreasesWithNoise(t *testing.T) {
	base := img.GaussianBlur(randomImage(2, 64, 64), 2)
	rng := rand.New(rand.NewSource(3))
	addNoise := func(g *img.Gray, sigma float32) *img.Gray {
		out := g.Clone()
		for i := range out.Pix {
			out.Pix[i] += sigma * float32(rng.NormFloat64())
		}
		return out
	}
	sSmall := SSIM(base, addNoise(base, 0.02))
	sLarge := SSIM(base, addNoise(base, 0.2))
	if !(sSmall > sLarge) {
		t.Fatalf("SSIM not monotone in noise: small %v, large %v", sSmall, sLarge)
	}
	if sSmall < 0.5 {
		t.Fatalf("tiny noise dropped SSIM too far: %v", sSmall)
	}
}

func TestSSIMSymmetric(t *testing.T) {
	a := randomImage(4, 40, 40)
	b := randomImage(5, 40, 40)
	if d := math.Abs(SSIM(a, b) - SSIM(b, a)); d > 1e-12 {
		t.Fatalf("SSIM asymmetry %v", d)
	}
}

func TestSSIMTinyImageFallback(t *testing.T) {
	a := randomImage(6, 5, 5)
	if s := SSIM(a, a.Clone()); math.Abs(s-1) > 1e-5 {
		t.Fatalf("tiny-image SSIM(x,x) = %v", s)
	}
	b := randomImage(7, 5, 5)
	if s := SSIM(a, b); s >= 1 {
		t.Fatalf("tiny-image SSIM of different images = %v, want < 1", s)
	}
}

func TestSSIMPanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SSIM(img.NewGray(8, 8), img.NewGray(9, 8))
}

func TestMSSSIMIdenticalIsOne(t *testing.T) {
	g := randomImage(8, 128, 128)
	if s := MSSSIM(g, g.Clone()); math.Abs(s-1) > 1e-5 {
		t.Fatalf("MSSSIM(x,x) = %v, want 1", s)
	}
}

func TestMSSSIMOrdersDegradations(t *testing.T) {
	base := img.GaussianBlur(randomImage(9, 128, 128), 3)
	blur1 := img.GaussianBlur(base, 1)
	blur2 := img.GaussianBlur(base, 4)
	s1 := MSSSIM(base, blur1)
	s2 := MSSSIM(base, blur2)
	if !(s1 > s2) {
		t.Fatalf("MS-SSIM not monotone in blur: %v vs %v", s1, s2)
	}
}

func TestMSSSIMSmallImageUsesFewerScales(t *testing.T) {
	// 16x16 supports exactly 2 scales; must not panic and must be ~1 for
	// identical inputs.
	g := randomImage(10, 16, 16)
	if s := MSSSIM(g, g.Clone()); math.Abs(s-1) > 1e-5 {
		t.Fatalf("small MSSSIM(x,x) = %v", s)
	}
}

func TestMSSSIMWithinBounds(t *testing.T) {
	a := randomImage(11, 64, 64)
	b := randomImage(12, 64, 64)
	s := MSSSIM(a, b)
	if s > 1 || s < -1 || math.IsNaN(s) {
		t.Fatalf("MSSSIM out of range: %v", s)
	}
}

func TestPSNRInfiniteForIdentical(t *testing.T) {
	g := randomImage(13, 16, 16)
	if !math.IsInf(PSNR(g, g.Clone()), 1) {
		t.Fatal("PSNR of identical images should be +Inf")
	}
}

func TestPSNRKnownValue(t *testing.T) {
	a := img.NewGray(10, 10)
	b := img.NewGray(10, 10)
	b.Fill(0.1) // MSE = 0.01 -> PSNR = 20 dB
	if p := PSNR(a, b); math.Abs(p-20) > 1e-5 {
		t.Fatalf("PSNR = %v, want 20", p)
	}
}

func TestSignedPowNegativeBase(t *testing.T) {
	if v := signedPow(-0.25, 0.5); math.Abs(v+0.5) > 1e-12 {
		t.Fatalf("signedPow(-0.25, 0.5) = %v, want -0.5", v)
	}
}

func BenchmarkSSIM256(b *testing.B) {
	x := randomImage(1, 256, 256)
	y := randomImage(2, 256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SSIM(x, y)
	}
}

func BenchmarkMSSSIM256(b *testing.B) {
	x := randomImage(1, 256, 256)
	y := randomImage(2, 256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MSSSIM(x, y)
	}
}
