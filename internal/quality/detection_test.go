package quality

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIoUIdentical(t *testing.T) {
	b := Box{X: 1, Y: 2, W: 10, H: 10}
	if v := IoU(b, b); math.Abs(v-1) > 1e-12 {
		t.Fatalf("IoU(b,b) = %v", v)
	}
}

func TestIoUDisjointAndEmpty(t *testing.T) {
	a := Box{X: 0, Y: 0, W: 4, H: 4}
	b := Box{X: 10, Y: 10, W: 4, H: 4}
	if v := IoU(a, b); v != 0 {
		t.Fatalf("disjoint IoU = %v", v)
	}
	if v := IoU(a, Box{X: 0, Y: 0, W: 0, H: 5}); v != 0 {
		t.Fatalf("empty-box IoU = %v", v)
	}
}

func TestIoUHalfOverlap(t *testing.T) {
	a := Box{X: 0, Y: 0, W: 4, H: 4}
	b := Box{X: 2, Y: 0, W: 4, H: 4}
	// intersection 8, union 24 -> 1/3
	if v := IoU(a, b); math.Abs(v-1.0/3) > 1e-12 {
		t.Fatalf("IoU = %v, want 1/3", v)
	}
}

func TestIoUSymmetricProperty(t *testing.T) {
	f := func(ax, ay, bx, by int8, aw, ah, bw, bh uint8) bool {
		a := Box{X: int(ax), Y: int(ay), W: int(aw), H: int(ah)}
		b := Box{X: int(bx), Y: int(by), W: int(bw), H: int(bh)}
		u, v := IoU(a, b), IoU(b, a)
		return math.Abs(u-v) < 1e-12 && u >= 0 && u <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMatchDetectionsPerfect(t *testing.T) {
	truth := []Box{{0, 0, 10, 10, 0}, {50, 50, 10, 10, 0}}
	pred := []Box{{1, 1, 10, 10, 0.9}, {49, 50, 10, 10, 0.8}}
	s := MatchDetections(pred, truth, 0.5)
	if s.TruePositives != 2 || s.FalsePositives != 0 || s.FalseNegatives != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if s.F1() != 1 {
		t.Fatalf("F1 = %v", s.F1())
	}
}

func TestMatchDetectionsNoDoubleMatch(t *testing.T) {
	truth := []Box{{0, 0, 10, 10, 0}}
	pred := []Box{{0, 0, 10, 10, 0.9}, {1, 1, 10, 10, 0.5}}
	s := MatchDetections(pred, truth, 0.5)
	if s.TruePositives != 1 || s.FalsePositives != 1 {
		t.Fatalf("double match: %+v", s)
	}
}

func TestMatchDetectionsScoreOrdering(t *testing.T) {
	// The higher-score prediction gets the ground truth.
	truth := []Box{{0, 0, 10, 10, 0}}
	pred := []Box{{2, 2, 10, 10, 0.2}, {0, 0, 10, 10, 0.9}}
	s := MatchDetections(pred, truth, 0.5)
	if s.TruePositives != 1 || s.FalsePositives != 1 || s.FalseNegatives != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestMatchDetectionsMisses(t *testing.T) {
	truth := []Box{{0, 0, 10, 10, 0}, {100, 100, 10, 10, 0}}
	pred := []Box{{0, 0, 10, 10, 1}}
	s := MatchDetections(pred, truth, 0.5)
	if s.FalseNegatives != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if r := s.Recall(); math.Abs(r-0.5) > 1e-12 {
		t.Fatalf("recall = %v", r)
	}
}

func TestStatsVacuousConventions(t *testing.T) {
	var s DetectionStats
	if s.Precision() != 1 || s.Recall() != 1 {
		t.Fatal("empty stats should have vacuous precision/recall of 1")
	}
	s = DetectionStats{FalsePositives: 3}
	if s.Precision() != 0 {
		t.Fatalf("precision = %v", s.Precision())
	}
	s = DetectionStats{FalseNegatives: 2}
	if s.F1() != 0 {
		t.Fatalf("F1 with zero precision+recall = %v", s.F1())
	}
}

func TestStatsAdd(t *testing.T) {
	a := DetectionStats{1, 2, 3}
	a.Add(DetectionStats{10, 20, 30})
	if a != (DetectionStats{11, 22, 33}) {
		t.Fatalf("Add = %+v", a)
	}
}

func TestNonMaxSuppressKeepsBest(t *testing.T) {
	boxes := []Box{
		{0, 0, 10, 10, 0.5},
		{1, 1, 10, 10, 0.9}, // overlaps first, higher score
		{50, 50, 10, 10, 0.3},
	}
	kept := NonMaxSuppress(boxes, 0.3)
	if len(kept) != 2 {
		t.Fatalf("kept %d boxes, want 2", len(kept))
	}
	if kept[0].Score != 0.9 {
		t.Fatalf("best box not kept first: %+v", kept[0])
	}
}

func TestNonMaxSuppressEmpty(t *testing.T) {
	if kept := NonMaxSuppress(nil, 0.5); len(kept) != 0 {
		t.Fatal("NMS of empty input should be empty")
	}
}

func TestMergeOverlappingClusters(t *testing.T) {
	boxes := []Box{
		{10, 10, 20, 20, 1},
		{12, 11, 20, 20, 1},
		{11, 12, 20, 20, 1},
		{100, 100, 20, 20, 1}, // lone box
	}
	merged := MergeOverlapping(boxes, 0.5, 2)
	if len(merged) != 1 {
		t.Fatalf("merged %d clusters, want 1 (lone box dropped by minNeighbors)", len(merged))
	}
	m := merged[0]
	if m.X < 10 || m.X > 12 || m.Y < 10 || m.Y > 12 {
		t.Fatalf("merged box position %+v", m)
	}
	if m.Score < 3 {
		t.Fatalf("cluster-size score %v, want >= 3", m.Score)
	}
}

func TestMergeOverlappingMinNeighborsOne(t *testing.T) {
	boxes := []Box{{0, 0, 10, 10, 1}, {100, 0, 10, 10, 1}}
	merged := MergeOverlapping(boxes, 0.5, 1)
	if len(merged) != 2 {
		t.Fatalf("merged %d, want 2", len(merged))
	}
}

func TestMergeOverlappingDeterministic(t *testing.T) {
	boxes := []Box{
		{0, 0, 10, 10, 1}, {1, 0, 10, 10, 1},
		{40, 0, 10, 10, 1}, {41, 0, 10, 10, 1},
	}
	a := MergeOverlapping(boxes, 0.5, 1)
	b := MergeOverlapping(boxes, 0.5, 1)
	if len(a) != len(b) {
		t.Fatal("nondeterministic merge count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic merge order")
		}
	}
}
