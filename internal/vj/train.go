package vj

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"camsim/internal/img"
)

// Stump is a depth-1 decision tree over one Haar feature: it votes +alpha
// when polarity·value < polarity·threshold (face-like) and −alpha
// otherwise.
type Stump struct {
	Feature   int // index into the cascade's feature pool
	Threshold float64
	Polarity  float64 // +1 or −1
	Alpha     float64 // AdaBoost vote weight
}

// Stage is one level of the attentional cascade: a weighted vote of stumps
// compared against a bias chosen to preserve a target detection rate.
type Stage struct {
	Stumps []Stump
	Bias   float64 // window passes when Σ votes >= Bias
}

// Cascade is a trained attentional face detector over a pool of features
// evaluated in a base×base window.
type Cascade struct {
	Base     int
	Features []Feature
	Stages   []Stage
}

// TrainConfig parameterizes cascade training.
type TrainConfig struct {
	Base           int     // detector window edge (paper-style 20–24 px)
	MaxStages      int     // cascade depth
	StumpsPerStage []int   // stumps per stage (grows with depth, e.g. 3, 8, 15, 25)
	StageDetection float64 // per-stage minimum detection rate on positives (e.g. 0.995)
	StageFalsePos  float64 // per-stage maximum false-positive rate target (e.g. 0.5)
	PositionStep   int     // feature-pool subsampling
	SizeStep       int
	MinFeature     int
}

// DefaultTrainConfig returns a pre-filter-grade cascade configuration:
// shallow, fast, tuned for high recall (the NN behind it removes false
// positives).
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Base:           20,
		MaxStages:      5,
		StumpsPerStage: []int{3, 6, 10, 16, 24},
		StageDetection: 0.995,
		StageFalsePos:  0.45,
		PositionStep:   2,
		SizeStep:       2,
		MinFeature:     4,
	}
}

// Train builds a cascade from positive (face) and negative (non-face)
// chips of size cfg.Base. Negatives are re-mined between stages from the
// pool of negatives that still pass the partial cascade, the standard
// bootstrapping that gives the cascade its multiplicative rejection.
func Train(rng *rand.Rand, positives, negatives []*img.Gray, cfg TrainConfig) (*Cascade, error) {
	if len(positives) == 0 || len(negatives) == 0 {
		return nil, fmt.Errorf("vj: need positives and negatives, got %d/%d", len(positives), len(negatives))
	}
	for _, s := range append(append([]*img.Gray{}, positives...), negatives...) {
		if s.W != cfg.Base || s.H != cfg.Base {
			return nil, fmt.Errorf("vj: chip size %dx%d, want %dx%d", s.W, s.H, cfg.Base, cfg.Base)
		}
	}
	features := GenerateFeatures(cfg.Base, cfg.PositionStep, cfg.SizeStep, cfg.MinFeature)
	c := &Cascade{Base: cfg.Base, Features: features}

	// Precompute normalized feature values for every sample once.
	posVals := evalAll(features, positives, cfg.Base)
	negVals := evalAll(features, negatives, cfg.Base)

	activeNeg := make([]int, len(negatives))
	for i := range activeNeg {
		activeNeg[i] = i
	}

	for stage := 0; stage < cfg.MaxStages && len(activeNeg) > 0; stage++ {
		nStumps := cfg.StumpsPerStage[minI(stage, len(cfg.StumpsPerStage)-1)]
		st := trainStage(rng, features, posVals, negVals, activeNeg, nStumps, cfg.StageDetection)
		c.Stages = append(c.Stages, st)

		// Keep only the negatives that still pass (future stages must work
		// on the survivors).
		var survivors []int
		for _, ni := range activeNeg {
			if stagePasses(st, negVals, ni) {
				survivors = append(survivors, ni)
			}
		}
		fpr := float64(len(survivors)) / float64(len(activeNeg))
		activeNeg = survivors
		// Stop early if the stage already over-achieved the target FPR and
		// nothing is left to reject.
		if fpr == 0 {
			break
		}
	}
	if len(c.Stages) == 0 {
		return nil, fmt.Errorf("vj: training produced no stages")
	}
	return c, nil
}

// evalAll computes values[featureIdx][sampleIdx] for every (feature,
// sample) pair using variance-normalized windows over the whole chip.
func evalAll(features []Feature, samples []*img.Gray, base int) [][]float64 {
	vals := make([][]float64, len(features))
	wins := make([]Window, len(samples))
	for si, s := range samples {
		plain := img.NewIntegral(s)
		squared := img.NewSquaredIntegral(s)
		w, ok := NewWindow(plain, squared, 0, 0, base, 1)
		if !ok {
			panic("vj: sample smaller than base window")
		}
		wins[si] = w
	}
	for fi := range features {
		row := make([]float64, len(samples))
		for si := range samples {
			row[si] = wins[si].Eval(&features[fi])
		}
		vals[fi] = row
	}
	return vals
}

// trainStage runs AdaBoost for nStumps rounds over positives and the
// currently active negatives, then lowers the stage bias until the stage
// detection rate on positives reaches minDetect.
func trainStage(rng *rand.Rand, features []Feature, posVals, negVals [][]float64,
	activeNeg []int, nStumps int, minDetect float64) Stage {

	nPos := len(posVals[0])
	nNeg := len(activeNeg)
	// AdaBoost weights, initialized uniform per class.
	wPos := make([]float64, nPos)
	wNeg := make([]float64, nNeg)
	for i := range wPos {
		wPos[i] = 0.5 / float64(nPos)
	}
	for i := range wNeg {
		wNeg[i] = 0.5 / float64(nNeg)
	}
	_ = rng

	var st Stage
	// scores accumulate the weighted votes for threshold selection.
	posScore := make([]float64, nPos)
	negScore := make([]float64, nNeg)

	for round := 0; round < nStumps; round++ {
		normalize(wPos, wNeg)
		best := bestStump(features, posVals, negVals, activeNeg, wPos, wNeg)
		if best.Alpha <= 0 {
			break // no weak learner better than chance remains
		}
		st.Stumps = append(st.Stumps, best)
		// Update weights: correctly classified samples get down-weighted.
		beta := math.Exp(-best.Alpha)
		for i := 0; i < nPos; i++ {
			vote := stumpVote(best, posVals[best.Feature][i])
			posScore[i] += vote
			if vote > 0 {
				wPos[i] *= beta
			} else {
				wPos[i] /= beta
			}
		}
		for k, ni := range activeNeg {
			vote := stumpVote(best, negVals[best.Feature][ni])
			negScore[k] += vote
			if vote < 0 {
				wNeg[k] *= beta
			} else {
				wNeg[k] /= beta
			}
		}
	}
	if len(st.Stumps) == 0 {
		// Degenerate data: accept everything.
		st.Bias = -math.MaxFloat64
		return st
	}
	// Choose the bias as the largest value keeping minDetect of positives.
	sorted := append([]float64(nil), posScore...)
	sort.Float64s(sorted)
	idx := int(float64(nPos) * (1 - minDetect))
	if idx >= nPos {
		idx = nPos - 1
	}
	st.Bias = sorted[idx] - 1e-9
	return st
}

// bestStump scans every feature for the lowest weighted-error decision
// stump using the sorted-threshold sweep.
func bestStump(features []Feature, posVals, negVals [][]float64,
	activeNeg []int, wPos, wNeg []float64) Stump {

	type item struct {
		v   float64
		w   float64
		pos bool
	}
	nPos := len(wPos)
	items := make([]item, 0, nPos+len(activeNeg))

	bestErr := 0.5
	var best Stump
	var totalPos, totalNeg float64
	for _, w := range wPos {
		totalPos += w
	}
	for _, w := range wNeg {
		totalNeg += w
	}

	for fi := range features {
		items = items[:0]
		pv := posVals[fi]
		nv := negVals[fi]
		for i := 0; i < nPos; i++ {
			items = append(items, item{pv[i], wPos[i], true})
		}
		for k, ni := range activeNeg {
			items = append(items, item{nv[ni], wNeg[k], false})
		}
		sort.Slice(items, func(a, b int) bool { return items[a].v < items[b].v })

		// Sweep thresholds between consecutive values. belowPos/belowNeg
		// are the class weights strictly below the candidate threshold.
		var belowPos, belowNeg float64
		for i := 0; i < len(items); i++ {
			// Error if faces are "below" (polarity +1): misclassified =
			// positives above + negatives below.
			errPosBelow := (totalPos - belowPos) + belowNeg
			// Error if faces are "above" (polarity −1).
			errPosAbove := belowPos + (totalNeg - belowNeg)
			thr := items[i].v
			if e := errPosBelow; e < bestErr {
				bestErr = e
				best = Stump{Feature: fi, Threshold: thr, Polarity: 1}
			}
			if e := errPosAbove; e < bestErr {
				bestErr = e
				best = Stump{Feature: fi, Threshold: thr, Polarity: -1}
			}
			if items[i].pos {
				belowPos += items[i].w
			} else {
				belowNeg += items[i].w
			}
		}
	}
	if bestErr >= 0.5 {
		return Stump{} // Alpha 0 signals "no useful stump"
	}
	eps := math.Max(bestErr, 1e-10)
	best.Alpha = 0.5 * math.Log((1-eps)/eps)
	return best
}

// stumpVote returns ±Alpha for a feature value.
func stumpVote(s Stump, v float64) float64 {
	if s.Polarity*v < s.Polarity*s.Threshold {
		return s.Alpha
	}
	return -s.Alpha
}

// stagePasses evaluates a stage on precomputed feature values of sample i.
func stagePasses(st Stage, vals [][]float64, i int) bool {
	var score float64
	for _, s := range st.Stumps {
		score += stumpVote(s, vals[s.Feature][i])
	}
	return score >= st.Bias
}

func normalize(wPos, wNeg []float64) {
	var sum float64
	for _, w := range wPos {
		sum += w
	}
	for _, w := range wNeg {
		sum += w
	}
	if sum == 0 {
		return
	}
	inv := 1 / sum
	for i := range wPos {
		wPos[i] *= inv
	}
	for i := range wNeg {
		wNeg[i] *= inv
	}
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}
