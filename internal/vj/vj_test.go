package vj

import (
	"math/rand"
	"sync"
	"testing"

	"camsim/internal/img"
	"camsim/internal/quality"
	"camsim/internal/synth"
)

func TestGenerateFeaturesInBounds(t *testing.T) {
	feats := GenerateFeatures(20, 2, 2, 4)
	if len(feats) < 200 {
		t.Fatalf("only %d features generated", len(feats))
	}
	for _, f := range feats {
		for i := 0; i < f.NRect; i++ {
			r := f.Rects[i]
			if r.X < 0 || r.Y < 0 || r.X+r.W > 20 || r.Y+r.H > 20 {
				t.Fatalf("feature rect out of bounds: %+v", r)
			}
			if r.W <= 0 || r.H <= 0 {
				t.Fatalf("degenerate rect: %+v", r)
			}
		}
	}
}

func TestGenerateFeaturesPanicsOnBadStep(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GenerateFeatures(20, 0, 1, 4)
}

func TestFeatureEvalFlatImageIsZero(t *testing.T) {
	g := img.NewGray(20, 20)
	g.Fill(0.5)
	plain := img.NewIntegral(g)
	squared := img.NewSquaredIntegral(g)
	w, ok := NewWindow(plain, squared, 0, 0, 20, 1)
	if !ok {
		t.Fatal("window rejected")
	}
	for _, kind := range []FeatureKind{EdgeHorizontal, EdgeVertical, LineHorizontal, LineVertical} {
		f := makeFeature(kind, 2, 2, 12, 12)
		if v := w.Eval(&f); v < -1e-6 || v > 1e-6 {
			t.Fatalf("kind %d: flat image response %v, want ~0", kind, v)
		}
	}
}

func TestFeatureEvalEdgeResponse(t *testing.T) {
	// Left-dark/right-bright image: EdgeHorizontal (left − 2·right... i.e.
	// whole − 2·right half) must respond strongly and with opposite signs
	// for mirrored images.
	g := img.NewGray(20, 20)
	for y := 0; y < 20; y++ {
		for x := 10; x < 20; x++ {
			g.Set(x, y, 1)
		}
	}
	plain := img.NewIntegral(g)
	squared := img.NewSquaredIntegral(g)
	w, _ := NewWindow(plain, squared, 0, 0, 20, 1)
	f := makeFeature(EdgeHorizontal, 0, 0, 20, 20)
	v1 := w.Eval(&f)

	m := img.NewGray(20, 20)
	for y := 0; y < 20; y++ {
		for x := 0; x < 10; x++ {
			m.Set(x, y, 1)
		}
	}
	plain2 := img.NewIntegral(m)
	squared2 := img.NewSquaredIntegral(m)
	w2, _ := NewWindow(plain2, squared2, 0, 0, 20, 1)
	v2 := w2.Eval(&f)
	if v1*v2 >= 0 {
		t.Fatalf("mirrored edges gave same-sign responses: %v, %v", v1, v2)
	}
}

func TestWindowScaleInvariance(t *testing.T) {
	// The same pattern at 1x and 2x scale should give similar normalized
	// feature values when evaluated with the matching window scale.
	id := synth.IdentityFromSeed(3)
	o := synth.DefaultRenderOpts(20)
	o.Background = 0.5
	small := id.Render(o)
	big := img.ResizeBilinear(small, 40, 40)

	f := makeFeature(EdgeVertical, 4, 4, 12, 12)
	ps, ss := img.NewIntegral(small), img.NewSquaredIntegral(small)
	pb, sb := img.NewIntegral(big), img.NewSquaredIntegral(big)
	ws, _ := NewWindow(ps, ss, 0, 0, 20, 1)
	wb, _ := NewWindow(pb, sb, 0, 0, 20, 2)
	vs, vb := ws.Eval(&f), wb.Eval(&f)
	if d := vs - vb; d > 0.1 || d < -0.1 {
		t.Fatalf("scale variance too high: %v vs %v", vs, vb)
	}
}

func TestNewWindowRejectsOutOfBounds(t *testing.T) {
	g := img.NewGray(30, 30)
	plain := img.NewIntegral(g)
	squared := img.NewSquaredIntegral(g)
	if _, ok := NewWindow(plain, squared, 15, 15, 20, 1); ok {
		t.Fatal("accepted window extending past the image")
	}
	if _, ok := NewWindow(plain, squared, -1, 0, 20, 1); ok {
		t.Fatal("accepted negative origin")
	}
}

// Shared trained cascade (training is the expensive part of this suite).
var (
	cascadeOnce sync.Once
	cascade     *Cascade
	cascadeErr  error
)

func trainedCascade(t *testing.T) *Cascade {
	t.Helper()
	cascadeOnce.Do(func() {
		rng := rand.New(rand.NewSource(42))
		pos := synth.FaceChips(rng, 300, 20)
		neg := synth.NonFaceChips(rng, 600, 20)
		cfg := DefaultTrainConfig()
		cascade, cascadeErr = Train(rng, pos, neg, cfg)
	})
	if cascadeErr != nil {
		t.Fatal(cascadeErr)
	}
	return cascade
}

func TestTrainRejectsBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Train(rng, nil, synth.NonFaceChips(rng, 5, 20), DefaultTrainConfig()); err == nil {
		t.Fatal("accepted empty positives")
	}
	pos := synth.FaceChips(rng, 3, 24) // wrong chip size
	neg := synth.NonFaceChips(rng, 3, 24)
	if _, err := Train(rng, pos, neg, DefaultTrainConfig()); err == nil {
		t.Fatal("accepted wrong chip size")
	}
}

func TestCascadeStructureIsProgressive(t *testing.T) {
	c := trainedCascade(t)
	if len(c.Stages) < 2 {
		t.Fatalf("cascade has %d stages, want >= 2", len(c.Stages))
	}
	per := c.NumFeaturesPerStage()
	if per[0] > per[len(per)-1] {
		t.Fatalf("first stage (%d stumps) larger than last (%d) — not attentional", per[0], per[len(per)-1])
	}
}

func TestCascadeSeparatesChips(t *testing.T) {
	c := trainedCascade(t)
	rng := rand.New(rand.NewSource(77)) // held-out data
	pos := synth.FaceChips(rng, 100, 20)
	neg := synth.NonFaceChips(rng, 200, 20)
	classify := func(g *img.Gray) bool {
		plain := img.NewIntegral(g)
		squared := img.NewSquaredIntegral(g)
		w, _ := NewWindow(plain, squared, 0, 0, 20, 1)
		var st DetectStats
		pass, _, _ := c.evalWindow(w, &st)
		return pass
	}
	var tp, fp int
	for _, g := range pos {
		if classify(g) {
			tp++
		}
	}
	for _, g := range neg {
		if classify(g) {
			fp++
		}
	}
	if det := float64(tp) / 100; det < 0.9 {
		t.Fatalf("held-out detection rate %v, want >= 0.9", det)
	}
	if fpr := float64(fp) / 200; fpr > 0.25 {
		t.Fatalf("held-out false-positive rate %v, want <= 0.25", fpr)
	}
}

func sceneBatch(seed int64, n int) []struct {
	Image *img.Gray
	Faces []quality.Box
} {
	rng := rand.New(rand.NewSource(seed))
	out := make([]struct {
		Image *img.Gray
		Faces []quality.Box
	}, n)
	for i := range out {
		sc := synth.BuildDetectionScene(rng, synth.SceneConfig{
			W: 160, H: 120, MaxFaces: 2, MinSize: 24, MaxSize: 44, Clutter: 4,
			NoiseSig: 0.01, ForceFace: true,
		})
		out[i].Image = sc.Image
		out[i].Faces = sc.Faces
	}
	return out
}

func TestDetectFindsFacesInScenes(t *testing.T) {
	c := trainedCascade(t)
	scenes := sceneBatch(101, 8)
	acc, work := c.EvaluateOnScenes(scenes, DefaultDetectParams())
	if r := acc.Recall(); r < 0.6 {
		t.Fatalf("scene recall %v too low (stats %+v)", r, acc)
	}
	if work.Windows == 0 || work.FeatureEvals == 0 {
		t.Fatal("work counters not populated")
	}
}

func TestCascadeRejectsEarlyOnAverage(t *testing.T) {
	// The whole point of the attentional cascade: average stage entries
	// per window must be much closer to 1 than to the cascade depth.
	c := trainedCascade(t)
	scenes := sceneBatch(102, 4)
	_, work := c.EvaluateOnScenes(scenes, DefaultDetectParams())
	avgStages := float64(work.StageEvals) / float64(work.Windows)
	if avgStages > float64(len(c.Stages))*0.6 {
		t.Fatalf("average %.2f stages per window across %d stages — cascade not rejecting early",
			avgStages, len(c.Stages))
	}
}

func TestScaleFactorTradeoff(t *testing.T) {
	// Fig. 4c: growing the scale factor reduces work and accuracy.
	c := trainedCascade(t)
	scenes := sceneBatch(103, 8)
	pFine := DefaultDetectParams()
	pCoarse := DefaultDetectParams()
	pCoarse.ScaleFactor = 2.0
	accF, workF := c.EvaluateOnScenes(scenes, pFine)
	accC, workC := c.EvaluateOnScenes(scenes, pCoarse)
	if workC.Windows >= workF.Windows {
		t.Fatalf("scale factor 2.0 did not reduce windows: %d vs %d", workC.Windows, workF.Windows)
	}
	if accC.F1() > accF.F1()+0.05 {
		t.Fatalf("coarser scale factor improved F1 (%v vs %v)?", accC.F1(), accF.F1())
	}
}

func TestStepSizeTradeoff(t *testing.T) {
	c := trainedCascade(t)
	scenes := sceneBatch(104, 8)
	pFine := DefaultDetectParams()
	pCoarse := DefaultDetectParams()
	pCoarse.StepSize = 16
	accF, workF := c.EvaluateOnScenes(scenes, pFine)
	accC, workC := c.EvaluateOnScenes(scenes, pCoarse)
	if workC.Windows >= workF.Windows/4 {
		t.Fatalf("step 16 should cut windows >4x vs step 4: %d vs %d", workC.Windows, workF.Windows)
	}
	if accC.Recall() > accF.Recall()+1e-9 {
		t.Fatalf("coarser steps increased recall (%v vs %v)?", accC.Recall(), accF.Recall())
	}
}

func TestAdaptiveStepReducesWork(t *testing.T) {
	c := trainedCascade(t)
	scenes := sceneBatch(105, 8)
	pStatic := DefaultDetectParams()
	pAdaptive := DefaultDetectParams()
	pAdaptive.AdaptiveStep = 0.3
	_, workS := c.EvaluateOnScenes(scenes, pStatic)
	_, workA := c.EvaluateOnScenes(scenes, pAdaptive)
	if workA.Windows >= workS.Windows {
		t.Fatalf("adaptive stride did not reduce windows: %d vs %d", workA.Windows, workS.Windows)
	}
}

func TestDetectPanicsOnBadScaleFactor(t *testing.T) {
	c := trainedCascade(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p := DefaultDetectParams()
	p.ScaleFactor = 1.0
	c.Detect(img.NewGray(64, 64), p)
}

func TestContainsFace(t *testing.T) {
	c := trainedCascade(t)
	scenes := sceneBatch(106, 3)
	found := 0
	for _, sc := range scenes {
		if ok, _ := c.ContainsFace(sc.Image, DefaultDetectParams()); ok {
			found++
		}
	}
	if found == 0 {
		t.Fatal("ContainsFace found nothing in face-bearing scenes")
	}
	// An empty flat image must contain nothing.
	empty := img.NewGray(160, 120)
	empty.Fill(0.5)
	if ok, _ := c.ContainsFace(empty, DefaultDetectParams()); ok {
		t.Fatal("ContainsFace fired on a flat image")
	}
}

func BenchmarkDetectQVGA(b *testing.B) {
	cascadeOnce.Do(func() {
		rng := rand.New(rand.NewSource(42))
		pos := synth.FaceChips(rng, 300, 20)
		neg := synth.NonFaceChips(rng, 600, 20)
		cascade, cascadeErr = Train(rng, pos, neg, DefaultTrainConfig())
	})
	if cascadeErr != nil {
		b.Fatal(cascadeErr)
	}
	rng := rand.New(rand.NewSource(9))
	sc := synth.BuildDetectionScene(rng, synth.SceneConfig{
		W: 320, H: 240, MaxFaces: 2, MinSize: 30, MaxSize: 60, ForceFace: true,
	})
	p := DefaultDetectParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cascade.Detect(sc.Image, p)
	}
}
