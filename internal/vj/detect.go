package vj

import (
	"fmt"
	"math"

	"camsim/internal/img"
	"camsim/internal/quality"
)

// DetectParams are the algorithm knobs the paper sweeps in Fig. 4c.
type DetectParams struct {
	// ScaleFactor multiplies the window size between scale passes
	// (paper sweep: 1.25–2.0; smaller is slower and more accurate).
	ScaleFactor float64
	// StepSize is the static sliding stride in pixels at the base scale;
	// it is scaled with the window (paper sweep: 4–16).
	StepSize int
	// AdaptiveStep, when positive, skips ahead after confidently rejected
	// windows: the stride grows by AdaptiveStep·windowSize scaled by the
	// first-stage rejection margin (paper sweep: 0.0–0.4).
	AdaptiveStep float64
	// MinNeighbors is the detection-merge threshold (default 2).
	MinNeighbors int
	// MaxWindow caps the largest window edge; 0 means the full image.
	MaxWindow int
}

// DefaultDetectParams returns the accuracy-oriented operating point used
// as the Fig. 4c reference (relative accuracy 100%).
func DefaultDetectParams() DetectParams {
	return DetectParams{ScaleFactor: 1.25, StepSize: 4, AdaptiveStep: 0, MinNeighbors: 2}
}

// DetectStats counts the work a detection pass performed — the quantities
// the cascade's progressive filtering is designed to minimize.
type DetectStats struct {
	Windows      int64 // windows considered
	StageEvals   int64 // cascade stages entered
	FeatureEvals int64 // Haar features evaluated
	Scales       int   // scale passes over the image
	RawHits      int   // windows passing the full cascade before merging
}

// Detect scans the image at multiple scales and returns merged face boxes
// plus the work statistics.
func (c *Cascade) Detect(g *img.Gray, p DetectParams) ([]quality.Box, DetectStats) {
	var st DetectStats
	if p.ScaleFactor <= 1 {
		panic(fmt.Sprintf("vj: scale factor %v must exceed 1", p.ScaleFactor))
	}
	if p.StepSize < 1 {
		p.StepSize = 1
	}
	if p.MinNeighbors < 1 {
		p.MinNeighbors = 1
	}
	plain := img.NewIntegral(g)
	squared := img.NewSquaredIntegral(g)

	maxWindow := minI(g.W, g.H)
	if p.MaxWindow > 0 && p.MaxWindow < maxWindow {
		maxWindow = p.MaxWindow
	}

	var hits []quality.Box
	for scale := 1.0; int(float64(c.Base)*scale) <= maxWindow; scale *= p.ScaleFactor {
		st.Scales++
		size := int(float64(c.Base) * scale)
		step := int(float64(p.StepSize) * scale)
		if step < 1 {
			step = 1
		}
		for y := 0; y+size <= g.H; y += step {
			x := 0
			for x+size <= g.W {
				st.Windows++
				w, ok := NewWindow(plain, squared, x, y, c.Base, scale)
				if !ok {
					break
				}
				pass, score, margin := c.evalWindow(w, &st)
				if pass {
					hits = append(hits, quality.Box{X: x, Y: y, W: size, H: size, Score: score})
					st.RawHits++
					x += step
					continue
				}
				// Adaptive stride: confidently rejected regions are skipped
				// faster. margin is the normalized first-stage shortfall.
				if p.AdaptiveStep > 0 {
					skip := int(p.AdaptiveStep * float64(size) * margin)
					x += step + skip
				} else {
					x += step
				}
			}
		}
	}
	return quality.MergeOverlapping(hits, 0.3, p.MinNeighbors), st
}

// evalWindow runs the cascade in the window. It returns whether the window
// passed, the accumulated score, and the normalized rejection margin of
// the stage that rejected it (0 for passes, in [0,1] for rejections).
func (c *Cascade) evalWindow(w Window, st *DetectStats) (bool, float64, float64) {
	var total float64
	for si := range c.Stages {
		stage := &c.Stages[si]
		st.StageEvals++
		var score, norm float64
		for _, s := range stage.Stumps {
			st.FeatureEvals++
			score += stumpVote(s, w.Eval(&c.Features[s.Feature]))
			norm += s.Alpha
		}
		if score < stage.Bias {
			// Normalized shortfall below the stage threshold.
			margin := 0.0
			if norm > 0 {
				margin = (stage.Bias - score) / (2 * norm)
				margin = math.Min(1, math.Max(0, margin))
			}
			return false, 0, margin
		}
		total += score
	}
	return true, total, 0
}

// EvaluateOnScenes runs the detector over labelled scenes and accumulates
// detection accuracy and work statistics — the harness behind Fig. 4c.
func (c *Cascade) EvaluateOnScenes(scenes []struct {
	Image *img.Gray
	Faces []quality.Box
}, p DetectParams) (quality.DetectionStats, DetectStats) {
	var acc quality.DetectionStats
	var work DetectStats
	for _, sc := range scenes {
		pred, st := c.Detect(sc.Image, p)
		acc.Add(quality.MatchDetections(pred, sc.Faces, 0.4))
		work.Windows += st.Windows
		work.StageEvals += st.StageEvals
		work.FeatureEvals += st.FeatureEvals
		work.Scales += st.Scales
		work.RawHits += st.RawHits
	}
	return acc, work
}

// ContainsFace is the pre-filter decision the FA pipeline uses: does the
// frame contain at least one face candidate?
func (c *Cascade) ContainsFace(g *img.Gray, p DetectParams) (bool, DetectStats) {
	boxes, st := c.Detect(g, p)
	return len(boxes) > 0, st
}

// NumFeaturesPerStage returns the stump counts, exposing the cascade's
// progressive structure (few features first, many later — Fig. 4b).
func (c *Cascade) NumFeaturesPerStage() []int {
	out := make([]int, len(c.Stages))
	for i, s := range c.Stages {
		out[i] = len(s.Stumps)
	}
	return out
}
