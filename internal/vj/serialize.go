package vj

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// cascadeMagic identifies the camsim cascade serialization format.
const cascadeMagic = "CSVJ"

// Save writes the trained cascade in a compact deterministic binary
// format, so deployments can train once and ship the model with the
// camera firmware.
func (c *Cascade) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(cascadeMagic); err != nil {
		return err
	}
	write := func(vs ...interface{}) error {
		for _, v := range vs {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		return nil
	}
	if err := write(uint32(c.Base), uint32(len(c.Features)), uint32(len(c.Stages))); err != nil {
		return err
	}
	for _, f := range c.Features {
		if err := write(uint8(f.NRect)); err != nil {
			return err
		}
		for i := 0; i < f.NRect; i++ {
			r := f.Rects[i]
			if err := write(int32(r.X), int32(r.Y), int32(r.W), int32(r.H), r.Weight); err != nil {
				return err
			}
		}
	}
	for _, st := range c.Stages {
		if err := write(uint32(len(st.Stumps)), st.Bias); err != nil {
			return err
		}
		for _, s := range st.Stumps {
			if err := write(uint32(s.Feature), s.Threshold, s.Polarity, s.Alpha); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// LoadCascade reads a cascade produced by Save, validating structural
// invariants (feature indices in range, finite parameters).
func LoadCascade(r io.Reader) (*Cascade, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, len(cascadeMagic))
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, err
	}
	if string(hdr) != cascadeMagic {
		return nil, fmt.Errorf("vj: bad magic %q", hdr)
	}
	read := func(vs ...interface{}) error {
		for _, v := range vs {
			if err := binary.Read(br, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		return nil
	}
	var base, nFeat, nStages uint32
	if err := read(&base, &nFeat, &nStages); err != nil {
		return nil, err
	}
	if base == 0 || base > 1024 || nFeat == 0 || nFeat > 1<<22 || nStages == 0 || nStages > 1024 {
		return nil, fmt.Errorf("vj: implausible cascade header base=%d features=%d stages=%d", base, nFeat, nStages)
	}
	c := &Cascade{Base: int(base), Features: make([]Feature, nFeat)}
	for i := range c.Features {
		var nr uint8
		if err := read(&nr); err != nil {
			return nil, err
		}
		if nr == 0 || nr > 3 {
			return nil, fmt.Errorf("vj: feature %d has %d rects", i, nr)
		}
		c.Features[i].NRect = int(nr)
		for k := 0; k < int(nr); k++ {
			var x, y, w, h int32
			var wt float64
			if err := read(&x, &y, &w, &h, &wt); err != nil {
				return nil, err
			}
			if w <= 0 || h <= 0 || x < 0 || y < 0 || int(x+w) > int(base) || int(y+h) > int(base) {
				return nil, fmt.Errorf("vj: feature %d rect out of window", i)
			}
			c.Features[i].Rects[k] = Rect{int(x), int(y), int(w), int(h), wt}
		}
	}
	for si := uint32(0); si < nStages; si++ {
		var nStumps uint32
		var bias float64
		if err := read(&nStumps, &bias); err != nil {
			return nil, err
		}
		if nStumps > 1<<16 {
			return nil, fmt.Errorf("vj: stage %d has %d stumps", si, nStumps)
		}
		st := Stage{Bias: bias}
		for k := uint32(0); k < nStumps; k++ {
			var feat uint32
			var thr, pol, alpha float64
			if err := read(&feat, &thr, &pol, &alpha); err != nil {
				return nil, err
			}
			if feat >= nFeat {
				return nil, fmt.Errorf("vj: stump references feature %d of %d", feat, nFeat)
			}
			if math.IsNaN(thr) || math.IsNaN(alpha) || (pol != 1 && pol != -1) {
				return nil, fmt.Errorf("vj: invalid stump parameters")
			}
			st.Stumps = append(st.Stumps, Stump{Feature: int(feat), Threshold: thr, Polarity: pol, Alpha: alpha})
		}
		c.Stages = append(c.Stages, st)
	}
	return c, nil
}
