package vj

import (
	"bytes"
	"math/rand"
	"testing"

	"camsim/internal/synth"
)

func TestCascadeSaveLoadRoundTrip(t *testing.T) {
	c := trainedCascade(t)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCascade(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Base != c.Base || len(back.Features) != len(c.Features) || len(back.Stages) != len(c.Stages) {
		t.Fatalf("structure mismatch: base %d/%d features %d/%d stages %d/%d",
			back.Base, c.Base, len(back.Features), len(c.Features), len(back.Stages), len(c.Stages))
	}
	for i := range c.Stages {
		if back.Stages[i].Bias != c.Stages[i].Bias {
			t.Fatalf("stage %d bias drift", i)
		}
		for k := range c.Stages[i].Stumps {
			if back.Stages[i].Stumps[k] != c.Stages[i].Stumps[k] {
				t.Fatalf("stage %d stump %d differs", i, k)
			}
		}
	}
}

func TestLoadedCascadeDetectsIdentically(t *testing.T) {
	c := trainedCascade(t)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCascade(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(321))
	sc := synth.BuildDetectionScene(rng, synth.SceneConfig{
		W: 160, H: 120, MaxFaces: 2, MinSize: 24, MaxSize: 44, ForceFace: true,
	})
	p := DefaultDetectParams()
	a, _ := c.Detect(sc.Image, p)
	b, _ := back.Detect(sc.Image, p)
	if len(a) != len(b) {
		t.Fatalf("detection count differs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("detection %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestLoadCascadeRejectsCorruption(t *testing.T) {
	c := trainedCascade(t)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	if _, err := LoadCascade(bytes.NewReader([]byte("XXXX"))); err == nil {
		t.Fatal("accepted bad magic")
	}
	if _, err := LoadCascade(bytes.NewReader(data[:len(data)/3])); err == nil {
		t.Fatal("accepted truncated stream")
	}
	// Corrupt the base-window field to an absurd value.
	bad := append([]byte(nil), data...)
	bad[4], bad[5], bad[6], bad[7] = 0xff, 0xff, 0xff, 0xff
	if _, err := LoadCascade(bytes.NewReader(bad)); err == nil {
		t.Fatal("accepted absurd base window")
	}
}
