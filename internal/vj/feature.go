// Package vj implements the Viola-Jones face detector used as the
// paper's optional pre-filtering block (§III-B, Fig. 4): Haar-like
// rectangular features over integral images, AdaBoost training of an
// attentional cascade, and a sliding-window detector exposing the
// algorithm parameters the paper sweeps in Fig. 4c — scale factor,
// static step size, and adaptive step size.
package vj

import (
	"fmt"
	"math"

	"camsim/internal/img"
)

// Rect is a rectangle within the detector's base window with an evaluation
// weight (+/−). Feature value = Σ weight · pixelSum(rect).
type Rect struct {
	X, Y, W, H int
	Weight     float64
}

// Feature is a Haar-like rectangular feature defined in base-window
// coordinates. The weighted rectangle sums are computed on an integral
// image in O(1) per rectangle.
type Feature struct {
	Rects [3]Rect // at most 3 weighted rects express all classic types
	NRect int
}

// FeatureKind enumerates the classic Haar feature layouts.
type FeatureKind int

// The four feature layouts used by the detector (Viola & Jones 2004).
const (
	EdgeHorizontal FeatureKind = iota // two rects side by side
	EdgeVertical                      // two rects stacked
	LineHorizontal                    // three rects in a row (e.g. eyes-nose-eyes)
	LineVertical                      // three rects in a column
)

// makeFeature constructs a feature of the given kind with top-left (x, y)
// and overall size (w, h) in base-window coordinates. Using sum-weights
// lets two-rect features be expressed with 2 rects and three-rect features
// with 2 as well (whole window minus 3× the middle), minimizing integral
// image lookups.
func makeFeature(kind FeatureKind, x, y, w, h int) Feature {
	var f Feature
	switch kind {
	case EdgeHorizontal: // left half minus right half
		f.Rects[0] = Rect{x, y, w, h, 1}
		f.Rects[1] = Rect{x + w/2, y, w / 2, h, -2}
		f.NRect = 2
	case EdgeVertical: // top half minus bottom half
		f.Rects[0] = Rect{x, y, w, h, 1}
		f.Rects[1] = Rect{x, y + h/2, w, h / 2, -2}
		f.NRect = 2
	case LineHorizontal: // outer thirds minus middle third
		f.Rects[0] = Rect{x, y, w, h, 1}
		f.Rects[1] = Rect{x + w/3, y, w / 3, h, -3}
		f.NRect = 2
	case LineVertical:
		f.Rects[0] = Rect{x, y, w, h, 1}
		f.Rects[1] = Rect{x, y + h/3, w, h / 3, -3}
		f.NRect = 2
	default:
		panic(fmt.Sprintf("vj: unknown feature kind %d", kind))
	}
	return f
}

// GenerateFeatures enumerates Haar features inside a base×base window.
// positionStep and sizeStep subsample the full (very large) feature pool;
// the classic detector uses every position/size, which is unnecessary for
// a pre-filter. minSize is the smallest feature edge.
func GenerateFeatures(base, positionStep, sizeStep, minSize int) []Feature {
	if positionStep < 1 || sizeStep < 1 {
		panic("vj: steps must be >= 1")
	}
	var out []Feature
	for _, kind := range []FeatureKind{EdgeHorizontal, EdgeVertical, LineHorizontal, LineVertical} {
		// Dimension granularity so thirds/halves divide exactly.
		wStep, hStep := 2, 1
		if kind == EdgeVertical {
			wStep, hStep = 1, 2
		}
		if kind == LineHorizontal {
			wStep, hStep = 3, 1
		}
		if kind == LineVertical {
			wStep, hStep = 1, 3
		}
		for w := maxI(minSize, wStep); w <= base; w += wStep * sizeStep {
			for h := maxI(minSize, hStep); h <= base; h += hStep * sizeStep {
				for y := 0; y+h <= base; y += positionStep {
					for x := 0; x+w <= base; x += positionStep {
						out = append(out, makeFeature(kind, x, y, w, h))
					}
				}
			}
		}
	}
	return out
}

// Window binds an integral image to a scaled, positioned detector window
// so features can be evaluated with variance normalization (the standard
// VJ lighting correction).
type Window struct {
	ii      *img.Integral
	x, y    int
	scale   float64
	base    int
	invArea float64
	invStd  float64
}

// NewWindow prepares feature evaluation for the window at (x, y) with edge
// length base·scale on the given plain and squared integral images.
// It reports false if the window leaves the image.
func NewWindow(plain, squared *img.Integral, x, y, base int, scale float64) (Window, bool) {
	size := int(float64(base) * scale)
	if x < 0 || y < 0 || x+size > plain.W || y+size > plain.H || size <= 0 {
		return Window{}, false
	}
	mean, variance := img.WindowStats(plain, squared, x, y, size, size)
	_ = mean
	std := 1.0
	if variance > 1e-8 {
		std = math.Sqrt(variance)
	}
	return Window{
		ii: plain, x: x, y: y, scale: scale, base: base,
		invArea: 1 / float64(size*size),
		invStd:  1 / std,
	}, true
}

// Eval computes the variance-normalized feature response in the window.
func (w Window) Eval(f *Feature) float64 {
	var sum float64
	for i := 0; i < f.NRect; i++ {
		r := &f.Rects[i]
		rx := w.x + int(float64(r.X)*w.scale)
		ry := w.y + int(float64(r.Y)*w.scale)
		rw := int(float64(r.W) * w.scale)
		rh := int(float64(r.H) * w.scale)
		sum += r.Weight * w.ii.Sum(rx, ry, rw, rh)
	}
	// Normalize by window area and contrast so thresholds learned at the
	// base scale transfer across scales and lighting.
	return sum * w.invArea * w.invStd
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
