// Package core implements the paper's central abstraction: the in-camera
// processing pipeline (Fig. 1). A camera application decomposes into an
// ordered chain of blocks; a *placement* decides how many blocks run in
// the camera (and on which implementation) before the intermediate data is
// offloaded. The total cost combines the computation cost of the in-camera
// blocks with the communication cost of shipping the offload payload.
//
// Two cost regimes cover the paper's case studies:
//
//   - ThroughputPipeline (the VR system): every block and the uplink are
//     pipelined, so the system rate is the minimum of block throughputs
//     and upload rate; real time means both sides clear a target FPS.
//   - EnergyPipeline (the face-authentication system): blocks are
//     progressive filters; the expected energy per frame is the sum of
//     block energies weighted by the fraction of frames that reach them,
//     plus the transmit energy of whatever is offloaded.
//
// The package is deliberately stdlib-only: case-study packages adapt
// their devices, links, radios and harvesters onto these structures.
package core

import (
	"fmt"
)

// Stage is one block of a throughput-oriented pipeline.
type Stage struct {
	Name string
	// OutputBytes is the payload size if the pipeline offloads after this
	// stage (the communication cost driver).
	OutputBytes int64
	// FPS maps implementation names (e.g. "CPU", "GPU", "FPGA") to the
	// block's throughput on that implementation.
	FPS map[string]float64
}

// ThroughputPipeline is a chain of stages behind a sensor.
type ThroughputPipeline struct {
	// SensorBytes is the raw payload when offloading straight off the
	// sensor (placement with zero in-camera blocks).
	SensorBytes int64
	Stages      []Stage
}

// Placement selects how much of the pipeline runs in-camera and on what.
type Placement struct {
	// InCamera is the number of leading stages computed at the camera;
	// the output of stage InCamera−1 (or the sensor) is offloaded.
	InCamera int
	// Impl names the implementation of each in-camera stage
	// (len == InCamera).
	Impl []string
}

// Label renders a Fig. 10-style config label such as "S+B1+B2+B3(FPGA)".
func (pl Placement) Label(p *ThroughputPipeline) string {
	s := "S"
	for i := 0; i < pl.InCamera; i++ {
		s += "+" + p.Stages[i].Name + "(" + pl.Impl[i] + ")"
	}
	return s
}

// Assessment is the evaluated cost of one placement.
type Assessment struct {
	Placement  Placement
	Label      string
	ComputeFPS float64 // slowest in-camera block (∞ exposure capped by MaxFPS)
	CommFPS    float64 // uplink rate for the offloaded payload
	TotalFPS   float64 // min(compute, communication) — the pipelined system rate
	Bottleneck string  // which side (and block) limits the system
	// OffloadBytes is the payload shipped per frame-set.
	OffloadBytes int64
}

// MaxFPS caps the reported compute rate of an empty in-camera pipeline
// (pure sensor offload has no compute cost; the paper's Fig. 10 draws it
// as "off the chart").
const MaxFPS = 1e4

// Evaluate computes the assessment of a placement on a link with the given
// payload rate in bytes per second.
func (p *ThroughputPipeline) Evaluate(pl Placement, linkBytesPerSec float64) (Assessment, error) {
	computeFPS, slowest, err := p.scanCompute(pl)
	if err != nil {
		return Assessment{}, err
	}
	a := Assessment{Placement: pl, Label: pl.Label(p)}
	a.ComputeFPS = computeFPS
	a.Bottleneck = "communication"
	if slowest >= 0 {
		a.Bottleneck = "compute:" + p.Stages[slowest].Name + "(" + pl.Impl[slowest] + ")"
	}
	a.OffloadBytes = p.offloadBytes(pl)
	if linkBytesPerSec <= 0 || a.OffloadBytes <= 0 {
		return Assessment{}, fmt.Errorf("core: invalid link rate %v or payload %d", linkBytesPerSec, a.OffloadBytes)
	}
	a.CommFPS = linkBytesPerSec / float64(a.OffloadBytes)
	if a.CommFPS < a.ComputeFPS {
		a.TotalFPS = a.CommFPS
		a.Bottleneck = "communication"
	} else {
		a.TotalFPS = a.ComputeFPS
	}
	return a, nil
}

// Enumerate generates every placement: each in-camera prefix length crossed
// with every combination of available implementations for the included
// stages. Stage implementations are taken from the stage's FPS keys,
// restricted to the impls list when non-nil (preserving its order for
// deterministic output).
func (p *ThroughputPipeline) Enumerate(impls []string) []Placement {
	var out []Placement
	out = append(out, Placement{}) // sensor-only
	for n := 1; n <= len(p.Stages); n++ {
		choices := make([][]string, n)
		for i := 0; i < n; i++ {
			if impls == nil {
				for name := range p.Stages[i].FPS {
					choices[i] = append(choices[i], name)
				}
				sortStrings(choices[i])
			} else {
				for _, name := range impls {
					if _, ok := p.Stages[i].FPS[name]; ok {
						choices[i] = append(choices[i], name)
					}
				}
			}
		}
		cur := make([]string, n)
		var rec func(i int)
		rec = func(i int) {
			if i == n {
				out = append(out, Placement{InCamera: n, Impl: append([]string(nil), cur...)})
				return
			}
			for _, c := range choices[i] {
				cur[i] = c
				rec(i + 1)
			}
		}
		rec(0)
	}
	return out
}

// Best returns the assessment with the highest total FPS among the given
// placements, with ties broken toward fewer in-camera stages (cheaper
// hardware).
func (p *ThroughputPipeline) Best(placements []Placement, linkBytesPerSec float64) (Assessment, error) {
	var best Assessment
	found := false
	for _, pl := range placements {
		a, err := p.Evaluate(pl, linkBytesPerSec)
		if err != nil {
			return Assessment{}, err
		}
		if !found || a.TotalFPS > best.TotalFPS ||
			(a.TotalFPS == best.TotalFPS && a.Placement.InCamera < best.Placement.InCamera) {
			best = a
			found = true
		}
	}
	if !found {
		return Assessment{}, fmt.Errorf("core: no placements to evaluate")
	}
	return best, nil
}

// FrameCost is the link-independent per-frame cost of a placement: how long
// the in-camera blocks take on one frame-set and how many bytes are shipped
// when it offloads. It is the hook the fleet simulator (internal/fleet)
// uses to drive per-camera timing while modelling the shared uplink — and
// its contention — itself, instead of assuming the fixed private link that
// Evaluate folds into CommFPS.
type FrameCost struct {
	// ComputeSeconds is the time the slowest in-camera block spends on one
	// frame-set (1/ComputeFPS; 1/MaxFPS for a sensor-only placement).
	ComputeSeconds float64
	// OffloadBytes is the payload shipped per frame-set.
	OffloadBytes int64
}

// Cost evaluates the placement's per-frame compute time and offload payload
// without reference to any link.
func (p *ThroughputPipeline) Cost(pl Placement) (FrameCost, error) {
	computeFPS, _, err := p.scanCompute(pl)
	if err != nil {
		return FrameCost{}, err
	}
	c := FrameCost{ComputeSeconds: 1 / computeFPS, OffloadBytes: p.offloadBytes(pl)}
	if c.OffloadBytes <= 0 {
		return FrameCost{}, fmt.Errorf("core: non-positive offload payload %d", c.OffloadBytes)
	}
	return c, nil
}

// CostEntry is one row of a placement cost table: a placement, its Fig.
// 10-style label, and its link-independent per-frame cost.
type CostEntry struct {
	Label     string
	Placement Placement
	Cost      FrameCost
}

// CostTable evaluates every placement into a cost table, preserving input
// order. It is the lookup structure a runtime placement controller (e.g.
// internal/fleet's adaptive policies) switches between: each row trades
// in-camera compute time against offload payload, and the controller picks
// a row per camera as observed network conditions move.
func (p *ThroughputPipeline) CostTable(pls []Placement) ([]CostEntry, error) {
	out := make([]CostEntry, 0, len(pls))
	for _, pl := range pls {
		c, err := p.Cost(pl)
		if err != nil {
			return nil, err
		}
		out = append(out, CostEntry{Label: pl.Label(p), Placement: pl, Cost: c})
	}
	return out, nil
}

// scanCompute validates a placement and returns the compute rate of its
// slowest in-camera stage (MaxFPS-capped for a sensor-only placement) with
// that stage's index, or -1 when no stage limits it. Shared by Evaluate
// and Cost so the two views of a placement cannot diverge.
func (p *ThroughputPipeline) scanCompute(pl Placement) (computeFPS float64, slowest int, err error) {
	if pl.InCamera < 0 || pl.InCamera > len(p.Stages) {
		return 0, -1, fmt.Errorf("core: placement includes %d of %d stages", pl.InCamera, len(p.Stages))
	}
	if len(pl.Impl) != pl.InCamera {
		return 0, -1, fmt.Errorf("core: placement names %d impls for %d stages", len(pl.Impl), pl.InCamera)
	}
	computeFPS, slowest = MaxFPS, -1
	for i := 0; i < pl.InCamera; i++ {
		fps, ok := p.Stages[i].FPS[pl.Impl[i]]
		if !ok {
			return 0, -1, fmt.Errorf("core: stage %s has no %q implementation", p.Stages[i].Name, pl.Impl[i])
		}
		if fps <= 0 {
			return 0, -1, fmt.Errorf("core: stage %s on %s has non-positive FPS", p.Stages[i].Name, pl.Impl[i])
		}
		if fps < computeFPS {
			computeFPS, slowest = fps, i
		}
	}
	return computeFPS, slowest, nil
}

// offloadBytes returns the payload a validated placement ships per
// frame-set.
func (p *ThroughputPipeline) offloadBytes(pl Placement) int64 {
	if pl.InCamera > 0 {
		return p.Stages[pl.InCamera-1].OutputBytes
	}
	return p.SensorBytes
}

// MeetsRealTime reports whether the assessment clears the target on both
// the computation and communication sides — the paper's Fig. 10 criterion
// ("if one or both costs falls below the threshold, the system cannot
// support real-time operation").
func (a Assessment) MeetsRealTime(targetFPS float64) bool {
	return a.ComputeFPS >= targetFPS && a.CommFPS >= targetFPS
}

// sortStrings is a tiny insertion sort to avoid importing sort for 3-item
// slices on the hot enumeration path.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Pareto computes the Pareto-efficient subset of (cost, value) points:
// a point survives unless another point has cost ≤ and value ≥ with at
// least one strict. Order of the input is preserved in the output.
func Pareto(points []ParetoPoint) []ParetoPoint {
	var out []ParetoPoint
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i == j {
				continue
			}
			if q.Cost <= p.Cost && q.Value >= p.Value && (q.Cost < p.Cost || q.Value > p.Value) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	return out
}

// ParetoPoint is a labelled (cost, value) design point, lower cost and
// higher value being better.
type ParetoPoint struct {
	Label string
	Cost  float64
	Value float64
}

// Crossover finds the link rate (bytes/s) at which offloading the raw
// sensor data reaches the target FPS — the paper's §IV-C observation that
// faster networks remove the incentive for in-camera processing. It
// returns the minimum link rate and the rate expressed in Gb/s.
func (p *ThroughputPipeline) Crossover(targetFPS float64) (bytesPerSec, gbps float64) {
	bytesPerSec = targetFPS * float64(p.SensorBytes)
	return bytesPerSec, bytesPerSec * 8 / 1e9
}
