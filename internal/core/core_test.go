package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// fig10Pipeline builds the paper's VR pipeline from the Fig. 10 anchor
// numbers (bytes chosen so a 3.125 GB/s link gives the published rates).
func fig10Pipeline() *ThroughputPipeline {
	const link = 3.125e9
	bytesFor := func(fps float64) int64 { return int64(link / fps) }
	return &ThroughputPipeline{
		SensorBytes: bytesFor(15.8),
		Stages: []Stage{
			{Name: "B1", OutputBytes: bytesFor(15.8), FPS: map[string]float64{"CPU": 442.4}},
			{Name: "B2", OutputBytes: bytesFor(3.95), FPS: map[string]float64{"CPU": 110.6}},
			{Name: "B3", OutputBytes: bytesFor(11.2), FPS: map[string]float64{"CPU": 0.09, "GPU": 5.27, "FPGA": 31.6}},
			{Name: "B4", OutputBytes: bytesFor(174), FPS: map[string]float64{"CPU": 442.4, "GPU": 442.4, "FPGA": 442.4}},
		},
	}
}

func TestEvaluateSensorOnly(t *testing.T) {
	p := fig10Pipeline()
	a, err := p.Evaluate(Placement{}, 3.125e9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.CommFPS-15.8) > 0.01 {
		t.Fatalf("sensor comm FPS %v, want 15.8", a.CommFPS)
	}
	if a.ComputeFPS != MaxFPS {
		t.Fatalf("sensor compute FPS %v, want cap", a.ComputeFPS)
	}
	if a.Bottleneck != "communication" || a.TotalFPS != a.CommFPS {
		t.Fatalf("assessment %+v", a)
	}
}

func TestEvaluateFig10Table(t *testing.T) {
	// The nine configurations of Fig. 10 with their expected total rates.
	p := fig10Pipeline()
	cases := []struct {
		impl  []string
		total float64
	}{
		{nil, 15.8},
		{[]string{"CPU"}, 15.8},
		{[]string{"CPU", "CPU"}, 3.95},
		{[]string{"CPU", "CPU", "CPU"}, 0.09},
		{[]string{"CPU", "CPU", "GPU"}, 5.27},
		{[]string{"CPU", "CPU", "FPGA"}, 11.2}, // communication-limited!
		{[]string{"CPU", "CPU", "CPU", "CPU"}, 0.09},
		{[]string{"CPU", "CPU", "GPU", "GPU"}, 5.27},
		{[]string{"CPU", "CPU", "FPGA", "FPGA"}, 31.6},
	}
	for _, c := range cases {
		a, err := p.Evaluate(Placement{InCamera: len(c.impl), Impl: c.impl}, 3.125e9)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a.TotalFPS-c.total)/c.total > 0.01 {
			t.Fatalf("%s: total %v, want %v", a.Label, a.TotalFPS, c.total)
		}
	}
}

func TestOnlyFullFPGAPipelineMeetsRealTime(t *testing.T) {
	// The paper's headline Fig. 10 finding.
	p := fig10Pipeline()
	placements := p.Enumerate([]string{"CPU", "GPU", "FPGA"})
	var winners []string
	for _, pl := range placements {
		a, err := p.Evaluate(pl, 3.125e9)
		if err != nil {
			t.Fatal(err)
		}
		if a.MeetsRealTime(30) {
			winners = append(winners, a.Label)
		}
	}
	if len(winners) == 0 {
		t.Fatal("no configuration meets 30 FPS — pipeline anchors wrong")
	}
	for _, w := range winners {
		if !strings.Contains(w, "B4") || !strings.Contains(w, "B3(FPGA)") {
			t.Fatalf("non-full/non-FPGA config %q meets real time", w)
		}
	}
}

func TestOffloadAfterB3IsCommunicationLimited(t *testing.T) {
	// The subtle Fig. 10 point: FPGA-accelerated B3 clears 30 FPS on
	// compute, but the depth-map payload still only uploads at 11.2 FPS.
	p := fig10Pipeline()
	a, err := p.Evaluate(Placement{InCamera: 3, Impl: []string{"CPU", "CPU", "FPGA"}}, 3.125e9)
	if err != nil {
		t.Fatal(err)
	}
	if a.ComputeFPS < 30 {
		t.Fatalf("compute side %v should clear 30", a.ComputeFPS)
	}
	if a.Bottleneck != "communication" {
		t.Fatalf("bottleneck %q, want communication", a.Bottleneck)
	}
}

func TestEvaluateErrors(t *testing.T) {
	p := fig10Pipeline()
	if _, err := p.Evaluate(Placement{InCamera: 9}, 1); err == nil {
		t.Fatal("accepted out-of-range prefix")
	}
	if _, err := p.Evaluate(Placement{InCamera: 1}, 1); err == nil {
		t.Fatal("accepted missing impls")
	}
	if _, err := p.Evaluate(Placement{InCamera: 1, Impl: []string{"TPU"}}, 1); err == nil {
		t.Fatal("accepted unknown implementation")
	}
	if _, err := p.Evaluate(Placement{}, 0); err == nil {
		t.Fatal("accepted zero link rate")
	}
}

func TestCostTableMatchesCostHook(t *testing.T) {
	p := fig10Pipeline()
	pls := p.Enumerate([]string{"CPU", "GPU", "FPGA"})
	table, err := p.CostTable(pls)
	if err != nil {
		t.Fatal(err)
	}
	if len(table) != len(pls) {
		t.Fatalf("table has %d rows for %d placements", len(table), len(pls))
	}
	for i, e := range table {
		cost, err := p.Cost(pls[i])
		if err != nil {
			t.Fatal(err)
		}
		if e.Cost != cost {
			t.Fatalf("row %d diverges from Cost: %+v vs %+v", i, e.Cost, cost)
		}
		if e.Label != pls[i].Label(p) {
			t.Fatalf("row %d label %q for placement %q", i, e.Label, pls[i].Label(p))
		}
	}
	if _, err := p.CostTable([]Placement{{InCamera: 99}}); err == nil {
		t.Fatal("accepted an invalid placement")
	}
}

func TestEnumerateCountsAndDeterminism(t *testing.T) {
	p := fig10Pipeline()
	got := p.Enumerate([]string{"CPU", "GPU", "FPGA"})
	// 1 (sensor) + 1 (B1) + 1 (B1B2) + 3 (B3 devices) + 9 (B3×B4 devices).
	want := 1 + 1 + 1 + 3 + 9
	if len(got) != want {
		t.Fatalf("enumerated %d placements, want %d", len(got), want)
	}
	again := p.Enumerate([]string{"CPU", "GPU", "FPGA"})
	for i := range got {
		if got[i].Label(p) != again[i].Label(p) {
			t.Fatal("enumeration not deterministic")
		}
	}
	// nil impls: same count via sorted FPS keys.
	if all := p.Enumerate(nil); len(all) != want {
		t.Fatalf("nil-impl enumeration %d, want %d", len(all), want)
	}
}

func TestBestPicksFullFPGA(t *testing.T) {
	p := fig10Pipeline()
	best, err := p.Best(p.Enumerate(nil), 3.125e9)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(best.Label, "B3(FPGA)") || best.Placement.InCamera != 4 {
		t.Fatalf("best config %q, want full FPGA pipeline", best.Label)
	}
	if _, err := p.Best(nil, 1); err == nil {
		t.Fatal("Best of empty placements should error")
	}
}

func TestCrossover400G(t *testing.T) {
	// §IV-C: at 400 GbE the raw 16-camera output uploads far above 30 FPS,
	// removing the in-camera incentive.
	p := fig10Pipeline()
	_, gbps := p.Crossover(30)
	if gbps < 25 || gbps > 400 {
		t.Fatalf("raw-offload crossover at %v Gb/s — expected between 25G and 400G", gbps)
	}
	a, err := p.Evaluate(Placement{}, 400e9/8)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalFPS < 30 {
		t.Fatalf("sensor offload at 400G = %v FPS, want real-time", a.TotalFPS)
	}
}

func TestParetoBasics(t *testing.T) {
	pts := []ParetoPoint{
		{"a", 1, 1},
		{"b", 2, 2},
		{"c", 2, 1.5}, // dominated by b
		{"d", 0.5, 0.5},
	}
	front := Pareto(pts)
	labels := map[string]bool{}
	for _, p := range front {
		labels[p.Label] = true
	}
	if labels["c"] {
		t.Fatal("dominated point survived")
	}
	for _, want := range []string{"a", "b", "d"} {
		if !labels[want] {
			t.Fatalf("non-dominated point %q missing", want)
		}
	}
}

func TestParetoProperty(t *testing.T) {
	// No point in the frontier dominates another frontier point.
	f := func(costs, values [8]float64) bool {
		pts := make([]ParetoPoint, 8)
		for i := range pts {
			c, v := math.Abs(costs[i]), math.Abs(values[i])
			if math.IsNaN(c) || math.IsInf(c, 0) || math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			pts[i] = ParetoPoint{Cost: c, Value: v}
		}
		front := Pareto(pts)
		for i, p := range front {
			for j, q := range front {
				if i == j {
					continue
				}
				if q.Cost <= p.Cost && q.Value >= p.Value && (q.Cost < p.Cost || q.Value > p.Value) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// --- Energy pipeline ---

func faPipeline(md, vj bool) *EnergyPipeline {
	// Representative joule figures: capture 4.3 µJ, motion detect 1.3 µJ
	// passing 12%, VJ detect 40 µJ passing 60%, NN authenticate 5 nJ.
	p := &EnergyPipeline{CaptureEnergy: 4.3e-6}
	if md {
		p.Stages = append(p.Stages, EnergyStage{Name: "MD", EnergyPerFrame: 1.3e-6, PassRate: 0.12})
	}
	if vj {
		p.Stages = append(p.Stages, EnergyStage{Name: "VJ", EnergyPerFrame: 40e-6, PassRate: 0.6})
	}
	p.Stages = append(p.Stages, EnergyStage{Name: "NN", EnergyPerFrame: 4.9e-9, PassRate: 0})
	return p
}

func TestEnergyEvaluateFiltering(t *testing.T) {
	noFilter := faPipeline(false, false)
	withMD := faPipeline(true, false)
	a0, err := noFilter.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	a1, err := withMD.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	// With a pure-NN pipeline the NN runs every frame; the NN is so cheap
	// that adding MD costs more than it saves — filtering pays off for the
	// *expensive* downstream blocks (VJ), mirroring the paper's point that
	// optional blocks must be judged against the blocks they gate.
	nnEvery := a0.PerStage[0]
	nnGated := a1.PerStage[1]
	if nnGated >= nnEvery {
		t.Fatalf("MD did not reduce NN energy: %v vs %v", nnGated, nnEvery)
	}
}

func TestEnergyFilteringGatesExpensiveOffload(t *testing.T) {
	// Offloading raw frames (active radio) with and without motion gating.
	mk := func(md bool) *EnergyPipeline {
		p := &EnergyPipeline{CaptureEnergy: 4.3e-6,
			OffloadBytes: 19200, OffloadFixed: 15e-6, OffloadPerByte: 12e-9 * 8}
		if md {
			p.Stages = append(p.Stages, EnergyStage{Name: "MD", EnergyPerFrame: 1.3e-6, PassRate: 0.12})
		}
		return p
	}
	aAll, err := mk(false).Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	aGated, err := mk(true).Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if aGated.Total >= aAll.Total/2 {
		t.Fatalf("motion gating saved too little: %v vs %v", aGated.Total, aAll.Total)
	}
	if aGated.OffloadShare != 0.12 {
		t.Fatalf("offload share %v, want 0.12", aGated.OffloadShare)
	}
}

func TestReachProbabilityChain(t *testing.T) {
	p := faPipeline(true, true)
	if got := p.ReachProbability(0); got != 1 {
		t.Fatalf("reach(0) = %v", got)
	}
	if got := p.ReachProbability(1); got != 0.12 {
		t.Fatalf("reach(1) = %v", got)
	}
	if got := p.ReachProbability(2); math.Abs(got-0.072) > 1e-12 {
		t.Fatalf("reach(2) = %v", got)
	}
	if got := p.ReachProbability(3); got != 0 {
		t.Fatalf("reach(end) = %v (NN passes nothing)", got)
	}
}

func TestReachProbabilityPanics(t *testing.T) {
	p := faPipeline(false, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.ReachProbability(5)
}

func TestEnergyValidate(t *testing.T) {
	bad := []*EnergyPipeline{
		{CaptureEnergy: -1},
		{Stages: []EnergyStage{{Name: "x", EnergyPerFrame: -1, PassRate: 0.5}}},
		{Stages: []EnergyStage{{Name: "x", EnergyPerFrame: 1, PassRate: 2}}},
		{OffloadBytes: -5},
	}
	for i, p := range bad {
		if _, err := p.Evaluate(); err == nil {
			t.Fatalf("case %d: accepted invalid pipeline", i)
		}
	}
}

func TestEnergyPowerAndSustainability(t *testing.T) {
	a, err := faPipeline(true, true).Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	// At the WISPCam's 1 FPS, this pipeline must run far below 1 mW.
	if w := a.AveragePowerWatts(1); w >= 1e-3 {
		t.Fatalf("average power %v W not sub-mW", w)
	}
	// A 200 µW harvester sustains well above 1 FPS.
	if fps := a.SustainableFPS(200e-6); fps < 1 {
		t.Fatalf("sustainable FPS %v < 1 on harvested power", fps)
	}
}

func TestEnergyMonotoneInPassRateProperty(t *testing.T) {
	// Lowering a filter's pass rate never increases total expected energy.
	f := func(rate1, rate2 float64) bool {
		r1 := math.Mod(math.Abs(rate1), 1)
		r2 := math.Mod(math.Abs(rate2), 1)
		lo, hi := math.Min(r1, r2), math.Max(r1, r2)
		mk := func(r float64) float64 {
			p := &EnergyPipeline{
				CaptureEnergy: 1e-6,
				Stages: []EnergyStage{
					{Name: "filter", EnergyPerFrame: 1e-7, PassRate: r},
					{Name: "heavy", EnergyPerFrame: 1e-4, PassRate: 0},
				},
			}
			a, err := p.Evaluate()
			if err != nil {
				t.Fatal(err)
			}
			return a.Total
		}
		return mk(lo) <= mk(hi)+1e-18
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
