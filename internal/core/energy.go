package core

import "fmt"

// EnergyStage is one block of an energy-oriented (progressive filtering)
// pipeline: it costs EnergyPerFrame joules for every frame that reaches it
// and forwards a PassRate fraction of those frames downstream. Optional
// blocks like motion detection have cheap energy and low pass rates; core
// blocks like NN authentication are expensive and (usually) terminal.
type EnergyStage struct {
	Name           string
	EnergyPerFrame float64 // joules per processed frame
	PassRate       float64 // fraction of processed frames forwarded, in [0, 1]
}

// EnergyPipeline is a filtering chain behind a sensor, optionally
// offloading the survivors' payload over a radio.
type EnergyPipeline struct {
	// CaptureEnergy is paid for every frame (the sensor).
	CaptureEnergy float64
	Stages        []EnergyStage
	// OffloadBytes is the payload transmitted for frames that pass every
	// stage (0 disables offload — a fully in-camera decision pipeline).
	OffloadBytes int64
	// OffloadFixed and OffloadPerByte model the radio: E = fixed + bytes·perByte.
	OffloadFixed   float64
	OffloadPerByte float64
}

// Validate checks stage parameters.
func (p *EnergyPipeline) Validate() error {
	if p.CaptureEnergy < 0 {
		return fmt.Errorf("core: negative capture energy")
	}
	for _, s := range p.Stages {
		if s.EnergyPerFrame < 0 {
			return fmt.Errorf("core: stage %s has negative energy", s.Name)
		}
		if s.PassRate < 0 || s.PassRate > 1 {
			return fmt.Errorf("core: stage %s pass rate %v outside [0,1]", s.Name, s.PassRate)
		}
	}
	if p.OffloadBytes < 0 || p.OffloadFixed < 0 || p.OffloadPerByte < 0 {
		return fmt.Errorf("core: negative offload parameters")
	}
	return nil
}

// ReachProbability returns the fraction of frames that reach stage i
// (i == len(Stages) means "pass the whole chain").
func (p *EnergyPipeline) ReachProbability(i int) float64 {
	if i < 0 || i > len(p.Stages) {
		panic(fmt.Sprintf("core: stage index %d out of range 0..%d", i, len(p.Stages)))
	}
	prob := 1.0
	for j := 0; j < i; j++ {
		prob *= p.Stages[j].PassRate
	}
	return prob
}

// EnergyBreakdown itemizes the expected per-frame energy.
type EnergyAssessment struct {
	Capture      float64
	PerStage     []float64 // expected joules per frame attributed to each stage
	Offload      float64
	Total        float64
	OffloadShare float64 // fraction of frames whose payload is transmitted
}

// Evaluate returns the expected energy cost per captured frame.
func (p *EnergyPipeline) Evaluate() (EnergyAssessment, error) {
	if err := p.Validate(); err != nil {
		return EnergyAssessment{}, err
	}
	a := EnergyAssessment{Capture: p.CaptureEnergy}
	a.Total = p.CaptureEnergy
	for i, s := range p.Stages {
		e := p.ReachProbability(i) * s.EnergyPerFrame
		a.PerStage = append(a.PerStage, e)
		a.Total += e
	}
	a.OffloadShare = p.ReachProbability(len(p.Stages))
	if p.OffloadBytes > 0 {
		a.Offload = a.OffloadShare * (p.OffloadFixed + float64(p.OffloadBytes)*p.OffloadPerByte)
		a.Total += a.Offload
	}
	return a, nil
}

// AveragePowerWatts returns the steady-state power draw at the given frame
// rate (frames per second × joules per frame).
func (a EnergyAssessment) AveragePowerWatts(fps float64) float64 {
	return a.Total * fps
}

// SustainableFPS returns the frame rate a harvested power budget supports.
func (a EnergyAssessment) SustainableFPS(harvestWatts float64) float64 {
	if a.Total <= 0 {
		return 0
	}
	return harvestWatts / a.Total
}
