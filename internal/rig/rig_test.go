package rig

import (
	"math"
	"math/rand"
	"testing"

	"camsim/internal/img"
)

func newTestRig(seed int64) *Rig {
	return NewRig(rand.New(rand.NewSource(seed)), 4, 128, 64, 0.75, 3)
}

func TestNewRigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, fn := range []func(){
		func() { NewRig(rng, 3, 64, 64, 0.5, 3) },  // odd camera count
		func() { NewRig(rng, 4, 64, 64, 0, 3) },    // bad overlap
		func() { NewRig(rng, 4, 64, 64, 1.5, 3) },  // bad overlap
		func() { NewRig(rng, 4, 64, 64, 0.5, -1) }, // bad baseline
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSceneDeterministicRender(t *testing.T) {
	r := newTestRig(2)
	a := r.View(1)
	b := r.View(1)
	if a.MeanAbsDiff(b) != 0 {
		t.Fatal("View not deterministic")
	}
}

func TestViewsHaveTexture(t *testing.T) {
	r := newTestRig(3)
	for i := 0; i < r.Cameras; i++ {
		v := r.View(i)
		min, max := v.MinMax()
		if max-min < 0.1 {
			t.Fatalf("camera %d view nearly flat: [%v, %v]", i, min, max)
		}
	}
}

func TestAdjacentViewsOverlap(t *testing.T) {
	// With 75% overlap, shifting view i by PanSpacing should roughly match
	// view i+2 (same lateral position, pure pan).
	r := newTestRig(4)
	v0 := r.View(0)
	v2 := r.View(2)
	shift := int(2 * r.PanSpacing)
	var diff float64
	var n int
	for y := 0; y < r.ViewH; y++ {
		for x := 0; x < r.ViewW-shift; x++ {
			d := math.Abs(float64(v0.At(x+shift, y) - v2.At(x, y)))
			diff += d
			n++
		}
	}
	if avg := diff / float64(n); avg > 0.02 {
		t.Fatalf("pan-shifted views differ by %v on average — overlap geometry broken", avg)
	}
}

func TestPairEpipolarGeometry(t *testing.T) {
	// For every pixel, left(x) should match right(x − d) with d from the
	// ground-truth disparity, up to occlusion boundaries.
	r := newTestRig(5)
	left, right, gt := r.Pair(0)
	var diff float64
	var n int
	for y := 2; y < r.ViewH-2; y++ {
		for x := 30; x < r.ViewW-2; x++ {
			d := float64(gt.At(x, y))
			xr := float64(x) - d
			if xr < 0 {
				continue
			}
			diff += math.Abs(float64(left.At(x, y)) - float64(img.SampleBilinear(right, xr, float64(y))))
			n++
		}
	}
	if avg := diff / float64(n); avg > 0.05 {
		t.Fatalf("epipolar reprojection error %v — disparity ground truth inconsistent", avg)
	}
}

func TestPairRequiresEvenIndex(t *testing.T) {
	r := newTestRig(6)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Pair(1)
}

func TestGTDisparityWithinBounds(t *testing.T) {
	r := newTestRig(7)
	_, _, gt := r.Pair(2)
	maxD := float32(r.MaxDisparity())
	min, max := gt.MinMax()
	if min <= 0 {
		t.Fatalf("disparity min %v must be positive (background has finite depth)", min)
	}
	if max > maxD {
		t.Fatalf("disparity max %v exceeds MaxDisparity %v", max, maxD)
	}
	// Background disparity = baseline·focal/maxDepth = 3·64/64 = 3.
	if math.Abs(float64(min)-3) > 0.5 {
		t.Fatalf("background disparity %v, want ~3", min)
	}
}

func TestGTDisparityHasDepthVariation(t *testing.T) {
	r := newTestRig(8)
	_, _, gt := r.Pair(0)
	min, max := gt.MinMax()
	if max-min < 1 {
		t.Fatalf("scene has no depth variation in pair 0: [%v, %v] — objects missing?", min, max)
	}
}

func TestRawPairDiffersByPan(t *testing.T) {
	r := newTestRig(9)
	a, b := r.RawPair(0)
	if a.MeanAbsDiff(b) < 0.001 {
		t.Fatal("raw adjacent views are identical — pan missing")
	}
}

func TestPanoramaWidthAndReference(t *testing.T) {
	r := newTestRig(10)
	want := int(3*r.PanSpacing) + 128
	if r.PanoramaWidth() != want {
		t.Fatalf("PanoramaWidth = %d, want %d", r.PanoramaWidth(), want)
	}
	p := r.ReferencePanorama()
	if p.W != want || p.H != 64 {
		t.Fatalf("reference panorama %dx%d", p.W, p.H)
	}
	// The reference panorama's left edge equals camera 0's view where no
	// parallax objects differ (both rendered at camX=0, panX=0).
	v0 := r.View(0)
	var diff float64
	for y := 0; y < 64; y++ {
		for x := 0; x < 128; x++ {
			diff += math.Abs(float64(p.At(x, y) - v0.At(x, y)))
		}
	}
	if avg := diff / (64 * 128); avg > 1e-6 {
		t.Fatalf("panorama left edge differs from camera 0 view by %v", avg)
	}
}

func TestCameraIndexBounds(t *testing.T) {
	r := newTestRig(11)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.View(4)
}

func TestMaxDisparityHeadroom(t *testing.T) {
	r := newTestRig(12)
	// Max disparity is baseline·focal/minSampledDepth + 1 headroom: above
	// the background's 3 px, at most the theoretical 3·64/8 + 1 = 25.
	got := r.MaxDisparity()
	if got <= 3 || got > 25 {
		t.Fatalf("MaxDisparity = %d, want in (3, 25]", got)
	}
	// And it must indeed bound the ground truth of every pair.
	for i := 0; i < r.Cameras; i += 2 {
		_, _, gt := r.Pair(i)
		if _, max := gt.MinMax(); max > float32(got) {
			t.Fatalf("pair %d disparity %v exceeds MaxDisparity %d", i, max, got)
		}
	}
}

func TestSceneInvalidDepthsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewScene(rand.New(rand.NewSource(1)), SceneConfig{MinDepth: 5, MaxDepth: 5})
}

func BenchmarkRenderView(b *testing.B) {
	r := newTestRig(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.View(1)
	}
}
