// Package rig generates the synthetic multi-camera workload that replaces
// the paper's 16×4K VR camera rig: a layered world scene with known depth
// per layer, rendered from a row of cameras whose views (a) pan across the
// world to tile a panorama and (b) alternate between two lateral positions
// one stereo baseline apart, so adjacent cameras form rectified stereo
// pairs with exact ground-truth disparity — the planar equivalent of a
// Google Jump-style ring of paired cameras.
package rig

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"camsim/internal/img"
	"camsim/internal/synth"
)

// Layer is one depth plane of the world: either the background plane or a
// textured elliptical object.
type Layer struct {
	Depth      float64 // world depth; parallax shift = FocalPx·camX/Depth
	CX, CY     float64 // object centre in world coordinates (pixels)
	RX, RY     float64 // object radii
	Tone       float32 // base intensity
	TexAmp     float32 // texture modulation amplitude
	TexFreq    float64 // texture frequency
	TexSeed    uint32
	Background bool // background layers ignore CX/CY/RX/RY and fill everything
}

// Scene is a stack of layers ordered far to near.
type Scene struct {
	Layers  []Layer // sorted by decreasing depth (far first)
	FocalPx float64 // focal length in pixels: disparity = FocalPx·baseline/depth
	WorldH  float64 // world height in pixels
}

// SceneConfig parameterizes NewScene.
type SceneConfig struct {
	Objects  int     // number of foreground objects
	WorldW   float64 // world extent in pixels that objects are spread over
	WorldH   float64
	MinDepth float64 // nearest object depth
	MaxDepth float64 // background depth
	FocalPx  float64
}

// DefaultSceneConfig covers a panorama of total width worldW. With
// FocalPx 64 and depths in [8, 64], a baseline b yields disparities in
// [b, 8b] pixels.
func DefaultSceneConfig(worldW, worldH float64, objects int) SceneConfig {
	return SceneConfig{
		Objects:  objects,
		WorldW:   worldW,
		WorldH:   worldH,
		MinDepth: 8,
		MaxDepth: 64,
		FocalPx:  64,
	}
}

// NewScene builds a random layered scene.
func NewScene(rng *rand.Rand, cfg SceneConfig) *Scene {
	if cfg.MinDepth <= 0 || cfg.MaxDepth <= cfg.MinDepth {
		panic(fmt.Sprintf("rig: invalid depth range [%v, %v]", cfg.MinDepth, cfg.MaxDepth))
	}
	s := &Scene{FocalPx: cfg.FocalPx, WorldH: cfg.WorldH}
	s.Layers = append(s.Layers, Layer{
		Depth: cfg.MaxDepth, Tone: 0.45, TexAmp: 0.25,
		TexFreq: 3, TexSeed: rng.Uint32(), Background: true,
	})
	for i := 0; i < cfg.Objects; i++ {
		depth := cfg.MinDepth + rng.Float64()*(cfg.MaxDepth*0.7-cfg.MinDepth)
		s.Layers = append(s.Layers, Layer{
			Depth:   depth,
			CX:      rng.Float64() * cfg.WorldW,
			CY:      cfg.WorldH * (0.15 + 0.7*rng.Float64()),
			RX:      cfg.WorldH * (0.06 + 0.18*rng.Float64()),
			RY:      cfg.WorldH * (0.06 + 0.18*rng.Float64()),
			Tone:    0.2 + 0.6*rng.Float32(),
			TexAmp:  0.15 + 0.2*rng.Float32(),
			TexFreq: 4 + 8*rng.Float64(),
			TexSeed: rng.Uint32(),
		})
	}
	// Far to near so the painter's algorithm is a simple forward pass.
	sort.SliceStable(s.Layers, func(a, b int) bool { return s.Layers[a].Depth > s.Layers[b].Depth })
	return s
}

// layerShade returns the layer's texture intensity at world position (wx, wy).
func layerShade(l *Layer, wx, wy float64) float32 {
	t := synth.FractalNoise(wx/97.3, wy/97.3, l.TexFreq, 3, l.TexSeed)
	return l.Tone + l.TexAmp*(t-0.5)*2
}

// topLayerAt returns the index of the topmost (nearest) layer covering view
// pixel (x, y) for a camera with pan offset panX and lateral position camX.
// Layers are far-to-near, so the last hit wins.
func (s *Scene) topLayerAt(panX, camX float64, x, y int) int {
	top := 0 // background always covers
	for li := 1; li < len(s.Layers); li++ {
		l := &s.Layers[li]
		shift := panX + camX*s.FocalPx/l.Depth
		dx := (float64(x) + shift - l.CX) / l.RX
		dy := (float64(y) - l.CY) / l.RY
		if dx*dx+dy*dy <= 1 {
			top = li
		}
	}
	return top
}

// Render draws the w×h view with pan offset panX (pure rotation analogue:
// shifts every layer equally) and lateral camera position camX (parallax:
// near layers shift more).
func (s *Scene) Render(panX, camX float64, w, h int) *img.Gray {
	out := img.NewGray(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			li := s.topLayerAt(panX, camX, x, y)
			l := &s.Layers[li]
			shift := panX + camX*s.FocalPx/l.Depth
			out.Pix[y*w+x] = clamp01(layerShade(l, float64(x)+shift, float64(y)))
		}
	}
	return out
}

// GTDisparity returns the exact stereo disparity map d = baseline·FocalPx/depth
// evaluated in the view at (panX, camX) — the parallax between this camera
// and one displaced by +baseline with the same pan.
func (s *Scene) GTDisparity(panX, camX, baseline float64, w, h int) *img.Gray {
	out := img.NewGray(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			l := &s.Layers[s.topLayerAt(panX, camX, x, y)]
			out.Pix[y*w+x] = float32(baseline * s.FocalPx / l.Depth)
		}
	}
	return out
}

// MaxDisparity returns the largest possible disparity for a baseline.
func (s *Scene) MaxDisparity(baseline float64) float64 {
	minDepth := math.Inf(1)
	for _, l := range s.Layers {
		if l.Depth < minDepth {
			minDepth = l.Depth
		}
	}
	return baseline * s.FocalPx / minDepth
}

// Rig is a row of cameras over a shared scene. Camera i pans to
// panX = i·PanSpacing and sits at lateral position (i mod 2)·Baseline, so
// cameras (0,1), (2,3), … are stereo pairs sharing most of their view,
// while successive pans tile the panorama.
type Rig struct {
	Scene      *Scene
	Cameras    int
	PanSpacing float64 // pan offset between adjacent cameras
	Baseline   float64 // stereo baseline within a pair
	ViewW      int
	ViewH      int
}

// NewRig builds a rig of n cameras (n even, ≥ 2) with view size
// viewW×viewH, adjacent-view overlap fraction (0, 1), and stereo baseline
// in world units.
func NewRig(rng *rand.Rand, n, viewW, viewH int, overlap, baseline float64) *Rig {
	if n < 2 || n%2 != 0 {
		panic(fmt.Sprintf("rig: camera count %d must be even and >= 2", n))
	}
	if overlap <= 0 || overlap >= 1 {
		panic(fmt.Sprintf("rig: overlap %v out of (0,1)", overlap))
	}
	if baseline <= 0 {
		panic("rig: baseline must be positive")
	}
	spacing := float64(viewW) * (1 - overlap)
	worldW := float64(n)*spacing + float64(viewW)*2
	cfg := DefaultSceneConfig(worldW, float64(viewH), 3*n)
	return &Rig{
		Scene:      NewScene(rng, cfg),
		Cameras:    n,
		PanSpacing: spacing,
		Baseline:   baseline,
		ViewW:      viewW,
		ViewH:      viewH,
	}
}

// PanX returns camera i's pan offset; CamX its lateral position.
func (r *Rig) PanX(i int) float64 { return float64(i) * r.PanSpacing }

// CamX returns camera i's lateral (baseline) position.
func (r *Rig) CamX(i int) float64 { return float64(i%2) * r.Baseline }

// View renders camera i's frame.
func (r *Rig) View(i int) *img.Gray {
	r.checkCam(i)
	return r.Scene.Render(r.PanX(i), r.CamX(i), r.ViewW, r.ViewH)
}

// Pair returns the stereo pair formed by cameras i and i+1 for even i,
// rectified to a common pan (the right view is rendered at the left
// camera's pan, as the alignment block would produce), plus the exact
// ground-truth disparity of the left view.
func (r *Rig) Pair(i int) (left, right, gt *img.Gray) {
	r.checkCam(i)
	r.checkCam(i + 1)
	if i%2 != 0 {
		panic(fmt.Sprintf("rig: stereo pairs start at even cameras, got %d", i))
	}
	left = r.View(i)
	right = r.Scene.Render(r.PanX(i), r.Baseline, r.ViewW, r.ViewH)
	gt = r.Scene.GTDisparity(r.PanX(i), 0, r.Baseline, r.ViewW, r.ViewH)
	return left, right, gt
}

// RawPair returns the unrectified adjacent views (i, i+1) — what the
// alignment block (B2) receives, differing by PanSpacing plus parallax.
func (r *Rig) RawPair(i int) (*img.Gray, *img.Gray) {
	r.checkCam(i)
	r.checkCam(i + 1)
	return r.View(i), r.View(i + 1)
}

// MaxDisparity returns the rig's largest pairwise disparity, rounded up
// with one pixel of headroom.
func (r *Rig) MaxDisparity() int {
	return int(math.Ceil(r.Scene.MaxDisparity(r.Baseline))) + 1
}

// PanoramaWidth returns the width of the full stitched panorama.
func (r *Rig) PanoramaWidth() int {
	return int(float64(r.Cameras-1)*r.PanSpacing) + r.ViewW
}

// ReferencePanorama renders the ground-truth panorama: the scene viewed
// from the pair-left lateral position with the full panoramic width (what
// an ideal parallax-compensated stitch reconstructs).
func (r *Rig) ReferencePanorama() *img.Gray {
	return r.Scene.Render(0, 0, r.PanoramaWidth(), r.ViewH)
}

func (r *Rig) checkCam(i int) {
	if i < 0 || i >= r.Cameras {
		panic(fmt.Sprintf("rig: camera %d out of range [0,%d)", i, r.Cameras))
	}
}

func clamp01(v float32) float32 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
