package energy

import (
	"strings"
	"testing"
)

func TestVJAccelDetectEnergyComposition(t *testing.T) {
	v := DefaultVJAccel()
	e := v.DetectEnergy(1000, 500)
	want := Energy(1000)*v.PerPixel + Energy(500)*v.PerFeature
	if e != want {
		t.Fatalf("DetectEnergy = %v, want %v", e, want)
	}
	if v.DetectEnergy(0, 0) != 0 {
		t.Fatal("zero work should cost zero")
	}
}

func TestMCUDetectEnergyAboveASIC(t *testing.T) {
	// The software VJ baseline must cost orders of magnitude more than the
	// fixed-function accelerator for the same work — the premise of the
	// pre-filter accelerator.
	m := DefaultMCU()
	v := DefaultVJAccel()
	pixels, features := 160*120, int64(60000)
	sw := m.MCUDetectEnergy(pixels, features)
	hw := v.DetectEnergy(pixels, features)
	if float64(sw)/float64(hw) < 20 {
		t.Fatalf("software VJ (%v) only %.1fx the ASIC (%v)", sw, float64(sw)/float64(hw), hw)
	}
}

func TestStreamAccelCheaperThanMCUPixelOps(t *testing.T) {
	s := DefaultStreamAccel()
	m := DefaultMCU()
	pixels := 160 * 120
	hw := Energy(pixels) * s.MotionPerPixel
	sw := m.PixelOpEnergy(2 * pixels)
	if hw >= sw {
		t.Fatalf("streaming motion engine (%v) not cheaper than software (%v)", hw, sw)
	}
	if s.ScalePerPixel <= 0 || s.MotionPerPixel <= 0 {
		t.Fatal("stream accel energies must be positive")
	}
}

func TestEnergyStringNegativeValues(t *testing.T) {
	if got := (-3 * Nanojoule).String(); !strings.Contains(got, "nJ") || !strings.Contains(got, "-") {
		t.Fatalf("negative energy formatted as %q", got)
	}
	if got := (-2 * Watt).String(); !strings.Contains(got, "W") {
		t.Fatalf("negative power formatted as %q", got)
	}
}

func TestPowerStringLargeAndTiny(t *testing.T) {
	if got := (5 * Watt).String(); !strings.HasSuffix(got, " W") {
		t.Fatalf("got %q", got)
	}
	if got := (3 * Nanowatt).String(); !strings.Contains(got, "nW") {
		t.Fatalf("got %q", got)
	}
}

func TestEnergyStringJouleRange(t *testing.T) {
	if got := (1.5 * Joule).String(); !strings.HasSuffix(got, " J") || strings.Contains(got, "m") {
		t.Fatalf("got %q", got)
	}
}

func TestActiveRadioThroughputFaster(t *testing.T) {
	// The active radio trades energy for throughput: more J/bit but more
	// bits/s than backscatter.
	b, a := BackscatterRadio(), ActiveRadio()
	if a.ThroughputBps <= b.ThroughputBps {
		t.Fatal("active radio should be faster than backscatter")
	}
	// Airtime for one QVGA frame on backscatter is substantial — this is
	// why WISPCam ships at ~1 frame/minute-scale rates.
	if secs := b.TransmitSeconds(160 * 120); secs < 0.1 {
		t.Fatalf("backscatter QVGA airtime %v implausibly fast", secs)
	}
}

func TestHarvesterRechargeTime(t *testing.T) {
	h := DefaultHarvester()
	e := h.UsableEnergy()
	secs := h.RechargeSeconds(e)
	want := float64(e) / float64(h.HarvestPower)
	if secs != want {
		t.Fatalf("RechargeSeconds = %v, want %v", secs, want)
	}
	if secs < 60 {
		t.Fatalf("full 6 mF recharge in %v s implausible at 200 µW", secs)
	}
}

func TestSensorString(t *testing.T) {
	if s := DefaultSensor().String(); !strings.Contains(s, "sensor(") {
		t.Fatalf("got %q", s)
	}
}
