package energy

// Per-frame cost helpers: the plain-float form of the device models that
// higher layers (internal/fleet) charge per simulated frame. The typed
// Energy/Power API stays the analysis surface; these helpers are the
// bridge into simulators that account in raw float64 joules.

// TxFixedJ returns the radio's per-transmission fixed cost
// (synchronization, preamble) in joules.
func (r RadioModel) TxFixedJ() float64 { return float64(r.WakeOverhead) }

// TxPerByteJ returns the radio's marginal transmit cost per payload byte
// in joules.
func (r RadioModel) TxPerByteJ() float64 { return float64(r.EnergyPerBit) * 8 }

// FrameEnergy returns the expected joules per captured frame of a camera
// that pays captureJ to capture and computeJ to process every frame, and —
// for the offloadProb fraction of frames that ship — txFixedJ plus
// txPerByteJ for each of the payload's bytes. This is the steady-state
// per-frame model the fleet simulator charges and the placement
// controllers score.
func FrameEnergy(captureJ, computeJ, txFixedJ, txPerByteJ float64, bytes int64, offloadProb float64) float64 {
	return captureJ + computeJ + offloadProb*(txFixedJ+txPerByteJ*float64(bytes))
}

// ForwardPerByteJ is a per-byte energy model for network equipment
// forwarding a payload one hop (switch fabric plus line drivers). The
// default is a wired-aggregation figure, 2 nJ/bit — 16 nJ per byte;
// radio backhauls cost more. Tier trees attach a per-link value
// (fleet.Tier.TxPerByteJ), so a placement's energy score grows with
// every hop its bytes cross.
const ForwardPerByteJ = 2e-9 * 8
