package energy

import "fmt"

// RadioModel is a transmit-side communication model: energy per bit and
// sustained uplink throughput. The FA case study's offload-vs-onload
// tradeoff (E7) compares shipping raw frames against local processing.
type RadioModel struct {
	Name          string
	EnergyPerBit  Energy
	ThroughputBps float64
	WakeOverhead  Energy // per-transmission fixed cost (synchronization, preamble)
}

// BackscatterRadio models the WISPCam's EPC Gen2 backscatter uplink:
// extremely cheap per bit (the tag only modulates reflection) but slow.
// The effective energy/bit includes protocol overhead and the logic that
// drives the modulator.
func BackscatterRadio() RadioModel {
	return RadioModel{
		Name:          "backscatter",
		EnergyPerBit:  60 * Picojoule,
		ThroughputBps: 256e3,
		WakeOverhead:  2 * Microjoule,
	}
}

// ActiveRadio models a low-power active transmitter (BLE-class) as the
// non-harvested alternative.
func ActiveRadio() RadioModel {
	return RadioModel{
		Name:          "active",
		EnergyPerBit:  12 * Nanojoule,
		ThroughputBps: 1e6,
		WakeOverhead:  15 * Microjoule,
	}
}

// WiFiRadio models an embedded 802.11n-class module: the mains- or
// battery-powered uplink of a fleet camera. Far more energy per bit than
// backscatter, but with the sustained throughput the VR-class payloads
// need.
func WiFiRadio() RadioModel {
	return RadioModel{
		Name:          "wifi",
		EnergyPerBit:  5 * Nanojoule,
		ThroughputBps: 54e6,
		WakeOverhead:  100 * Microjoule,
	}
}

// TransmitEnergy returns the energy to ship the given payload.
func (r RadioModel) TransmitEnergy(bytes int64) Energy {
	return r.WakeOverhead + Energy(float64(bytes*8))*r.EnergyPerBit
}

// TransmitSeconds returns the airtime for the given payload.
func (r RadioModel) TransmitSeconds(bytes int64) float64 {
	if r.ThroughputBps <= 0 {
		return 0
	}
	return float64(bytes*8) / r.ThroughputBps
}

// Harvester models the RF energy supply of a battery-free camera: a
// rectenna charging a storage capacitor from a reader's field.
type Harvester struct {
	HarvestPower Power   // average rectified power at the deployment distance
	CapFarads    float64 // storage capacitor
	VMax, VMin   float64 // usable voltage window on the capacitor
}

// DefaultHarvester returns a WISPCam-class supply: ~200 µW harvested a few
// meters from an RFID reader into a 6 mF capacitor used from 5.5 V down
// to 2.4 V.
func DefaultHarvester() Harvester {
	return Harvester{HarvestPower: 200 * Microwatt, CapFarads: 6e-3, VMax: 5.5, VMin: 2.4}
}

// UsableEnergy returns the energy available per full capacitor discharge:
// ½C(Vmax² − Vmin²).
func (h Harvester) UsableEnergy() Energy {
	return Energy(0.5 * h.CapFarads * (h.VMax*h.VMax - h.VMin*h.VMin))
}

// RechargeSeconds returns the time to recharge after consuming e.
func (h Harvester) RechargeSeconds(e Energy) float64 {
	if h.HarvestPower <= 0 {
		return 0
	}
	return float64(e) / float64(h.HarvestPower)
}

// SustainableFPS returns the steady-state frame rate supportable when each
// frame costs perFrame: the harvest power divided by the per-frame energy.
func (h Harvester) SustainableFPS(perFrame Energy) float64 {
	if perFrame <= 0 {
		return 0
	}
	return float64(h.HarvestPower) / float64(perFrame)
}

// CanSustain reports whether the harvester supports the target frame rate,
// and the power margin (positive means headroom).
func (h Harvester) CanSustain(perFrame Energy, fps float64) (bool, Power) {
	need := Power(float64(perFrame) * fps)
	margin := h.HarvestPower - need
	return margin >= 0, margin
}

// SensorModel is the image-sensor capture cost, charged per frame in every
// pipeline configuration.
type SensorModel struct {
	EnergyPerPixel Energy
	FixedPerFrame  Energy
}

// DefaultSensor returns an ultra-low-power QVGA-class sensor model:
// ~120 pJ/pixel plus ADC and readout overhead.
func DefaultSensor() SensorModel {
	return SensorModel{EnergyPerPixel: 120 * Picojoule, FixedPerFrame: 1 * Microjoule}
}

// CaptureEnergy returns the cost of capturing one w×h frame.
func (s SensorModel) CaptureEnergy(w, h int) Energy {
	return s.FixedPerFrame + Energy(float64(w*h))*s.EnergyPerPixel
}

func (s SensorModel) String() string {
	return fmt.Sprintf("sensor(%v/px + %v/frame)", s.EnergyPerPixel, s.FixedPerFrame)
}
