package energy

import "fmt"

// ASICEvents is the per-event energy table of the accelerator datapath at
// a given bit width, 28 nm, 0.9 V, 30 MHz — the paper's design point.
// The cycle-level simulator in internal/snnap multiplies these by exact
// event counts.
type ASICEvents struct {
	Bits int

	MAC        Energy // one multiply-accumulate in a PE
	WeightRead Energy // one weight fetched from the PE's local SRAM
	FIFO       Energy // one operand moved through the input/acc/sig FIFOs
	Sigmoid    Energy // one LUT activation lookup
	SeqCycle   Energy // sequencer + bus scheduler energy per active cycle
	ClockPE    Energy // clock tree + pipeline registers, per PE per cycle
	// (charged to idle PEs too — the cost of over-provisioning)

	LeakPerPE Power // per-PE leakage while powered
	LeakBase  Power // PU-level leakage (SRAM periphery, sequencer, DMA)
}

// asicTable holds the calibrated event energies. Sources for the 8-bit
// anchors: integer MAC and SRAM-read energies in the 28/45 nm range follow
// Horowitz (ISSCC'14) scaled to 28 nm/0.9 V; the 16-bit and 4-bit entries
// are scaled so that a full 8-PE 400-8-1 inference reproduces the paper's
// reported ratios (−41 % power from 16→8 bit; >1 % accuracy loss but only
// modest energy gain at 4-bit).
var asicTable = map[int]ASICEvents{
	4: {
		Bits: 4, MAC: 0.09 * Picojoule, WeightRead: 0.70 * Picojoule,
		FIFO: 0.10 * Picojoule, Sigmoid: 0.40 * Picojoule, SeqCycle: 0.30 * Picojoule,
		ClockPE:   0.03 * Picojoule,
		LeakPerPE: 1.2 * Microwatt, LeakBase: 4 * Microwatt,
	},
	8: {
		Bits: 8, MAC: 0.22 * Picojoule, WeightRead: 1.10 * Picojoule,
		FIFO: 0.18 * Picojoule, Sigmoid: 0.50 * Picojoule, SeqCycle: 0.30 * Picojoule,
		ClockPE:   0.05 * Picojoule,
		LeakPerPE: 2.0 * Microwatt, LeakBase: 5 * Microwatt,
	},
	16: {
		Bits: 16, MAC: 0.55 * Picojoule, WeightRead: 1.70 * Picojoule,
		FIFO: 0.34 * Picojoule, Sigmoid: 0.70 * Picojoule, SeqCycle: 0.35 * Picojoule,
		ClockPE:   0.09 * Picojoule,
		LeakPerPE: 3.6 * Microwatt, LeakBase: 6 * Microwatt,
	},
}

// ASICEventsFor returns the event-energy table for a datapath width.
// Supported widths are 4, 8 and 16 bits (the paper's sweep).
func ASICEventsFor(bits int) (ASICEvents, error) {
	t, ok := asicTable[bits]
	if !ok {
		return ASICEvents{}, fmt.Errorf("energy: no ASIC model for %d-bit datapath (have 4, 8, 16)", bits)
	}
	return t, nil
}

// MustASICEventsFor is ASICEventsFor for known-good widths.
func MustASICEventsFor(bits int) ASICEvents {
	t, err := ASICEventsFor(bits)
	if err != nil {
		panic(err)
	}
	return t
}

// MCUModel is the general-purpose low-power microprocessor baseline the
// paper compares the accelerator against: a Cortex-M-class core running
// the same NN in software. Energy per cycle covers core + flash/SRAM.
type MCUModel struct {
	FreqHz         float64
	EnergyPerCycle Energy
	CyclesPerMAC   float64 // software fixed-point multiply-accumulate
	CyclesPerSig   float64 // software sigmoid (LUT + interpolation)
	IdlePower      Power   // retained-state sleep power
}

// DefaultMCU returns a Cortex-M0+-class model at 28 nm-equivalent
// efficiency: ~11 pJ/cycle active at 0.9 V, 4 cycles per 8-bit MAC
// (two loads, multiply, accumulate), 40 cycles per activation.
func DefaultMCU() MCUModel {
	return MCUModel{
		FreqHz:         30e6,
		EnergyPerCycle: 11 * Picojoule,
		CyclesPerMAC:   4,
		CyclesPerSig:   40,
		IdlePower:      1.5 * Microwatt,
	}
}

// InferenceEnergy returns energy and latency for running a network with
// the given MAC and activation counts in software.
func (m MCUModel) InferenceEnergy(macs, sigmoids int) (Energy, float64) {
	cycles := float64(macs)*m.CyclesPerMAC + float64(sigmoids)*m.CyclesPerSig
	e := Energy(cycles) * m.EnergyPerCycle
	return e, cycles / m.FreqHz
}

// PixelOpEnergy returns the software cost of simple per-pixel work
// (differencing, thresholding): roughly 3 cycles per pixel.
func (m MCUModel) PixelOpEnergy(pixels int) Energy {
	return Energy(float64(pixels)*3) * m.EnergyPerCycle
}

// VJAccelModel is the fixed-function Viola-Jones pre-filter accelerator
// (§III-B): an integral-image engine plus a feature evaluator. Costs are
// charged per integral-image pixel and per Haar feature evaluated
// (≈8 SRAM reads plus compare-accumulate per feature at 28 nm).
type VJAccelModel struct {
	PerPixel   Energy // integral-image construction, per pixel
	PerFeature Energy // one Haar feature evaluation
}

// DefaultVJAccel returns the calibrated pre-filter accelerator model.
func DefaultVJAccel() VJAccelModel {
	return VJAccelModel{PerPixel: 1.0 * Picojoule, PerFeature: 10 * Picojoule}
}

// DetectEnergy returns the cost of a detection pass that built integral
// images over `pixels` pixels and evaluated `features` Haar features.
func (v VJAccelModel) DetectEnergy(pixels int, features int64) Energy {
	return Energy(float64(pixels))*v.PerPixel + Energy(features)*v.PerFeature
}

// MCUDetectEnergy is the software baseline for the same work: ~12 cycles
// per integral pixel (two passes with adds) and ~40 cycles per feature.
func (m MCUModel) MCUDetectEnergy(pixels int, features int64) Energy {
	cycles := float64(pixels)*12 + float64(features)*40
	return Energy(cycles) * m.EnergyPerCycle
}

// StreamAccelModel covers the cheap streaming blocks integrated at the
// sensor interface (§III: accelerators "integrated on-chip with the camera
// sensor and processed streaming through the CSI2 interface"): a
// frame-difference motion engine and a window scaler.
type StreamAccelModel struct {
	MotionPerPixel Energy // compare + background update per pixel
	ScalePerPixel  Energy // bilinear scaling per source pixel
}

// DefaultStreamAccel returns the calibrated streaming-block energies.
func DefaultStreamAccel() StreamAccelModel {
	return StreamAccelModel{MotionPerPixel: 0.05 * Picojoule, ScalePerPixel: 0.2 * Picojoule}
}
