package energy

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestEnergyStringPrefixes(t *testing.T) {
	cases := []struct {
		e    Energy
		want string
	}{
		{0, "0 J"},
		{3 * Picojoule, "pJ"},
		{42 * Nanojoule, "nJ"},
		{1.5 * Microjoule, "µJ"},
		{900 * Millijoule, "mJ"},
		{2 * Joule, "J"},
	}
	for _, c := range cases {
		if got := c.e.String(); !strings.Contains(got, c.want) {
			t.Errorf("%v.String() = %q, want suffix %q", float64(c.e), got, c.want)
		}
	}
}

func TestPowerStringPrefixes(t *testing.T) {
	if got := (320 * Milliwatt).String(); !strings.Contains(got, "mW") {
		t.Errorf("got %q", got)
	}
	if got := (200 * Microwatt).String(); !strings.Contains(got, "µW") {
		t.Errorf("got %q", got)
	}
	if got := Power(0).String(); got != "0 W" {
		t.Errorf("got %q", got)
	}
}

func TestPowerEnergyConversions(t *testing.T) {
	p := 2 * Milliwatt
	e := p.Over(3) // 6 mJ
	if math.Abs(float64(e)-6e-3) > 1e-12 {
		t.Fatalf("Over = %v", e)
	}
	back := e.Average(3)
	if math.Abs(float64(back-p)) > 1e-15 {
		t.Fatalf("Average = %v", back)
	}
	if e.Average(0) != 0 {
		t.Fatal("Average over zero time should be 0")
	}
}

func TestPowerEnergyRoundTripProperty(t *testing.T) {
	f := func(pw float64, secs float64) bool {
		if math.IsNaN(pw) || math.IsInf(pw, 0) || math.Abs(pw) > 1e6 {
			return true
		}
		s := math.Abs(secs)
		if s < 1e-9 || s > 1e6 || math.IsNaN(s) {
			return true
		}
		p := Power(pw)
		back := p.Over(s).Average(s)
		return math.Abs(float64(back-p)) <= 1e-9*math.Max(1, math.Abs(pw))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestASICEventsForSupportedWidths(t *testing.T) {
	for _, bits := range []int{4, 8, 16} {
		ev, err := ASICEventsFor(bits)
		if err != nil {
			t.Fatalf("width %d: %v", bits, err)
		}
		if ev.Bits != bits {
			t.Fatalf("Bits = %d", ev.Bits)
		}
		if ev.MAC <= 0 || ev.WeightRead <= 0 || ev.LeakPerPE <= 0 {
			t.Fatalf("width %d: non-positive energies %+v", bits, ev)
		}
	}
	if _, err := ASICEventsFor(12); err == nil {
		t.Fatal("accepted unsupported width 12")
	}
}

func TestASICEnergiesMonotoneInWidth(t *testing.T) {
	e4 := MustASICEventsFor(4)
	e8 := MustASICEventsFor(8)
	e16 := MustASICEventsFor(16)
	if !(e4.MAC < e8.MAC && e8.MAC < e16.MAC) {
		t.Fatal("MAC energy not monotone in bit width")
	}
	if !(e4.WeightRead < e8.WeightRead && e8.WeightRead < e16.WeightRead) {
		t.Fatal("SRAM energy not monotone in bit width")
	}
	if !(e4.LeakPerPE < e8.LeakPerPE && e8.LeakPerPE < e16.LeakPerPE) {
		t.Fatal("leakage not monotone in bit width")
	}
}

func TestMustASICEventsForPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustASICEventsFor(5)
}

func TestMCUInferenceEnergy(t *testing.T) {
	m := DefaultMCU()
	e, lat := m.InferenceEnergy(3217, 9)
	wantCycles := 3217*4 + 9*40.0
	wantE := Energy(wantCycles) * m.EnergyPerCycle
	if math.Abs(float64(e-wantE)) > 1e-18 {
		t.Fatalf("energy %v, want %v", e, wantE)
	}
	if math.Abs(lat-wantCycles/30e6) > 1e-12 {
		t.Fatalf("latency %v", lat)
	}
	// Sanity: a 400-8-1 inference on the MCU should be in the ~0.1 µJ
	// range, orders of magnitude above the accelerator's nanojoules.
	if e < 50*Nanojoule || e > 10*Microjoule {
		t.Fatalf("MCU inference energy %v outside plausible range", e)
	}
}

func TestMCUPixelOpEnergyScales(t *testing.T) {
	m := DefaultMCU()
	if m.PixelOpEnergy(200) != 2*m.PixelOpEnergy(100) {
		t.Fatal("pixel-op energy not linear in pixels")
	}
}

func TestRadioTransmitEnergy(t *testing.T) {
	r := BackscatterRadio()
	e1 := r.TransmitEnergy(1000)
	e2 := r.TransmitEnergy(2000)
	// Affine in bytes: doubling payload less than doubles total (overhead).
	if !(e2 > e1 && e2 < 2*e1+r.WakeOverhead) {
		t.Fatalf("transmit energies %v, %v", e1, e2)
	}
	marginal := float64(e2-e1) / (1000 * 8)
	if math.Abs(marginal-float64(r.EnergyPerBit)) > 1e-18 {
		t.Fatalf("marginal energy/bit %v, want %v", marginal, float64(r.EnergyPerBit))
	}
}

func TestBackscatterCheaperPerBitThanActive(t *testing.T) {
	if BackscatterRadio().EnergyPerBit >= ActiveRadio().EnergyPerBit {
		t.Fatal("backscatter must be cheaper per bit than an active radio")
	}
}

func TestTransmitSeconds(t *testing.T) {
	r := RadioModel{ThroughputBps: 1e6}
	if s := r.TransmitSeconds(125000); math.Abs(s-1) > 1e-12 {
		t.Fatalf("1 Mb at 1 Mbps = %v s", s)
	}
	r.ThroughputBps = 0
	if r.TransmitSeconds(100) != 0 {
		t.Fatal("zero-throughput radio should report 0 airtime")
	}
}

func TestHarvesterUsableEnergy(t *testing.T) {
	h := Harvester{HarvestPower: 100 * Microwatt, CapFarads: 1e-3, VMax: 3, VMin: 1}
	want := 0.5 * 1e-3 * (9 - 1)
	if math.Abs(float64(h.UsableEnergy())-want) > 1e-15 {
		t.Fatalf("UsableEnergy = %v, want %v", h.UsableEnergy(), want)
	}
}

func TestHarvesterSustainableFPS(t *testing.T) {
	h := DefaultHarvester()
	perFrame := 100 * Microjoule
	fps := h.SustainableFPS(perFrame)
	if math.Abs(fps-2) > 1e-9 { // 200 µW / 100 µJ = 2 FPS
		t.Fatalf("SustainableFPS = %v, want 2", fps)
	}
	ok, margin := h.CanSustain(perFrame, 1)
	if !ok || margin <= 0 {
		t.Fatalf("1 FPS should be sustainable with margin, got %v %v", ok, margin)
	}
	ok, _ = h.CanSustain(perFrame, 3)
	if ok {
		t.Fatal("3 FPS should exceed the harvest budget")
	}
}

func TestHarvesterDegenerate(t *testing.T) {
	var h Harvester
	if h.SustainableFPS(1*Microjoule) != 0 {
		t.Fatal("zero-power harvester should sustain 0 FPS")
	}
	if h.RechargeSeconds(1*Microjoule) != 0 {
		t.Fatal("zero-power harvester recharge must not divide by zero")
	}
	if DefaultHarvester().SustainableFPS(0) != 0 {
		t.Fatal("zero per-frame energy should return 0, not Inf")
	}
}

func TestSensorCaptureEnergy(t *testing.T) {
	s := DefaultSensor()
	e := s.CaptureEnergy(160, 120)
	want := s.FixedPerFrame + Energy(160*120)*s.EnergyPerPixel
	if e != want {
		t.Fatalf("CaptureEnergy = %v, want %v", e, want)
	}
	// QVGA-class capture should be a few µJ — small vs raw-frame radio.
	if e > 20*Microjoule {
		t.Fatalf("capture energy %v implausibly high", e)
	}
}

func TestOffloadVsOnloadShape(t *testing.T) {
	// The core tradeoff: transmitting a raw QVGA frame over backscatter
	// must cost much more energy than one accelerator NN inference
	// (nanojoules), and comparable to or more than MCU inference — this
	// is what motivates in-camera processing in the paper.
	r := BackscatterRadio()
	raw := r.TransmitEnergy(160 * 120)
	mcu, _ := DefaultMCU().InferenceEnergy(3217, 9)
	if raw < mcu {
		t.Fatalf("raw-frame offload %v cheaper than MCU inference %v — tradeoff inverted", raw, mcu)
	}
}
