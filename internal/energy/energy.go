// Package energy provides the energy and power models for the low-power
// face-authentication case study: per-event ASIC energies for the
// SNNAP-style accelerator (parameterized by datapath width), a
// general-purpose microcontroller baseline, radio transmit models
// (backscatter and active), and the RF energy-harvesting supply of a
// WISPCam-class battery-free camera.
//
// All absolute constants are *models*, calibrated to published
// 28 nm-class figures and to the paper's reported ratios (the 8-PE
// energy optimum and the 41 % power reduction from 16-bit to 8-bit);
// the simulator's event counts are exact.
package energy

import "fmt"

// Energy is an amount of energy in joules.
type Energy float64

// Convenience units.
const (
	Picojoule  Energy = 1e-12
	Nanojoule  Energy = 1e-9
	Microjoule Energy = 1e-6
	Millijoule Energy = 1e-3
	Joule      Energy = 1
)

// String formats the energy with an SI prefix.
func (e Energy) String() string {
	abs := e
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs == 0:
		return "0 J"
	case abs < Nanojoule:
		return fmt.Sprintf("%.3g pJ", float64(e/Picojoule))
	case abs < Microjoule:
		return fmt.Sprintf("%.3g nJ", float64(e/Nanojoule))
	case abs < Millijoule:
		return fmt.Sprintf("%.3g µJ", float64(e/Microjoule))
	case abs < Joule:
		return fmt.Sprintf("%.3g mJ", float64(e/Millijoule))
	}
	return fmt.Sprintf("%.3g J", float64(e))
}

// Power is a rate of energy use in watts.
type Power float64

// Convenience units.
const (
	Nanowatt  Power = 1e-9
	Microwatt Power = 1e-6
	Milliwatt Power = 1e-3
	Watt      Power = 1
)

// String formats the power with an SI prefix.
func (p Power) String() string {
	abs := p
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs == 0:
		return "0 W"
	case abs < Microwatt:
		return fmt.Sprintf("%.3g nW", float64(p/Nanowatt))
	case abs < Milliwatt:
		return fmt.Sprintf("%.3g µW", float64(p/Microwatt))
	case abs < Watt:
		return fmt.Sprintf("%.3g mW", float64(p/Milliwatt))
	}
	return fmt.Sprintf("%.3g W", float64(p))
}

// Over returns the energy consumed by drawing power p for d seconds.
func (p Power) Over(seconds float64) Energy { return Energy(float64(p) * seconds) }

// Average returns the average power of consuming e over d seconds.
func (e Energy) Average(seconds float64) Power {
	if seconds <= 0 {
		return 0
	}
	return Power(float64(e) / seconds)
}
