package energy

import (
	"math"
	"testing"
)

// The plain-float helpers must agree with the typed radio model they
// re-export: a transmission's fixed-plus-per-byte decomposition sums back
// to TransmitEnergy for every radio.
func TestTxCostMatchesTransmitEnergy(t *testing.T) {
	for _, r := range []RadioModel{BackscatterRadio(), ActiveRadio(), WiFiRadio()} {
		const bytes = 12345
		got := r.TxFixedJ() + r.TxPerByteJ()*bytes
		want := float64(r.TransmitEnergy(bytes))
		if math.Abs(got-want) > 1e-18 {
			t.Fatalf("%s: fixed+perByte %v != TransmitEnergy %v", r.Name, got, want)
		}
	}
}

func TestFrameEnergy(t *testing.T) {
	// Never offloading charges capture and compute only.
	if got := FrameEnergy(1e-3, 2e-3, 1, 1, 1000, 0); got != 3e-3 {
		t.Fatalf("onload-only frame energy %v", got)
	}
	// Always offloading charges the full transmit cost.
	want := 1e-3 + 2e-3 + (1e-4 + 5e-9*1000)
	if got := FrameEnergy(1e-3, 2e-3, 1e-4, 5e-9, 1000, 1); math.Abs(got-want) > 1e-18 {
		t.Fatalf("offload frame energy %v, want %v", got, want)
	}
	// A fractional offload probability scales only the transmit term.
	half := FrameEnergy(1e-3, 2e-3, 1e-4, 5e-9, 1000, 0.5)
	if math.Abs(half-(3e-3+0.5*(1e-4+5e-9*1000))) > 1e-18 {
		t.Fatalf("half-offload frame energy %v", half)
	}
	if ForwardPerByteJ <= 0 {
		t.Fatal("forwarding model must cost something")
	}
}
