package motion

import (
	"testing"

	"camsim/internal/img"
	"camsim/internal/synth"
)

func flat(w, h int, v float32) *img.Gray {
	g := img.NewGray(w, h)
	g.Fill(v)
	return g
}

func TestFirstFrameNoMotion(t *testing.T) {
	d := New(DefaultConfig())
	r := d.Step(flat(16, 16, 0.5))
	if r.Motion {
		t.Fatal("first frame must not report motion")
	}
	if d.Frames() != 1 {
		t.Fatalf("Frames = %d", d.Frames())
	}
}

func TestStaticSceneNoMotion(t *testing.T) {
	d := New(DefaultConfig())
	f := flat(32, 32, 0.4)
	d.Step(f)
	for i := 0; i < 5; i++ {
		if r := d.Step(f.Clone()); r.Motion {
			t.Fatalf("static frame %d reported motion (%+v)", i, r)
		}
	}
}

func TestIntrusionDetected(t *testing.T) {
	d := New(DefaultConfig())
	bg := flat(64, 64, 0.4)
	d.Step(bg)
	intruder := bg.Clone()
	img.FillRect(intruder, 20, 20, 16, 16, 0.9)
	r := d.Step(intruder)
	if !r.Motion {
		t.Fatalf("16x16 intrusion not detected: %+v", r)
	}
	if r.ChangedPixels < 200 {
		t.Fatalf("changed pixels %d implausibly low", r.ChangedPixels)
	}
}

func TestNoiseBelowThresholdIgnored(t *testing.T) {
	d := New(DefaultConfig())
	bg := flat(64, 64, 0.4)
	d.Step(bg)
	noisy := bg.Clone()
	for i := range noisy.Pix {
		if i%2 == 0 {
			noisy.Pix[i] += 0.04 // below the 0.10 threshold
		}
	}
	if r := d.Step(noisy); r.Motion {
		t.Fatalf("sub-threshold noise reported as motion: %+v", r)
	}
}

func TestBackgroundAdaptsToDrift(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Alpha = 0.2
	d := New(cfg)
	d.Step(flat(32, 32, 0.4))
	// Slow drift: +0.02 per frame stays under threshold and gets absorbed.
	v := float32(0.4)
	for i := 0; i < 20; i++ {
		v += 0.02
		if r := d.Step(flat(32, 32, v)); r.Motion {
			t.Fatalf("frame %d: slow drift flagged as motion (%+v)", i, r)
		}
	}
}

func TestFrozenBackgroundFlagsDrift(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Alpha = 0 // frame differencing against a frozen reference
	d := New(cfg)
	d.Step(flat(32, 32, 0.4))
	for i := 0; i < 20; i++ {
		d.Step(flat(32, 32, 0.4+0.02*float32(i)))
	}
	// After 20 frames of drift the cumulative change exceeds the threshold.
	if r := d.Step(flat(32, 32, 0.8)); !r.Motion {
		t.Fatalf("frozen background failed to flag large cumulative drift: %+v", r)
	}
}

func TestPanicsOnSizeChange(t *testing.T) {
	d := New(DefaultConfig())
	d.Step(flat(8, 8, 0))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Step(flat(9, 8, 0))
}

func TestPanicsOnBadConfig(t *testing.T) {
	for _, cfg := range []Config{
		{Threshold: 0, MinFraction: 0.1, Alpha: 0.1},
		{Threshold: 0.1, MinFraction: -1, Alpha: 0.1},
		{Threshold: 0.1, MinFraction: 0.1, Alpha: 2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("no panic for %+v", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestReset(t *testing.T) {
	d := New(DefaultConfig())
	d.Step(flat(8, 8, 0.2))
	d.Reset()
	if d.Frames() != 0 {
		t.Fatal("Reset did not clear frame count")
	}
	if r := d.Step(flat(8, 8, 0.9)); r.Motion {
		t.Fatal("first frame after reset must not report motion")
	}
}

func TestOnSecurityTraceFilterRateAndRecall(t *testing.T) {
	// On the synthetic security trace, the motion gate must pass nearly
	// all target-present frames (it sits in front of the authenticator)
	// while rejecting the majority of empty frames.
	cfg := synth.DefaultTraceConfig(400)
	cfg.VisitRate = 3
	tr := synth.NewTrace(12, cfg)
	d := New(DefaultConfig())
	var passed, total, targetFrames, targetPassed int
	for f := 0; f < cfg.Frames; f++ {
		frame, truth := tr.Frame(f)
		r := d.Step(frame)
		if f == 0 {
			continue
		}
		total++
		if r.Motion {
			passed++
		}
		if truth.TargetPresent {
			targetFrames++
			if r.Motion {
				targetPassed++
			}
		}
	}
	if targetFrames == 0 {
		t.Fatal("trace has no target frames")
	}
	if recall := float64(targetPassed) / float64(targetFrames); recall < 0.9 {
		t.Fatalf("motion gate recall on target frames %v, want >= 0.9", recall)
	}
	if filter := 1 - float64(passed)/float64(total); filter < 0.5 {
		t.Fatalf("motion gate only filters %.0f%% of frames, want >= 50%%", filter*100)
	}
}

func TestPixelOps(t *testing.T) {
	if PixelOps(160, 120) != 2*160*120 {
		t.Fatal("PixelOps model changed unexpectedly")
	}
}

func BenchmarkStepQVGA(b *testing.B) {
	d := New(DefaultConfig())
	f := flat(320, 240, 0.5)
	d.Step(f)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Step(f)
	}
}

// TestAblationAdaptiveVsFrozenBackground is the motion-detector design
// ablation from DESIGN.md §6: on a drifting-illumination trace, the
// adaptive background model must filter empty frames far better than a
// frozen first-frame reference while keeping target recall.
func TestAblationAdaptiveVsFrozenBackground(t *testing.T) {
	cfg := synth.DefaultTraceConfig(400)
	cfg.VisitRate = 3
	cfg.LightDrift = 0.08 // stronger drift to stress the frozen model
	tr := synth.NewTrace(21, cfg)

	run := func(alpha float32) (filterRate, recall float64) {
		mc := DefaultConfig()
		mc.Alpha = alpha
		d := New(mc)
		var passed, total, tgt, tgtPassed int
		for f := 0; f < cfg.Frames; f++ {
			frame, truth := tr.Frame(f)
			r := d.Step(frame)
			if f == 0 {
				continue
			}
			total++
			if r.Motion {
				passed++
			}
			if truth.TargetPresent {
				tgt++
				if r.Motion {
					tgtPassed++
				}
			}
		}
		if tgt == 0 {
			t.Fatal("trace has no target frames")
		}
		return 1 - float64(passed)/float64(total), float64(tgtPassed) / float64(tgt)
	}

	adFilter, adRecall := run(0.05)
	frFilter, frRecall := run(0)
	if adFilter <= frFilter {
		t.Fatalf("adaptive background filters %.2f, frozen %.2f — ablation inverted", adFilter, frFilter)
	}
	if adRecall < 0.9 {
		t.Fatalf("adaptive model recall %v too low", adRecall)
	}
	_ = frRecall // frozen recall is trivially high: it flags everything
}
