// Package motion implements the optional motion-detection block (B1) of
// the paper's face-authentication pipeline (Fig. 2): a cheap per-pixel
// change detector that gates the far more expensive face-detection and
// NN-authentication blocks, reducing bandwidth and power on the mostly
// static security-camera workload.
package motion

import (
	"fmt"

	"camsim/internal/img"
)

// Config parameterizes the detector.
type Config struct {
	// Threshold is the per-pixel absolute difference that counts as change.
	Threshold float32
	// MinFraction is the fraction of changed pixels required to flag
	// motion for the whole frame.
	MinFraction float64
	// Alpha is the exponential background-update rate in [0, 1];
	// 0 freezes the background to the first frame (plain frame differencing
	// against a static reference), higher values adapt to slow lighting
	// drift. Typical: 0.05.
	Alpha float32
}

// DefaultConfig returns thresholds tuned for the synthetic security trace:
// tolerant of sensor noise and slow illumination drift, sensitive to
// person-sized intrusions.
func DefaultConfig() Config {
	return Config{Threshold: 0.10, MinFraction: 0.004, Alpha: 0.05}
}

// Detector maintains an exponential running background model.
type Detector struct {
	cfg        Config
	background *img.Gray
	frames     int
}

// New creates a detector. The first frame passed to Step initializes the
// background and always reports no motion.
func New(cfg Config) *Detector {
	if cfg.Threshold <= 0 || cfg.MinFraction < 0 || cfg.Alpha < 0 || cfg.Alpha > 1 {
		panic(fmt.Sprintf("motion: invalid config %+v", cfg))
	}
	return &Detector{cfg: cfg}
}

// Result reports one frame's motion decision.
type Result struct {
	Motion        bool
	ChangedPixels int
	Fraction      float64
}

// Step processes the next frame in the stream: it compares against the
// background model, then folds the frame into the model.
func (d *Detector) Step(frame *img.Gray) Result {
	if d.background == nil {
		d.background = frame.Clone()
		d.frames = 1
		return Result{}
	}
	if frame.W != d.background.W || frame.H != d.background.H {
		panic(fmt.Sprintf("motion: frame size %dx%d, model %dx%d",
			frame.W, frame.H, d.background.W, d.background.H))
	}
	d.frames++
	changed := 0
	for i, v := range frame.Pix {
		diff := v - d.background.Pix[i]
		if diff < 0 {
			diff = -diff
		}
		if diff > d.cfg.Threshold {
			changed++
		}
	}
	frac := float64(changed) / float64(len(frame.Pix))
	// Background update after the comparison.
	if d.cfg.Alpha > 0 {
		a := d.cfg.Alpha
		for i := range d.background.Pix {
			d.background.Pix[i] += a * (frame.Pix[i] - d.background.Pix[i])
		}
	}
	return Result{Motion: frac >= d.cfg.MinFraction, ChangedPixels: changed, Fraction: frac}
}

// Frames returns how many frames the detector has seen.
func (d *Detector) Frames() int { return d.frames }

// Reset clears the background model.
func (d *Detector) Reset() {
	d.background = nil
	d.frames = 0
}

// PixelOps returns the per-frame arithmetic work (compare + conditional
// update) in pixel operations, used by the energy accounting: roughly two
// passes over the frame.
func PixelOps(w, h int) int { return 2 * w * h }
