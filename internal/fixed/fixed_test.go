package fixed

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"camsim/internal/nn"
	"camsim/internal/synth"
)

func TestSatAddSaturates(t *testing.T) {
	if got := SatAdd(accMax, 1); got != accMax {
		t.Fatalf("positive saturation: %d", got)
	}
	if got := SatAdd(-accMax, -1); got != -accMax {
		t.Fatalf("negative saturation: %d", got)
	}
	if got := SatAdd(5, -3); got != 2 {
		t.Fatalf("plain add: %d", got)
	}
}

func TestSatAddNeverExceedsBounds(t *testing.T) {
	f := func(a, b int32) bool {
		s := SatAdd(int64(a), int64(b))
		return s <= accMax && s >= -accMax
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeDequantizeRoundTrip(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) || math.Abs(v) > 1 {
			return true
		}
		q := Quantize(v, 8, 6)
		back := Dequantize(q, 6)
		return math.Abs(back-v) <= 1.0/(1<<6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeSaturatesSymmetric(t *testing.T) {
	if q := Quantize(100, 8, 6); q != 127 {
		t.Fatalf("positive saturation: %d", q)
	}
	if q := Quantize(-100, 8, 6); q != -127 {
		t.Fatalf("negative saturation: %d (symmetric clamp)", q)
	}
}

func TestQuantizeZero(t *testing.T) {
	if q := Quantize(0, 8, 7); q != 0 {
		t.Fatalf("Quantize(0) = %d", q)
	}
}

func TestSigmoidLUTAccuracy(t *testing.T) {
	// The paper finds a 256-entry LUT has negligible effect on accuracy.
	lut := NewSigmoidLUT(256, 8, 8)
	if e := lut.MaxAbsError(); e > 0.02 {
		t.Fatalf("256-entry LUT max error %v, want <= 0.02", e)
	}
}

func TestSigmoidLUTMonotone(t *testing.T) {
	lut := NewSigmoidLUT(256, 8, 8)
	prev := uint32(0)
	for _, e := range lut.Entries {
		if e < prev {
			t.Fatal("LUT entries not monotone non-decreasing")
		}
		prev = e
	}
}

func TestSigmoidLUTClampsOutOfRange(t *testing.T) {
	lut := NewSigmoidLUT(256, 8, 8)
	if lut.Lookup(-100) != lut.Entries[0] {
		t.Fatal("left clamp failed")
	}
	if lut.Lookup(100) != lut.Entries[255] {
		t.Fatal("right clamp failed")
	}
}

func TestSigmoidLUTEntryCountAffectsError(t *testing.T) {
	small := NewSigmoidLUT(16, 8, 8)
	big := NewSigmoidLUT(1024, 8, 12)
	if small.MaxAbsError() <= big.MaxAbsError() {
		t.Fatalf("16-entry LUT error %v should exceed 1024-entry %v",
			small.MaxAbsError(), big.MaxAbsError())
	}
}

func TestNewSigmoidLUTPanicsOnTiny(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSigmoidLUT(1, 8, 8)
}

// trainedNet returns a small trained float network and its training data.
func trainedNet(t *testing.T) (*nn.Network, []synth.Sample) {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	set := synth.BuildVerificationSet(rng, synth.VerificationConfig{
		Size: 20, Positives: 120, Negatives: 120, Impostors: 15,
		TrainFrac: 0.9, Hard: false, TargetSeed: 7,
	})
	n := nn.New(rand.New(rand.NewSource(22)), 400, 8, 1)
	n.TrainRPROP(nn.ToTrainSamples(set.Train), nn.DefaultRPROP(120))
	return n, set.Test
}

func TestQuantizeNetPreservesTopology(t *testing.T) {
	n := nn.New(rand.New(rand.NewSource(1)), 10, 4, 2)
	q := QuantizeNet(n, 8, nil)
	if len(q.Layers) != 2 || q.Layers[0].In != 10 || q.Layers[1].Out != 2 {
		t.Fatalf("quantized topology wrong: %+v", q.Sizes)
	}
	if q.Bits != 8 || q.ActFrac != 8 {
		t.Fatalf("Bits/ActFrac = %d/%d", q.Bits, q.ActFrac)
	}
}

func TestQuantizeNetRejectsBadWidth(t *testing.T) {
	n := nn.New(rand.New(rand.NewSource(1)), 4, 1)
	for _, bits := range []int{0, 1, 17, 32} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("no panic for %d bits", bits)
				}
			}()
			QuantizeNet(n, bits, nil)
		}()
	}
}

func TestQuantizedForwardMatchesFloatAt16Bit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := nn.New(rng, 20, 6, 1)
	q := QuantizeNet(n, 16, nil)
	var worst float64
	for trial := 0; trial < 50; trial++ {
		in := make([]float64, 20)
		for i := range in {
			in[i] = rng.Float64()
		}
		f := n.Forward(in)[0]
		x := q.Forward(in)[0]
		if d := math.Abs(f - x); d > worst {
			worst = d
		}
	}
	if worst > 0.01 {
		t.Fatalf("16-bit datapath deviates from float by %v", worst)
	}
}

func TestBitWidthAccuracyOrdering(t *testing.T) {
	// Paper: 16-bit and 8-bit lose <= 0.4% accuracy vs float; 4-bit loses
	// over 1%. We check the qualitative ordering: deviation grows as the
	// datapath narrows, and 8-bit classification agrees with float almost
	// everywhere.
	n, test := trainedNet(t)
	cFloat := nn.Evaluate(test, n.Predict)
	var errs []float64
	for _, bits := range []int{16, 8, 4} {
		q := QuantizeNet(n, bits, nil)
		c := nn.Evaluate(test, q.Predict)
		errs = append(errs, math.Abs(c.Error()-cFloat.Error()))
	}
	if errs[0] > 0.05 {
		t.Fatalf("16-bit accuracy delta %v too large", errs[0])
	}
	if errs[1] > 0.1 {
		t.Fatalf("8-bit accuracy delta %v too large", errs[1])
	}
	if errs[2]+1e-9 < errs[1] {
		t.Logf("note: 4-bit delta %v < 8-bit delta %v on this seed (allowed, small test set)", errs[2], errs[1])
	}
}

func TestExactSigmoidVsLUTSmallDelta(t *testing.T) {
	n, test := trainedNet(t)
	qLUT := QuantizeNet(n, 8, nil)
	qExact := QuantizeNet(n, 8, nil)
	qExact.ExactSigmoid = true
	cLUT := nn.Evaluate(test, qLUT.Predict)
	cExact := nn.Evaluate(test, qExact.Predict)
	if d := math.Abs(cLUT.Error() - cExact.Error()); d > 0.05 {
		t.Fatalf("LUT vs exact sigmoid error delta %v — paper says negligible", d)
	}
}

func TestForwardPanicsOnWrongInput(t *testing.T) {
	q := QuantizeNet(nn.New(rand.New(rand.NewSource(3)), 4, 1), 8, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	q.Forward(make([]float64, 5))
}

func TestForwardClampsInputRange(t *testing.T) {
	q := QuantizeNet(nn.New(rand.New(rand.NewSource(4)), 2, 1), 8, nil)
	out := q.Forward([]float64{-5, 5}) // must not panic or produce NaN
	if math.IsNaN(out[0]) || out[0] < 0 || out[0] > 1 {
		t.Fatalf("clamped forward output %v", out[0])
	}
}

func TestSaturationEventsCounted(t *testing.T) {
	// A wide layer of large weights overflows the 8-bit PE's 26-bit
	// accumulator: 2048 products of ~100·256 exceed 2^25.
	n := &nn.Network{
		Sizes:   []int{2048, 1},
		Weights: [][]float64{make([]float64, 2049)},
	}
	for i := range n.Weights[0] {
		n.Weights[0][i] = 100
	}
	q := QuantizeNet(n, 8, nil)
	q.Forward(onesVec(2048))
	if q.SaturationEvents() == 0 {
		t.Fatal("expected accumulator saturation events")
	}
}

func onesVec(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

func TestCustomLUTRebuiltToMatchActFrac(t *testing.T) {
	n := nn.New(rand.New(rand.NewSource(5)), 4, 1)
	lut := NewSigmoidLUT(64, 6, 3) // wrong ActFrac on purpose
	q := QuantizeNet(n, 8, lut)
	if q.LUT.ActFrac != 8 {
		t.Fatalf("LUT ActFrac %d, want 8", q.LUT.ActFrac)
	}
	if len(q.LUT.Entries) != 64 {
		t.Fatalf("LUT entries %d, want 64 preserved", len(q.LUT.Entries))
	}
}

func BenchmarkQuantizedForward400_8_1_8bit(b *testing.B) {
	n := nn.New(rand.New(rand.NewSource(1)), 400, 8, 1)
	q := QuantizeNet(n, 8, nil)
	in := make([]float64, 400)
	for i := range in {
		in[i] = 0.5
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Forward(in)
	}
}
