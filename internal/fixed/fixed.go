// Package fixed implements the reduced-precision numerics of the paper's
// NN accelerator datapath (§III-A, Fig. 3): W-bit fixed-point weights and
// activations, a wide saturating accumulator (26 bits in the 8-bit PE), and
// a 256-entry look-up-table approximation of the sigmoid. It provides
// quantized inference over networks trained in internal/nn so the
// accuracy-vs-bit-width study (float vs 16/8/4-bit) runs on real data.
package fixed

import (
	"fmt"
	"math"
	"sort"

	"camsim/internal/nn"
)

// AccBits is the accumulator width of the paper's 8-bit processing element
// (Fig. 3): 8-bit operands, 16-bit products, 26-bit accumulation.
const AccBits = 26

// accMax is the saturation bound of the signed AccBits-wide accumulator.
const accMax = int64(1)<<(AccBits-1) - 1

// AccBitsFor returns the accumulator width used for a given datapath width,
// scaling the Fig. 3 design point (8-bit operands → 26-bit accumulator):
// 2·bits for the product plus 10 guard bits for the reduction tree.
func AccBitsFor(bits int) int { return 2*bits + 10 }

// SatAdd adds two accumulator values with symmetric saturation at the
// 8-bit PE's AccBits width.
func SatAdd(a, b int64) int64 { return SatAddWidth(a, b, AccBits) }

// SatAddWidth adds with symmetric saturation at an arbitrary accumulator
// width (2..62 bits).
func SatAddWidth(a, b int64, bits int) int64 {
	max := int64(1)<<uint(bits-1) - 1
	s := a + b
	if s > max {
		return max
	}
	if s < -max {
		return -max
	}
	return s
}

// Quantize rounds a real value to a signed fixed-point integer with frac
// fractional bits and the given total bit width, saturating symmetrically.
func Quantize(v float64, bits, frac int) int32 {
	scaled := math.RoundToEven(v * float64(int64(1)<<uint(frac)))
	max := float64(int64(1)<<uint(bits-1) - 1)
	if scaled > max {
		scaled = max
	}
	if scaled < -max {
		scaled = -max
	}
	return int32(scaled)
}

// Dequantize converts a fixed-point integer with frac fractional bits back
// to a real value.
func Dequantize(q int32, frac int) float64 {
	return float64(q) / float64(int64(1)<<uint(frac))
}

// SigmoidLUT is a hardware look-up-table approximation of the logistic
// function: Entries[i] covers x ∈ [-Range, Range) uniformly; inputs outside
// the range clamp to the first/last entry. Outputs are unsigned fixed-point
// activations with ActFrac fractional bits.
type SigmoidLUT struct {
	Entries []uint32
	Range   float64
	ActFrac int
}

// NewSigmoidLUT builds a LUT with the given number of entries (the paper
// uses 256) over [-rng, rng), quantizing outputs to actFrac fractional bits.
func NewSigmoidLUT(entries int, rng float64, actFrac int) *SigmoidLUT {
	if entries < 2 {
		panic(fmt.Sprintf("fixed: LUT needs >= 2 entries, got %d", entries))
	}
	l := &SigmoidLUT{Entries: make([]uint32, entries), Range: rng, ActFrac: actFrac}
	actMax := uint32(1)<<uint(actFrac) - 1
	for i := range l.Entries {
		// Entry centre point.
		x := -rng + (float64(i)+0.5)*(2*rng/float64(entries))
		v := uint32(math.Round(nn.Sigmoid(x) * float64(int64(1)<<uint(actFrac))))
		if v > actMax {
			v = actMax
		}
		l.Entries[i] = v
	}
	return l
}

// Lookup evaluates the LUT at real-valued x, returning the quantized
// activation code.
func (l *SigmoidLUT) Lookup(x float64) uint32 {
	idx := int((x + l.Range) / (2 * l.Range) * float64(len(l.Entries)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(l.Entries) {
		idx = len(l.Entries) - 1
	}
	return l.Entries[idx]
}

// LookupReal evaluates the LUT and dequantizes to a real activation.
func (l *SigmoidLUT) LookupReal(x float64) float64 {
	return float64(l.Lookup(x)) / float64(int64(1)<<uint(l.ActFrac))
}

// MaxAbsError reports the largest absolute deviation of the LUT from the
// exact sigmoid, sampled densely over [-2·Range, 2·Range].
func (l *SigmoidLUT) MaxAbsError() float64 {
	var worst float64
	for i := -2000; i <= 2000; i++ {
		x := float64(i) / 2000 * 2 * l.Range
		if d := math.Abs(l.LookupReal(x) - nn.Sigmoid(x)); d > worst {
			worst = d
		}
	}
	return worst
}

// Layer is one quantized fully-connected layer.
type Layer struct {
	In, Out  int
	Weights  []int32 // Out×In, output-major, WFrac fractional bits
	Biases   []int64 // Out, at accumulator scale (WFrac+ActFrac fractional bits)
	WFrac    int     // weight fractional bits (chosen per layer from weight range)
	Saturate bool    // saturate accumulator at AccBits (always true in hardware)
}

// Net is a quantized network ready for fixed-point inference.
type Net struct {
	Bits    int // datapath width for weights and activations (4, 8, or 16)
	ActFrac int // activation fractional bits (Bits, activations are UQ0.Bits)
	AccBits int // accumulator width (AccBitsFor(Bits))
	Sizes   []int
	Layers  []Layer
	LUT     *SigmoidLUT
	// ExactSigmoid bypasses the LUT with a precise sigmoid on the
	// dequantized accumulator, isolating LUT error from datapath error
	// (the paper's two precision knobs).
	ExactSigmoid bool
	// satEvents counts accumulator saturations during Forward, an
	// observability hook for the overflow tests.
	satEvents int
}

// QuantizeNet converts a float network to a Bits-wide fixed-point network.
// Weight fractional bits are chosen per layer so the largest-magnitude
// weight just fits (a per-layer "dynamic fixed point", standard practice
// for NN accelerators). lut may be nil, in which case a 256-entry LUT over
// [-8, 8) is built automatically.
func QuantizeNet(n *nn.Network, bits int, lut *SigmoidLUT) *Net {
	if bits < 2 || bits > 16 {
		panic(fmt.Sprintf("fixed: unsupported datapath width %d", bits))
	}
	actFrac := bits
	if lut == nil {
		lut = NewSigmoidLUT(256, 8, actFrac)
	} else if lut.ActFrac != actFrac {
		// Rebuild at the right activation precision, keeping entry count.
		lut = NewSigmoidLUT(len(lut.Entries), lut.Range, actFrac)
	}
	q := &Net{Bits: bits, ActFrac: actFrac, AccBits: AccBitsFor(bits),
		Sizes: append([]int(nil), n.Sizes...), LUT: lut}
	netAccMax := int64(1)<<uint(q.AccBits-1) - 1
	for l := 0; l < len(n.Weights); l++ {
		in, out := n.Sizes[l], n.Sizes[l+1]
		w := n.Weights[l]
		// Scale from the 99.5th-percentile |weight| rather than the max:
		// RPROP occasionally produces a handful of huge weights, and sizing
		// the fixed-point range for them would quantize everything else to
		// zero. Outliers saturate instead (Quantize clamps symmetrically).
		abs := make([]float64, 0, len(w))
		for j := 0; j < out; j++ {
			base := j * (in + 1)
			for i := 0; i <= in; i++ {
				abs = append(abs, math.Abs(w[base+i]))
			}
		}
		sort.Float64s(abs)
		scaleAbs := abs[len(abs)-1]
		if idx := int(float64(len(abs)) * 0.995); idx < len(abs) {
			scaleAbs = abs[idx]
		}
		// Integer bits needed for the scale weight; the rest are fraction.
		intBits := 0
		for float64(int64(1)<<uint(intBits)) <= scaleAbs {
			intBits++
		}
		wfrac := bits - 1 - intBits
		if wfrac < 0 {
			wfrac = 0
		}
		layer := Layer{In: in, Out: out, WFrac: wfrac, Saturate: true,
			Weights: make([]int32, in*out), Biases: make([]int64, out)}
		biasScale := float64(int64(1) << uint(wfrac+actFrac))
		for j := 0; j < out; j++ {
			base := j * (in + 1)
			for i := 0; i < in; i++ {
				layer.Weights[j*in+i] = Quantize(w[base+i], bits, wfrac)
			}
			b := math.RoundToEven(w[base+in] * biasScale)
			if b > float64(netAccMax) {
				b = float64(netAccMax)
			}
			if b < -float64(netAccMax) {
				b = -float64(netAccMax)
			}
			layer.Biases[j] = int64(b)
		}
		q.Layers = append(q.Layers, layer)
	}
	return q
}

// Forward runs fixed-point inference on a real-valued input in [0, 1],
// returning real-valued outputs in [0, 1]. Every intermediate value goes
// through the quantized datapath: UQ0.Bits activations, SQ weights, an
// AccBits saturating accumulator, and the sigmoid LUT.
func (q *Net) Forward(input []float64) []float64 {
	if len(input) != q.Sizes[0] {
		panic(fmt.Sprintf("fixed: input size %d, want %d", len(input), q.Sizes[0]))
	}
	actMax := uint32(1)<<uint(q.ActFrac) - 1
	acts := make([]uint32, len(input))
	for i, v := range input {
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		a := uint32(math.Round(v * float64(int64(1)<<uint(q.ActFrac))))
		if a > actMax {
			a = actMax
		}
		acts[i] = a
	}
	for _, layer := range q.Layers {
		next := make([]uint32, layer.Out)
		accScale := float64(int64(1) << uint(layer.WFrac+q.ActFrac))
		for j := 0; j < layer.Out; j++ {
			acc := layer.Biases[j]
			base := j * layer.In
			for i := 0; i < layer.In; i++ {
				p := int64(layer.Weights[base+i]) * int64(acts[i])
				if layer.Saturate {
					before := acc
					acc = SatAddWidth(acc, p, q.AccBits)
					if acc != before+p {
						q.satEvents++
					}
				} else {
					acc += p
				}
			}
			x := float64(acc) / accScale
			if q.ExactSigmoid {
				v := uint32(math.Round(nn.Sigmoid(x) * float64(int64(1)<<uint(q.ActFrac))))
				if v > actMax {
					v = actMax
				}
				next[j] = v
			} else {
				next[j] = q.LUT.Lookup(x)
			}
		}
		acts = next
	}
	out := make([]float64, len(acts))
	inv := 1 / float64(int64(1)<<uint(q.ActFrac))
	for i, a := range acts {
		out[i] = float64(a) * inv
	}
	return out
}

// Predict applies the 0.5 decision threshold to the first output.
func (q *Net) Predict(input []float64) bool { return q.Forward(input)[0] > 0.5 }

// SaturationEvents returns the number of accumulator saturations observed
// since construction.
func (q *Net) SaturationEvents() int { return q.satEvents }
