// Package bilateral implements the bilateral grid data structure and the
// bilateral-space stereo algorithm (BSSA, Barron et al. CVPR'15) that the
// paper's VR pipeline uses for depth estimation (§IV-A, Figs. 6–7): pixels
// are splatted into a coarse 3-D grid over (x, y, intensity), smoothed with
// cheap local filters that are equivalent to global edge-aware filtering in
// pixel space, and sliced back to a full-resolution result.
package bilateral

import (
	"fmt"
	"math"

	"camsim/internal/img"
)

// Grid is a 3-D bilateral grid over (x, y, reference intensity) holding a
// homogeneous (value, weight) pair per vertex. Spatial cells are CellXY
// pixels wide; the [0, 1] intensity range is divided into NZ bins.
type Grid struct {
	NX, NY, NZ int
	CellXY     float64
	Val, Wt    []float32
}

// NewGrid allocates a grid covering a w×h image with the given spatial
// cell size (pixels per vertex) and number of intensity bins.
func NewGrid(w, h int, cellXY float64, nz int) *Grid {
	if cellXY <= 0 || nz < 1 || w < 1 || h < 1 {
		panic(fmt.Sprintf("bilateral: invalid grid spec %dx%d cell %v nz %d", w, h, cellXY, nz))
	}
	nx := int(math.Ceil(float64(w-1)/cellXY)) + 2
	ny := int(math.Ceil(float64(h-1)/cellXY)) + 2
	g := &Grid{NX: nx, NY: ny, NZ: nz + 1, CellXY: cellXY}
	n := g.NX * g.NY * g.NZ
	g.Val = make([]float32, n)
	g.Wt = make([]float32, n)
	return g
}

// Vertices returns the total vertex count.
func (g *Grid) Vertices() int { return g.NX * g.NY * g.NZ }

// SizeBytes returns the grid's memory footprint (two float32 per vertex),
// the x-axis of the paper's Fig. 7.
func (g *Grid) SizeBytes() int64 { return int64(g.Vertices()) * 8 }

func (g *Grid) idx(x, y, z int) int { return (z*g.NY+y)*g.NX + x }

// Splat accumulates data values into the grid using trilinear weights.
// ref supplies the intensity (guide) coordinate in [0, 1]; data supplies
// the value being filtered; conf optionally scales each pixel's weight
// (nil means uniform confidence 1).
func (g *Grid) Splat(ref, data, conf *img.Gray) {
	if ref.W != data.W || ref.H != data.H {
		panic("bilateral: ref/data size mismatch")
	}
	if conf != nil && (conf.W != ref.W || conf.H != ref.H) {
		panic("bilateral: conf size mismatch")
	}
	invCell := 1 / g.CellXY
	zScale := float64(g.NZ - 1)
	for y := 0; y < ref.H; y++ {
		for x := 0; x < ref.W; x++ {
			i := y*ref.W + x
			w := float32(1)
			if conf != nil {
				w = conf.Pix[i]
				if w <= 0 {
					continue
				}
			}
			fx := float64(x) * invCell
			fy := float64(y) * invCell
			r := float64(ref.Pix[i])
			if r < 0 {
				r = 0
			} else if r > 1 {
				r = 1
			}
			fz := r * zScale
			g.splatTrilinear(fx, fy, fz, data.Pix[i], w)
		}
	}
}

func (g *Grid) splatTrilinear(fx, fy, fz float64, v, w float32) {
	x0, y0, z0 := int(fx), int(fy), int(fz)
	if x0 > g.NX-2 {
		x0 = g.NX - 2
	}
	if y0 > g.NY-2 {
		y0 = g.NY - 2
	}
	if z0 > g.NZ-2 {
		z0 = g.NZ - 2
	}
	ax := float32(fx - float64(x0))
	ay := float32(fy - float64(y0))
	az := float32(fz - float64(z0))
	for dz := 0; dz < 2; dz++ {
		wz := az
		if dz == 0 {
			wz = 1 - az
		}
		for dy := 0; dy < 2; dy++ {
			wy := ay
			if dy == 0 {
				wy = 1 - ay
			}
			for dx := 0; dx < 2; dx++ {
				wx := ax
				if dx == 0 {
					wx = 1 - ax
				}
				k := g.idx(x0+dx, y0+dy, z0+dz)
				ww := w * wx * wy * wz
				g.Val[k] += v * ww
				g.Wt[k] += ww
			}
		}
	}
}

// Blur applies `passes` rounds of the separable [1 2 1]/4 kernel along all
// three grid dimensions to both the value and weight channels — the cheap
// local filter that equals a global edge-aware blur in pixel space.
func (g *Grid) Blur(passes int) {
	for p := 0; p < passes; p++ {
		g.blurAxis(1, 0, 0)
		g.blurAxis(0, 1, 0)
		g.blurAxis(0, 0, 1)
	}
}

// blurAxis convolves both channels with [1 2 1]/4 along one axis,
// replicating edges.
func (g *Grid) blurAxis(dx, dy, dz int) {
	n := [3]int{g.NX, g.NY, g.NZ}
	tmpV := make([]float32, len(g.Val))
	tmpW := make([]float32, len(g.Wt))
	for z := 0; z < n[2]; z++ {
		for y := 0; y < n[1]; y++ {
			for x := 0; x < n[0]; x++ {
				xm, ym, zm := clampI(x-dx, n[0]), clampI(y-dy, n[1]), clampI(z-dz, n[2])
				xp, yp, zp := clampI(x+dx, n[0]), clampI(y+dy, n[1]), clampI(z+dz, n[2])
				c := g.idx(x, y, z)
				m := g.idx(xm, ym, zm)
				p := g.idx(xp, yp, zp)
				tmpV[c] = 0.25*g.Val[m] + 0.5*g.Val[c] + 0.25*g.Val[p]
				tmpW[c] = 0.25*g.Wt[m] + 0.5*g.Wt[c] + 0.25*g.Wt[p]
			}
		}
	}
	copy(g.Val, tmpV)
	copy(g.Wt, tmpW)
}

// BlurNaive applies one pass of the full 3×3×3 separable-equivalent kernel
// directly (27-point stencil). It computes the same result as one Blur
// pass and exists as the ablation baseline for the separable design choice.
func (g *Grid) BlurNaive() {
	tmpV := make([]float32, len(g.Val))
	tmpW := make([]float32, len(g.Wt))
	w1 := [3]float32{0.25, 0.5, 0.25}
	for z := 0; z < g.NZ; z++ {
		for y := 0; y < g.NY; y++ {
			for x := 0; x < g.NX; x++ {
				var sv, sw float32
				for dz := -1; dz <= 1; dz++ {
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							k := g.idx(clampI(x+dx, g.NX), clampI(y+dy, g.NY), clampI(z+dz, g.NZ))
							w := w1[dx+1] * w1[dy+1] * w1[dz+1]
							sv += w * g.Val[k]
							sw += w * g.Wt[k]
						}
					}
				}
				c := g.idx(x, y, z)
				tmpV[c] = sv
				tmpW[c] = sw
			}
		}
	}
	copy(g.Val, tmpV)
	copy(g.Wt, tmpW)
}

// Slice interpolates the grid back to pixel space at the reference image's
// coordinates, dividing value by weight (homogeneous normalization).
// Pixels whose neighbourhood received no splats get 0.
func (g *Grid) Slice(ref *img.Gray) *img.Gray {
	out := img.NewGray(ref.W, ref.H)
	invCell := 1 / g.CellXY
	zScale := float64(g.NZ - 1)
	for y := 0; y < ref.H; y++ {
		for x := 0; x < ref.W; x++ {
			i := y*ref.W + x
			r := float64(ref.Pix[i])
			if r < 0 {
				r = 0
			} else if r > 1 {
				r = 1
			}
			v, w := g.sampleTrilinear(float64(x)*invCell, float64(y)*invCell, r*zScale)
			if w > 1e-8 {
				out.Pix[i] = v / w
			}
		}
	}
	return out
}

func (g *Grid) sampleTrilinear(fx, fy, fz float64) (v, w float32) {
	x0, y0, z0 := int(fx), int(fy), int(fz)
	if x0 > g.NX-2 {
		x0 = g.NX - 2
	}
	if y0 > g.NY-2 {
		y0 = g.NY - 2
	}
	if z0 > g.NZ-2 {
		z0 = g.NZ - 2
	}
	ax := float32(fx - float64(x0))
	ay := float32(fy - float64(y0))
	az := float32(fz - float64(z0))
	for dz := 0; dz < 2; dz++ {
		wz := az
		if dz == 0 {
			wz = 1 - az
		}
		for dy := 0; dy < 2; dy++ {
			wy := ay
			if dy == 0 {
				wy = 1 - ay
			}
			for dx := 0; dx < 2; dx++ {
				wx := ax
				if dx == 0 {
					wx = 1 - ax
				}
				k := g.idx(x0+dx, y0+dy, z0+dz)
				ww := wx * wy * wz
				v += ww * g.Val[k]
				w += ww * g.Wt[k]
			}
		}
	}
	return v, w
}

// Filter runs the full splat→blur→slice pipeline, smoothing data under the
// edges of ref — a fast bilateral filter (Fig. 6's edge-aware smoother).
func Filter(ref, data *img.Gray, cellXY float64, nz, blurPasses int) *img.Gray {
	g := NewGrid(ref.W, ref.H, cellXY, nz)
	g.Splat(ref, data, nil)
	g.Blur(blurPasses)
	return g.Slice(ref)
}

func clampI(v, n int) int {
	if v < 0 {
		return 0
	}
	if v >= n {
		return n - 1
	}
	return v
}
