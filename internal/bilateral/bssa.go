package bilateral

import (
	"fmt"

	"camsim/internal/img"
	"camsim/internal/stereo"
)

// BSSAConfig parameterizes the bilateral-space stereo solver.
type BSSAConfig struct {
	// MaxDisparity bounds the search range in pixels.
	MaxDisparity int
	// MatchRadius is the SAD window radius of the local matcher that
	// produces the noisy data term.
	MatchRadius int
	// CellXY is the spatial grid cell edge in pixels per vertex — the
	// quality/cost knob swept in Fig. 7 (4 → 64).
	CellXY float64
	// IntensityBins is the number of guide-intensity bins (Fig. 7 scales
	// this dimension together with CellXY).
	IntensityBins int
	// Iterations of the bilateral-space smooth + data-reattach loop that
	// stands in for Barron's preconditioned solver.
	Iterations int
	// Lambda is the data-attachment strength in (0, 1]: each iteration
	// blends lambda of the splatted data term back into the smoothed grid.
	Lambda float32
	// BlurPasses per iteration.
	BlurPasses int
}

// DefaultBSSAConfig returns the fine-grid reference configuration.
func DefaultBSSAConfig(maxDisp int) BSSAConfig {
	return BSSAConfig{
		MaxDisparity:  maxDisp,
		MatchRadius:   3,
		CellXY:        4,
		IntensityBins: 16,
		Iterations:    3,
		Lambda:        0.35,
		BlurPasses:    2,
	}
}

// Stats reports the work and memory of one BSSA solve — the quantities the
// Fig. 7/Fig. 10 cost models consume.
type Stats struct {
	GridVertices int
	GridBytes    int64
	// VertexOps counts vertex visits across splat/blur/slice: the unit the
	// FPGA compute-unit throughput model is calibrated in.
	VertexOps int64
}

// Solve computes a refined disparity map for a rectified stereo pair
// (left is the reference view) in bilateral space:
//
//  1. a local block matcher produces a noisy disparity + confidence map;
//  2. disparity is splatted into a bilateral grid of the reference image,
//     weighted by confidence;
//  3. the grid is iteratively smoothed with data re-attachment, the cheap
//     bilateral-space equivalent of global edge-aware optimization;
//  4. the result is sliced back to pixels.
func Solve(left, right *img.Gray, cfg BSSAConfig) (*img.Gray, Stats, error) {
	if left.W != right.W || left.H != right.H {
		return nil, Stats{}, fmt.Errorf("bilateral: stereo pair size mismatch %dx%d vs %dx%d",
			left.W, left.H, right.W, right.H)
	}
	if cfg.MaxDisparity < 1 {
		return nil, Stats{}, fmt.Errorf("bilateral: MaxDisparity %d < 1", cfg.MaxDisparity)
	}
	if cfg.CellXY <= 0 || cfg.IntensityBins < 1 {
		return nil, Stats{}, fmt.Errorf("bilateral: invalid grid spec cell=%v bins=%d", cfg.CellXY, cfg.IntensityBins)
	}
	if cfg.Iterations < 1 {
		cfg.Iterations = 1
	}
	if cfg.Lambda <= 0 || cfg.Lambda > 1 {
		cfg.Lambda = 0.35
	}
	if cfg.BlurPasses < 1 {
		cfg.BlurPasses = 1
	}

	// 1. Local data term.
	bm := stereo.BlockMatch(left, right, stereo.Config{
		MaxDisparity: cfg.MaxDisparity,
		WindowRadius: cfg.MatchRadius,
	})

	// Normalize disparity to [0, 1] for grid processing.
	norm := img.NewGray(left.W, left.H)
	scale := 1 / float32(cfg.MaxDisparity)
	for i, d := range bm.Disparity.Pix {
		norm.Pix[i] = d * scale
	}

	// 2. Splat the data term once; keep a pristine copy for re-attachment.
	data := NewGrid(left.W, left.H, cfg.CellXY, cfg.IntensityBins)
	data.Splat(left, norm, bm.Confidence)

	work := NewGrid(left.W, left.H, cfg.CellXY, cfg.IntensityBins)
	copy(work.Val, data.Val)
	copy(work.Wt, data.Wt)

	var st Stats
	st.GridVertices = work.Vertices()
	st.GridBytes = work.SizeBytes()
	st.VertexOps += int64(left.W * left.H) // splat visits

	// 3. Smooth with data re-attachment.
	for it := 0; it < cfg.Iterations; it++ {
		work.Blur(cfg.BlurPasses)
		st.VertexOps += int64(cfg.BlurPasses) * 3 * int64(st.GridVertices)
		lam := cfg.Lambda
		for i := range work.Val {
			work.Val[i] = (1-lam)*work.Val[i] + lam*data.Val[i]
			work.Wt[i] = (1-lam)*work.Wt[i] + lam*data.Wt[i]
		}
		st.VertexOps += int64(st.GridVertices)
	}

	// 4. Slice back to pixel space and rescale to pixels of disparity.
	out := work.Slice(left)
	st.VertexOps += int64(left.W * left.H)
	for i := range out.Pix {
		out.Pix[i] *= float32(cfg.MaxDisparity)
	}
	return out, st, nil
}
