package bilateral

import (
	"math"
	"math/rand"
	"testing"

	"camsim/internal/img"
	"camsim/internal/quality"
	"camsim/internal/rig"
	"camsim/internal/stereo"
)

func TestNewGridDimensions(t *testing.T) {
	g := NewGrid(64, 32, 8, 8)
	if g.NX < 64/8+1 || g.NY < 32/8+1 || g.NZ != 9 {
		t.Fatalf("grid dims %dx%dx%d", g.NX, g.NY, g.NZ)
	}
	if g.SizeBytes() != int64(g.Vertices())*8 {
		t.Fatal("SizeBytes inconsistent with Vertices")
	}
}

func TestNewGridPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewGrid(0, 4, 4, 4) },
		func() { NewGrid(4, 4, 0, 4) },
		func() { NewGrid(4, 4, 4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSplatSliceIdentityOnConstant(t *testing.T) {
	// Splatting a constant image and slicing it back must return the
	// constant (homogeneous normalization cancels the weights).
	ref := img.NewGray(32, 32)
	ref.Fill(0.5)
	data := img.NewGray(32, 32)
	data.Fill(0.7)
	g := NewGrid(32, 32, 4, 8)
	g.Splat(ref, data, nil)
	out := g.Slice(ref)
	for _, v := range out.Pix {
		if math.Abs(float64(v)-0.7) > 1e-3 {
			t.Fatalf("constant round trip value %v, want 0.7", v)
		}
	}
}

func TestSplatMassConservation(t *testing.T) {
	// Total splatted weight equals the number of pixels (trilinear weights
	// sum to 1 per pixel), and blur preserves interior mass approximately.
	rng := rand.New(rand.NewSource(1))
	ref := img.NewGray(24, 24)
	data := img.NewGray(24, 24)
	for i := range ref.Pix {
		ref.Pix[i] = rng.Float32()
		data.Pix[i] = rng.Float32()
	}
	g := NewGrid(24, 24, 4, 8)
	g.Splat(ref, data, nil)
	var wsum float64
	for _, w := range g.Wt {
		wsum += float64(w)
	}
	if math.Abs(wsum-24*24) > 0.1 {
		t.Fatalf("splatted weight %v, want %d", wsum, 24*24)
	}
}

func TestConfidenceZeroSkipsPixels(t *testing.T) {
	ref := img.NewGray(16, 16)
	data := img.NewGray(16, 16)
	data.Fill(1)
	conf := img.NewGray(16, 16) // all zero
	g := NewGrid(16, 16, 4, 4)
	g.Splat(ref, data, conf)
	for _, w := range g.Wt {
		if w != 0 {
			t.Fatal("zero-confidence pixels were splatted")
		}
	}
}

func TestSplatPanicsOnMismatch(t *testing.T) {
	g := NewGrid(16, 16, 4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Splat(img.NewGray(16, 16), img.NewGray(15, 16), nil)
}

func TestBlurNaiveMatchesSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	mk := func() *Grid {
		ref := img.NewGray(20, 20)
		data := img.NewGray(20, 20)
		for i := range ref.Pix {
			ref.Pix[i] = rng.Float32()
			data.Pix[i] = rng.Float32()
		}
		g := NewGrid(20, 20, 4, 6)
		g.Splat(ref, data, nil)
		return g
	}
	rng = rand.New(rand.NewSource(2))
	a := mk()
	rng = rand.New(rand.NewSource(2))
	b := mk()
	a.Blur(1)
	b.BlurNaive()
	for i := range a.Val {
		if d := math.Abs(float64(a.Val[i] - b.Val[i])); d > 1e-4 {
			t.Fatalf("separable vs naive blur differ at %d by %v", i, d)
		}
		if d := math.Abs(float64(a.Wt[i] - b.Wt[i])); d > 1e-4 {
			t.Fatalf("weights differ at %d by %v", i, d)
		}
	}
}

// noisyStep builds the Fig. 6 test signal: a sharp step with additive noise.
func noisyStep(w, h int, seed int64) (*img.Gray, *img.Gray) {
	rng := rand.New(rand.NewSource(seed))
	clean := img.NewGray(w, h)
	noisy := img.NewGray(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := float32(0.25)
			if x >= w/2 {
				v = 0.75
			}
			clean.Pix[y*w+x] = v
			noisy.Pix[y*w+x] = v + 0.08*float32(rng.NormFloat64())
		}
	}
	noisy.Clamp01()
	return clean, noisy
}

func TestBilateralFilterPreservesEdges(t *testing.T) {
	// The Fig. 6 property: bilateral smoothing reduces noise like a box
	// blur but keeps the step edge sharp.
	clean, noisy := noisyStep(64, 32, 3)
	bilat := Filter(noisy, noisy, 4, 16, 2)
	box := img.BoxFilter(noisy, 4)

	edgeSharpness := func(g *img.Gray) float64 {
		// Mean |difference| across the step at x = w/2.
		var s float64
		for y := 0; y < g.H; y++ {
			s += math.Abs(float64(g.At(g.W/2+2, y) - g.At(g.W/2-3, y)))
		}
		return s / float64(g.H)
	}
	noiseLevel := func(g *img.Gray) float64 {
		// Mean abs deviation from clean within the flat halves.
		var s float64
		var n int
		for y := 0; y < g.H; y++ {
			for x := 4; x < g.W/2-4; x++ {
				s += math.Abs(float64(g.At(x, y) - clean.At(x, y)))
				n++
			}
			for x := g.W/2 + 4; x < g.W-4; x++ {
				s += math.Abs(float64(g.At(x, y) - clean.At(x, y)))
				n++
			}
		}
		return s / float64(n)
	}

	if nl := noiseLevel(bilat); nl > noiseLevel(noisy)*0.6 {
		t.Fatalf("bilateral filter barely denoised: %v vs %v", nl, noiseLevel(noisy))
	}
	if es := edgeSharpness(bilat); es < edgeSharpness(box)*1.5 {
		t.Fatalf("bilateral edge %v not sharper than box blur %v", es, edgeSharpness(box))
	}
}

func makePair(t *testing.T, seed int64) (left, right, gt *img.Gray, maxDisp int) {
	t.Helper()
	r := rig.NewRig(rand.New(rand.NewSource(seed)), 4, 128, 64, 0.75, 3)
	l, rr, g := r.Pair(0)
	return l, rr, g, r.MaxDisparity()
}

func TestSolveBSSAReducesErrorVsBlockMatch(t *testing.T) {
	left, right, gt, maxD := makePair(t, 11)
	cfg := DefaultBSSAConfig(maxD)
	refined, st, err := Solve(left, right, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bm := stereo.BlockMatch(left, right, stereo.Config{MaxDisparity: maxD, WindowRadius: cfg.MatchRadius})
	errBM := stereo.MeanAbsError(bm.Disparity, gt)
	errBSSA := stereo.MeanAbsError(refined, gt)
	if errBSSA >= errBM {
		t.Fatalf("BSSA error %v not below block-matching %v", errBSSA, errBM)
	}
	if st.GridVertices == 0 || st.GridBytes == 0 || st.VertexOps == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
}

func TestSolveErrors(t *testing.T) {
	a := img.NewGray(32, 32)
	if _, _, err := Solve(a, img.NewGray(31, 32), DefaultBSSAConfig(8)); err == nil {
		t.Fatal("accepted size mismatch")
	}
	cfg := DefaultBSSAConfig(0)
	if _, _, err := Solve(a, a.Clone(), cfg); err == nil {
		t.Fatal("accepted MaxDisparity 0")
	}
	cfg = DefaultBSSAConfig(8)
	cfg.CellXY = -1
	if _, _, err := Solve(a, a.Clone(), cfg); err == nil {
		t.Fatal("accepted negative cell size")
	}
}

func TestGridSizeQualityTradeoff(t *testing.T) {
	// Fig. 7's shape: a coarser grid is smaller and cheaper but degrades
	// depth-map quality (MS-SSIM vs a fine-grid reference).
	left, right, _, maxD := makePair(t, 12)
	fine := DefaultBSSAConfig(maxD) // cell 4
	coarse := DefaultBSSAConfig(maxD)
	coarse.CellXY = 32
	coarse.IntensityBins = 4

	dFine, stFine, err := Solve(left, right, fine)
	if err != nil {
		t.Fatal(err)
	}
	dCoarse, stCoarse, err := Solve(left, right, coarse)
	if err != nil {
		t.Fatal(err)
	}
	if stCoarse.GridBytes >= stFine.GridBytes {
		t.Fatalf("coarse grid (%d B) not smaller than fine (%d B)", stCoarse.GridBytes, stFine.GridBytes)
	}
	norm := func(g *img.Gray) *img.Gray {
		o := g.Clone()
		for i := range o.Pix {
			o.Pix[i] /= float32(maxD)
		}
		return o
	}
	selfQ := quality.MSSSIM(norm(dFine), norm(dFine))
	coarseQ := quality.MSSSIM(norm(dFine), norm(dCoarse))
	if coarseQ >= selfQ {
		t.Fatalf("coarse grid quality %v not below fine reference %v", coarseQ, selfQ)
	}
}

func TestSolveDefaultsAppliedForDegenerateKnobs(t *testing.T) {
	left, right, _, maxD := makePair(t, 13)
	cfg := DefaultBSSAConfig(maxD)
	cfg.Iterations = 0
	cfg.Lambda = 5
	cfg.BlurPasses = 0
	if _, _, err := Solve(left, right, cfg); err != nil {
		t.Fatalf("degenerate knobs should fall back to defaults: %v", err)
	}
}

func BenchmarkBSSA128(b *testing.B) {
	r := rig.NewRig(rand.New(rand.NewSource(1)), 4, 128, 64, 0.75, 3)
	left, right, _ := r.Pair(0)
	cfg := DefaultBSSAConfig(r.MaxDisparity())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Solve(left, right, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGridBlurSeparable(b *testing.B) {
	g := NewGrid(256, 256, 4, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Blur(1)
	}
}

func BenchmarkGridBlurNaive(b *testing.B) {
	g := NewGrid(256, 256, 4, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BlurNaive()
	}
}
