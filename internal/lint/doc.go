// Package lint is fleetvet: a repo-specific static-analysis suite that
// machine-checks the determinism invariants everything in this
// reproduction leans on — byte-identical goldens across GOMAXPROCS
// 1/2/8, pinned per-entity PRNG streams, and the streaming-vs-exact
// differential. The rules target bug classes this repo has actually
// hit: goldens that mysteriously shifted PRs after the change that
// broke them (PRs 3, 5 and 7), and hand-maintained deep-copy lists the
// chore PRs had to remember by hand (PRs 6 and 7).
//
// Run it as:
//
//	go run ./cmd/fleetvet ./...
//
// It exits 0 on a clean tree and 1 with file:line:col diagnostics
// otherwise; the CI lint job and the nightly matrix both gate on it.
// ARCHITECTURE.md at the repository root explains the determinism
// contract these rules defend and how they fit the simulator's design.
//
// # Rules
//
// detmap — flags `for ... range m` over a map anywhere under
// internal/fleet. Go randomizes map iteration order per run, so any
// body that can observe the order (emitting output, accumulating,
// scheduling work) makes a seeded run diverge. The one shape accepted
// as order-insensitive by construction is collection: a body consisting
// solely of `xs = append(xs, ...)` statements whose targets are all
// passed to a sort.* or slices.* call later in the same function.
//
// detsource — flags nondeterministic value sources: time.Now and
// time.Since (simulated time comes from the event loop, never the host
// clock), the global math/rand top-level draw functions (the shared
// stream is seeded per process, not per scenario), and the
// rand.New/rand.NewSource constructor family (a second PRNG kind means
// a second stream to pin and regenerate goldens for). prng.go — the
// value-embedded splitmix64 stream every seeded draw must flow through
// — is the one exempt file; referring to math/rand types (the
// rand.Source64 interface it implements) is fine anywhere.
//
// detconc — flags concurrency in the deterministic core: go statements,
// channel types and operations (send, receive, range, select), and
// references to sync or sync/atomic. One run is one sequential event
// loop; parallelism exists only between runs. sweep.go's worker pool —
// which parallelizes across already-independent scenarios — is
// allowlisted site by site with annotations.
//
// floatsum — flags floating-point `+=` (or `x = x + ...`) inside a
// map-range loop. Float addition is not associative, so a total folded
// in randomized map order drifts in the last bits from run to run.
// Integer accumulation commutes exactly and is not flagged.
//
// scenariocopy — walks the Scenario type graph (every nested section,
// fl.Config included) and requires each field to be exported,
// json-tagged, and plain data (no chan, func or interface anywhere in
// its type). The strict decode / re-marshal round trip, the
// reflect.DeepEqual idempotency check and the fuzz harness's
// reflection-based deep copy all depend on exactly that shape, so a new
// scenario section is covered by all three the moment it compiles.
//
// # Suppressing a diagnostic
//
// A comment of the form
//
//	//fleetvet:allow <reason>
//
// on the flagged line, or on the line directly above it, silences every
// diagnostic at that line. The reason is mandatory — it should say why
// the site cannot perturb a seeded run — and an annotation without one
// is itself reported.
//
// # Testing analyzers
//
// Each rule has a golden-diagnostic package under testdata/src/<rule>:
// ordinary Go files where a comment `// want "regexp"` on a line
// asserts a diagnostic matching the regexp there (several per line
// allowed), and every unannotated line asserts silence. The harness in
// harness_test.go loads the package with the same loader the driver
// uses, so the tests exercise real go/types object resolution, not
// string matching.
package lint
