package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one parsed, type-checked package: everything a Pass needs.
type Package struct {
	// Path is the package's import path; Rel is the module-relative form
	// the analyzer scopes match against ("" for the module root package).
	Path string
	Rel  string
	Dir  string
	Fset *token.FileSet
	// Files holds the package's non-test sources, in file-name order so
	// every run visits them identically.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of one module from source. It is
// deliberately stdlib-only: module-internal import paths resolve through
// go.mod's module line plus the directory layout, and everything else
// (the standard library) is delegated to go/importer's source importer,
// so the module's no-external-dependency invariant holds for the
// analysis tooling too.
type Loader struct {
	fset   *token.FileSet
	root   string // module root directory
	module string // module path from go.mod
	std    types.Importer
	pkgs   map[string]*Package
	active map[string]bool // import-cycle guard
}

// NewLoader returns a loader for the module rooted at root (the directory
// holding go.mod).
func NewLoader(root string) (*Loader, error) {
	module, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:   fset,
		root:   root,
		module: module,
		std:    importer.ForCompiler(fset, "source", nil),
		pkgs:   make(map[string]*Package),
		active: make(map[string]bool),
	}, nil
}

// Module returns the module path go.mod declares.
func (l *Loader) Module() string { return l.module }

// modulePath reads the module line out of a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// Load parses and type-checks the module package at the given import
// path (which must be the module path or below it), caching the result.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	rel, ok := l.relPath(path)
	if !ok {
		return nil, fmt.Errorf("lint: %s is outside module %s", path, l.module)
	}
	if l.active[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.active[path] = true
	defer delete(l.active, path)

	dir := filepath.Join(l.root, filepath.FromSlash(rel))
	files, err := parseDir(l.fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	info := newInfo()
	cfg := types.Config{Importer: l}
	tpkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path:  path,
		Rel:   rel,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// relPath maps a module import path to its module-relative directory.
func (l *Loader) relPath(path string) (string, bool) {
	if path == l.module {
		return "", true
	}
	rel, ok := strings.CutPrefix(path, l.module+"/")
	return rel, ok
}

// Import implements types.Importer: module-internal paths load through
// the loader itself, everything else through the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if _, ok := l.relPath(path); ok {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// parseDir parses every non-test Go file of one directory, with
// comments (the allow annotations live there), in name order.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	return files, nil
}

// newInfo allocates the types.Info maps every pass reads.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// testdataLoad shares one file set and source importer across LoadDir
// calls, so a test suite type-checks the standard library once instead
// of once per testdata package.
var testdataLoad struct {
	once sync.Once
	mu   sync.Mutex
	fset *token.FileSet
	std  types.Importer
}

// LoadDir parses and type-checks a single self-contained directory as
// one package — the golden-diagnostic test harness's loader. The
// package may import only the standard library.
func LoadDir(dir string) (*Package, error) {
	testdataLoad.once.Do(func() {
		testdataLoad.fset = token.NewFileSet()
		testdataLoad.std = importer.ForCompiler(testdataLoad.fset, "source", nil)
	})
	testdataLoad.mu.Lock()
	defer testdataLoad.mu.Unlock()
	fset := testdataLoad.fset
	files, err := parseDir(fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	info := newInfo()
	cfg := types.Config{Importer: testdataLoad.std}
	path := "fleetvet.test/" + filepath.ToSlash(dir)
	tpkg, err := cfg.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", dir, err)
	}
	return &Package{
		Path:  path,
		Rel:   filepath.ToSlash(dir),
		Dir:   dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// FindModuleRoot walks up from dir to the nearest directory holding a
// go.mod — the tree fleetvet analyzes.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod at or above %s", dir)
		}
		dir = parent
	}
}
