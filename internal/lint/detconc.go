package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Detconc flags concurrency inside the deterministic core: go
// statements, channel types and operations, select, and references to
// the sync / sync/atomic packages. One simulation run must be a single
// sequential event loop — the byte-identical-across-GOMAXPROCS golden
// contract holds because parallelism exists only *between* runs. The
// sole sanctioned exception today is sweep.go's worker pool, which
// parallelizes across already-independent scenarios and carries
// //fleetvet:allow annotations at each site.
var Detconc = &Analyzer{
	Name:  "detconc",
	Doc:   "no goroutines, channels, select or sync primitives inside the deterministic core",
	Scope: "internal/fleet",
	Run:   runDetconc,
}

func runDetconc(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				p.Reportf(n.Pos(), "go statement in the deterministic core: one run is one sequential event loop")
			case *ast.SendStmt:
				p.Reportf(n.Pos(), "channel send in the deterministic core")
			case *ast.SelectStmt:
				p.Reportf(n.Pos(), "select in the deterministic core")
			case *ast.ChanType:
				p.Reportf(n.Pos(), "channel type in the deterministic core")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					p.Reportf(n.Pos(), "channel receive in the deterministic core")
				}
			case *ast.RangeStmt:
				if t := p.Info.TypeOf(n.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						p.Reportf(n.Pos(), "range over channel in the deterministic core")
					}
				}
			case *ast.SelectorExpr:
				if obj, path, ok := p.PkgFunc(n); ok && (path == "sync" || path == "sync/atomic") {
					p.Reportf(n.Pos(), "%s primitive %s.%s in the deterministic core: scheduling order would leak into results",
						path, n.X.(*ast.Ident).Name, obj.Name())
				}
			}
			return true
		})
	}
}
