package lint

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// runTestdata loads testdata/src/<name> as one package, runs the single
// analyzer over it, and diffs the diagnostics against the `// want`
// comments in the sources: a comment `// want "re"` (several quoted
// regexps allowed per comment) on a line asserts one matching
// diagnostic at that line, and any line without one asserts silence.
func runTestdata(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("loading testdata package %s: %v", name, err)
	}
	diags := RunPackage(pkg, []*Analyzer{a})

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{filepath.Base(pos.Filename), pos.Line}
				for _, pat := range splitQuoted(t, pos.String(), rest) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	for _, d := range diags {
		k := key{filepath.Base(d.Pos.Filename), d.Pos.Line}
		matched := -1
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
		if len(wants[k]) == 0 {
			delete(wants, k)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
		}
	}
}

// splitQuoted extracts the double-quoted segments of a want comment.
func splitQuoted(t *testing.T, pos, s string) []string {
	t.Helper()
	var pats []string
	for {
		start := strings.IndexByte(s, '"')
		if start < 0 {
			break
		}
		s = s[start+1:]
		end := strings.IndexByte(s, '"')
		if end < 0 {
			t.Fatalf("%s: unterminated quote in want comment", pos)
		}
		pats = append(pats, s[:end])
		s = s[end+1:]
	}
	if len(pats) == 0 {
		t.Fatalf("%s: want comment with no quoted regexp", pos)
	}
	return pats
}

// countFuncs is a trivial Run helper for framework-level tests: an
// analyzer that reports every function declaration.
func reportAllFuncs(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				p.Reportf(fd.Pos(), "func %s", fd.Name.Name)
			}
		}
	}
}

// TestBareAllowIsDiagnosed: a //fleetvet:allow with no reason is itself
// reported, and — being a framework diagnostic — cannot be suppressed,
// while it still does NOT suppress the rule diagnostic on its line.
func TestBareAllowIsDiagnosed(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "allowbare"))
	if err != nil {
		t.Fatal(err)
	}
	probe := &Analyzer{Name: "probe", Doc: "test probe", Scope: "", Run: reportAllFuncs}
	diags := RunPackage(pkg, []*Analyzer{probe})

	var got []string
	for _, d := range diags {
		got = append(got, fmt.Sprintf("%s:%d", d.Analyzer, d.Pos.Line))
	}
	// Expect: the framework diagnostic for the bare allow, plus the probe
	// diagnostic it failed to suppress, plus the probe diagnostic on the
	// unannotated function. The reasoned allow on the third function
	// suppresses its probe diagnostic.
	want := map[string]bool{}
	for _, d := range diags {
		want[d.Analyzer] = true
	}
	if len(diags) != 3 || !want["fleetvet"] || !want["probe"] {
		t.Fatalf("got diagnostics %v, want one fleetvet bare-allow report and two unsuppressed probe reports", got)
	}
	for _, d := range diags {
		if d.Analyzer == "fleetvet" && !strings.Contains(d.Message, "needs a reason") {
			t.Errorf("bare allow diagnostic has message %q", d.Message)
		}
	}
}

// TestAnalyzerScopes pins which subtrees each rule guards.
func TestAnalyzerScopes(t *testing.T) {
	cases := []struct {
		a    *Analyzer
		rel  string
		want bool
	}{
		{Detmap, "internal/fleet", true},
		{Detmap, "internal/fleet/fl", true},
		{Detmap, "internal/fleetother", false},
		{Detmap, "cmd/camsim", false},
		{Detsource, "internal/fleet/fl", true},
		{Detconc, "internal/fleet", true},
		{Floatsum, "internal/fleet/fl", true},
		{Scenariocopy, "internal/fleet", true},
		{Scenariocopy, "internal/fleet/fl", false}, // RootOnly
		{Scenariocopy, "", false},
	}
	for _, c := range cases {
		if got := c.a.AppliesTo(c.rel); got != c.want {
			t.Errorf("%s.AppliesTo(%q) = %v, want %v", c.a.Name, c.rel, got, c.want)
		}
	}
}

// TestAllAnalyzersDocumented: every analyzer has a name, doc line, scope
// and run function — the listing contract.
func TestAllAnalyzersDocumented(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc, or run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %s", a.Name)
		}
		seen[a.Name] = true
		if a.Scope != "internal/fleet" {
			t.Errorf("analyzer %s guards %q; the suite guards the deterministic core", a.Name, a.Scope)
		}
	}
	if len(seen) != 5 {
		t.Errorf("All() returned %d analyzers, want 5", len(seen))
	}
}
