// Package floatsum exercises the floatsum rule: floating-point
// accumulation in map-range loops depends on iteration order.
package floatsum

import "sort"

// plusEquals folds floats in map order.
func plusEquals(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want "floating-point \+= of total inside a map-range loop"
	}
	return total
}

// rewritten hides the fold behind a plain assignment.
func rewritten(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want "floating-point accumulation of total inside a map-range loop"
	}
	return total
}

// intFold accumulates integers: exact, commutative, not flagged by this
// rule (detmap still owns the loop itself).
func intFold(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// sliceFold folds floats over a slice: order is the slice order,
// deterministic, not flagged.
func sliceFold(xs []float64) float64 {
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total
}

// sortedFold is the fix the rule's message prescribes: collect, sort,
// then fold in deterministic order.
func sortedFold(m map[string]float64) float64 {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0.0
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// annotated carries a reasoned allow on the accumulation line.
func annotated(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v //fleetvet:allow diagnostic-only counter; never compared against a golden
	}
	return total
}
