// Package detconc exercises the detconc rule: no goroutines, channels,
// select or sync primitives in the deterministic core.
package detconc

import "sync"

// spawn starts a goroutine and feeds it through a channel.
func spawn(n int) {
	ch := make(chan int) // want "channel type in the deterministic core"
	go func() {          // want "go statement in the deterministic core"
		for range ch { // want "range over channel in the deterministic core"
		}
	}()
	ch <- n // want "channel send in the deterministic core"
	close(ch)
}

// receive pulls from a channel parameter; the parameter's own channel
// type is flagged too.
func receive(ch chan int) int { // want "channel type in the deterministic core"
	return <-ch // want "channel receive in the deterministic core"
}

// locked reaches for a sync primitive.
func locked() {
	var mu sync.Mutex // want "sync primitive sync.Mutex"
	mu.Lock()
	defer mu.Unlock()
}

// choose multiplexes over channels.
func choose(a, b chan int) int { // want "channel type in the deterministic core"
	select { // want "select in the deterministic core"
	case v := <-a: // want "channel receive in the deterministic core"
		return v
	case v := <-b: // want "channel receive in the deterministic core"
		return v
	}
}

// sequential is the shape the core is made of: nothing to flag.
func sequential(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// annotatedPool mirrors sweep.go's sanctioned sites: reasoned allows
// silence every diagnostic.
func annotatedPool(n int) {
	done := make(chan bool) //fleetvet:allow completion signal only; no simulation state crosses it
	//fleetvet:allow parallelism between independent units, not within a run
	go func() {
		done <- true //fleetvet:allow completion signal only
	}()
	<-done //fleetvet:allow completion signal only
	_ = n
}
