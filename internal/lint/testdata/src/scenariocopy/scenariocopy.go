// Package scenariocopy exercises the scenariocopy rule over a Scenario
// type graph seeded with every violation class.
package scenariocopy

// Scenario is the guarded root type.
type Scenario struct {
	Name     string         `json:"name"`
	Seed     uint64         `json:"seed"`
	hidden   int            // want "unexported field Scenario.hidden"
	NoTag    int            // want "field Scenario.NoTag has no json tag"
	Skipped  int            `json:"-"`       // want "field Scenario.Skipped is excluded from JSON"
	Notify   chan int       `json:"notify"`  // want "field Scenario.Notify contains a channel"
	Hook     func() error   `json:"hook"`    // want "field Scenario.Hook contains a func"
	Payload  any            `json:"payload"` // want "field Scenario.Payload contains an interface"
	Sections []Section      `json:"sections"`
	Extra    *Extra         `json:"extra,omitempty"`
	Counts   map[string]int `json:"counts"`
	Loose    any            `json:"loose"` //fleetvet:allow scratch field under migration; excluded from every golden
}

// Section is reachable through a slice: its fields are checked too.
type Section struct {
	Label string `json:"label"`
	debug bool   // want "unexported field Section.debug"
	Items []Item `json:"items"`
}

// Item is fully clean: nothing wanted here.
type Item struct {
	ID    int     `json:"id"`
	Value float64 `json:"value"`
}

// Extra is reached through a pointer; arrays of plain data are fine.
type Extra struct {
	Weights [4]float64 `json:"weights"`
}
