// Package detmap exercises the detmap rule: range over a map must be
// collect-then-sort, annotated, or flagged.
package detmap

import (
	"sort"
	"strings"
)

// bad observes map iteration order directly.
func bad(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want "iteration order is randomized per run"
		b.WriteString(k)
	}
	return b.String()
}

// collectThenSort is the blessed shape: append-only body, sorted after.
func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// collectThenSortSlice sorts through sort.Slice instead of sort.Strings.
func collectThenSortSlice(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// collectUnsorted collects but never sorts: the slice holds map order.
func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want "never sorts it"
		keys = append(keys, k)
	}
	return keys
}

// annotated carries a reasoned allow and is silenced.
func annotated(m map[string]int) int {
	n := 0
	//fleetvet:allow order-insensitive count; the body only increments
	for range m {
		n++
	}
	return n
}

// sliceRange is out of the rule's jurisdiction entirely.
func sliceRange(xs []string) string {
	var b strings.Builder
	for _, x := range xs {
		b.WriteString(x)
	}
	return b.String()
}

// sortedBefore collects into a slice sorted only BEFORE the loop: the
// post-loop order is still map order, so the rule fires.
func sortedBefore(m map[string]int) []string {
	keys := []string{"seed"}
	sort.Strings(keys)
	for k := range m { // want "never sorts it"
		keys = append(keys, k)
	}
	return keys
}
