// Package allowbare exercises the annotation framework itself: a bare
// //fleetvet:allow is a diagnostic and suppresses nothing; a reasoned
// one suppresses the line it covers.
package allowbare

func one() {} //fleetvet:allow

func two() {}

//fleetvet:allow covered by the integration suite; probe noise only
func three() {}
