package detsource

import "math/rand"

// newStream lives in prng.go, the one file sanctioned to build
// generators; detsource must stay silent here.
func newStream(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
