// Package detsource exercises the detsource rule: wall-clock reads and
// math/rand use outside prng.go are flagged; types and the exempt file
// are not.
package detsource

import (
	"math/rand"
	"time"
)

// clockRead draws from the host clock.
func clockRead() int64 {
	t := time.Now() // want "wall-clock read time.Now"
	return t.Unix()
}

// clockDelta measures wall time.
func clockDelta(start time.Time) time.Duration {
	return time.Since(start) // want "wall-clock read time.Since"
}

// globalDraw pulls from the process-global stream.
func globalDraw() float64 {
	return rand.Float64() // want "global math/rand draw rand.Float64"
}

// freshGenerator builds a second PRNG family: two diagnostics on one
// line, the constructor and the source constructor.
func freshGenerator() *rand.Rand {
	return rand.New(rand.NewSource(1)) // want "rand.New outside prng.go" "rand.NewSource outside prng.go"
}

// typeReference names math/rand types without drawing: inert.
func typeReference(src rand.Source64) rand.Source {
	return src
}

// durationArith uses time the deterministic way: constants and
// arithmetic, no clock.
func durationArith(d time.Duration) time.Duration {
	return d + 5*time.Second
}

// annotated carries a reasoned allow and is silenced.
func annotated() float64 {
	return rand.Float64() //fleetvet:allow test fixture jitter outside any golden path
}
