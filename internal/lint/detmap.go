package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Detmap flags `range` over a map inside the deterministic core. Go
// randomizes map iteration order per run, so any map range whose body
// can observe the order — appending to output, accumulating floats,
// starting transfers — makes a seeded run diverge. The one shape the
// rule recognizes as order-insensitive by construction is key/value
// collection: a body consisting solely of append statements whose
// targets are all passed to a sort call later in the same function.
// Anything else needs an explicit //fleetvet:allow <reason>.
var Detmap = &Analyzer{
	Name:  "detmap",
	Doc:   "range over a map in the deterministic core must collect-and-sort or carry an allow annotation",
	Scope: "internal/fleet",
	Run:   runDetmap,
}

func runDetmap(p *Pass) {
	for _, f := range p.Files {
		eachFuncBody(f, func(body *ast.BlockStmt) {
			inspectShallow(body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok || !isMapType(p.Info, rng.X) {
					return true
				}
				targets := collectTargets(rng.Body)
				if targets == nil {
					p.Reportf(rng.Pos(), "range over map %s: iteration order is randomized per run; collect the keys and sort, or annotate %s <reason>",
						types.ExprString(rng.X), AllowDirective)
					return true
				}
				for name := range targets {
					if !sortedAfter(p, body, rng.End(), name) {
						p.Reportf(rng.Pos(), "range over map %s collects into %q but never sorts it: the collected order is the randomized map order",
							types.ExprString(rng.X), name)
						break
					}
				}
				return true
			})
		})
	}
}

// collectTargets reports whether the loop body is pure key/value
// collection — every statement an append into a local slice — and
// returns the target names. nil means the body does something else.
// Map order reaches the targets, so they must be sorted before use.
func collectTargets(body *ast.BlockStmt) map[string]bool {
	targets := make(map[string]bool)
	for _, stmt := range body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return nil
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return nil
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return nil
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" {
			return nil
		}
		arg0, ok := call.Args[0].(*ast.Ident)
		if !ok || arg0.Name != lhs.Name {
			return nil
		}
		targets[lhs.Name] = true
	}
	if len(targets) == 0 {
		return nil
	}
	return targets
}

// sortedAfter reports whether, past pos, the enclosing function body
// passes the named variable to a sort.* or slices.* call — the "then
// sorted" half of the collect-then-sort exemption.
func sortedAfter(p *Pass, body *ast.BlockStmt, pos token.Pos, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		_, path, ok := p.PkgFunc(sel)
		if !ok || (path != "sort" && path != "slices") {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && id.Name == name {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
