package lint

import (
	"go/types"
	"reflect"
)

// Scenariocopy guards the Scenario type graph: every field of Scenario
// and every struct reachable from it (nested sections, slices of
// sections, pointered sections — fl.Config included) must be exported,
// carry a json tag, and be built from plain data kinds. Three repo
// invariants lean on that shape at once: the strict JSON decode and
// marshal/re-parse round trip, reflect.DeepEqual in the Normalize
// idempotency check, and the reflection-based deep copy the fuzz
// harness clones scenarios with (an unexported field cannot be set by
// reflection; a chan, func or interface field cannot be cloned or
// serialized at all). PRs 6 and 7 each had to remember the old
// hand-maintained deep copy by hand — this rule plus the reflective
// copy make forgetting impossible.
var Scenariocopy = &Analyzer{
	Name:     "scenariocopy",
	Doc:      "every Scenario field must be exported, json-tagged, plain data — deep-copyable by reflection",
	Scope:    "internal/fleet",
	RootOnly: true,
	Run:      runScenariocopy,
}

// scenarioTypeName is the root of the guarded type graph.
const scenarioTypeName = "Scenario"

func runScenariocopy(p *Pass) {
	obj := p.Pkg.Scope().Lookup(scenarioTypeName)
	if obj == nil {
		p.Reportf(p.Files[0].Name.Pos(), "package %s declares no %s type to guard", p.Pkg.Name(), scenarioTypeName)
		return
	}
	named, ok := types.Unalias(obj.Type()).(*types.Named)
	if !ok {
		p.Reportf(obj.Pos(), "%s is not a named type", scenarioTypeName)
		return
	}
	w := &copyWalker{p: p, seen: make(map[*types.Named]bool)}
	w.walkStruct(named)
}

// copyWalker traverses the Scenario struct graph once per named type.
type copyWalker struct {
	p    *Pass
	seen map[*types.Named]bool
}

func (w *copyWalker) walkStruct(named *types.Named) {
	if w.seen[named] {
		return
	}
	w.seen[named] = true
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	owner := named.Obj().Name()
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			w.p.Reportf(f.Pos(), "unexported field %s.%s: the reflection deep copy cannot set it and DeepEqual comparisons silently include it",
				owner, f.Name())
			continue
		}
		switch tag := reflect.StructTag(st.Tag(i)).Get("json"); tag {
		case "":
			w.p.Reportf(f.Pos(), "field %s.%s has no json tag: scenario sections must survive the strict decode / re-marshal round trip under a stable name",
				owner, f.Name())
		case "-":
			w.p.Reportf(f.Pos(), "field %s.%s is excluded from JSON: a section the round trip drops is a section the goldens cannot pin",
				owner, f.Name())
		}
		w.walkType(f, owner, f.Type())
	}
}

// walkType recurses through a field's type, reporting kinds the
// reflection copy and the JSON round trip cannot handle, and descending
// into reachable named structs.
func (w *copyWalker) walkType(f *types.Var, owner string, t types.Type) {
	switch tt := types.Unalias(t).(type) {
	case *types.Named:
		if _, isStruct := tt.Underlying().(*types.Struct); isStruct {
			w.walkStruct(tt)
			return
		}
		w.walkType(f, owner, tt.Underlying())
	case *types.Pointer:
		w.walkType(f, owner, tt.Elem())
	case *types.Slice:
		w.walkType(f, owner, tt.Elem())
	case *types.Array:
		w.walkType(f, owner, tt.Elem())
	case *types.Map:
		w.walkType(f, owner, tt.Key())
		w.walkType(f, owner, tt.Elem())
	case *types.Struct:
		// An anonymous struct type: check its fields in place against the
		// same rules (no named type to recurse into).
		for i := 0; i < tt.NumFields(); i++ {
			sf := tt.Field(i)
			if !sf.Exported() {
				w.p.Reportf(f.Pos(), "unexported field %s in the anonymous struct under %s.%s", sf.Name(), owner, f.Name())
				continue
			}
			w.walkType(sf, owner+"."+f.Name(), sf.Type())
		}
	case *types.Chan:
		w.p.Reportf(f.Pos(), "field %s.%s contains a channel: not serializable, not deep-copyable", owner, f.Name())
	case *types.Signature:
		w.p.Reportf(f.Pos(), "field %s.%s contains a func: not serializable, not deep-copyable", owner, f.Name())
	case *types.Interface:
		w.p.Reportf(f.Pos(), "field %s.%s contains an interface: the concrete type is invisible to the round trip and the deep copy", owner, f.Name())
	}
}
