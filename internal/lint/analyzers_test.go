package lint

import "testing"

func TestDetmap(t *testing.T)       { runTestdata(t, Detmap, "detmap") }
func TestDetsource(t *testing.T)    { runTestdata(t, Detsource, "detsource") }
func TestDetconc(t *testing.T)      { runTestdata(t, Detconc, "detconc") }
func TestFloatsum(t *testing.T)     { runTestdata(t, Floatsum, "floatsum") }
func TestScenariocopy(t *testing.T) { runTestdata(t, Scenariocopy, "scenariocopy") }
