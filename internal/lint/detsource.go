package lint

import (
	"go/ast"
	"go/types"
)

// Detsource flags nondeterministic value sources inside the simulation
// packages: wall-clock reads (time.Now, time.Since) and any use of
// math/rand — the shared global stream's top-level draw functions and
// the rand.New/rand.NewSource constructors alike. Every seeded draw in
// the deterministic core must flow through the value-embedded splitmix64
// prng, whose streams are pinned by reference vectors; prng.go itself,
// the one sanctioned home of that stream (it implements rand.Source64),
// is exempt. Referring to math/rand *types* (interfaces like
// rand.Source64) is fine anywhere — only calls draw values.
var Detsource = &Analyzer{
	Name:  "detsource",
	Doc:   "seeded draws must come from the value-embedded prng, never the clock or math/rand",
	Scope: "internal/fleet",
	Run:   runDetsource,
}

// detsourceExemptFile is the one file allowed to touch math/rand: the
// prng implementation itself.
const detsourceExemptFile = "prng.go"

// randConstructors are the math/rand entry points that make new seeded
// generators — forbidden because a second PRNG family means a second
// stream to pin, migrate and regenerate goldens for.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDetsource(p *Pass) {
	for _, f := range p.Files {
		if p.Filename(f.Pos()) == detsourceExemptFile {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, path, ok := p.PkgFunc(sel)
			if !ok {
				return true
			}
			if _, isFunc := obj.(*types.Func); !isFunc {
				return true // types and constants are inert
			}
			switch path {
			case "time":
				if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" {
					p.Reportf(sel.Pos(), "wall-clock read time.%s: simulated time comes from the event loop, never the host clock",
						sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				if randConstructors[sel.Sel.Name] {
					p.Reportf(sel.Pos(), "rand.%s outside %s: seeded draws must flow through the value-embedded splitmix64 prng",
						sel.Sel.Name, detsourceExemptFile)
				} else {
					p.Reportf(sel.Pos(), "global math/rand draw rand.%s: the shared stream is seeded per process, not per scenario",
						sel.Sel.Name)
				}
			}
			return true
		})
	}
}
