package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Floatsum flags floating-point accumulation inside a map-range loop:
// `sum += v` or `sum = sum + v` where sum is a float and the loop ranges
// over a map. Float addition is not associative, so a total folded in
// randomized map order differs in the last bits from run to run — the
// exact kind of drift that shifts a golden three PRs after the loop
// landed. Integer accumulation commutes exactly and is not flagged
// (detmap still governs the loop itself). Fix by collecting and sorting
// before summing, or annotate //fleetvet:allow with the bound argument.
var Floatsum = &Analyzer{
	Name:  "floatsum",
	Doc:   "no floating-point accumulation in map-range loops: the rounded total depends on iteration order",
	Scope: "internal/fleet",
	Run:   runFloatsum,
}

func runFloatsum(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok || !isMapType(p.Info, rng.X) {
				return true
			}
			inspectShallow(rng.Body, func(b ast.Node) bool {
				as, ok := b.(*ast.AssignStmt)
				if !ok {
					return true
				}
				switch {
				case as.Tok == token.ADD_ASSIGN && isFloatType(p.Info, as.Lhs[0]):
					p.Reportf(as.Pos(), "floating-point += of %s inside a map-range loop: the rounded sum depends on randomized iteration order",
						types.ExprString(as.Lhs[0]))
				case as.Tok == token.ASSIGN && len(as.Lhs) == 1 && len(as.Rhs) == 1 &&
					isFloatType(p.Info, as.Lhs[0]) && readdsLhs(as):
					p.Reportf(as.Pos(), "floating-point accumulation of %s inside a map-range loop: the rounded sum depends on randomized iteration order",
						types.ExprString(as.Lhs[0]))
				}
				return true
			})
			return true
		})
	}
}

// readdsLhs reports whether a plain assignment is self-accumulation in
// disguise: x = x + ... (or ... + x).
func readdsLhs(as *ast.AssignStmt) bool {
	bin, ok := as.Rhs[0].(*ast.BinaryExpr)
	if !ok || bin.Op != token.ADD {
		return false
	}
	lhs := types.ExprString(as.Lhs[0])
	return types.ExprString(bin.X) == lhs || types.ExprString(bin.Y) == lhs
}
