package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one determinism-invariant rule: a name, a scope (which
// module-relative package paths it guards), and a Run over one package.
type Analyzer struct {
	Name string
	// Doc is the one-line rule statement shown in listings.
	Doc string
	// Scope is the module-relative import-path prefix the rule guards:
	// "internal/fleet" covers that package and its whole subtree.
	Scope string
	// RootOnly restricts the rule to exactly Scope, excluding
	// subpackages (scenariocopy inspects one specific type).
	RootOnly bool
	Run      func(*Pass)
}

// AppliesTo reports whether the analyzer guards the module-relative
// package path.
func (a *Analyzer) AppliesTo(rel string) bool {
	if rel == a.Scope {
		return true
	}
	if a.RootOnly {
		return false
	}
	return strings.HasPrefix(rel, a.Scope+"/")
}

// All returns the fleetvet analyzer suite, in fixed order.
func All() []*Analyzer {
	return []*Analyzer{Detmap, Detsource, Detconc, Floatsum, Scenariocopy}
}

// A Pass is one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	report   func(Diagnostic)
}

// Reportf records one diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Filename returns the base name of the file holding pos — the hook for
// per-file exemptions like detsource's prng.go carve-out.
func (p *Pass) Filename(pos token.Pos) string {
	full := p.Fset.Position(pos).Filename
	if i := strings.LastIndexByte(full, '/'); i >= 0 {
		return full[i+1:]
	}
	return full
}

// PkgFunc resolves a selector to a package-level object: the *types.Func
// (or other object) behind pkg.Name when X names an imported package,
// plus that package's import path. ok is false for ordinary field and
// method selections.
func (p *Pass) PkgFunc(sel *ast.SelectorExpr) (obj types.Object, path string, ok bool) {
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return nil, "", false
	}
	pn, isPkg := p.Info.Uses[id].(*types.PkgName)
	if !isPkg {
		return nil, "", false
	}
	obj = p.Info.Uses[sel.Sel]
	if obj == nil {
		return nil, "", false
	}
	return obj, pn.Imported().Path(), true
}

// A Diagnostic is one rule violation at one source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// AllowDirective is the suppression annotation: a comment of the form
// //fleetvet:allow <reason> on — or immediately above — the offending
// line silences every diagnostic there. The reason is mandatory: an
// unexplained exemption is itself a diagnostic.
const AllowDirective = "//fleetvet:allow"

// allowSite is one annotation's location.
type allowSite struct {
	file string
	line int
}

// RunPackage executes the analyzers over the package, applies the allow
// annotations, and returns the surviving diagnostics sorted by position.
func RunPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			report:   func(d Diagnostic) { diags = append(diags, d) },
		}
		a.Run(pass)
	}

	allows := make(map[allowSite]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, AllowDirective)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if strings.TrimSpace(rest) == "" {
					diags = append(diags, Diagnostic{
						Pos:      pos,
						Analyzer: "fleetvet",
						Message:  "fleetvet:allow needs a reason: say why this site cannot perturb a seeded run",
					})
					continue
				}
				allows[allowSite{pos.Filename, pos.Line}] = true
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if d.Analyzer != "fleetvet" &&
			(allows[allowSite{d.Pos.Filename, d.Pos.Line}] || allows[allowSite{d.Pos.Filename, d.Pos.Line - 1}]) {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept
}

// eachFuncBody visits every function body in the file — declarations and
// literals — exactly once each.
func eachFuncBody(f *ast.File, visit func(body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				visit(n.Body)
			}
		case *ast.FuncLit:
			visit(n.Body)
		}
		return true
	})
}

// inspectShallow walks n but does not descend into nested function
// literals: their statements belong to the inner function's own visit.
func inspectShallow(n ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(n, func(c ast.Node) bool {
		if _, isLit := c.(*ast.FuncLit); isLit && c != n {
			return false
		}
		return visit(c)
	})
}

// isMapType reports whether the expression's type is a map.
func isMapType(info *types.Info, x ast.Expr) bool {
	t := info.TypeOf(x)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isFloatType reports whether the expression's type is a floating-point
// kind.
func isFloatType(info *types.Info, x ast.Expr) bool {
	t := info.TypeOf(x)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
