// Package synth generates the synthetic visual workloads that stand in for
// the paper's proprietary data: parametric face identities (replacing LFW),
// cluttered scenes, and security-camera video traces with person-arrival
// events (replacing the authors' collected video). Every generator is
// deterministic given its seed or *rand.Rand.
package synth

import "math"

// hash2 is a small integer hash mixing (x, y, seed) into [0, 1).
// It provides reproducible lattice noise without storing any tables.
func hash2(x, y int32, seed uint32) float32 {
	h := uint32(x)*0x8da6b343 + uint32(y)*0xd8163841 + seed*0xcb1ab31f
	h ^= h >> 13
	h *= 0x85ebca6b
	h ^= h >> 16
	return float32(h&0xffffff) / float32(0x1000000)
}

// valueNoise returns smoothly interpolated lattice noise at (x, y) in [0, 1).
func valueNoise(x, y float64, seed uint32) float32 {
	x0 := int32(math.Floor(x))
	y0 := int32(math.Floor(y))
	fx := x - float64(x0)
	fy := y - float64(y0)
	// Smoothstep fade.
	u := float32(fx * fx * (3 - 2*fx))
	v := float32(fy * fy * (3 - 2*fy))
	a := hash2(x0, y0, seed)
	b := hash2(x0+1, y0, seed)
	c := hash2(x0, y0+1, seed)
	d := hash2(x0+1, y0+1, seed)
	top := a + (b-a)*u
	bot := c + (d-c)*u
	return top + (bot-top)*v
}

// FractalNoise evaluates `octaves` octaves of value noise at (x, y) with
// base frequency freq (cycles per unit coordinate) and per-octave gain 0.5.
// The result is approximately in [0, 1].
func FractalNoise(x, y float64, freq float64, octaves int, seed uint32) float32 {
	var sum, amp, norm float32
	amp = 1
	f := freq
	for o := 0; o < octaves; o++ {
		sum += amp * valueNoise(x*f, y*f, seed+uint32(o)*0x9e3779b9)
		norm += amp
		amp *= 0.5
		f *= 2
	}
	if norm == 0 {
		return 0
	}
	return sum / norm
}
