package synth

import (
	"math/rand"

	"camsim/internal/img"
	"camsim/internal/quality"
)

// Sample is one labelled chip for classifier training or testing.
type Sample struct {
	Chip  *img.Gray
	Label bool // face-authentication: true iff this is the target person
}

// VerificationSet is a face-verification dataset in the style of the
// paper's LFW protocol: positives are views of a single target identity,
// negatives are views of other people. Hard controls capture variability.
type VerificationSet struct {
	Train, Test []Sample
}

// VerificationConfig parameterizes BuildVerificationSet.
type VerificationConfig struct {
	Size       int     // chip edge length (the NN input window, e.g. 20)
	Positives  int     // total positive samples
	Negatives  int     // total negative samples
	Impostors  int     // number of distinct non-target identities
	TrainFrac  float64 // fraction of samples used for training (paper: 0.9)
	Hard       bool    // LFW-style unconstrained captures vs easy security captures
	TargetSeed int64   // identity seed of the target person
}

// BuildVerificationSet renders a deterministic verification dataset.
func BuildVerificationSet(rng *rand.Rand, cfg VerificationConfig) VerificationSet {
	if cfg.TrainFrac <= 0 || cfg.TrainFrac >= 1 {
		cfg.TrainFrac = 0.9
	}
	target := IdentityFromSeed(cfg.TargetSeed)
	impostors := make([]Identity, cfg.Impostors)
	for i := range impostors {
		impostors[i] = NewIdentity(rng)
	}
	samples := make([]Sample, 0, cfg.Positives+cfg.Negatives)
	for i := 0; i < cfg.Positives; i++ {
		o := JitterRenderOpts(rng, cfg.Size, cfg.Hard)
		samples = append(samples, Sample{Chip: target.Render(o), Label: true})
	}
	for i := 0; i < cfg.Negatives; i++ {
		id := impostors[rng.Intn(len(impostors))]
		o := JitterRenderOpts(rng, cfg.Size, cfg.Hard)
		samples = append(samples, Sample{Chip: id.Render(o), Label: false})
	}
	rng.Shuffle(len(samples), func(i, j int) { samples[i], samples[j] = samples[j], samples[i] })
	cut := int(float64(len(samples)) * cfg.TrainFrac)
	return VerificationSet{Train: samples[:cut], Test: samples[cut:]}
}

// DetectionScene is one synthetic image with ground-truth face boxes,
// used to train and evaluate the Viola-Jones detector.
type DetectionScene struct {
	Image *img.Gray
	Faces []quality.Box
}

// SceneConfig parameterizes BuildDetectionScene.
type SceneConfig struct {
	W, H      int
	MaxFaces  int     // 0..MaxFaces faces per scene
	MinSize   int     // smallest face box edge
	MaxSize   int     // largest face box edge
	Clutter   int     // number of distractor shapes in the background
	NoiseSig  float64 // sensor noise σ
	ForceFace bool    // always place at least one face
}

// BuildDetectionScene renders a cluttered scene containing zero or more
// faces of varying sizes at non-overlapping positions.
func BuildDetectionScene(rng *rand.Rand, cfg SceneConfig) DetectionScene {
	if cfg.MinSize <= 0 {
		cfg.MinSize = 24
	}
	if cfg.MaxSize < cfg.MinSize {
		cfg.MaxSize = cfg.MinSize
	}
	g := img.NewGray(cfg.W, cfg.H)
	seed := rng.Uint32()
	sw := float64(cfg.W)
	for y := 0; y < cfg.H; y++ {
		for x := 0; x < cfg.W; x++ {
			g.Pix[y*cfg.W+x] = 0.2 + 0.45*FractalNoise(float64(x)/sw, float64(y)/sw, 2.5, 4, seed)
		}
	}
	// Background clutter.
	for k := 0; k < cfg.Clutter; k++ {
		switch rng.Intn(3) {
		case 0:
			img.FillRect(g, rng.Intn(cfg.W), rng.Intn(cfg.H),
				4+rng.Intn(cfg.W/4), 4+rng.Intn(cfg.H/4), float32(rng.Float64()))
		case 1:
			img.BlendEllipse(g, rng.Float64()*float64(cfg.W), rng.Float64()*float64(cfg.H),
				3+rng.Float64()*float64(cfg.W)/6, 3+rng.Float64()*float64(cfg.H)/6,
				float32(rng.Float64()), 0.8)
		default:
			img.DrawLine(g, rng.Intn(cfg.W), rng.Intn(cfg.H), rng.Intn(cfg.W), rng.Intn(cfg.H),
				float32(rng.Float64()))
		}
	}
	// Faces.
	n := rng.Intn(cfg.MaxFaces + 1)
	if cfg.ForceFace && n == 0 {
		n = 1
	}
	var boxes []quality.Box
	for k := 0; k < n; k++ {
		size := cfg.MinSize
		if cfg.MaxSize > cfg.MinSize {
			size += rng.Intn(cfg.MaxSize - cfg.MinSize)
		}
		if size > cfg.W || size > cfg.H {
			continue
		}
		// Try a few times to find a non-overlapping spot.
		for attempt := 0; attempt < 10; attempt++ {
			x := rng.Intn(cfg.W - size + 1)
			y := rng.Intn(cfg.H - size + 1)
			box := quality.Box{X: x, Y: y, W: size, H: size}
			overlaps := false
			for _, b := range boxes {
				if quality.IoU(box, b) > 0.05 {
					overlaps = true
					break
				}
			}
			if overlaps {
				continue
			}
			id := NewIdentity(rng)
			o := JitterRenderOpts(rng, size, false)
			o.Background = -2 // sentinel: blend onto the scene instead
			chip := id.Render(RenderOpts{
				Size: size, OffsetX: o.OffsetX, OffsetY: o.OffsetY, Scale: o.Scale,
				Tilt: o.Tilt, Gain: o.Gain, Bias: o.Bias, Background: 0.5, Seed: o.Seed,
			})
			// Paste the head region (central ellipse) onto the scene so the
			// chip's flat background doesn't create an artificial box edge.
			pasteFaceChip(g, chip, x, y)
			boxes = append(boxes, box)
			break
		}
	}
	if cfg.NoiseSig > 0 {
		for i := range g.Pix {
			g.Pix[i] += float32(cfg.NoiseSig * rng.NormFloat64())
		}
	}
	g.Clamp01()
	return DetectionScene{Image: g, Faces: boxes}
}

// pasteFaceChip blends the elliptical head region of chip into g at (x, y).
func pasteFaceChip(g, chip *img.Gray, x, y int) {
	s := float64(chip.W)
	cx, cy := s*0.5, s*0.52
	rx, ry := s*0.44*0.95, s*0.46
	for j := 0; j < chip.H; j++ {
		for i := 0; i < chip.W; i++ {
			dx := (float64(i) - cx) / rx
			dy := (float64(j) - cy) / ry
			d := dx*dx + dy*dy
			if d > 1.3 {
				continue
			}
			alpha := float32(1.0)
			if d > 1 {
				alpha = float32((1.3 - d) / 0.3)
			}
			gx, gy := x+i, y+j
			if !g.Bounds(gx, gy) {
				continue
			}
			p := g.At(gx, gy)
			g.Set(gx, gy, p*(1-alpha)+chip.At(i, j)*alpha)
		}
	}
}

// FaceChips renders n independent views of identity seeds drawn from rng,
// cropped tight for cascade training (positives).
func FaceChips(rng *rand.Rand, n, size int) []*img.Gray {
	out := make([]*img.Gray, n)
	for i := range out {
		id := NewIdentity(rng)
		o := JitterRenderOpts(rng, size, false)
		out[i] = id.Render(o)
	}
	return out
}

// NonFaceChips renders n distractor patches (negatives).
func NonFaceChips(rng *rand.Rand, n, size int) []*img.Gray {
	out := make([]*img.Gray, n)
	for i := range out {
		out[i] = NonFaceChip(rng, size)
	}
	return out
}
