package synth

import (
	"math"
	"math/rand"

	"camsim/internal/img"
	"camsim/internal/quality"
)

// VisitKind labels who appears in a security-camera visit event.
type VisitKind int

// Visit kinds: the enrolled target user, an unknown person, or a non-person
// motion disturbance (vegetation, lighting, animals).
const (
	VisitTarget VisitKind = iota
	VisitStranger
	VisitDisturbance
)

func (k VisitKind) String() string {
	switch k {
	case VisitTarget:
		return "target"
	case VisitStranger:
		return "stranger"
	case VisitDisturbance:
		return "disturbance"
	}
	return "unknown"
}

// Visit is one event in a security trace: a person (or disturbance) that
// enters the scene at StartFrame and stays for Duration frames, moving
// across the field of view.
type Visit struct {
	Kind       VisitKind
	Identity   Identity // valid for Target and Stranger
	StartFrame int
	Duration   int
	EntryX     float64 // path start, fraction of frame width
	ExitX      float64 // path end
	Y          float64 // vertical position, fraction of frame height
	FaceSize   int     // face box edge in pixels
}

// TraceConfig parameterizes a security-camera workload trace. The paper's
// deployment captures 1 frame per second on harvested energy; frames with
// no motion are the common case.
type TraceConfig struct {
	W, H         int
	Frames       int     // trace length in frames (1 FPS nominal)
	TargetSeed   int64   // identity of the enrolled user
	VisitRate    float64 // expected visits per 100 frames
	TargetFrac   float64 // fraction of person visits that are the target
	DisturbFrac  float64 // fraction of all visits that are non-person motion
	MeanDuration int     // mean visit length in frames
	NoiseSigma   float64 // per-frame sensor noise
	LightDrift   float64 // slow illumination drift amplitude
}

// DefaultTraceConfig returns the workload used by the E6 end-to-end
// evaluation: a day-scale trace at 1 FPS dominated by empty frames.
func DefaultTraceConfig(frames int) TraceConfig {
	return TraceConfig{
		W: 160, H: 120, Frames: frames,
		TargetSeed:   7,
		VisitRate:    2.0, // 2 visits per 100 frames
		TargetFrac:   0.5,
		DisturbFrac:  0.25,
		MeanDuration: 6,
		NoiseSigma:   0.008,
		LightDrift:   0.05,
	}
}

// Trace is a fully scheduled security-camera workload whose frames are
// rendered lazily and deterministically by Frame.
type Trace struct {
	Cfg        TraceConfig
	Target     Identity
	Visits     []Visit
	background *img.Gray
	seed       int64
}

// FrameTruth is the ground truth for one rendered frame.
type FrameTruth struct {
	Faces         []quality.Box // all visible face boxes
	TargetPresent bool          // true iff the enrolled user's face is visible
	Motion        bool          // true iff anything moved vs the static background
}

// NewTrace schedules visits for the whole trace deterministically from seed.
func NewTrace(seed int64, cfg TraceConfig) *Trace {
	rng := rand.New(rand.NewSource(seed))
	t := &Trace{Cfg: cfg, Target: IdentityFromSeed(cfg.TargetSeed), seed: seed}

	// Static background scene.
	bg := img.NewGray(cfg.W, cfg.H)
	s := float64(cfg.W)
	bgSeed := rng.Uint32()
	for y := 0; y < cfg.H; y++ {
		for x := 0; x < cfg.W; x++ {
			bg.Pix[y*cfg.W+x] = 0.2 + 0.4*FractalNoise(float64(x)/s, float64(y)/s, 2, 4, bgSeed)
		}
	}
	// A couple of fixed structures (door frame, window).
	img.FillRect(bg, cfg.W/8, cfg.H/6, cfg.W/5, 2*cfg.H/3, 0.35)
	img.DrawRectOutline(bg, cfg.W/8, cfg.H/6, cfg.W/5, 2*cfg.H/3, 0.15)
	img.FillRect(bg, 2*cfg.W/3, cfg.H/5, cfg.W/4, cfg.H/4, 0.7)
	t.background = bg

	// Schedule visits via a Bernoulli-per-frame arrival process.
	p := cfg.VisitRate / 100
	for f := 0; f < cfg.Frames; f++ {
		if rng.Float64() >= p {
			continue
		}
		dur := 1 + rng.Intn(2*cfg.MeanDuration)
		v := Visit{
			StartFrame: f,
			Duration:   dur,
			EntryX:     0.15 + 0.2*rng.Float64(),
			ExitX:      0.65 + 0.2*rng.Float64(),
			Y:          0.25 + 0.3*rng.Float64(),
			FaceSize:   cfg.H/4 + rng.Intn(cfg.H/6),
		}
		if rng.Float64() < cfg.DisturbFrac {
			v.Kind = VisitDisturbance
		} else if rng.Float64() < cfg.TargetFrac {
			v.Kind = VisitTarget
			v.Identity = t.Target
		} else {
			v.Kind = VisitStranger
			v.Identity = NewIdentity(rng)
		}
		t.Visits = append(t.Visits, v)
	}
	return t
}

// activeVisits returns the visits visible in frame f.
func (t *Trace) activeVisits(f int) []Visit {
	var out []Visit
	for _, v := range t.Visits {
		if f >= v.StartFrame && f < v.StartFrame+v.Duration {
			out = append(out, v)
		}
	}
	return out
}

// Frame renders frame f and its ground truth. Rendering is deterministic:
// the same (trace, f) always produces the same pixels.
func (t *Trace) Frame(f int) (*img.Gray, FrameTruth) {
	cfg := t.Cfg
	g := t.background.Clone()
	var truth FrameTruth

	frameRng := rand.New(rand.NewSource(t.seed ^ int64(uint64(f)*0x9e3779b97f4a7c15)))

	for _, v := range t.activeVisits(f) {
		progress := float64(f-v.StartFrame) / math.Max(1, float64(v.Duration-1))
		x := v.EntryX + (v.ExitX-v.EntryX)*progress
		px := int(x*float64(cfg.W)) - v.FaceSize/2
		py := int(v.Y*float64(cfg.H)) - v.FaceSize/2
		truth.Motion = true
		switch v.Kind {
		case VisitDisturbance:
			// A moving dark blob with no facial structure.
			img.BlendEllipse(g, x*float64(cfg.W), v.Y*float64(cfg.H),
				float64(v.FaceSize)*0.5, float64(v.FaceSize)*0.6, 0.25, 0.8)
		default:
			o := JitterRenderOpts(frameRng, v.FaceSize, false)
			o.Background = 0.5
			chip := v.Identity.Render(o)
			pasteFaceChip(g, chip, px, py)
			// Torso below the face.
			img.BlendEllipse(g, x*float64(cfg.W), v.Y*float64(cfg.H)+float64(v.FaceSize)*1.1,
				float64(v.FaceSize)*0.7, float64(v.FaceSize)*0.9, 0.3, 0.9)
			truth.Faces = append(truth.Faces, quality.Box{X: px, Y: py, W: v.FaceSize, H: v.FaceSize})
			if v.Kind == VisitTarget {
				truth.TargetPresent = true
			}
		}
	}

	// Slow illumination drift plus per-frame sensor noise.
	drift := float32(cfg.LightDrift * math.Sin(2*math.Pi*float64(f)/math.Max(120, float64(cfg.Frames))))
	for i := range g.Pix {
		g.Pix[i] += drift + float32(cfg.NoiseSigma*frameRng.NormFloat64())
	}
	g.Clamp01()
	return g, truth
}

// Stats summarizes a trace's ground truth composition.
type TraceStats struct {
	Frames, MotionFrames, FaceFrames, TargetFrames int
}

// Stats renders nothing; it walks the schedule to count per-frame truth.
func (t *Trace) Stats() TraceStats {
	st := TraceStats{Frames: t.Cfg.Frames}
	for f := 0; f < t.Cfg.Frames; f++ {
		vs := t.activeVisits(f)
		if len(vs) == 0 {
			continue
		}
		st.MotionFrames++
		face, target := false, false
		for _, v := range vs {
			if v.Kind != VisitDisturbance {
				face = true
			}
			if v.Kind == VisitTarget {
				target = true
			}
		}
		if face {
			st.FaceFrames++
		}
		if target {
			st.TargetFrames++
		}
	}
	return st
}
