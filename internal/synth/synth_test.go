package synth

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"camsim/internal/quality"
)

func TestFractalNoiseRangeAndDeterminism(t *testing.T) {
	for i := 0; i < 500; i++ {
		x := float64(i) * 0.173
		y := float64(i) * 0.311
		v := FractalNoise(x, y, 3, 4, 12345)
		if v < 0 || v > 1 {
			t.Fatalf("noise out of range at (%v,%v): %v", x, y, v)
		}
		if v2 := FractalNoise(x, y, 3, 4, 12345); v2 != v {
			t.Fatal("noise not deterministic")
		}
	}
}

func TestFractalNoiseSeedChangesField(t *testing.T) {
	var diff int
	for i := 0; i < 100; i++ {
		x, y := float64(i)*0.37, float64(i)*0.59
		if FractalNoise(x, y, 3, 3, 1) != FractalNoise(x, y, 3, 3, 2) {
			diff++
		}
	}
	if diff < 90 {
		t.Fatalf("seeds 1 and 2 agree on %d/100 points", 100-diff)
	}
}

func TestFractalNoiseSmooth(t *testing.T) {
	// Neighbouring samples should be highly correlated (not white noise).
	var sumD float64
	n := 200
	for i := 0; i < n; i++ {
		x, y := float64(i)*0.31, float64(i)*0.17
		a := FractalNoise(x, y, 2, 3, 9)
		b := FractalNoise(x+0.01, y, 2, 3, 9)
		sumD += math.Abs(float64(a - b))
	}
	if avg := sumD / float64(n); avg > 0.05 {
		t.Fatalf("noise too rough: mean step %v", avg)
	}
}

func TestIdentityDeterministicFromSeed(t *testing.T) {
	a := IdentityFromSeed(42)
	b := IdentityFromSeed(42)
	if a != b {
		t.Fatal("IdentityFromSeed not deterministic")
	}
	c := IdentityFromSeed(43)
	if a == c {
		t.Fatal("different seeds gave identical identities")
	}
}

func TestIdentityParamsInRange(t *testing.T) {
	f := func(seed int64) bool {
		id := IdentityFromSeed(seed)
		return id.HeadAspect >= 0.72 && id.HeadAspect <= 0.92 &&
			id.EyeSpacing >= 0.30 && id.EyeSpacing <= 0.44 &&
			id.SkinTone >= 0.55 && id.SkinTone <= 0.8 &&
			id.MouthHeight >= 0.74 && id.MouthHeight <= 0.84
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRenderDeterministic(t *testing.T) {
	id := IdentityFromSeed(1)
	o := DefaultRenderOpts(32)
	o.Seed = 77
	a := id.Render(o)
	b := id.Render(o)
	if a.MeanAbsDiff(b) != 0 {
		t.Fatal("Render not deterministic for identical options")
	}
}

func TestRenderSizeAndRange(t *testing.T) {
	id := IdentityFromSeed(2)
	g := id.Render(DefaultRenderOpts(48))
	if g.W != 48 || g.H != 48 {
		t.Fatalf("render size %dx%d", g.W, g.H)
	}
	min, max := g.MinMax()
	if min < 0 || max > 1 {
		t.Fatalf("render range [%v, %v]", min, max)
	}
	if max-min < 0.2 {
		t.Fatal("render has almost no contrast; face features missing?")
	}
}

func TestRenderZeroSizeDefaults(t *testing.T) {
	g := IdentityFromSeed(3).Render(RenderOpts{})
	if g.W != 32 {
		t.Fatalf("zero-size render width %d, want default 32", g.W)
	}
}

func TestRenderFaceHasFacialStructure(t *testing.T) {
	// Eyes should be darker than the cheek region directly below them —
	// the key Haar-like contrast Viola-Jones exploits.
	id := IdentityFromSeed(4)
	o := DefaultRenderOpts(64)
	o.Background = 0.5
	g := id.Render(o)
	eyeY := int(64 * (0.52 + (id.EyeHeight-0.52)*0.88))
	eyeDX := int(id.EyeSpacing * 64 * 0.44 * id.HeadAspect * 2 * 0.5)
	cheekY := eyeY + 10
	var eyeSum, cheekSum float32
	for _, side := range []int{-1, 1} {
		x := 32 + side*eyeDX
		eyeSum += g.AtClamped(x, eyeY)
		cheekSum += g.AtClamped(x, cheekY)
	}
	if eyeSum >= cheekSum {
		t.Fatalf("eye region (%v) not darker than cheeks (%v)", eyeSum/2, cheekSum/2)
	}
}

func TestSamePersonMoreSimilarThanStrangers(t *testing.T) {
	// Two renders of the same identity should differ less than renders of
	// different identities, averaged over several trials.
	rng := rand.New(rand.NewSource(11))
	var same, diff float64
	const trials = 20
	for i := 0; i < trials; i++ {
		id1 := NewIdentity(rng)
		id2 := NewIdentity(rng)
		oA := JitterRenderOpts(rng, 32, false)
		oB := JitterRenderOpts(rng, 32, false)
		oA.Background = 0.5
		oB.Background = 0.5
		same += id1.Render(oA).MeanAbsDiff(id1.Render(oB))
		diff += id1.Render(oA).MeanAbsDiff(id2.Render(oB))
	}
	if same >= diff {
		t.Fatalf("same-person distance %v >= cross-person %v", same/trials, diff/trials)
	}
}

func TestNonFaceChipProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 16; i++ {
		c := NonFaceChip(rng, 24)
		if c.W != 24 || c.H != 24 {
			t.Fatalf("chip size %dx%d", c.W, c.H)
		}
		min, max := c.MinMax()
		if min < 0 || max > 1 {
			t.Fatalf("chip range [%v, %v]", min, max)
		}
	}
}

func TestBuildVerificationSetBalanceAndSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	set := BuildVerificationSet(rng, VerificationConfig{
		Size: 20, Positives: 50, Negatives: 50, Impostors: 10, TrainFrac: 0.9, TargetSeed: 1,
	})
	if len(set.Train) != 90 || len(set.Test) != 10 {
		t.Fatalf("split %d/%d, want 90/10", len(set.Train), len(set.Test))
	}
	var pos int
	for _, s := range set.Train {
		if s.Chip.W != 20 {
			t.Fatalf("chip size %d", s.Chip.W)
		}
		if s.Label {
			pos++
		}
	}
	for _, s := range set.Test {
		if s.Label {
			pos++
		}
	}
	if pos != 50 {
		t.Fatalf("positives %d, want 50", pos)
	}
}

func TestBuildVerificationSetDefaultTrainFrac(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	set := BuildVerificationSet(rng, VerificationConfig{
		Size: 10, Positives: 10, Negatives: 10, Impostors: 3, TargetSeed: 2,
	})
	if len(set.Train) != 18 {
		t.Fatalf("default split train=%d, want 18", len(set.Train))
	}
}

func TestBuildDetectionSceneBoxesInBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 10; i++ {
		sc := BuildDetectionScene(rng, SceneConfig{
			W: 160, H: 120, MaxFaces: 3, MinSize: 24, MaxSize: 48, Clutter: 5, ForceFace: true,
		})
		if len(sc.Faces) == 0 {
			t.Fatal("ForceFace produced a scene with no faces")
		}
		for _, b := range sc.Faces {
			if b.X < 0 || b.Y < 0 || b.X+b.W > 160 || b.Y+b.H > 120 {
				t.Fatalf("face box out of bounds: %+v", b)
			}
		}
	}
}

func TestBuildDetectionSceneFacesDontOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sc := BuildDetectionScene(rng, SceneConfig{
		W: 320, H: 240, MaxFaces: 6, MinSize: 24, MaxSize: 40, ForceFace: true,
	})
	for i := range sc.Faces {
		for j := i + 1; j < len(sc.Faces); j++ {
			if iou := quality.IoU(sc.Faces[i], sc.Faces[j]); iou > 0.05 {
				t.Fatalf("faces %d and %d overlap with IoU %v", i, j, iou)
			}
		}
	}
}

func TestFaceAndNonFaceChipsCount(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	if got := len(FaceChips(rng, 7, 20)); got != 7 {
		t.Fatalf("FaceChips len %d", got)
	}
	if got := len(NonFaceChips(rng, 9, 20)); got != 9 {
		t.Fatalf("NonFaceChips len %d", got)
	}
}

func TestTraceDeterministicFrames(t *testing.T) {
	cfg := DefaultTraceConfig(50)
	a := NewTrace(99, cfg)
	b := NewTrace(99, cfg)
	fa, ta := a.Frame(17)
	fb, tb := b.Frame(17)
	if fa.MeanAbsDiff(fb) != 0 {
		t.Fatal("trace frames not deterministic")
	}
	if ta.TargetPresent != tb.TargetPresent || len(ta.Faces) != len(tb.Faces) {
		t.Fatal("trace truth not deterministic")
	}
}

func TestTraceStatsConsistentWithFrames(t *testing.T) {
	cfg := DefaultTraceConfig(200)
	cfg.VisitRate = 6
	tr := NewTrace(3, cfg)
	st := tr.Stats()
	if st.Frames != 200 {
		t.Fatalf("Frames = %d", st.Frames)
	}
	if st.MotionFrames == 0 || st.TargetFrames == 0 {
		t.Fatalf("trace has no events: %+v (increase VisitRate or seed variety)", st)
	}
	if st.TargetFrames > st.FaceFrames || st.FaceFrames > st.MotionFrames {
		t.Fatalf("stats not nested: %+v", st)
	}
	// Cross-check a handful of frames against the schedule.
	var motion int
	for f := 0; f < 200; f++ {
		_, truth := tr.Frame(f)
		if truth.Motion {
			motion++
		}
	}
	if motion != st.MotionFrames {
		t.Fatalf("rendered motion frames %d != scheduled %d", motion, st.MotionFrames)
	}
}

func TestTraceMostFramesEmpty(t *testing.T) {
	// The security workload is dominated by empty frames — this property is
	// what makes progressive filtering (motion detection) pay off.
	cfg := DefaultTraceConfig(500)
	tr := NewTrace(4, cfg)
	st := tr.Stats()
	if frac := float64(st.MotionFrames) / float64(st.Frames); frac > 0.5 {
		t.Fatalf("motion fraction %v too high for a security trace", frac)
	}
}

func TestTraceFaceBoxesMatchTruth(t *testing.T) {
	cfg := DefaultTraceConfig(300)
	cfg.VisitRate = 8
	tr := NewTrace(5, cfg)
	checked := 0
	for f := 0; f < 300 && checked < 5; f++ {
		frame, truth := tr.Frame(f)
		if !truth.TargetPresent {
			continue
		}
		checked++
		if len(truth.Faces) == 0 {
			t.Fatal("TargetPresent but no face boxes")
		}
		// The face region should differ from the static background.
		b := truth.Faces[0]
		bg := tr.background
		var d float64
		var n int
		for y := b.Y; y < b.Y+b.H; y++ {
			for x := b.X; x < b.X+b.W; x++ {
				if !frame.Bounds(x, y) {
					continue
				}
				d += math.Abs(float64(frame.At(x, y) - bg.At(x, y)))
				n++
			}
		}
		if n == 0 || d/float64(n) < 0.02 {
			t.Fatalf("frame %d: face region barely differs from background (%v)", f, d/float64(n))
		}
	}
	if checked == 0 {
		t.Fatal("no target frames found in trace")
	}
}
