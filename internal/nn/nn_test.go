package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"camsim/internal/img"
	"camsim/internal/synth"
)

func TestNewTopologyAndWeightCount(t *testing.T) {
	n := New(rand.New(rand.NewSource(1)), 400, 8, 1)
	if n.Topology() != "400-8-1" {
		t.Fatalf("Topology = %q", n.Topology())
	}
	want := (400+1)*8 + (8+1)*1
	if n.NumWeights() != want {
		t.Fatalf("NumWeights = %d, want %d", n.NumWeights(), want)
	}
	if n.NumMACs() != want {
		t.Fatalf("NumMACs = %d, want %d", n.NumMACs(), want)
	}
}

func TestWeightCountMatchesBuiltNetwork(t *testing.T) {
	for _, sizes := range [][]int{{400, 8, 1}, {4, 2}, {10, 5, 2}, {3, 3, 3, 3}} {
		n := New(rand.New(rand.NewSource(1)), sizes...)
		if got, want := WeightCount(sizes...), n.NumWeights(); got != want {
			t.Fatalf("WeightCount(%v) = %d, want %d", sizes, got, want)
		}
	}
	for _, sizes := range [][]int{{5}, {4, 0, 1}, {}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("no panic for sizes %v", sizes)
				}
			}()
			WeightCount(sizes...)
		}()
	}
}

func TestNewPanicsOnBadTopology(t *testing.T) {
	for _, sizes := range [][]int{{5}, {4, 0, 1}, {}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("no panic for sizes %v", sizes)
				}
			}()
			New(rand.New(rand.NewSource(1)), sizes...)
		}()
	}
}

func TestForwardOutputRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := New(rng, 10, 5, 2)
	in := make([]float64, 10)
	for i := range in {
		in[i] = rng.Float64()
	}
	out := n.Forward(in)
	if len(out) != 2 {
		t.Fatalf("output size %d", len(out))
	}
	for _, v := range out {
		if v <= 0 || v >= 1 {
			t.Fatalf("sigmoid output out of (0,1): %v", v)
		}
	}
}

func TestForwardPanicsOnWrongInputSize(t *testing.T) {
	n := New(rand.New(rand.NewSource(1)), 4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.Forward(make([]float64, 3))
}

func TestForwardKnownWeights(t *testing.T) {
	// 1-1 network: out = sigmoid(w*x + b).
	n := &Network{Sizes: []int{1, 1}, Weights: [][]float64{{2, -1}}}
	got := n.Forward([]float64{1.5})[0]
	want := Sigmoid(2*1.5 - 1)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Forward = %v, want %v", got, want)
	}
}

func TestSigmoidProperties(t *testing.T) {
	if s := Sigmoid(0); math.Abs(s-0.5) > 1e-12 {
		t.Fatalf("Sigmoid(0) = %v", s)
	}
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		s := Sigmoid(x)
		return s >= 0 && s <= 1 && math.Abs(Sigmoid(-x)-(1-s)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependent(t *testing.T) {
	n := New(rand.New(rand.NewSource(3)), 3, 2)
	c := n.Clone()
	c.Weights[0][0] += 100
	if n.Weights[0][0] == c.Weights[0][0] {
		t.Fatal("Clone shares weight storage")
	}
}

// numericalGradCheck verifies backprop against finite differences.
func TestBackpropMatchesNumericalGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := New(rng, 3, 4, 2)
	s := TrainSample{
		Input:  []float64{0.2, -0.5, 0.9},
		Target: []float64{0.8, 0.3},
	}
	grads := n.newGradientBuffers()
	n.accumulateGradients(s, grads)

	loss := func() float64 {
		out := n.Forward(s.Input)
		var e float64
		for j, o := range out {
			d := o - s.Target[j]
			e += d * d
		}
		return e / 2
	}
	const eps = 1e-6
	for l := range n.Weights {
		for i := 0; i < len(n.Weights[l]); i += 3 { // sample every third weight
			orig := n.Weights[l][i]
			n.Weights[l][i] = orig + eps
			up := loss()
			n.Weights[l][i] = orig - eps
			down := loss()
			n.Weights[l][i] = orig
			num := (up - down) / (2 * eps)
			if math.Abs(num-grads[l][i]) > 1e-6 {
				t.Fatalf("layer %d weight %d: backprop %v vs numeric %v", l, i, grads[l][i], num)
			}
		}
	}
}

func xorSamples() []TrainSample {
	return []TrainSample{
		{Input: []float64{0, 0}, Target: []float64{0.1}},
		{Input: []float64{0, 1}, Target: []float64{0.9}},
		{Input: []float64{1, 0}, Target: []float64{0.9}},
		{Input: []float64{1, 1}, Target: []float64{0.1}},
	}
}

func TestRPROPLearnsXOR(t *testing.T) {
	n := New(rand.New(rand.NewSource(5)), 2, 4, 1)
	mse := n.TrainRPROP(xorSamples(), DefaultRPROP(300))
	if mse > 0.01 {
		t.Fatalf("XOR MSE after RPROP = %v", mse)
	}
	for _, s := range xorSamples() {
		got := n.Forward(s.Input)[0] > 0.5
		want := s.Target[0] > 0.5
		if got != want {
			t.Fatalf("XOR(%v) = %v, want %v", s.Input, got, want)
		}
	}
}

func TestSGDLearnsXOR(t *testing.T) {
	n := New(rand.New(rand.NewSource(6)), 2, 4, 1)
	mse := n.TrainSGD(xorSamples(), SGDConfig{Epochs: 4000, LearningRate: 0.5, Momentum: 0.9})
	if mse > 0.02 {
		t.Fatalf("XOR MSE after SGD = %v", mse)
	}
}

func TestRPROPDeterministic(t *testing.T) {
	a := New(rand.New(rand.NewSource(7)), 2, 3, 1)
	b := a.Clone()
	a.TrainRPROP(xorSamples(), DefaultRPROP(50))
	b.TrainRPROP(xorSamples(), DefaultRPROP(50))
	for l := range a.Weights {
		for i := range a.Weights[l] {
			if a.Weights[l][i] != b.Weights[l][i] {
				t.Fatal("RPROP training not deterministic")
			}
		}
	}
}

func TestRPROPRejectsBadConfig(t *testing.T) {
	n := New(rand.New(rand.NewSource(8)), 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on eta+ <= 1")
		}
	}()
	n.TrainRPROP(xorSamples(), RPROPConfig{Epochs: 1, EtaPlus: 0.9, EtaMinus: 0.5})
}

func TestTrainEmptySamplesNoop(t *testing.T) {
	n := New(rand.New(rand.NewSource(9)), 2, 1)
	if mse := n.TrainRPROP(nil, DefaultRPROP(10)); mse != 0 {
		t.Fatalf("empty RPROP mse = %v", mse)
	}
	if mse := n.TrainSGD(nil, SGDConfig{Epochs: 10, LearningRate: 0.1}); mse != 0 {
		t.Fatalf("empty SGD mse = %v", mse)
	}
}

func TestFlattenChipNormalization(t *testing.T) {
	g := img.NewGray(4, 4)
	g.Fill(0.9) // constant bright chip -> all 0.5 after normalization
	v := FlattenChip(g)
	for _, x := range v {
		if math.Abs(x-0.5) > 1e-6 {
			t.Fatalf("flattened constant chip value %v, want 0.5", x)
		}
	}
}

func TestFlattenChipGainInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := img.NewGray(8, 8)
	for i := range g.Pix {
		g.Pix[i] = 0.3 + 0.2*rng.Float32()
	}
	shifted := g.Clone()
	for i := range shifted.Pix {
		shifted.Pix[i] += 0.15 // global illumination offset
	}
	a := FlattenChip(g)
	b := FlattenChip(shifted)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-5 {
			t.Fatalf("offset not removed at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestVerificationTrainingReachesPaperAccuracy(t *testing.T) {
	// The paper's 400-8-1 network reaches ~5.9% error on LFW. On our
	// synthetic stand-in with hard (unconstrained) captures we require
	// error well below chance and miss rate below 15%.
	rng := rand.New(rand.NewSource(11))
	set := synth.BuildVerificationSet(rng, synth.VerificationConfig{
		Size: 20, Positives: 150, Negatives: 150, Impostors: 20,
		TrainFrac: 0.9, Hard: true, TargetSeed: 7,
	})
	n := New(rand.New(rand.NewSource(12)), 400, 8, 1)
	n.TrainRPROP(ToTrainSamples(set.Train), DefaultRPROP(150))
	c := Evaluate(set.Test, n.Predict)
	if c.Error() > 0.15 {
		t.Fatalf("verification test error %v too high (confusion %+v)", c.Error(), c)
	}
}

func TestConfusionMetrics(t *testing.T) {
	c := Confusion{TP: 8, FP: 2, TN: 85, FN: 5}
	if e := c.Error(); math.Abs(e-0.07) > 1e-12 {
		t.Fatalf("Error = %v", e)
	}
	if m := c.MissRate(); math.Abs(m-5.0/13) > 1e-12 {
		t.Fatalf("MissRate = %v", m)
	}
	if f := c.FalseAcceptRate(); math.Abs(f-2.0/87) > 1e-12 {
		t.Fatalf("FalseAcceptRate = %v", f)
	}
	var zero Confusion
	if zero.Error() != 0 || zero.MissRate() != 0 || zero.FalseAcceptRate() != 0 {
		t.Fatal("zero confusion should yield zero rates")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	n := New(rand.New(rand.NewSource(13)), 20, 6, 2)
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.Topology() != n.Topology() {
		t.Fatalf("topology %q != %q", m.Topology(), n.Topology())
	}
	for l := range n.Weights {
		for i := range n.Weights[l] {
			if n.Weights[l][i] != m.Weights[l][i] {
				t.Fatal("weights differ after round trip")
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("NOPE0123456789"))); err == nil {
		t.Fatal("accepted bad magic")
	}
	if _, err := Load(bytes.NewReader([]byte("CSNN"))); err == nil {
		t.Fatal("accepted truncated stream")
	}
}

func BenchmarkForward400_8_1(b *testing.B) {
	n := New(rand.New(rand.NewSource(1)), 400, 8, 1)
	in := make([]float64, 400)
	for i := range in {
		in[i] = 0.5
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Forward(in)
	}
}

func BenchmarkTrainRPROPEpoch(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	set := synth.BuildVerificationSet(rng, synth.VerificationConfig{
		Size: 20, Positives: 50, Negatives: 50, Impostors: 10, TargetSeed: 1,
	})
	samples := ToTrainSamples(set.Train)
	n := New(rand.New(rand.NewSource(3)), 400, 8, 1)
	cfg := DefaultRPROP(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.TrainRPROP(samples, cfg)
	}
}

func TestEvaluateThresholdMonotone(t *testing.T) {
	// Raising the acceptance threshold can only trade false accepts for
	// misses: FP non-increasing, FN non-decreasing.
	rng := rand.New(rand.NewSource(31))
	set := synth.BuildVerificationSet(rng, synth.VerificationConfig{
		Size: 20, Positives: 80, Negatives: 80, Impostors: 10, TargetSeed: 7,
	})
	n := New(rand.New(rand.NewSource(32)), 400, 8, 1)
	n.TrainRPROP(ToTrainSamples(set.Train), DefaultRPROP(60))
	score := func(in []float64) float64 { return n.Forward(in)[0] }
	prevFP, prevFN := 1<<30, -1
	for _, thr := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		c := EvaluateThreshold(set.Test, score, thr)
		if c.FP > prevFP {
			t.Fatalf("FP increased at thr %v", thr)
		}
		if c.FN < prevFN {
			t.Fatalf("FN decreased at thr %v", thr)
		}
		prevFP, prevFN = c.FP, c.FN
	}
	// Threshold 0.5 must agree with Predict.
	c05 := EvaluateThreshold(set.Test, score, 0.5)
	cP := Evaluate(set.Test, n.Predict)
	if c05 != cP {
		t.Fatalf("threshold 0.5 (%+v) disagrees with Predict (%+v)", c05, cP)
	}
}
