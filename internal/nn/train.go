package nn

import (
	"fmt"
	"math"
)

// TrainSample is one (input, target) pair; targets are per-output-unit
// values in [0, 1].
type TrainSample struct {
	Input  []float64
	Target []float64
}

// RPROPConfig holds the resilient-backpropagation hyperparameters
// (Riedmiller & Braun defaults, the same algorithm FANN ships as its
// default trainer).
type RPROPConfig struct {
	Epochs    int
	EtaPlus   float64 // step increase factor (default 1.2)
	EtaMinus  float64 // step decrease factor (default 0.5)
	DeltaInit float64 // initial per-weight step (default 0.1)
	DeltaMax  float64 // step ceiling (default 50)
	DeltaMin  float64 // step floor (default 1e-6)
	// MaxWeight clamps weights after every epoch (0 disables). Saturated
	// sigmoid units have vanishing gradients, so unconstrained RPROP keeps
	// pushing their weights by DeltaMax forever; capping them changes the
	// network's behaviour negligibly while keeping the weight distribution
	// representable in the accelerator's fixed-point formats.
	MaxWeight float64
}

// DefaultRPROP returns the standard RPROP hyperparameters for the given
// epoch budget, with the quantization-friendly ±8 weight cap.
func DefaultRPROP(epochs int) RPROPConfig {
	return RPROPConfig{
		Epochs: epochs, EtaPlus: 1.2, EtaMinus: 0.5,
		DeltaInit: 0.1, DeltaMax: 50, DeltaMin: 1e-6,
		MaxWeight: 8,
	}
}

// TrainRPROP trains the network with batch RPROP on the full sample set and
// returns the mean squared error after the final epoch. Training is
// deterministic given the initial weights and sample order.
func (n *Network) TrainRPROP(samples []TrainSample, cfg RPROPConfig) float64 {
	if len(samples) == 0 {
		return 0
	}
	if cfg.EtaPlus <= 1 || cfg.EtaMinus <= 0 || cfg.EtaMinus >= 1 {
		panic(fmt.Sprintf("nn: invalid RPROP factors eta+=%v eta-=%v", cfg.EtaPlus, cfg.EtaMinus))
	}
	grads := n.newGradientBuffers()
	prevGrads := n.newGradientBuffers()
	deltas := n.newGradientBuffers()
	for l := range deltas {
		for i := range deltas[l] {
			deltas[l][i] = cfg.DeltaInit
		}
	}
	var mse float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for l := range grads {
			for i := range grads[l] {
				grads[l][i] = 0
			}
		}
		mse = 0
		for _, s := range samples {
			mse += n.accumulateGradients(s, grads)
		}
		mse /= float64(len(samples))
		for l := range grads {
			for i := range grads[l] {
				g, pg := grads[l][i], prevGrads[l][i]
				switch {
				case g*pg > 0:
					deltas[l][i] = math.Min(deltas[l][i]*cfg.EtaPlus, cfg.DeltaMax)
					n.Weights[l][i] -= sign(g) * deltas[l][i]
					prevGrads[l][i] = g
				case g*pg < 0:
					deltas[l][i] = math.Max(deltas[l][i]*cfg.EtaMinus, cfg.DeltaMin)
					// iRPROP-: skip the update and forget the gradient so the
					// next epoch takes the (possibly shrunk) step cleanly.
					prevGrads[l][i] = 0
				default:
					n.Weights[l][i] -= sign(g) * deltas[l][i]
					prevGrads[l][i] = g
				}
			}
		}
		if cfg.MaxWeight > 0 {
			for l := range n.Weights {
				for i, w := range n.Weights[l] {
					if w > cfg.MaxWeight {
						n.Weights[l][i] = cfg.MaxWeight
					} else if w < -cfg.MaxWeight {
						n.Weights[l][i] = -cfg.MaxWeight
					}
				}
			}
		}
	}
	return mse
}

// SGDConfig holds plain stochastic-gradient hyperparameters for the
// incremental trainer.
type SGDConfig struct {
	Epochs       int
	LearningRate float64
	Momentum     float64
}

// TrainSGD trains with per-sample stochastic gradient descent in the given
// sample order and returns the final epoch's mean squared error.
func (n *Network) TrainSGD(samples []TrainSample, cfg SGDConfig) float64 {
	if len(samples) == 0 {
		return 0
	}
	vel := n.newGradientBuffers()
	grads := n.newGradientBuffers()
	var mse float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		mse = 0
		for _, s := range samples {
			for l := range grads {
				for i := range grads[l] {
					grads[l][i] = 0
				}
			}
			mse += n.accumulateGradients(s, grads)
			for l := range grads {
				for i := range grads[l] {
					vel[l][i] = cfg.Momentum*vel[l][i] - cfg.LearningRate*grads[l][i]
					n.Weights[l][i] += vel[l][i]
				}
			}
		}
		mse /= float64(len(samples))
	}
	return mse
}

// accumulateGradients backpropagates one sample, adding dE/dw (for squared
// error E = Σ(o−t)²/2) into grads, and returns the sample's squared error.
func (n *Network) accumulateGradients(s TrainSample, grads [][]float64) float64 {
	acts := n.forwardActivations(s.Input)
	L := len(n.Weights)
	out := acts[L]
	if len(s.Target) != len(out) {
		panic(fmt.Sprintf("nn: target size %d, want %d", len(s.Target), len(out)))
	}
	// Output-layer delta: (o − t)·σ'(o).
	delta := make([]float64, len(out))
	var se float64
	for j, o := range out {
		e := o - s.Target[j]
		se += e * e
		delta[j] = e * o * (1 - o)
	}
	// Backward pass.
	for l := L - 1; l >= 0; l-- {
		in := n.Sizes[l]
		outN := n.Sizes[l+1]
		prev := acts[l]
		w := n.Weights[l]
		g := grads[l]
		var nextDelta []float64
		if l > 0 {
			nextDelta = make([]float64, in)
		}
		for j := 0; j < outN; j++ {
			base := j * (in + 1)
			dj := delta[j]
			for i := 0; i < in; i++ {
				g[base+i] += dj * prev[i]
				if l > 0 {
					nextDelta[i] += dj * w[base+i]
				}
			}
			g[base+in] += dj // bias
		}
		if l > 0 {
			for i := 0; i < in; i++ {
				a := prev[i]
				nextDelta[i] *= a * (1 - a)
			}
			delta = nextDelta
		}
	}
	return se / 2
}

func (n *Network) newGradientBuffers() [][]float64 {
	out := make([][]float64, len(n.Weights))
	for l, w := range n.Weights {
		out[l] = make([]float64, len(w))
	}
	return out
}

func sign(v float64) float64 {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	}
	return 0
}
