// Package nn implements the multilayer-perceptron substrate the paper
// trains with the FANN library: fully-connected sigmoid networks, batch
// RPROP and incremental backprop training, and the face-verification
// evaluation protocol (90/10 split, single-target classification error).
//
// Training uses float64 throughout; quantized inference for the SNNAP-style
// accelerator lives in internal/fixed.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"camsim/internal/img"
)

// Network is a fully-connected feed-forward network with sigmoid units on
// every non-input layer. Weights[l] holds (Sizes[l]+1)×Sizes[l+1] values
// laid out output-major: weight(l, j, i) = Weights[l][j*(Sizes[l]+1)+i],
// with index Sizes[l] being unit j's bias.
type Network struct {
	Sizes   []int
	Weights [][]float64
}

// New creates a network with the given layer sizes (at least two layers)
// and weights initialized uniformly in [-r, r] with r = 1/sqrt(fanIn),
// drawn from rng.
func New(rng *rand.Rand, sizes ...int) *Network {
	if len(sizes) < 2 {
		panic("nn: need at least input and output layers")
	}
	for _, s := range sizes {
		if s <= 0 {
			panic(fmt.Sprintf("nn: invalid layer size %d", s))
		}
	}
	n := &Network{Sizes: append([]int(nil), sizes...)}
	n.Weights = make([][]float64, len(sizes)-1)
	for l := 0; l < len(sizes)-1; l++ {
		in, out := sizes[l], sizes[l+1]
		w := make([]float64, (in+1)*out)
		r := 1 / math.Sqrt(float64(in))
		for i := range w {
			w[i] = (2*rng.Float64() - 1) * r
		}
		n.Weights[l] = w
	}
	return n
}

// Topology returns a compact "400-8-1"-style description.
func (n *Network) Topology() string {
	s := ""
	for i, v := range n.Sizes {
		if i > 0 {
			s += "-"
		}
		s += fmt.Sprint(v)
	}
	return s
}

// NumWeights returns the total number of weights including biases.
func (n *Network) NumWeights() int {
	total := 0
	for _, w := range n.Weights {
		total += len(w)
	}
	return total
}

// WeightCount returns the number of weights (biases included) of a
// fully-connected network with the given layer sizes, without building
// one: Σ (sizes[l]+1)×sizes[l+1]. It sizes federated-learning update
// payloads, where only the parameter count matters, not the parameters.
// Like New, it panics on fewer than two layers or a non-positive size.
func WeightCount(sizes ...int) int {
	if len(sizes) < 2 {
		panic("nn: need at least input and output layers")
	}
	total := 0
	for l := 0; l < len(sizes)-1; l++ {
		if sizes[l] <= 0 || sizes[l+1] <= 0 {
			panic(fmt.Sprintf("nn: invalid layer size %d", min(sizes[l], sizes[l+1])))
		}
		total += (sizes[l] + 1) * sizes[l+1]
	}
	return total
}

// NumMACs returns the multiply-accumulate operations per forward pass
// (bias additions counted as one MAC each), the quantity the accelerator
// energy model charges for.
func (n *Network) NumMACs() int { return n.NumWeights() }

// Sigmoid is the logistic activation used by every non-input unit.
func Sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Forward runs inference and returns the output activations. The input
// length must equal the input layer size.
func (n *Network) Forward(input []float64) []float64 {
	acts := n.forwardActivations(input)
	out := acts[len(acts)-1]
	return append([]float64(nil), out...)
}

// forwardActivations returns the activation vector of every layer,
// including the input layer (index 0).
func (n *Network) forwardActivations(input []float64) [][]float64 {
	if len(input) != n.Sizes[0] {
		panic(fmt.Sprintf("nn: input size %d, want %d", len(input), n.Sizes[0]))
	}
	acts := make([][]float64, len(n.Sizes))
	acts[0] = input
	for l := 0; l < len(n.Weights); l++ {
		in, out := n.Sizes[l], n.Sizes[l+1]
		w := n.Weights[l]
		prev := acts[l]
		cur := make([]float64, out)
		for j := 0; j < out; j++ {
			base := j * (in + 1)
			sum := w[base+in] // bias
			for i := 0; i < in; i++ {
				sum += w[base+i] * prev[i]
			}
			cur[j] = Sigmoid(sum)
		}
		acts[l+1] = cur
	}
	return acts
}

// Predict returns true when the first output unit exceeds 0.5, the
// binary-verification decision rule used throughout the FA case study.
func (n *Network) Predict(input []float64) bool {
	return n.Forward(input)[0] > 0.5
}

// Clone returns a deep copy of the network.
func (n *Network) Clone() *Network {
	c := &Network{Sizes: append([]int(nil), n.Sizes...)}
	c.Weights = make([][]float64, len(n.Weights))
	for l, w := range n.Weights {
		c.Weights[l] = append([]float64(nil), w...)
	}
	return c
}

// FlattenChip converts a grayscale chip into an input vector in [0, 1],
// row-major, for use as NN input. The chip is contrast-normalized first
// (zero mean, then shifted to 0.5 and clamped) so global illumination gain
// does not dominate the features.
func FlattenChip(g *img.Gray) []float64 {
	out := make([]float64, len(g.Pix))
	mean := g.Mean()
	for i, v := range g.Pix {
		x := float64(v) - mean + 0.5
		if x < 0 {
			x = 0
		} else if x > 1 {
			x = 1
		}
		out[i] = x
	}
	return out
}
