package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"camsim/internal/synth"
)

// ToTrainSamples converts labelled chips to (input, target) pairs with
// targets 0.9/0.1 (the saturating-sigmoid-friendly encoding FANN
// documentation recommends over hard 0/1 targets).
func ToTrainSamples(samples []synth.Sample) []TrainSample {
	out := make([]TrainSample, len(samples))
	for i, s := range samples {
		t := 0.1
		if s.Label {
			t = 0.9
		}
		out[i] = TrainSample{Input: FlattenChip(s.Chip), Target: []float64{t}}
	}
	return out
}

// Confusion is a binary-classification confusion matrix.
type Confusion struct {
	TP, FP, TN, FN int
}

// Error returns the overall classification error rate.
func (c Confusion) Error() float64 {
	n := c.TP + c.FP + c.TN + c.FN
	if n == 0 {
		return 0
	}
	return float64(c.FP+c.FN) / float64(n)
}

// MissRate returns FN/(TP+FN), the fraction of genuine target appearances
// rejected — the security-critical number in the FA study.
func (c Confusion) MissRate() float64 {
	d := c.TP + c.FN
	if d == 0 {
		return 0
	}
	return float64(c.FN) / float64(d)
}

// FalseAcceptRate returns FP/(FP+TN), impostors accepted as the target.
func (c Confusion) FalseAcceptRate() float64 {
	d := c.FP + c.TN
	if d == 0 {
		return 0
	}
	return float64(c.FP) / float64(d)
}

// Evaluate classifies every labelled chip with a caller-supplied decision
// function, accumulating a confusion matrix. Pass n.Predict on the float
// network, or a quantized predictor from internal/fixed.
func Evaluate(samples []synth.Sample, predict func([]float64) bool) Confusion {
	var c Confusion
	for _, s := range samples {
		got := predict(FlattenChip(s.Chip))
		switch {
		case got && s.Label:
			c.TP++
		case got && !s.Label:
			c.FP++
		case !got && s.Label:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}

// magic identifies the camsim network serialization format.
const magic = "CSNN"

// Save serializes the network in a compact deterministic binary format.
func (n *Network) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(n.Sizes))); err != nil {
		return err
	}
	for _, s := range n.Sizes {
		if err := binary.Write(bw, binary.LittleEndian, uint32(s)); err != nil {
			return err
		}
	}
	for _, layer := range n.Weights {
		if err := binary.Write(bw, binary.LittleEndian, layer); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a network produced by Save.
func Load(r io.Reader) (*Network, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, err
	}
	if string(hdr) != magic {
		return nil, fmt.Errorf("nn: bad magic %q", hdr)
	}
	var nl uint32
	if err := binary.Read(br, binary.LittleEndian, &nl); err != nil {
		return nil, err
	}
	if nl < 2 || nl > 64 {
		return nil, fmt.Errorf("nn: implausible layer count %d", nl)
	}
	sizes := make([]int, nl)
	for i := range sizes {
		var s uint32
		if err := binary.Read(br, binary.LittleEndian, &s); err != nil {
			return nil, err
		}
		if s == 0 || s > 1<<20 {
			return nil, fmt.Errorf("nn: implausible layer size %d", s)
		}
		sizes[i] = int(s)
	}
	n := &Network{Sizes: sizes}
	n.Weights = make([][]float64, nl-1)
	for l := 0; l < int(nl)-1; l++ {
		w := make([]float64, (sizes[l]+1)*sizes[l+1])
		if err := binary.Read(br, binary.LittleEndian, w); err != nil {
			return nil, err
		}
		for _, v := range w {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("nn: non-finite weight in stream")
			}
		}
		n.Weights[l] = w
	}
	return n, nil
}

// EvaluateThreshold classifies chips with an explicit decision threshold
// over a scoring function (the first output unit's activation), enabling
// miss-rate / false-accept tradeoff sweeps. score must return a value in
// [0, 1]; samples scoring above thr are accepted as the target.
func EvaluateThreshold(samples []synth.Sample, score func([]float64) float64, thr float64) Confusion {
	var c Confusion
	for _, s := range samples {
		got := score(FlattenChip(s.Chip)) > thr
		switch {
		case got && s.Label:
			c.TP++
		case got && !s.Label:
			c.FP++
		case !got && s.Label:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}
