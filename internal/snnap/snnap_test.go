package snnap

import (
	"math"
	"math/rand"
	"testing"

	"camsim/internal/energy"
	"camsim/internal/fixed"
	"camsim/internal/nn"
)

var paperTopology = []int{400, 8, 1}

func TestSimulateEventCounts(t *testing.T) {
	r := MustSimulate(paperTopology, DefaultConfig())
	wantMACs := int64(8*(400+1) + 1*(8+1))
	if r.MACs != wantMACs {
		t.Fatalf("MACs = %d, want %d", r.MACs, wantMACs)
	}
	if r.WeightReads != wantMACs {
		t.Fatalf("WeightReads = %d, want %d", r.WeightReads, wantMACs)
	}
	if r.SigmoidOps != 9 {
		t.Fatalf("SigmoidOps = %d, want 9", r.SigmoidOps)
	}
	if r.Waves != 2 { // 8 outputs on 8 PEs + 1 output on 8 PEs
		t.Fatalf("Waves = %d, want 2", r.Waves)
	}
}

func TestSimulateCycleModel(t *testing.T) {
	cfg := DefaultConfig()
	r := MustSimulate(paperTopology, cfg)
	// Layer 1: 1 wave × (400+1+4) + 8 drain; layer 2: 1 wave × (8+1+4) + 1.
	want := int64(405+8) + int64(13+1)
	if r.Cycles != want {
		t.Fatalf("Cycles = %d, want %d", r.Cycles, want)
	}
	if math.Abs(r.LatencySec-float64(want)/30e6) > 1e-12 {
		t.Fatalf("latency %v", r.LatencySec)
	}
}

func TestSimulateErrors(t *testing.T) {
	if _, err := Simulate([]int{5}, DefaultConfig()); err == nil {
		t.Fatal("accepted single-layer network")
	}
	cfg := DefaultConfig()
	cfg.PEs = 0
	if _, err := Simulate(paperTopology, cfg); err == nil {
		t.Fatal("accepted 0 PEs")
	}
	cfg = DefaultConfig()
	cfg.FreqHz = 0
	if _, err := Simulate(paperTopology, cfg); err == nil {
		t.Fatal("accepted 0 Hz")
	}
	cfg = DefaultConfig()
	cfg.Bits = 12
	if _, err := Simulate(paperTopology, cfg); err == nil {
		t.Fatal("accepted unsupported bit width")
	}
	if _, err := Simulate([]int{4, 0, 1}, DefaultConfig()); err == nil {
		t.Fatal("accepted zero-size layer")
	}
}

func TestEnergyOptimalAtEightPEs(t *testing.T) {
	// The paper's geometry exploration finds 8 PEs energy-optimal for the
	// 400-8-1 network: fewer PEs pay sequencer/leakage for longer runs,
	// more PEs idle.
	reports, err := SweepPEs(paperTopology, []int{1, 2, 4, 8, 16, 32}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	best := 0
	for i, r := range reports {
		if r.Energy < reports[best].Energy {
			best = i
		}
	}
	if got := reports[best].Config.PEs; got != 8 {
		for _, r := range reports {
			t.Logf("PEs=%2d energy=%v cycles=%d util=%.2f", r.Config.PEs, r.Energy, r.Cycles, r.Utilization)
		}
		t.Fatalf("energy-optimal PE count = %d, want 8", got)
	}
	// And the curve is U-shaped around the optimum.
	if !(reports[2].Energy > reports[3].Energy && reports[4].Energy > reports[3].Energy) {
		t.Fatal("energy curve not U-shaped around 8 PEs")
	}
}

func TestBitWidthPowerReduction41Percent(t *testing.T) {
	// Paper: reducing the datapath from 16-bit to 8-bit gives a 41% power
	// reduction for the 8-PE configuration. Our calibrated model must land
	// within ±4 percentage points.
	r8 := MustSimulate(paperTopology, DefaultConfig())
	cfg16 := DefaultConfig()
	cfg16.Bits = 16
	r16 := MustSimulate(paperTopology, cfg16)
	reduction := 1 - float64(r8.Energy)/float64(r16.Energy)
	if math.Abs(reduction-0.41) > 0.04 {
		t.Fatalf("16→8 bit power reduction = %.1f%%, want 41%% ± 4", reduction*100)
	}
}

func TestFourBitCheaperThanEight(t *testing.T) {
	reports, err := SweepBits(paperTopology, []int{4, 8, 16}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !(reports[0].Energy < reports[1].Energy && reports[1].Energy < reports[2].Energy) {
		t.Fatalf("energy not monotone in bit width: %v %v %v",
			reports[0].Energy, reports[1].Energy, reports[2].Energy)
	}
}

func TestSubMilliwattOperation(t *testing.T) {
	// The paper's SoC targets sub-mW operation (vs ShiDianNao's 320 mW).
	r := MustSimulate(paperTopology, DefaultConfig())
	if r.ActivePower >= 1*energy.Milliwatt {
		t.Fatalf("active power %v not sub-mW", r.ActivePower)
	}
	// At the WISPCam's 1 FPS duty cycle the average accelerator power is
	// nanowatts.
	avg := r.Energy.Average(1)
	if avg >= 1*energy.Microwatt {
		t.Fatalf("1 FPS average power %v, want < 1 µW", avg)
	}
}

func TestUtilizationBounds(t *testing.T) {
	for _, pes := range []int{1, 3, 8, 64} {
		cfg := DefaultConfig()
		cfg.PEs = pes
		r := MustSimulate(paperTopology, cfg)
		if r.Utilization <= 0 || r.Utilization > 1 {
			t.Fatalf("PEs=%d utilization %v out of (0,1]", pes, r.Utilization)
		}
	}
	// Utilization at 8 PEs should beat 32 PEs for the narrow network.
	cfg8, cfg32 := DefaultConfig(), DefaultConfig()
	cfg32.PEs = 32
	if MustSimulate(paperTopology, cfg8).Utilization <= MustSimulate(paperTopology, cfg32).Utilization {
		t.Fatal("narrow network should utilize 8 PEs better than 32")
	}
}

func TestStaggeredScheduleCostsMoreCycles(t *testing.T) {
	b := DefaultConfig()
	s := DefaultConfig()
	s.Schedule = ScheduleStaggered
	rb := MustSimulate(paperTopology, b)
	rs := MustSimulate(paperTopology, s)
	if rs.Cycles <= rb.Cycles {
		t.Fatalf("staggered (%d cycles) should exceed broadcast (%d)", rs.Cycles, rb.Cycles)
	}
	if rs.MACs != rb.MACs {
		t.Fatal("schedule must not change MAC count")
	}
}

func TestBreakdownSumsToTotal(t *testing.T) {
	r := MustSimulate(paperTopology, DefaultConfig())
	if d := math.Abs(float64(r.Breakdown.Total() - r.Energy)); d > 1e-18 {
		t.Fatalf("breakdown does not sum to total: %v", d)
	}
	if r.Breakdown.MAC <= 0 || r.Breakdown.Leakage <= 0 {
		t.Fatalf("missing breakdown components: %+v", r.Breakdown)
	}
}

func TestTopologyEnergyMonotoneInSize(t *testing.T) {
	// Bigger input windows cost more energy — the accuracy/energy tradeoff
	// of the paper's topology exploration (5×5 cheap, 20×20 accurate).
	e55 := TopologyEnergy(25, 8, 1)
	e2020 := TopologyEnergy(400, 8, 1)
	if e2020 <= e55 {
		t.Fatalf("400-input energy %v not above 25-input %v", e2020, e55)
	}
	// Order-of-magnitude increase, per the paper's narrative.
	if ratio := float64(e2020) / float64(e55); ratio < 5 {
		t.Fatalf("energy ratio 20x20 vs 5x5 = %.1f, want >= 5", ratio)
	}
}

func TestRunMatchesFixedForward(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := nn.New(rng, 20, 4, 1)
	q := fixed.QuantizeNet(n, 8, nil)
	in := make([]float64, 20)
	for i := range in {
		in[i] = rng.Float64()
	}
	out, rep, err := Run(q, in, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := q.Forward(in)
	if out[0] != want[0] {
		t.Fatalf("Run output %v != Forward %v", out[0], want[0])
	}
	if rep.MACs != int64(4*21+1*5) {
		t.Fatalf("MACs = %d", rep.MACs)
	}
}

func TestRunRejectsBitMismatch(t *testing.T) {
	n := nn.New(rand.New(rand.NewSource(2)), 4, 1)
	q := fixed.QuantizeNet(n, 16, nil)
	if _, _, err := Run(q, make([]float64, 4), DefaultConfig()); err == nil {
		t.Fatal("accepted 16-bit net on 8-bit config")
	}
}

func TestAcceleratorBeatsMCUByOrdersOfMagnitude(t *testing.T) {
	r := MustSimulate(paperTopology, DefaultConfig())
	mcuE, mcuLat := energy.DefaultMCU().InferenceEnergy(int(r.MACs), int(r.SigmoidOps))
	if float64(mcuE)/float64(r.Energy) < 10 {
		t.Fatalf("accelerator (%v) should be >=10x more efficient than MCU (%v)", r.Energy, mcuE)
	}
	if mcuLat <= r.LatencySec {
		t.Fatal("MCU should also be slower at the same clock")
	}
}

func BenchmarkSimulate400_8_1(b *testing.B) {
	cfg := DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MustSimulate(paperTopology, cfg)
	}
}

func TestConfigAndScheduleStrings(t *testing.T) {
	cfg := DefaultConfig()
	if s := cfg.String(); s != "8PE/8b@30MHz/broadcast" {
		t.Fatalf("Config.String = %q", s)
	}
	if ScheduleStaggered.String() != "staggered" || ScheduleBroadcast.String() != "broadcast" {
		t.Fatal("schedule names wrong")
	}
}

func TestMustSimulatePanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustSimulate([]int{5}, DefaultConfig())
}

func TestSweepErrorsPropagate(t *testing.T) {
	bad := DefaultConfig()
	bad.FreqHz = -1
	if _, err := SweepPEs(paperTopology, []int{1, 2}, bad); err == nil {
		t.Fatal("SweepPEs swallowed an error")
	}
	if _, err := SweepBits(paperTopology, []int{8, 12}, DefaultConfig()); err == nil {
		t.Fatal("SweepBits accepted unsupported width")
	}
}

func TestZeroFillCyclesDefaults(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FillCycles = 0
	r := MustSimulate(paperTopology, cfg)
	if r.Cycles != MustSimulate(paperTopology, DefaultConfig()).Cycles {
		t.Fatal("zero FillCycles should default to 4")
	}
}
