// Package snnap simulates the paper's SNNAP-style neural-network
// accelerator (§III-A, Fig. 3): a single processing unit containing a
// configurable chain of fixed-point processing elements (PEs) with local
// weight SRAMs, a shared LUT sigmoid unit, operand FIFOs, and a vertically
// micro-coded sequencer.
//
// The simulator is schedule-exact: it derives per-layer wave schedules,
// counts every MAC, SRAM read, FIFO transfer, sigmoid lookup and sequencer
// cycle, and charges the event energies from internal/energy. Numerical
// behaviour (what the accelerator computes) lives in internal/fixed; this
// package answers how long it takes and what it costs.
package snnap

import (
	"fmt"

	"camsim/internal/energy"
	"camsim/internal/fixed"
)

// Schedule selects how input activations are issued to the PE chain.
type Schedule int

const (
	// ScheduleBroadcast drives each input to every PE in the same cycle
	// over the shared bus (the design evaluated in the paper).
	ScheduleBroadcast Schedule = iota
	// ScheduleStaggered skews inputs through the PE chain systolically,
	// adding a P-cycle fill/drain per wave but relaxing bus fan-out.
	// Kept as an ablation of the paper's design choice.
	ScheduleStaggered
)

func (s Schedule) String() string {
	if s == ScheduleStaggered {
		return "staggered"
	}
	return "broadcast"
}

// Config describes one accelerator design point.
type Config struct {
	PEs      int     // number of processing elements (the geometry knob)
	Bits     int     // datapath width: 4, 8 or 16
	FreqHz   float64 // clock (paper fixes 30 MHz)
	Schedule Schedule
	// FillCycles is the per-wave pipeline fill overhead (weight address
	// setup, first-operand latency). Defaults to 4 when zero.
	FillCycles int
}

// DefaultConfig returns the paper's selected design point: 8 PEs, 8-bit
// datapath, 30 MHz, broadcast schedule.
func DefaultConfig() Config {
	return Config{PEs: 8, Bits: 8, FreqHz: 30e6, FillCycles: 4}
}

func (c Config) String() string {
	return fmt.Sprintf("%dPE/%db@%.0fMHz/%s", c.PEs, c.Bits, c.FreqHz/1e6, c.Schedule)
}

// EnergyBreakdown itemizes where an inference's energy went.
type EnergyBreakdown struct {
	MAC, WeightRead, FIFO, Sigmoid, Sequencer, Clock, Leakage energy.Energy
}

// Total sums the breakdown.
func (b EnergyBreakdown) Total() energy.Energy {
	return b.MAC + b.WeightRead + b.FIFO + b.Sigmoid + b.Sequencer + b.Clock + b.Leakage
}

// Report is the outcome of simulating one inference.
type Report struct {
	Config Config

	Cycles      int64
	LatencySec  float64
	MACs        int64
	WeightReads int64
	FIFOOps     int64
	SigmoidOps  int64
	Waves       int64 // total schedule waves across layers

	// Utilization is the fraction of PE-cycles that performed a MAC.
	Utilization float64

	Energy    energy.Energy
	Breakdown EnergyBreakdown
	// ActivePower is the power drawn while the inference runs.
	ActivePower energy.Power
}

// Simulate runs the schedule for one forward pass of a network with the
// given layer sizes on design point cfg.
func Simulate(sizes []int, cfg Config) (Report, error) {
	if len(sizes) < 2 {
		return Report{}, fmt.Errorf("snnap: need at least 2 layers, got %d", len(sizes))
	}
	if cfg.PEs < 1 {
		return Report{}, fmt.Errorf("snnap: need at least 1 PE, got %d", cfg.PEs)
	}
	if cfg.FreqHz <= 0 {
		return Report{}, fmt.Errorf("snnap: invalid frequency %v", cfg.FreqHz)
	}
	ev, err := energy.ASICEventsFor(cfg.Bits)
	if err != nil {
		return Report{}, err
	}
	fill := cfg.FillCycles
	if fill <= 0 {
		fill = 4
	}

	var r Report
	r.Config = cfg
	for l := 0; l < len(sizes)-1; l++ {
		in, out := sizes[l], sizes[l+1]
		if in <= 0 || out <= 0 {
			return Report{}, fmt.Errorf("snnap: invalid layer size %d", min(in, out))
		}
		waves := int64((out + cfg.PEs - 1) / cfg.PEs)
		perWave := int64(in + 1 + fill) // inputs + bias cycle + fill
		if cfg.Schedule == ScheduleStaggered {
			perWave += int64(cfg.PEs) // systolic skew fill/drain
		}
		layerCycles := waves*perWave + int64(out) // + activation drain through sigmoid
		r.Cycles += layerCycles
		r.Waves += waves
		r.MACs += int64(out) * int64(in+1)
		r.WeightReads += int64(out) * int64(in+1)
		// FIFO traffic: input vector re-read once per wave, outputs pushed
		// through the accumulator and sigmoid FIFOs.
		r.FIFOOps += waves*int64(in) + 2*int64(out)
		r.SigmoidOps += int64(out)
	}
	r.LatencySec = float64(r.Cycles) / cfg.FreqHz
	r.Utilization = float64(r.MACs) / (float64(r.Cycles) * float64(cfg.PEs))

	b := EnergyBreakdown{
		MAC:        energy.Energy(r.MACs) * ev.MAC,
		WeightRead: energy.Energy(r.WeightReads) * ev.WeightRead,
		FIFO:       energy.Energy(r.FIFOOps) * ev.FIFO,
		Sigmoid:    energy.Energy(r.SigmoidOps) * ev.Sigmoid,
		Sequencer:  energy.Energy(r.Cycles) * ev.SeqCycle,
		Clock:      energy.Energy(r.Cycles) * energy.Energy(cfg.PEs) * ev.ClockPE,
		Leakage:    (ev.LeakBase + energy.Power(cfg.PEs)*ev.LeakPerPE).Over(r.LatencySec),
	}
	r.Breakdown = b
	r.Energy = b.Total()
	r.ActivePower = r.Energy.Average(r.LatencySec)
	return r, nil
}

// MustSimulate is Simulate for known-good arguments.
func MustSimulate(sizes []int, cfg Config) Report {
	r, err := Simulate(sizes, cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// Run simulates the inference of a quantized network AND computes its
// numerical result through the fixed-point datapath, so performance,
// energy and accuracy come from one coherent model.
func Run(q *fixed.Net, input []float64, cfg Config) ([]float64, Report, error) {
	if q.Bits != cfg.Bits {
		return nil, Report{}, fmt.Errorf("snnap: network quantized to %d bits but config is %d", q.Bits, cfg.Bits)
	}
	rep, err := Simulate(q.Sizes, cfg)
	if err != nil {
		return nil, Report{}, err
	}
	return q.Forward(input), rep, nil
}

// SweepPEs simulates the topology across PE counts, returning one report
// per count — the paper's accelerator-geometry exploration (energy-optimal
// at 8 PEs for the 400-8-1 network).
func SweepPEs(sizes []int, peCounts []int, base Config) ([]Report, error) {
	out := make([]Report, 0, len(peCounts))
	for _, p := range peCounts {
		cfg := base
		cfg.PEs = p
		r, err := Simulate(sizes, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// SweepBits simulates the topology across datapath widths at fixed
// geometry — the paper's numerical-precision exploration.
func SweepBits(sizes []int, widths []int, base Config) ([]Report, error) {
	out := make([]Report, 0, len(widths))
	for _, b := range widths {
		cfg := base
		cfg.Bits = b
		r, err := Simulate(sizes, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// TopologyEnergy is a convenience for the E1 sweep: energy per inference
// for an input-hidden-output topology at the default design point.
func TopologyEnergy(inputs, hidden, outputs int) energy.Energy {
	return MustSimulate([]int{inputs, hidden, outputs}, DefaultConfig()).Energy
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
