package fleet

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"camsim/internal/fleet/quantile"
)

// checkQuantileWithinEps asserts a sketch estimate lies between the
// exact sample values at ranks target±(Eps·n+1) — the value form of the
// rank bound, which stays meaningful when many samples tie (periodic
// identical-service traffic produces long runs of equal latencies, so
// one value can legitimately occupy a wide rank range).
func checkQuantileWithinEps(t *testing.T, label string, exact []float64, q, est float64) {
	t.Helper()
	n := len(exact)
	if n == 0 {
		if est != 0 {
			t.Errorf("%s q=%v: estimate %v with no samples", label, q, est)
		}
		return
	}
	target := int(math.Ceil(q * float64(n)))
	slack := int(math.Ceil(quantile.Eps*float64(n))) + 1
	clamp := func(r int) int {
		if r < 1 {
			return 1
		}
		if r > n {
			return n
		}
		return r
	}
	lo, hi := exact[clamp(target-slack)-1], exact[clamp(target+slack)-1]
	if est < lo || est > hi {
		t.Errorf("%s q=%v: estimate %v outside exact rank band [%v, %v] (n=%d)", label, q, est, lo, hi, n)
	}
}

// TestStreamingDifferential runs randomized scenarios down both
// statistics paths: the streaming run must reproduce every exact
// counter bit-for-bit (the collector only changes how latencies are
// accumulated, never the simulation), and its latency quantiles must
// sit within the sketch's documented rank-error bound of the exact
// nearest-rank answers.
func TestStreamingDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for iter := 0; iter < 25; iter++ {
		sc := randomScenario(rng)
		exact, err := Run(sc)
		if err != nil {
			t.Fatalf("iter %d: exact: %v", iter, err)
		}
		scs := sc
		scs.Telemetry = &TelemetryConfig{Streaming: true}
		stream, err := Run(scs)
		if err != nil {
			t.Fatalf("iter %d: streaming: %v", iter, err)
		}

		if exact.SimEnd != stream.SimEnd || exact.UplinkUtilization != stream.UplinkUtilization {
			t.Fatalf("iter %d (%s): run shape diverged: SimEnd %v vs %v", iter, sc.Name, exact.SimEnd, stream.SimEnd)
		}
		if !reflect.DeepEqual(exact.Tiers, stream.Tiers) {
			t.Fatalf("iter %d (%s): tier stats diverged", iter, sc.Name)
		}
		if exact.Energy != stream.Energy {
			t.Fatalf("iter %d (%s): energy diverged: %+v vs %+v", iter, sc.Name, exact.Energy, stream.Energy)
		}
		for ci := range exact.Classes {
			e, s := &exact.Classes[ci], &stream.Classes[ci]
			if e.Captured != s.Captured || e.Offloaded != s.Offloaded ||
				e.DroppedQueue != s.DroppedQueue || e.DroppedEnergy != s.DroppedEnergy ||
				e.EnergyJ != s.EnergyJ || e.Switches != s.Switches {
				t.Fatalf("iter %d (%s): class %s counters diverged:\n%+v\nvs\n%+v", iter, sc.Name, e.Name, e, s)
			}
			// finalize left the exact path's samples sorted in place.
			checkQuantileWithinEps(t, e.Name, e.latencies, 0.50, s.LatencyP50)
			checkQuantileWithinEps(t, e.Name, e.latencies, 0.95, s.LatencyP95)
			checkQuantileWithinEps(t, e.Name, e.latencies, 0.99, s.LatencyP99)
		}
		checkQuantileWithinEps(t, "fleet", exact.Total.latencies, 0.50, stream.Total.LatencyP50)
		checkQuantileWithinEps(t, "fleet", exact.Total.latencies, 0.95, stream.Total.LatencyP95)
		checkQuantileWithinEps(t, "fleet", exact.Total.latencies, 0.99, stream.Total.LatencyP99)
	}
}

// TestStreamingDeterministic pins the streaming path's replayability:
// the seeded compaction coin means two runs agree byte for byte.
func TestStreamingDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	sc := randomScenario(rng)
	sc.Telemetry = &TelemetryConfig{Streaming: true, WindowSec: 0.25}
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Table() != b.Table() {
		t.Fatalf("streaming tables diverged:\n%s\nvs\n%s", a.Table(), b.Table())
	}
	if !reflect.DeepEqual(a.TimeSeries, b.TimeSeries) {
		t.Fatal("time series diverged between identical runs")
	}
}

// windowedDemo is a small deterministic scenario with enough traffic to
// populate several windows, including queue pressure.
func windowedDemo() Scenario {
	return Scenario{
		Name:     "windowed",
		Seed:     42,
		Duration: 2,
		Tiers: []Tier{
			{Name: "gw", Parent: "core", Uplink: UplinkConfig{Gbps: 0.002}},
			{Name: "core", Uplink: UplinkConfig{Gbps: 0.004}},
		},
		Classes: []Class{
			{Name: "edge", Count: 20, FPS: 10, FrameBytes: 20_000, Tier: "gw", QueueDepth: 2},
			{Name: "hub", Count: 5, FPS: 4, FrameBytes: 10_000},
		},
		Telemetry: &TelemetryConfig{Streaming: true, WindowSec: 0.5},
	}
}

// TestWindowedTimeSeries checks the windowed output's accounting: the
// windows tile [0, SimEnd) in order, every window's counters sum to the
// run totals, utilizations are sane, and the rendered CSV/JSON agree
// with the structure.
func TestWindowedTimeSeries(t *testing.T) {
	res, err := Run(windowedDemo())
	if err != nil {
		t.Fatal(err)
	}
	ts := res.TimeSeries
	if ts == nil {
		t.Fatal("no time series")
	}
	if ts.WindowSec != 0.5 {
		t.Fatalf("window = %v", ts.WindowSec)
	}
	if want := []string{"edge", "hub"}; !reflect.DeepEqual(ts.Classes, want) {
		t.Fatalf("classes = %v", ts.Classes)
	}
	if want := []string{"gw", "core"}; !reflect.DeepEqual(ts.Tiers, want) {
		t.Fatalf("tiers = %v", ts.Tiers)
	}
	if len(ts.Windows) < 4 {
		t.Fatalf("only %d windows over %.1fs sim end", len(ts.Windows), res.SimEnd)
	}
	var offl, dropQ, dropE int64
	prevEnd := 0.0
	for i, win := range ts.Windows {
		if win.Index != i || win.Start != prevEnd || win.End <= win.Start {
			t.Fatalf("window %d malformed: %+v (prev end %v)", i, win, prevEnd)
		}
		prevEnd = win.End
		if len(win.Classes) != 2 || len(win.TierUtil) != 2 {
			t.Fatalf("window %d shape: %+v", i, win)
		}
		for ci, wc := range win.Classes {
			offl += wc.Offloaded
			dropQ += wc.DroppedQueue
			dropE += wc.DroppedEnergy
			if wc.Offloaded > 0 && (wc.P50 <= 0 || wc.P50 > wc.P95 || wc.P95 > wc.P99) {
				t.Fatalf("window %d class %d quantiles not ordered: %+v", i, ci, wc)
			}
			if wc.Offloaded == 0 && wc.P99 != 0 {
				t.Fatalf("window %d class %d quantiles without samples: %+v", i, ci, wc)
			}
		}
		for li, u := range win.TierUtil {
			if !(u >= 0) || math.IsInf(u, 0) {
				t.Fatalf("window %d tier %d utilization %v", i, li, u)
			}
		}
	}
	if prevEnd != res.SimEnd {
		t.Fatalf("windows end at %v, sim at %v", prevEnd, res.SimEnd)
	}
	// Conservation: bytes credit at completion, so a single window can
	// exceed utilization 1 — but the time-weighted mean across windows
	// must equal each link's run-wide utilization.
	for li, name := range ts.Tiers {
		ti := res.TierNamed(name)
		var weighted float64
		for _, win := range ts.Windows {
			weighted += win.TierUtil[li] * (win.End - win.Start)
		}
		if got := weighted / res.SimEnd; math.Abs(got-ti.Utilization) > 1e-9 {
			t.Fatalf("tier %s: windowed mean utilization %v, run-wide %v", name, got, ti.Utilization)
		}
	}
	if offl != res.Total.Offloaded || dropQ != res.Total.DroppedQueue || dropE != res.Total.DroppedEnergy {
		t.Fatalf("window sums %d/%d/%d, run totals %d/%d/%d",
			offl, dropQ, dropE, res.Total.Offloaded, res.Total.DroppedQueue, res.Total.DroppedEnergy)
	}
	if res.Total.Offloaded == 0 || res.Total.DroppedQueue == 0 {
		t.Fatal("scenario no longer exercises offloads and queue drops")
	}

	var csv, js strings.Builder
	if err := ts.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(csv.String(), "\n"), "\n")
	if want := 1 + len(ts.Windows)*(len(ts.Classes)+len(ts.Tiers)); len(lines) != want {
		t.Fatalf("CSV has %d lines, want %d", len(lines), want)
	}
	if !strings.HasPrefix(lines[0], "window,start_sec,end_sec,kind,name,") {
		t.Fatalf("CSV header: %q", lines[0])
	}
	if err := ts.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), "\"window_sec\": 0.5") {
		t.Fatalf("JSON missing window_sec: %.120s", js.String())
	}
}

// TestTelemetryValidation walks the section's rejection surface and the
// accepted forms.
func TestTelemetryValidation(t *testing.T) {
	base := windowedDemo()
	ok := base
	ok.Telemetry = &TelemetryConfig{Streaming: true}
	if _, err := Run(ok); err != nil {
		t.Fatalf("streaming without window rejected: %v", err)
	}
	for _, tc := range []struct {
		name string
		tel  *TelemetryConfig
		want string
	}{
		{"window without streaming", &TelemetryConfig{WindowSec: 1}, "streaming"},
		{"negative window", &TelemetryConfig{Streaming: true, WindowSec: -1}, "window"},
		{"infinite window", &TelemetryConfig{Streaming: true, WindowSec: math.Inf(1)}, "window"},
	} {
		sc := base
		sc.Telemetry = tc.tel
		if _, err := Run(sc); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestTelemetryOffIsExact pins that a present-but-disabled telemetry
// section (streaming: false) runs the legacy exact path: the table is
// byte-identical to one with no telemetry section at all.
func TestTelemetryOffIsExact(t *testing.T) {
	sc := windowedDemo()
	sc.Telemetry = nil
	plain, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	sc.Telemetry = &TelemetryConfig{}
	off, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Table() != off.Table() {
		t.Fatalf("disabled telemetry perturbed the run:\n%s\nvs\n%s", plain.Table(), off.Table())
	}
	if off.TimeSeries != nil {
		t.Fatal("disabled telemetry produced a time series")
	}
}
