package fleet

import (
	"fmt"
	"math"
)

// ComputeConfig is the optional per-tier "compute" scenario section: a
// finite pool of identical cores that services every offloaded frame a
// tier forwards, before the frame enters the tier's uplink. Without it a
// tier's processing is free and instantaneous — only links are contended
// — which prices gateway and cloud compute as infinite and lets the
// placement controllers solve only half of the paper's problem. With it,
// end-to-end latency becomes capture → in-camera compute → per-hop
// (queueing + service + transmission + propagation) → done, and a
// congested tier costs real delay.
//
// Service demand scales with the payload. The per-class service time
// (an explicit ServiceSec entry, or 1/ServiceRateFPS) is the cost of the
// class's *reference* payload — its largest placement row, or FrameBytes
// when it has no table. A frame carrying fewer bytes is serviced
// proportionally faster: the byte count is the simulator's proxy for how
// much of the vision pipeline remains (each in-camera stage shrinks the
// payload it ships), so a placement row that does more work in the
// camera leaves less work for every tier on the path. That coupling is
// what makes placement a joint network+compute decision rather than a
// pure bandwidth one.
//
// Federated-learning traffic (update blobs and model broadcasts) rides
// the links directly and never queues for tier compute: the rounds model
// aggregation as free at the tier, and pricing it would change FL
// scenarios that predate this section.
type ComputeConfig struct {
	// Cores is the number of identical servers in the pool. Normalize
	// defaults an unset (zero) value to 1.
	Cores int `json:"cores,omitempty"`
	// ServiceRateFPS is the default per-core service rate, in
	// reference-payload frames per second, for classes without an explicit
	// ServiceSec entry. One frame at the class's reference payload
	// occupies one core for 1/ServiceRateFPS seconds.
	ServiceRateFPS float64 `json:"service_rate_fps,omitempty"`
	// ServiceSec gives per-class service times that override
	// ServiceRateFPS. Every offloading class whose path crosses the tier
	// must resolve a service time one way or the other.
	ServiceSec []ClassServiceSec `json:"service_sec,omitempty"`
	// Discipline is how waiting frames share the pool: ContentionFIFO
	// (the default — frames are served in arrival order, one core each)
	// or ContentionFairShare (egalitarian processor sharing across the
	// pool, each frame capped at one core's rate).
	Discipline string `json:"discipline,omitempty"`
}

// ClassServiceSec is one per-class service-time override in a tier's
// compute section: frames of Class occupy one core for Sec seconds at
// the class's reference payload.
type ClassServiceSec struct {
	Class string  `json:"class"`
	Sec   float64 `json:"sec"`
}

// normalize fills the section's defaulted fields in place (idempotent).
func (cc *ComputeConfig) normalize() {
	if cc.Cores == 0 {
		cc.Cores = 1
	}
	if cc.Discipline == "" {
		cc.Discipline = ContentionFIFO
	}
}

// serviceSecFor resolves the per-frame service time for the named class
// at its reference payload: an explicit ServiceSec entry wins, then the
// ServiceRateFPS default. Zero means unresolvable (validation rejects
// that for classes whose frames actually cross the tier).
func (cc *ComputeConfig) serviceSecFor(class string) float64 {
	for _, e := range cc.ServiceSec {
		if e.Class == class {
			return e.Sec
		}
	}
	if cc.ServiceRateFPS > 0 {
		return 1 / cc.ServiceRateFPS
	}
	return 0
}

// referenceBytes is the payload the class's compute service times are
// quoted against: the largest placement row, or FrameBytes without a
// table. Zero means the class never offloads a frame.
func (c *Class) referenceBytes() float64 {
	ref := float64(c.FrameBytes)
	for _, p := range c.Placements {
		if b := float64(p.FrameBytes); b > ref {
			ref = b
		}
	}
	return ref
}

// validateComputeNodes checks every tier's compute section against the
// resolved tree: well-formed pool parameters, known discipline and
// classes, and a resolvable service time for every offloading class
// whose offload path crosses the tier.
func (sc *Scenario) validateComputeNodes(nodes []tierNode) error {
	any := false
	for _, nd := range nodes {
		cc := nd.Compute
		if cc == nil {
			continue
		}
		any = true
		if cc.Cores < 0 {
			return fmt.Errorf("fleet: tier %q: compute cores %d must be positive", nd.Name, cc.Cores)
		}
		if !(cc.ServiceRateFPS >= 0) || math.IsInf(cc.ServiceRateFPS, 0) {
			return fmt.Errorf("fleet: tier %q: compute service rate %v fps must be finite and non-negative",
				nd.Name, cc.ServiceRateFPS)
		}
		if cc.Discipline != "" && cc.Discipline != ContentionFIFO && cc.Discipline != ContentionFairShare {
			return fmt.Errorf("fleet: tier %q: unknown compute discipline %q", nd.Name, cc.Discipline)
		}
		if cc.ServiceRateFPS == 0 && len(cc.ServiceSec) == 0 {
			return fmt.Errorf("fleet: tier %q: compute needs service_rate_fps or service_sec", nd.Name)
		}
		seen := make(map[string]bool, len(cc.ServiceSec))
		for _, e := range cc.ServiceSec {
			if e.Class == "" {
				return fmt.Errorf("fleet: tier %q: compute service_sec entry names no class", nd.Name)
			}
			if seen[e.Class] {
				return fmt.Errorf("fleet: tier %q: duplicate compute service_sec for class %q", nd.Name, e.Class)
			}
			seen[e.Class] = true
			known := false
			for i := range sc.Classes {
				if sc.Classes[i].Name == e.Class {
					known = true
					break
				}
			}
			if !known {
				return fmt.Errorf("fleet: tier %q: compute service_sec names unknown class %q", nd.Name, e.Class)
			}
			if !(e.Sec > 0) || math.IsInf(e.Sec, 0) {
				return fmt.Errorf("fleet: tier %q: compute service %v sec for class %q must be positive and finite",
					nd.Name, e.Sec, e.Class)
			}
		}
	}
	if !any {
		return nil
	}
	// Every offloading class must resolve a service time at every compute
	// tier its frames actually pass through (attach tier up to the root).
	for ci := range sc.Classes {
		c := &sc.Classes[ci]
		if c.referenceBytes() <= 0 {
			continue // never offloads, never queues for compute
		}
		for ti := classAttachIndex(nodes, c); ti >= 0; ti = nodes[ti].parent {
			cc := nodes[ti].Compute
			if cc == nil {
				continue
			}
			if cc.serviceSecFor(c.Name) <= 0 {
				return fmt.Errorf("fleet: tier %q: compute has no service time for class %q (add a service_sec entry or a service_rate_fps default)",
					nodes[ti].Name, c.Name)
			}
		}
	}
	return nil
}

// classAttachIndex resolves the class's attach tier to a node index;
// the root when the class names none.
func classAttachIndex(nodes []tierNode, c *Class) int {
	at := c.attach()
	root := -1
	for i := range nodes {
		if at != "" && nodes[i].Name == at {
			return i
		}
		if nodes[i].parent < 0 {
			root = i
		}
	}
	return root
}

// computePlan resolves each tier's service scaling: plan[ti][ci] is the
// service demand in core-seconds per payload byte for class ci's frames
// at tier ti, so a frame of b bytes occupies plan[ti][ci]×b core-seconds
// there. plan is nil when no tier declares compute (the infinite-compute
// fast path), and plan[ti] is nil for tiers without a compute section.
func computePlan(nodes []tierNode, classes []Class) [][]float64 {
	var plan [][]float64
	for ti := range nodes {
		cc := nodes[ti].Compute
		if cc == nil {
			continue
		}
		if plan == nil {
			plan = make([][]float64, len(nodes))
		}
		row := make([]float64, len(classes))
		for ci := range classes {
			if ref := classes[ci].referenceBytes(); ref > 0 {
				row[ci] = cc.serviceSecFor(classes[ci].Name) / ref
			}
		}
		plan[ti] = row
	}
	return plan
}

// classPathScale sums a class's per-byte service demand over every
// compute tier between its attach point and the root: the deterministic
// compute cost, in core-seconds per byte, of offloading one payload byte
// end to end. Zero when no compute tier sits on the path.
func classPathScale(nodes []tierNode, plan [][]float64, ci int, attach int) float64 {
	if plan == nil {
		return 0
	}
	s := 0.0
	for ti := attach; ti >= 0; ti = nodes[ti].parent {
		if plan[ti] != nil {
			s += plan[ti][ci]
		}
	}
	return s
}

// classRowDelays prices each placement row's deterministic per-frame
// delay floor: the row's in-camera compute plus the expected path
// service time of its payload (offload probability × per-byte path
// demand × row bytes). Queueing rides on top of this floor at run time;
// the floor is what the controllers can price before observing it. A
// class without a placements table gets a single-row table.
func classRowDelays(c *Class, pathScale float64) []float64 {
	if len(c.Placements) == 0 {
		return []float64{c.ComputeSeconds + c.OffloadProb*pathScale*float64(c.FrameBytes)}
	}
	rows := make([]float64, len(c.Placements))
	for i, p := range c.Placements {
		rows[i] = p.ComputeSeconds + c.OffloadProb*pathScale*float64(p.FrameBytes)
	}
	return rows
}

// RowDelaySeconds reports the named class's per-placement-row delay
// floor (see classRowDelays) under this scenario's topology and compute
// sections: index i is the deterministic seconds per frame of placement
// row i — in-camera compute plus expected tier service — before any
// queueing. Rows through a congested tier therefore never observe less
// than this. Returns nil (no error) when no compute tier sits on the
// class's offload path, and an error for an unknown class or topology.
func (sc Scenario) RowDelaySeconds(class string) ([]float64, error) {
	// Normalize a private copy: the receiver is a value, but its slices
	// are shared with the caller, so re-back anything Normalize writes.
	sc.Classes = append([]Class(nil), sc.Classes...)
	sc.Gateways = append([]Gateway(nil), sc.Gateways...)
	sc.Tiers = append([]Tier(nil), sc.Tiers...)
	for i := range sc.Tiers {
		if cp := sc.Tiers[i].Compute; cp != nil {
			cc := *cp
			sc.Tiers[i].Compute = &cc
		}
		if d := sc.Tiers[i].Downlink; d != nil {
			dd := *d
			sc.Tiers[i].Downlink = &dd
		}
	}
	if sc.Dynamics != nil {
		dd := *sc.Dynamics
		dd.Events = append([]FleetEvent(nil), dd.Events...)
		sc.Dynamics = &dd
	}
	sc.Normalize()
	nodes, _, err := sc.topology()
	if err != nil {
		return nil, err
	}
	ci := -1
	for i := range sc.Classes {
		if sc.Classes[i].Name == class {
			ci = i
			break
		}
	}
	if ci < 0 {
		return nil, fmt.Errorf("fleet: scenario %q: unknown class %q", sc.Name, class)
	}
	plan := computePlan(nodes, sc.Classes)
	c := &sc.Classes[ci]
	scale := classPathScale(nodes, plan, ci, classAttachIndex(nodes, c))
	if scale == 0 {
		return nil, nil
	}
	return classRowDelays(c, scale), nil
}

// newComputeServer builds a tier's core pool as a Link whose "bytes" are
// core-seconds of service demand: the event loop drives it with the
// same Start/NextFinish/Finish protocol as the network links, so
// compute completions need no new event kinds and inherit the
// deterministic (time, link index) tie-break.
func newComputeServer(cc *ComputeConfig) Link {
	if cc.Discipline == ContentionFairShare {
		return &psCompute{cores: float64(cc.Cores)}
	}
	return &fifoCompute{cores: cc.Cores}
}

// --- FIFO core pool ---

// busyItem is one frame in service on a fifoCompute core.
type busyItem struct {
	finish float64
	seq    int64 // admission order, for deterministic tie-breaking
	id     int
	work   float64
}

// busyHeap is a specialized binary min-heap ordered by (finish, seq) —
// the unique admission seq makes the order total, so equal finish times
// pop in admission order, deterministically.
type busyHeap []busyItem

func (h busyHeap) less(i, j int) bool {
	if h[i].finish != h[j].finish {
		return h[i].finish < h[j].finish
	}
	return h[i].seq < h[j].seq
}

func (h *busyHeap) push(it busyItem) {
	s := append(*h, it)
	j := len(s) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !s.less(j, i) {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
	*h = s
}

func (h *busyHeap) pop() busyItem {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	i := 0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && s.less(j2, j) {
			j = j2
		}
		if !s.less(j, i) {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	it := s[n]
	*h = s[:n]
	return it
}

// fifoCompute is a multi-server FIFO queue: up to cores frames are in
// service concurrently, each on its own core at full rate; the rest wait
// in arrival order and take the core freed by the earliest completion.
// The waiting queue is the same power-of-two ring as fifoUplink.
type fifoCompute struct {
	cores   int
	busy    busyHeap
	ring    []fifoItem // waiting frames, arrival order
	head, n int
	seq     int64
	served  float64 // core-seconds of completed service
}

func (s *fifoCompute) Name() string { return ContentionFIFO }

func (s *fifoCompute) push(it fifoItem) {
	if s.n == len(s.ring) {
		grown := make([]fifoItem, max(4, 2*len(s.ring)))
		mask := len(s.ring) - 1
		for i := 0; i < s.n; i++ {
			grown[i] = s.ring[(s.head+i)&mask]
		}
		s.ring, s.head = grown, 0
	}
	s.ring[(s.head+s.n)&(len(s.ring)-1)] = it
	s.n++
}

func (s *fifoCompute) pop() fifoItem {
	it := s.ring[s.head]
	s.head = (s.head + 1) & (len(s.ring) - 1)
	s.n--
	return it
}

func (s *fifoCompute) Start(now float64, id int, work float64) {
	if len(s.busy) < s.cores {
		s.busy.push(busyItem{finish: now + work, seq: s.seq, id: id, work: work})
		s.seq++
		return
	}
	s.push(fifoItem{id: id, bytes: work})
}

func (s *fifoCompute) NextFinish() (float64, bool) {
	if len(s.busy) == 0 {
		return 0, false
	}
	return s.busy[0].finish, true
}

func (s *fifoCompute) Finish() int {
	it := s.busy.pop()
	s.served += it.work
	if s.n > 0 && len(s.busy) < s.cores {
		// The freed core immediately takes the longest-waiting frame. The
		// cores check only bites after a dynamics shrink: frames already
		// in service run to completion, and the pool promotes nothing
		// until the busy population fits the new size.
		next := s.pop()
		s.busy.push(busyItem{finish: it.finish + next.bytes, seq: s.seq, id: next.id, work: next.bytes})
		s.seq++
	}
	return it.id
}

func (s *fifoCompute) InFlight() int        { return len(s.busy) + s.n }
func (s *fifoCompute) ServedBytes() float64 { return s.served }

// setCores resizes the pool at time now. Growth promotes waiting frames
// onto the new cores immediately; shrink never preempts — in-service
// frames finish, and the pool re-admits only below the new size.
func (s *fifoCompute) setCores(now float64, cores int) {
	s.cores = cores
	for len(s.busy) < s.cores && s.n > 0 {
		next := s.pop()
		s.busy.push(busyItem{finish: now + next.bytes, seq: s.seq, id: next.id, work: next.bytes})
		s.seq++
	}
}

// drain removes every frame — in-service completion order first, then
// waiting order — crediting no served core-seconds.
func (s *fifoCompute) drain() []int {
	ids := make([]int, 0, len(s.busy)+s.n)
	for len(s.busy) > 0 {
		ids = append(ids, s.busy.pop().id)
	}
	for s.n > 0 {
		ids = append(ids, s.pop().id)
	}
	return ids
}

// --- fair-share core pool ---

// psCompute shares the pool by egalitarian processor sharing with the
// same virtual-time machinery as psUplink, with one extra constraint: a
// frame cannot run faster than one core, so with n frames in flight each
// progresses at min(1, cores/n) core-seconds per second — an underloaded
// pool runs every frame at full speed instead of splitting idle cores.
type psCompute struct {
	cores  float64
	vnow   float64 // virtual service accrued by every in-flight frame
	tlast  float64 // wall time at which vnow was computed
	h      psHeap
	seq    int64
	served float64 // core-seconds of completed service
}

func (s *psCompute) Name() string { return ContentionFairShare }

// rate is each in-flight frame's service rate in core-seconds/second.
func (s *psCompute) rate() float64 {
	if n := float64(len(s.h)); n > s.cores {
		return s.cores / n
	}
	return 1
}

// advance moves the virtual clock to wall time t.
func (s *psCompute) advance(t float64) {
	if len(s.h) > 0 && t > s.tlast {
		s.vnow += (t - s.tlast) * s.rate()
	}
	s.tlast = t
}

func (s *psCompute) Start(now float64, id int, work float64) {
	s.advance(now)
	s.h.push(psItem{id: id, bytes: work, vfinish: s.vnow + work, seq: s.seq})
	s.seq++
}

func (s *psCompute) NextFinish() (float64, bool) {
	if len(s.h) == 0 {
		return 0, false
	}
	remaining := s.h[0].vfinish - s.vnow
	if remaining < 0 {
		remaining = 0 // float drift guard
	}
	return s.tlast + remaining/s.rate(), true
}

func (s *psCompute) Finish() int {
	t, _ := s.NextFinish()
	s.advance(t)
	item := s.h.pop()
	s.vnow = item.vfinish // pin exactly, absorbing float drift
	s.served += item.bytes
	return item.id
}

func (s *psCompute) InFlight() int        { return len(s.h) }
func (s *psCompute) ServedBytes() float64 { return s.served }

// setCores resizes the pool at time now, conserving virtual progress:
// the clock advances at the old rate first, then every in-flight frame
// continues at the new min(1, cores/n).
func (s *psCompute) setCores(now float64, cores int) {
	s.advance(now)
	s.cores = float64(cores)
}

// drain removes every in-flight frame in completion order, crediting no
// served core-seconds.
func (s *psCompute) drain() []int {
	ids := make([]int, 0, len(s.h))
	for len(s.h) > 0 {
		ids = append(ids, s.h.pop().id)
	}
	return ids
}
