package fleet

import (
	"math"
	"testing"

	"camsim/internal/core"
)

// mixedScenario is a small saturating fleet: many periodic big-frame
// cameras plus Poisson small-frame harvesters.
func mixedScenario(seed int64, contention string) Scenario {
	return Scenario{
		Name:     "test-mixed",
		Seed:     seed,
		Duration: 5,
		Uplink:   UplinkConfig{Gbps: 0.1, Contention: contention},
		Classes: []Class{
			{
				Name: "big", Count: 20, FPS: 10, Arrival: ArrivalPeriodic,
				FrameBytes: 200_000, ComputeSeconds: 0.01, QueueDepth: 3,
				CaptureJ: 1e-3, ComputeJ: 5e-3, TxFixedJ: 1e-4, TxPerByteJ: 4e-8,
			},
			{
				Name: "small", Count: 50, FPS: 2, Arrival: ArrivalPoisson,
				FrameBytes: 1_000, OffloadProb: 0.8, ComputeSeconds: 0.005, QueueDepth: 4,
				CaptureJ: 3e-6, ComputeJ: 1e-6, TxFixedJ: 2e-6, TxPerByteJ: 5e-10,
				HarvestW: 5e-4, StoreJ: 0.05,
			},
		},
	}
}

func TestScenarioParseDefaultsAndValidate(t *testing.T) {
	sc, err := ParseScenario([]byte(`{
		"name": "json", "seed": 3, "duration_sec": 2,
		"uplink": {"gbps": 1},
		"classes": [{"name": "c", "count": 4, "fps": 5, "frame_bytes": 100}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Uplink.Contention != ContentionFairShare {
		t.Fatalf("default contention = %q", sc.Uplink.Contention)
	}
	c := sc.Classes[0]
	if c.Arrival != ArrivalPeriodic || c.QueueDepth != 4 || c.OffloadProb != 1 {
		t.Fatalf("defaults not applied: %+v", c)
	}
	if _, err := ParseScenario([]byte(`{"duration_sec": 2, "uplink": {"gbps": 1}}`)); err == nil {
		t.Fatal("accepted scenario without classes")
	}
	if _, err := ParseScenario([]byte(`{
		"duration_sec": 2, "uplink": {"gbps": 1, "contention": "priority"},
		"classes": [{"name": "c", "count": 1, "fps": 1}]
	}`)); err == nil {
		t.Fatal("accepted unknown contention model")
	}
}

func TestRunDeterministicAcrossRepeats(t *testing.T) {
	for _, contention := range []string{ContentionFairShare, ContentionFIFO} {
		a, err := Run(mixedScenario(42, contention))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(mixedScenario(42, contention))
		if err != nil {
			t.Fatal(err)
		}
		if a.Table() != b.Table() {
			t.Fatalf("%s: same seed produced different tables:\n%s\nvs\n%s", contention, a.Table(), b.Table())
		}
		c, err := Run(mixedScenario(43, contention))
		if err != nil {
			t.Fatal(err)
		}
		if a.Table() == c.Table() {
			t.Fatalf("%s: different seeds produced identical tables", contention)
		}
	}
}

func TestUplinkSingleAndSharedService(t *testing.T) {
	// One 1000-byte transfer on a 1000 B/s link takes 1 s under both
	// models; two admitted together take 1 s and 2 s under FIFO, and both
	// 2 s under fair share.
	for _, model := range []string{ContentionFIFO, ContentionFairShare} {
		up, err := NewUplink(model, 1000)
		if err != nil {
			t.Fatal(err)
		}
		up.Start(0, 0, 1000)
		up.Start(0, 1, 1000)
		t1, ok := up.NextFinish()
		if !ok {
			t.Fatalf("%s: no in-flight transfer", model)
		}
		first := up.Finish()
		t2, _ := up.NextFinish()
		up.Finish()
		if model == ContentionFIFO {
			if first != 0 || math.Abs(t1-1) > 1e-9 || math.Abs(t2-2) > 1e-9 {
				t.Fatalf("fifo: finish(%d)=%v, then %v", first, t1, t2)
			}
		} else {
			if math.Abs(t1-2) > 1e-9 || math.Abs(t2-2) > 1e-9 {
				t.Fatalf("fair-share: finishes %v, %v, want both 2", t1, t2)
			}
		}
		if up.InFlight() != 0 || up.ServedBytes() != 2000 {
			t.Fatalf("%s: inflight %d served %v after drain", model, up.InFlight(), up.ServedBytes())
		}
	}
}

func TestFairShareConservesCapacity(t *testing.T) {
	// Under saturating load the uplink must never serve more than capacity:
	// the sum of per-camera throughputs, i.e. served bytes over elapsed
	// time, stays ≤ capacity (and under this load, close to it).
	sc := mixedScenario(7, ContentionFairShare)
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Independent tally: completed offloads × payload, per class.
	capacity := sc.Uplink.BytesPerSecond()
	var servedBytes float64
	for i, cl := range res.Classes {
		servedBytes += float64(cl.Offloaded) * float64(sc.Classes[i].FrameBytes)
	}
	if servedBytes > capacity*res.SimEnd*(1+1e-9) {
		t.Fatalf("served %v bytes in %v s exceeds capacity %v B/s", servedBytes, res.SimEnd, capacity)
	}
	if got := servedBytes / (capacity * res.SimEnd); math.Abs(got-res.UplinkUtilization) > 1e-9 {
		t.Fatalf("reported utilization %v != per-class tally %v", res.UplinkUtilization, got)
	}
	if res.UplinkUtilization < 0.8 {
		t.Fatalf("saturating load only reached %v utilization", res.UplinkUtilization)
	}
}

func TestOffloadAccountingConserved(t *testing.T) {
	// With OffloadProb 1 every captured frame is offloaded, dropped by
	// backpressure, or skipped for energy — after the drain, nothing else.
	sc := mixedScenario(9, ContentionFairShare)
	sc.Classes = sc.Classes[:1] // the prob-1 class
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Classes[0]
	if s.Captured == 0 || s.DroppedQueue == 0 {
		t.Fatalf("expected saturation with drops, got %+v", s)
	}
	if s.Offloaded+s.DroppedQueue+s.DroppedEnergy != s.Captured {
		t.Fatalf("accounting leak: %+v", s)
	}
}

func TestDropCausesAreExclusive(t *testing.T) {
	// A harvesting prob-1 class pushed into both queue saturation and
	// energy starvation: each dropped frame must carry exactly one cause,
	// so the conservation identity (and DropRate ≤ 1) still holds.
	sc := mixedScenario(21, ContentionFairShare)
	sc.Classes = []Class{{
		Name: "both", Count: 30, FPS: 20, Arrival: ArrivalPeriodic,
		FrameBytes: 500_000, ComputeSeconds: 0.01, QueueDepth: 2,
		CaptureJ: 1e-4, ComputeJ: 1e-4, TxFixedJ: 1e-4, TxPerByteJ: 1e-9,
		HarvestW: 1e-3, StoreJ: 5e-3,
	}}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Classes[0]
	if s.DroppedQueue == 0 || s.DroppedEnergy == 0 {
		t.Fatalf("scenario should exercise both drop causes: %+v", s)
	}
	if s.Offloaded+s.DroppedQueue+s.DroppedEnergy != s.Captured {
		t.Fatalf("drop causes not exclusive: %+v", s)
	}
	if s.DropRate() > 1 {
		t.Fatalf("drop rate %v > 1", s.DropRate())
	}
}

func TestRunDoesNotMutateCallerClasses(t *testing.T) {
	// Scenario values built by hand often share one Classes backing array
	// (copy-and-tweak); Run must normalize a private copy, both to keep
	// the caller's structs intact and to stay race-free under Sweep.
	classes := []Class{{Name: "c", Count: 2, FPS: 1, FrameBytes: 100}}
	sc := Scenario{Name: "m", Duration: 1, Uplink: UplinkConfig{Gbps: 1}, Classes: classes}
	if _, err := Run(sc); err != nil {
		t.Fatal(err)
	}
	if classes[0].QueueDepth != 0 || classes[0].OffloadProb != 0 || classes[0].Arrival != "" {
		t.Fatalf("Run wrote defaults into the caller's class: %+v", classes[0])
	}
}

func TestFairShareProtectsSmallFlowsVsFIFO(t *testing.T) {
	// The design motivation for pluggable contention: behind multi-second
	// VR frames, a FIFO uplink head-of-line-blocks the face-auth chips;
	// processor sharing lets them slip through.
	ps, err := Run(mixedScenario(11, ContentionFairShare))
	if err != nil {
		t.Fatal(err)
	}
	ff, err := Run(mixedScenario(11, ContentionFIFO))
	if err != nil {
		t.Fatal(err)
	}
	small := func(r *Result) ClassStats { return r.Classes[1] }
	if small(ps).LatencyP50 >= small(ff).LatencyP50 {
		t.Fatalf("fair-share p50 %v not below FIFO p50 %v",
			small(ps).LatencyP50, small(ff).LatencyP50)
	}
}

func TestHarvestStarvationDropsFrames(t *testing.T) {
	sc := mixedScenario(5, ContentionFairShare)
	sc.Classes = sc.Classes[1:] // harvesting class only
	sc.Classes[0].HarvestW = 1e-6
	sc.Classes[0].StoreJ = 1e-5
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Classes[0]
	if s.DroppedEnergy == 0 {
		t.Fatalf("starved harvester dropped nothing: %+v", s)
	}
}

func TestClassBuildersComposeSingleCameraModels(t *testing.T) {
	fa := FaceAuthClass(10)
	if fa.Count != 10 || fa.FrameBytes != 400 || fa.HarvestW <= 0 {
		t.Fatalf("FaceAuthClass: %+v", fa)
	}
	if fa.OffloadProb <= 0 || fa.OffloadProb > 0.2 {
		t.Fatalf("progressive filtering should offload a small fraction, got %v", fa.OffloadProb)
	}
	p := PaperVRPipeline()
	full := core.Placement{InCamera: 4, Impl: []string{"CPU", "CPU", "FPGA", "FPGA"}}
	vrFull, err := VRClass(5, full, 30)
	if err != nil {
		t.Fatal(err)
	}
	vrRaw, err := VRClass(5, core.Placement{}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if vrFull.FrameBytes >= vrRaw.FrameBytes {
		t.Fatalf("full in-camera placement should shrink the payload: %d vs %d",
			vrFull.FrameBytes, vrRaw.FrameBytes)
	}
	cost, err := p.Cost(full)
	if err != nil {
		t.Fatal(err)
	}
	if vrFull.FrameBytes != cost.OffloadBytes || vrFull.ComputeSeconds != cost.ComputeSeconds {
		t.Fatalf("VRClass does not reflect the core cost hook: %+v vs %+v", vrFull, cost)
	}
}

func TestCoreCostHookMatchesEvaluate(t *testing.T) {
	p := PaperVRPipeline()
	for _, pl := range p.Enumerate([]string{"CPU", "GPU", "FPGA"}) {
		cost, err := p.Cost(pl)
		if err != nil {
			t.Fatal(err)
		}
		a, err := p.Evaluate(pl, 3.125e9)
		if err != nil {
			t.Fatal(err)
		}
		if cost.OffloadBytes != a.OffloadBytes {
			t.Fatalf("%s: bytes %d vs %d", a.Label, cost.OffloadBytes, a.OffloadBytes)
		}
		if math.Abs(cost.ComputeSeconds*a.ComputeFPS-1) > 1e-9 {
			t.Fatalf("%s: compute %v s vs %v FPS", a.Label, cost.ComputeSeconds, a.ComputeFPS)
		}
	}
}

func TestPerCameraSeedsCollisionFree(t *testing.T) {
	// The old derivation shifted the seed left by 20 bits before mixing:
	// the top 20 seed bits vanished, and (seed, idx) and (seed, idx+2^20)
	// collided outright. Two full splitmix64 rounds must keep every
	// combination distinct — including camera indexes at and beyond 2^20
	// and seeds differing only in their high bits.
	seeds := []int64{0, 1, 42, 1 << 44, (1 << 44) + 1, -1}
	idxs := []int{0, 1, 1000, 1 << 20, (1 << 20) + 1, 1 << 21}
	seen := map[int64][2]any{}
	for _, s := range seeds {
		for _, i := range idxs {
			h := cameraSeed(s, i)
			if prev, dup := seen[h]; dup {
				t.Fatalf("cameraSeed(%d,%d) == cameraSeed(%v,%v) == %d", s, i, prev[0], prev[1], h)
			}
			seen[h] = [2]any{s, i}
		}
	}
	// And the old failure mode specifically: same seed, indexes 2^20 apart.
	if cameraSeed(7, 3) == cameraSeed(7, 3+1<<20) {
		t.Fatal("camera indexes 2^20 apart still collide")
	}
}

func TestFIFOQueueBoundedOverLongRun(t *testing.T) {
	// Regression for the queue = queue[1:] backing-array leak: with a
	// bounded backlog, the ring must stay near the peak concurrency no
	// matter how many transfers pass through (the old code retained every
	// popped head for the life of the run).
	up, err := NewUplink(ContentionFIFO, 1000)
	if err != nil {
		t.Fatal(err)
	}
	fifo := up.(*fifoUplink)
	now := 0.0
	const transfers = 200_000
	for i := 0; i < transfers; i++ {
		up.Start(now, i, 100)
		if up.InFlight() >= 8 {
			ft, _ := up.NextFinish()
			up.Finish()
			now = ft
		}
	}
	for up.InFlight() > 0 {
		up.Finish()
	}
	if len(fifo.ring) > 16 {
		t.Fatalf("ring grew to %d slots for a backlog that never exceeded 8", len(fifo.ring))
	}
	if up.ServedBytes() != transfers*100 {
		t.Fatalf("served %v bytes, want %v", up.ServedBytes(), transfers*100)
	}
}

func TestPreallocationEstimatesClamped(t *testing.T) {
	// A valid scenario (all fields positive and finite, accepted by
	// Validate) can make FPS × Duration × Count overflow float64→int;
	// int() of an out-of-range float is unspecified and a negative cap
	// panics make. The estimate helper must clamp every pathological
	// input instead of letting Run panic on a scenario Validate accepted.
	cases := []struct {
		in   float64
		want int
	}{
		{-1, 0}, {0, 0}, {math.NaN(), 0}, {0.5, 0}, {10.9, 10},
		{1 << 22, 1 << 22}, {1e200, 1 << 22}, {math.Inf(1), 1 << 22},
		{math.MaxFloat64, 1 << 22},
	}
	for _, tc := range cases {
		if got := clampEst(tc.in); got != tc.want {
			t.Fatalf("clampEst(%v) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestSweepParallelMatchesSerial exercises the worker pool (under -race in
// CI) and pins sweep outputs to serial runs.
func TestSweepParallelMatchesSerial(t *testing.T) {
	var scs []Scenario
	for seed := int64(0); seed < 6; seed++ {
		sc := mixedScenario(seed, ContentionFairShare)
		sc.Duration = 2
		scs = append(scs, sc)
	}
	outs := Sweep(scs, 4)
	for i, o := range outs {
		if o.Err != nil {
			t.Fatal(o.Err)
		}
		serial, err := Run(scs[i])
		if err != nil {
			t.Fatal(err)
		}
		if o.Result.Table() != serial.Table() {
			t.Fatalf("sweep[%d] diverged from serial run:\n%s\nvs\n%s", i, o.Result.Table(), serial.Table())
		}
	}
	if got := Sweep(nil, 0); len(got) != 0 {
		t.Fatalf("empty sweep returned %d outcomes", len(got))
	}
}
