package fleet

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// chainScenario is a three-tier chain (gw-a → metro → core) carrying one
// camera whose single frame has an analytically known latency.
func chainScenario() Scenario {
	return Scenario{
		Name:     "chain-analytic",
		Seed:     1,
		Duration: 1, // exactly one periodic frame: phase < 1/FPS = duration
		Tiers: []Tier{
			{Name: "gw-a", Parent: "metro", Uplink: UplinkConfig{Gbps: 8e-3}, PropagationSec: 0.001},
			{Name: "metro", Parent: "core", Uplink: UplinkConfig{Gbps: 16e-3}, PropagationSec: 0.005},
			{Name: "core", Uplink: UplinkConfig{Gbps: 32e-3}, PropagationSec: 0.02},
		},
		Classes: []Class{{
			Name: "cam", Count: 1, FPS: 1, Arrival: ArrivalPeriodic, Tier: "gw-a",
			FrameBytes: 100_000, OffloadProb: 1, ComputeSeconds: 0.01,
		}},
	}
}

func TestPropagationAnalyticSingleTransfer(t *testing.T) {
	// With one transfer and no contention, capture-to-cloud latency is the
	// in-camera compute plus, per hop, transmission at that link's full
	// capacity plus its one-way propagation delay:
	//   0.01 + (1e5/1e6 + 0.001) + (1e5/2e6 + 0.005) + (1e5/4e6 + 0.02)
	const want = 0.01 + (0.1 + 0.001) + (0.05 + 0.005) + (0.025 + 0.02)
	res, err := Run(chainScenario())
	if err != nil {
		t.Fatal(err)
	}
	s := res.Classes[0]
	if s.Captured != 1 || s.Offloaded != 1 {
		t.Fatalf("expected exactly one offloaded frame, got %+v", s)
	}
	if math.Abs(s.LatencyP50-want) > 1e-9 {
		t.Fatalf("latency %v, want %v (per-hop tx + propagation)", s.LatencyP50, want)
	}
	if len(res.Tiers) != 3 {
		t.Fatalf("tiers: %+v", res.Tiers)
	}
	for _, ti := range res.Tiers {
		if ti.ServedBytes != 100_000 || ti.Transfers != 1 {
			t.Fatalf("tier %s served %v bytes in %d transfers, want the one frame",
				ti.Name, ti.ServedBytes, ti.Transfers)
		}
		if got := ti.PropDelayTotal(); got != ti.PropagationSec {
			t.Fatalf("tier %s hop-delay total %v, want %v for one transfer", ti.Name, got, ti.PropagationSec)
		}
	}
	wantDepths := map[string]int{"gw-a": 2, "metro": 1, "core": 0}
	for _, ti := range res.Tiers {
		if ti.Depth != wantDepths[ti.Name] {
			t.Fatalf("tier %s depth %d, want %d", ti.Name, ti.Depth, wantDepths[ti.Name])
		}
	}
	if rt := res.TierNamed("core"); rt == nil || res.UplinkUtilization != rt.Utilization {
		t.Fatalf("UplinkUtilization %v does not reference the root tier %+v", res.UplinkUtilization, rt)
	}
}

func TestZeroPropagationTiersMatchLegacyGateways(t *testing.T) {
	// A depth-2 tier tree with zero propagation is the same machine as the
	// legacy gateways form: identical names must yield byte-identical
	// tables (same event order, same per-tier stats).
	legacy := twoTierScenario(3, PolicyLatencyThreshold, 0)
	tree := legacy
	tree.Gateways = nil
	tree.Tiers = []Tier{
		{Name: "edge", Parent: "wan", Uplink: UplinkConfig{Gbps: 0.05, Contention: ContentionFairShare}},
		{Name: "wan", Uplink: UplinkConfig{Gbps: 0.1, Contention: ContentionFairShare}},
	}
	a, err := Run(legacy)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tree)
	if err != nil {
		t.Fatal(err)
	}
	if a.Table() != b.Table() {
		t.Fatalf("tiers form diverged from gateways form:\n%s\nvs\n%s", a.Table(), b.Table())
	}
}

func TestTierTreeValidation(t *testing.T) {
	base := chainScenario()
	mutate := func(f func(*Scenario)) Scenario {
		sc := base
		sc.Tiers = append([]Tier(nil), base.Tiers...)
		sc.Classes = append([]Class(nil), base.Classes...)
		f(&sc)
		return sc
	}
	cases := []struct {
		name string
		sc   Scenario
	}{
		{"unknown parent", mutate(func(sc *Scenario) { sc.Tiers[0].Parent = "nowhere" })},
		{"two roots", mutate(func(sc *Scenario) { sc.Tiers[1].Parent = "" })},
		{"cycle (no root)", mutate(func(sc *Scenario) { sc.Tiers[2].Parent = "gw-a" })},
		{"self parent", mutate(func(sc *Scenario) { sc.Tiers[2].Parent = ""; sc.Tiers[0].Parent = "gw-a" })},
		{"duplicate tier", mutate(func(sc *Scenario) { sc.Tiers[0].Name = "metro"; sc.Classes[0].Tier = "metro" })},
		{"unnamed tier", mutate(func(sc *Scenario) { sc.Tiers[0].Name = ""; sc.Classes[0].Tier = "" })},
		{"negative propagation", mutate(func(sc *Scenario) { sc.Tiers[1].PropagationSec = -1 })},
		{"infinite propagation", mutate(func(sc *Scenario) { sc.Tiers[1].PropagationSec = math.Inf(1) })},
		{"unknown attach tier", mutate(func(sc *Scenario) { sc.Classes[0].Tier = "nowhere" })},
		{"tier and gateway disagree", mutate(func(sc *Scenario) { sc.Classes[0].Gateway = "metro" })},
		{"tiers mixed with gateways", mutate(func(sc *Scenario) {
			sc.Gateways = []Gateway{{Name: "g", Uplink: UplinkConfig{Gbps: 1}}}
		})},
		{"top-level uplink conflicts with root tier", mutate(func(sc *Scenario) {
			sc.Uplink = UplinkConfig{Gbps: 100}
		})},
		{"contention-only uplink conflicts with root tier", mutate(func(sc *Scenario) {
			sc.Uplink = UplinkConfig{Contention: ContentionFIFO}
		})},
		{"zero-capacity tier", mutate(func(sc *Scenario) { sc.Tiers[1].Uplink.Gbps = 0 })},
	}
	for _, tc := range cases {
		if _, err := Run(tc.sc); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// A gateway may not shadow the synthesized root of the legacy form.
	bad := mixedScenario(1, ContentionFairShare)
	bad.Gateways = []Gateway{{Name: "wan", Uplink: UplinkConfig{Gbps: 1}}}
	if _, err := Run(bad); err == nil {
		t.Error("accepted a gateway named wan")
	}
	// Nor may a legacy class attach to the synthesized root by name —
	// "gateway": "wan" stays the typo it was before tier trees (empty
	// already attaches at the root).
	bad = twoTierScenario(1, PolicyStatic, 0)
	bad.Classes = append([]Class(nil), bad.Classes...)
	bad.Classes[1].Gateway = "wan"
	if _, err := Run(bad); err == nil {
		t.Error("accepted a legacy class attached to the synthesized root by name")
	}
	// In the tiers form the root is a first-class attach point.
	ok := chainScenario()
	ok.Classes = append([]Class(nil), ok.Classes...)
	ok.Classes[0].Tier = "core"
	if _, err := Run(ok); err != nil {
		t.Errorf("rejected a tier-form class attached at the root: %v", err)
	}
	// Validate must accept a fully-explicit tiers scenario before
	// Normalize has mirrored the root uplink into the undeclared
	// top-level one.
	explicit := chainScenario()
	for i := range explicit.Tiers {
		explicit.Tiers[i].Uplink.Contention = ContentionFairShare
	}
	if err := explicit.Validate(); err != nil {
		t.Errorf("un-normalized explicit tiers scenario failed Validate: %v", err)
	}
}

// randomTreeScenario builds a random-but-valid scenario over a random tier
// tree of up to five nodes, classes attached anywhere (including the root).
func randomTreeScenario(rng *rand.Rand) Scenario {
	sc := Scenario{
		Name:     fmt.Sprintf("tree-%d", rng.Int63()),
		Seed:     rng.Int63n(1 << 30),
		Duration: 0.5 + rng.Float64()*1.5,
	}
	nTiers := 1 + rng.Intn(5)
	for i := 0; i < nTiers; i++ {
		ti := Tier{
			Name: fmt.Sprintf("t%d", i),
			Uplink: UplinkConfig{
				Gbps:       0.001 + rng.Float64()*0.05,
				Contention: []string{ContentionFairShare, ContentionFIFO}[rng.Intn(2)],
			},
		}
		if i > 0 {
			// Any earlier node as parent: a uniformly random tree shape.
			ti.Parent = fmt.Sprintf("t%d", rng.Intn(i))
			if rng.Intn(2) == 0 {
				ti.PropagationSec = rng.Float64() * 0.01
			}
		}
		sc.Tiers = append(sc.Tiers, ti)
	}
	nClasses := 1 + rng.Intn(3)
	for i := 0; i < nClasses; i++ {
		c := Class{
			Name:           fmt.Sprintf("c%d", i),
			Count:          1 + rng.Intn(25),
			FPS:            0.5 + rng.Float64()*20,
			Arrival:        []string{ArrivalPeriodic, ArrivalPoisson}[rng.Intn(2)],
			FrameBytes:     int64(1 + rng.Intn(500_000)),
			OffloadProb:    rng.Float64(),
			ComputeSeconds: rng.Float64() * 0.05,
			QueueDepth:     1 + rng.Intn(6),
			Tier:           fmt.Sprintf("t%d", rng.Intn(nTiers)),
		}
		if rng.Intn(4) == 0 {
			c.Tier = "" // attach at the root
		}
		if rng.Intn(3) == 0 {
			c.HarvestW = 1e-5 + rng.Float64()*1e-3
			c.StoreJ = 1e-4 + rng.Float64()*0.1
		}
		sc.Classes = append(sc.Classes, c)
	}
	return sc
}

func TestTierTreeServedBytesConservedHopToHop(t *testing.T) {
	// Once a run drains, every link's served payload must equal the bytes
	// its directly attached classes offloaded plus everything its child
	// tiers forwarded up — byte conservation at every hop of the tree.
	// (Exact equality: served bytes are sums of integer frame sizes, which
	// float64 adds exactly regardless of order.)
	rng := rand.New(rand.NewSource(4242))
	for iter := 0; iter < 60; iter++ {
		sc := randomTreeScenario(rng)
		res, err := Run(sc)
		if err != nil {
			t.Fatalf("iter %d: %v\nscenario: %+v", iter, err, sc)
		}
		nodes, root, err := sc.topology()
		if err != nil {
			t.Fatal(err)
		}
		expect := make([]float64, len(nodes))
		for ci, cl := range sc.Classes {
			li := root
			if at := cl.attach(); at != "" {
				for i := range nodes {
					if nodes[i].Name == at {
						li = i
					}
				}
			}
			expect[li] += float64(res.Classes[ci].Offloaded) * float64(cl.FrameBytes)
		}
		// Children forward everything they serve; accumulate leaf-to-root
		// (a child is strictly deeper than its parent, so walk depths in
		// decreasing order).
		for d := len(nodes); d >= 0; d-- {
			for i, nd := range nodes {
				if nd.depth == d && nd.parent >= 0 {
					expect[nd.parent] += res.Tiers[i].ServedBytes
				}
			}
		}
		for i, nd := range nodes {
			if got := res.Tiers[i].ServedBytes; got != expect[i] {
				t.Fatalf("iter %d: tier %s served %v bytes, conservation expects %v\nscenario: %+v",
					iter, nd.Name, got, expect[i], sc)
			}
			if res.Tiers[i].Utilization < 0 || res.Tiers[i].Utilization > 1+1e-9 {
				t.Fatalf("iter %d: tier %s utilization %v", iter, nd.Name, res.Tiers[i].Utilization)
			}
		}
	}
}

func TestIndexedCompletionMatchesScanBaseline(t *testing.T) {
	// The heap-backed link-completion index must replay every scenario —
	// flat, gateways, and deep trees — byte-identically to the O(links)
	// scan it replaced, including completion-time tie-breaks.
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 40; iter++ {
		var sc Scenario
		if iter%2 == 0 {
			sc = randomScenario(rng)
		} else {
			sc = randomTreeScenario(rng)
		}
		fast, err := run(sc, true)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		slow, err := run(sc, false)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if fast.Table() != slow.Table() {
			t.Fatalf("iter %d: indexed run diverged from scan baseline:\n%s\nvs\n%s",
				iter, fast.Table(), slow.Table())
		}
	}
}

func TestDeepTopologyScenarioAdaptsAndPaysPropagationFloor(t *testing.T) {
	run := func(policy string) *Result {
		sc, err := DeepTopologyScenario(1, 3, policy)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	static, adaptive := run(PolicyStatic), run(PolicyLatencyThreshold)
	if len(adaptive.Tiers) != 4 {
		t.Fatalf("depth-3 demo should resolve 4 tiers, got %+v", adaptive.Tiers)
	}
	// Propagation-inclusive latency: even adapted, no offload can beat the
	// summed one-way delays of the gw→metro→core path.
	const floor = 0.0002 + 0.002 + 0.01
	for _, i := range []int{0, 2} { // the two VR classes
		sp, ap := static.Classes[i], adaptive.Classes[i]
		if ap.LatencyP50 < floor {
			t.Fatalf("%s: p50 %v beats the %v propagation floor", ap.Name, ap.LatencyP50, floor)
		}
		if ap.LatencyP95 >= sp.LatencyP95 {
			t.Fatalf("%s: adaptive p95 %v not below static %v", ap.Name, ap.LatencyP95, sp.LatencyP95)
		}
		if ap.Switches == 0 {
			t.Fatalf("%s: deep congestion never moved a camera", ap.Name)
		}
	}
	if rt := adaptive.TierNamed("core"); rt == nil || adaptive.UplinkUtilization != rt.Utilization {
		t.Fatalf("UplinkUtilization not tied to the core tier")
	}
	if _, err := DeepTopologyScenario(1, 1, PolicyStatic); err == nil {
		t.Fatal("accepted depth 1")
	}
	again := run(PolicyLatencyThreshold)
	if adaptive.Table() != again.Table() {
		t.Fatalf("same seed produced different tables:\n%s\nvs\n%s", adaptive.Table(), again.Table())
	}
}
