package fleet

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// The finite-compute pools are small enough to check against queueing
// arithmetic done by hand: a single FIFO server fed periodically either
// never queues (λ < μ) or builds a deterministic ramp of waits
// (λ > μ, the n-th frame waiting (n-1)(s-a) seconds). The unit tests pin
// those numbers on the servers directly; the sim-level test pins them
// end to end through Run; the trace test holds the same conservation
// invariants as the uplinks under arbitrary interleavings.

// TestFIFOComputeAnalytic drives the single-core FIFO pool with periodic
// arrivals and checks every finish time against the hand computation.
func TestFIFOComputeAnalytic(t *testing.T) {
	const eps = 1e-12

	// Underload: interarrival 0.1, service 0.05 — every frame finds the
	// core idle and finishes exactly one service time after arrival.
	s := newComputeServer(&ComputeConfig{Cores: 1, ServiceRateFPS: 1, Discipline: ContentionFIFO})
	for i := 0; i < 10; i++ {
		at := float64(i) * 0.1
		s.Start(at, i, 0.05)
		ft, ok := s.NextFinish()
		if !ok || math.Abs(ft-(at+0.05)) > eps {
			t.Fatalf("underload frame %d: finish %v, want %v", i, ft, at+0.05)
		}
		if id := s.Finish(); id != i {
			t.Fatalf("underload frame %d: finished id %d", i, id)
		}
	}
	if got := s.ServedBytes(); math.Abs(got-0.5) > eps {
		t.Fatalf("underload served %v work-seconds, want 0.5", got)
	}

	// Overload: interarrival a=0.05, service s=0.1. The queue never
	// drains, so frame n starts when frame n-1 finishes: finish_n =
	// a_0 + (n+1)s, and its wait is finish_n - arrival_n - s = n(s-a).
	s = newComputeServer(&ComputeConfig{Cores: 1, ServiceRateFPS: 1, Discipline: ContentionFIFO})
	const n = 20
	for i := 0; i < n; i++ {
		s.Start(float64(i)*0.05, i, 0.1)
	}
	for i := 0; i < n; i++ {
		ft, ok := s.NextFinish()
		want := float64(i+1) * 0.1
		if !ok || math.Abs(ft-want) > eps {
			t.Fatalf("overload frame %d: finish %v, want %v", i, ft, want)
		}
		if id := s.Finish(); id != i {
			t.Fatalf("overload frame %d: finished id %d", i, id)
		}
		wait := ft - float64(i)*0.05 - 0.1
		if wantW := float64(i) * 0.05; math.Abs(wait-wantW) > eps {
			t.Fatalf("overload frame %d: wait %v, want %v", i, wait, wantW)
		}
	}
}

// TestPSComputeAnalytic pins the egalitarian processor-sharing pool on
// cases small enough to solve exactly.
func TestPSComputeAnalytic(t *testing.T) {
	const eps = 1e-9

	// Two unit jobs on one core share it equally: both finish at t=2,
	// FIFO ties broken by admission order.
	s := newComputeServer(&ComputeConfig{Cores: 1, ServiceRateFPS: 1, Discipline: ContentionFairShare})
	s.Start(0, 0, 1)
	s.Start(0, 1, 1)
	for i := 0; i < 2; i++ {
		ft, ok := s.NextFinish()
		if !ok || math.Abs(ft-2) > eps {
			t.Fatalf("1-core job %d: finish %v, want 2", i, ft)
		}
		if id := s.Finish(); id != i {
			t.Fatalf("1-core job %d: finished id %d", i, id)
		}
	}

	// Two unit jobs on two cores run at full rate: a job never spans
	// cores, so each finishes after exactly its own work.
	s = newComputeServer(&ComputeConfig{Cores: 2, ServiceRateFPS: 1, Discipline: ContentionFairShare})
	s.Start(0, 0, 1)
	s.Start(0, 1, 1)
	for i := 0; i < 2; i++ {
		ft, ok := s.NextFinish()
		if !ok || math.Abs(ft-1) > eps {
			t.Fatalf("2-core job %d: finish %v, want 1", i, ft)
		}
		s.Finish()
	}

	// A short job arriving mid-service preempts half the core: the long
	// job runs alone for 1s (1 unit done), shares for 1s (0.5 each), then
	// finishes its remaining 0.5 alone. short: 1 + 1 = 2; long: 2.5.
	s = newComputeServer(&ComputeConfig{Cores: 1, ServiceRateFPS: 1, Discipline: ContentionFairShare})
	s.Start(0, 0, 2)
	s.Start(1, 1, 0.5)
	ft, _ := s.NextFinish()
	if math.Abs(ft-2) > eps {
		t.Fatalf("short job finish %v, want 2", ft)
	}
	if id := s.Finish(); id != 1 {
		t.Fatalf("short job: finished id %d, want 1", id)
	}
	ft, _ = s.NextFinish()
	if math.Abs(ft-2.5) > eps {
		t.Fatalf("long job finish %v, want 2.5", ft)
	}
}

// computeAnalyticScenario is one camera feeding one single-core tier
// pool: fps captures per second against rate services per second, with a
// queue deep enough that nothing drops.
func computeAnalyticScenario(fps, rate, duration float64) Scenario {
	return Scenario{
		Name:     "compute-analytic",
		Seed:     42,
		Duration: duration,
		Tiers: []Tier{{
			Name:    "t",
			Uplink:  UplinkConfig{Gbps: 1000},
			Compute: &ComputeConfig{Cores: 1, ServiceRateFPS: rate, Discipline: ContentionFIFO},
		}},
		Classes: []Class{{
			Name: "c", Count: 1, FPS: fps, FrameBytes: 1_000_000,
			OffloadProb: 1, QueueDepth: 10_000, Tier: "t",
		}},
	}
}

// TestComputeSingleServerSim runs the analytic single-server cases end to
// end through Run: underload shows zero queueing, overload builds the
// deterministic wait ramp whose quantiles and busy time match hand
// computation.
func TestComputeSingleServerSim(t *testing.T) {
	// λ = 10 < μ = 20: every frame is served on arrival.
	res, err := Run(computeAnalyticScenario(10, 20, 3))
	if err != nil {
		t.Fatal(err)
	}
	cs := res.Tiers[0].Compute
	if cs == nil {
		t.Fatal("tier has a compute section but no ComputeStats")
	}
	// "Zero" up to the rounding residue of finish−arrival−work, which can
	// leave a few ulps (~1e-17 s) behind.
	if cs.WaitP50 > 1e-12 || cs.WaitP95 > 1e-12 {
		t.Fatalf("underloaded server queued: wait p50 %v p95 %v", cs.WaitP50, cs.WaitP95)
	}
	if want := float64(cs.Frames) * 0.05; math.Abs(cs.BusySec-want) > 1e-9 {
		t.Fatalf("busy %v s for %d frames at 50ms each, want %v", cs.BusySec, cs.Frames, want)
	}
	if res.Classes[0].DroppedQueue != 0 {
		t.Fatalf("underloaded run dropped %d frames", res.Classes[0].DroppedQueue)
	}

	// λ = 20 > μ = 10: with interarrival a = 0.05 and service s = 0.1 the
	// n-th frame (0-based) waits exactly n(s-a) = 50ms·n, so the wait
	// quantiles sit on a uniform ramp up to (N-1)·50ms.
	res, err = Run(computeAnalyticScenario(20, 10, 3))
	if err != nil {
		t.Fatal(err)
	}
	cs = res.Tiers[0].Compute
	n := float64(cs.Frames)
	if n < 50 {
		t.Fatalf("overloaded run served only %v frames", n)
	}
	maxWait := (n - 1) * 0.05
	if cs.WaitP95 < 0.9*maxWait || cs.WaitP95 > maxWait+1e-9 {
		t.Fatalf("overload wait p95 %v outside ramp band [%v, %v]", cs.WaitP95, 0.9*maxWait, maxWait)
	}
	if cs.WaitP50 < 0.4*maxWait || cs.WaitP50 > 0.6*maxWait {
		t.Fatalf("overload wait p50 %v, want ≈ %v", cs.WaitP50, 0.5*maxWait)
	}
	if want := n * 0.1; math.Abs(cs.BusySec-want) > 1e-6 {
		t.Fatalf("busy %v s for %v frames at 100ms each, want %v", cs.BusySec, n, want)
	}
	if res.Classes[0].DroppedQueue != 0 {
		t.Fatalf("overloaded run dropped %d frames despite the deep queue", res.Classes[0].DroppedQueue)
	}

	// The queue grows for as long as the run does: doubling the horizon
	// must grow the p95 wait.
	long, err := Run(computeAnalyticScenario(20, 10, 6))
	if err != nil {
		t.Fatal(err)
	}
	if long.Tiers[0].Compute.WaitP95 <= cs.WaitP95 {
		t.Fatalf("overloaded queue stopped growing: p95 %v after 6s vs %v after 3s",
			long.Tiers[0].Compute.WaitP95, cs.WaitP95)
	}
}

// computeTrace drives one compute pool through a random admit/finish
// sequence — the compute-server mirror of uplinkTrace — and checks the
// conservation invariants: no job finishes in less than its own work, a
// pool of c cores never serves more than c work-seconds per busy second,
// and every admitted work-second drains.
func computeTrace(t *testing.T, discipline string, rng *rand.Rand) {
	t.Helper()
	cores := 1 + rng.Intn(4)
	pool := newComputeServer(&ComputeConfig{
		Cores: cores, ServiceRateFPS: 1, Discipline: discipline,
	})
	const eps = 1e-6

	type admitted struct {
		at   float64
		work float64
	}
	open := map[int]admitted{}
	now, busyStart, busyTime := 0.0, 0.0, 0.0
	var sumWork float64

	processFinish := func() {
		ft, ok := pool.NextFinish()
		if !ok {
			t.Fatalf("%s/%d: %d jobs open but no next finish", discipline, cores, len(open))
		}
		if ft < now-eps {
			t.Fatalf("%s/%d: finish time %v precedes current time %v", discipline, cores, ft, now)
		}
		served := pool.ServedBytes()
		fid := pool.Finish()
		a, ok := open[fid]
		if !ok {
			t.Fatalf("%s/%d: finished unknown job %d", discipline, cores, fid)
		}
		delete(open, fid)
		// A job never spans cores, so its fastest possible service is its
		// own work at rate 1.
		if ft-a.at < a.work-eps {
			t.Fatalf("%s/%d: job %d got %v work in %v s", discipline, cores, fid, a.work, ft-a.at)
		}
		if got := pool.ServedBytes() - served; math.Abs(got-a.work) > eps {
			t.Fatalf("%s/%d: served advanced %v for a %v-work job", discipline, cores, got, a.work)
		}
		if ft > now {
			now = ft
		}
		if len(open) == 0 {
			busyTime += now - busyStart
		}
	}

	n := 20 + rng.Intn(150)
	for id := 0; id < n || len(open) > 0; {
		if id < n && (len(open) == 0 || rng.Float64() < 0.6) {
			tnext := now + rng.ExpFloat64()*0.1
			for {
				ft, ok := pool.NextFinish()
				if !ok || ft > tnext {
					break
				}
				processFinish()
			}
			now = tnext
			work := 0.001 + rng.Float64()*0.5
			if len(open) == 0 {
				busyStart = now
			}
			pool.Start(now, id, work)
			open[id] = admitted{at: now, work: work}
			sumWork += work
			id++
		} else {
			processFinish()
		}
		if pool.InFlight() != len(open) {
			t.Fatalf("%s/%d: InFlight %d, expected %d", discipline, cores, pool.InFlight(), len(open))
		}
	}
	if math.Abs(pool.ServedBytes()-sumWork) > eps {
		t.Fatalf("%s/%d: served %v of %v admitted work", discipline, cores, pool.ServedBytes(), sumWork)
	}
	if pool.ServedBytes() > float64(cores)*busyTime*(1+1e-9)+eps {
		t.Fatalf("%s/%d: served %v work-seconds in %v busy seconds",
			discipline, cores, pool.ServedBytes(), busyTime)
	}
}

// TestComputePropertyConservation holds the busy-time conservation
// invariants over randomized traces for both disciplines; CI runs it
// under -race with the rest of the suite.
func TestComputePropertyConservation(t *testing.T) {
	for _, discipline := range []string{ContentionFIFO, ContentionFairShare} {
		t.Run(discipline, func(t *testing.T) {
			rng := rand.New(rand.NewSource(987))
			for iter := 0; iter < 150; iter++ {
				computeTrace(t, discipline, rng)
			}
		})
	}
}

// TestNoComputeByteIdentityAcrossGOMAXPROCS is the differential guard for
// the infinite-compute fast path: a scenario without compute sections
// must render the identical Table at GOMAXPROCS 1, 2 and 8 — the compute
// plumbing may not perturb a run that never configured it.
func TestNoComputeByteIdentityAcrossGOMAXPROCS(t *testing.T) {
	sc, err := TopologyDemoScenario(7, PolicyHysteresis)
	if err != nil {
		t.Fatal(err)
	}
	sc.Duration = 2
	var first string
	for _, procs := range []int{1, 2, 8} {
		prev := runtime.GOMAXPROCS(procs)
		res, err := Run(sc)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatal(err)
		}
		if res.Tiers[0].Compute != nil {
			t.Fatal("no-compute scenario grew ComputeStats")
		}
		out := res.Table()
		if first == "" {
			first = out
		} else if out != first {
			t.Fatalf("no-compute Table differs at GOMAXPROCS=%d", procs)
		}
	}
}

// TestComputeAddsLatencyDifferential runs the compute demo against the
// same fleet with its pools stripped: finite compute can only add
// latency, and the congested gateway must show it.
func TestComputeAddsLatencyDifferential(t *testing.T) {
	with, err := ComputeDemoScenario(3, PolicyStatic)
	if err != nil {
		t.Fatal(err)
	}
	with.Duration = 4
	without := with
	without.Tiers = append([]Tier(nil), with.Tiers...)
	for i := range without.Tiers {
		without.Tiers[i].Compute = nil
	}
	resW, err := Run(with)
	if err != nil {
		t.Fatal(err)
	}
	resO, err := Run(without)
	if err != nil {
		t.Fatal(err)
	}
	for i := range resW.Classes {
		if resW.Classes[i].Offloaded == 0 || resO.Classes[i].Offloaded == 0 {
			continue
		}
		if resW.Classes[i].LatencyP95 < resO.Classes[i].LatencyP95-1e-9 {
			t.Fatalf("class %s: p95 %v with compute < %v without",
				resW.Classes[i].Name, resW.Classes[i].LatencyP95, resO.Classes[i].LatencyP95)
		}
	}
	gwa := resW.TierNamed("gw-a")
	if gwa.Compute == nil || gwa.Compute.WaitP95 <= 0 {
		t.Fatalf("undersized gw-a pool shows no queueing: %+v", gwa.Compute)
	}
	if resO.TierNamed("gw-a").Compute != nil {
		t.Fatal("stripped scenario still reports ComputeStats")
	}
}
