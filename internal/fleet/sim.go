package fleet

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// event kinds: a camera captures a frame; an in-camera-processed frame
// becomes ready for its first-hop link; an adaptive class's controller
// makes a placement decision. Transfer completions are not events — the
// loop peeks them off the links, whose finish times shift as transfers
// are admitted.
const (
	evCapture = iota
	evReady
	evControl
)

type event struct {
	t    float64
	seq  int64 // tie-break: earlier-scheduled events fire first
	kind int
	cam  int32 // camera index (evCapture, evReady) or class index (evControl)
	// capturedAt is the frame's capture time (evReady), the latency epoch.
	capturedAt float64
	// bytes is the offload payload, fixed at capture time (evReady) so a
	// placement switch mid-flight cannot retroactively resize a frame.
	bytes float64
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// camera is one simulated device.
type camera struct {
	class     int
	rng       *rand.Rand
	inflight  int
	placement int     // current index into the class's Placements table
	stored    float64 // harvested joules in the store (harvesting classes)
	lastTop   float64 // wall time of the last store top-up
}

// transfer is one in-flight offload, indexed by transfer id. The same id
// rides the camera→gateway link and then the WAN link.
type transfer struct {
	cam        int32
	capturedAt float64
	bytes      float64
}

// splitmix64 derives well-separated per-camera seeds from the run seed, so
// a camera's random stream is a function of (seed, index) alone — stable
// under reordering, class edits elsewhere, or parallel sweeps.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Run executes one scenario to completion: captures stop at
// Scenario.Duration and every tier drains. The same normalized scenario
// always produces the identical Result.
func Run(sc Scenario) (*Result, error) {
	// sc arrives by value but Classes/Gateways share backing arrays with
	// the caller (and, under Sweep, with sibling scenarios): copy before
	// Normalize writes defaults into them.
	sc.Classes = append([]Class(nil), sc.Classes...)
	sc.Gateways = append([]Gateway(nil), sc.Gateways...)
	sc.Normalize()
	if err := sc.Validate(); err != nil {
		return nil, err
	}

	// Links in tier order: gateways first, the top-tier (WAN) link last.
	// With no gateways the topology degenerates to the flat shared-uplink
	// model and wan indexes the only link.
	wan := len(sc.Gateways)
	links := make([]Uplink, wan+1)
	for i, gw := range sc.Gateways {
		up, err := NewUplink(gw.Uplink.Contention, gw.Uplink.BytesPerSecond())
		if err != nil {
			return nil, err
		}
		links[i] = up
	}
	wanUp, err := NewUplink(sc.Uplink.Contention, sc.Uplink.BytesPerSecond())
	if err != nil {
		return nil, err
	}
	links[wan] = wanUp

	// firstHop maps each class to the link its cameras transmit on.
	firstHop := make([]int, len(sc.Classes))
	for ci := range sc.Classes {
		firstHop[ci] = wan
		if gw := sc.Classes[ci].Gateway; gw != "" {
			firstHop[ci] = sc.GatewayIndex(gw)
		}
	}

	cams := make([]camera, 0, sc.Cameras())
	classCams := make([][]int32, len(sc.Classes))
	ctls := newControllers(&sc)
	res := newResult(sc)
	var events eventHeap
	var seq int64
	push := func(ev event) {
		ev.seq = seq
		seq++
		heap.Push(&events, ev)
	}
	nextCapture := func(c *camera, now float64) float64 {
		cl := &sc.Classes[c.class]
		if cl.Arrival == ArrivalPoisson {
			return now + c.rng.ExpFloat64()/cl.FPS
		}
		return now + 1/cl.FPS
	}
	for ci := range sc.Classes {
		cl := &sc.Classes[ci]
		for k := 0; k < cl.Count; k++ {
			idx := len(cams)
			rng := rand.New(rand.NewSource(int64(splitmix64(uint64(sc.Seed)<<20 + uint64(idx)))))
			c := camera{class: ci, rng: rng, stored: cl.StoreJ, placement: cl.Policy.Start}
			// First capture: a random phase inside one period (periodic) or
			// one exponential gap (Poisson).
			var first float64
			if cl.Arrival == ArrivalPoisson {
				first = rng.ExpFloat64() / cl.FPS
			} else {
				first = rng.Float64() / cl.FPS
			}
			cams = append(cams, c)
			classCams[ci] = append(classCams[ci], int32(idx))
			if first < sc.Duration {
				push(event{t: first, kind: evCapture, cam: int32(idx)})
			}
		}
		if ctls[ci] != nil && cl.Policy.IntervalSec < sc.Duration {
			push(event{t: cl.Policy.IntervalSec, kind: evControl, cam: int32(ci)})
		}
	}

	var transfers []transfer
	capture := func(t float64, camIdx int32) {
		c := &cams[camIdx]
		cl := &sc.Classes[c.class]
		st := &res.Classes[c.class]
		st.Captured++

		// Per-frame costs come from the camera's current placement when the
		// class carries a runtime cost table, else from the class fields.
		frameBytes := float64(cl.FrameBytes)
		computeSec := cl.ComputeSeconds
		computeJ := cl.ComputeJ
		if len(cl.Placements) > 0 {
			pc := &cl.Placements[c.placement]
			frameBytes = float64(pc.FrameBytes)
			computeSec = pc.ComputeSeconds
			computeJ = pc.ComputeJ
		}

		offload := frameBytes > 0 && cl.OffloadProb > 0 && c.rng.Float64() < cl.OffloadProb
		queueDropped := false
		if offload && c.inflight >= cl.QueueDepth {
			// Backpressure: the frame is still processed in-camera, but its
			// offload is abandoned (no transmit cost below).
			queueDropped = true
			offload = false
		}
		need := cl.CaptureJ + computeJ
		if offload {
			need += cl.TxFixedJ + cl.TxPerByteJ*frameBytes
		}
		if cl.HarvestW > 0 {
			c.stored += cl.HarvestW * (t - c.lastTop)
			if c.stored > cl.StoreJ {
				c.stored = cl.StoreJ
			}
			c.lastTop = t
			if c.stored < need {
				// The store cannot pay for this frame: skip it entirely and
				// keep charging. Energy starvation is the binding constraint,
				// so a frame dropped here is never also counted against the
				// queue — each drop has exactly one cause.
				st.DroppedEnergy++
				return
			}
			c.stored -= need
		}
		st.EnergyJ += need
		if queueDropped {
			st.DroppedQueue++
			if ctl := ctls[c.class]; ctl != nil {
				ctl.winDrops++
			}
		}
		if offload {
			c.inflight++
			push(event{t: t + computeSec, kind: evReady, cam: camIdx, capturedAt: t, bytes: frameBytes})
		}
	}

	inFlight := func() int {
		n := 0
		for _, up := range links {
			n += up.InFlight()
		}
		return n
	}

	for len(events) > 0 || inFlight() > 0 {
		// Earliest link completion across the tiers; ties resolve to the
		// lowest link index (gateways before WAN), deterministically.
		li, lt := -1, 0.0
		for i, up := range links {
			if t, ok := up.NextFinish(); ok && (li < 0 || t < lt) {
				li, lt = i, t
			}
		}
		if li >= 0 && (len(events) == 0 || lt <= events[0].t) {
			id := links[li].Finish()
			tr := transfers[id]
			if li != wan {
				// First hop done: the frame leaves the gateway and enters
				// the shared WAN tier at the instant it drains.
				links[wan].Start(lt, id, tr.bytes)
				continue
			}
			c := &cams[tr.cam]
			c.inflight--
			st := &res.Classes[c.class]
			st.Offloaded++
			lat := lt - tr.capturedAt
			st.latencies = append(st.latencies, lat)
			if ctl := ctls[c.class]; ctl != nil {
				ctl.observe(lat)
			}
			if lt > res.SimEnd {
				res.SimEnd = lt
			}
			continue
		}
		ev := heap.Pop(&events).(event)
		switch ev.kind {
		case evCapture:
			capture(ev.t, ev.cam)
			c := &cams[ev.cam]
			if nt := nextCapture(c, ev.t); nt < sc.Duration {
				push(event{t: nt, kind: evCapture, cam: ev.cam})
			}
		case evReady:
			id := len(transfers)
			transfers = append(transfers, transfer{cam: ev.cam, capturedAt: ev.capturedAt, bytes: ev.bytes})
			links[firstHop[cams[ev.cam].class]].Start(ev.t, id, ev.bytes)
		case evControl:
			ci := int(ev.cam)
			cl := &sc.Classes[ci]
			ctl := ctls[ci]
			if dir := ctl.decide(cl.Policy); dir != 0 {
				ctl.move(cl, cams, classCams[ci], dir)
			}
			if nt := ev.t + cl.Policy.IntervalSec; nt < sc.Duration {
				push(event{t: nt, kind: evControl, cam: ev.cam})
			}
		default:
			return nil, fmt.Errorf("fleet: unknown event kind %d", ev.kind)
		}
	}

	if res.SimEnd < sc.Duration {
		res.SimEnd = sc.Duration
	}
	for i, gw := range sc.Gateways {
		res.Tiers = append(res.Tiers, TierStats{
			Name:        gw.Name,
			Gbps:        gw.Uplink.Gbps,
			Contention:  gw.Uplink.Contention,
			ServedBytes: links[i].ServedBytes(),
			Utilization: links[i].ServedBytes() / (gw.Uplink.BytesPerSecond() * res.SimEnd),
		})
	}
	res.Tiers = append(res.Tiers, TierStats{
		Name:        "wan",
		Gbps:        sc.Uplink.Gbps,
		Contention:  sc.Uplink.Contention,
		ServedBytes: links[wan].ServedBytes(),
		Utilization: links[wan].ServedBytes() / (sc.Uplink.BytesPerSecond() * res.SimEnd),
	})
	res.UplinkUtilization = res.Tiers[wan].Utilization
	for ci := range sc.Classes {
		cl := &sc.Classes[ci]
		if len(cl.Placements) == 0 {
			continue
		}
		hist := make([]int, len(cl.Placements))
		for _, idx := range classCams[ci] {
			hist[cams[idx].placement]++
		}
		res.Classes[ci].PlacementCounts = hist
		if ctls[ci] != nil {
			res.Classes[ci].Switches = ctls[ci].moves
		}
	}
	res.finalize()
	return res, nil
}
