package fleet

import (
	"fmt"
	"math"

	"camsim/internal/fleet/fl"
	"camsim/internal/fleet/quantile"
)

// event kinds: a camera captures a frame; an in-camera-processed frame
// becomes ready for its first-hop link; a transfer finishes propagating
// between tiers and enters the next link; a transfer clears the root
// hop's propagation and arrives in the cloud; an adaptive class's
// controller makes a placement decision; the global energy-aware
// controller runs one epoch; a federated camera's local training ends
// and its update blob enters the attach uplink; a federated blob clears
// its uplink hop's propagation and is absorbed for aggregation one tier
// up (or at the cloud); a broadcast model blob clears a downlink's
// propagation and is delivered at the owning tier; a dynamics schedule
// entry fires (churn, link degradation, tier outage/recovery, rate
// profile or core rescale). Link completions themselves are not events —
// the loop peeks them off the links, whose finish times shift as
// transfers are admitted.
const (
	evCapture = iota
	evReady
	evHop
	evArrive
	evControl
	evGlobal
	evFLReady
	evFLUp
	evFLDeliver
	evDynamics
)

type event struct {
	t    float64
	seq  int64 // tie-break: earlier-scheduled events fire first
	kind int
	cam  int32 // camera index (evCapture, evReady), class index (evControl) or federated participant index (evFLReady)
	// capturedAt is the frame's capture time (evReady), the latency epoch.
	capturedAt float64
	// bytes is the offload payload, fixed at capture time (evReady) so a
	// placement switch mid-flight cannot retroactively resize a frame.
	bytes float64
	// tr and link carry a propagating transfer: at t, transfer tr arrives
	// at tier link and starts transmission there (evHop), lands in the
	// cloud (evArrive, link unused), is absorbed for aggregation above
	// uplink link (evFLUp), or is delivered at tier link (evFLDeliver).
	// evFLReady reuses tr as the federated round number.
	tr   int
	link int32
}

// eventHeap is a specialized binary min-heap ordered by (t, seq). The
// sift-up/sift-down moves mirror container/heap's exactly — the seq
// tie-break makes the order total, so the pop sequence is provably
// identical (TestHeapsMatchContainerHeap) — but push and pop move event
// values directly instead of boxing each one through an interface, which
// cost one heap allocation per scheduled event.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	s := append(*h, ev)
	j := len(s) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !s.less(j, i) {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
	*h = s
}

func (h *eventHeap) pop() event {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	i := 0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && s.less(j2, j) {
			j = j2
		}
		if !s.less(j, i) {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	ev := s[n]
	*h = s[:n]
	return ev
}

// camera is one simulated device. The random stream is embedded by value:
// 8 bytes inline rather than a pointer to rand.NewSource's ~5 KB state,
// so a 100k-camera fleet stays cache-resident.
type camera struct {
	class     int
	rng       prng
	inflight  int
	placement int     // current index into the class's Placements table
	stored    float64 // harvested joules in the store (harvesting classes)
	lastTop   float64 // wall time of the last store top-up
	// departed marks a camera retired by dynamics churn: it captures
	// nothing further, but frames already in flight still complete.
	departed bool
}

// transfer is one in-flight payload, indexed by transfer id. A frame
// offload (round 0) rides every link from the class's attach tier up to
// the root under one id; a federated blob (round > 0) crosses exactly one
// link per id — an update absorbed one hop up (cam ≥ 0 for a camera's own
// blob, -1 for a tier's merged blob) or a model copy delivered down one
// downlink (cam -1).
type transfer struct {
	cam        int32
	capturedAt float64
	bytes      float64
	round      int32
	// compAt is when the frame entered the compute pool it currently
	// occupies (scenarios with per-tier compute only), the epoch its
	// queueing wait is measured from.
	compAt float64
}

// flPart is one federated participant: a camera's attach tier plus its
// own jitter stream, a third seed family (cameras, controllers,
// federated) so enabling a federated job never perturbs frame traffic
// draws.
type flPart struct {
	tier int32
	rng  prng
}

// flSeed derives a participant's jitter-stream seed from the scenario
// seed and the camera's global index, two full splitmix64 rounds under
// the federated family tag.
func flSeed(seed int64, idx int) int64 {
	return int64(splitmix64(splitmix64(uint64(seed)^0xfedc0de5) + uint64(idx)))
}

// splitmix64 is one round of the splitmix64 mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// clampEst converts a float capacity estimate to an int usable as a make
// cap. A valid scenario can push FPS × Duration × Count past int range —
// int() of an out-of-range float is unspecified (negative caps panic
// make) — and no estimate is worth an absurd up-front allocation, so the
// result is clamped to [0, 2^22]; NaN maps to 0. Estimates only size
// preallocations, never bound growth, so clamping cannot change results.
func clampEst(x float64) int {
	const estCap = 1 << 22
	if !(x > 0) { // also rejects NaN
		return 0
	}
	if x > estCap {
		return estCap
	}
	return int(x)
}

// cameraSeed derives a well-separated per-camera seed, so a camera's random
// stream is a function of (seed, index) alone — stable under reordering,
// class edits elsewhere, or parallel sweeps. Two full mixing rounds keep
// every seed bit live: the earlier seed<<20+idx pre-mix discarded the
// seed's top 20 bits and collided outright for camera indexes ≥ 2^20.
func cameraSeed(seed int64, idx int) int64 {
	return int64(splitmix64(splitmix64(uint64(seed)) + uint64(idx)))
}

// Run executes one scenario to completion: captures stop at
// Scenario.Duration and every tier drains. The same normalized scenario
// always produces the identical Result.
func Run(sc Scenario) (*Result, error) { return run(sc, true) }

// run is Run with the link-completion lookup selectable: indexed (the
// production path — a lazily invalidated heap finds the earliest completion
// in O(log tiers)) or the O(tiers)-scan baseline kept for the
// BenchmarkDeepTopology comparison and equivalence tests.
func run(sc Scenario, indexed bool) (*Result, error) {
	// sc arrives by value but Classes/Gateways/Tiers share backing arrays
	// with the caller (and, under Sweep, with sibling scenarios), and
	// Global, Federated and each Tier's Downlink are shared pointers:
	// copy before Normalize writes defaults into them.
	sc.Classes = append([]Class(nil), sc.Classes...)
	sc.Gateways = append([]Gateway(nil), sc.Gateways...)
	sc.Tiers = append([]Tier(nil), sc.Tiers...)
	for i := range sc.Tiers {
		if d := sc.Tiers[i].Downlink; d != nil {
			dd := *d
			sc.Tiers[i].Downlink = &dd
		}
		if cp := sc.Tiers[i].Compute; cp != nil {
			cc := *cp
			sc.Tiers[i].Compute = &cc
		}
	}
	if sc.Global != nil {
		g := *sc.Global
		sc.Global = &g
	}
	if sc.Telemetry != nil {
		tc := *sc.Telemetry
		sc.Telemetry = &tc
	}
	if sc.Dynamics != nil {
		dd := *sc.Dynamics
		dd.Events = append([]FleetEvent(nil), dd.Events...)
		sc.Dynamics = &dd
	}
	sc.Federated = sc.Federated.Clone()
	sc.Normalize()

	// The resolved tier tree, one link per node; every offload rides the
	// chain of links from its class's attach node to the root, paying
	// transmission plus one-way propagation at each hop. Resolved once,
	// shared with validation.
	nodes, root, err := sc.topology()
	if err != nil {
		return nil, err
	}
	if err := sc.validate(nodes); err != nil {
		return nil, err
	}
	links := make([]Link, len(nodes))
	tierIdx := make(map[string]int, len(nodes))
	for i, nd := range nodes {
		up, err := NewLink(nd.Uplink.Contention, nd.Uplink.BytesPerSecond())
		if err != nil {
			return nil, err
		}
		links[i] = up
		tierIdx[nd.Name] = i
	}
	// Declared downlinks are appended after every uplink, in tier order:
	// uplink indices — and therefore simultaneous-completion tie-breaks —
	// stay exactly the legacy ones, and a downlink tying an uplink
	// resolves after it. downLink maps a tier to its downlink's link
	// index (-1 without one); downOwner maps back.
	downLink := make([]int, len(nodes))
	var downOwner []int
	for i, nd := range nodes {
		downLink[i] = -1
		if nd.Downlink == nil {
			continue
		}
		dn, err := NewLink(nd.Downlink.Contention, nd.Downlink.BytesPerSecond())
		if err != nil {
			return nil, err
		}
		downLink[i] = len(links)
		downOwner = append(downOwner, i)
		links = append(links, dn)
	}
	// Tier core pools are links too ("bytes" = core-seconds of service
	// demand), appended after every downlink: uplink and downlink indices
	// — and therefore every legacy tie-break — are untouched, and a
	// compute completion tying a network completion resolves last.
	// compPlan is nil without any compute section, the infinite-compute
	// fast path: no servers exist, no routing changes, and the run is
	// byte-identical to a build that predates the section. compLink maps
	// a tier to its pool's link index (-1 without one); compOwner maps
	// back; compWait sketches each pool's queueing delay.
	compPlan := computePlan(nodes, sc.Classes)
	compLink := make([]int, len(nodes))
	var compOwner []int
	var compWait []*quantile.Sketch
	for i := range nodes {
		compLink[i] = -1
		if compPlan == nil || nodes[i].Compute == nil {
			continue
		}
		if compWait == nil {
			compWait = make([]*quantile.Sketch, len(nodes))
		}
		compLink[i] = len(links)
		compOwner = append(compOwner, i)
		links = append(links, newComputeServer(nodes[i].Compute))
		compWait[i] = quantile.NewSketch()
	}

	// firstHop maps each class to the link its cameras transmit on;
	// pathFwdJ prices the class's uplink path in forwarding joules per
	// byte (the sum of Tier.TxPerByteJ over every hop to the root), and
	// rowJ prices every class's placement rows per captured frame — the
	// energy tables the placement controllers score against.
	firstHop := make([]int, len(sc.Classes))
	rowJ := make([][]float64, len(sc.Classes))
	// rowDelay prices every class's placement rows in deterministic delay
	// seconds per frame (in-camera compute plus expected tier service, see
	// classRowDelays) — nil per class unless a compute tier sits on its
	// offload path, so scenarios without the section keep the controllers'
	// legacy arithmetic bit for bit.
	var rowDelay [][]float64
	for ci := range sc.Classes {
		firstHop[ci] = root
		if at := sc.Classes[ci].attach(); at != "" {
			firstHop[ci] = tierIdx[at]
		}
		pathFwdJ := 0.0
		for li := firstHop[ci]; li >= 0; li = nodes[li].parent {
			pathFwdJ += nodes[li].TxPerByteJ
		}
		rowJ[ci] = classRowEnergies(&sc.Classes[ci], pathFwdJ)
		if scale := classPathScale(nodes, compPlan, ci, firstHop[ci]); scale > 0 {
			if rowDelay == nil {
				rowDelay = make([][]float64, len(sc.Classes))
			}
			rowDelay[ci] = classRowDelays(&sc.Classes[ci], scale)
		}
	}

	// The dynamics engine, created only for a non-empty fault schedule:
	// every other run — including one with a present-but-empty dynamics
	// section — bypasses every dyn != nil branch and stays byte-identical
	// to the legacy path.
	var dyn *dynamics
	if sc.Dynamics != nil && len(sc.Dynamics.Events) > 0 {
		dyn = newDynamics(&sc, nodes, firstHop)
	}

	// The streaming-telemetry collector, when the scenario opts in. It
	// observes the same completions and drops at the same event times the
	// exact path counts, so it cannot perturb the simulation — it only
	// changes how latency statistics are accumulated (sketches instead of
	// sample slices) and, with a window, adds the time series.
	var tel *collector
	if sc.Telemetry != nil && sc.Telemetry.Streaming {
		labels := make([]string, 0, len(links))
		caps := make([]float64, 0, len(links))
		for _, nd := range nodes {
			labels = append(labels, nd.Name)
			caps = append(caps, nd.Uplink.BytesPerSecond())
		}
		for _, ti := range downOwner {
			labels = append(labels, nodes[ti].Name+":down")
			caps = append(caps, nodes[ti].Downlink.BytesPerSecond())
		}
		for _, ti := range compOwner {
			// A pool's "capacity" is cores×1 core-seconds per second, so
			// the shared utilization math reports busy fraction.
			labels = append(labels, nodes[ti].Name+":compute")
			caps = append(caps, float64(nodes[ti].Compute.Cores))
		}
		tel = newCollector(&sc, links, labels, caps, dyn)
	}

	// The federated round engine, when the scenario configures a job. It
	// is pure accounting — the loop below reports blob landings and model
	// deliveries to it and starts the transfers it asks for. flUpBytes
	// splits each uplink's served bytes into the federated share.
	var fle *fl.Engine
	var flUpBytes []float64
	if sc.Federated != nil {
		topo, err := sc.flTopology(nodes)
		if err != nil {
			return nil, err
		}
		if fle, err = fl.NewEngine(*sc.Federated, topo); err != nil {
			return nil, err
		}
		flUpBytes = make([]float64, len(nodes))
	}

	// netInFlight counts transfers resident in any link (one transfer
	// crossing k tiers counts once per currently occupied link), replacing
	// the per-iteration rescan of every tier. Transfers mid-propagation
	// between links sit in the event heap instead, so the loop condition
	// still sees them.
	netInFlight := 0
	linkTransfers := make([]int64, len(links))
	var lidx *linkIndex
	if indexed {
		lidx = newLinkIndex(links)
	}
	startLink := func(li int, now float64, id int, bytes float64) {
		links[li].Start(now, id, bytes)
		netInFlight++
		if lidx != nil {
			lidx.invalidate(li)
		}
	}
	finishLink := func(li int) int {
		id := links[li].Finish()
		netInFlight--
		linkTransfers[li]++
		if lidx != nil {
			lidx.invalidate(li)
		}
		return id
	}
	// nextLinkFinish returns the earliest completion across the tiers;
	// ties resolve to the lowest link index (leaves before the root),
	// deterministically, under both lookup strategies.
	nextLinkFinish := func() (int, float64, bool) {
		if lidx != nil {
			return lidx.peek()
		}
		li, lt := -1, 0.0
		for i, up := range links {
			if t, ok := up.NextFinish(); ok && (li < 0 || t < lt) {
				li, lt = i, t
			}
		}
		return li, lt, li >= 0
	}
	// anyInFlight gates the event loop. The baseline reproduces the old
	// per-iteration rescan of every tier; the indexed path reads the
	// running counter.
	anyInFlight := func() bool {
		if lidx != nil {
			return netInFlight > 0
		}
		for _, up := range links {
			if up.InFlight() > 0 {
				return true
			}
		}
		return false
	}

	cams := make([]camera, 0, sc.Cameras())
	classCams := make([][]int32, len(sc.Classes))
	ctls := newControllers(&sc, rowJ, rowDelay)
	gctl := newGlobal(&sc, rowJ, rowDelay)
	res := newResult(sc)

	// Steady-state storage is sized up front so the event loop never
	// regrows it. The event heap's population is structurally bounded —
	// each camera owns at most one pending capture plus one live event per
	// in-flight offload (≤ QueueDepth) — and the expected frame count
	// FPS × Duration × Count caps that bound for short runs. Latency
	// slices get the expected completed-offload count per class.
	heapCap := 1 + len(sc.Classes)
	for ci := range sc.Classes {
		cl := &sc.Classes[ci]
		frames := cl.FPS * sc.Duration * float64(cl.Count)
		slots := float64(cl.Count) * float64(1+cl.QueueDepth)
		if frames+float64(cl.Count) < slots {
			slots = frames + float64(cl.Count)
		}
		heapCap += clampEst(slots)
		if tel == nil {
			// The exact path holds every completed offload's latency; the
			// streaming path holds O(1) sketches instead, so this is the
			// frame-scaled allocation telemetry removes.
			res.Classes[ci].latencies = make([]float64, 0, clampEst(frames*cl.OffloadProb))
		}
		classCams[ci] = make([]int32, 0, cl.Count)
	}
	if fle != nil {
		// One pending ready event per federated participant at a time.
		heapCap += fle.Cameras()
	}
	if dyn != nil {
		// One pending firing per schedule entry at a time (a recurring
		// entry re-pushes itself only as it fires).
		heapCap += len(dyn.events)
	}
	events := make(eventHeap, 0, heapCap)
	var seq int64
	push := func(ev event) {
		ev.seq = seq
		seq++
		events.push(ev)
	}
	nextCapture := func(c *camera, now float64) float64 {
		cl := &sc.Classes[c.class]
		fps := cl.FPS
		if dyn != nil {
			// ×1.0 is exact, so a schedule that never touches a class's
			// rate leaves its capture times bit-identical.
			fps *= dyn.fpsMul[c.class]
		}
		if cl.Arrival == ArrivalPoisson {
			return now + c.rng.ExpFloat64()/fps
		}
		return now + 1/fps
	}
	for ci := range sc.Classes {
		cl := &sc.Classes[ci]
		for k := 0; k < cl.Count; k++ {
			idx := len(cams)
			c := camera{class: ci, rng: newPRNG(cameraSeed(sc.Seed, idx)), stored: cl.StoreJ, placement: cl.Policy.Start}
			// First capture: a random phase inside one period (periodic) or
			// one exponential gap (Poisson).
			var first float64
			if cl.Arrival == ArrivalPoisson {
				first = c.rng.ExpFloat64() / cl.FPS
			} else {
				first = c.rng.Float64() / cl.FPS
			}
			cams = append(cams, c)
			classCams[ci] = append(classCams[ci], int32(idx))
			if first < sc.Duration {
				push(event{t: first, kind: evCapture, cam: int32(idx)})
			}
		}
		if ctls[ci] != nil && cl.Policy.IntervalSec < sc.Duration {
			push(event{t: cl.Policy.IntervalSec, kind: evControl, cam: int32(ci)})
		}
	}
	if gctl != nil && sc.Global.EpochSec < sc.Duration {
		push(event{t: sc.Global.EpochSec, kind: evGlobal})
	}

	// Federated participants, in class then camera order: each owns a
	// jitter stream seeded by its camera's global index under the
	// federated family tag, so the draws are stable under class edits
	// elsewhere and never perturb frame traffic. Round 1's local compute
	// starts at t = 0; rounds run to completion past Duration, the event
	// loop draining them like any other traffic.
	var flParts []flPart
	var flByTier [][]int32
	if fle != nil {
		part := make(map[string]bool, len(sc.Federated.Classes))
		for _, name := range sc.Federated.Classes {
			part[name] = true
		}
		flByTier = make([][]int32, len(nodes))
		flParts = make([]flPart, 0, fle.Cameras())
		for ci := range sc.Classes {
			if len(part) > 0 && !part[sc.Classes[ci].Name] {
				continue
			}
			ti := firstHop[ci]
			for _, camIdx := range classCams[ci] {
				pi := int32(len(flParts))
				flParts = append(flParts, flPart{tier: int32(ti), rng: newPRNG(flSeed(sc.Seed, int(camIdx)))})
				flByTier[ti] = append(flByTier[ti], pi)
			}
		}
		f := sc.Federated
		for pi := range flParts {
			p := &flParts[pi]
			push(event{t: f.ComputeSec + f.JitterSec*p.rng.Float64(), kind: evFLReady, cam: int32(pi), tr: 1})
		}
	}
	if dyn != nil {
		// The whole schedule is pushed up front (evDynamics reuses tr as
		// the entry index), so same-time entries fire in declaration order
		// via the seq tie-break. Entries past Duration still fire — the
		// drain phase is part of the run.
		for i := range dyn.events {
			push(event{t: dyn.events[i].Time, kind: evDynamics, tr: i})
		}
	}

	// Transfer ids are recycled through a free list the moment a transfer
	// completes, so the transfers slice scales with the peak in-flight
	// population instead of growing one slot per frame for the life of the
	// run. Recycling cannot perturb results: a completed id is referenced
	// nowhere (not in any link, not in any pending event), and no output
	// ordering keys off id values.
	transfers := make([]transfer, 0, sc.Cameras())
	var freeIDs []int
	newTransfer := func(tr transfer) int {
		if n := len(freeIDs) - 1; n >= 0 {
			id := freeIDs[n]
			freeIDs = freeIDs[:n]
			transfers[id] = tr
			return id
		}
		transfers = append(transfers, tr)
		return len(transfers) - 1
	}
	// dropOutage accounts frame transfer id as lost to an outage at tier
	// ti: the camera's queue slot frees (the frame will never arrive), and
	// the drop is charged everywhere a queue drop would be — per class,
	// per tier, telemetry, and both controller kinds — so controllers see
	// and react to the regime shift. The caller settles netInFlight for
	// ids drained out of a link; an id dropped on arrival was in no link.
	dropOutage := func(ti, id int) {
		tr := transfers[id]
		freeIDs = append(freeIDs, id)
		c := &cams[tr.cam]
		c.inflight--
		res.Classes[c.class].DroppedOutage++
		dyn.stats.DroppedOutage++
		dyn.outageDrops[ti]++
		if tel != nil {
			tel.dropOutage(c.class)
		}
		if ctl := ctls[c.class]; ctl != nil {
			ctl.winDrops++
		}
		if gctl != nil {
			gctl.drop(c.class)
		}
	}
	// enterTier routes frame transfer id into tier ti at time now: through
	// the tier's core pool first when it has one (service demand scales
	// with the payload, compPlan), else straight onto the uplink — the
	// no-compute degenerate case, identical to the pre-compute routing.
	// A tier taken down by the dynamics schedule drops arrivals outright.
	enterTier := func(now float64, ti, id int) {
		if dyn != nil && dyn.down[ti] {
			dropOutage(ti, id)
			return
		}
		if ci := compLink[ti]; ci >= 0 {
			tr := &transfers[id]
			tr.compAt = now
			startLink(ci, now, id, compPlan[ti][cams[tr.cam].class]*tr.bytes)
			return
		}
		startLink(ti, now, id, transfers[id].bytes)
	}
	// complete lands transfer id in the cloud at time arrive: only then
	// does the camera's queue slot free, the latency sample exist, and the
	// adaptive controller see it — never before the frame has actually
	// arrived.
	complete := func(arrive float64, id int) {
		tr := transfers[id]
		freeIDs = append(freeIDs, id)
		c := &cams[tr.cam]
		c.inflight--
		st := &res.Classes[c.class]
		st.Offloaded++
		lat := arrive - tr.capturedAt
		if tel != nil {
			tel.observe(c.class, lat)
		} else {
			st.latencies = append(st.latencies, lat)
		}
		if ctl := ctls[c.class]; ctl != nil {
			ctl.observe(lat)
		}
		if gctl != nil {
			gctl.observe(c.class, lat)
		}
		if arrive > res.SimEnd {
			res.SimEnd = arrive
		}
	}
	capture := func(t float64, camIdx int32) {
		c := &cams[camIdx]
		cl := &sc.Classes[c.class]
		st := &res.Classes[c.class]
		st.Captured++

		// Per-frame costs come from the camera's current placement when the
		// class carries a runtime cost table, else from the class fields.
		frameBytes := float64(cl.FrameBytes)
		computeSec := cl.ComputeSeconds
		computeJ := cl.ComputeJ
		if len(cl.Placements) > 0 {
			pc := &cl.Placements[c.placement]
			frameBytes = float64(pc.FrameBytes)
			computeSec = pc.ComputeSeconds
			computeJ = pc.ComputeJ
		}

		offload := frameBytes > 0 && cl.OffloadProb > 0 && c.rng.Float64() < cl.OffloadProb
		queueDropped := false
		if offload && c.inflight >= cl.QueueDepth {
			// Backpressure: the frame is still processed in-camera, but its
			// offload is abandoned (no transmit cost below).
			queueDropped = true
			offload = false
		}
		need := cl.CaptureJ + computeJ
		if offload {
			need += cl.TxFixedJ + cl.TxPerByteJ*frameBytes
		}
		if cl.HarvestW > 0 {
			c.stored += cl.HarvestW * (t - c.lastTop)
			if c.stored > cl.StoreJ {
				c.stored = cl.StoreJ
			}
			c.lastTop = t
			if c.stored < need {
				// The store cannot pay for this frame: skip it entirely and
				// keep charging. Energy starvation is the binding constraint,
				// so a frame dropped here is never also counted against the
				// queue — each drop has exactly one cause.
				st.DroppedEnergy++
				if tel != nil {
					tel.dropEnergy(c.class)
				}
				return
			}
			c.stored -= need
		}
		st.EnergyJ += need
		if queueDropped {
			st.DroppedQueue++
			if tel != nil {
				tel.dropQueue(c.class)
			}
			if ctl := ctls[c.class]; ctl != nil {
				ctl.winDrops++
			}
			if gctl != nil {
				gctl.drop(c.class)
			}
		}
		if offload {
			c.inflight++
			push(event{t: t + computeSec, kind: evReady, cam: camIdx, capturedAt: t, bytes: frameBytes})
		}
	}

	// flAbsorb lands federated transfer id — which just cleared uplink li
	// and its propagation — at the parent tier (the cloud above the root)
	// at time t, where it is aggregated. When the landing completes the
	// round's fan-in there, the tier emits one merged blob on its own
	// uplink; when the cloud's fan-in completes, the merged model starts
	// down the root's downlink.
	flAbsorb := func(t float64, li, id int) {
		tr := transfers[id]
		freeIDs = append(freeIDs, id)
		target := nodes[li].parent
		from := -1
		if tr.cam >= 0 {
			from = li // a camera blob's first uplink is its attach tier
		}
		if !fle.Arrive(target, int(tr.round), t, from) {
			return
		}
		if target >= 0 {
			mb := fle.UpdateBytes()
			mid := newTransfer(transfer{cam: -1, round: tr.round, bytes: mb})
			startLink(target, t, mid, mb)
			return
		}
		bb := fle.ModelBytes()
		bid := newTransfer(transfer{cam: -1, round: tr.round, bytes: bb})
		startLink(downLink[root], t, bid, bb)
	}
	// flDeliver lands the round's model at span tier ti at time t: one
	// copy forwards down each span child's downlink, and the tier's own
	// participants (if any) start the next round's local compute.
	flDeliver := func(t float64, ti, id int) {
		round := int(transfers[id].round)
		freeIDs = append(freeIDs, id)
		fle.Delivered(ti, round, t)
		for _, c := range fle.SpanChildren(ti) {
			bb := fle.ModelBytes()
			cid := newTransfer(transfer{cam: -1, round: int32(round), bytes: bb})
			startLink(downLink[c], t, cid, bb)
		}
		if fle.CamsAt(ti) > 0 && round < fle.Rounds() {
			f := sc.Federated
			for _, pi := range flByTier[ti] {
				p := &flParts[pi]
				push(event{t: t + f.ComputeSec + f.JitterSec*p.rng.Float64(), kind: evFLReady, cam: pi, tr: round + 1})
			}
		}
	}

	// rehome repoints class ci's first hop at tier ti and reprices the
	// tables the placement controllers score against: forwarding joules
	// follow the new uplink path, and the deterministic delay rows follow
	// the new path's compute scale. rowJ/rowDelay are the outer slices the
	// global controller holds, so element reassignment is visible to it;
	// each class controller aliases its inner row and is repointed
	// explicitly.
	rehome := func(ci, ti int) {
		firstHop[ci] = ti
		pathFwdJ := 0.0
		for li := ti; li >= 0; li = nodes[li].parent {
			pathFwdJ += nodes[li].TxPerByteJ
		}
		rowJ[ci] = classRowEnergies(&sc.Classes[ci], pathFwdJ)
		if scale := classPathScale(nodes, compPlan, ci, ti); scale > 0 {
			if rowDelay == nil {
				rowDelay = make([][]float64, len(sc.Classes))
				if gctl != nil {
					gctl.rowDelay = rowDelay
				}
			}
			rowDelay[ci] = classRowDelays(&sc.Classes[ci], scale)
		} else if rowDelay != nil {
			rowDelay[ci] = nil
		}
		if ctl := ctls[ci]; ctl != nil {
			ctl.rowJ = rowJ[ci]
			if rowDelay != nil {
				ctl.rowDelay = rowDelay[ci]
			}
		}
		moved := int64(len(classCams[ci]))
		dyn.stats.Rehomed += moved
		res.Classes[ci].Rehomed += moved
	}
	// dynFire executes schedule entry i at time t, then re-arms a
	// recurring churn entry from its own seeded stream.
	dynFire := func(t float64, i int) {
		e := &dyn.events[i]
		switch e.Kind {
		case DynCameraJoin:
			ci := dyn.class[i]
			cl := &sc.Classes[ci]
			for k := 0; k < e.Count; k++ {
				// Joiners continue the global camera-seed sequence, so
				// every existing camera's stream is untouched.
				idx := len(cams)
				c := camera{class: ci, rng: newPRNG(cameraSeed(sc.Seed, idx)), stored: cl.StoreJ, lastTop: t, placement: cl.Policy.Start}
				fps := cl.FPS * dyn.fpsMul[ci]
				var first float64
				if cl.Arrival == ArrivalPoisson {
					first = c.rng.ExpFloat64() / fps
				} else {
					first = c.rng.Float64() / fps
				}
				cams = append(cams, c)
				classCams[ci] = append(classCams[ci], int32(idx))
				if t+first < sc.Duration {
					push(event{t: t + first, kind: evCapture, cam: int32(idx)})
				}
				res.Classes[ci].Cameras++
				res.Classes[ci].Joined++
				dyn.stats.Joined++
			}
		case DynCameraLeave:
			ci := dyn.class[i]
			for k := 0; k < e.Count; k++ {
				members := classCams[ci]
				n := len(members)
				if n == 0 {
					break
				}
				// The leaver is drawn from the entry's own stream
				// (swap-remove keeps the pick O(1)); its in-flight frames
				// still complete, it just captures nothing further.
				pick := dyn.rngs[i].Intn(n)
				camIdx := members[pick]
				members[pick] = members[n-1]
				classCams[ci] = members[:n-1]
				cams[camIdx].departed = true
				res.Classes[ci].Cameras--
				res.Classes[ci].Left++
				dyn.stats.Left++
			}
		case DynLinkDegrade:
			ti := dyn.tier[i]
			dyn.rescale(t, ti, e.Factor)
			links[ti].(capScaler).setCapacity(t, dyn.baseCap[ti]*e.Factor)
			if lidx != nil {
				lidx.invalidate(ti)
			}
		case DynLinkRestore:
			ti := dyn.tier[i]
			dyn.rescale(t, ti, 1)
			links[ti].(capScaler).setCapacity(t, dyn.baseCap[ti])
			if lidx != nil {
				lidx.invalidate(ti)
			}
		case DynTierOutage:
			ti := dyn.tier[i]
			dyn.down[ti] = true
			dyn.downAt[ti] = t
			// In-flight transfers through the dead tier — its uplink and
			// its core pool — are lost, in completion order then waiting
			// order, with no served credit.
			for _, li := range [2]int{ti, compLink[ti]} {
				if li < 0 {
					continue
				}
				ids := links[li].(drainable).drain()
				netInFlight -= len(ids)
				for _, id := range ids {
					dropOutage(ti, id)
				}
				if lidx != nil {
					lidx.invalidate(li)
				}
			}
			if dyn.fall[i] >= 0 {
				for ci := range sc.Classes {
					if firstHop[ci] == ti {
						rehome(ci, dyn.fall[i])
					}
				}
			}
		case DynTierRecover:
			ti := dyn.tier[i]
			dyn.down[ti] = false
			if d := t - dyn.downAt[ti]; d > 0 {
				dyn.downtime[ti] += d
			}
			for ci := range sc.Classes {
				if dyn.home[ci] == ti && firstHop[ci] != ti {
					rehome(ci, ti)
				}
			}
		case DynFPSProfile:
			dyn.fpsMul[dyn.class[i]] = e.Multiplier
		case DynComputeScale:
			li := compLink[dyn.tier[i]]
			links[li].(coreScaler).setCores(t, e.Cores)
			if lidx != nil {
				lidx.invalidate(li)
			}
		}
		if e.EverySec > 0 {
			if nt := t + dyn.rngs[i].ExpFloat64()*e.EverySec; nt < sc.Duration {
				push(event{t: nt, kind: evDynamics, tr: i})
			}
		}
	}

	for len(events) > 0 || anyInFlight() {
		if li, lt, ok := nextLinkFinish(); ok && (len(events) == 0 || lt <= events[0].t) {
			if math.IsInf(lt, 1) {
				// Reachable only under dynamics: the schedule is spent, no
				// event remains, and every in-flight transfer is parked on
				// a zero-capacity link nothing will ever restore. Drain
				// them all as outage losses — accounted, never silently
				// lost — and let the loop terminate.
				for i := range links {
					if links[i].InFlight() == 0 {
						continue
					}
					ti := i
					if i >= len(nodes)+len(downOwner) {
						ti = compOwner[i-len(nodes)-len(downOwner)]
					} else if i >= len(nodes) {
						ti = downOwner[i-len(nodes)]
					}
					ids := links[i].(drainable).drain()
					netInFlight -= len(ids)
					for _, id := range ids {
						dropOutage(ti, id)
					}
					if lidx != nil {
						lidx.invalidate(i)
					}
				}
				continue
			}
			// Simulated time is monotone across both branches, so closing
			// telemetry windows before processing puts every observation in
			// the window covering its timestamp.
			if tel != nil {
				tel.advance(lt)
			}
			id := finishLink(li)
			tr := transfers[id]
			if li >= len(nodes)+len(downOwner) {
				// A core pool drained: record the frame's queueing wait
				// (sojourn minus service, clamped against fair-share float
				// drift), then the frame starts transmission on the owning
				// tier's uplink at the same instant.
				ti := compOwner[li-len(nodes)-len(downOwner)]
				w := lt - tr.compAt - compPlan[ti][cams[tr.cam].class]*tr.bytes
				if w < 0 {
					w = 0
				}
				compWait[ti].Add(w)
				startLink(ti, lt, id, tr.bytes)
				continue
			}
			if li >= len(nodes) {
				// A downlink drained: the model blob is delivered at the
				// owning tier one downlink propagation later.
				ti := downOwner[li-len(nodes)]
				if d := nodes[ti].Downlink; d.PropagationSec == 0 {
					flDeliver(lt, ti, id)
				} else {
					push(event{t: lt + d.PropagationSec, kind: evFLDeliver, tr: id, link: int32(ti)})
				}
				continue
			}
			nd := &nodes[li]
			if tr.round > 0 {
				// A federated blob cleared one uplink hop: it is absorbed
				// for aggregation where it lands, never forwarded onward —
				// the in-network aggregation that shrinks bytes per hop.
				flUpBytes[li] += tr.bytes
				if nd.PropagationSec == 0 {
					flAbsorb(lt, li, id)
				} else {
					push(event{t: lt + nd.PropagationSec, kind: evFLUp, tr: id, link: int32(li)})
				}
				continue
			}
			if li != root {
				// This hop's transmission is done: the frame arrives at the
				// parent tier one propagation delay later. With no delay it
				// enters the parent link at the instant it drains,
				// preserving the legacy two-tier event order exactly.
				if nd.PropagationSec == 0 {
					enterTier(lt, nd.parent, id)
				} else {
					push(event{t: lt + nd.PropagationSec, kind: evHop, tr: id, link: int32(nd.parent)})
				}
				continue
			}
			// Root transmission done: the frame still propagates the root
			// hop before it lands in the cloud, which is when its
			// capture-to-arrival latency stops accruing and its completion
			// becomes observable (queue slot, controller telemetry).
			if nd.PropagationSec == 0 {
				complete(lt, id)
			} else {
				push(event{t: lt + nd.PropagationSec, kind: evArrive, tr: id})
			}
			continue
		}
		ev := events.pop()
		if tel != nil {
			tel.advance(ev.t)
		}
		switch ev.kind {
		case evCapture:
			if cams[ev.cam].departed {
				break
			}
			capture(ev.t, ev.cam)
			c := &cams[ev.cam]
			if nt := nextCapture(c, ev.t); nt < sc.Duration {
				push(event{t: nt, kind: evCapture, cam: ev.cam})
			}
		case evReady:
			id := newTransfer(transfer{cam: ev.cam, capturedAt: ev.capturedAt, bytes: ev.bytes})
			enterTier(ev.t, firstHop[cams[ev.cam].class], id)
		case evHop:
			enterTier(ev.t, int(ev.link), ev.tr)
		case evArrive:
			complete(ev.t, ev.tr)
		case evControl:
			ci := int(ev.cam)
			cl := &sc.Classes[ci]
			ctl := ctls[ci]
			if dir := ctl.decide(cl, cams, classCams[ci]); dir != 0 {
				ctl.move(cl, cams, classCams[ci], dir)
			}
			if nt := ev.t + cl.Policy.IntervalSec; nt < sc.Duration {
				push(event{t: nt, kind: evControl, cam: ev.cam})
			}
		case evGlobal:
			gctl.epoch(ev.t, &sc, cams, classCams)
			if nt := ev.t + sc.Global.EpochSec; nt < sc.Duration {
				push(event{t: nt, kind: evGlobal})
			}
		case evFLReady:
			p := &flParts[ev.cam]
			ub := fle.UpdateBytes()
			id := newTransfer(transfer{cam: ev.cam, round: int32(ev.tr), bytes: ub})
			startLink(int(p.tier), ev.t, id, ub)
		case evFLUp:
			flAbsorb(ev.t, int(ev.link), ev.tr)
		case evFLDeliver:
			flDeliver(ev.t, int(ev.link), ev.tr)
		case evDynamics:
			dynFire(ev.t, ev.tr)
		default:
			return nil, fmt.Errorf("fleet: unknown event kind %d", ev.kind)
		}
	}

	if res.SimEnd < sc.Duration {
		res.SimEnd = sc.Duration
	}
	if fle != nil {
		res.Federated = fle.Stats()
		// The final broadcast can deliver after the last frame drains;
		// the run ends when both have.
		if res.Federated.DoneAt > res.SimEnd {
			res.SimEnd = res.Federated.DoneAt
		}
	}
	if dyn != nil {
		// A tier still down at the end accrues downtime to the run's end.
		for i := range nodes {
			if dyn.down[i] {
				if d := res.SimEnd - dyn.downAt[i]; d > 0 {
					dyn.downtime[i] += d
				}
				dyn.down[i] = false
			}
		}
	}
	for i, nd := range nodes {
		ts := TierStats{
			Name:           nd.Name,
			Parent:         nd.Parent,
			Depth:          nd.depth,
			Gbps:           nd.Uplink.Gbps,
			Contention:     nd.Uplink.Contention,
			PropagationSec: nd.PropagationSec,
			ServedBytes:    links[i].ServedBytes(),
			Transfers:      linkTransfers[i],
			Utilization:    utilization(links[i].ServedBytes(), nd.Uplink.BytesPerSecond(), res.SimEnd),
			TxPerByteJ:     nd.TxPerByteJ,
			ForwardJ:       links[i].ServedBytes() * nd.TxPerByteJ,
		}
		if flUpBytes != nil {
			ts.FLUpBytes = flUpBytes[i]
		}
		if dyn != nil {
			ts.DowntimeSec = dyn.downtime[i]
			ts.OutageDrops = dyn.outageDrops[i]
		}
		if d := nd.Downlink; d != nil {
			dl := links[downLink[i]]
			ts.DownGbps = d.Gbps
			ts.DownContention = d.Contention
			ts.DownPropagationSec = d.PropagationSec
			ts.DownServedBytes = dl.ServedBytes()
			ts.DownTransfers = linkTransfers[downLink[i]]
			ts.DownlinkUtilization = utilization(dl.ServedBytes(), d.BytesPerSecond(), res.SimEnd)
		}
		if li := compLink[i]; li >= 0 {
			cc := nd.Compute
			// Once the run drains, a pool's served "bytes" are exactly the
			// core-seconds it was busy (the conservation the property tests
			// pin), so utilization is busy-share of cores × wall time.
			busy := links[li].ServedBytes()
			cs := &ComputeStats{
				Cores:       cc.Cores,
				Discipline:  cc.Discipline,
				Frames:      linkTransfers[li],
				BusySec:     busy,
				Utilization: utilization(busy, float64(cc.Cores), res.SimEnd),
			}
			if s := compWait[i]; s.Count() > 0 {
				cs.WaitP50 = s.Quantile(0.50)
				cs.WaitP95 = s.Quantile(0.95)
			}
			ts.Compute = cs
		}
		res.Tiers = append(res.Tiers, ts)
	}
	// The top-tier utilization is the root tier's, found by name: tier
	// order is stable today, but the name is the contract.
	if rt := res.TierNamed(nodes[root].Name); rt != nil {
		res.UplinkUtilization = rt.Utilization
	}
	for ci := range sc.Classes {
		cl := &sc.Classes[ci]
		if len(cl.Placements) == 0 {
			continue
		}
		hist := make([]int, len(cl.Placements))
		for _, idx := range classCams[ci] {
			hist[cams[idx].placement]++
		}
		res.Classes[ci].PlacementCounts = hist
		if ctls[ci] != nil {
			res.Classes[ci].Switches = ctls[ci].moves
		}
	}
	if tel != nil {
		tel.finish(res.SimEnd)
		res.TimeSeries = tel.series
	}
	res.finalize(tel)
	for _, ti := range res.Tiers {
		res.Energy.NetworkJ += ti.ForwardJ
	}
	res.Energy.CameraJ = res.Total.EnergyJ
	if res.SimEnd > 0 {
		res.Energy.AvgPowerW = (res.Energy.CameraJ + res.Energy.NetworkJ) / res.SimEnd
	}
	res.Energy.ProjectedW = projectedPowerW(&sc, rowJ, cams, classCams)
	if gctl != nil {
		st := gctl.stats
		res.Global = &st
		res.Total.Switches += st.Moves
	}
	if dyn != nil {
		st := dyn.stats
		res.Dynamics = &st
	}
	return res, nil
}
