package fleet

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// event kinds: a camera captures a frame; an in-camera-processed frame
// becomes ready for the uplink. Transfer completions are not events — the
// loop peeks them off the uplink, whose finish times shift as transfers
// are admitted.
const (
	evCapture = iota
	evReady
)

type event struct {
	t    float64
	seq  int64 // tie-break: earlier-scheduled events fire first
	kind int
	cam  int32
	// capturedAt is the frame's capture time (evReady), the latency epoch.
	capturedAt float64
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// camera is one simulated device.
type camera struct {
	class    int
	rng      *rand.Rand
	inflight int
	stored   float64 // harvested joules in the store (harvesting classes)
	lastTop  float64 // wall time of the last store top-up
}

// transfer is one in-flight offload, indexed by transfer id.
type transfer struct {
	cam        int32
	capturedAt float64
}

// splitmix64 derives well-separated per-camera seeds from the run seed, so
// a camera's random stream is a function of (seed, index) alone — stable
// under reordering, class edits elsewhere, or parallel sweeps.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Run executes one scenario to completion: captures stop at
// Scenario.Duration and the uplink drains. The same normalized scenario
// always produces the identical Result.
func Run(sc Scenario) (*Result, error) {
	// sc arrives by value but Classes shares its backing array with the
	// caller (and, under Sweep, with sibling scenarios): copy before
	// Normalize writes defaults into it.
	sc.Classes = append([]Class(nil), sc.Classes...)
	sc.Normalize()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	up, err := NewUplink(sc.Uplink.Contention, sc.Uplink.BytesPerSecond())
	if err != nil {
		return nil, err
	}

	cams := make([]camera, 0, sc.Cameras())
	res := newResult(sc)
	var events eventHeap
	var seq int64
	push := func(ev event) {
		ev.seq = seq
		seq++
		heap.Push(&events, ev)
	}
	nextCapture := func(c *camera, now float64) float64 {
		cl := &sc.Classes[c.class]
		if cl.Arrival == ArrivalPoisson {
			return now + c.rng.ExpFloat64()/cl.FPS
		}
		return now + 1/cl.FPS
	}
	for ci := range sc.Classes {
		cl := &sc.Classes[ci]
		for k := 0; k < cl.Count; k++ {
			idx := len(cams)
			rng := rand.New(rand.NewSource(int64(splitmix64(uint64(sc.Seed)<<20 + uint64(idx)))))
			c := camera{class: ci, rng: rng, stored: cl.StoreJ}
			// First capture: a random phase inside one period (periodic) or
			// one exponential gap (Poisson).
			var first float64
			if cl.Arrival == ArrivalPoisson {
				first = rng.ExpFloat64() / cl.FPS
			} else {
				first = rng.Float64() / cl.FPS
			}
			cams = append(cams, c)
			if first < sc.Duration {
				push(event{t: first, kind: evCapture, cam: int32(idx)})
			}
		}
	}

	var transfers []transfer
	capture := func(t float64, camIdx int32) {
		c := &cams[camIdx]
		cl := &sc.Classes[c.class]
		st := &res.Classes[c.class]
		st.Captured++

		offload := cl.FrameBytes > 0 && cl.OffloadProb > 0 && c.rng.Float64() < cl.OffloadProb
		queueDropped := false
		if offload && c.inflight >= cl.QueueDepth {
			// Backpressure: the frame is still processed in-camera, but its
			// offload is abandoned (no transmit cost below).
			queueDropped = true
			offload = false
		}
		need := cl.CaptureJ + cl.ComputeJ
		if offload {
			need += cl.TxFixedJ + cl.TxPerByteJ*float64(cl.FrameBytes)
		}
		if cl.HarvestW > 0 {
			c.stored += cl.HarvestW * (t - c.lastTop)
			if c.stored > cl.StoreJ {
				c.stored = cl.StoreJ
			}
			c.lastTop = t
			if c.stored < need {
				// The store cannot pay for this frame: skip it entirely and
				// keep charging. Energy starvation is the binding constraint,
				// so a frame dropped here is never also counted against the
				// queue — each drop has exactly one cause.
				st.DroppedEnergy++
				return
			}
			c.stored -= need
		}
		st.EnergyJ += need
		if queueDropped {
			st.DroppedQueue++
		}
		if offload {
			c.inflight++
			push(event{t: t + cl.ComputeSeconds, kind: evReady, cam: camIdx, capturedAt: t})
		}
	}

	for len(events) > 0 || up.InFlight() > 0 {
		tu, uok := up.NextFinish()
		if uok && (len(events) == 0 || tu <= events[0].t) {
			id := up.Finish()
			tr := transfers[id]
			c := &cams[tr.cam]
			c.inflight--
			st := &res.Classes[c.class]
			st.Offloaded++
			st.latencies = append(st.latencies, tu-tr.capturedAt)
			if tu > res.SimEnd {
				res.SimEnd = tu
			}
			continue
		}
		ev := heap.Pop(&events).(event)
		switch ev.kind {
		case evCapture:
			capture(ev.t, ev.cam)
			c := &cams[ev.cam]
			if nt := nextCapture(c, ev.t); nt < sc.Duration {
				push(event{t: nt, kind: evCapture, cam: ev.cam})
			}
		case evReady:
			cl := &sc.Classes[cams[ev.cam].class]
			id := len(transfers)
			transfers = append(transfers, transfer{cam: ev.cam, capturedAt: ev.capturedAt})
			up.Start(ev.t, id, float64(cl.FrameBytes))
		default:
			return nil, fmt.Errorf("fleet: unknown event kind %d", ev.kind)
		}
	}

	if res.SimEnd < sc.Duration {
		res.SimEnd = sc.Duration
	}
	res.UplinkUtilization = up.ServedBytes() / (sc.Uplink.BytesPerSecond() * res.SimEnd)
	res.finalize()
	return res, nil
}
