package fleet

import (
	"fmt"
	"math"
)

// Contention model names.
const (
	ContentionFairShare = "fair-share"
	ContentionFIFO      = "fifo"
)

// Link models one shared directed link: finite payload capacity plus a
// contention discipline deciding how concurrent transfers share it. The
// disciplines are direction-agnostic — the same implementations serve a
// tier's uplink (leaf→root offloads and federated updates) and its
// downlink (root→leaf model broadcasts); direction lives in how the
// simulator routes transfers onto links, never in the link itself. The
// simulator drives a link event by event: Start admits a transfer,
// NextFinish peeks the earliest completion under the current in-flight
// set, Finish pops it. Start may move an already-reported NextFinish, so
// the caller must re-peek after every Start.
type Link interface {
	// Name returns the contention model name.
	Name() string
	// Start admits transfer id of the given size at time now. now must not
	// precede any previously observed event time.
	Start(now float64, id int, bytes float64)
	// NextFinish returns the earliest completion time, or ok=false when
	// nothing is in flight.
	NextFinish() (t float64, ok bool)
	// Finish completes and returns the transfer NextFinish reported.
	Finish() (id int)
	// InFlight returns the number of admitted, unfinished transfers.
	InFlight() int
	// ServedBytes returns the total payload of completed transfers.
	ServedBytes() float64
}

// Uplink is the historical name of Link, kept for existing callers from
// when the simulator only modeled the leaf→root direction.
type Uplink = Link

// NewLink builds the named contention model over a capacity in bytes/sec.
func NewLink(model string, bytesPerSec float64) (Link, error) {
	if bytesPerSec <= 0 {
		return nil, fmt.Errorf("fleet: link capacity %v must be positive", bytesPerSec)
	}
	switch model {
	case ContentionFairShare:
		return &psUplink{cap: bytesPerSec}, nil
	case ContentionFIFO:
		return &fifoUplink{cap: bytesPerSec}, nil
	}
	return nil, fmt.Errorf("fleet: unknown contention model %q", model)
}

// NewUplink is NewLink under its historical name.
func NewUplink(model string, bytesPerSec float64) (Link, error) {
	return NewLink(model, bytesPerSec)
}

// --- FIFO ---

type fifoItem struct {
	id    int
	bytes float64
}

// fifoUplink serializes transfers in arrival order; the head transfer gets
// the full capacity. A large frame head-of-line-blocks everything behind it.
//
// The queue is a ring buffer sized by the peak concurrent backlog: the
// earlier queue = queue[1:] pop pinned every already-served head in the
// backing array for the life of the run, leaking one fifoItem per transfer.
type fifoUplink struct {
	cap        float64
	ring       []fifoItem // circular: n live items starting at head
	head, n    int
	headFinish float64 // completion time of the head item, valid when n > 0
	// headRem is the head item's remaining bytes, maintained only while
	// the link's capacity is zero (a dynamics outage) — headFinish is
	// +Inf then, so the remaining work has to be carried explicitly for
	// the eventual restore.
	headRem float64
	served  float64
}

func (u *fifoUplink) Name() string { return ContentionFIFO }

// The ring capacity is always a power of two (4, then doubled), so index
// wrap-around is a mask rather than an integer modulo on the hot path.
func (u *fifoUplink) push(it fifoItem) {
	if u.n == len(u.ring) {
		grown := make([]fifoItem, max(4, 2*len(u.ring)))
		mask := len(u.ring) - 1
		for i := 0; i < u.n; i++ {
			grown[i] = u.ring[(u.head+i)&mask]
		}
		u.ring, u.head = grown, 0
	}
	u.ring[(u.head+u.n)&(len(u.ring)-1)] = it
	u.n++
}

func (u *fifoUplink) pop() fifoItem {
	it := u.ring[u.head]
	u.head = (u.head + 1) & (len(u.ring) - 1)
	u.n--
	return it
}

func (u *fifoUplink) Start(now float64, id int, bytes float64) {
	if u.n == 0 {
		u.headFinish = now + bytes/u.cap // +Inf on a zero-capacity link
		u.headRem = bytes
	}
	u.push(fifoItem{id: id, bytes: bytes})
}

func (u *fifoUplink) NextFinish() (float64, bool) {
	if u.n == 0 {
		return 0, false
	}
	return u.headFinish, true
}

func (u *fifoUplink) Finish() int {
	head := u.pop()
	u.served += head.bytes
	if u.n > 0 {
		// The next transfer was already queued, so its service starts the
		// instant the head departs.
		u.headFinish += u.ring[u.head].bytes / u.cap
		u.headRem = u.ring[u.head].bytes
	}
	return head.id
}

func (u *fifoUplink) InFlight() int        { return u.n }
func (u *fifoUplink) ServedBytes() float64 { return u.served }

// setCapacity rescales the link to bytesPerSec at time now, conserving
// the head transfer's progress: its remaining bytes continue at the new
// rate. Zero parks the link — the head's remaining work is carried in
// headRem and its finish time becomes +Inf until a later restore.
func (u *fifoUplink) setCapacity(now, bytesPerSec float64) {
	if u.n > 0 {
		rem := u.headRem
		if u.cap > 0 {
			rem = (u.headFinish - now) * u.cap
			if rem < 0 {
				rem = 0 // float drift guard
			}
		}
		u.headRem = rem
		if bytesPerSec > 0 {
			u.headFinish = now + rem/bytesPerSec
		} else {
			u.headFinish = math.Inf(1)
		}
	}
	u.cap = bytesPerSec
}

// drain removes every in-flight transfer — head first, then waiting
// order — crediting no served bytes: the payloads were lost, not
// delivered.
func (u *fifoUplink) drain() []int {
	ids := make([]int, 0, u.n)
	for u.n > 0 {
		ids = append(ids, u.pop().id)
	}
	return ids
}

// --- fair share (egalitarian processor sharing) ---

type psItem struct {
	id      int
	bytes   float64
	vfinish float64 // virtual service level at which the transfer completes
	seq     int64   // admission order, for deterministic tie-breaking
}

// psHeap is a specialized binary min-heap ordered by (vfinish, seq) —
// the unique admission seq makes the order total, so the pop sequence
// matches a container/heap reference exactly
// (TestHeapsMatchContainerHeap) without boxing one psItem per admission.
type psHeap []psItem

func (h psHeap) less(i, j int) bool {
	if h[i].vfinish != h[j].vfinish {
		return h[i].vfinish < h[j].vfinish
	}
	return h[i].seq < h[j].seq
}

func (h *psHeap) push(it psItem) {
	s := append(*h, it)
	j := len(s) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !s.less(j, i) {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
	*h = s
}

func (h *psHeap) pop() psItem {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	i := 0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && s.less(j2, j) {
			j = j2
		}
		if !s.less(j, i) {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	it := s[n]
	*h = s[:n]
	return it
}

// psUplink implements egalitarian processor sharing with virtual time:
// each of the n in-flight transfers progresses at cap/n, so the virtual
// service level v advances at dv/dt = cap/n and a transfer admitted at
// level v0 with B bytes completes when v reaches v0+B. Events cost
// O(log n) instead of rescaling every in-flight transfer.
type psUplink struct {
	cap    float64
	vnow   float64 // virtual service accrued by every in-flight transfer
	tlast  float64 // wall time at which vnow was computed
	h      psHeap
	seq    int64
	served float64
}

func (u *psUplink) Name() string { return ContentionFairShare }

// advance moves the virtual clock to wall time t.
func (u *psUplink) advance(t float64) {
	if n := len(u.h); n > 0 && t > u.tlast {
		u.vnow += (t - u.tlast) * u.cap / float64(n)
	}
	u.tlast = t
}

func (u *psUplink) Start(now float64, id int, bytes float64) {
	u.advance(now)
	u.h.push(psItem{id: id, bytes: bytes, vfinish: u.vnow + bytes, seq: u.seq})
	u.seq++
}

func (u *psUplink) NextFinish() (float64, bool) {
	if len(u.h) == 0 {
		return 0, false
	}
	if u.cap == 0 {
		// A dynamics outage parked the link: the in-flight set exists but
		// nothing completes until a restore.
		return math.Inf(1), true
	}
	remaining := u.h[0].vfinish - u.vnow
	if remaining < 0 {
		remaining = 0 // float drift guard
	}
	return u.tlast + remaining*float64(len(u.h))/u.cap, true
}

func (u *psUplink) Finish() int {
	t, _ := u.NextFinish()
	u.advance(t)
	item := u.h.pop()
	u.vnow = item.vfinish // pin exactly, absorbing float drift
	u.served += item.bytes
	return item.id
}

func (u *psUplink) InFlight() int        { return len(u.h) }
func (u *psUplink) ServedBytes() float64 { return u.served }

// setCapacity rescales the link to bytesPerSec at time now. Virtual
// progress is conserved: the clock advances to now at the old rate
// first, so every in-flight transfer keeps the service it has accrued
// and its remaining virtual work continues at the new rate. Zero parks
// the link (the virtual clock stops; NextFinish reports +Inf).
func (u *psUplink) setCapacity(now, bytesPerSec float64) {
	u.advance(now)
	u.cap = bytesPerSec
}

// drain removes every in-flight transfer in completion order (vfinish,
// then admission), crediting no served bytes.
func (u *psUplink) drain() []int {
	ids := make([]int, 0, len(u.h))
	for len(u.h) > 0 {
		ids = append(ids, u.h.pop().id)
	}
	return ids
}
