package fleet

import "container/heap"

// linkIndex finds the earliest next completion across a fixed set of links
// in O(log links) per event, replacing the O(links) scan that dominated
// deep-topology runs. It is a lazily invalidated min-heap: every Start or
// Finish on link li bumps li's version and pushes a fresh (finish time,
// li, version) entry; peek discards entries whose version is stale. Each
// link therefore has at most one live entry — the one reflecting its
// current NextFinish — and ties on time resolve to the lowest link index,
// matching the scan baseline bit for bit.
type linkIndex struct {
	links []Uplink
	ver   []uint64
	h     liHeap
}

type liEntry struct {
	t   float64
	li  int
	ver uint64
}

type liHeap []liEntry

func (h liHeap) Len() int { return len(h) }
func (h liHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].li < h[j].li
}
func (h liHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *liHeap) Push(x any)   { *h = append(*h, x.(liEntry)) }
func (h *liHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

func newLinkIndex(links []Uplink) *linkIndex {
	return &linkIndex{links: links, ver: make([]uint64, len(links))}
}

// invalidate must be called after any Start or Finish on links[li]: both
// can move the link's earliest completion (fair share rescales every
// in-flight transfer on admission).
func (x *linkIndex) invalidate(li int) {
	x.ver[li]++
	if t, ok := x.links[li].NextFinish(); ok {
		heap.Push(&x.h, liEntry{t: t, li: li, ver: x.ver[li]})
	}
}

// peek returns the link with the earliest completion and that time, or
// ok=false when nothing is in flight anywhere.
func (x *linkIndex) peek() (li int, t float64, ok bool) {
	for len(x.h) > 0 {
		e := x.h[0]
		if e.ver == x.ver[e.li] {
			return e.li, e.t, true
		}
		heap.Pop(&x.h)
	}
	return -1, 0, false
}
