package fleet

// linkIndex finds the earliest next completion across a fixed set of links
// in O(log links) per event, replacing the O(links) scan that dominated
// deep-topology runs. The set is direction-agnostic: uplinks occupy the
// low indices in tier order and declared downlinks follow, so ties on
// time resolve uplinks (leaves before the root) ahead of downlinks,
// deterministically. It is a lazily invalidated min-heap: every Start or
// Finish on link li bumps li's version and pushes a fresh (finish time,
// li, version) entry; peek discards entries whose version is stale. Each
// link therefore has at most one live entry — the one reflecting its
// current NextFinish — and ties on time resolve to the lowest link index,
// matching the scan baseline bit for bit.
type linkIndex struct {
	links []Link
	ver   []uint64
	h     liHeap
}

type liEntry struct {
	t   float64
	li  int
	ver uint64
}

// liHeap is a specialized binary min-heap ordered by (t, li). Stale
// entries for the same link can tie exactly with its live one, but peek's
// result is invariant to their relative order — only the live entry
// survives — so the (t, li) comparison fully determines what peek returns,
// identically to a container/heap reference (TestHeapsMatchContainerHeap),
// without boxing an entry per invalidation.
type liHeap []liEntry

func (h liHeap) less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].li < h[j].li
}

func (h *liHeap) push(e liEntry) {
	s := append(*h, e)
	j := len(s) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !s.less(j, i) {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
	*h = s
}

func (h *liHeap) pop() liEntry {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	i := 0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && s.less(j2, j) {
			j = j2
		}
		if !s.less(j, i) {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	e := s[n]
	*h = s[:n]
	return e
}

func newLinkIndex(links []Link) *linkIndex {
	return &linkIndex{links: links, ver: make([]uint64, len(links))}
}

// invalidate must be called after any Start or Finish on links[li]: both
// can move the link's earliest completion (fair share rescales every
// in-flight transfer on admission).
func (x *linkIndex) invalidate(li int) {
	x.ver[li]++
	if t, ok := x.links[li].NextFinish(); ok {
		x.h.push(liEntry{t: t, li: li, ver: x.ver[li]})
	}
}

// peek returns the link with the earliest completion and that time, or
// ok=false when nothing is in flight anywhere.
func (x *linkIndex) peek() (li int, t float64, ok bool) {
	for len(x.h) > 0 {
		e := x.h[0]
		if e.ver == x.ver[e.li] {
			return e.li, e.t, true
		}
		x.h.pop()
	}
	return -1, 0, false
}
