package fleet

import (
	"math"
	"sort"
)

// globalController is the fleet-wide energy-aware placement controller: a
// single seeded decision loop above the per-class policies. On every
// epoch tick it sees each class's window stats (offload latencies and
// queue drops across every tier), prices each placement row in expected
// joules per frame — camera capture, compute and radio plus the per-hop
// forwarding energy of every link between the class's attach tier and the
// root — and reassigns cameras so the fleet's projected placement power
// stays under the configured budget.
type globalController struct {
	cfg GlobalConfig
	rng prng
	// rowJ prices every class's placement rows (one row for table-less
	// classes) in expected J per captured frame, forwarding included.
	rowJ [][]float64
	// rowDelay prices every class's placement rows in deterministic delay
	// seconds per frame (classRowDelays); nil — per class or whole — when
	// no finite-compute tier sits on the class's path. With it the energy
	// knapsack is joint network+compute: it refuses to shed watts into a
	// step whose delay floor would break the latency target.
	rowDelay [][]float64
	// Per-class epoch windows, consumed at each tick.
	winLat   [][]float64
	winDrops []int64
	stats    GlobalStats
}

// newGlobal builds the controller, or nil when the scenario does not
// configure one. Its stream is derived like the per-class controller
// streams — two full splitmix64 rounds — under its own tag, so the three
// stream families (cameras, class controllers, global) stay disjoint.
func newGlobal(sc *Scenario, rowJ, rowDelay [][]float64) *globalController {
	if sc.Global == nil {
		return nil
	}
	h := splitmix64(splitmix64(uint64(sc.Seed)^0x61017ba1) + uint64(len(sc.Classes)))
	return &globalController{
		cfg:      *sc.Global,
		rng:      newPRNG(int64(h)),
		rowJ:     rowJ,
		rowDelay: rowDelay,
		winLat:   make([][]float64, len(sc.Classes)),
		winDrops: make([]int64, len(sc.Classes)),
		stats:    GlobalStats{BudgetW: sc.Global.BudgetW},
	}
}

// observe records one completed offload latency for the camera's class.
func (g *globalController) observe(class int, lat float64) {
	g.winLat[class] = append(g.winLat[class], lat)
}

// drop records one queue drop for the class.
func (g *globalController) drop(class int) { g.winDrops[class]++ }

// projectedPowerW prices the fleet's steady-state placement power: every
// camera's per-frame energy at its current placement row times its
// class's capture rate. Classes without a cost table contribute their
// fixed per-frame energy — the budget is fleet-wide, not per knob.
func projectedPowerW(sc *Scenario, rowJ [][]float64, cams []camera, classCams [][]int32) float64 {
	total := 0.0
	for ci := range sc.Classes {
		fps := sc.Classes[ci].FPS
		if len(sc.Classes[ci].Placements) == 0 {
			total += fps * rowJ[ci][0] * float64(len(classCams[ci]))
			continue
		}
		for _, idx := range classCams[ci] {
			total += fps * rowJ[ci][cams[idx].placement]
		}
	}
	return total
}

// epoch runs one global decision at simulated time t. Two phases, both
// deterministic in the scenario seed:
//
// Phase 1 (latency): classes whose epoch-window p95 exceeds HighSec, or
// that dropped frames, get up to MoveFraction of their cameras stepped
// toward in-camera compute (+1, the congestion-relief direction of the
// table convention) — but a step that raises placement power is admitted
// only while the projection stays under budget.
//
// Phase 2 (energy): while the projection still exceeds the budget, a
// greedy knapsack sheds watts: among the non-congested classes it
// repeatedly takes the (class, direction) step with the largest per-frame
// saving — ties to the class with the most p95 headroom, then declaration
// order — moving cameras one at a time until the fleet fits the budget,
// every class hits its per-epoch cap, or no energy-saving step remains.
func (g *globalController) epoch(t float64, sc *Scenario, cams []camera, classCams [][]int32) {
	nClasses := len(sc.Classes)
	p95 := make([]float64, nClasses)
	congested := make([]bool, nClasses)
	for ci := 0; ci < nClasses; ci++ {
		lat := g.winLat[ci]
		if len(lat) > 0 {
			sort.Float64s(lat)
			p95[ci] = percentile(lat, 0.95)
		}
		congested[ci] = g.winDrops[ci] > 0 || (len(lat) > 0 && g.cfg.HighSec > 0 && p95[ci] > g.cfg.HighSec)
		g.winLat[ci] = g.winLat[ci][:0]
		g.winDrops[ci] = 0
	}

	projected := projectedPowerW(sc, g.rowJ, cams, classCams)
	ep := GlobalEpoch{Time: t, BeforeW: projected}

	// Per-epoch, per-class reassignment caps.
	capLeft := make([]int, nClasses)
	for ci := range sc.Classes {
		if len(sc.Classes[ci].Placements) == 0 {
			continue
		}
		k := int(g.cfg.MoveFraction*float64(len(classCams[ci])) + 0.5)
		if k < 1 {
			k = 1
		}
		capLeft[ci] = k
	}

	// Phase 1: latency relief for congested classes.
	for ci := range sc.Classes {
		if !congested[ci] || capLeft[ci] == 0 {
			continue
		}
		moved := g.moveAccept(sc, cams, classCams[ci], ci, +1, capLeft[ci], &projected, true)
		capLeft[ci] -= moved
		if moved > 0 {
			ep.Moves = append(ep.Moves, GlobalMove{Class: sc.Classes[ci].Name, Dir: +1, Count: moved, Reason: "latency"})
		}
	}

	// Phase 2: greedy energy shedding down to the budget. A (class, dir)
	// whose batch admits nothing — a positive mean saving can hide
	// per-row steps that all overshoot — is blocked for the rest of the
	// epoch so the next-best candidate gets its turn.
	blocked := make([][2]bool, len(sc.Classes))
	for projected > g.cfg.BudgetW {
		best, bestDir, bestDirIdx := -1, 0, 0
		bestSave, bestHead := 0.0, 0.0
		for ci := range sc.Classes {
			if congested[ci] || capLeft[ci] == 0 || len(sc.Classes[ci].Placements) == 0 {
				continue
			}
			head := math.MaxFloat64
			if g.cfg.HighSec > 0 {
				head = g.cfg.HighSec - p95[ci]
			}
			for di, dir := range [2]int{-1, +1} {
				if blocked[ci][di] {
					continue
				}
				save, n := g.meanSavingJ(sc, cams, classCams[ci], ci, dir)
				if n == 0 || save <= 0 {
					continue
				}
				if g.rowDelay != nil && g.rowDelay[ci] != nil && g.cfg.HighSec > 0 {
					// Joint admission: a step that saves watts is still
					// refused when its deterministic delay-floor increase,
					// stacked on the observed p95 (which already carries
					// compute queueing), would break the latency target.
					if d, dn := meanRowDelta(g.rowDelay[ci], cams, classCams[ci], dir); dn > 0 && d > 0 && p95[ci]+d > g.cfg.HighSec {
						continue
					}
				}
				saveW := save * sc.Classes[ci].FPS
				if saveW > bestSave || (saveW == bestSave && best >= 0 && head > bestHead) {
					best, bestDir, bestDirIdx, bestSave, bestHead = ci, dir, di, saveW, head
				}
			}
		}
		if best < 0 {
			break // infeasible: nothing left to shed, hold best effort
		}
		moved := g.moveAccept(sc, cams, classCams[best], best, bestDir, capLeft[best], &projected, false)
		if moved == 0 {
			blocked[best][bestDirIdx] = true
			continue
		}
		capLeft[best] -= moved
		ep.Moves = append(ep.Moves, GlobalMove{Class: sc.Classes[best].Name, Dir: bestDir, Count: moved, Reason: "energy"})
	}

	ep.AfterW = projected
	for _, m := range ep.Moves {
		g.stats.Moves += int64(m.Count)
	}
	g.stats.Epochs = append(g.stats.Epochs, ep)
}

// meanSavingJ returns the mean per-frame joules saved by stepping the
// class's movable cameras one step dir, and how many cameras could move.
func (g *globalController) meanSavingJ(sc *Scenario, cams []camera, members []int32, ci, dir int) (float64, int) {
	rows := g.rowJ[ci]
	saved, n := 0.0, 0
	for _, idx := range members {
		at := cams[idx].placement
		to := at + dir
		if to < 0 || to >= len(rows) {
			continue
		}
		saved += rows[at] - rows[to]
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return saved / float64(n), n
}

// moveAccept moves up to k of the class's cameras one step dir, drawing
// the order from the controller's seeded stream (partial Fisher-Yates over
// the movable candidates) and accepting each camera only while the
// projected power permits: an energy-increasing step must keep the
// projection under budget, and a non-latency (energy-shedding) move stops
// at the budget line instead of overshooting it. projected is updated in
// place with each accepted camera's exact delta.
func (g *globalController) moveAccept(sc *Scenario, cams []camera, members []int32, ci, dir, k int, projected *float64, latency bool) int {
	rows := g.rowJ[ci]
	last := len(sc.Classes[ci].Placements) - 1
	var candidates []int32
	for _, idx := range members {
		p := cams[idx].placement + dir
		if p >= 0 && p <= last {
			candidates = append(candidates, idx)
		}
	}
	if k > len(candidates) {
		k = len(candidates)
	}
	fps := sc.Classes[ci].FPS
	moved := 0
	for i := 0; i < len(candidates) && moved < k; i++ {
		j := i + g.rng.Intn(len(candidates)-i)
		candidates[i], candidates[j] = candidates[j], candidates[i]
		idx := candidates[i]
		at := cams[idx].placement
		deltaW := (rows[at+dir] - rows[at]) * fps
		if deltaW > 0 && *projected+deltaW > g.cfg.BudgetW {
			// This camera's step would push the fleet over budget — but
			// with three or more rows the candidates sit at different
			// rows with different deltas, so skip it and keep scanning
			// for cameras whose step still fits.
			continue
		}
		if !latency && *projected <= g.cfg.BudgetW {
			// Energy phase only sheds to the budget line, not beyond it.
			break
		}
		cams[idx].placement += dir
		*projected += deltaW
		moved++
	}
	return moved
}
