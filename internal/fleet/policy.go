package fleet

import (
	"sort"
)

// controller is the per-class adaptive-placement state: the observation
// window since the last decision, the seeded stream every decision draws
// from (a compact value-embedded prng, like the cameras'), and the
// class's per-row energy model (energy-latency policy).
type controller struct {
	rng      prng
	winLat   []float64 // offload latencies completed in the window
	winDrops int64     // queue drops in the window
	moves    int64     // camera moves decided so far
	// rowJ is the expected joules per captured frame at each placement
	// row, including per-hop network forwarding along the class's uplink
	// path — the quantity the energy-latency rule weighs against latency.
	rowJ []float64
	// rowDelay is the deterministic delay floor per placement row
	// (in-camera compute plus expected tier service, classRowDelays) —
	// nil unless a finite-compute tier sits on the class's offload path,
	// keeping pre-compute scenarios' decisions bit-identical.
	rowDelay []float64
}

// newControllers builds one controller per adaptive class (nil entries for
// static or table-less classes). Controller streams are derived from the
// scenario seed and the class index through two splitmix64 rounds — the
// same full-width mixing as the per-camera streams, kept disjoint from
// them by the controller tag folded into the seed round. rowJ is the
// per-class, per-row energy table (classRowEnergies for every class);
// rowDelay the per-class, per-row delay floors — nil, per class or
// whole, when no tier compute prices the class's path.
func newControllers(sc *Scenario, rowJ, rowDelay [][]float64) []*controller {
	ctls := make([]*controller, len(sc.Classes))
	for ci := range sc.Classes {
		if !sc.Classes[ci].adaptive() {
			continue
		}
		h := splitmix64(splitmix64(uint64(sc.Seed)^0xc0117801) + uint64(ci))
		ctls[ci] = &controller{
			rng:  newPRNG(int64(h)),
			rowJ: rowJ[ci],
		}
		if rowDelay != nil {
			ctls[ci].rowDelay = rowDelay[ci]
		}
	}
	return ctls
}

// meanRowDelta returns the mean per-frame table delta of stepping the
// movable member cameras one step dir — rows[to]−rows[at], positive when
// the step costs more of whatever the table prices — and how many
// cameras could move.
func meanRowDelta(rows []float64, cams []camera, members []int32, dir int) (float64, int) {
	sum, n := 0.0, 0
	for _, idx := range members {
		at := cams[idx].placement
		to := at + dir
		if to < 0 || to >= len(rows) {
			continue
		}
		sum += rows[to] - rows[at]
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}

// classRowEnergies prices every placement row of the class in expected
// joules per captured frame, netPerByteJ of per-hop forwarding included.
// Table-less classes get a single entry from the class-level fields.
func classRowEnergies(c *Class, netPerByteJ float64) []float64 {
	n := len(c.Placements)
	if n == 0 {
		n = 1
	}
	rows := make([]float64, n)
	for i := range rows {
		rows[i] = c.PlacementEnergyPerFrame(i, netPerByteJ)
	}
	return rows
}

// observe records one completed offload latency.
func (c *controller) observe(lat float64) {
	c.winLat = append(c.winLat, lat)
}

// decide maps the window onto a placement step: +1 toward in-camera
// compute, -1 toward offload, 0 to hold. The window is consumed. cams and
// members carry the class's current placement population, which the
// energy-latency rule prices.
func (c *controller) decide(cl *Class, cams []camera, members []int32) int {
	p := cl.Policy
	lat := c.winLat
	drops := c.winDrops
	c.winLat = c.winLat[:0]
	c.winDrops = 0

	var p95 float64
	if len(lat) > 0 {
		sort.Float64s(lat)
		p95 = percentile(lat, 0.95)
	}
	congested := drops > 0 || (len(lat) > 0 && p95 > p.HighSec)
	switch p.Kind {
	case PolicyLatencyThreshold:
		// One-way escalation: congestion pushes cameras toward in-camera
		// compute and they stay there. Simple, monotone, flap-free.
		if congested {
			return 1
		}
	case PolicyHysteresis:
		// Two thresholds with a dead band: step toward in-camera above
		// HighSec, back toward offload when the network is demonstrably
		// idle (completions observed, all cheap, nothing dropped).
		if congested {
			return 1
		}
		if len(lat) > 0 && p95 < p.LowSec {
			return -1
		}
	case PolicyEnergyLatency:
		// Congestion keeps the latency-threshold rule verbatim, so an
		// energy weight of zero reproduces its switch sequence exactly.
		if congested {
			return 1
		}
		if p.EnergyWeight > 0 && len(lat) > 0 {
			return c.energyStep(p, cams, members, p95)
		}
	}
	return 0
}

// energyStep scores the two adjacent placements on the weighted
// energy-latency objective: moving dir is worth EnergyWeight × the mean
// per-frame joules it saves across the movable cameras, minus the latency
// it risks re-adding — the observed p95 for a step toward offload (which
// loads the network), nothing for a step toward in-camera compute (which
// relieves it). The larger strictly-positive gain wins; in-camera is
// evaluated first so ties resolve to the congestion-safe direction.
func (c *controller) energyStep(p PolicyConfig, cams []camera, members []int32, p95 float64) int {
	best, bestGain := 0, 0.0
	for _, dir := range [2]int{+1, -1} {
		saved, n := 0.0, 0
		for _, idx := range members {
			at := cams[idx].placement
			to := at + dir
			if to < 0 || to >= len(c.rowJ) {
				continue
			}
			saved += c.rowJ[at] - c.rowJ[to]
			n++
		}
		if n == 0 {
			continue
		}
		risk := 0.0
		if dir < 0 {
			risk = p95
		}
		if c.rowDelay != nil {
			// Finite tier compute gives the step a deterministic delay
			// floor: pay a positive mean increase as extra risk, whichever
			// direction it comes from (toward offload it is path service;
			// toward in-camera it is the row's own compute seconds).
			if d, dn := meanRowDelta(c.rowDelay, cams, members, dir); dn > 0 && d > 0 {
				risk += d
			}
		}
		if gain := p.EnergyWeight*saved/float64(n) - risk; gain > bestGain {
			best, bestGain = dir, gain
		}
	}
	return best
}

// move shifts a MoveFraction-sized batch of the class's cameras one step
// in the decided direction, choosing which cameras from the controller's
// seeded stream. Returns the number of cameras moved.
func (c *controller) move(cl *Class, cams []camera, members []int32, dir int) int {
	k := int(cl.Policy.MoveFraction*float64(len(members)) + 0.5)
	if k < 1 {
		k = 1
	}
	moved := moveBatch(&c.rng, cams, members, len(cl.Placements)-1, dir, k)
	c.moves += int64(moved)
	return moved
}

// moveBatch moves up to k of the member cameras one placement step in
// direction dir, clamped to table rows [0, last], and returns how many
// moved. Which cameras move is a uniform k-subset of the movable
// candidates drawn from rng via a partial Fisher-Yates, in an order fixed
// by the stream. The global controller's moveAccept interleaves the same
// draw with per-camera budget acceptance, which this unconditional form
// cannot express — keep their shuffle steps identical if either changes.
func moveBatch(rng *prng, cams []camera, members []int32, last, dir, k int) int {
	var candidates []int32
	for _, idx := range members {
		p := cams[idx].placement + dir
		if p >= 0 && p <= last {
			candidates = append(candidates, idx)
		}
	}
	if len(candidates) == 0 || k <= 0 {
		return 0
	}
	if k > len(candidates) {
		k = len(candidates)
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(len(candidates)-i)
		candidates[i], candidates[j] = candidates[j], candidates[i]
		cams[candidates[i]].placement += dir
	}
	return k
}
