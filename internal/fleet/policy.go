package fleet

import (
	"math/rand"
	"sort"
)

// controller is the per-class adaptive-placement state: the observation
// window since the last decision and the seeded stream every decision
// draws from.
type controller struct {
	class    int
	rng      *rand.Rand
	winLat   []float64 // offload latencies completed in the window
	winDrops int64     // queue drops in the window
	moves    int64     // camera moves decided so far
}

// newControllers builds one controller per adaptive class (nil entries for
// static or table-less classes). Controller streams are derived from the
// scenario seed and the class index through two splitmix64 rounds — the
// same full-width mixing as the per-camera streams, kept disjoint from
// them by the controller tag folded into the seed round.
func newControllers(sc *Scenario) []*controller {
	ctls := make([]*controller, len(sc.Classes))
	for ci := range sc.Classes {
		if !sc.Classes[ci].adaptive() {
			continue
		}
		h := splitmix64(splitmix64(uint64(sc.Seed)^0xc0117801) + uint64(ci))
		ctls[ci] = &controller{
			class: ci,
			rng:   rand.New(rand.NewSource(int64(h))),
		}
	}
	return ctls
}

// observe records one completed offload latency.
func (c *controller) observe(lat float64) {
	c.winLat = append(c.winLat, lat)
}

// decide maps the window onto a placement step: +1 toward in-camera
// compute, -1 toward offload, 0 to hold. The window is consumed.
func (c *controller) decide(p PolicyConfig) int {
	lat := c.winLat
	drops := c.winDrops
	c.winLat = c.winLat[:0]
	c.winDrops = 0

	var p95 float64
	if len(lat) > 0 {
		sort.Float64s(lat)
		p95 = percentile(lat, 0.95)
	}
	congested := drops > 0 || (len(lat) > 0 && p95 > p.HighSec)
	switch p.Kind {
	case PolicyLatencyThreshold:
		// One-way escalation: congestion pushes cameras toward in-camera
		// compute and they stay there. Simple, monotone, flap-free.
		if congested {
			return 1
		}
	case PolicyHysteresis:
		// Two thresholds with a dead band: step toward in-camera above
		// HighSec, back toward offload when the network is demonstrably
		// idle (completions observed, all cheap, nothing dropped).
		if congested {
			return 1
		}
		if len(lat) > 0 && p95 < p.LowSec {
			return -1
		}
	}
	return 0
}

// move shifts a MoveFraction-sized batch of the class's cameras one step
// in the decided direction, choosing which cameras from the controller's
// seeded stream. Returns the number of cameras moved.
func (c *controller) move(cl *Class, cams []camera, members []int32, dir int) int {
	last := len(cl.Placements) - 1
	var candidates []int32
	for _, idx := range members {
		p := cams[idx].placement + dir
		if p >= 0 && p <= last {
			candidates = append(candidates, idx)
		}
	}
	if len(candidates) == 0 {
		return 0
	}
	k := int(cl.Policy.MoveFraction*float64(len(members)) + 0.5)
	if k < 1 {
		k = 1
	}
	if k > len(candidates) {
		k = len(candidates)
	}
	// Partial Fisher-Yates over the candidate list: the first k slots end
	// up holding a uniform k-subset, in an order fixed by the seed.
	for i := 0; i < k; i++ {
		j := i + c.rng.Intn(len(candidates)-i)
		candidates[i], candidates[j] = candidates[j], candidates[i]
		cams[candidates[i]].placement += dir
	}
	c.moves += int64(k)
	return k
}
