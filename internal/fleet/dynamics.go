package fleet

import (
	"fmt"
	"math"
)

// DynamicsConfig is the optional "dynamics" scenario section: a
// time-ordered schedule of fleet events — churn, link degradation, tier
// outages with camera re-homing, diurnal rate profiles and scheduled
// core-count changes — executed inside the single sequential event loop.
// Absent (or present with an empty event list), results are byte-identical
// to every release before the section existed.
type DynamicsConfig struct {
	// Events is the fault/load schedule, in non-decreasing time order.
	// Each entry fires once at its time; churn entries with EverySec > 0
	// additionally re-fire with seeded exponential inter-arrival gaps
	// until the scenario's Duration.
	Events []FleetEvent `json:"events"`
}

// FleetEvent is one scheduled fleet change. Kind selects which of the
// per-kind fields apply; fields that do not belong to the kind must be
// left zero (validation rejects misplaced ones — a knob on the wrong
// event must not silently do nothing).
type FleetEvent struct {
	// Time is the simulated second the event fires at.
	Time float64 `json:"time_sec"`
	// Kind is one of the Dyn* event kind names below.
	Kind string `json:"kind"`

	// Class names the affected camera class (camera_join, camera_leave,
	// fps_profile).
	Class string `json:"class,omitempty"`
	// Count is how many cameras join or leave per firing; 0 is
	// normalized to 1 (camera_join, camera_leave).
	Count int `json:"count,omitempty"`
	// EverySec > 0 makes a churn entry recurring: after each firing the
	// next is drawn as an exponential gap with this mean, from the
	// entry's own seeded stream — a fourth seed family, so recurring
	// churn never perturbs frame-traffic draws (camera_join,
	// camera_leave).
	EverySec float64 `json:"every_sec,omitempty"`

	// Tier names the affected tier (link_degrade, link_restore,
	// tier_outage, tier_recover, compute_scale).
	Tier string `json:"tier,omitempty"`
	// Factor scales the tier's uplink capacity: served progress up to the
	// event is conserved, the remaining bytes continue at base × Factor.
	// 0 is a full link outage — traffic stalls until a restore
	// (link_degrade).
	Factor float64 `json:"factor,omitempty"`
	// Fallback names the tier the outaged tier's directly attached
	// classes re-home to for the outage's duration; they re-home back on
	// recovery. Required when any class attaches at the tier
	// (tier_outage).
	Fallback string `json:"fallback,omitempty"`

	// Multiplier rescales the class's capture rate (its FPS) from this
	// time on — piecewise-constant diurnal/bursty load (fps_profile).
	Multiplier float64 `json:"multiplier,omitempty"`
	// Cores is the tier core pool's new size (compute_scale).
	Cores int `json:"cores,omitempty"`
}

// Dynamics event kind names.
const (
	// DynCameraJoin adds Count cameras to Class at the event time. New
	// cameras continue the global camera-seed sequence, so existing
	// cameras' streams are untouched.
	DynCameraJoin = "camera_join"
	// DynCameraLeave retires Count cameras of Class, drawn from the
	// entry's seeded stream. In-flight frames of a departed camera still
	// complete; it just captures nothing further.
	DynCameraLeave = "camera_leave"
	// DynLinkDegrade rescales Tier's uplink capacity to base × Factor,
	// conserving in-flight progress; Factor 0 stalls the link outright.
	DynLinkDegrade = "link_degrade"
	// DynLinkRestore returns Tier's uplink to its base capacity.
	DynLinkRestore = "link_restore"
	// DynTierOutage takes Tier down: in-flight transfers through its
	// uplink (and core pool) are dropped and accounted as outage losses,
	// frames arriving while it is down are dropped on arrival, and
	// directly attached classes re-home to Fallback.
	DynTierOutage = "tier_outage"
	// DynTierRecover brings Tier back: downtime stops accruing and the
	// classes whose home it is re-home back.
	DynTierRecover = "tier_recover"
	// DynFPSProfile sets Class's capture-rate multiplier to Multiplier.
	DynFPSProfile = "fps_profile"
	// DynComputeScale resizes Tier's core pool to Cores.
	DynComputeScale = "compute_scale"
)

// dynSeed derives a schedule entry's churn-stream seed from the scenario
// seed and the entry index — two full splitmix64 rounds under the
// dynamics family tag, the fourth seed family (cameras, class
// controllers, global, dynamics), so recurring churn draws never perturb
// any other stream.
func dynSeed(seed int64, entry int) int64 {
	return int64(splitmix64(splitmix64(uint64(seed)^0xd11aa1c5) + uint64(entry)))
}

// normalize fills the section's defaulted fields in place (idempotent):
// a churn entry's unset Count means one camera per firing.
func (d *DynamicsConfig) normalize() {
	for i := range d.Events {
		e := &d.Events[i]
		if (e.Kind == DynCameraJoin || e.Kind == DynCameraLeave) && e.Count == 0 {
			e.Count = 1
		}
	}
}

// dynClassIndex resolves a class name to its index, or -1.
func dynClassIndex(sc *Scenario, name string) int {
	for i := range sc.Classes {
		if sc.Classes[i].Name == name {
			return i
		}
	}
	return -1
}

// dynTierIndex resolves a tier name to its node index, or -1.
func dynTierIndex(nodes []tierNode, name string) int {
	for i := range nodes {
		if nodes[i].Name == name {
			return i
		}
	}
	return -1
}

// validateDynamics checks the dynamics schedule against the resolved tier
// tree: known kinds, finite non-decreasing times, resolvable classes and
// tiers, in-range factors, per-tier outage/recover alternation, and a
// usable fallback for every outage that strands attached cameras. Each
// kind also rejects the other kinds' knobs — a misplaced field must fail,
// not silently do nothing.
func (sc *Scenario) validateDynamics(nodes []tierNode) error {
	d := sc.Dynamics
	if d == nil {
		return nil
	}
	if len(d.Events) > 0 && sc.Federated != nil {
		return fmt.Errorf("fleet: scenario %q: dynamics cannot combine with a federated job (dropping a round's blobs in an outage would deadlock its barrier)", sc.Name)
	}
	down := make(map[int]bool, 2)
	prev := 0.0
	for i := range d.Events {
		e := &d.Events[i]
		bad := func(format string, args ...any) error {
			return fmt.Errorf("fleet: scenario %q: dynamics event %d (%s): %s",
				sc.Name, i, e.Kind, fmt.Sprintf(format, args...))
		}
		if !(e.Time >= 0) || math.IsInf(e.Time, 0) {
			return bad("time %v sec must be finite and non-negative", e.Time)
		}
		if e.Time < prev {
			return bad("time %v sec before the previous event's %v (the schedule must be time-ordered)", e.Time, prev)
		}
		prev = e.Time
		churn := e.Kind == DynCameraJoin || e.Kind == DynCameraLeave
		if !churn && (e.Count != 0 || e.EverySec != 0) {
			return bad("count/every_sec belong to %s and %s only", DynCameraJoin, DynCameraLeave)
		}
		if e.Kind != DynLinkDegrade && e.Factor != 0 {
			return bad("factor belongs to %s only", DynLinkDegrade)
		}
		if e.Kind != DynTierOutage && e.Fallback != "" {
			return bad("fallback belongs to %s only", DynTierOutage)
		}
		if e.Kind != DynFPSProfile && e.Multiplier != 0 {
			return bad("multiplier belongs to %s only", DynFPSProfile)
		}
		if e.Kind != DynComputeScale && e.Cores != 0 {
			return bad("cores belongs to %s only", DynComputeScale)
		}
		needTier := func() (int, error) {
			ti := dynTierIndex(nodes, e.Tier)
			if ti < 0 {
				return -1, bad("unknown tier %q", e.Tier)
			}
			return ti, nil
		}
		switch e.Kind {
		case DynCameraJoin, DynCameraLeave:
			if e.Tier != "" {
				return bad("tier belongs to the link and tier kinds")
			}
			if dynClassIndex(sc, e.Class) < 0 {
				return bad("unknown class %q", e.Class)
			}
			if e.Count <= 0 {
				return bad("count %d must be positive", e.Count)
			}
			if !(e.EverySec >= 0) || math.IsInf(e.EverySec, 0) {
				return bad("every_sec %v must be finite and non-negative", e.EverySec)
			}
		case DynLinkDegrade:
			if _, err := needTier(); err != nil {
				return err
			}
			if !(e.Factor >= 0) || math.IsInf(e.Factor, 0) {
				return bad("factor %v out of range (a capacity scale must be finite and non-negative; 0 is an outage)", e.Factor)
			}
		case DynLinkRestore:
			if _, err := needTier(); err != nil {
				return err
			}
		case DynTierOutage:
			ti, err := needTier()
			if err != nil {
				return err
			}
			if nodes[ti].parent < 0 {
				return bad("the root tier cannot fail (degrade its link to factor 0 instead)")
			}
			if down[ti] {
				return bad("tier %q is already down", e.Tier)
			}
			down[ti] = true
			attached := false
			for ci := range sc.Classes {
				if classAttachIndex(nodes, &sc.Classes[ci]) == ti {
					attached = true
					break
				}
			}
			if attached && e.Fallback == "" {
				return bad("tier %q has attached classes and needs a fallback to re-home them to", e.Tier)
			}
			if e.Fallback != "" {
				fb := dynTierIndex(nodes, e.Fallback)
				if fb < 0 {
					return bad("unknown fallback tier %q", e.Fallback)
				}
				if fb == ti {
					return bad("fallback %q is the failing tier itself", e.Fallback)
				}
				for li := fb; li >= 0; li = nodes[li].parent {
					if li == ti {
						return bad("fallback %q offloads through the failing tier %q", e.Fallback, e.Tier)
					}
				}
			}
		case DynTierRecover:
			ti, err := needTier()
			if err != nil {
				return err
			}
			if !down[ti] {
				return bad("tier %q is not down", e.Tier)
			}
			down[ti] = false
		case DynFPSProfile:
			if e.Tier != "" {
				return bad("tier belongs to the link and tier kinds")
			}
			if dynClassIndex(sc, e.Class) < 0 {
				return bad("unknown class %q", e.Class)
			}
			if !(e.Multiplier > 0) || math.IsInf(e.Multiplier, 0) {
				return bad("multiplier %v must be positive and finite", e.Multiplier)
			}
		case DynComputeScale:
			ti, err := needTier()
			if err != nil {
				return err
			}
			if nodes[ti].Compute == nil {
				return bad("tier %q has no compute section to scale", e.Tier)
			}
			if e.Cores <= 0 {
				return bad("cores %d must be positive", e.Cores)
			}
		default:
			return bad("unknown event kind")
		}
	}
	return nil
}

// DynamicsStats is the run-wide accounting of the dynamics schedule; set
// on Result.Dynamics only when the scenario carries a non-empty schedule.
// Per-tier downtime and outage drops land on TierStats; per-class churn
// and outage-drop counters on ClassStats.
type DynamicsStats struct {
	// Events is the schedule length (recurring firings not counted).
	Events int
	// Joined and Left count cameras added and retired by churn.
	Joined, Left int64
	// Rehomed counts camera re-homings (outage and recovery directions
	// both; a camera re-homed out and back counts twice).
	Rehomed int64
	// DroppedOutage counts frames lost to outages fleet-wide: in-flight
	// transfers through a failing tier, arrivals at a down tier, and
	// transfers stalled forever on a never-restored zero-capacity link.
	DroppedOutage int64
}

// capScaler, coreScaler and drainable are the runtime capabilities the
// dynamics engine needs from links: every uplink contention model
// rescales capacity with conserved progress, every core pool resizes,
// and both sides drain their in-flight population deterministically (in
// completion order, then waiting order) without crediting served bytes.
type capScaler interface {
	setCapacity(now, bytesPerSec float64)
}

type coreScaler interface {
	setCores(now float64, cores int)
}

type drainable interface {
	drain() []int
}

// dynamics is the live fault-schedule state of one run, created only for
// a non-empty schedule so every other run bypasses it entirely.
type dynamics struct {
	events []FleetEvent
	rngs   []prng // per-entry churn streams (dynSeed family)
	class  []int  // resolved class index per entry, -1 when kind has none
	tier   []int  // resolved tier index per entry, -1
	fall   []int  // resolved fallback tier index per entry, -1

	// fpsMul is each class's current capture-rate multiplier (1 nominal).
	fpsMul []float64

	// Per-tier uplink capacity state: the nominal bytes/sec, the current
	// degradation factor, and a running ∫factor·dt so telemetry windows
	// can report their mean available-capacity fraction.
	baseCap  []float64
	capFac   []float64
	capLastT []float64
	capInt   []float64

	// Per-tier outage state and accounting.
	down        []bool
	downAt      []float64
	downtime    []float64
	outageDrops []int64

	// home is each class's original first-hop tier, the one it re-homes
	// back to on recovery.
	home []int

	stats DynamicsStats
}

// newDynamics resolves the schedule against the run's tier tree. Names
// were validated; resolution here cannot fail.
func newDynamics(sc *Scenario, nodes []tierNode, firstHop []int) *dynamics {
	evs := sc.Dynamics.Events
	dyn := &dynamics{
		events:      evs,
		rngs:        make([]prng, len(evs)),
		class:       make([]int, len(evs)),
		tier:        make([]int, len(evs)),
		fall:        make([]int, len(evs)),
		fpsMul:      make([]float64, len(sc.Classes)),
		baseCap:     make([]float64, len(nodes)),
		capFac:      make([]float64, len(nodes)),
		capLastT:    make([]float64, len(nodes)),
		capInt:      make([]float64, len(nodes)),
		down:        make([]bool, len(nodes)),
		downAt:      make([]float64, len(nodes)),
		downtime:    make([]float64, len(nodes)),
		outageDrops: make([]int64, len(nodes)),
		home:        append([]int(nil), firstHop...),
		stats:       DynamicsStats{Events: len(evs)},
	}
	for ci := range dyn.fpsMul {
		dyn.fpsMul[ci] = 1
	}
	for ni := range nodes {
		dyn.baseCap[ni] = nodes[ni].Uplink.BytesPerSecond()
		dyn.capFac[ni] = 1
	}
	for i := range evs {
		e := &evs[i]
		dyn.rngs[i] = newPRNG(dynSeed(sc.Seed, i))
		dyn.class[i] = -1
		dyn.tier[i] = -1
		dyn.fall[i] = -1
		if e.Class != "" {
			dyn.class[i] = dynClassIndex(sc, e.Class)
		}
		if e.Tier != "" {
			dyn.tier[i] = dynTierIndex(nodes, e.Tier)
		}
		if e.Fallback != "" {
			dyn.fall[i] = dynTierIndex(nodes, e.Fallback)
		}
	}
	return dyn
}

// rescale records a capacity-factor change on tier ti at time t,
// accruing the outgoing factor's integral first.
func (dyn *dynamics) rescale(t float64, ti int, factor float64) {
	dyn.capInt[ti] += dyn.capFac[ti] * (t - dyn.capLastT[ti])
	dyn.capLastT[ti] = t
	dyn.capFac[ti] = factor
}

// capIntegralAt projects ∫factor·dt for tier ti forward to time t
// without mutating state (t must not precede the last recorded change).
func (dyn *dynamics) capIntegralAt(ti int, t float64) float64 {
	return dyn.capInt[ti] + dyn.capFac[ti]*(t-dyn.capLastT[ti])
}

// downtimeAt projects tier ti's accrued downtime seconds to time t.
func (dyn *dynamics) downtimeAt(ti int, t float64) float64 {
	dt := dyn.downtime[ti]
	if dyn.down[ti] && t > dyn.downAt[ti] {
		dt += t - dyn.downAt[ti]
	}
	return dt
}
