package quantile

import (
	"math"
	"sort"
	"testing"
)

// TestNearestRankHandComputed pins the nearest-rank definition on small
// hand-computed sample sets — including the shapes where the old
// floor-biased int(q·(n−1)) expression read one sample low.
func TestNearestRankHandComputed(t *testing.T) {
	cases := []struct {
		name   string
		sorted []float64
		q      float64
		want   float64
	}{
		{"empty", nil, 0.5, 0},
		{"single", []float64{7}, 0.95, 7},
		{"p50 of two is the first", []float64{1, 2}, 0.50, 1},
		{"p95 of two is the second", []float64{1, 2}, 0.95, 2},
		{"p25 of four", []float64{1, 2, 3, 4}, 0.25, 1},
		{"p50 of four", []float64{1, 2, 3, 4}, 0.50, 2},
		{"p75 of four", []float64{1, 2, 3, 4}, 0.75, 3},
		{"q=0 is the minimum", []float64{1, 2, 3}, 0, 1},
		{"q=1 is the maximum", []float64{1, 2, 3}, 1, 3},
		{"q>1 clamps", []float64{1, 2, 3}, 1.5, 3},
		{"q<0 clamps", []float64{1, 2, 3}, -0.5, 1},
	}
	for _, tc := range cases {
		if got := NearestRank(tc.sorted, tc.q); got != tc.want {
			t.Errorf("%s: NearestRank(%v, %v) = %v, want %v", tc.name, tc.sorted, tc.q, got, tc.want)
		}
	}
	// n = 100, values 1..100: p95 must be the rank-95 element (95), where
	// the floor expression read index int(0.95·99) = 94 → value 95 too —
	// but at n = 105 the two definitions split: rank ⌈0.95·105⌉ = 100 vs
	// floor index int(0.95·104) = 98 → rank 99.
	big := make([]float64, 105)
	for i := range big {
		big[i] = float64(i + 1)
	}
	if got := NearestRank(big[:100], 0.95); got != 95 {
		t.Errorf("p95 of 1..100 = %v, want 95", got)
	}
	q := 0.95
	if got := NearestRank(big, q); got != 100 {
		t.Errorf("p95 of 1..105 = %v, want 100 (floor-biased code read %v)", got, big[int(q*float64(len(big)-1))])
	}
}

// TestNearestRankProperty checks the definition against a brute-force
// rank count over varied sizes: the returned element's 1-based rank is
// exactly ⌈q·n⌉ when all values are distinct.
func TestNearestRankProperty(t *testing.T) {
	rng := newTestRNG(42)
	for _, n := range []int{1, 2, 3, 7, 10, 99, 100, 101, 105, 1000} {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.float64()
		}
		sort.Float64s(vals)
		for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
			got := NearestRank(vals, q)
			want := int(math.Ceil(q * float64(n)))
			if want < 1 {
				want = 1
			}
			if got != vals[want-1] {
				t.Fatalf("n=%d q=%v: got %v, want rank-%d element %v", n, q, got, want, vals[want-1])
			}
		}
	}
}

// testRNG is a tiny deterministic splitmix64 stream so the tests never
// touch the global math/rand source.
type testRNG struct{ s uint64 }

func newTestRNG(seed uint64) *testRNG { return &testRNG{s: seed} }

func (r *testRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	x := r.s
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (r *testRNG) float64() float64 { return float64(r.next()>>11) / (1 << 53) }

// rankOf returns v's nearest rank in sorted data: the count of elements
// ≤ v.
func rankOf(sorted []float64, v float64) int {
	return sort.SearchFloat64s(sorted, math.Nextafter(v, math.Inf(1)))
}

// checkSketch asserts every queried quantile's true rank lies within
// Eps·n (plus one rank of nearest-rank rounding) of the target.
func checkSketch(t *testing.T, label string, s *Sketch, sorted []float64) {
	t.Helper()
	n := len(sorted)
	if got := s.Count(); got != uint64(n) {
		t.Fatalf("%s: count %d, want %d", label, got, n)
	}
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99} {
		est := s.Quantile(q)
		target := int(math.Ceil(q * float64(n)))
		slack := int(math.Ceil(Eps*float64(n))) + 1
		r := rankOf(sorted, est)
		if r < target-slack || r > target+slack {
			t.Errorf("%s: q=%v estimate %v has rank %d, want %d±%d", label, q, est, r, target, slack)
		}
	}
}

// TestSketchAccuracy streams uniform and heavy-tailed data and checks
// the documented Eps rank bound at several sizes, below and far above
// the sketch's capacity.
func TestSketchAccuracy(t *testing.T) {
	for _, n := range []int{10, K - 1, K + 1, 5_000, 100_000} {
		for _, shape := range []string{"uniform", "heavy-tail"} {
			rng := newTestRNG(uint64(n))
			s := NewSketch()
			vals := make([]float64, n)
			for i := range vals {
				v := rng.float64()
				if shape == "heavy-tail" {
					v = math.Exp(10 * v) // ~4 decades of spread, like latencies
				}
				vals[i] = v
				s.Add(v)
			}
			sort.Float64s(vals)
			checkSketch(t, shape, s, vals)
		}
	}
}

// TestSketchExactBelowCapacity pins that a sketch that never compacted
// answers exactly: below the top compactor's capacity every item is
// retained at weight 1, so Quantile must equal NearestRank.
func TestSketchExactBelowCapacity(t *testing.T) {
	rng := newTestRNG(7)
	s := NewSketch()
	vals := make([]float64, K/2)
	for i := range vals {
		vals[i] = rng.float64()
		s.Add(vals[i])
	}
	sort.Float64s(vals)
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got, want := s.Quantile(q), NearestRank(vals, q); got != want {
			t.Fatalf("q=%v: sketch %v, exact %v", q, got, want)
		}
	}
}

// TestSketchMergeAssociativity splits one stream into windows, sketches
// each, and merges them in two different groupings: both merged
// sketches must satisfy the Eps bound against the full sample set —
// the property that makes per-window (and per-shard) sketches
// composable into run-wide quantiles.
func TestSketchMergeAssociativity(t *testing.T) {
	const n, windows = 40_000, 16
	rng := newTestRNG(11)
	vals := make([]float64, n)
	parts := make([]*Sketch, windows)
	for w := range parts {
		parts[w] = NewSketch()
	}
	for i := range vals {
		vals[i] = math.Exp(6 * rng.float64())
		parts[i*windows/n].Add(vals[i])
	}
	sort.Float64s(vals)

	// Left fold: ((w0+w1)+w2)+...
	left := NewSketch()
	for _, p := range parts {
		left.Merge(p)
	}
	checkSketch(t, "left-fold", left, vals)

	// Pairwise tree: (w0+w1)+(w2+w3)+...
	layer := make([]*Sketch, windows)
	for w := range parts {
		layer[w] = NewSketch()
		layer[w].Merge(parts[w])
	}
	for len(layer) > 1 {
		var next []*Sketch
		for i := 0; i < len(layer); i += 2 {
			if i+1 < len(layer) {
				layer[i].Merge(layer[i+1])
			}
			next = append(next, layer[i])
		}
		layer = next
	}
	checkSketch(t, "pair-tree", layer[0], vals)

	// The two groupings agree with each other within 2·Eps ranks.
	for _, q := range []float64{0.5, 0.95, 0.99} {
		a, b := left.Quantile(q), layer[0].Quantile(q)
		ra, rb := rankOf(vals, a), rankOf(vals, b)
		if d := ra - rb; d < -2*int(Eps*n)-2 || d > 2*int(Eps*n)+2 {
			t.Errorf("q=%v: groupings disagree by %d ranks (%v vs %v)", q, d, a, b)
		}
	}
}

// TestSketchDeterminism pins that identical insertion orders produce
// identical answers — the seeded-coin property the simulator's golden
// contract relies on.
func TestSketchDeterminism(t *testing.T) {
	build := func() *Sketch {
		rng := newTestRNG(3)
		s := NewSketch()
		for i := 0; i < 10_000; i++ {
			s.Add(rng.float64())
		}
		return s
	}
	a, b := build(), build()
	for q := 0.0; q <= 1.0; q += 0.01 {
		if a.Quantile(q) != b.Quantile(q) {
			t.Fatalf("q=%v: %v vs %v", q, a.Quantile(q), b.Quantile(q))
		}
	}
}

// TestSketchResetReuse pins Reset's contract: a reset sketch is empty,
// keeps satisfying the Eps bound on new data, and — fed identically —
// answers identically run-to-run (the reseeded coin), the property the
// telemetry collector relies on when it cycles one sketch through
// windows instead of allocating a fresh one per window.
func TestSketchResetReuse(t *testing.T) {
	const n = 30_000
	fill := func(s *Sketch, seed uint64) []float64 {
		rng := newTestRNG(seed)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = math.Exp(8 * rng.float64())
			s.Add(vals[i])
		}
		sort.Float64s(vals)
		return vals
	}

	s := NewSketch()
	fill(s, 1)
	s.Reset()
	if s.Count() != 0 || s.Quantile(0.5) != 0 {
		t.Fatalf("reset sketch not empty: count %d, p50 %v", s.Count(), s.Quantile(0.5))
	}
	// Second window through the same storage still meets the bound.
	vals := fill(s, 2)
	checkSketch(t, "post-reset", s, vals)

	// Reset determinism: another sketch with the same history answers
	// byte-identically after the same post-reset stream.
	s2 := NewSketch()
	fill(s2, 1)
	s2.Reset()
	fill(s2, 2)
	for _, q := range []float64{0.01, 0.5, 0.95, 0.99} {
		if a, b := s.Quantile(q), s2.Quantile(q); a != b {
			t.Fatalf("q=%v: reset sketches diverge: %v vs %v", q, a, b)
		}
	}
}

// TestSketchEmptyAndNil covers the degenerate surfaces: an empty sketch
// answers 0, merging nil or empty sketches is a no-op.
func TestSketchEmptyAndNil(t *testing.T) {
	s := NewSketch()
	if got := s.Quantile(0.5); got != 0 {
		t.Fatalf("empty sketch quantile %v", got)
	}
	s.Merge(nil)
	s.Merge(NewSketch())
	if s.Count() != 0 {
		t.Fatalf("count %d after no-op merges", s.Count())
	}
	s.Add(4)
	if got := s.Quantile(0.99); got != 4 {
		t.Fatalf("single-sample quantile %v", got)
	}
}
