// Package quantile provides the fleet simulator's two quantile
// estimators: the exact nearest-rank percentile over a sorted sample
// slice (NearestRank — the reference definition every stats surface
// shares), and a mergeable bounded-error streaming sketch (Sketch) for
// runs too long to hold their exact sample sets.
//
// # Nearest rank
//
// NearestRank implements the textbook nearest-rank percentile: the
// q-quantile of n sorted samples is the element with 1-based rank
// ⌈q·n⌉ (clamped to [1, n]). For q = 0.95 and n = 100 that is rank 95 —
// not index int(0.95·99) = 94, the floor-biased expression this helper
// replaced, which systematically read one sample low near the tail.
//
// # Streaming sketch
//
// Sketch is a KLL sketch (Karnin, Lang, Liberman, "Optimal Quantile
// Approximation in Streams", FOCS 2016): a hierarchy of compactors
// where level h holds items of weight 2^h; a full compactor sorts
// itself and promotes every other item — an offset drawn from a seeded
// coin — to the level above at doubled weight. Capacities decay
// geometrically (c = 2/3) below the top compactor of K = 400, so a
// sketch holds O(K) items regardless of stream length, and queries
// answer nearest-rank over the weighted survivors.
//
// The error model is rank error: for any q, Quantile(q) is a value
// whose true rank lies within Eps·n of ⌈q·n⌉ with high probability —
// Eps = 0.01 at K = 400, the bound the fleet package documents and its
// differential tests assert. Two sketches Merge losslessly in weight
// (the merged count is the sum) with the same bound, which is what
// makes per-window — and eventually per-shard — sketches composable
// into run-wide quantiles.
//
// Determinism: the compaction coin is a splitmix64 stream seeded by a
// fixed constant at construction, never the global math/rand source, so
// the same insertion order always produces the identical sketch and the
// identical query answers — the property the simulator's byte-identical
// golden contract requires. ARCHITECTURE.md at the repository root shows
// where the sketches sit in the simulator's telemetry paths; the
// Example functions in this package's tests show the API.
package quantile
