package quantile_test

import (
	"fmt"

	"camsim/internal/fleet/quantile"
)

// ExampleSketch feeds a latency-like stream into a sketch and reads the
// usual tail quantiles back. The sketch's compaction coin is
// deterministic, so the same stream always prints the same estimates —
// the property the fleet simulator's byte-identical replays rely on.
func ExampleSketch() {
	s := quantile.NewSketch()
	for i := 1; i <= 1000; i++ {
		s.Add(float64(i) / 1000) // 1ms .. 1s, uniformly
	}
	// 1000 values exceed the sketch's retained capacity, so these are
	// estimates — off by at most Eps (1%) of rank, hence the 0.501.
	fmt.Printf("count %d\n", s.Count())
	fmt.Printf("p50 %.3f\n", s.Quantile(0.50))
	fmt.Printf("p95 %.3f\n", s.Quantile(0.95))
	// Output:
	// count 1000
	// p50 0.501
	// p95 0.950
}

// ExampleSketch_Merge merges per-window sketches into a run-wide one —
// how the simulator's streaming telemetry gets whole-run quantiles for
// free from its windowed ones.
func ExampleSketch_Merge() {
	total := quantile.NewSketch()
	for w := 0; w < 4; w++ {
		window := quantile.NewSketch()
		for i := 0; i < 250; i++ {
			window.Add(float64(w*250+i) / 1000)
		}
		total.Merge(window)
	}
	fmt.Printf("count %d p95 %.2f\n", total.Count(), total.Quantile(0.95))
	// Output:
	// count 1000 p95 0.95
}

// ExampleNearestRank shows the exact-path percentile rule the sketch
// estimates converge to: the value whose rank is ceil(q·n) in the sorted
// sample.
func ExampleNearestRank() {
	sorted := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	fmt.Println(quantile.NearestRank(sorted, 0.50))
	fmt.Println(quantile.NearestRank(sorted, 0.95))
	// Output:
	// 0.3
	// 0.5
}
