package quantile

import (
	"math"
	"sort"
)

const (
	// K is every Sketch's top-compactor capacity.
	K = 400
	// Eps is the documented rank-error bound of a Sketch at K: an
	// estimate's true rank lies within Eps·n of the requested one.
	Eps = 0.01
	// capDecay shrinks compactor capacities geometrically below the top.
	capDecay = 2.0 / 3.0
	// coinSeed seeds every sketch's compaction coin, so identical
	// insertion orders produce identical sketches.
	coinSeed = 0x5ca1ab1e0ddba11
)

// NearestRank returns the q-quantile (0..1) of sorted by the
// nearest-rank definition: the element of 1-based rank ⌈q·n⌉, clamped
// to [1, n]. An empty slice returns 0, matching the simulator's
// "no samples" convention.
func NearestRank(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	r := int(math.Ceil(q * float64(n)))
	if r < 1 {
		r = 1
	}
	if r > n {
		r = n
	}
	return sorted[r-1]
}

// Sketch is a mergeable KLL quantile sketch. The zero value is not
// usable; construct with NewSketch. See the package comment for the
// algorithm and the error model.
type Sketch struct {
	// compactors[h] holds items of weight 2^h, unsorted between
	// compactions.
	compactors [][]float64
	size       int    // items held across all compactors
	maxSize    int    // sum of compactor capacities at the current height
	count      uint64 // total weight = items observed (Add + Merge)
	coin       uint64 // splitmix64 state for compaction offsets
	scratch    []wv   // Quantile's flatten buffer, reused across calls
}

// wv is one retained value with its compactor weight, Quantile's sort
// unit.
type wv struct {
	v float64
	w uint64
}

// byValue sorts wv items by value without sort.Slice's per-call
// reflection swapper allocation.
type byValue []wv

func (a byValue) Len() int           { return len(a) }
func (a byValue) Less(i, j int) bool { return a[i].v < a[j].v }
func (a byValue) Swap(i, j int)      { a[i], a[j] = a[j], a[i] }

// NewSketch returns an empty sketch. The compaction coin is seeded by a
// fixed constant so identical insertion orders produce identical
// sketches (see the package comment on determinism).
func NewSketch() *Sketch {
	s := &Sketch{coin: coinSeed}
	s.grow()
	return s
}

// Reset empties the sketch while keeping its allocated storage: every
// compactor keeps its backing array and the sketch keeps its height, so
// a caller cycling a sketch through telemetry windows reuses memory
// instead of allocating a fresh sketch per window. The coin is reseeded,
// so identical post-Reset insertion orders produce identical results
// run-to-run. (A reset sketch of height > 1 compacts on its grown
// thresholds, so its retained items can differ from a brand-new
// sketch's on the same input — the error bound is unaffected.)
func (s *Sketch) Reset() {
	for h := range s.compactors {
		s.compactors[h] = s.compactors[h][:0]
	}
	s.size = 0
	s.count = 0
	s.coin = coinSeed
}

// capacity returns level h's capacity at the sketch's current height:
// K at the top, decaying by capDecay per level below it, never under 2.
func (s *Sketch) capacity(h int) int {
	depth := len(s.compactors) - 1 - h
	c := int(math.Ceil(K * math.Pow(capDecay, float64(depth))))
	if c < 2 {
		c = 2
	}
	return c
}

// grow adds one compactor level and recomputes maxSize (growing the
// height shrinks every lower level's capacity).
func (s *Sketch) grow() {
	s.compactors = append(s.compactors, nil)
	s.maxSize = 0
	for h := range s.compactors {
		s.maxSize += s.capacity(h)
	}
}

// flip draws one compaction offset (0 or 1) from the seeded coin.
func (s *Sketch) flip() int {
	s.coin += 0x9e3779b97f4a7c15
	x := s.coin
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return int(x & 1)
}

// Add observes one value.
func (s *Sketch) Add(v float64) {
	s.compactors[0] = append(s.compactors[0], v)
	s.size++
	s.count++
	if s.size >= s.maxSize {
		s.compress()
	}
}

// Count returns the total weight observed (Add calls plus merged
// counts).
func (s *Sketch) Count() uint64 { return s.count }

// compress compacts the lowest over-capacity level. When size ≥
// maxSize at least one level is at capacity (pigeonhole), and a
// compaction always frees at least one slot.
func (s *Sketch) compress() {
	for h := range s.compactors {
		if len(s.compactors[h]) >= s.capacity(h) {
			s.compressLevel(h)
			return
		}
	}
}

// compressLevel sorts level h and promotes every other item — starting
// at a coin-flipped offset — to level h+1 at doubled weight. An odd
// leftover (the smallest item) stays put, so total weight is exactly
// preserved.
func (s *Sketch) compressLevel(h int) {
	if h == len(s.compactors)-1 {
		s.grow()
	}
	c := s.compactors[h]
	sort.Float64s(c)
	lo := len(c) & 1 // odd leftover: c[0] survives in place
	off := s.flip()
	next := s.compactors[h+1]
	for i := lo + off; i < len(c); i += 2 {
		next = append(next, c[i])
	}
	s.compactors[h+1] = next
	promoted := (len(c) - lo - off + 1) / 2
	s.size -= (len(c) - lo) - promoted
	s.compactors[h] = c[:lo]
}

// Merge folds o into s level by level; o is left untouched. The merged
// count is the sum and the rank-error bound is preserved.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil || o.count == 0 {
		return
	}
	for len(s.compactors) < len(o.compactors) {
		s.grow()
	}
	for h, c := range o.compactors {
		s.compactors[h] = append(s.compactors[h], c...)
	}
	s.size += o.size
	s.count += o.count
	for s.size >= s.maxSize {
		s.compress()
	}
}

// Quantile returns the sketch's nearest-rank estimate of the
// q-quantile (0..1): the smallest retained value whose cumulative
// weight reaches ⌈q·Count⌉, clamped to [1, Count]. An empty sketch
// returns 0, matching NearestRank on an empty slice. Like Add and
// Merge, Quantile is not safe for concurrent use — it reuses a
// per-sketch flatten buffer across calls.
func (s *Sketch) Quantile(q float64) float64 {
	if s.count == 0 {
		return 0
	}
	items := s.scratch[:0]
	for h, c := range s.compactors {
		w := uint64(1) << uint(h)
		for _, v := range c {
			items = append(items, wv{v, w})
		}
	}
	s.scratch = items
	sort.Sort(byValue(items))
	target := uint64(math.Ceil(q * float64(s.count)))
	if target < 1 {
		target = 1
	}
	if target > s.count {
		target = s.count
	}
	var cum uint64
	for _, it := range items {
		cum += it.w
		if cum >= target {
			return it.v
		}
	}
	return items[len(items)-1].v
}
