package fl

import (
	"fmt"
	"sort"

	"camsim/internal/fleet/quantile"
)

// Topology is the engine's view of the resolved tier tree: enough to
// place aggregation and route the broadcast, nothing about links or
// capacities (the simulator owns those).
type Topology struct {
	// Names holds the tier names, for error messages and stats.
	Names []string
	// Parent holds each tier's parent index; -1 at the root.
	Parent []int
	// Root is the root tier's index.
	Root int
	// Cams counts the participating cameras attached to each tier.
	Cams []int
	// HasDown marks tiers with a declared downlink (parent→tier; the
	// root's downlink is the cloud→root hop).
	HasDown []bool
}

// Engine runs the round bookkeeping of one federated job. It is pure
// accounting over the simulator's clock: the simulator reports every
// blob landing (Arrive) and every broadcast delivery (Delivered), and
// acts on the emissions those calls request. One engine serves one run.
type Engine struct {
	cfg    Config
	topo   Topology
	update float64 // resolved update blob size, bytes
	model  float64 // resolved broadcast model size, bytes

	depth    []int   // hops below the root, per tier
	span     []bool  // tier is on the broadcast span
	spanKids [][]int // span children, per tier, in index order
	expect   []int   // upstream blobs a tier absorbs per round
	expCloud int     // blobs the cloud absorbs per round
	nAttach  int     // tiers with participants
	nCams    int

	// Per-round state, indexed round-1. Rounds overlap by at most one
	// broadcast in flight against the next round's uploads, but counters
	// are kept per round rather than leaning on that.
	got      [][]int // got[ti][r-1]: upstream blobs absorbed at tier ti
	cloudGot []int
	deliv    []int       // attach-tier deliveries per round
	absorb   [][]float64 // camera-blob landing times per round, relative to the camera's own tier's round start
	rounds   []Round
	// tierStart[ti][r-1] is when round r's local compute starts at attach
	// tier ti: 0 for round 1, else the tier's round-(r−1) model delivery.
	// Tiers delivered earlier start computing sooner, so straggler samples
	// measured against this — not the round's *last* delivery (Round.Start)
	// — are never negative.
	tierStart [][]float64

	upBytes, downBytes float64
	doneAt             float64 // last attach delivery of the final round
}

// NewEngine validates the job against the topology and prepares the
// round bookkeeping. Every tier on the broadcast span — a participating
// tier or any ancestor of one, the root included — must declare a
// downlink, or the model has no path back down.
func NewEngine(cfg Config, topo Topology) (*Engine, error) {
	n := len(topo.Names)
	if n == 0 || topo.Root < 0 || topo.Root >= n {
		return nil, fmt.Errorf("fl: empty or rootless topology")
	}
	e := &Engine{
		cfg:    cfg,
		topo:   topo,
		update: float64(cfg.ResolvedUpdateBytes()),
		model:  float64(cfg.ResolvedModelBytes()),
		depth:  make([]int, n),
		span:   make([]bool, n),
		expect: make([]int, n),
	}
	for ti := 0; ti < n; ti++ {
		for at := ti; topo.Parent[at] >= 0; at = topo.Parent[at] {
			e.depth[ti]++
		}
		e.nCams += topo.Cams[ti]
		if topo.Cams[ti] > 0 {
			e.nAttach++
			for at := ti; at >= 0; at = topo.Parent[at] {
				e.span[at] = true
			}
		}
	}
	if e.nCams == 0 {
		return nil, fmt.Errorf("fl: no participating cameras")
	}
	// Fan-in expectations, children before parents (deeper first): a
	// tier absorbs one blob per camera attached to each child, plus one
	// merged blob per child that aggregates below.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return e.depth[order[i]] > e.depth[order[j]] })
	for _, ti := range order {
		in := topo.Cams[ti]
		if e.expect[ti] > 0 {
			in++
		}
		if in == 0 {
			continue
		}
		if p := topo.Parent[ti]; p >= 0 {
			e.expect[p] += in
		} else {
			e.expCloud = in
		}
	}
	e.spanKids = make([][]int, n)
	for ti := 0; ti < n; ti++ {
		if !e.span[ti] {
			continue
		}
		if !topo.HasDown[ti] {
			return nil, fmt.Errorf("fl: tier %q is on the broadcast span but has no downlink", topo.Names[ti])
		}
		if p := topo.Parent[ti]; p >= 0 {
			e.spanKids[p] = append(e.spanKids[p], ti)
		}
	}
	e.got = make([][]int, n)
	for ti := range e.got {
		if e.expect[ti] > 0 {
			e.got[ti] = make([]int, cfg.Rounds)
		}
	}
	e.cloudGot = make([]int, cfg.Rounds)
	e.deliv = make([]int, cfg.Rounds)
	e.absorb = make([][]float64, cfg.Rounds)
	e.rounds = make([]Round, cfg.Rounds)
	e.tierStart = make([][]float64, n)
	for ti := 0; ti < n; ti++ {
		if topo.Cams[ti] > 0 {
			e.tierStart[ti] = make([]float64, cfg.Rounds)
		}
	}
	return e, nil
}

// UpdateBytes returns the per-camera update blob size in bytes.
func (e *Engine) UpdateBytes() float64 { return e.update }

// ModelBytes returns the broadcast model size in bytes.
func (e *Engine) ModelBytes() float64 { return e.model }

// Rounds returns the configured round count.
func (e *Engine) Rounds() int { return e.cfg.Rounds }

// Cameras returns the participating camera count.
func (e *Engine) Cameras() int { return e.nCams }

// SpanChildren returns the tier's children on the broadcast span: the
// downlinks a delivered model forwards onto.
func (e *Engine) SpanChildren(ti int) []int { return e.spanKids[ti] }

// CamsAt returns the participating cameras attached at the tier.
func (e *Engine) CamsAt(ti int) int { return e.topo.Cams[ti] }

// Arrive registers one upstream blob of round r landing at tier ti (the
// cloud when ti is -1) at time t; from is the attach tier of the camera
// whose own update this is, or -1 for a child tier's merged blob. It
// returns true when the landing completes the round's fan-in there —
// the tier must then emit one merged blob on its own uplink (or, at the
// cloud, the aggregation is done and the broadcast must start down the
// root's downlink). Camera landings are recorded as straggler samples
// relative to their own tier's round start, so a tier delivered early
// (and therefore computing early) cannot produce a negative sample.
func (e *Engine) Arrive(ti, r int, t float64, from int) bool {
	rd := &e.rounds[r-1]
	rd.UpBytes += e.update
	e.upBytes += e.update
	if from >= 0 {
		e.absorb[r-1] = append(e.absorb[r-1], t-e.tierStart[from][r-1])
	}
	if ti < 0 {
		e.cloudGot[r-1]++
		if e.cloudGot[r-1] == e.expCloud {
			rd.AggDone = t
			return true
		}
		return false
	}
	e.got[ti][r-1]++
	return e.got[ti][r-1] == e.expect[ti]
}

// Delivered registers the round-r model's delivery at span tier ti at
// time t — the moment the tier's attached cameras (if any) hold the new
// model and start the next round's local compute. The last attach-tier
// delivery ends the round and starts the next one's clock.
func (e *Engine) Delivered(ti, r int, t float64) {
	rd := &e.rounds[r-1]
	rd.DownBytes += e.model
	e.downBytes += e.model
	if e.topo.Cams[ti] == 0 {
		return
	}
	if r < e.cfg.Rounds {
		// This tier's cameras hold the round-r model now: their round-r+1
		// local compute clock starts here, whatever the rest of the span
		// is still waiting on.
		e.tierStart[ti][r] = t
	}
	e.deliv[r-1]++
	if e.deliv[r-1] == e.nAttach {
		rd.End = t
		if r < e.cfg.Rounds {
			e.rounds[r].Start = t
		} else {
			e.doneAt = t
		}
	}
}

// Stats finalizes and returns the job's telemetry. Call it once, after
// the simulation drains.
func (e *Engine) Stats() *Stats {
	s := &Stats{
		Rounds:      e.cfg.Rounds,
		Cameras:     e.nCams,
		UpdateBytes: int64(e.update),
		ModelBytes:  int64(e.model),
		UpBytes:     e.upBytes,
		DownBytes:   e.downBytes,
		DoneAt:      e.doneAt,
		PerRound:    e.rounds,
	}
	// Without in-network aggregation every camera blob would ride each
	// uplink from its attach tier through the root, every round.
	for ti, cams := range e.topo.Cams {
		s.NaiveUpBytes += float64(cams) * float64(e.depth[ti]+1) * e.update * float64(e.cfg.Rounds)
	}
	s.AggSavedBytes = s.NaiveUpBytes - s.UpBytes
	lats := make([]float64, 0, len(s.PerRound))
	for r := range s.PerRound {
		rd := &s.PerRound[r]
		rd.Latency = rd.End - rd.Start
		lats = append(lats, rd.Latency)
		// Absorb samples are already relative to each camera's own tier's
		// round start, so the percentile needs no epoch subtraction.
		ab := e.absorb[r]
		sort.Float64s(ab)
		rd.StragglerP95 = quantile.NearestRank(ab, 0.95)
	}
	sort.Float64s(lats)
	s.RoundP50 = quantile.NearestRank(lats, 0.50)
	s.RoundP95 = quantile.NearestRank(lats, 0.95)
	return s
}
