package fl

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"camsim/internal/nn"
)

// chain builds gw → core with the given camera placement; every tier has
// a downlink so span validation never trips unless a test removes one.
func chain(camsGw, camsCore int) Topology {
	return Topology{
		Names:   []string{"gw", "core"},
		Parent:  []int{1, -1},
		Root:    1,
		Cams:    []int{camsGw, camsCore},
		HasDown: []bool{true, true},
	}
}

func TestPayloadResolution(t *testing.T) {
	weights := nn.WeightCount(400, 8, 1)
	cases := []struct {
		name        string
		cfg         Config
		update, mdl int64
	}{
		{"explicit", Config{Rounds: 1, UpdateBytes: 100, ModelBytes: 400}, 100, 400},
		{"explicit update only", Config{Rounds: 1, UpdateBytes: 100}, 100, 100},
		{"model derived", Config{Rounds: 1, Model: &ModelConfig{Layers: []int{400, 8, 1}}},
			int64(weights) * 4, int64(weights) * 4},
		{"compressed", Config{Rounds: 1, Model: &ModelConfig{Layers: []int{400, 8, 1}, Compress: 0.5}},
			int64(math.Ceil(float64(weights) * 4 * 0.5)), int64(weights) * 4},
		{"explicit beats model", Config{Rounds: 1, UpdateBytes: 7, Model: &ModelConfig{Layers: []int{4, 2}}},
			7, int64(nn.WeightCount(4, 2)) * 4},
		{"tiny compress floors at one byte", Config{Rounds: 1, Model: &ModelConfig{Layers: []int{1, 1}, BytesPerWeight: 0.001, Compress: 0.001}},
			1, 1},
	}
	for _, tc := range cases {
		tc.cfg.Normalize()
		if err := tc.cfg.Validate(); err != nil {
			t.Errorf("%s: validate: %v", tc.name, err)
			continue
		}
		if got := tc.cfg.ResolvedUpdateBytes(); got != tc.update {
			t.Errorf("%s: update = %d, want %d", tc.name, got, tc.update)
		}
		if got := tc.cfg.ResolvedModelBytes(); got != tc.mdl {
			t.Errorf("%s: model = %d, want %d", tc.name, got, tc.mdl)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"zero rounds", Config{UpdateBytes: 1}, "rounds"},
		{"too many rounds", Config{Rounds: maxRounds + 1, UpdateBytes: 1}, "rounds"},
		{"nan compute", Config{Rounds: 1, UpdateBytes: 1, ComputeSec: math.NaN()}, "compute_sec"},
		{"negative jitter", Config{Rounds: 1, UpdateBytes: 1, JitterSec: -1}, "jitter_sec"},
		{"negative bytes", Config{Rounds: 1, UpdateBytes: -5}, "negative payload"},
		{"no sizing", Config{Rounds: 1}, "update_bytes or a model"},
		{"short layers", Config{Rounds: 1, Model: &ModelConfig{Layers: []int{9}, BytesPerWeight: 4, Compress: 1}}, "layers"},
		{"huge layer", Config{Rounds: 1, Model: &ModelConfig{Layers: []int{1, 1 << 21}, BytesPerWeight: 4, Compress: 1}}, "layer size"},
		{"zero bytes per weight", Config{Rounds: 1, Model: &ModelConfig{Layers: []int{2, 2}, BytesPerWeight: -1, Compress: 1}}, "bytes_per_weight"},
		{"compress above one", Config{Rounds: 1, Model: &ModelConfig{Layers: []int{2, 2}, BytesPerWeight: 4, Compress: 2}}, "compress"},
		{"payload overflow", Config{Rounds: 1, Model: &ModelConfig{Layers: []int{1 << 20, 1 << 20, 2}, BytesPerWeight: 8, Compress: 1}}, "exceeds"},
	}
	for _, tc := range cases {
		if err := tc.cfg.Validate(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestCloneAndNormalizeIdempotent(t *testing.T) {
	orig := Config{
		Rounds:  3,
		Classes: []string{"a", "b"},
		Model:   &ModelConfig{Layers: []int{4, 2}},
	}
	c := orig.Clone()
	c.Normalize()
	if orig.Model.BytesPerWeight != 0 {
		t.Fatal("Normalize on the clone wrote through to the original")
	}
	c.Classes[0] = "mut"
	c.Model.Layers[0] = 99
	if orig.Classes[0] != "a" || orig.Model.Layers[0] != 4 {
		t.Fatal("clone shares slices with the original")
	}
	snap := *c.Clone()
	c.Normalize()
	if !reflect.DeepEqual(snap.Model, c.Model) {
		t.Fatalf("Normalize not idempotent: %+v vs %+v", snap.Model, c.Model)
	}
	if (*Config)(nil).Clone() != nil {
		t.Fatal("nil clone")
	}
}

func TestEngineFanInExpectations(t *testing.T) {
	// star: gw-a, gw-b → core; cams 3 and 2 at the leaves, 1 at the root.
	topo := Topology{
		Names:   []string{"gw-a", "gw-b", "core"},
		Parent:  []int{2, 2, -1},
		Root:    2,
		Cams:    []int{3, 2, 1},
		HasDown: []bool{true, true, true},
	}
	e, err := NewEngine(Config{Rounds: 2, UpdateBytes: 10, ModelBytes: 40}, topo)
	if err != nil {
		t.Fatal(err)
	}
	// The core absorbs each leaf's cameras directly (blobs land one hop
	// up), so it expects 3+2 = 5; the leaves aggregate nothing.
	if e.expect[0] != 0 || e.expect[1] != 0 {
		t.Fatalf("leaf expectations %v, want zero", e.expect[:2])
	}
	if e.expect[2] != 5 {
		t.Fatalf("core expects %d, want 5", e.expect[2])
	}
	// The cloud sees the root's own camera plus the core's merged blob.
	if e.expCloud != 2 {
		t.Fatalf("cloud expects %d, want 2", e.expCloud)
	}
	if e.Cameras() != 6 {
		t.Fatalf("cameras = %d", e.Cameras())
	}
	if kids := e.SpanChildren(2); len(kids) != 2 || kids[0] != 0 || kids[1] != 1 {
		t.Fatalf("span children of core = %v", kids)
	}
}

func TestEngineRoundLifecycle(t *testing.T) {
	e, err := NewEngine(Config{Rounds: 2, UpdateBytes: 10, ModelBytes: 40}, chain(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Round 1: two camera blobs from gw (tier 0) land at the core.
	if e.Arrive(1, 1, 1.0, 0) {
		t.Fatal("fan-in complete after first blob")
	}
	if !e.Arrive(1, 1, 1.5, 0) {
		t.Fatal("fan-in incomplete after second blob")
	}
	// The merged blob reaches the cloud and completes aggregation.
	if !e.Arrive(-1, 1, 2.0, -1) {
		t.Fatal("cloud fan-in incomplete")
	}
	// Broadcast: core (no cams) then gw (cams → round end).
	e.Delivered(1, 1, 2.5)
	e.Delivered(0, 1, 3.0)
	// Round 2, compressed timeline.
	e.Arrive(1, 2, 4.0, 0)
	e.Arrive(1, 2, 4.5, 0)
	e.Arrive(-1, 2, 5.0, -1)
	e.Delivered(1, 2, 5.5)
	e.Delivered(0, 2, 6.0)

	s := e.Stats()
	r1, r2 := s.PerRound[0], s.PerRound[1]
	if r1.Start != 0 || r1.AggDone != 2.0 || r1.End != 3.0 || r1.Latency != 3.0 {
		t.Fatalf("round 1 = %+v", r1)
	}
	if r2.Start != 3.0 || r2.End != 6.0 || r2.Latency != 3.0 {
		t.Fatalf("round 2 = %+v", r2)
	}
	// Nearest-rank percentile: with two samples, p95 is rank ⌈0.95·2⌉ = 2,
	// the later one. Round-1 samples are 1.0 and 1.5 (tier start 0);
	// round-2 samples are 4.0−3.0 and 4.5−3.0 against gw's own round-1
	// delivery at 3.0.
	if r1.StragglerP95 != 1.5 || r2.StragglerP95 != 1.5 {
		t.Fatalf("straggler p95 = %v, %v", r1.StragglerP95, r2.StragglerP95)
	}
	if s.DoneAt != 6.0 {
		t.Fatalf("DoneAt = %v", s.DoneAt)
	}
	// 2 camera blobs + 1 merged blob per round, 10 B each.
	if s.UpBytes != 60 || r1.UpBytes != 30 {
		t.Fatalf("up bytes total %v round %v", s.UpBytes, r1.UpBytes)
	}
	// 2 deliveries per round, 40 B each.
	if s.DownBytes != 160 || r1.DownBytes != 80 {
		t.Fatalf("down bytes total %v round %v", s.DownBytes, r1.DownBytes)
	}
	// Naive: 2 cams × 2 hops × 10 B × 2 rounds = 80; saved 80 − 60 = 20.
	if s.NaiveUpBytes != 80 || s.AggSavedBytes != 20 {
		t.Fatalf("naive %v saved %v", s.NaiveUpBytes, s.AggSavedBytes)
	}
	if got := s.SavedFraction(); got != 0.25 {
		t.Fatalf("saved fraction %v", got)
	}
	if s.RoundP50 != 3.0 || s.RoundP95 != 3.0 {
		t.Fatalf("round percentiles %v %v", s.RoundP50, s.RoundP95)
	}
}

// TestEngineStragglerSkewedDeliveries is the regression for the
// negative-straggler bug: with two attach tiers whose broadcast
// deliveries are far apart, the fast tier's round-2 updates arrive long
// before the round's global start (the *last* delivery). Measured
// against rd.Start those samples went negative; measured against each
// tier's own delivery they are the true compute+uplink spans.
func TestEngineStragglerSkewedDeliveries(t *testing.T) {
	topo := Topology{
		Names:   []string{"gw-fast", "gw-slow", "core"},
		Parent:  []int{2, 2, -1},
		Root:    2,
		Cams:    []int{1, 1, 0},
		HasDown: []bool{true, true, true},
	}
	e, err := NewEngine(Config{Rounds: 2, UpdateBytes: 10, ModelBytes: 40}, topo)
	if err != nil {
		t.Fatal(err)
	}
	// Round 1: both cameras start at 0 and take 1.0–1.2s to land.
	e.Arrive(2, 1, 1.0, 0)
	if !e.Arrive(2, 1, 1.2, 1) {
		t.Fatal("core fan-in incomplete")
	}
	if !e.Arrive(-1, 1, 2.0, -1) {
		t.Fatal("cloud fan-in incomplete")
	}
	// Skewed broadcast: the fast gateway holds the round-1 model at 2.2,
	// the slow one only at 10.0 (think a 7.8s downlink propagation gap).
	e.Delivered(2, 1, 2.1)
	e.Delivered(0, 1, 2.2)
	e.Delivered(1, 1, 10.0)
	// Round 2: each camera computes ~1s from its own delivery. The fast
	// tier's update lands at 3.2 — **before** round 2's global start
	// (10.0), which is what drove the old rd.Start-relative sample to
	// −6.8.
	e.Arrive(2, 2, 3.2, 0)
	if !e.Arrive(2, 2, 11.0, 1) {
		t.Fatal("round-2 core fan-in incomplete")
	}
	e.Arrive(-1, 2, 12.0, -1)
	e.Delivered(2, 2, 12.1)
	e.Delivered(0, 2, 12.2)
	e.Delivered(1, 2, 12.5)

	s := e.Stats()
	r1, r2 := s.PerRound[0], s.PerRound[1]
	if r2.Start != 10.0 {
		t.Fatalf("round 2 start = %v, want the last round-1 delivery", r2.Start)
	}
	// Round 1 samples: 1.0 and 1.2 against tier starts of 0.
	if r1.StragglerP95 != 1.2 {
		t.Fatalf("round 1 straggler p95 = %v, want 1.2", r1.StragglerP95)
	}
	// Round 2 samples: 3.2−2.2 = 1.0 (fast) and 11.0−10.0 = 1.0 (slow).
	if r2.StragglerP95 != 1.0 {
		t.Fatalf("round 2 straggler p95 = %v, want 1.0 (old code: −6.8)", r2.StragglerP95)
	}
	for r, rd := range s.PerRound {
		if rd.StragglerP95 < 0 {
			t.Fatalf("round %d straggler p95 negative: %v", r+1, rd.StragglerP95)
		}
	}
}

func TestEngineRejects(t *testing.T) {
	cfg := Config{Rounds: 1, UpdateBytes: 1}
	if _, err := NewEngine(cfg, Topology{}); err == nil {
		t.Error("empty topology accepted")
	}
	if _, err := NewEngine(cfg, chain(0, 0)); err == nil || !strings.Contains(err.Error(), "no participating cameras") {
		t.Errorf("camera-less job: %v", err)
	}
	noDown := chain(2, 0)
	noDown.HasDown = []bool{true, false}
	if _, err := NewEngine(cfg, noDown); err == nil || !strings.Contains(err.Error(), "broadcast span") {
		t.Errorf("missing span downlink: %v", err)
	}
}
