package fl_test

import (
	"fmt"

	"camsim/internal/fleet/fl"
)

// ExampleConfig sizes a federated round's payloads the way the simulator
// does: the update blob from the trained network's parameter count times
// the compression knob, the broadcast model uncompressed. The paper's
// face-authentication MLP ([400, 8, 1] with biases) carries 3217 weights.
func ExampleConfig() {
	cfg := &fl.Config{
		Rounds: 4,
		Model: &fl.ModelConfig{
			Layers:         []int{400, 8, 1},
			BytesPerWeight: 4,
			Compress:       0.5,
		},
	}
	cfg.Normalize()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	fmt.Printf("update %dB up per camera per round\n", cfg.ResolvedUpdateBytes())
	fmt.Printf("model  %dB back down per round\n", cfg.ResolvedModelBytes())
	// Output:
	// update 6434B up per camera per round
	// model  12868B back down per round
}

// ExampleConfig_fixedBytes skips the model section and fixes the payload
// sizes directly — the "update_bytes" form of the scenario JSON.
func ExampleConfig_fixedBytes() {
	cfg := &fl.Config{Rounds: 2, UpdateBytes: 100_000}
	cfg.Normalize()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	fmt.Printf("update %dB, model %dB\n", cfg.ResolvedUpdateBytes(), cfg.ResolvedModelBytes())
	// Output:
	// update 100000B, model 100000B
}
