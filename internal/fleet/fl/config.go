// Package fl is the round-structured federated-learning engine of the
// fleet simulator: the first bidirectional workload, riding the tier
// tree's uplinks with per-camera model updates and its downlinks with the
// aggregated model broadcast.
//
// A round has four phases. (1) Every participating camera spends
// ComputeSec (plus a seeded per-camera jitter) of local training, then
// pushes an update blob on its attach tier's uplink, contending with the
// fleet's frame traffic. (2) The blob is absorbed one hop up, where the
// receiving tier performs in-network aggregation: once a tier has every
// blob it expects for the round — one per camera attached to each child
// tier, plus one merged blob per child that aggregated below — it emits a
// single merged blob of the same size on its own uplink, so bytes shrink
// at every hop toward the cloud. (3) The cloud, having absorbed the
// root's fan-in, aggregates the global model. (4) The model broadcasts
// back down the tree — one copy per downlink on the span of tiers with
// participants below them — and its delivery at a camera's attach tier
// starts that camera's next round.
//
// Update payloads are sized from the model the fleet trains: a layer
// vector in Config.Model prices the blob at nn.WeightCount(layers) ×
// bytes_per_weight × compress, the paper's network substrate reused as a
// traffic model. The engine itself is pure accounting — it owns no
// links and schedules no events; the fleet simulator drives it with
// Arrive/Delivered calls and obeys the emissions they request.
// ARCHITECTURE.md at the repository root places this package in the
// simulator's overall design — seed families, link layout, event loop.
package fl

import (
	"fmt"
	"math"

	"camsim/internal/nn"
)

// Config is the "federated" section of a fleet scenario: one training
// job over the fleet's tier tree.
type Config struct {
	// Rounds is the number of federated rounds to run. Rounds run to
	// completion even past the scenario's capture duration, so every
	// configured round produces telemetry.
	Rounds int `json:"rounds"`
	// Classes names the participating camera classes; empty means every
	// class participates.
	Classes []string `json:"classes,omitempty"`
	// ComputeSec is the local-training time per round; each camera's
	// update becomes ready ComputeSec plus a per-camera jitter draw after
	// it receives the round's model.
	ComputeSec float64 `json:"compute_sec,omitempty"`
	// JitterSec scales a uniform per-camera jitter in [0, JitterSec)
	// added to every round's compute time — the straggler knob.
	JitterSec float64 `json:"jitter_sec,omitempty"`
	// UpdateBytes fixes the per-camera update blob size directly;
	// 0 derives it from Model.
	UpdateBytes int64 `json:"update_bytes,omitempty"`
	// ModelBytes fixes the broadcast model size; 0 derives it from Model
	// when present (uncompressed), else it equals the update size.
	ModelBytes int64 `json:"model_bytes,omitempty"`
	// Model sizes the payloads from the trained network's parameter
	// count. Required when UpdateBytes is 0.
	Model *ModelConfig `json:"model,omitempty"`
}

// ModelConfig sizes federated payloads from a fully-connected network's
// layer vector, the way internal/nn counts parameters.
type ModelConfig struct {
	// Layers is the network's layer-size vector, e.g. [400, 8, 1] for the
	// paper's face-authentication MLP (3217 weights with biases).
	Layers []int `json:"layers"`
	// BytesPerWeight is the encoding width; 0 is normalized to 4
	// (float32 updates).
	BytesPerWeight float64 `json:"bytes_per_weight,omitempty"`
	// Compress shrinks the update blob (sparsification, quantization);
	// in (0, 1], 0 is normalized to 1. The broadcast model is not
	// compressed.
	Compress float64 `json:"compress,omitempty"`
}

// Clone returns a deep copy, so a simulation run can normalize its own
// copy without writing defaults into the caller's scenario.
func (c *Config) Clone() *Config {
	if c == nil {
		return nil
	}
	d := *c
	d.Classes = append([]string(nil), c.Classes...)
	if c.Model != nil {
		m := *c.Model
		m.Layers = append([]int(nil), c.Model.Layers...)
		d.Model = &m
	}
	return &d
}

// Normalize fills defaulted fields in place. It is idempotent.
func (c *Config) Normalize() {
	if c.Model != nil {
		if c.Model.BytesPerWeight == 0 {
			c.Model.BytesPerWeight = 4
		}
		if c.Model.Compress == 0 {
			c.Model.Compress = 1
		}
	}
}

// maxPayloadBytes bounds a derived payload so a huge layer vector cannot
// overflow the byte arithmetic; a terabyte-class blob is a configuration
// error long before it is a simulation. maxRounds bounds the per-round
// bookkeeping the engine allocates up front.
const (
	maxPayloadBytes = 1 << 40
	maxRounds       = 4096
)

// Validate rejects configurations the engine cannot run. The caller
// normalizes first.
func (c *Config) Validate() error {
	if c.Rounds <= 0 || c.Rounds > maxRounds {
		return fmt.Errorf("fl: rounds %d outside [1, %d]", c.Rounds, maxRounds)
	}
	if !(c.ComputeSec >= 0) || math.IsInf(c.ComputeSec, 0) {
		return fmt.Errorf("fl: compute_sec %v must be finite and non-negative", c.ComputeSec)
	}
	if !(c.JitterSec >= 0) || math.IsInf(c.JitterSec, 0) {
		return fmt.Errorf("fl: jitter_sec %v must be finite and non-negative", c.JitterSec)
	}
	if c.UpdateBytes < 0 || c.ModelBytes < 0 {
		return fmt.Errorf("fl: negative payload bytes")
	}
	if c.UpdateBytes == 0 && c.Model == nil {
		return fmt.Errorf("fl: need update_bytes or a model section to size updates")
	}
	if m := c.Model; m != nil {
		if len(m.Layers) < 2 {
			return fmt.Errorf("fl: model needs at least input and output layers, got %v", m.Layers)
		}
		for _, s := range m.Layers {
			if s <= 0 || s > 1<<20 {
				return fmt.Errorf("fl: model layer size %d outside [1, 2^20]", s)
			}
		}
		if !(m.BytesPerWeight > 0) || math.IsInf(m.BytesPerWeight, 0) {
			return fmt.Errorf("fl: bytes_per_weight %v must be positive and finite", m.BytesPerWeight)
		}
		if !(m.Compress > 0) || m.Compress > 1 {
			return fmt.Errorf("fl: compress %v outside (0, 1]", m.Compress)
		}
		if float64(nn.WeightCount(m.Layers...))*m.BytesPerWeight > maxPayloadBytes {
			return fmt.Errorf("fl: model payload exceeds %d bytes", int64(maxPayloadBytes))
		}
	}
	return nil
}

// ResolvedUpdateBytes returns the per-camera update blob size: the
// explicit UpdateBytes, else ceil(weights × bytes_per_weight × compress)
// from the model section, never below one byte.
func (c *Config) ResolvedUpdateBytes() int64 {
	if c.UpdateBytes > 0 {
		return c.UpdateBytes
	}
	b := int64(math.Ceil(float64(nn.WeightCount(c.Model.Layers...)) * c.Model.BytesPerWeight * c.Model.Compress))
	if b < 1 {
		b = 1
	}
	return b
}

// ResolvedModelBytes returns the broadcast model size: the explicit
// ModelBytes, else the uncompressed model from the model section, else
// the update size.
func (c *Config) ResolvedModelBytes() int64 {
	if c.ModelBytes > 0 {
		return c.ModelBytes
	}
	if c.Model != nil {
		return int64(math.Ceil(float64(nn.WeightCount(c.Model.Layers...)) * c.Model.BytesPerWeight))
	}
	return c.ResolvedUpdateBytes()
}
