package fl

// Stats is one federated job's telemetry, surfaced in the fleet
// Result's Federated field.
type Stats struct {
	// Rounds and Cameras echo the job's shape; UpdateBytes and
	// ModelBytes are the resolved payload sizes.
	Rounds      int
	Cameras     int
	UpdateBytes int64
	ModelBytes  int64

	// UpBytes and DownBytes are the federated bytes that actually
	// crossed links: one UpdateBytes per uplink crossing (camera blobs
	// and merged blobs alike), one ModelBytes per downlink crossing.
	UpBytes   float64
	DownBytes float64
	// NaiveUpBytes prices the same job without in-network aggregation —
	// every camera blob riding every uplink from its attach tier through
	// the root — and AggSavedBytes is what aggregation saved.
	NaiveUpBytes  float64
	AggSavedBytes float64

	// RoundP50 and RoundP95 are percentiles of the per-round latencies;
	// DoneAt is when the final round's broadcast finished delivering.
	RoundP50 float64
	RoundP95 float64
	DoneAt   float64

	// PerRound holds one entry per round, in round order.
	PerRound []Round
}

// Round is one federated round's telemetry.
type Round struct {
	// Start is when the fleet held the previous round's model (0 for the
	// first round); AggDone is when the cloud finished absorbing the
	// round's fan-in; End is the last attach-tier delivery of the
	// round's broadcast; Latency is End − Start.
	Start   float64
	AggDone float64
	End     float64
	Latency float64
	// StragglerP95 is the p95 (nearest-rank) camera-update landing time,
	// each sample relative to its own tier's round start — when that
	// tier's cameras received the previous model and began computing —
	// so a tier delivered early never yields a negative sample. This is
	// the local-compute-plus-first-uplink tail the cloud barrier waits
	// on.
	StragglerP95 float64
	// UpBytes and DownBytes are the round's link-crossing byte totals.
	UpBytes   float64
	DownBytes float64
}

// SavedFraction returns AggSavedBytes over NaiveUpBytes, 0 when nothing
// would have been sent anyway.
func (s *Stats) SavedFraction() float64 {
	if s.NaiveUpBytes <= 0 {
		return 0
	}
	return s.AggSavedBytes / s.NaiveUpBytes
}
