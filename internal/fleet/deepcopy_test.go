package fleet

import (
	"fmt"
	"reflect"
	"testing"
)

// deepCopyScenario clones a scenario by reflection: every pointer,
// slice and map reachable from the root gets fresh backing storage, and
// nil-ness is preserved exactly (a nil slice stays nil, a non-nil empty
// slice stays non-nil empty — the distinction Normalize idempotency
// checks care about). Because the walk enumerates struct fields by
// reflection, a new scenario section is covered the moment it is added;
// the old hand-maintained copy list this replaces had to be extended by
// hand every time (and PRs 6 and 7 nearly forgot).
func deepCopyScenario(sc Scenario) Scenario {
	return deepCopyValue(reflect.ValueOf(sc)).Interface().(Scenario)
}

// deepCopyValue returns a deep copy of v. It panics on kinds the
// scenario graph must never contain — channels, funcs, non-nil
// interfaces, unexported fields — so the fuzz harness fails loudly the
// moment the Scenario shape breaks the contract scenariocopy enforces
// statically.
func deepCopyValue(v reflect.Value) reflect.Value {
	switch v.Kind() {
	case reflect.Pointer:
		if v.IsNil() {
			return reflect.Zero(v.Type())
		}
		out := reflect.New(v.Type().Elem())
		out.Elem().Set(deepCopyValue(v.Elem()))
		return out
	case reflect.Slice:
		if v.IsNil() {
			return reflect.Zero(v.Type())
		}
		out := reflect.MakeSlice(v.Type(), v.Len(), v.Len())
		for i := 0; i < v.Len(); i++ {
			out.Index(i).Set(deepCopyValue(v.Index(i)))
		}
		return out
	case reflect.Map:
		if v.IsNil() {
			return reflect.Zero(v.Type())
		}
		out := reflect.MakeMapWithSize(v.Type(), v.Len())
		iter := v.MapRange()
		for iter.Next() {
			out.SetMapIndex(deepCopyValue(iter.Key()), deepCopyValue(iter.Value()))
		}
		return out
	case reflect.Struct:
		out := reflect.New(v.Type()).Elem()
		for i := 0; i < v.NumField(); i++ {
			if !out.Field(i).CanSet() {
				panic(fmt.Sprintf("deepCopy: unexported field %s.%s", v.Type(), v.Type().Field(i).Name))
			}
			out.Field(i).Set(deepCopyValue(v.Field(i)))
		}
		return out
	case reflect.Array:
		out := reflect.New(v.Type()).Elem()
		for i := 0; i < v.Len(); i++ {
			out.Index(i).Set(deepCopyValue(v.Index(i)))
		}
		return out
	case reflect.Interface:
		if v.IsNil() {
			return reflect.Zero(v.Type())
		}
		panic(fmt.Sprintf("deepCopy: non-nil interface of %s", v.Type()))
	case reflect.Chan, reflect.Func, reflect.UnsafePointer:
		panic(fmt.Sprintf("deepCopy: uncopyable kind %s", v.Kind()))
	default:
		return v
	}
}

// fillValue sets every field reachable from v to a distinct non-zero
// value: pointers are allocated, slices get two filled elements, maps
// one filled entry. The counter makes every leaf unique, so an aliasing
// bug cannot hide behind two fields that happen to hold equal values.
func fillValue(v reflect.Value, counter *int) {
	*counter++
	switch v.Kind() {
	case reflect.Pointer:
		v.Set(reflect.New(v.Type().Elem()))
		fillValue(v.Elem(), counter)
	case reflect.Slice:
		s := reflect.MakeSlice(v.Type(), 2, 2)
		for i := 0; i < 2; i++ {
			fillValue(s.Index(i), counter)
		}
		v.Set(s)
	case reflect.Map:
		m := reflect.MakeMap(v.Type())
		k := reflect.New(v.Type().Key()).Elem()
		e := reflect.New(v.Type().Elem()).Elem()
		fillValue(k, counter)
		fillValue(e, counter)
		m.SetMapIndex(k, e)
		v.Set(m)
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			fillValue(v.Field(i), counter)
		}
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			fillValue(v.Index(i), counter)
		}
	case reflect.String:
		v.SetString(fmt.Sprintf("v%d", *counter))
	case reflect.Bool:
		v.SetBool(true)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(int64(*counter))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(uint64(*counter))
	case reflect.Float32, reflect.Float64:
		v.SetFloat(float64(*counter))
	default:
		panic(fmt.Sprintf("fill: unhandled kind %s", v.Kind()))
	}
}

// assertNoAliasing walks two structurally equal values in parallel and
// fails if any pointer, slice backing array, or map is shared between
// them.
func assertNoAliasing(t *testing.T, path string, a, b reflect.Value) {
	t.Helper()
	switch a.Kind() {
	case reflect.Pointer:
		if a.IsNil() {
			return
		}
		if a.Pointer() == b.Pointer() {
			t.Errorf("%s: copy shares the pointer with the original", path)
			return
		}
		assertNoAliasing(t, path+".*", a.Elem(), b.Elem())
	case reflect.Slice:
		if a.IsNil() {
			return
		}
		if a.Pointer() == b.Pointer() {
			t.Errorf("%s: copy shares the slice backing array with the original", path)
			return
		}
		for i := 0; i < a.Len(); i++ {
			assertNoAliasing(t, fmt.Sprintf("%s[%d]", path, i), a.Index(i), b.Index(i))
		}
	case reflect.Map:
		if a.IsNil() {
			return
		}
		if a.Pointer() == b.Pointer() {
			t.Errorf("%s: copy shares the map with the original", path)
		}
	case reflect.Struct:
		for i := 0; i < a.NumField(); i++ {
			assertNoAliasing(t, path+"."+a.Type().Field(i).Name, a.Field(i), b.Field(i))
		}
	case reflect.Array:
		for i := 0; i < a.Len(); i++ {
			assertNoAliasing(t, fmt.Sprintf("%s[%d]", path, i), a.Index(i), b.Index(i))
		}
	}
}

// assertAllNonZero fails if any leaf under v is still the zero value —
// the guarantee that makes the coverage test meaningful: every Scenario
// field, present and future, is exercised by the copy.
func assertAllNonZero(t *testing.T, path string, v reflect.Value) {
	t.Helper()
	switch v.Kind() {
	case reflect.Pointer, reflect.Slice, reflect.Map:
		if v.IsNil() {
			t.Errorf("%s: fill left a nil %s", path, v.Kind())
			return
		}
		switch v.Kind() {
		case reflect.Pointer:
			assertAllNonZero(t, path+".*", v.Elem())
		case reflect.Slice:
			for i := 0; i < v.Len(); i++ {
				assertAllNonZero(t, fmt.Sprintf("%s[%d]", path, i), v.Index(i))
			}
		case reflect.Map:
			iter := v.MapRange()
			for iter.Next() {
				assertAllNonZero(t, path+"[key]", iter.Value())
			}
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			assertAllNonZero(t, path+"."+v.Type().Field(i).Name, v.Field(i))
		}
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			assertAllNonZero(t, fmt.Sprintf("%s[%d]", path, i), v.Index(i))
		}
	default:
		if v.IsZero() {
			t.Errorf("%s: fill left a zero %s", path, v.Kind())
		}
	}
}

// TestDeepCopyScenarioCoversAllFields fills every field of a Scenario —
// the whole graph, nested sections included — with distinct non-zero
// values, deep-copies it, and checks the copy is equal but shares no
// storage. Because fill, copy and the checks all enumerate fields by
// reflection, adding a Scenario section keeps this test exhaustive with
// no edits; an unexported or uncopyable field makes the copy panic.
func TestDeepCopyScenarioCoversAllFields(t *testing.T) {
	var sc Scenario
	counter := 0
	fillValue(reflect.ValueOf(&sc).Elem(), &counter)
	assertAllNonZero(t, "Scenario", reflect.ValueOf(sc))

	cp := deepCopyScenario(sc)
	if !reflect.DeepEqual(cp, sc) {
		t.Fatalf("deep copy differs from original:\n%+v\nvs\n%+v", cp, sc)
	}
	assertNoAliasing(t, "Scenario", reflect.ValueOf(cp), reflect.ValueOf(sc))

	// Mutating the copy's nested storage must leave the original intact.
	cp.Classes[0].Name = "mutated"
	if sc.Classes[0].Name == "mutated" {
		t.Error("mutating the copy's Classes wrote through to the original")
	}
}

// TestDeepCopyPreservesNilness pins the property the fuzz harness
// depends on: nil and empty-but-non-nil slices and pointers survive the
// copy exactly, so reflect.DeepEqual across a copy is an identity
// check, not a normalization.
func TestDeepCopyPreservesNilness(t *testing.T) {
	sc := Scenario{Classes: []Class{}} // non-nil empty
	cp := deepCopyScenario(sc)
	if cp.Classes == nil {
		t.Error("non-nil empty Classes became nil")
	}
	if cp.Gateways != nil || cp.Tiers != nil || cp.Global != nil ||
		cp.Federated != nil || cp.Telemetry != nil {
		t.Error("nil sections became non-nil")
	}
	if !reflect.DeepEqual(cp, sc) {
		t.Errorf("copy differs: %+v vs %+v", cp, sc)
	}
}
