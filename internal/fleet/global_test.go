package fleet

import (
	"math"
	"testing"
)

// energyScenario is the hand-built fleet behind the global-controller
// tests: two uncongested gateways of VR heads whose raw-offload placement
// burns roughly twice the watts of the in-camera pipeline, priced through
// two forwarding hops. moveFraction caps the per-epoch reassignment.
func energyScenario(seed int64, budgetW, moveFraction float64) Scenario {
	vr := func(name, tier string) Class {
		return Class{
			Name: name, Count: 2, FPS: 10, Arrival: ArrivalPeriodic,
			Tier: tier, QueueDepth: 4,
			CaptureJ: 5e-3, TxFixedJ: 1e-4, TxPerByteJ: 4e-8,
			Placements: []PlacementCost{
				{Name: "raw", FrameBytes: 12_400_000, ComputeSeconds: 0.0001, ComputeJ: 0.0002},
				{Name: "full", FrameBytes: 1_122_000, ComputeSeconds: 0.0316, ComputeJ: 0.316},
			},
		}
	}
	return Scenario{
		Name:     "energy-test",
		Seed:     seed,
		Duration: 6,
		Tiers: []Tier{
			{Name: "gw-a", Parent: "core", Uplink: UplinkConfig{Gbps: 4}, PropagationSec: 0.0002, TxPerByteJ: 2e-8},
			{Name: "gw-b", Parent: "core", Uplink: UplinkConfig{Gbps: 4}, PropagationSec: 0.0002, TxPerByteJ: 2e-8},
			{Name: "core", Uplink: UplinkConfig{Gbps: 8}, PropagationSec: 0.002, TxPerByteJ: 1e-8},
		},
		Classes: []Class{vr("vr-a", "gw-a"), vr("vr-b", "gw-b")},
		Global:  &GlobalConfig{EpochSec: 1, BudgetW: budgetW, HighSec: 0.5, MoveFraction: moveFraction},
	}
}

func TestGlobalControllerDeterminism(t *testing.T) {
	// The same global scenario must produce byte-identical tables run
	// directly, rerun, and swept under different worker-pool widths.
	sc := energyScenario(3, 24, 0.5)
	first, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if first.Global == nil || first.Global.Moves == 0 {
		t.Fatalf("global controller never moved a camera: %+v", first.Global)
	}
	again, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if first.Table() != again.Table() {
		t.Fatalf("rerun diverged:\n%s\nvs\n%s", first.Table(), again.Table())
	}
	points := []Scenario{sc, sc, sc, sc}
	for _, workers := range []int{1, 2, 4} {
		for i, o := range Sweep(points, workers) {
			if o.Err != nil {
				t.Fatal(o.Err)
			}
			if o.Result.Table() != first.Table() {
				t.Fatalf("workers=%d point %d diverged from direct run", workers, i)
			}
		}
	}
}

func TestGlobalBudgetRespectedEachEpoch(t *testing.T) {
	// With an unconstrained per-epoch cap and a feasible budget (the
	// all-in-camera floor is ~16 W), every epoch must end with the
	// projected placement power under budget — the knapsack invariant.
	res, err := Run(energyScenario(3, 24, 1))
	if err != nil {
		t.Fatal(err)
	}
	g := res.Global
	if g == nil || len(g.Epochs) == 0 {
		t.Fatalf("no global epochs recorded: %+v", g)
	}
	for i, ep := range g.Epochs {
		if ep.AfterW > g.BudgetW*(1+1e-12) {
			t.Fatalf("epoch %d (t=%v) ended over budget: %v W > %v W", i, ep.Time, ep.AfterW, g.BudgetW)
		}
		if ep.AfterW > ep.BeforeW {
			t.Fatalf("epoch %d raised projected power %v -> %v with no congestion", i, ep.BeforeW, ep.AfterW)
		}
	}
	if res.Energy.ProjectedW > g.BudgetW*(1+1e-12) {
		t.Fatalf("final projected power %v W over budget %v W", res.Energy.ProjectedW, g.BudgetW)
	}
	// The first epoch already fits: shedding is greedy, not gradual.
	if g.Epochs[0].AfterW > g.BudgetW {
		t.Fatalf("first epoch did not reach the budget: %+v", g.Epochs[0])
	}
	// And the controller sheds only to the line, not to the floor: some
	// camera must still hold the expensive raw placement.
	raw := 0
	for _, s := range res.Classes {
		if len(s.PlacementCounts) > 0 {
			raw += s.PlacementCounts[0]
		}
	}
	if raw == 0 {
		t.Fatalf("budget shedding overshot to the all-in-camera floor: %+v", res.Classes)
	}
}

func TestGlobalEnergyAccounting(t *testing.T) {
	res, err := Run(energyScenario(3, 24, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	// NetworkJ is exactly the per-tier forwarding sum, and every hop's
	// ForwardJ is its served bytes times its configured price.
	var sum float64
	for _, ti := range res.Tiers {
		want := ti.ServedBytes * ti.TxPerByteJ
		if math.Abs(ti.ForwardJ-want) > 1e-9*want {
			t.Fatalf("tier %s ForwardJ %v != ServedBytes×TxPerByteJ %v", ti.Name, ti.ForwardJ, want)
		}
		sum += ti.ForwardJ
	}
	if math.Abs(res.Energy.NetworkJ-sum) > 1e-9*sum || sum == 0 {
		t.Fatalf("NetworkJ %v != tier sum %v", res.Energy.NetworkJ, sum)
	}
	if res.Energy.CameraJ != res.Total.EnergyJ {
		t.Fatalf("CameraJ %v != Total.EnergyJ %v", res.Energy.CameraJ, res.Total.EnergyJ)
	}
	wantAvg := (res.Energy.CameraJ + res.Energy.NetworkJ) / res.SimEnd
	if math.Abs(res.Energy.AvgPowerW-wantAvg) > 1e-12 {
		t.Fatalf("AvgPowerW %v != %v", res.Energy.AvgPowerW, wantAvg)
	}
}

func TestEnergyWeightZeroReproducesLatencyThreshold(t *testing.T) {
	// Property: with energy_weight 0 the energy-latency policy IS the
	// latency-threshold policy — identical decisions, identical seeded
	// camera picks, identical switch sequence — across congested and
	// idle fleets and several seeds.
	build := func(sc Scenario, kind string) Scenario {
		sc.Classes = append([]Class(nil), sc.Classes...)
		for i := range sc.Classes {
			if len(sc.Classes[i].Placements) > 0 {
				p := &sc.Classes[i].Policy
				p.Kind = kind
				p.EnergyWeight = 0
				if p.HighSec == 0 {
					p.IntervalSec, p.HighSec, p.MoveFraction = 0.5, 0.5, 0.5
				}
			}
		}
		return sc
	}
	for seed := int64(1); seed <= 5; seed++ {
		for _, base := range []Scenario{
			twoTierScenario(seed, PolicyLatencyThreshold, 0), // congested edge link
			energyScenario(seed, 1e9, 0.5),                   // idle links, budget never binds
		} {
			base.Global = nil
			lt, err := Run(build(base, PolicyLatencyThreshold))
			if err != nil {
				t.Fatal(err)
			}
			el, err := Run(build(base, PolicyEnergyLatency))
			if err != nil {
				t.Fatal(err)
			}
			for ci := range lt.Classes {
				a, b := lt.Classes[ci], el.Classes[ci]
				if a.Switches != b.Switches {
					t.Fatalf("seed %d %s: switches %d vs %d", seed, a.Name, a.Switches, b.Switches)
				}
				if len(a.PlacementCounts) > 0 {
					for k := range a.PlacementCounts {
						if a.PlacementCounts[k] != b.PlacementCounts[k] {
							t.Fatalf("seed %d %s: placements %v vs %v", seed, a.Name, a.PlacementCounts, b.PlacementCounts)
						}
					}
				}
				if a.LatencyP95 != b.LatencyP95 || a.Captured != b.Captured || a.EnergyJ != b.EnergyJ {
					t.Fatalf("seed %d %s: stats diverged: %+v vs %+v", seed, a.Name, a, b)
				}
			}
		}
	}
}

func TestEnergyLatencyWalksTowardCheaperPlacement(t *testing.T) {
	// On idle links with a positive weight, the policy must move every
	// head to the cheaper in-camera row without any congestion signal.
	sc, err := EnergyDemoScenario(1, PolicyEnergyLatency)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Classes {
		if len(s.PlacementCounts) == 0 {
			continue
		}
		if s.DroppedQueue != 0 {
			t.Fatalf("%s: congestion contaminated the energy-only test: %+v", s.Name, s)
		}
		if s.Switches == 0 || s.PlacementCounts[0] != 0 {
			t.Fatalf("%s: heads did not walk in-camera: %+v", s.Name, s)
		}
	}
	static, err := EnergyDemoScenario(1, PolicyStatic)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := Run(static)
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy.ProjectedW >= sres.Energy.ProjectedW {
		t.Fatalf("energy-latency projected %v W not below static %v W",
			res.Energy.ProjectedW, sres.Energy.ProjectedW)
	}
}

func TestMoveAcceptSkipsOverBudgetRows(t *testing.T) {
	// Three-row table with the class split across rows: stepping a row-1
	// camera in-camera (+4 W) overshoots the budget while stepping a
	// row-0 camera (−9 W) fits. Whatever order the seeded shuffle draws,
	// the batch must skip the over-budget cameras and still shed — the
	// old first-overshoot break returned 0 moves and stranded the fleet
	// over a feasible budget.
	sc := &Scenario{Classes: []Class{{
		Name: "mixed", Count: 4, FPS: 1,
		Placements: []PlacementCost{{FrameBytes: 1}, {FrameBytes: 1}, {FrameBytes: 1}},
	}}}
	for seed := int64(1); seed <= 20; seed++ {
		g := &globalController{
			cfg:  GlobalConfig{BudgetW: 20, EpochSec: 1, MoveFraction: 1},
			rng:  newPRNG(seed),
			rowJ: [][]float64{{10, 1, 5}},
		}
		cams := []camera{{placement: 1}, {placement: 0}, {placement: 1}, {placement: 0}}
		projected := 22.0 // 1 + 10 + 1 + 10
		moved := g.moveAccept(sc, cams, []int32{0, 1, 2, 3}, 0, +1, 4, &projected, false)
		if moved == 0 {
			t.Fatalf("seed %d: over-budget rows aborted the whole batch", seed)
		}
		if projected > 20 {
			t.Fatalf("seed %d: still over budget after shedding: %v W", seed, projected)
		}
	}
}

func TestGlobalValidation(t *testing.T) {
	base := energyScenario(1, 24, 0.5)

	bad := base
	bad.Global = &GlobalConfig{BudgetW: 0}
	if _, err := Run(bad); err == nil {
		t.Fatal("accepted a zero global budget")
	}

	bad = base
	bad.Global = &GlobalConfig{BudgetW: 24, MoveFraction: 1.5}
	if _, err := Run(bad); err == nil {
		t.Fatal("accepted a move fraction above 1")
	}

	bad = base
	bad.Global = &GlobalConfig{BudgetW: 24, HighSec: math.Inf(1)}
	if _, err := Run(bad); err == nil {
		t.Fatal("accepted an infinite high_sec")
	}

	bad = base
	bad.Classes = append([]Class(nil), base.Classes...)
	for i := range bad.Classes {
		bad.Classes[i].Placements = nil
		bad.Classes[i].FrameBytes = 1000
	}
	if _, err := Run(bad); err == nil {
		t.Fatal("accepted a global controller with no placements table to reassign")
	}

	bad = base
	bad.Classes = append([]Class(nil), base.Classes...)
	bad.Classes[0].Policy = PolicyConfig{Kind: PolicyEnergyLatency, HighSec: 1, EnergyWeight: -1}
	if _, err := Run(bad); err == nil {
		t.Fatal("accepted a negative energy weight")
	}

	bad = base
	bad.Tiers = append([]Tier(nil), base.Tiers...)
	bad.Tiers[0].TxPerByteJ = -1e-9
	if _, err := Run(bad); err == nil {
		t.Fatal("accepted negative forwarding energy")
	}
}

func TestPlacementEnergyPerFrame(t *testing.T) {
	c := Class{
		CaptureJ: 1e-3, ComputeJ: 0.5, TxFixedJ: 1e-4, TxPerByteJ: 1e-8,
		FrameBytes: 1000, OffloadProb: 0.5,
	}
	// Table-less: class fields, offload costs weighted by probability.
	want := 1e-3 + 0.5 + 0.5*(1e-4+(1e-8+2e-8)*1000)
	if got := c.PlacementEnergyPerFrame(0, 2e-8); math.Abs(got-want) > 1e-15 {
		t.Fatalf("table-less energy %v, want %v", got, want)
	}
	// With a table, the row's bytes and compute override the class's.
	c.Placements = []PlacementCost{
		{Name: "raw", FrameBytes: 4000, ComputeSeconds: 0, ComputeJ: 0},
		{Name: "full", FrameBytes: 100, ComputeSeconds: 0.03, ComputeJ: 0.9},
	}
	want = 1e-3 + 0.9 + 0.5*(1e-4+(1e-8+2e-8)*100)
	if got := c.PlacementEnergyPerFrame(1, 2e-8); math.Abs(got-want) > 1e-15 {
		t.Fatalf("row energy %v, want %v", got, want)
	}
}
