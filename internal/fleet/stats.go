package fleet

import (
	"fmt"
	"sort"
	"strings"

	"camsim/internal/fleet/fl"
	"camsim/internal/fleet/quantile"
)

// ClassStats aggregates one camera class over a run (or, for
// Result.Total, the whole fleet).
type ClassStats struct {
	Name    string
	Cameras int

	Captured      int64 // frames captured (including dropped ones)
	Offloaded     int64 // offloads completed over the uplink
	DroppedQueue  int64 // frames dropped by per-camera backpressure
	DroppedEnergy int64 // frames skipped by an empty harvest store
	// DroppedOutage counts frames lost to dynamics outages: in flight
	// through a failing tier, arriving at a down one, or stalled forever
	// on a never-restored zero-capacity link. 0 without a schedule.
	DroppedOutage int64
	EnergyJ       float64

	// Dynamics churn accounting, 0 without a schedule: cameras added and
	// retired, and camera re-homings (each direction counts once).
	Joined, Left, Rehomed int64

	// Offload latency percentiles, capture to completed upload (through
	// every tier), seconds.
	LatencyP50, LatencyP95, LatencyP99 float64

	// Switches counts individual camera placement moves decided by the
	// class's adaptive controller (0 for static or table-less classes).
	Switches int64
	// PlacementCounts is the final population per placement index, set
	// only for classes carrying a runtime cost table.
	PlacementCounts []int

	latencies []float64
}

// EnergyPerFrame returns the mean energy per captured frame in joules.
func (s ClassStats) EnergyPerFrame() float64 {
	if s.Captured == 0 {
		return 0
	}
	return s.EnergyJ / float64(s.Captured)
}

// DropRate returns the fraction of captured frames lost to backpressure,
// energy starvation, or an outage.
func (s ClassStats) DropRate() float64 {
	if s.Captured == 0 {
		return 0
	}
	return float64(s.DroppedQueue+s.DroppedEnergy+s.DroppedOutage) / float64(s.Captured)
}

// TierStats is the per-link accounting of one network tier, in resolved
// tree order (declaration order; for the legacy gateway form, each gateway
// link then the top-tier "wan" link).
type TierStats struct {
	Name string
	// Parent names the tier this link feeds into; empty at the root.
	Parent string
	// Depth is the tier's hop distance below the root link (root = 0).
	Depth      int
	Gbps       float64
	Contention string
	// PropagationSec is the link's configured one-way propagation delay.
	PropagationSec float64
	ServedBytes    float64
	// Transfers counts completed transmissions on this link.
	Transfers int64
	// Utilization is served payload over capacity × SimEnd.
	Utilization float64
	// TxPerByteJ is the link's configured forwarding energy per byte;
	// ForwardJ is the energy it actually spent, ServedBytes × TxPerByteJ.
	TxPerByteJ float64
	ForwardJ   float64

	// FLUpBytes is the federated share of ServedBytes: camera update
	// blobs plus merged aggregation blobs this uplink carried. 0 without
	// a federated job.
	FLUpBytes float64

	// Dynamics availability accounting, 0 without a schedule: seconds the
	// tier spent down (outage to recovery, clamped to the run's end) and
	// frames its failures cost (drained in flight plus dropped arrivals).
	DowntimeSec float64
	OutageDrops int64

	// Downlink accounting, set only for tiers declaring one: the
	// parent→tier (cloud→root at the root) link's configuration and its
	// served root→leaf traffic — today the federated model broadcast.
	DownGbps            float64
	DownContention      string
	DownPropagationSec  float64
	DownServedBytes     float64
	DownTransfers       int64
	DownlinkUtilization float64

	// Compute is the tier's core-pool accounting; nil for tiers without a
	// compute section (every tier, in scenarios predating it).
	Compute *ComputeStats
}

// ComputeStats is the accounting of one tier's finite core pool over a
// run: how busy the cores were and how long frames queued for them. The
// wait quantiles come from a KLL sketch (internal/fleet/quantile), so
// they carry its ±1% rank error; BusySec is exact — the conservation the
// compute property tests pin is BusySec = Σ (per-frame service seconds)
// over Frames, never exceeding Cores × wall time.
type ComputeStats struct {
	Cores      int
	Discipline string
	// Frames counts frames the pool finished servicing.
	Frames int64
	// BusySec is the total core-seconds of service delivered.
	BusySec float64
	// Utilization is BusySec over Cores × SimEnd.
	Utilization float64
	// WaitP50/WaitP95 are queueing-delay quantiles: a frame's sojourn in
	// the pool minus its service time, zero when a core was free.
	WaitP50, WaitP95 float64
}

// Label renders the tier's display name: "name->parent" below the root,
// the bare name at it.
func (t TierStats) Label() string {
	if t.Parent == "" {
		return t.Name
	}
	return t.Name + "->" + t.Parent
}

// PropDelayTotal returns the total propagation time accrued at this hop:
// every completed transmission paid the link's one-way delay once.
func (t TierStats) PropDelayTotal() float64 {
	return float64(t.Transfers) * t.PropagationSec
}

// HasDownlink reports whether the tier declared a downlink.
func (t TierStats) HasDownlink() bool { return t.DownGbps > 0 }

// DownPropDelayTotal returns the total propagation time accrued on the
// tier's downlink: every delivered transmission paid its one-way delay.
func (t TierStats) DownPropDelayTotal() float64 {
	return float64(t.DownTransfers) * t.DownPropagationSec
}

// utilization is served payload over capacity × elapsed time, guarded so a
// degenerate run (zero elapsed time or capacity) reports 0 instead of
// NaN/Inf.
func utilization(servedBytes, bytesPerSec, elapsed float64) float64 {
	if elapsed <= 0 || bytesPerSec <= 0 {
		return 0
	}
	return servedBytes / (bytesPerSec * elapsed)
}

// EnergyStats is the run's fleet-wide energy accounting, the second axis
// of the paper's tradeoff surfaced alongside latency.
type EnergyStats struct {
	// CameraJ is the total camera-side energy actually charged over the
	// run (capture + compute + radio, summed over every class).
	CameraJ float64
	// NetworkJ is the forwarding energy the tier tree spent: each link's
	// observed served bytes times its configured TxPerByteJ.
	NetworkJ float64
	// AvgPowerW is (CameraJ + NetworkJ) / SimEnd.
	AvgPowerW float64
	// ProjectedW is the fleet's steady-state placement power at the final
	// placements — the quantity the global controller budgets.
	ProjectedW float64
}

// GlobalStats reports the fleet-wide energy-aware controller's decisions.
type GlobalStats struct {
	// BudgetW echoes the configured fleet-wide placement power budget.
	BudgetW float64
	// Moves counts every camera the global controller reassigned.
	Moves int64
	// Epochs holds one entry per decision tick, in time order.
	Epochs []GlobalEpoch
}

// GlobalEpoch is one global decision: the projected placement power
// before and after its reassignments.
type GlobalEpoch struct {
	Time    float64
	BeforeW float64
	AfterW  float64
	Moves   []GlobalMove
}

// GlobalMove is one epoch's reassignment of part of one class: Count
// cameras stepped Dir (+1 toward in-camera compute, -1 toward offload),
// for Reason "latency" (congestion relief) or "energy" (budget shedding).
type GlobalMove struct {
	Class  string
	Dir    int
	Count  int
	Reason string
}

// Result is the outcome of one simulated scenario.
type Result struct {
	Scenario Scenario
	Classes  []ClassStats
	Total    ClassStats
	// Tiers holds per-link stats: gateways in scenario order, then the
	// top-tier link named "wan". A flat scenario has exactly one entry.
	Tiers []TierStats
	// SimEnd is when the last offload drained (≥ Scenario.Duration).
	SimEnd float64
	// UplinkUtilization is the top-tier link's utilization (the only
	// link's, in a flat scenario) — served payload over capacity × SimEnd.
	UplinkUtilization float64
	// Energy is the fleet-wide energy accounting of the run.
	Energy EnergyStats
	// Global reports the global controller's epochs; nil when the
	// scenario does not configure one.
	Global *GlobalStats
	// Federated reports the federated job's per-round telemetry; nil
	// when the scenario does not configure one.
	Federated *fl.Stats
	// TimeSeries is the windowed streaming telemetry; nil unless the
	// scenario sets telemetry.streaming with a window_sec.
	TimeSeries *TimeSeries
	// Dynamics is the fault schedule's run-wide accounting; nil unless
	// the scenario carries a non-empty dynamics section.
	Dynamics *DynamicsStats
}

// TierNamed returns the stats of the named tier, or nil. The root tier of
// a flat or gateway scenario is named "wan"; tier-tree scenarios use their
// declared names.
func (r *Result) TierNamed(name string) *TierStats {
	for i := range r.Tiers {
		if r.Tiers[i].Name == name {
			return &r.Tiers[i]
		}
	}
	return nil
}

func newResult(sc Scenario) *Result {
	res := &Result{Scenario: sc}
	for _, c := range sc.Classes {
		res.Classes = append(res.Classes, ClassStats{Name: c.Name, Cameras: c.Count})
	}
	return res
}

// percentile returns the q-quantile (0..1) of sorted by nearest rank —
// the element of 1-based rank ⌈q·n⌉ (quantile.NearestRank, the one
// definition shared with internal/fleet/fl). The floor-biased
// int(q·(n−1)) expression this delegated away read the tail one sample
// low: p95 of 105 samples was index 98 instead of rank 100.
func percentile(sorted []float64, q float64) float64 {
	return quantile.NearestRank(sorted, q)
}

// finalize computes percentiles and the fleet-wide Total from the
// per-class accumulators, in class order so results are reproducible.
// With a streaming collector the quantiles come from its run-wide
// sketches (exact-path sample slices were never populated); without
// one, from the exact sorted sample sets as always.
func (r *Result) finalize(tel *collector) {
	r.Total = ClassStats{Name: "fleet"}
	var perClass [][3]float64
	var total [3]float64
	if tel != nil {
		perClass, total = tel.quantiles()
	}
	n := 0
	for i := range r.Classes {
		n += len(r.Classes[i].latencies)
	}
	all := make([]float64, 0, n)
	for i := range r.Classes {
		s := &r.Classes[i]
		if tel != nil {
			s.LatencyP50, s.LatencyP95, s.LatencyP99 = perClass[i][0], perClass[i][1], perClass[i][2]
		} else {
			sort.Float64s(s.latencies)
			s.LatencyP50 = percentile(s.latencies, 0.50)
			s.LatencyP95 = percentile(s.latencies, 0.95)
			s.LatencyP99 = percentile(s.latencies, 0.99)
			all = append(all, s.latencies...)
		}

		r.Total.Cameras += s.Cameras
		r.Total.Captured += s.Captured
		r.Total.Offloaded += s.Offloaded
		r.Total.DroppedQueue += s.DroppedQueue
		r.Total.DroppedEnergy += s.DroppedEnergy
		r.Total.DroppedOutage += s.DroppedOutage
		r.Total.EnergyJ += s.EnergyJ
		r.Total.Joined += s.Joined
		r.Total.Left += s.Left
		r.Total.Rehomed += s.Rehomed
		r.Total.Switches += s.Switches
	}
	if tel != nil {
		r.Total.LatencyP50, r.Total.LatencyP95, r.Total.LatencyP99 = total[0], total[1], total[2]
		return
	}
	sort.Float64s(all)
	r.Total.LatencyP50 = percentile(all, 0.50)
	r.Total.LatencyP95 = percentile(all, 0.95)
	r.Total.LatencyP99 = percentile(all, 0.99)
	r.Total.latencies = all
}

// FormatLatency renders a latency in engineering units, "—" when no
// sample exists.
func FormatLatency(sec float64) string {
	switch {
	case sec <= 0:
		return "—"
	case sec < 1e-3:
		return fmt.Sprintf("%.0fµs", sec*1e6)
	case sec < 1:
		return fmt.Sprintf("%.1fms", sec*1e3)
	}
	return fmt.Sprintf("%.2fs", sec)
}

// Table renders the run as a paper-style per-class stat table.
func (r *Result) Table() string {
	var b strings.Builder
	// The header names the top-tier link. For tier-form scenarios that is
	// the root tier's uplink — read it from the tree itself rather than
	// Scenario.Uplink, which is only guaranteed to mirror the root after
	// Normalize ran (a hand-built Result would print 0.0 Gb/s).
	up := r.Scenario.Uplink
	for i := range r.Scenario.Tiers {
		if r.Scenario.Tiers[i].Parent == "" {
			up = r.Scenario.Tiers[i].Uplink
			break
		}
	}
	fmt.Fprintf(&b, "scenario %-28s uplink %.1f Gb/s %-10s util %5.1f%%  drained %.2fs\n",
		r.Scenario.Name, up.Gbps, up.Contention,
		r.UplinkUtilization*100, r.SimEnd)
	fmt.Fprintf(&b, "  %-22s %6s %9s %9s %7s %7s %8s %8s %8s %10s\n",
		"class", "cams", "captured", "offload", "dropQ", "dropE", "p50", "p95", "p99", "J/frame")
	rows := append([]ClassStats{}, r.Classes...)
	rows = append(rows, r.Total)
	for _, s := range rows {
		fmt.Fprintf(&b, "  %-22s %6d %9d %9d %7d %7d %8s %8s %8s %10.3g\n",
			s.Name, s.Cameras, s.Captured, s.Offloaded, s.DroppedQueue, s.DroppedEnergy,
			FormatLatency(s.LatencyP50), FormatLatency(s.LatencyP95), FormatLatency(s.LatencyP99),
			s.EnergyPerFrame())
	}
	// Tier lines appear for multi-tier topologies, and for any topology
	// once a tier carries a core pool — a flat scenario with compute still
	// has pool stats worth a line.
	anyCompute := false
	for i := range r.Tiers {
		if r.Tiers[i].Compute != nil {
			anyCompute = true
			break
		}
	}
	if len(r.Tiers) > 1 || anyCompute {
		for _, ti := range r.Tiers {
			fmt.Fprintf(&b, "  tier %-22s %5.1f Gb/s %-10s util %5.1f%%  xfers %d",
				ti.Label(), ti.Gbps, ti.Contention, ti.Utilization*100, ti.Transfers)
			if ti.PropagationSec > 0 {
				fmt.Fprintf(&b, "  prop %s", FormatLatency(ti.PropagationSec))
			}
			if ti.ForwardJ > 0 {
				fmt.Fprintf(&b, "  fwd %.3gJ", ti.ForwardJ)
			}
			if ti.FLUpBytes > 0 {
				fmt.Fprintf(&b, "  fl %.4gMB", ti.FLUpBytes/1e6)
			}
			if ti.HasDownlink() {
				fmt.Fprintf(&b, "  down %.1f Gb/s util %5.2f%%", ti.DownGbps, ti.DownlinkUtilization*100)
			}
			if c := ti.Compute; c != nil {
				fmt.Fprintf(&b, "  cpu %dx%s util %5.1f%% wait-p95 %s",
					c.Cores, c.Discipline, c.Utilization*100, FormatLatency(c.WaitP95))
			}
			// Only a dynamics schedule produces these, so legacy tables
			// are unchanged byte for byte.
			if ti.DowntimeSec > 0 {
				fmt.Fprintf(&b, "  down %.2fs", ti.DowntimeSec)
			}
			if ti.OutageDrops > 0 {
				fmt.Fprintf(&b, "  outage-drops %d", ti.OutageDrops)
			}
			fmt.Fprintln(&b)
		}
	}
	if f := r.Federated; f != nil {
		fmt.Fprintf(&b, "  federated rounds %d  cams %d  update %dB model %dB  round p50 %s p95 %s\n",
			f.Rounds, f.Cameras, f.UpdateBytes, f.ModelBytes,
			FormatLatency(f.RoundP50), FormatLatency(f.RoundP95))
		fmt.Fprintf(&b, "    up %.4gMB down %.4gMB  without aggregation %.4gMB (saved %.1f%%)\n",
			f.UpBytes/1e6, f.DownBytes/1e6, f.NaiveUpBytes/1e6, f.SavedFraction()*100)
		for i, rd := range f.PerRound {
			fmt.Fprintf(&b, "    round %2d start %.3fs agg %.3fs end %.3fs  lat %s  straggler-p95 %s\n",
				i+1, rd.Start, rd.AggDone, rd.End,
				FormatLatency(rd.Latency), FormatLatency(rd.StragglerP95))
		}
	}
	// The energy block appears once the scenario models the second cost
	// axis (network forwarding energy or a global budget); legacy
	// latency-only scenarios keep their original table shape.
	if r.Energy.NetworkJ > 0 || r.Global != nil {
		fmt.Fprintf(&b, "  energy camera %.3gJ + network %.3gJ = %.1fW avg, projected %.1fW\n",
			r.Energy.CameraJ, r.Energy.NetworkJ, r.Energy.AvgPowerW, r.Energy.ProjectedW)
	}
	if d := r.Dynamics; d != nil {
		fmt.Fprintf(&b, "  dynamics events %d  joined %d  left %d  rehomed %d  outage-drops %d\n",
			d.Events, d.Joined, d.Left, d.Rehomed, d.DroppedOutage)
	}
	if g := r.Global; g != nil {
		fmt.Fprintf(&b, "  global budget %.1fW  epochs %d  moves %d\n", g.BudgetW, len(g.Epochs), g.Moves)
		for _, ep := range g.Epochs {
			if len(ep.Moves) == 0 {
				continue
			}
			fmt.Fprintf(&b, "    epoch t=%.2fs %.1fW -> %.1fW ", ep.Time, ep.BeforeW, ep.AfterW)
			for _, m := range ep.Moves {
				fmt.Fprintf(&b, " %s %s%+dx%d", m.Reason, m.Class, m.Dir, m.Count)
			}
			fmt.Fprintln(&b)
		}
	}
	for i, s := range r.Classes {
		if len(s.PlacementCounts) == 0 {
			continue
		}
		cl := &r.Scenario.Classes[i]
		fmt.Fprintf(&b, "  policy %-15s %-17s moves %4d  final", s.Name, cl.Policy.Kind, s.Switches)
		for k, n := range s.PlacementCounts {
			name := cl.Placements[k].Name
			if name == "" {
				name = fmt.Sprintf("p%d", k)
			}
			fmt.Fprintf(&b, " %s:%d", name, n)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}
