package fleet

import (
	"math"
	"math/rand"
)

// prng is the simulator's compact per-entity random stream: a splitmix64
// generator whose entire state is one uint64 embedded by value in its
// owner. It replaces the per-camera *rand.Rand of earlier revisions —
// rand.NewSource's lagged-Fibonacci state is ~5 KB behind a pointer, so a
// 100k-camera fleet carried ~500 MB of cache-hostile heap just for
// randomness; the same fleet now carries 800 KB inline with the cameras.
//
// splitmix64 walks its state by a fixed odd increment (the golden-ratio
// gamma) and returns a finalizing mix of the new state, so every seed
// yields a full-period (2^64) stream and two streams whose mixed seeds
// differ anywhere are statistically independent. Seeds come from
// cameraSeed and the controller derivations, which are themselves
// splitmix64-mixed, so consecutive camera indexes start at unrelated
// stream positions.
//
// prng implements rand.Source64, so a stream can still feed rand.New
// where the full math/rand surface is needed; the direct Float64 /
// ExpFloat64 / Intn methods are what the hot path calls, and they draw
// different values than rand.Rand's ziggurat-based ones — switching to
// them was the one-time seeded-stream shift noted in doc.go.
type prng struct {
	state uint64
}

var _ rand.Source64 = (*prng)(nil)

// newPRNG returns a stream positioned by the given (pre-mixed) seed.
func newPRNG(seed int64) prng { return prng{state: uint64(seed)} }

// Uint64 advances the stream one step and returns 64 random bits.
func (p *prng) Uint64() uint64 {
	p.state += 0x9e3779b97f4a7c15
	z := p.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 implements rand.Source.
func (p *prng) Int63() int64 { return int64(p.Uint64() >> 1) }

// Seed implements rand.Source, repositioning the stream.
func (p *prng) Seed(seed int64) { p.state = uint64(seed) }

// Float64 returns a uniform draw in [0, 1) with 53 bits of precision.
func (p *prng) Float64() float64 {
	return float64(p.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponential draw with rate 1 by inversion:
// -ln(1-U) for uniform U in [0, 1). The inverse CDF needs one uniform per
// draw and no tables, trading rand.Rand's amortized-faster ziggurat for
// zero state — the right side of the trade when the state lives in every
// camera.
func (p *prng) ExpFloat64() float64 {
	return -math.Log(1 - p.Float64())
}

// Intn returns a uniform draw in [0, n). It panics if n <= 0. The modulo
// bias is at most n/2^64 — unobservable at simulator population sizes —
// in exchange for a branch-free single draw.
func (p *prng) Intn(n int) int {
	if n <= 0 {
		panic("fleet: prng.Intn with non-positive n")
	}
	return int(p.Uint64() % uint64(n))
}
