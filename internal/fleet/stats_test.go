package fleet

import (
	"strings"
	"testing"
)

// TestTableHeaderRootTierUplink pins the header fix: a Result built
// around an un-normalized tiers scenario (Scenario.Uplink left zero —
// Normalize is what mirrors the root tier into it) must still print the
// root tier's real capacity and contention, not "0.0 Gb/s".
func TestTableHeaderRootTierUplink(t *testing.T) {
	r := &Result{
		Scenario: Scenario{
			Name: "hand-built",
			Tiers: []Tier{
				{Name: "gw", Parent: "core", Uplink: UplinkConfig{Gbps: 1, Contention: ContentionFIFO}},
				{Name: "core", Uplink: UplinkConfig{Gbps: 7.5, Contention: ContentionFairShare}},
			},
		},
	}
	head, _, _ := strings.Cut(r.Table(), "\n")
	if !strings.Contains(head, "uplink 7.5 Gb/s fair-share") {
		t.Fatalf("header does not name the root tier's uplink: %q", head)
	}

	// A normalized run keeps the exact same header (the golden contract):
	// Normalize mirrors the root into Scenario.Uplink, and Table now reads
	// the root directly — both paths must agree.
	sc := r.Scenario
	sc.Duration = 0.1
	sc.Classes = []Class{{Name: "edge", Count: 1, FPS: 1, FrameBytes: 100, Tier: "gw"}}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	runHead, _, _ := strings.Cut(res.Table(), "\n")
	if !strings.Contains(runHead, "uplink 7.5 Gb/s fair-share") {
		t.Fatalf("normalized run header diverged: %q", runHead)
	}
}
