package fleet

import (
	"strings"
	"testing"

	"camsim/internal/core"
)

// twoTierScenario is a small hand-built tiered scenario: one adaptive
// class behind a gateway plus a flat class attached straight to the WAN.
func twoTierScenario(seed int64, kind string, start int) Scenario {
	return Scenario{
		Name:     "test-2tier",
		Seed:     seed,
		Duration: 6,
		Uplink:   UplinkConfig{Gbps: 0.1, Contention: ContentionFairShare},
		Gateways: []Gateway{
			{Name: "edge", Uplink: UplinkConfig{Gbps: 0.05, Contention: ContentionFairShare}},
		},
		Classes: []Class{
			{
				// At "raw" the 8 cameras demand 16 MB/s of a 6.25 MB/s edge
				// link (2.5x oversubscribed — congested but still draining);
				// at "edge-lite" they fit with a ~40 ms offload latency.
				Name: "adaptive", Count: 8, FPS: 10, Arrival: ArrivalPeriodic,
				Gateway: "edge", QueueDepth: 3,
				CaptureJ: 1e-3, TxFixedJ: 1e-4, TxPerByteJ: 4e-8,
				Placements: []PlacementCost{
					{Name: "raw", FrameBytes: 200_000, ComputeSeconds: 0.001, ComputeJ: 2e-3},
					{Name: "edge-lite", FrameBytes: 20_000, ComputeSeconds: 0.03, ComputeJ: 0.3},
				},
				Policy: PolicyConfig{
					Kind: kind, IntervalSec: 0.5, HighSec: 0.5, LowSec: 0.1,
					MoveFraction: 0.5, Start: start,
				},
			},
			{
				Name: "direct", Count: 20, FPS: 2, Arrival: ArrivalPoisson,
				FrameBytes: 1_000, OffloadProb: 0.8, ComputeSeconds: 0.005,
				CaptureJ: 3e-6, ComputeJ: 1e-6, TxFixedJ: 2e-6, TxPerByteJ: 5e-10,
			},
		},
	}
}

func TestTieredTopologyRunsAndReportsTiers(t *testing.T) {
	res, err := Run(twoTierScenario(3, PolicyStatic, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tiers) != 2 {
		t.Fatalf("expected 2 tiers, got %+v", res.Tiers)
	}
	if res.Tiers[0].Name != "edge" || res.Tiers[1].Name != "wan" {
		t.Fatalf("tier order wrong: %+v", res.Tiers)
	}
	// Everything the gateway serves crosses the WAN too, and only the
	// direct class bypasses the gateway, so WAN bytes ≥ gateway bytes.
	if res.Tiers[1].ServedBytes < res.Tiers[0].ServedBytes {
		t.Fatalf("WAN served %v < gateway served %v", res.Tiers[1].ServedBytes, res.Tiers[0].ServedBytes)
	}
	if res.UplinkUtilization != res.Tiers[1].Utilization {
		t.Fatalf("UplinkUtilization %v != WAN tier %v", res.UplinkUtilization, res.Tiers[1].Utilization)
	}
	for _, ti := range res.Tiers {
		if ti.Utilization < 0 || ti.Utilization > 1+1e-9 {
			t.Fatalf("tier %s utilization %v outside [0,1]", ti.Name, ti.Utilization)
		}
	}
	// Offload accounting still conserves through two hops.
	s := res.Classes[0]
	if s.Offloaded+s.DroppedQueue+s.DroppedEnergy != s.Captured {
		t.Fatalf("two-hop accounting leak: %+v", s)
	}
	if s.Switches != 0 || res.Classes[0].PlacementCounts[0] != 8 {
		t.Fatalf("static policy moved cameras: %+v", s)
	}
}

func TestFlatScenarioHasSingleWANTier(t *testing.T) {
	res, err := Run(mixedScenario(42, ContentionFairShare))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tiers) != 1 || res.Tiers[0].Name != "wan" {
		t.Fatalf("flat scenario tiers: %+v", res.Tiers)
	}
	if res.UplinkUtilization != res.Tiers[0].Utilization {
		t.Fatalf("utilization mismatch: %v vs %v", res.UplinkUtilization, res.Tiers[0].Utilization)
	}
	// The flat table keeps its original shape: no tier block is rendered
	// for a single-link scenario.
	if strings.Contains(res.Table(), "tier ") {
		t.Fatalf("flat table grew a tier block:\n%s", res.Table())
	}
}

func TestLatencyThresholdEscalatesUnderCongestion(t *testing.T) {
	static, err := Run(twoTierScenario(3, PolicyStatic, 0))
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := Run(twoTierScenario(3, PolicyLatencyThreshold, 0))
	if err != nil {
		t.Fatal(err)
	}
	as := adaptive.Classes[0]
	if as.Switches == 0 {
		t.Fatalf("congested threshold policy never moved a camera: %+v", as)
	}
	if got := as.PlacementCounts[1]; got != 8 {
		t.Fatalf("expected all 8 cameras at the in-camera placement, got %v", as.PlacementCounts)
	}
	if as.LatencyP95 >= static.Classes[0].LatencyP95 {
		t.Fatalf("adaptive p95 %v not below static p95 %v", as.LatencyP95, static.Classes[0].LatencyP95)
	}
}

func TestHysteresisMovesBothDirections(t *testing.T) {
	// Start fully at the cheap in-camera placement on an idle network: the
	// controller steps cameras back toward raw offload, congests the edge
	// link, and must then escalate back. Both directions show up as more
	// total moves than a one-way migration could produce.
	res, err := Run(twoTierScenario(3, PolicyHysteresis, 1))
	if err != nil {
		t.Fatal(err)
	}
	s := res.Classes[0]
	if s.Switches == 0 {
		t.Fatalf("hysteresis never moved: %+v", s)
	}
	if s.Switches <= 8 {
		t.Fatalf("expected moves in both directions (> 8 total), got %d", s.Switches)
	}
	if res.Total.Switches != s.Switches {
		t.Fatalf("Total.Switches %d != class switches %d", res.Total.Switches, s.Switches)
	}
}

func TestTopologyDemoLatencyThresholdBeatsStatic(t *testing.T) {
	// The acceptance scenario: a congested two-gateway fleet where the
	// latency-threshold policy shifts the VR cameras toward in-camera
	// compute, with strictly lower p95 offload latency than static — and
	// byte-identical reproduction per seed.
	run := func(policy string) *Result {
		sc, err := TopologyDemoScenario(1, policy)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	static, adaptive := run(PolicyStatic), run(PolicyLatencyThreshold)
	for _, i := range []int{0, 2} { // the two VR classes
		sp, ap := static.Classes[i], adaptive.Classes[i]
		if ap.LatencyP95 >= sp.LatencyP95 {
			t.Fatalf("%s: adaptive p95 %v not strictly below static %v", ap.Name, ap.LatencyP95, sp.LatencyP95)
		}
		if ap.Switches == 0 || ap.PlacementCounts[len(ap.PlacementCounts)-1] == 0 {
			t.Fatalf("%s: no cameras shifted in-camera: %+v", ap.Name, ap)
		}
	}
	again := run(PolicyLatencyThreshold)
	if adaptive.Table() != again.Table() {
		t.Fatalf("same seed produced different tables:\n%s\nvs\n%s", adaptive.Table(), again.Table())
	}
}

func TestTopologyValidation(t *testing.T) {
	base := twoTierScenario(1, PolicyStatic, 0)

	bad := base
	bad.Classes = append([]Class(nil), base.Classes...)
	bad.Classes[0].Gateway = "nonexistent"
	if _, err := Run(bad); err == nil {
		t.Fatal("accepted a class on an unknown gateway")
	}

	bad = base
	bad.Gateways = []Gateway{
		{Name: "edge", Uplink: UplinkConfig{Gbps: 1}},
		{Name: "edge", Uplink: UplinkConfig{Gbps: 1}},
	}
	if _, err := Run(bad); err == nil {
		t.Fatal("accepted duplicate gateway names")
	}

	bad = base
	bad.Gateways = []Gateway{{Name: "edge", Uplink: UplinkConfig{Gbps: -1}}}
	if _, err := Run(bad); err == nil {
		t.Fatal("accepted a negative-capacity gateway link")
	}

	bad = base
	bad.Classes = append([]Class(nil), base.Classes...)
	bad.Classes[0].Policy.Kind = "oracle"
	if _, err := Run(bad); err == nil {
		t.Fatal("accepted an unknown policy kind")
	}

	bad = base
	bad.Classes = append([]Class(nil), base.Classes...)
	bad.Classes[0].Policy.Start = 7
	if _, err := Run(bad); err == nil {
		t.Fatal("accepted a start index outside the placements table")
	}

	bad = base
	bad.Classes = append([]Class(nil), base.Classes...)
	bad.Classes[0].Placements = nil
	bad.Classes[0].Policy = PolicyConfig{Kind: PolicyLatencyThreshold, HighSec: 1}
	bad.Classes[0].FrameBytes = 100
	if _, err := Run(bad); err == nil {
		t.Fatal("accepted an adaptive policy without a placements table")
	}

	bad = base
	bad.Classes = append([]Class(nil), base.Classes...)
	bad.Classes[0].Policy = PolicyConfig{Kind: PolicyLatencyThreshold}
	if _, err := Run(bad); err == nil {
		t.Fatal("accepted a threshold policy without high_sec")
	}
}

func TestVRAdaptiveClassOrdersCostTable(t *testing.T) {
	pls := []core.Placement{
		{InCamera: 4, Impl: []string{"CPU", "CPU", "FPGA", "FPGA"}},
		{}, // raw — given out of order on purpose
	}
	cl, err := VRAdaptiveClass(3, pls, 30, PolicyConfig{Kind: PolicyStatic})
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Placements) != 2 {
		t.Fatalf("placements: %+v", cl.Placements)
	}
	if cl.Placements[0].FrameBytes <= cl.Placements[1].FrameBytes {
		t.Fatalf("table not ordered most-offload first: %+v", cl.Placements)
	}
	if cl.Placements[0].Name != "S~" {
		t.Fatalf("raw placement label %q", cl.Placements[0].Name)
	}
	// The rows must agree with the core cost hook they were built from.
	p := PaperVRPipeline()
	cost, err := p.Cost(pls[0])
	if err != nil {
		t.Fatal(err)
	}
	if cl.Placements[1].FrameBytes != cost.OffloadBytes || cl.Placements[1].ComputeSeconds != cost.ComputeSeconds {
		t.Fatalf("placement row diverges from core cost table: %+v vs %+v", cl.Placements[1], cost)
	}
	if _, err := VRAdaptiveClass(1, nil, 30, PolicyConfig{}); err == nil {
		t.Fatal("accepted an empty placement list")
	}
}
