package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"

	"camsim/internal/fleet/quantile"
)

// TelemetryConfig opts a scenario into the streaming-statistics path.
type TelemetryConfig struct {
	// Streaming replaces the exact per-class latency sample sets with
	// mergeable KLL quantile sketches (internal/fleet/quantile): memory
	// stops scaling with simulated frames, and the reported percentiles
	// carry the sketch's documented rank-error bound (quantile.Eps)
	// instead of being exact. Off, the simulator keeps its legacy exact
	// path and results are byte-identical to a scenario with no telemetry
	// section at all.
	Streaming bool `json:"streaming"`
	// WindowSec > 0 additionally emits a per-window time series
	// (Result.TimeSeries): per-class nearest-rank p50/p95/p99 offload
	// latency, completed offloads and drops in the window, and each
	// link's utilization over the window. Windows are half-open
	// [k·W, (k+1)·W) in simulated time; the final window is clipped at
	// the run's end. Requires Streaming.
	WindowSec float64 `json:"window_sec,omitempty"`
}

// validateTelemetry checks the telemetry section.
func (sc *Scenario) validateTelemetry() error {
	tc := sc.Telemetry
	if tc == nil {
		return nil
	}
	if !(tc.WindowSec >= 0) || math.IsInf(tc.WindowSec, 0) {
		return fmt.Errorf("fleet: scenario %q: telemetry window %v sec must be finite and non-negative", sc.Name, tc.WindowSec)
	}
	if tc.WindowSec > 0 && !tc.Streaming {
		return fmt.Errorf("fleet: scenario %q: telemetry window_sec needs streaming: true (the time series rides the sketch path)", sc.Name)
	}
	return nil
}

// TimeSeries is the windowed telemetry of one streaming run: one entry
// per window in time order. Only present when the scenario sets
// telemetry.window_sec.
type TimeSeries struct {
	// WindowSec echoes the configured window length.
	WindowSec float64 `json:"window_sec"`
	// Classes and Tiers name the columns of every window's Classes and
	// TierUtil slices: class declaration order, then links in resolved
	// tier order (uplinks first, declared downlinks after as "name:down",
	// compute pools last as "name:compute" — a pool's "utilization" is
	// core-seconds served over cores × window length).
	Classes []string `json:"classes"`
	Tiers   []string `json:"tiers"`
	Windows []Window `json:"windows"`
}

// Window is one closed telemetry window.
type Window struct {
	Index int     `json:"index"`
	Start float64 `json:"start_sec"`
	End   float64 `json:"end_sec"`
	// Classes holds one entry per scenario class, in TimeSeries.Classes
	// order.
	Classes []WindowClass `json:"classes"`
	// TierUtil is each link's served payload over capacity × window
	// length, in TimeSeries.Tiers order. Bytes are credited when a
	// transfer completes, so a window in which a long transfer finishes
	// can report utilization above 1; the time-weighted mean across all
	// windows equals the link's run-wide utilization exactly.
	TierUtil []float64 `json:"tier_util"`
	// TierDownSec and TierCapFrac are the window's availability columns,
	// present only when the scenario carries a dynamics schedule: seconds
	// each link's tier spent down inside the window, and the mean
	// available-capacity fraction of its uplink over the window
	// (∫factor·dt / window length; 1 nominal, 0 a full-window outage).
	// Downlink and compute-pool columns report 0 and 1 — only uplinks
	// degrade today.
	TierDownSec []float64 `json:"tier_down_sec,omitempty"`
	TierCapFrac []float64 `json:"tier_cap_frac,omitempty"`
}

// WindowClass is one class's telemetry inside one window.
type WindowClass struct {
	// Offloaded counts offloads completed (landed in the cloud) in the
	// window; the drops count frames lost in it.
	Offloaded     int64 `json:"offloaded"`
	DroppedQueue  int64 `json:"dropped_queue"`
	DroppedEnergy int64 `json:"dropped_energy"`
	// DroppedOutage counts the class's frames lost to dynamics outages in
	// the window; omitted (always 0) without a schedule.
	DroppedOutage int64 `json:"dropped_outage,omitempty"`
	// P50/P95/P99 are the window's offload latency quantiles (seconds),
	// sketch estimates under the quantile.Eps rank bound; 0 when the
	// window completed no offloads.
	P50 float64 `json:"p50_sec"`
	P95 float64 `json:"p95_sec"`
	P99 float64 `json:"p99_sec"`
}

// WriteJSON writes the time series as one indented JSON document.
func (ts *TimeSeries) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ts)
}

// WriteCSV writes the time series in long form, one row per (window,
// column): class rows carry the counts and quantiles, tier rows the
// window utilization.
//
//	window,start_sec,end_sec,kind,name,offloaded,dropped_queue,dropped_energy,p50_sec,p95_sec,p99_sec,utilization
//
// A series from a dynamics run appends the availability columns —
// ,dropped_outage,down_sec,cap_frac — outage drops on class rows,
// downtime seconds and mean capacity fraction on tier rows; legacy
// series keep the exact legacy shape.
func (ts *TimeSeries) WriteCSV(w io.Writer) error {
	avail := len(ts.Windows) > 0 && ts.Windows[0].TierDownSec != nil
	var b strings.Builder
	b.WriteString("window,start_sec,end_sec,kind,name,offloaded,dropped_queue,dropped_energy,p50_sec,p95_sec,p99_sec,utilization")
	if avail {
		b.WriteString(",dropped_outage,down_sec,cap_frac")
	}
	b.WriteString("\n")
	for _, win := range ts.Windows {
		for ci, wc := range win.Classes {
			fmt.Fprintf(&b, "%d,%g,%g,class,%s,%d,%d,%d,%g,%g,%g,",
				win.Index, win.Start, win.End, ts.Classes[ci],
				wc.Offloaded, wc.DroppedQueue, wc.DroppedEnergy, wc.P50, wc.P95, wc.P99)
			if avail {
				fmt.Fprintf(&b, ",%d,,", wc.DroppedOutage)
			}
			b.WriteString("\n")
		}
		for ti, u := range win.TierUtil {
			fmt.Fprintf(&b, "%d,%g,%g,tier,%s,,,,,,,%g",
				win.Index, win.Start, win.End, ts.Tiers[ti], u)
			if avail {
				fmt.Fprintf(&b, ",,%g,%g", win.TierDownSec[ti], win.TierCapFrac[ti])
			}
			b.WriteString("\n")
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// collector is the run's streaming-telemetry state. It observes the
// same completions and drops the exact path counts — at the same event
// times, in the same order — so enabling it cannot perturb the
// simulation itself, only how statistics are accumulated.
type collector struct {
	window float64

	// Run-wide per-class sketches, replacing ClassStats.latencies.
	run []*quantile.Sketch

	// Current-window state, active only when window > 0.
	widx     int // current window index (samples in [widx·W, (widx+1)·W))
	win      []*quantile.Sketch
	winClass []WindowClass
	// Per-link served-byte snapshots at the last window close, so a
	// window's traffic is the delta. links and linkBps alias the
	// simulator's live links.
	links     []Link
	linkBps   []float64
	linkBytes []float64

	// Dynamics availability state, set only for a run with a fault
	// schedule: per-node snapshots of accrued downtime and ∫factor·dt at
	// the last window close, so a window's columns are the deltas.
	dyn      *dynamics
	downSnap []float64
	capSnap  []float64

	series *TimeSeries
}

// newCollector builds the run's collector: per-class run-wide sketches
// always, window state when the scenario sets a window. links must be
// the simulator's live link slice (uplinks, then declared downlinks,
// then compute pools); labels and caps name and size them in the same
// order. dyn, non-nil only for a run with a fault schedule, adds the
// per-window availability columns.
func newCollector(sc *Scenario, links []Link, labels []string, caps []float64, dyn *dynamics) *collector {
	tel := &collector{window: sc.Telemetry.WindowSec}
	tel.run = make([]*quantile.Sketch, len(sc.Classes))
	for i := range tel.run {
		tel.run[i] = quantile.NewSketch()
	}
	if tel.window <= 0 {
		return tel
	}
	tel.win = make([]*quantile.Sketch, len(sc.Classes))
	for i := range tel.win {
		tel.win[i] = quantile.NewSketch()
	}
	tel.winClass = make([]WindowClass, len(sc.Classes))
	tel.links = links
	tel.linkBps = caps
	tel.linkBytes = make([]float64, len(links))
	classes := make([]string, len(sc.Classes))
	for i := range sc.Classes {
		classes[i] = sc.Classes[i].Name
	}
	if dyn != nil {
		tel.dyn = dyn
		tel.downSnap = make([]float64, len(dyn.down))
		tel.capSnap = make([]float64, len(dyn.down))
	}
	tel.series = &TimeSeries{WindowSec: tel.window, Classes: classes, Tiers: labels}
	return tel
}

// advance closes every window that ends at or before t. The event loop
// calls it with each event's time before processing it, so samples land
// in the window covering their timestamp: a sample exactly on a
// boundary belongs to the next window (half-open intervals).
func (tel *collector) advance(t float64) {
	if tel.window <= 0 {
		return
	}
	for t >= float64(tel.widx+1)*tel.window {
		tel.closeWindow(float64(tel.widx+1) * tel.window)
	}
}

// closeWindow seals the current window: quantiles from its sketches,
// link utilization from the served-byte deltas over [start, end), and a
// fresh window begins. end below the nominal boundary is the run's
// final clipped window.
func (tel *collector) closeWindow(end float64) {
	start := float64(tel.widx) * tel.window
	win := Window{
		Index:    tel.widx,
		Start:    start,
		End:      end,
		Classes:  make([]WindowClass, len(tel.win)),
		TierUtil: make([]float64, len(tel.links)),
	}
	for ci, s := range tel.win {
		wc := tel.winClass[ci]
		if s.Count() > 0 {
			wc.P50 = s.Quantile(0.50)
			wc.P95 = s.Quantile(0.95)
			wc.P99 = s.Quantile(0.99)
		}
		win.Classes[ci] = wc
		// The window's samples fold into the run-wide sketch here — the
		// mergeability that makes per-window sketches sufficient. Merge
		// copies the retained items, so the window sketch can be reset in
		// place and its storage reused for the next window.
		tel.run[ci].Merge(s)
		s.Reset()
		tel.winClass[ci] = WindowClass{}
	}
	for li, l := range tel.links {
		served := l.ServedBytes()
		win.TierUtil[li] = utilization(served-tel.linkBytes[li], tel.linkBps[li], end-start)
		tel.linkBytes[li] = served
	}
	if dyn := tel.dyn; dyn != nil {
		// Availability columns span every link; downlink and compute-pool
		// entries (indices past the uplinks) stay at the nominal 0 / 1.
		win.TierDownSec = make([]float64, len(tel.links))
		win.TierCapFrac = make([]float64, len(tel.links))
		for li := range win.TierCapFrac {
			win.TierCapFrac[li] = 1
		}
		for ni := range dyn.down {
			dd := dyn.downtimeAt(ni, end) - tel.downSnap[ni]
			if dd < 0 {
				dd = 0 // a schedule entry past the run's end moved the snapshot
			}
			win.TierDownSec[ni] = dd
			tel.downSnap[ni] += dd
			ci := dyn.capIntegralAt(ni, end)
			if end > start {
				if frac := (ci - tel.capSnap[ni]) / (end - start); frac >= 0 {
					win.TierCapFrac[ni] = frac
				}
			}
			tel.capSnap[ni] = ci
		}
	}
	tel.series.Windows = append(tel.series.Windows, win)
	tel.widx++
}

// observe records one completed offload of class ci at time t with the
// given capture-to-arrival latency.
func (tel *collector) observe(ci int, lat float64) {
	if tel.window > 0 {
		tel.win[ci].Add(lat)
		tel.winClass[ci].Offloaded++
		return
	}
	tel.run[ci].Add(lat)
}

// dropQueue and dropEnergy record one dropped frame of class ci in the
// current window.
func (tel *collector) dropQueue(ci int) {
	if tel.window > 0 {
		tel.winClass[ci].DroppedQueue++
	}
}

func (tel *collector) dropEnergy(ci int) {
	if tel.window > 0 {
		tel.winClass[ci].DroppedEnergy++
	}
}

// dropOutage records one frame of class ci lost to a dynamics outage in
// the current window.
func (tel *collector) dropOutage(ci int) {
	if tel.window > 0 {
		tel.winClass[ci].DroppedOutage++
	}
}

// finish closes out the collector at the run's end: the in-progress
// window (if any traffic or time remains in it) is sealed clipped at
// simEnd.
func (tel *collector) finish(simEnd float64) {
	if tel.window <= 0 {
		return
	}
	tel.advance(simEnd)
	if start := float64(tel.widx) * tel.window; simEnd > start {
		tel.closeWindow(simEnd)
	}
}

// quantiles returns the run-wide per-class and fleet-total latency
// quantiles from the streaming sketches, in finalize's (p50, p95, p99)
// shape. The fleet total merges every class's sketch — the same
// samples the exact path concatenates.
func (tel *collector) quantiles() (perClass [][3]float64, total [3]float64) {
	perClass = make([][3]float64, len(tel.run))
	all := quantile.NewSketch()
	for ci, s := range tel.run {
		perClass[ci] = [3]float64{s.Quantile(0.50), s.Quantile(0.95), s.Quantile(0.99)}
		all.Merge(s)
	}
	total = [3]float64{all.Quantile(0.50), all.Quantile(0.95), all.Quantile(0.99)}
	return perClass, total
}
