package fleet

import (
	"fmt"
	"sort"

	"camsim/internal/core"
	"camsim/internal/energy"
	"camsim/internal/fleet/fl"
)

// compactPlacementName renders a Fig. 10-style short label for a
// placement: "S~" for raw sensor offload, else stage names tagged with the
// implementation initial ("SB1CB2CB3FB4F~").
func compactPlacementName(p *core.ThroughputPipeline, pl core.Placement) string {
	if pl.InCamera == 0 {
		return "S~"
	}
	s := "S"
	for i := 0; i < pl.InCamera; i++ {
		s += p.Stages[i].Name + pl.Impl[i][:1]
	}
	return s + "~"
}

// VRAdaptiveClass builds a VR camera-head class that can switch between
// the given Fig. 10 placements at runtime: the core cost table supplies
// each placement's per-frame compute time and offload payload, rows are
// ordered from most-offload to most-in-camera (decreasing payload) as the
// fleet placement index convention requires, and compute energy charges
// the placement's most power-hungry device for the frame's compute time.
// policy decides how cameras move through the table.
func VRAdaptiveClass(count int, pls []core.Placement, targetFPS float64, policy PolicyConfig) (Class, error) {
	if len(pls) == 0 {
		return Class{}, fmt.Errorf("fleet: adaptive VR class needs at least one placement")
	}
	p := PaperVRPipeline()
	entries, err := p.CostTable(pls)
	if err != nil {
		return Class{}, err
	}
	sort.SliceStable(entries, func(i, j int) bool {
		return entries[i].Cost.OffloadBytes > entries[j].Cost.OffloadBytes
	})
	radio := energy.WiFiRadio()
	pcs := make([]PlacementCost, 0, len(entries))
	for _, e := range entries {
		watts := 2.0 // sensor interface + ISP floor for a sensor-only node
		for _, impl := range e.Placement.Impl {
			if w, ok := VRDevicePowerWatts[impl]; ok && w > watts {
				watts = w
			}
		}
		pcs = append(pcs, PlacementCost{
			Name:           compactPlacementName(p, e.Placement),
			FrameBytes:     e.Cost.OffloadBytes,
			ComputeSeconds: e.Cost.ComputeSeconds,
			ComputeJ:       watts * e.Cost.ComputeSeconds,
		})
	}
	return Class{
		Name:        "vr-adaptive",
		Count:       count,
		FPS:         targetFPS,
		Arrival:     ArrivalPeriodic, // genlocked capture, staggered phases
		OffloadProb: 1,
		QueueDepth:  4,
		CaptureJ:    5e-3, // 4K sensor readout per frame
		TxFixedJ:    float64(radio.WakeOverhead),
		TxPerByteJ:  float64(radio.EnergyPerBit) * 8,
		Placements:  pcs,
		Policy:      policy,
	}, nil
}

// TopologyDemoScenario builds the congested two-gateway fleet behind the
// `camsim topo` experiment, BenchmarkTopologySweep and the adaptive-policy
// tests: each gateway aggregates adaptive VR camera heads (starting at raw
// sensor offload, able to fall back to the full in-camera pipeline) plus a
// population of battery-free face-auth cameras, and both gateway links
// funnel into a shared WAN. At raw offload the VR demand oversubscribes
// the gateway links several times over; at full in-camera compute it fits.
// policy names the VR classes' adaptation rule: PolicyStatic pins them at
// raw offload, PolicyLatencyThreshold and PolicyHysteresis adapt.
func TopologyDemoScenario(seed int64, policy string) (Scenario, error) {
	pls := []core.Placement{
		{}, // raw sensor offload
		{InCamera: 4, Impl: []string{"CPU", "CPU", "FPGA", "FPGA"}}, // full in-camera pipeline
	}
	pol := PolicyConfig{
		Kind:         policy,
		IntervalSec:  0.5,
		HighSec:      0.2,
		LowSec:       0.01,
		MoveFraction: 0.5,
	}
	sc := Scenario{
		Name:     "topo-2gw/" + policy,
		Seed:     seed,
		Duration: 8,
		Uplink:   UplinkConfig{Gbps: 4, Contention: ContentionFairShare},
		Gateways: []Gateway{
			{Name: "gw-a", Uplink: UplinkConfig{Gbps: 2, Contention: ContentionFairShare}},
			{Name: "gw-b", Uplink: UplinkConfig{Gbps: 2, Contention: ContentionFairShare}},
		},
	}
	for _, gw := range []string{"gw-a", "gw-b"} {
		vr, err := VRAdaptiveClass(4, pls, 30, pol)
		if err != nil {
			return Scenario{}, err
		}
		vr.Name = "vr-" + gw
		vr.Gateway = gw
		fa := FaceAuthClass(60)
		fa.Name = "fa-" + gw
		fa.Gateway = gw
		sc.Classes = append(sc.Classes, vr, fa)
	}
	return sc, nil
}

// GlobalModeBudget selects the global-controller variant of
// EnergyDemoScenario; the other accepted modes are the placement policy
// names PolicyStatic and PolicyEnergyLatency.
const GlobalModeBudget = "global"

// EnergyDemoScenario builds the *uncongested* two-gateway fleet behind
// `camsim topo -global`: each 4 Gb/s gateway carries two adaptive VR
// camera heads at 10 FPS plus a battery-free face-auth population, both
// links feed an 8 Gb/s core, and every link is priced in forwarding
// joules per byte (energy.ForwardPerByteJ-class figures). At raw sensor
// offload the links sit near half utilization — latency alone never asks
// the cameras to move — but each raw head burns ~8.7 W of camera radio
// plus network forwarding, against ~4.0 W for the full in-camera
// pipeline. mode picks who notices:
//
//   - PolicyStatic: nobody; the fleet stays at raw offload.
//   - PolicyEnergyLatency: each class's local controller walks every head
//     in-camera, minimizing its own energy with no view of the fleet.
//   - GlobalModeBudget: the global controller sheds watts greedily each
//     epoch, but only down to its fleet-wide budget — the heads that fit
//     keep the low-latency raw placement.
func EnergyDemoScenario(seed int64, mode string) (Scenario, error) {
	pls := []core.Placement{
		{}, // raw sensor offload
		{InCamera: 4, Impl: []string{"CPU", "CPU", "FPGA", "FPGA"}}, // full in-camera pipeline
	}
	pol := PolicyConfig{Kind: PolicyStatic}
	switch mode {
	case PolicyStatic, GlobalModeBudget:
	case PolicyEnergyLatency:
		pol = PolicyConfig{
			Kind:         PolicyEnergyLatency,
			IntervalSec:  0.5,
			HighSec:      0.5,
			EnergyWeight: 1,
			MoveFraction: 0.5,
		}
	default:
		return Scenario{}, fmt.Errorf("fleet: unknown energy demo mode %q", mode)
	}
	sc := Scenario{
		Name:     "energy-2gw/" + mode,
		Seed:     seed,
		Duration: 8,
		Tiers: []Tier{
			{Name: "gw-a", Parent: "core", Uplink: UplinkConfig{Gbps: 4, Contention: ContentionFairShare},
				PropagationSec: 0.0002, TxPerByteJ: 2e-8},
			{Name: "gw-b", Parent: "core", Uplink: UplinkConfig{Gbps: 4, Contention: ContentionFairShare},
				PropagationSec: 0.0002, TxPerByteJ: 2e-8},
			{Name: "core", Uplink: UplinkConfig{Gbps: 8, Contention: ContentionFairShare},
				PropagationSec: 0.002, TxPerByteJ: 1e-8},
		},
	}
	if mode == GlobalModeBudget {
		// Between all-raw (~35 W) and all-in-camera (~16 W): the knapsack
		// must move some heads and leave the rest fast.
		sc.Global = &GlobalConfig{EpochSec: 1, BudgetW: 24, HighSec: 0.5, MoveFraction: 0.5}
	}
	for _, gw := range []string{"gw-a", "gw-b"} {
		vr, err := VRAdaptiveClass(2, pls, 10, pol)
		if err != nil {
			return Scenario{}, err
		}
		vr.Name = "vr-" + gw
		vr.Tier = gw
		fa := FaceAuthClass(40)
		fa.Name = "fa-" + gw
		fa.Tier = gw
		sc.Classes = append(sc.Classes, vr, fa)
	}
	return sc, nil
}

// FaceAuthAdaptiveClass is FaceAuthClass with a runtime placement table:
// the battery-free face-auth camera can either ship the detected face
// crop and let the cloud authenticate it (row 0, "crop": a 64×64 region,
// the NN sweep skipped in camera) or run the full authentication chain
// locally and ship only the 20×20 chip (row 1, "chip" — the fixed
// FaceAuthClass behavior). On a backscatter radio the byte delta is
// nearly free, so without finite tier compute the rows are almost
// indistinguishable; a compute section on the camera's gateway is what
// gives the harvesting class a real cost signal — the crop needs tier
// service the chip does not, and the queueing behind heavier traffic
// lands in the class's observed latency. policy decides how cameras move
// through the table.
func FaceAuthAdaptiveClass(count int, policy PolicyConfig) Class {
	const cropB = 64 * 64 // 8-bit face crop shipped for cloud-side auth
	c := FaceAuthClass(count)
	c.Name = "fa-adaptive"
	c.Placements = []PlacementCost{
		{Name: "crop", FrameBytes: cropB, ComputeSeconds: 0.012, ComputeJ: c.ComputeJ * 0.8},
		{Name: "chip", FrameBytes: c.FrameBytes, ComputeSeconds: c.ComputeSeconds, ComputeJ: c.ComputeJ},
	}
	c.Policy = policy
	return c
}

// ComputeModeAdaptive selects the per-class-controller variant of
// ComputeDemoScenario; the other accepted modes are PolicyStatic and
// GlobalModeBudget.
const ComputeModeAdaptive = "adaptive"

// ComputeDemoScenario builds the finite-compute fleet behind `camsim
// topo -compute`: the EnergyDemoScenario tier tree (two 4 Gb/s gateways
// into an 8 Gb/s core, links near half utilization at raw offload) with
// every tier given a finite core pool. gw-a gets a single 16-frames/sec
// core behind a FIFO queue — undersized for its two raw VR heads at
// 10 FPS (20 reference frames/sec of demand), so a compute queue grows
// where the network alone was a free lunch; gw-b gets four fair-shared
// cores (uncongested, for contrast) and the core tier a wide 4×200
// pool. Face-auth crops take an explicit 2 ms service_sec entry, and on
// gw-a's FIFO queue they wait behind multi-megabyte VR frames. Service
// demand scales with payload, so the in-camera VR placement (~11× fewer
// bytes) also needs ~11× less tier service — placement is the lever
// that relieves the pool. mode picks who pulls it:
//
//   - PolicyStatic: nobody; gw-a's pool saturates and waits grow without
//     bound for the whole run.
//   - ComputeModeAdaptive: the VR heads run hysteresis and escalate
//     in-camera when queueing blows their 200 ms target; the face-auth
//     cameras run energy-latency, their placement rows now priced with
//     real compute delay.
//   - GlobalModeBudget: static locals under the global controller, whose
//     observed p95 carries the compute queueing (latency relief) and
//     whose energy knapsack refuses steps whose delay floor breaks the
//     target — the joint network+compute placement decision.
func ComputeDemoScenario(seed int64, mode string) (Scenario, error) {
	pls := []core.Placement{
		{}, // raw sensor offload
		{InCamera: 4, Impl: []string{"CPU", "CPU", "FPGA", "FPGA"}}, // full in-camera pipeline
	}
	vrPol := PolicyConfig{Kind: PolicyStatic}
	faPol := PolicyConfig{Kind: PolicyStatic}
	switch mode {
	case PolicyStatic, GlobalModeBudget:
	case ComputeModeAdaptive:
		vrPol = PolicyConfig{
			Kind:         PolicyHysteresis,
			IntervalSec:  0.5,
			HighSec:      0.2,
			LowSec:       0.01,
			MoveFraction: 0.5,
		}
		faPol = PolicyConfig{
			Kind:         PolicyEnergyLatency,
			IntervalSec:  1,
			HighSec:      0.2,
			EnergyWeight: 1,
			MoveFraction: 0.5,
		}
	default:
		return Scenario{}, fmt.Errorf("fleet: unknown compute demo mode %q", mode)
	}
	sc := Scenario{
		Name:     "compute-2gw/" + mode,
		Seed:     seed,
		Duration: 8,
		Tiers: []Tier{
			{Name: "gw-a", Parent: "core", Uplink: UplinkConfig{Gbps: 4, Contention: ContentionFairShare},
				PropagationSec: 0.0002, TxPerByteJ: 2e-8,
				Compute: &ComputeConfig{Cores: 1, ServiceRateFPS: 16, Discipline: ContentionFIFO,
					ServiceSec: []ClassServiceSec{{Class: "fa-gw-a", Sec: 0.002}}}},
			{Name: "gw-b", Parent: "core", Uplink: UplinkConfig{Gbps: 4, Contention: ContentionFairShare},
				PropagationSec: 0.0002, TxPerByteJ: 2e-8,
				Compute: &ComputeConfig{Cores: 4, ServiceRateFPS: 16, Discipline: ContentionFairShare,
					ServiceSec: []ClassServiceSec{{Class: "fa-gw-b", Sec: 0.002}}}},
			{Name: "core", Uplink: UplinkConfig{Gbps: 8, Contention: ContentionFairShare},
				PropagationSec: 0.002, TxPerByteJ: 1e-8,
				Compute: &ComputeConfig{Cores: 4, ServiceRateFPS: 200}},
		},
	}
	if mode == GlobalModeBudget {
		// The budget sits between all-raw and all-in-camera placement
		// power, and the latency target is what the compute queueing at
		// gw-a breaks: both controller phases have work to do.
		sc.Global = &GlobalConfig{EpochSec: 1, BudgetW: 26, HighSec: 0.25, MoveFraction: 0.5}
	}
	for _, gw := range []string{"gw-a", "gw-b"} {
		vr, err := VRAdaptiveClass(2, pls, 10, vrPol)
		if err != nil {
			return Scenario{}, err
		}
		vr.Name = "vr-" + gw
		vr.Tier = gw
		fa := FaceAuthAdaptiveClass(40, faPol)
		fa.Name = "fa-" + gw
		fa.Tier = gw
		sc.Classes = append(sc.Classes, vr, fa)
	}
	return sc, nil
}

// DynamicsDemoScenario builds the fleet behind `camsim topo -dynamics`:
// two monitored camera populations behind 0.2 Gb/s gateways feeding an
// 0.8 Gb/s core (roughly half utilized at the nominal rates), with the
// core-side of each gateway backed by a finite core pool, living through
// a scheduled day of fleet weather:
//
//	t=1.0  the east population's diurnal swell doubles its frame rate
//	t=1.5  six provisioned cameras join the east class
//	t=2.5  gw-a's autoscaler answers the swell with four extra cores
//	t=3.0  gw-a fails — in-flight frames drop, east re-homes to gw-b
//	t=4.5  gw-a recovers and east re-homes back
//	t=5.0  gw-b's backhaul degrades to half capacity
//	t=6.5  gw-b's backhaul is restored
//	t=7.0  the swell ends (east back to its base rate)
//	t=7.2  the six day-shift cameras leave
//
// The demo compares this run against the identical fleet with the
// schedule stripped, so the report can attribute every divergence —
// extra captures, outage drops, re-homed traffic on gw-b — to the
// dynamics engine alone.
func DynamicsDemoScenario(seed int64) Scenario {
	sc := Scenario{
		Name:     "topo-dynamics",
		Seed:     seed,
		Duration: 8,
		Tiers: []Tier{
			{Name: "gw-a", Parent: "core",
				Uplink:         UplinkConfig{Gbps: 0.2, Contention: ContentionFairShare},
				PropagationSec: 0.0002,
				Compute:        &ComputeConfig{Cores: 2, ServiceRateFPS: 80}},
			{Name: "gw-b", Parent: "core",
				Uplink:         UplinkConfig{Gbps: 0.2, Contention: ContentionFIFO},
				PropagationSec: 0.0002},
			{Name: "core",
				Uplink:         UplinkConfig{Gbps: 0.8, Contention: ContentionFairShare},
				PropagationSec: 0.002},
		},
		Classes: []Class{
			{Name: "cam-east", Count: 24, FPS: 5, Arrival: ArrivalPoisson,
				FrameBytes: 100_000, Tier: "gw-a", QueueDepth: 4},
			{Name: "cam-west", Count: 24, FPS: 5, Arrival: ArrivalPoisson,
				FrameBytes: 100_000, Tier: "gw-b", QueueDepth: 4},
		},
		Dynamics: &DynamicsConfig{Events: []FleetEvent{
			{Time: 1.0, Kind: DynFPSProfile, Class: "cam-east", Multiplier: 2},
			{Time: 1.5, Kind: DynCameraJoin, Class: "cam-east", Count: 6},
			{Time: 2.5, Kind: DynComputeScale, Tier: "gw-a", Cores: 6},
			{Time: 3.0, Kind: DynTierOutage, Tier: "gw-a", Fallback: "gw-b"},
			{Time: 4.5, Kind: DynTierRecover, Tier: "gw-a"},
			{Time: 5.0, Kind: DynLinkDegrade, Tier: "gw-b", Factor: 0.5},
			{Time: 6.5, Kind: DynLinkRestore, Tier: "gw-b"},
			{Time: 7.0, Kind: DynFPSProfile, Class: "cam-east", Multiplier: 1},
			{Time: 7.2, Kind: DynCameraLeave, Class: "cam-east", Count: 6},
		}},
	}
	return sc
}

// FederatedDemoScenario builds the bidirectional fleet behind `camsim
// topo -fl`: two gateways and a core, every tier carrying a downlink
// alongside its uplink, and a federated-learning job training the
// paper's 400-8-1 face-authentication MLP across 48 edge cameras. Each
// round the cameras push half-compressed float32 update blobs (~6.4 kB)
// up their gateway uplinks — contending with their own monitoring frames
// and a core-attached background class — the core aggregates each
// gateway's fan-in to a single merged blob before the WAN hop, and the
// cloud broadcasts the ~12.9 kB merged model down the downlink tree to
// start the next round. The jitter knob makes stragglers: the cloud
// barrier waits on the slowest camera, so round latency tracks the
// straggler p95, and in-network aggregation keeps the WAN's federated
// bytes at one blob per round against 48 entering the edge.
func FederatedDemoScenario(seed int64) Scenario {
	sc := Scenario{
		Name:     "topo-fl",
		Seed:     seed,
		Duration: 8,
		Tiers: []Tier{
			{Name: "gw-a", Parent: "core",
				Uplink:         UplinkConfig{Gbps: 2, Contention: ContentionFairShare},
				PropagationSec: 0.0002,
				Downlink:       &DownlinkConfig{Gbps: 1, Contention: ContentionFairShare, PropagationSec: 0.0002}},
			{Name: "gw-b", Parent: "core",
				Uplink:         UplinkConfig{Gbps: 2, Contention: ContentionFIFO},
				PropagationSec: 0.0002,
				Downlink:       &DownlinkConfig{Gbps: 1, Contention: ContentionFairShare, PropagationSec: 0.0002}},
			{Name: "core",
				Uplink:         UplinkConfig{Gbps: 8, Contention: ContentionFairShare},
				PropagationSec: 0.01,
				Downlink:       &DownlinkConfig{Gbps: 4, Contention: ContentionFairShare, PropagationSec: 0.01}},
		},
		Federated: &fl.Config{
			Rounds:     4,
			Classes:    []string{"fl-gw-a", "fl-gw-b"},
			ComputeSec: 0.6,
			JitterSec:  0.4,
			Model:      &fl.ModelConfig{Layers: []int{400, 8, 1}, BytesPerWeight: 4, Compress: 0.5},
		},
	}
	for _, gw := range []string{"gw-a", "gw-b"} {
		sc.Classes = append(sc.Classes, Class{
			Name:           "fl-" + gw,
			Count:          24,
			FPS:            2,
			Arrival:        ArrivalPoisson,
			FrameBytes:     200000,
			OffloadProb:    0.25,
			ComputeSeconds: 0.01,
			QueueDepth:     4,
			Tier:           gw,
		})
	}
	// Core-attached background traffic that does not participate in the
	// job: the federated blobs share the WAN with it, not an idle link.
	sc.Classes = append(sc.Classes, Class{
		Name:           "bg-core",
		Count:          8,
		FPS:            10,
		Arrival:        ArrivalPeriodic,
		FrameBytes:     1200000,
		ComputeSeconds: 0.005,
		QueueDepth:     4,
	})
	return sc
}

// DeepTopologyScenario builds the camera→gateway→metro→core chain behind
// `camsim topo -depth`: depth network tiers separate a leaf camera from
// the cloud (depth ≥ 2). Two leaf gateways ("gw-a", "gw-b", 2 Gb/s, 0.2 ms
// of propagation) each aggregate the same adaptive-VR + face-auth
// population as TopologyDemoScenario; their traffic climbs depth-2 metro
// tiers ("metro-1"…, 4 Gb/s, 2 ms) and finally the core link ("core",
// 8 Gb/s, 10 ms) out of the network. Every hop adds transmission plus
// propagation to the offload latency, so even the uncongested adaptive
// fleet cannot beat the accumulated propagation floor (12.2 ms at depth
// 3, another 2 ms per extra metro tier) — the paper's tradeoff with the
// speed of light on the communication side of the scale.
func DeepTopologyScenario(seed int64, depth int, policy string) (Scenario, error) {
	if depth < 2 {
		return Scenario{}, fmt.Errorf("fleet: deep topology needs depth ≥ 2, got %d", depth)
	}
	pls := []core.Placement{
		{}, // raw sensor offload
		{InCamera: 4, Impl: []string{"CPU", "CPU", "FPGA", "FPGA"}}, // full in-camera pipeline
	}
	pol := PolicyConfig{
		Kind:         policy,
		IntervalSec:  0.5,
		HighSec:      0.2,
		LowSec:       0.01,
		MoveFraction: 0.5,
	}
	sc := Scenario{
		Name:     fmt.Sprintf("topo-deep%d/%s", depth, policy),
		Seed:     seed,
		Duration: 8,
	}
	// Leaves first, root last, so simultaneous completions resolve
	// edge-before-core like the two-tier demo.
	leafParent := "core"
	if depth > 2 {
		leafParent = "metro-1"
	}
	for _, gw := range []string{"gw-a", "gw-b"} {
		sc.Tiers = append(sc.Tiers, Tier{
			Name:           gw,
			Parent:         leafParent,
			Uplink:         UplinkConfig{Gbps: 2, Contention: ContentionFairShare},
			PropagationSec: 0.0002,
		})
	}
	for m := 1; m <= depth-2; m++ {
		parent := fmt.Sprintf("metro-%d", m+1)
		if m == depth-2 {
			parent = "core"
		}
		sc.Tiers = append(sc.Tiers, Tier{
			Name:           fmt.Sprintf("metro-%d", m),
			Parent:         parent,
			Uplink:         UplinkConfig{Gbps: 4, Contention: ContentionFairShare},
			PropagationSec: 0.002,
		})
	}
	sc.Tiers = append(sc.Tiers, Tier{
		Name:           "core",
		Uplink:         UplinkConfig{Gbps: 8, Contention: ContentionFairShare},
		PropagationSec: 0.01,
	})
	for _, gw := range []string{"gw-a", "gw-b"} {
		vr, err := VRAdaptiveClass(4, pls, 30, pol)
		if err != nil {
			return Scenario{}, err
		}
		vr.Name = "vr-" + gw
		vr.Tier = gw
		fa := FaceAuthClass(60)
		fa.Name = "fa-" + gw
		fa.Tier = gw
		sc.Classes = append(sc.Classes, vr, fa)
	}
	return sc, nil
}
