package fleet

import (
	"fmt"
	"testing"
)

// deepFleetScenario spreads cams cameras across 32 leaf gateways feeding 8
// metro tiers and one core link (41 links in all) — the 10k-camera
// deep-topology stress shape. Simple fixed-payload classes keep the event
// loop itself the measured quantity.
func deepFleetScenario(cams int) Scenario {
	sc := Scenario{
		Name:     fmt.Sprintf("deep-bench-%d", cams),
		Seed:     1,
		Duration: 4,
	}
	const gws, metros = 32, 8
	for m := 1; m <= metros; m++ {
		sc.Tiers = append(sc.Tiers, Tier{
			Name:           fmt.Sprintf("metro-%d", m),
			Parent:         "core",
			Uplink:         UplinkConfig{Gbps: 4, Contention: ContentionFairShare},
			PropagationSec: 0.002,
		})
	}
	sc.Tiers = append(sc.Tiers, Tier{
		Name:           "core",
		Uplink:         UplinkConfig{Gbps: 8, Contention: ContentionFairShare},
		PropagationSec: 0.01,
	})
	per := cams / gws
	for g := 0; g < gws; g++ {
		name := fmt.Sprintf("gw-%d", g)
		sc.Tiers = append(sc.Tiers, Tier{
			Name:           name,
			Parent:         fmt.Sprintf("metro-%d", g%metros+1),
			Uplink:         UplinkConfig{Gbps: 2, Contention: ContentionFairShare},
			PropagationSec: 0.0002,
		})
		sc.Classes = append(sc.Classes, Class{
			Name: "cams-" + name, Count: per, FPS: 2, Arrival: ArrivalPoisson,
			Tier: name, FrameBytes: 4000, OffloadProb: 1, ComputeSeconds: 0.005,
			QueueDepth: 4, CaptureJ: 1e-4, ComputeJ: 1e-4, TxFixedJ: 1e-5, TxPerByteJ: 1e-9,
		})
	}
	return sc
}

// BenchmarkDeepTopology measures one full 10k-camera deep-topology run per
// iteration, comparing the heap-backed link-completion index (the
// production path) against the O(links)-scan baseline it replaced. Both
// variants produce byte-identical results
// (TestIndexedCompletionMatchesScanBaseline); only the completion lookup
// differs. Baseline numbers live in BENCH_topology.json at the repo root.
func BenchmarkDeepTopology(b *testing.B) {
	sc := deepFleetScenario(10_000)
	for _, mode := range []struct {
		name    string
		indexed bool
	}{{"indexed", true}, {"scan", false}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var frames int64
			for i := 0; i < b.N; i++ {
				res, err := run(sc, mode.indexed)
				if err != nil {
					b.Fatal(err)
				}
				frames += res.Total.Captured
			}
			b.ReportMetric(float64(frames)/float64(b.N), "frames/run")
		})
	}
}

// BenchmarkHugeFleet is the 100k-camera scale point: the same 41-link
// deep topology with 10× the population over a shorter horizon, so one
// iteration is a full run at the fleet size the ROADMAP targets. The
// alloc counters are the regression surface — steady-state stepping is
// designed to be allocation-free (boxing-free heaps, value-embedded
// per-camera PRNGs, transfer free-list, preallocated event heap and
// latency slices), so allocs/op stays proportional to the camera count,
// not the frame count. Baselines live in BENCH_topology.json and are
// gated by cmd/benchgate in CI.
func BenchmarkHugeFleet(b *testing.B) {
	sc := deepFleetScenario(100_000)
	sc.Duration = 1
	b.ReportAllocs()
	var frames int64
	for i := 0; i < b.N; i++ {
		res, err := Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		frames += res.Total.Captured
	}
	b.ReportMetric(float64(frames)/float64(b.N), "frames/run")
}

// BenchmarkLongHorizon is the streaming-telemetry memory proof: the
// 100k-camera deep topology simulated 8× longer than BenchmarkHugeFleet,
// with per-class latency landing in KLL sketches and a 1s window time
// series instead of exact per-sample slices. On the exact path B/op
// grows with the horizon (the latency slices are preallocated from the
// expected frame count: ~78 MB at this duration, and climbing); here
// the sketches are bounded and window sketches are reset in place, so
// B/op is flat in the frame count — doubling the duration again moves
// it by under 2% — and the ceiling cmd/benchgate gates in CI against
// BENCH_topology.json proves it stays that way.
func BenchmarkLongHorizon(b *testing.B) {
	sc := deepFleetScenario(100_000)
	sc.Duration = 8
	sc.Telemetry = &TelemetryConfig{Streaming: true, WindowSec: 1}
	b.ReportAllocs()
	var frames int64
	for i := 0; i < b.N; i++ {
		res, err := Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		frames += res.Total.Captured
	}
	b.ReportMetric(float64(frames)/float64(b.N), "frames/run")
}

// BenchmarkFederatedRound measures the bidirectional path: one full run of
// the federated demo fleet per iteration — 48 cameras pushing per-round
// update blobs up through two gateways while the merged model broadcasts
// back down the tier downlinks, interleaved with the ordinary frame
// traffic. The FL engine is pure accounting, so the cost to watch is the
// extra link events; the alloc counters catch any per-round bookkeeping
// leaking into the hot loop. Baselines live in BENCH_topology.json and
// are gated by cmd/benchgate in CI.
func BenchmarkFederatedRound(b *testing.B) {
	sc := FederatedDemoScenario(1)
	b.ReportAllocs()
	var rounds int64
	for i := 0; i < b.N; i++ {
		res, err := Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		rounds += int64(len(res.Federated.PerRound))
	}
	b.ReportMetric(float64(rounds)/float64(b.N), "rounds/run")
}

// BenchmarkChurnFleet prices the fleet-dynamics path: the 10k-camera
// deep topology under a live fault schedule — recurring join and leave
// entries churning two gateway populations for the whole run, plus one
// gateway outage (with re-homing onto a sibling leaf) and recovery.
// Joins append cameras and leaves swap-remove them, so the cost to
// watch is churn bookkeeping against the flat per-camera state; the
// outage exercises the drain/re-home path at scale. The alloc counters
// are the regression surface: a join allocates at most its camera
// record, and firing an event must not allocate at all. Baselines live
// in BENCH_topology.json and are gated by cmd/benchgate in CI.
func BenchmarkChurnFleet(b *testing.B) {
	sc := deepFleetScenario(10_000)
	sc.Dynamics = &DynamicsConfig{Events: []FleetEvent{
		{Time: 0.2, Kind: DynCameraJoin, Class: "cams-gw-0", Count: 8, EverySec: 0.1},
		{Time: 0.3, Kind: DynCameraLeave, Class: "cams-gw-1", Count: 8, EverySec: 0.1},
		{Time: 1.5, Kind: DynTierOutage, Tier: "gw-2", Fallback: "gw-10"},
		{Time: 2.5, Kind: DynTierRecover, Tier: "gw-2"},
	}}
	b.ReportAllocs()
	var churn int64
	for i := 0; i < b.N; i++ {
		res, err := Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		churn += res.Dynamics.Joined + res.Dynamics.Left
	}
	b.ReportMetric(float64(churn)/float64(b.N), "churn/run")
}

// BenchmarkComputeTiers prices the finite-core-pool path: the 10k-camera
// deep topology with a compute section on all 41 tiers, sized so every
// pool runs near 80% utilization — each frame queues for service at
// three pools (gateway, metro, core) on top of its link transits, with
// the gateways on egalitarian fair-share and the upper tiers on FIFO so
// both service heaps are in the hot loop. The alloc counters are the
// regression surface: pool stepping reuses the same free-listed transfer
// records the links do, so allocs/op must not grow with the frame count.
// Baselines live in BENCH_topology.json and are gated by cmd/benchgate
// in CI.
func BenchmarkComputeTiers(b *testing.B) {
	sc := deepFleetScenario(10_000)
	// 625 offered fps per gateway × 5 ms service = 3.125 core-sec/s.
	for i := range sc.Tiers {
		t := &sc.Tiers[i]
		switch {
		case t.Name == "core":
			t.Compute = &ComputeConfig{Cores: 128, ServiceRateFPS: 200}
		case len(t.Name) > 5 && t.Name[:5] == "metro":
			t.Compute = &ComputeConfig{Cores: 16, ServiceRateFPS: 200}
		default:
			t.Compute = &ComputeConfig{Cores: 4, ServiceRateFPS: 200,
				Discipline: ContentionFairShare}
		}
	}
	b.ReportAllocs()
	var busy float64
	for i := 0; i < b.N; i++ {
		res, err := Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		for _, ts := range res.Tiers {
			if ts.Compute != nil {
				busy += ts.Compute.BusySec
			}
		}
	}
	b.ReportMetric(busy/float64(b.N), "core-sec/run")
}
