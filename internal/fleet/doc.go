// Package fleet scales the paper's single-camera computation-communication
// models to populations of cameras contending for one shared uplink. It is
// the bridge from the per-device analyses of internal/core (placement cost),
// internal/energy (radios, harvesters) and the two case studies
// (internal/faceauth, internal/vr) to fleet-level questions: how many
// cameras does a given uplink support, which placement keeps offload
// latency bounded as the fleet grows, and what does contention do to
// harvest-constrained devices sharing the air with bandwidth-hungry ones.
//
// # Scenario format
//
// A simulation run is described by a Scenario, decodable from JSON:
//
//	{
//	  "name": "mixed-1000",
//	  "seed": 1,
//	  "duration_sec": 10,
//	  "uplink": {"gbps": 10, "contention": "fair-share"},
//	  "classes": [
//	    {"name": "fa", "count": 700, "fps": 1, "arrival": "poisson",
//	     "frame_bytes": 400, "offload_prob": 0.05, "compute_sec": 0.02,
//	     "capture_j": 3.3e-6, "compute_j": 1.1e-6,
//	     "tx_fixed_j": 2e-6, "tx_per_byte_j": 4.8e-10,
//	     "harvest_w": 2e-4, "store_j": 0.07, "queue_depth": 4},
//	    {"name": "vr", "count": 300, "fps": 30, "frame_bytes": 1122000,
//	     "compute_sec": 0.0316, "capture_j": 0.005, "compute_j": 0.316,
//	     "tx_fixed_j": 1e-4, "tx_per_byte_j": 4e-8}
//	  ]
//	}
//
// Each class instantiates Count identical cameras that capture frames at
// FPS (periodic with a random phase, or Poisson), spend ComputeSeconds of
// in-camera processing per frame, then offload FrameBytes with probability
// OffloadProb over the shared uplink. Classes with HarvestW > 0 are
// energy-harvesting: a camera skips frames its capacitor cannot pay for.
// The class builders FaceAuthClass and VRClass derive these parameters
// from the existing single-camera models (core.EnergyPipeline for the
// progressive-filtering face-authentication camera;
// core.ThroughputPipeline.Cost plus vr.PaperByteModel and
// platform.PaperThroughput for a Fig. 10 VR placement).
//
// # Contention models
//
// The shared uplink has a finite capacity and a pluggable contention
// discipline:
//
//   - "fair-share": egalitarian processor sharing — the n in-flight
//     transfers each progress at capacity/n (simulated in O(log n) per
//     event via virtual time). Small face-auth payloads finish quickly
//     even while multi-megabyte VR frames drain.
//   - "fifo": transfers serialize in arrival order, each taking the full
//     capacity at the head of the queue. A large frame ahead of a small
//     one head-of-line-blocks it.
//
// Per-camera backpressure is modelled with QueueDepth: a frame captured
// while that many offloads are still in flight is dropped and counted.
//
// # Determinism and parallelism
//
// A run is deterministic in its Scenario: every random draw comes from
// per-camera *rand.Rand streams derived from Scenario.Seed by index (never
// the global source), and the event loop breaks ties by sequence number.
// The same seed produces byte-identical stat tables. Independent scenario
// points sweep in parallel across GOMAXPROCS via Sweep's worker pool;
// parallelism never reorders arithmetic within a run, so sweeps stay
// reproducible too.
package fleet
