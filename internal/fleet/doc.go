// Package fleet scales the paper's single-camera computation-communication
// models to populations of cameras contending for a shared network. It is
// the bridge from the per-device analyses of internal/core (placement cost),
// internal/energy (radios, harvesters) and the two case studies
// (internal/faceauth, internal/vr) to fleet-level questions: how many
// cameras does a given uplink support, which placement keeps offload
// latency bounded as the fleet grows, and what does contention do to
// harvest-constrained devices sharing the air with bandwidth-hungry ones.
// The network is one shared uplink (the flat model), a two-tier gateway
// topology, or an arbitrary-depth tier tree — cameras attach to a named
// tier and their offloads climb every link from there to the root, paying
// transmission plus one-way propagation delay at each hop — and classes
// can carry a runtime placement cost table that an adaptive per-class
// controller walks as observed conditions change.
//
// This comment documents the scenario surface section by section;
// ARCHITECTURE.md at the repository root maps the machinery underneath —
// the event loop and its heap discipline, the link layout and tie-break
// order, the PRNG seed families, the placement controllers, the two
// telemetry paths, and the fleetvet-enforced determinism invariants.
//
// # Scenario format
//
// A simulation run is described by a Scenario, decodable from JSON.
// ParseScenario is strict — an unknown field is an error, so a typoed
// knob cannot silently run as if absent — and `camsim fleet -scenario
// file.json` (or `camsim topo -scenario`) runs such a file directly:
//
//	{
//	  "name": "mixed-1000",
//	  "seed": 1,
//	  "duration_sec": 10,
//	  "uplink": {"gbps": 10, "contention": "fair-share"},
//	  "classes": [
//	    {"name": "fa", "count": 700, "fps": 1, "arrival": "poisson",
//	     "frame_bytes": 400, "offload_prob": 0.05, "compute_sec": 0.02,
//	     "capture_j": 3.3e-6, "compute_j": 1.1e-6,
//	     "tx_fixed_j": 2e-6, "tx_per_byte_j": 4.8e-10,
//	     "harvest_w": 2e-4, "store_j": 0.07, "queue_depth": 4},
//	    {"name": "vr", "count": 300, "fps": 30, "frame_bytes": 1122000,
//	     "compute_sec": 0.0316, "capture_j": 0.005, "compute_j": 0.316,
//	     "tx_fixed_j": 1e-4, "tx_per_byte_j": 4e-8}
//	  ]
//	}
//
// Each class instantiates Count identical cameras that capture frames at
// FPS (periodic with a random phase, or Poisson), spend ComputeSeconds of
// in-camera processing per frame, then offload FrameBytes with probability
// OffloadProb over the shared uplink. Classes with HarvestW > 0 are
// energy-harvesting: a camera skips frames its capacitor cannot pay for.
// The class builders FaceAuthClass and VRClass derive these parameters
// from the existing single-camera models (core.EnergyPipeline for the
// progressive-filtering face-authentication camera;
// core.ThroughputPipeline.Cost plus vr.PaperByteModel and
// platform.PaperThroughput for a Fig. 10 VR placement).
//
// # Tiered topology
//
// A "gateways" section makes the network two-tier: classes name the
// gateway their cameras attach to ("gateway"), offloads cross the finite
// camera→gateway link first and the shared WAN link (the top-level
// "uplink") second, and each tier runs its own contention discipline.
// Classes without a gateway attach directly to the WAN. Per-tier served
// bytes and utilization come back in Result.Tiers.
//
//	"uplink": {"gbps": 4, "contention": "fair-share"},
//	"gateways": [
//	  {"name": "gw-a", "uplink": {"gbps": 2, "contention": "fair-share"}},
//	  {"name": "gw-b", "uplink": {"gbps": 2, "contention": "fifo"}}
//	],
//
// # Tier trees
//
// A "tiers" section generalizes the network to an arbitrary-depth tree
// (camera → gateway → metro → core): each tier names its parent — exactly
// one, the root, leaves it empty — and carries its own uplink plus a
// one-way "propagation_sec" delay. Classes attach by tier name ("tier";
// empty attaches at the root), and a transfer rides every link from its
// attach point to the root, accruing per-hop transmission and propagation
// time; completion latency is capture to arrival in the cloud, one root
// propagation delay after the root link drains.
//
//	"tiers": [
//	  {"name": "gw-a",  "parent": "metro", "uplink": {"gbps": 2}, "propagation_sec": 0.0002},
//	  {"name": "gw-b",  "parent": "metro", "uplink": {"gbps": 2}, "propagation_sec": 0.0002},
//	  {"name": "metro", "parent": "core",  "uplink": {"gbps": 4}, "propagation_sec": 0.002},
//	  {"name": "core",                     "uplink": {"gbps": 8}, "propagation_sec": 0.01}
//	],
//
// "tiers" is mutually exclusive with "gateways"; the flat and gateway
// forms are themselves resolved into depth-1 and depth-2 trees (root
// named "wan"), so the tree is the one runtime model. Per-tier stats come
// back in Result.Tiers — served bytes, completed transfers, utilization,
// depth and the hop-delay total Transfers × PropagationSec — and
// Result.TierNamed finds a tier by name. DeepTopologyScenario builds the
// gateway→metro→core demo chain behind `camsim topo -depth`.
//
// # Downlink
//
// A tier may declare a "downlink" — the parent→tier link (cloud→root at
// the root), making the tree bidirectional:
//
//	{"name": "gw-a", "parent": "core",
//	 "uplink":   {"gbps": 2, "contention": "fair-share"},
//	 "downlink": {"gbps": 1, "contention": "fair-share", "propagation_sec": 0.0002},
//	 "propagation_sec": 0.0002}
//
// A downlink has its own capacity, contention discipline ("fair-share"
// defaulted, or "fifo") and one-way "propagation_sec"; it is a Link like
// any uplink, just pointed the other way. Downlinks are optional and
// independent: declaring one changes nothing upstream — frame traffic
// never rides them, link indices and tie-breaks of the existing uplinks
// are preserved, and a scenario without downlinks is byte-identical to
// what it produced before they existed. Traffic appears on a downlink
// only when something routes root→leaf — today, the federated model
// broadcast below. Per-tier downlink stats come back in TierStats
// (DownGbps, DownServedBytes, DownTransfers, DownlinkUtilization, and
// the propagation total DownPropDelayTotal).
//
// # Compute tiers
//
// A tier may declare a "compute" section — a finite pool of cores that
// every offloaded frame must be serviced by before the tier's uplink
// forwards it, making latency capture → transit → queueing + service →
// done instead of transit alone:
//
//	{"name": "gw-a", "parent": "core",
//	 "uplink": {"gbps": 4},
//	 "compute": {"cores": 1, "service_rate_fps": 16, "discipline": "fifo",
//	             "service_sec": [{"class": "fa", "sec": 0.002}]}}
//
// "service_rate_fps" prices a frame of the class's reference payload (its
// largest placement row, or its fixed frame bytes) at 1/rate core-seconds;
// a "service_sec" entry overrides that per class. Service demand scales
// with the bytes a frame actually ships — a placement that offloads an
// 11×-smaller payload needs 11× less tier service — so moving cameras
// toward in-camera compute is also what relieves a congested pool, and
// placement becomes a joint network+compute decision. Every offloading
// class crossing a compute tier must resolve a service time there;
// federated update blobs bypass the pools (they are not frames). The pool
// runs "fifo" (default: frames serialize through the cores in arrival
// order, a heavy frame head-of-line-blocking the light ones behind it) or
// "fair-share" (egalitarian processor sharing, a job never spanning
// cores).
//
// Compute feeds back into every placement decision: each placement row
// gains a deterministic delay floor — its own in-camera compute seconds
// plus the expected tier service of the bytes it ships along the attach
// path (Scenario.RowDelaySeconds) — which the energy-latency policy adds
// to the latency a step risks and the global controller uses to refuse
// energy moves whose floor, stacked on the observed p95, would break
// HighSec. Per-tier results come back in TierStats.Compute (cores,
// discipline, frames served, busy seconds, utilization, and queueing-wait
// p50/p95 from a KLL sketch), and streaming telemetry windows carry each
// pool as a "name:compute" series with capacity = cores. A scenario
// without compute sections is byte-identical to what it always produced —
// the pools, their link slots and their sketches exist only when
// configured. ComputeDemoScenario builds the undersized-gateway demo
// behind `camsim topo -compute`, and examples/compute-placement runs an
// embedded scenario of the same shape.
//
// # Federated rounds
//
// A scenario-level "federated" section runs round-structured federated
// learning over the tier tree (package internal/fleet/fl owns the round
// accounting):
//
//	"federated": {
//	  "rounds": 4, "classes": ["fl-gw-a", "fl-gw-b"],
//	  "compute_sec": 0.6, "jitter_sec": 0.4,
//	  "model": {"layers": [400, 8, 1], "bytes_per_weight": 4, "compress": 0.5}
//	}
//
// Each round, every participating camera (all classes when "classes" is
// empty) spends compute_sec plus a seeded jitter draw of local training,
// then pushes an update blob up its attach tier's uplink, contending
// with the fleet's frame traffic. Updates are sized from the trained
// network's parameter count — nn.WeightCount(layers) × bytes_per_weight
// × compress — or fixed directly with "update_bytes". Blobs aggregate
// in-network where they land: a tier holding its full per-round fan-in
// emits one merged blob of the same size on its own uplink, so the WAN
// carries one blob per round no matter how many cameras train below.
// When the cloud's fan-in completes, the merged model ("model_bytes",
// defaulting to the uncompressed model) broadcasts back down the
// downlinks of the span — every tier with participants at or below it,
// which must all declare one — and delivery at a camera's attach tier
// starts its next round. Rounds run to completion past the capture
// duration, so every configured round reports telemetry: Result.Federated
// carries up/down/naive byte totals and per-round start, aggregation,
// end, latency and straggler p95. The FL streams are seeded independently
// of the frame-traffic streams, so adding a federated job never perturbs
// the fleet's frame arithmetic. FederatedDemoScenario builds the
// two-gateway demo behind `camsim topo -fl` and BenchmarkFederatedRound;
// examples/federated-fleet sweeps its compression knob.
//
// # Streaming telemetry
//
// A scenario-level "telemetry" section swaps the run's statistics
// accumulator, not its physics:
//
//	"telemetry": {"streaming": true, "window_sec": 10}
//
// With "streaming" set, per-class offload latencies land in mergeable
// KLL quantile sketches (package internal/fleet/quantile, capacity
// quantile.K) instead of exact per-sample slices, and the reported
// p50/p95/p99 become sketch estimates whose true rank lies within
// quantile.Eps (1%) of the requested one. What that buys is a memory
// bound: the exact path preallocates latency storage from the expected
// frame count, so a long horizon's cost grows with simulated frames,
// while a sketch's retained set is fixed — BenchmarkLongHorizon pins
// B/op flat in the frame count at 100k cameras, gated in CI. The event
// sequence is untouched either way (the adaptive controllers keep their
// own windows), so a streaming run's counters, tier stats and energy
// totals are identical to the exact run's, and a scenario without a
// telemetry section is byte-identical to what it always produced;
// TestStreamingDifferential holds the two paths against each other
// within the sketch's rank bound.
//
// A positive "window_sec" (requires "streaming") additionally emits a
// time series: half-open windows [k·W, (k+1)·W) of simulated time, the
// final window clipped at the run's end, each reporting per-class
// sketch p50/p95/p99, completed offloads, queue and energy drops, and
// every link's utilization over just that window (bytes credit at
// transfer completion, so a single window can exceed 1; the
// time-weighted mean across windows equals the run-wide utilization
// exactly). Window sketches merge into the run-wide sketches at window
// close — the mergeability that makes per-window statistics free — and
// come back in Result.TimeSeries, renderable as JSON or long-form CSV
// (TimeSeries.WriteJSON / WriteCSV); `camsim fleet|topo -scenario
// file.json -timeseries out.csv` writes them from the command line, and
// examples/long-horizon walks a two-minute run window by window.
//
// # Fleet dynamics
//
// A scenario-level "dynamics" section turns the steady-state calculator
// into a robustness harness: a time-ordered fault/load schedule of
// "events" executed inside the same sequential event loop —
//
//	"dynamics": {"events": [
//	  {"time_sec": 2, "kind": "fps_profile",  "class": "vr", "multiplier": 2},
//	  {"time_sec": 3, "kind": "camera_join",  "class": "fa", "count": 50},
//	  {"time_sec": 4, "kind": "link_degrade", "tier": "metro", "factor": 0.25},
//	  {"time_sec": 5, "kind": "tier_outage",  "tier": "gw-a", "fallback": "gw-b"},
//	  {"time_sec": 7, "kind": "tier_recover", "tier": "gw-a"},
//	  {"time_sec": 8, "kind": "link_restore", "tier": "metro"},
//	  {"time_sec": 9, "kind": "compute_scale", "tier": "gw-b", "cores": 4}
//	]}
//
// "camera_join"/"camera_leave" churn a class: joiners continue the global
// camera-seed sequence (existing cameras' streams untouched) and leavers
// are drawn from the entry's own seeded stream; "every_sec" makes a churn
// entry recurring with exponential inter-arrival gaps from that stream —
// a fourth seed family, so churn never perturbs frame-traffic draws. A
// departed camera's in-flight frames still complete; it just captures
// nothing further. "link_degrade" rescales a tier's uplink to base ×
// factor with in-flight progress conserved (the fair-share virtual clock
// advances at the old rate first; FIFO recomputes the head's remaining
// bytes); factor 0 parks the link until "link_restore". "tier_outage"
// takes a tier down: in-flight transfers through its uplink and core
// pool are dropped and accounted, frames arriving while it is down drop
// on arrival, and directly attached classes re-home to the declared
// "fallback" tier — repricing their forwarding-energy and delay tables,
// which both controller kinds then score against — until "tier_recover"
// re-homes them back. "fps_profile" sets a class's capture-rate
// multiplier (piecewise diurnal/bursty load), and "compute_scale"
// resizes a tier's core pool. Validation is strict per kind: unknown
// kinds, out-of-order times, ghost tiers/classes, out-of-range factors,
// misplaced knobs, a failing root, or an outage stranding attached
// cameras without a fallback all fail before the run starts; dynamics
// cannot combine with a federated job (dropping a round's blobs would
// deadlock its barrier).
//
// Accounting conserves every emitted frame: captured = completed +
// queued + dropped, with outage losses in ClassStats.DroppedOutage,
// per-tier downtime seconds and drops in TierStats, the run-wide totals
// in Result.Dynamics, and — with windowed telemetry — per-window
// availability columns (outage drops per class, downtime seconds and
// mean capacity fraction per tier) in the JSON and CSV series. Tier
// utilization stays denominated in nominal capacity while degraded (the
// capacity-fraction column carries the degradation). A scenario without
// the section — or with an empty event list — is byte-identical to every
// release before it existed, and dynamics runs replay deterministically
// like any other. DynamicsDemoScenario builds the diurnal-swell +
// gateway-outage demo behind `camsim topo -dynamics`, and
// examples/fleet-dynamics runs an embedded scenario of the same shape.
//
// # Placement policies
//
// A class may carry a runtime cost table ("placements", ordered from
// most-offload to most-in-camera — each row a Fig. 10-style placement's
// frame bytes, compute seconds and compute joules) plus a "policy":
//
//	"placements": [
//	  {"name": "raw",       "frame_bytes": 12400000, "compute_sec": 0.0001},
//	  {"name": "in-camera", "frame_bytes": 1122000,  "compute_sec": 0.0316,
//	   "compute_j": 0.316}
//	],
//	"policy": {"kind": "latency-threshold", "interval_sec": 0.5,
//	           "high_sec": 0.2, "move_fraction": 0.5}
//
// Every IntervalSec a per-class controller inspects the offload latencies
// and queue drops observed since its last decision and moves a
// MoveFraction batch of cameras one table step: "latency-threshold"
// escalates one way toward in-camera compute when the window p95 exceeds
// HighSec (or anything was queue-dropped); "hysteresis" also steps back
// toward offload when the window p95 falls below LowSec, holding inside
// the dead band; "energy-latency" (below) also weighs per-frame energy;
// "static" (the default) never moves. Which cameras move is drawn from a
// controller stream seeded by (Scenario.Seed, class), so adaptive runs
// replay byte-identically. VRAdaptiveClass builds such a class from
// core.ThroughputPipeline.CostTable over a set of Fig. 10 placements, and
// TopologyDemoScenario assembles the congested two-gateway fleet behind
// `camsim topo` and BenchmarkTopologySweep.
//
// # Energy models
//
// Energy is the second axis of every placement decision. Each placement
// row is priced in expected joules per captured frame
// (Class.PlacementEnergyPerFrame, built on energy.FrameEnergy): capture,
// the row's compute joules, and — for the offloading fraction of frames —
// the camera radio's fixed-plus-per-byte transmit cost. Tier-tree links
// additionally carry "tx_per_byte_j", the network-side forwarding energy
// per byte (energy.ForwardPerByteJ is a wired-aggregation default); a
// row's energy charges its bytes the summed per-byte cost of every hop
// between the class's attach tier and the root, so a deep path makes
// offloading proportionally more expensive. Results surface the axis in
// Result.Energy (camera joules actually charged, per-link forwarding
// joules from observed served bytes, average power, and the fleet's
// projected placement power) and per tier in TierStats.ForwardJ.
//
// The "energy-latency" policy spends that model locally: congestion keeps
// the latency-threshold rule verbatim, and otherwise the controller
// compares the two adjacent rows, moving when "energy_weight" (seconds of
// latency one joule per frame is worth) times the mean per-frame saving
// beats the latency the step risks re-adding — the observed p95 for a
// step toward offload, nothing for a step toward in-camera. An
// energy_weight of 0 therefore reproduces latency-threshold exactly.
//
// # Global controller
//
// A scenario-level "global" section runs the fleet-wide energy-aware
// controller above the per-class policies:
//
//	"global": {"epoch_sec": 1, "budget_w": 26, "high_sec": 0.5,
//	           "move_fraction": 0.5}
//
// On every epoch tick it sees all classes' window stats across every
// tier and projects the fleet's placement power — each camera's
// per-frame energy at its current row times its capture rate. Congested
// classes (window p95 over HighSec, or queue drops) first get up to
// MoveFraction of their cameras stepped toward in-camera compute,
// admitted only while the projection stays under BudgetW. Then, while
// the projection exceeds the budget, a greedy knapsack sheds watts:
// repeatedly take the (class, direction) step with the largest marginal
// per-frame saving — ties to the class with the most p95 headroom —
// moving cameras one at a time until the fleet fits, stopping at the
// budget line rather than overshooting to the energy floor. Decisions
// land in Result.Global (per-epoch projected power before/after and
// every move with its reason), draw from their own seeded stream, and
// replay byte-identically. EnergyDemoScenario builds the uncongested
// demo behind `camsim topo -global`, where the budget — not latency — is
// what moves cameras.
//
// # Contention models
//
// The shared uplink has a finite capacity and a pluggable contention
// discipline:
//
//   - "fair-share": egalitarian processor sharing — the n in-flight
//     transfers each progress at capacity/n (simulated in O(log n) per
//     event via virtual time). Small face-auth payloads finish quickly
//     even while multi-megabyte VR frames drain.
//   - "fifo": transfers serialize in arrival order, each taking the full
//     capacity at the head of the queue. A large frame ahead of a small
//     one head-of-line-blocks it.
//
// Per-camera backpressure is modelled with QueueDepth: a frame captured
// while that many offloads are still in flight is dropped and counted.
//
// # Determinism and parallelism
//
// A run is deterministic in its Scenario: every random draw comes from a
// compact per-camera (and per-controller) splitmix64 stream derived from
// Scenario.Seed by index (never the global source), the event loop breaks
// ties by sequence number, and simultaneous completions across tiers
// resolve in tier order. The same seed produces byte-identical stat
// tables — `go test ./cmd/camsim -run Golden` pins this against
// checked-in goldens at GOMAXPROCS 1, 2 and 8. Independent scenario
// points sweep in parallel across GOMAXPROCS via Sweep's worker pool;
// parallelism never reorders arithmetic within a run, so sweeps stay
// reproducible too.
//
// # Performance
//
// The event loop is engineered to run allocation-free in steady state, so
// fleet size — not garbage — bounds throughput (BenchmarkHugeFleet runs
// 100k cameras over 41 links; BenchmarkDeepTopology pins the 10k shape,
// both gated in CI by cmd/benchgate against BENCH_topology.json):
//
//   - Per-event cost: one pop from the specialized event heap (O(log
//     events), no interface boxing — container/heap cost one allocation
//     per Push), plus O(log n) fair-share virtual-time accounting on the
//     link (psHeap) and O(log links) completion lookup (liHeap). All
//     three heaps preserve container/heap's exact pop order, proven
//     differentially by TestHeapsMatchContainerHeap. The FIFO discipline
//     keeps a power-of-two ring, so wrap-around is a mask, not a modulo.
//   - Memory model: each camera embeds its random stream by value — an
//     8-byte splitmix64 state (prng) instead of a *rand.Rand whose
//     lagged-Fibonacci source is ~5 KB of heap per camera — so 100k
//     cameras cost ~800 KB of inline state rather than ~500 MB of
//     pointer-chased boxes. Transfer ids are recycled through a free
//     list, bounding transfer storage by the peak in-flight population
//     instead of the total frame count, and the event heap and per-class
//     latency slices are preallocated from FPS × Duration × Count
//     estimates, so the loop never regrows them.
//   - Seeded-stream shift: moving from rand.Rand's ziggurat draws to the
//     prng's inversion-based ExpFloat64 / 53-bit Float64 shifted every
//     seeded stream once (goldens were regenerated, as for the PR 3 seed
//     derivation fix); the streams are pinned by TestPRNGReferenceVectors
//     and stable from then on.
package fleet
