package fleet

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"camsim/internal/fleet/fl"
	"camsim/internal/nn"
)

// TestFederatedDemoSmoke pins the demo scenario's basic shape: every
// round completes, telemetry is monotone, and both directions carried
// the expected payloads.
func TestFederatedDemoSmoke(t *testing.T) {
	res, err := Run(FederatedDemoScenario(1))
	if err != nil {
		t.Fatal(err)
	}
	f := res.Federated
	if f == nil {
		t.Fatal("no federated stats")
	}
	if f.Rounds != 4 || len(f.PerRound) != 4 {
		t.Fatalf("rounds = %d / %d entries", f.Rounds, len(f.PerRound))
	}
	if f.Cameras != 48 {
		t.Fatalf("cameras = %d, want 48", f.Cameras)
	}
	wantUpdate := int64(math.Ceil(float64(nn.WeightCount(400, 8, 1)) * 4 * 0.5))
	if f.UpdateBytes != wantUpdate {
		t.Fatalf("update bytes = %d, want %d", f.UpdateBytes, wantUpdate)
	}
	if f.ModelBytes != int64(nn.WeightCount(400, 8, 1)*4) {
		t.Fatalf("model bytes = %d", f.ModelBytes)
	}
	prevEnd := 0.0
	for i, rd := range f.PerRound {
		if rd.Start != prevEnd {
			t.Fatalf("round %d start %v, want previous end %v", i+1, rd.Start, prevEnd)
		}
		if !(rd.Start < rd.AggDone && rd.AggDone < rd.End) {
			t.Fatalf("round %d not monotone: start %v agg %v end %v", i+1, rd.Start, rd.AggDone, rd.End)
		}
		if rd.Latency <= 0 || rd.StragglerP95 <= 0 || rd.StragglerP95 > rd.Latency {
			t.Fatalf("round %d latency %v straggler %v", i+1, rd.Latency, rd.StragglerP95)
		}
		prevEnd = rd.End
	}
	if f.DoneAt != prevEnd {
		t.Fatalf("DoneAt %v, want %v", f.DoneAt, prevEnd)
	}
	if res.SimEnd < f.DoneAt {
		t.Fatalf("SimEnd %v before federated DoneAt %v", res.SimEnd, f.DoneAt)
	}
}

// TestFederatedAggregationShrinksBytesPerHop is the acceptance assertion:
// in-network aggregation keeps the WAN tier's upstream federated bytes
// strictly below the sum entering the leaf tiers.
func TestFederatedAggregationShrinksBytesPerHop(t *testing.T) {
	res, err := Run(FederatedDemoScenario(1))
	if err != nil {
		t.Fatal(err)
	}
	f := res.Federated
	leaf := 0.0
	for _, name := range []string{"gw-a", "gw-b"} {
		ti := res.TierNamed(name)
		if ti == nil {
			t.Fatalf("tier %q missing", name)
		}
		// Every participant's blob crosses its leaf uplink once per round.
		want := 24.0 * float64(f.UpdateBytes) * float64(f.Rounds)
		if ti.FLUpBytes != want {
			t.Fatalf("tier %s FLUpBytes = %v, want %v", name, ti.FLUpBytes, want)
		}
		leaf += ti.FLUpBytes
	}
	wan := res.TierNamed("core")
	// The core aggregates both gateways' fan-in to one merged blob per
	// round before the WAN hop.
	if want := float64(f.UpdateBytes) * float64(f.Rounds); wan.FLUpBytes != want {
		t.Fatalf("core FLUpBytes = %v, want %v", wan.FLUpBytes, want)
	}
	if !(wan.FLUpBytes < leaf) {
		t.Fatalf("WAN federated bytes %v not below leaf sum %v", wan.FLUpBytes, leaf)
	}
	if f.AggSavedBytes <= 0 || f.UpBytes+f.AggSavedBytes != f.NaiveUpBytes {
		t.Fatalf("savings inconsistent: up %v saved %v naive %v", f.UpBytes, f.AggSavedBytes, f.NaiveUpBytes)
	}
}

// TestFederatedDownlinkConservation extends the per-hop conservation
// property to the root→leaf direction: every span tier's downlink serves
// exactly one model blob per round, its busy time cannot exceed capacity
// (utilization ≤ 1), and its propagation total is Rounds × delay.
func TestFederatedDownlinkConservation(t *testing.T) {
	res, err := Run(FederatedDemoScenario(1))
	if err != nil {
		t.Fatal(err)
	}
	f := res.Federated
	var down float64
	for _, name := range []string{"gw-a", "gw-b", "core"} {
		ti := res.TierNamed(name)
		if !ti.HasDownlink() {
			t.Fatalf("tier %s lost its downlink", name)
		}
		if want := float64(f.ModelBytes) * float64(f.Rounds); ti.DownServedBytes != want {
			t.Fatalf("tier %s DownServedBytes = %v, want %v", name, ti.DownServedBytes, want)
		}
		if ti.DownTransfers != int64(f.Rounds) {
			t.Fatalf("tier %s DownTransfers = %d, want %d", name, ti.DownTransfers, f.Rounds)
		}
		if ti.DownlinkUtilization < 0 || ti.DownlinkUtilization > 1 {
			t.Fatalf("tier %s downlink utilization %v outside [0,1]", name, ti.DownlinkUtilization)
		}
		if want := float64(f.Rounds) * ti.DownPropagationSec; ti.DownPropDelayTotal() != want {
			t.Fatalf("tier %s down prop total = %v, want %v", name, ti.DownPropDelayTotal(), want)
		}
		down += ti.DownServedBytes
	}
	if f.DownBytes != down {
		t.Fatalf("Federated.DownBytes %v != summed downlink bytes %v", f.DownBytes, down)
	}
	up := 0.0
	for _, ti := range res.Tiers {
		up += ti.FLUpBytes
	}
	if f.UpBytes != up {
		t.Fatalf("Federated.UpBytes %v != summed uplink federated bytes %v", f.UpBytes, up)
	}
}

// TestIdleDownlinksDoNotPerturbResults is the differential half of the
// downlink satellite: declaring downlinks without a federated job must
// leave every upstream-visible statistic byte-identical — the downlinks
// exist but nothing ever rides them.
func TestIdleDownlinksDoNotPerturbResults(t *testing.T) {
	base, err := EnergyDemoScenario(7, PolicyStatic)
	if err != nil {
		t.Fatal(err)
	}
	withDown := base
	withDown.Tiers = append([]Tier(nil), base.Tiers...)
	for i := range withDown.Tiers {
		withDown.Tiers[i].Downlink = &DownlinkConfig{Gbps: 1, PropagationSec: 0.003}
	}
	r0, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Run(withDown)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Federated != nil {
		t.Fatal("unexpected federated stats")
	}
	if r0.SimEnd != r1.SimEnd || r0.UplinkUtilization != r1.UplinkUtilization {
		t.Fatalf("run shape diverged: SimEnd %v vs %v", r0.SimEnd, r1.SimEnd)
	}
	a, _ := json.Marshal(r0.Classes)
	b, _ := json.Marshal(r1.Classes)
	if string(a) != string(b) {
		t.Fatalf("class stats diverged:\n%s\n%s", a, b)
	}
	for i := range r0.Tiers {
		t0, t1 := r0.Tiers[i], r1.Tiers[i]
		if t1.DownServedBytes != 0 || t1.DownTransfers != 0 || t1.DownlinkUtilization != 0 {
			t.Fatalf("tier %s: idle downlink served traffic", t1.Name)
		}
		// Erase the declared-downlink echo; everything else must match.
		t1.DownGbps, t1.DownContention, t1.DownPropagationSec = 0, "", 0
		if t0 != t1 {
			t.Fatalf("tier %s diverged: %+v vs %+v", t0.Name, t0, t1)
		}
	}
}

// TestFederatedDeterministicAcrossRuns pins replayability: two runs of
// the same scenario render byte-identical tables.
func TestFederatedDeterministicAcrossRuns(t *testing.T) {
	r1, err := Run(FederatedDemoScenario(3))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(FederatedDemoScenario(3))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Table() != r2.Table() {
		t.Fatalf("tables diverged:\n%s\n---\n%s", r1.Table(), r2.Table())
	}
	if !strings.Contains(r1.Table(), "federated rounds 4") {
		t.Fatalf("table missing federated block:\n%s", r1.Table())
	}
}

// TestFederatedScenarioJSONRoundTrip decodes a hand-written scenario with
// downlinks and a federated section, and checks the strict parser accepts
// it and the payload sizing resolves from the model vector.
func TestFederatedScenarioJSONRoundTrip(t *testing.T) {
	src := `{
		"name": "fl-json", "seed": 3, "duration_sec": 2,
		"tiers": [
			{"name": "gw", "parent": "core", "uplink": {"gbps": 1}, "propagation_sec": 0.001,
			 "downlink": {"gbps": 0.5, "contention": "fifo", "propagation_sec": 0.001}},
			{"name": "core", "uplink": {"gbps": 4},
			 "downlink": {"gbps": 2}}
		],
		"classes": [
			{"name": "edge", "count": 5, "fps": 1, "frame_bytes": 1000, "tier": "gw"}
		],
		"federated": {
			"rounds": 2, "compute_sec": 0.05, "jitter_sec": 0.02,
			"model": {"layers": [400, 8, 1], "compress": 0.25}
		}
	}`
	sc, err := ParseScenario([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Tiers[0].Downlink == nil || sc.Tiers[0].Downlink.Contention != ContentionFIFO {
		t.Fatalf("downlink not decoded: %+v", sc.Tiers[0].Downlink)
	}
	if sc.Tiers[1].Downlink.Contention != ContentionFairShare {
		t.Fatalf("downlink contention not defaulted: %+v", sc.Tiers[1].Downlink)
	}
	if sc.Federated.Model.BytesPerWeight != 4 {
		t.Fatalf("bytes_per_weight not defaulted: %v", sc.Federated.Model.BytesPerWeight)
	}
	want := int64(math.Ceil(float64(nn.WeightCount(400, 8, 1)) * 4 * 0.25))
	if got := sc.Federated.ResolvedUpdateBytes(); got != want {
		t.Fatalf("update bytes = %d, want %d", got, want)
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Federated == nil || len(res.Federated.PerRound) != 2 {
		t.Fatalf("federated run incomplete: %+v", res.Federated)
	}
}

// TestFederatedValidationRejections walks the new rejection surface.
func TestFederatedValidationRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"no spanning downlink", func(sc *Scenario) { sc.Tiers[2].Downlink = nil }, "broadcast span"},
		{"flat topology", func(sc *Scenario) {
			sc.Tiers = nil
			for i := range sc.Classes {
				sc.Classes[i].Tier = ""
			}
			sc.Uplink = UplinkConfig{Gbps: 1, Contention: ContentionFairShare}
		}, "needs a \"tiers\" topology"},
		{"unknown class", func(sc *Scenario) { sc.Federated.Classes = []string{"nobody"} }, "not in the scenario"},
		{"zero rounds", func(sc *Scenario) { sc.Federated.Rounds = 0 }, "rounds"},
		{"no sizing", func(sc *Scenario) { sc.Federated.Model = nil }, "update_bytes or a model"},
		{"bad compress", func(sc *Scenario) { sc.Federated.Model.Compress = 1.5 }, "compress"},
		{"one layer", func(sc *Scenario) { sc.Federated.Model.Layers = []int{7} }, "layers"},
		{"bad downlink gbps", func(sc *Scenario) { sc.Tiers[0].Downlink.Gbps = -1 }, "downlink"},
		{"bad downlink contention", func(sc *Scenario) { sc.Tiers[0].Downlink.Contention = "magic" }, "contention"},
		{"bad downlink propagation", func(sc *Scenario) { sc.Tiers[0].Downlink.PropagationSec = math.Inf(1) }, "propagation"},
	}
	for _, tc := range cases {
		sc := FederatedDemoScenario(1)
		tc.mut(&sc)
		_, err := Run(sc)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestFederatedStragglerSkewedDownlinks is the end-to-end regression for
// the negative-straggler bug: two gateways whose downlink propagation
// differs by seconds mean the fast tier's cameras hold each round's
// model — and upload the next round's updates — long before the round
// officially starts (the slow tier's delivery). Measured against the
// round start those samples were negative; measured against each tier's
// own delivery every round's straggler tail is positive.
func TestFederatedStragglerSkewedDownlinks(t *testing.T) {
	sc := Scenario{
		Name:     "fl-skew",
		Seed:     5,
		Duration: 1,
		Tiers: []Tier{
			{Name: "gw-fast", Parent: "core", Uplink: UplinkConfig{Gbps: 1},
				Downlink: &DownlinkConfig{Gbps: 1, PropagationSec: 0.0001}},
			{Name: "gw-slow", Parent: "core", Uplink: UplinkConfig{Gbps: 1},
				Downlink: &DownlinkConfig{Gbps: 1, PropagationSec: 5}},
			{Name: "core", Uplink: UplinkConfig{Gbps: 4},
				Downlink: &DownlinkConfig{Gbps: 2}},
		},
		Classes: []Class{
			{Name: "fast", Count: 2, FPS: 1, FrameBytes: 100, Tier: "gw-fast"},
			{Name: "slow", Count: 2, FPS: 1, FrameBytes: 100, Tier: "gw-slow"},
		},
		Federated: &fl.Config{Rounds: 3, ComputeSec: 0.1, UpdateBytes: 1000, ModelBytes: 4000},
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	f := res.Federated
	if len(f.PerRound) != 3 {
		t.Fatalf("rounds = %d", len(f.PerRound))
	}
	for i, rd := range f.PerRound {
		if rd.StragglerP95 <= 0 {
			t.Fatalf("round %d straggler p95 = %v, want > 0 (round-start-relative samples went negative here)", i+1, rd.StragglerP95)
		}
		// Each sample is one local compute plus one gateway-uplink hop —
		// it can never reach the 5s downlink skew that separates the two
		// tiers' round starts.
		if rd.StragglerP95 >= 5 {
			t.Fatalf("round %d straggler p95 = %v, absorbed the downlink skew", i+1, rd.StragglerP95)
		}
	}
}

// TestFederatedRootOnlyParticipants pins the degenerate shape: cameras
// attached at the root push straight to the cloud (no merging tier), and
// the broadcast is a single root-downlink hop.
func TestFederatedRootOnlyParticipants(t *testing.T) {
	sc := Scenario{
		Name:     "fl-root",
		Seed:     1,
		Duration: 1,
		Tiers: []Tier{
			{Name: "core", Uplink: UplinkConfig{Gbps: 1},
				Downlink: &DownlinkConfig{Gbps: 1}},
		},
		Classes: []Class{
			{Name: "edge", Count: 3, FPS: 1, FrameBytes: 100},
		},
		Federated: &fl.Config{Rounds: 2, ComputeSec: 0.1, UpdateBytes: 1000, ModelBytes: 4000},
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	core := res.TierNamed("core")
	// 3 camera blobs per round, no merged blob (nothing aggregates below
	// the cloud's own fan-in).
	if want := 3.0 * 1000 * 2; core.FLUpBytes != want {
		t.Fatalf("core FLUpBytes = %v, want %v", core.FLUpBytes, want)
	}
	if want := 4000.0 * 2; core.DownServedBytes != want {
		t.Fatalf("core DownServedBytes = %v, want %v", core.DownServedBytes, want)
	}
	if res.Federated.AggSavedBytes != 0 {
		t.Fatalf("no aggregation possible, saved %v", res.Federated.AggSavedBytes)
	}
}
