package fleet

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// Property tests over randomized workloads: whatever the arrival pattern,
// both contention disciplines must behave like a physical link — they
// cannot serve more than capacity while busy, and no single transfer can
// receive more than capacity × its time in system. CI runs these under
// -race alongside the rest of the suite.

// uplinkTrace drives one uplink through a random admit/finish sequence and
// checks the conservation invariants event by event.
func uplinkTrace(t *testing.T, model string, rng *rand.Rand) {
	t.Helper()
	capacity := float64(1+rng.Intn(1000)) * 10 // 10..10000 B/s
	up, err := NewUplink(model, capacity)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-6

	type admitted struct {
		at    float64
		bytes float64
	}
	open := map[int]admitted{}
	now, busyStart, busyTime := 0.0, 0.0, 0.0
	var sumBytes float64

	// processFinish pops the next completion, as the sim's event loop
	// does, and checks the per-transfer service bound.
	processFinish := func() {
		ft, ok := up.NextFinish()
		if !ok {
			t.Fatalf("%s: %d transfers open but no next finish", model, len(open))
		}
		if ft < now-eps {
			t.Fatalf("%s: finish time %v precedes current time %v", model, ft, now)
		}
		served := up.ServedBytes()
		fid := up.Finish()
		a, ok := open[fid]
		if !ok {
			t.Fatalf("%s: finished unknown transfer %d", model, fid)
		}
		delete(open, fid)
		// Per-transfer service never exceeds capacity: B bytes need at
		// least B/capacity seconds in the system.
		if ft-a.at < a.bytes/capacity-eps {
			t.Fatalf("%s: transfer %d served %v bytes in %v s at capacity %v",
				model, fid, a.bytes, ft-a.at, capacity)
		}
		if got := up.ServedBytes() - served; got != a.bytes {
			t.Fatalf("%s: ServedBytes advanced %v for a %v-byte transfer", model, got, a.bytes)
		}
		if ft > now {
			now = ft
		}
		if len(open) == 0 {
			busyTime += now - busyStart
		}
	}

	n := 20 + rng.Intn(200)
	for id := 0; id < n || len(open) > 0; {
		if id < n && (len(open) == 0 || rng.Float64() < 0.6) {
			// Admit a new transfer: like the event loop, first drain every
			// completion the link delivers before the admission instant
			// (Start must never precede an observed event time).
			tnext := now + rng.ExpFloat64()*0.1
			for {
				ft, ok := up.NextFinish()
				if !ok || ft > tnext {
					break
				}
				processFinish()
			}
			now = tnext
			bytes := float64(1 + rng.Intn(100_000))
			if len(open) == 0 {
				busyStart = now
			}
			up.Start(now, id, bytes)
			open[id] = admitted{at: now, bytes: bytes}
			sumBytes += bytes
			id++
		} else {
			processFinish()
		}
		if up.InFlight() != len(open) {
			t.Fatalf("%s: InFlight %d, expected %d", model, up.InFlight(), len(open))
		}
	}
	// Aggregate conservation: the link cannot serve more than capacity
	// while busy, and everything admitted must have drained.
	if up.ServedBytes() != sumBytes {
		t.Fatalf("%s: served %v of %v admitted bytes", model, up.ServedBytes(), sumBytes)
	}
	if up.ServedBytes() > capacity*busyTime*(1+1e-9)+eps {
		t.Fatalf("%s: served %v bytes in %v busy seconds at capacity %v",
			model, up.ServedBytes(), busyTime, capacity)
	}
}

func TestUplinkPropertyConservation(t *testing.T) {
	for _, model := range []string{ContentionFairShare, ContentionFIFO} {
		t.Run(model, func(t *testing.T) {
			rng := rand.New(rand.NewSource(1234))
			for iter := 0; iter < 150; iter++ {
				uplinkTrace(t, model, rng)
			}
		})
	}
}

// randomScenario builds a random-but-valid scenario with one or two tiers.
func randomScenario(rng *rand.Rand) Scenario {
	sc := Scenario{
		Name:     fmt.Sprintf("prop-%d", rng.Int63()),
		Seed:     rng.Int63n(1 << 30),
		Duration: 0.5 + rng.Float64()*2,
		Uplink: UplinkConfig{
			Gbps:       0.001 + rng.Float64()*0.05,
			Contention: []string{ContentionFairShare, ContentionFIFO}[rng.Intn(2)],
		},
	}
	gateway := ""
	if rng.Intn(2) == 1 {
		gateway = "gw"
		sc.Gateways = []Gateway{{Name: "gw", Uplink: UplinkConfig{
			Gbps:       0.001 + rng.Float64()*0.05,
			Contention: []string{ContentionFairShare, ContentionFIFO}[rng.Intn(2)],
		}}}
	}
	nClasses := 1 + rng.Intn(3)
	for i := 0; i < nClasses; i++ {
		c := Class{
			Name:           fmt.Sprintf("c%d", i),
			Count:          1 + rng.Intn(30),
			FPS:            0.5 + rng.Float64()*20,
			Arrival:        []string{ArrivalPeriodic, ArrivalPoisson}[rng.Intn(2)],
			FrameBytes:     int64(1 + rng.Intn(500_000)),
			OffloadProb:    rng.Float64(),
			ComputeSeconds: rng.Float64() * 0.05,
			QueueDepth:     1 + rng.Intn(6),
			CaptureJ:       rng.Float64() * 1e-3,
			ComputeJ:       rng.Float64() * 1e-3,
		}
		if rng.Intn(2) == 1 {
			c.Gateway = gateway
		}
		if rng.Intn(3) == 0 {
			c.HarvestW = 1e-5 + rng.Float64()*1e-3
			c.StoreJ = 1e-4 + rng.Float64()*0.1
		}
		if rng.Intn(2) == 0 {
			c.Placements = []PlacementCost{
				{Name: "a", FrameBytes: int64(1 + rng.Intn(500_000)), ComputeSeconds: rng.Float64() * 0.01},
				{Name: "b", FrameBytes: int64(1 + rng.Intn(50_000)), ComputeSeconds: rng.Float64() * 0.05},
			}
			c.Policy = PolicyConfig{
				Kind:         []string{PolicyStatic, PolicyLatencyThreshold, PolicyHysteresis, PolicyEnergyLatency}[rng.Intn(4)],
				IntervalSec:  0.1 + rng.Float64()*0.5,
				HighSec:      0.01 + rng.Float64(),
				MoveFraction: rng.Float64()*0.9 + 0.1,
				Start:        rng.Intn(2),
				EnergyWeight: rng.Float64() * 3,
			}
		}
		sc.Classes = append(sc.Classes, c)
	}
	hasTable := false
	for _, c := range sc.Classes {
		if len(c.Placements) > 0 {
			hasTable = true
		}
	}
	if hasTable && rng.Intn(3) == 0 {
		// Sometimes a global budget controller on top, over a wide budget
		// range so both the binding and the slack regimes are exercised.
		sc.Global = &GlobalConfig{
			EpochSec:     0.2 + rng.Float64(),
			BudgetW:      math.Exp(rng.Float64()*12 - 6), // ~2.5 mW .. 400 W
			HighSec:      rng.Float64(),
			MoveFraction: 0.1 + rng.Float64()*0.9,
		}
	}
	return sc
}

func TestRandomScenarioInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 60; iter++ {
		sc := randomScenario(rng)
		res, err := Run(sc)
		if err != nil {
			t.Fatalf("iter %d: %v\nscenario: %+v", iter, err, sc)
		}
		// Every tier respects capacity over the whole run, and the
		// accounting identity holds per class.
		for _, ti := range res.Tiers {
			if ti.Utilization < 0 || ti.Utilization > 1+1e-9 {
				t.Fatalf("iter %d: tier %s utilization %v", iter, ti.Name, ti.Utilization)
			}
		}
		for _, s := range res.Classes {
			if s.Offloaded+s.DroppedQueue+s.DroppedEnergy > s.Captured {
				t.Fatalf("iter %d: accounting leak in %s: %+v", iter, s.Name, s)
			}
			if s.DropRate() < 0 || s.DropRate() > 1 {
				t.Fatalf("iter %d: drop rate %v", iter, s.DropRate())
			}
		}
		if res.SimEnd < sc.Duration {
			t.Fatalf("iter %d: SimEnd %v before duration %v", iter, res.SimEnd, sc.Duration)
		}
		// Determinism: the same scenario replays byte-identically.
		again, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		if res.Table() != again.Table() {
			t.Fatalf("iter %d: nondeterministic result:\n%s\nvs\n%s", iter, res.Table(), again.Table())
		}
	}
}
