package fleet

import (
	"encoding/json"
	"reflect"
	"testing"
)

// Seed corpus: the examples/fleet-sweep flat scenario, the tiered
// topology + policy format, and a few near-miss inputs.
var fuzzSeeds = []string{
	// flat mixed fleet (examples/fleet-sweep)
	`{
	  "name": "corridor-mixed", "seed": 1, "duration_sec": 20,
	  "uplink": {"gbps": 1, "contention": "fair-share"},
	  "classes": [
	    {"name": "faceauth-door", "count": 120, "fps": 1, "arrival": "poisson",
	     "frame_bytes": 400, "offload_prob": 0.1, "compute_sec": 0.02,
	     "capture_j": 3.3e-6, "compute_j": 3e-7,
	     "tx_fixed_j": 2e-6, "tx_per_byte_j": 4.8e-10,
	     "harvest_w": 2e-4, "store_j": 0.07},
	    {"name": "vr-lobby", "count": 12, "fps": 30,
	     "frame_bytes": 1122000, "compute_sec": 0.0316,
	     "capture_j": 5e-3, "compute_j": 0.316,
	     "tx_fixed_j": 1e-4, "tx_per_byte_j": 4e-8}
	  ]
	}`,
	// tiered topology with an adaptive placement table
	`{
	  "name": "two-gw", "seed": 7, "duration_sec": 8,
	  "uplink": {"gbps": 4, "contention": "fair-share"},
	  "gateways": [
	    {"name": "gw-a", "uplink": {"gbps": 2, "contention": "fair-share"}},
	    {"name": "gw-b", "uplink": {"gbps": 2, "contention": "fifo"}}
	  ],
	  "classes": [
	    {"name": "vr-a", "count": 4, "fps": 30, "gateway": "gw-a",
	     "capture_j": 5e-3, "tx_fixed_j": 1e-4, "tx_per_byte_j": 4e-8,
	     "placements": [
	       {"name": "S~", "frame_bytes": 12361551, "compute_sec": 0.0001},
	       {"name": "full", "frame_bytes": 1122000, "compute_sec": 0.0316, "compute_j": 0.316}
	     ],
	     "policy": {"kind": "latency-threshold", "interval_sec": 0.5,
	                "high_sec": 0.2, "move_fraction": 0.5}},
	    {"name": "fa-b", "count": 60, "fps": 1, "arrival": "poisson",
	     "gateway": "gw-b", "frame_bytes": 400, "offload_prob": 0.05,
	     "compute_sec": 0.02, "harvest_w": 2e-4, "store_j": 0.07}
	  ]
	}`,
	// hysteresis policy
	`{"duration_sec": 2, "uplink": {"gbps": 1},
	  "classes": [{"name": "c", "count": 2, "fps": 5,
	    "placements": [{"frame_bytes": 1000}, {"frame_bytes": 10}],
	    "policy": {"kind": "hysteresis", "high_sec": 0.5}}]}`,
	// arbitrary-depth tier tree with per-hop propagation delay
	`{
	  "name": "deep", "seed": 5, "duration_sec": 4,
	  "tiers": [
	    {"name": "gw-a", "parent": "metro", "uplink": {"gbps": 2}, "propagation_sec": 0.0002},
	    {"name": "gw-b", "parent": "metro", "uplink": {"gbps": 2, "contention": "fifo"}, "propagation_sec": 0.0002},
	    {"name": "metro", "parent": "core", "uplink": {"gbps": 4}, "propagation_sec": 0.002},
	    {"name": "core", "uplink": {"gbps": 8}, "propagation_sec": 0.01}
	  ],
	  "classes": [
	    {"name": "vr-a", "count": 3, "fps": 30, "tier": "gw-a",
	     "frame_bytes": 1122000, "compute_sec": 0.03,
	     "capture_j": 5e-3, "tx_fixed_j": 1e-4, "tx_per_byte_j": 4e-8},
	    {"name": "fa-b", "count": 40, "fps": 1, "arrival": "poisson",
	     "tier": "gw-b", "frame_bytes": 400, "offload_prob": 0.05,
	     "compute_sec": 0.02, "harvest_w": 2e-4, "store_j": 0.07},
	    {"name": "direct", "count": 5, "fps": 2, "frame_bytes": 10000}
	  ]
	}`,
	// invalid inputs the decoder must reject gracefully
	`{"duration_sec": -1}`,
	`{"duration_sec": 2, "uplink": {"gbps": 1}, "gateways": [{"name": ""}], "classes": []}`,
	`not json at all`,
	`{"classes": [{"count": 1e999}]}`,
	// tier trees the topology resolver must reject: no root, a parent
	// cycle, a duplicate name, mixing tiers with gateways, negative delay
	`{"duration_sec": 1, "tiers": [{"name": "a", "parent": "b", "uplink": {"gbps": 1}},
	  {"name": "b", "parent": "a", "uplink": {"gbps": 1}}],
	  "classes": [{"name": "c", "count": 1, "fps": 1}]}`,
	`{"duration_sec": 1, "tiers": [{"name": "a", "uplink": {"gbps": 1}},
	  {"name": "a", "uplink": {"gbps": 1}}],
	  "classes": [{"name": "c", "count": 1, "fps": 1}]}`,
	`{"duration_sec": 1, "uplink": {"gbps": 1},
	  "tiers": [{"name": "a", "uplink": {"gbps": 1}}],
	  "gateways": [{"name": "g", "uplink": {"gbps": 1}}],
	  "classes": [{"name": "c", "count": 1, "fps": 1}]}`,
	`{"duration_sec": 1, "tiers": [{"name": "a", "uplink": {"gbps": 1}, "propagation_sec": -0.1}],
	  "classes": [{"name": "c", "count": 1, "fps": 1}]}`,
	// energy-aware placement: per-link forwarding energy, the
	// energy-latency policy and the global budget controller
	`{
	  "name": "energy", "seed": 9, "duration_sec": 4,
	  "tiers": [
	    {"name": "gw", "parent": "core", "uplink": {"gbps": 4}, "propagation_sec": 0.0002, "tx_per_byte_j": 2e-8},
	    {"name": "core", "uplink": {"gbps": 8}, "propagation_sec": 0.002, "tx_per_byte_j": 1e-8}
	  ],
	  "global": {"epoch_sec": 1, "budget_w": 25, "high_sec": 0.5, "move_fraction": 0.5},
	  "classes": [
	    {"name": "vr", "count": 2, "fps": 10, "tier": "gw",
	     "capture_j": 5e-3, "tx_fixed_j": 1e-4, "tx_per_byte_j": 4e-8,
	     "placements": [
	       {"name": "raw", "frame_bytes": 12400000, "compute_sec": 0.0001},
	       {"name": "full", "frame_bytes": 1122000, "compute_sec": 0.0316, "compute_j": 0.316}
	     ],
	     "policy": {"kind": "energy-latency", "interval_sec": 0.5,
	                "high_sec": 0.5, "energy_weight": 1}}
	  ]
	}`,
	// energy configs the validator must reject: a budget-less global
	// section, a global with nothing to reassign, negative forwarding
	// energy, a negative energy weight, and a misspelled field (strict
	// decoding rejects unknown keys)
	`{"duration_sec": 1, "uplink": {"gbps": 1}, "global": {"epoch_sec": 1},
	  "classes": [{"name": "c", "count": 1, "fps": 1,
	    "placements": [{"frame_bytes": 10}]}]}`,
	`{"duration_sec": 1, "uplink": {"gbps": 1}, "global": {"budget_w": 5},
	  "classes": [{"name": "c", "count": 1, "fps": 1}]}`,
	`{"duration_sec": 1, "tiers": [{"name": "a", "uplink": {"gbps": 1}, "tx_per_byte_j": -1}],
	  "classes": [{"name": "c", "count": 1, "fps": 1}]}`,
	`{"duration_sec": 1, "uplink": {"gbps": 1},
	  "classes": [{"name": "c", "count": 1, "fps": 1,
	    "placements": [{"frame_bytes": 10}],
	    "policy": {"kind": "energy-latency", "high_sec": 1, "energy_weight": -2}}]}`,
	`{"duration_sec": 1, "uplink": {"gbps": 1}, "budget_w": 5,
	  "classes": [{"name": "c", "count": 1, "fps": 1}]}`,
	// bidirectional tiers with a federated-learning job: downlinks on the
	// broadcast span, payloads sized from the model's layer vector
	`{
	  "name": "fl", "seed": 3, "duration_sec": 4,
	  "tiers": [
	    {"name": "gw", "parent": "core", "uplink": {"gbps": 2}, "propagation_sec": 0.0002,
	     "downlink": {"gbps": 1, "contention": "fifo", "propagation_sec": 0.0002}},
	    {"name": "core", "uplink": {"gbps": 8}, "propagation_sec": 0.01,
	     "downlink": {"gbps": 4}}
	  ],
	  "classes": [
	    {"name": "fa", "count": 12, "fps": 2, "arrival": "poisson", "tier": "gw",
	     "frame_bytes": 200000, "offload_prob": 0.25, "compute_sec": 0.01}
	  ],
	  "federated": {"rounds": 3, "classes": ["fa"], "compute_sec": 0.5, "jitter_sec": 0.2,
	    "model": {"layers": [400, 8, 1], "bytes_per_weight": 4, "compress": 0.5}}
	}`,
	// federated configs the validator must reject: a span tier without a
	// downlink, zero rounds, compress out of range, the gateways form
	// (no downlinks to broadcast on), an unknown participant class, and a
	// downlink with a bogus contention model
	`{"duration_sec": 1, "tiers": [{"name": "a", "uplink": {"gbps": 1}}],
	  "classes": [{"name": "c", "count": 1, "fps": 1, "frame_bytes": 10}],
	  "federated": {"rounds": 1, "update_bytes": 100}}`,
	`{"duration_sec": 1, "tiers": [{"name": "a", "uplink": {"gbps": 1}, "downlink": {"gbps": 1}}],
	  "classes": [{"name": "c", "count": 1, "fps": 1, "frame_bytes": 10}],
	  "federated": {"rounds": 0, "update_bytes": 100}}`,
	`{"duration_sec": 1, "tiers": [{"name": "a", "uplink": {"gbps": 1}, "downlink": {"gbps": 1}}],
	  "classes": [{"name": "c", "count": 1, "fps": 1, "frame_bytes": 10}],
	  "federated": {"rounds": 1, "model": {"layers": [4, 2], "compress": 7}}}`,
	`{"duration_sec": 1, "uplink": {"gbps": 1},
	  "gateways": [{"name": "g", "uplink": {"gbps": 1}}],
	  "classes": [{"name": "c", "count": 1, "fps": 1, "frame_bytes": 10, "gateway": "g"}],
	  "federated": {"rounds": 1, "update_bytes": 100}}`,
	`{"duration_sec": 1, "tiers": [{"name": "a", "uplink": {"gbps": 1}, "downlink": {"gbps": 1}}],
	  "classes": [{"name": "c", "count": 1, "fps": 1, "frame_bytes": 10}],
	  "federated": {"rounds": 1, "update_bytes": 100, "classes": ["ghost"]}}`,
	`{"duration_sec": 1, "tiers": [{"name": "a", "uplink": {"gbps": 1},
	  "downlink": {"gbps": 1, "contention": "magic"}}],
	  "classes": [{"name": "c", "count": 1, "fps": 1, "frame_bytes": 10}]}`,
	// finite tier compute: a valid two-tier pool with a per-class service
	// override, then the shapes the validator must reject — an unknown
	// discipline, a pool with no way to price service, a service entry for
	// a class that does not exist, a duplicated entry, negative cores, and
	// an offloading class crossing a pool that cannot price it
	`{
	  "duration_sec": 2, "seed": 7,
	  "tiers": [
	    {"name": "gw", "parent": "core", "uplink": {"gbps": 2},
	     "compute": {"cores": 2, "service_rate_fps": 30,
	                 "service_sec": [{"class": "fa", "sec": 0.002}],
	                 "discipline": "fair-share"}},
	    {"name": "core", "uplink": {"gbps": 8},
	     "compute": {"cores": 4, "service_rate_fps": 200}}
	  ],
	  "classes": [
	    {"name": "fa", "count": 4, "fps": 2, "tier": "gw", "frame_bytes": 4096}
	  ]
	}`,
	`{"duration_sec": 1, "tiers": [{"name": "a", "uplink": {"gbps": 1},
	  "compute": {"cores": 1, "service_rate_fps": 10, "discipline": "magic"}}],
	  "classes": [{"name": "c", "count": 1, "fps": 1, "frame_bytes": 10}]}`,
	`{"duration_sec": 1, "tiers": [{"name": "a", "uplink": {"gbps": 1},
	  "compute": {"cores": 1}}],
	  "classes": [{"name": "c", "count": 1, "fps": 1, "frame_bytes": 10}]}`,
	`{"duration_sec": 1, "tiers": [{"name": "a", "uplink": {"gbps": 1},
	  "compute": {"cores": 1, "service_rate_fps": 10,
	              "service_sec": [{"class": "ghost", "sec": 0.1}]}}],
	  "classes": [{"name": "c", "count": 1, "fps": 1, "frame_bytes": 10}]}`,
	`{"duration_sec": 1, "tiers": [{"name": "a", "uplink": {"gbps": 1},
	  "compute": {"cores": 1, "service_rate_fps": 10,
	              "service_sec": [{"class": "c", "sec": 0.1}, {"class": "c", "sec": 0.2}]}}],
	  "classes": [{"name": "c", "count": 1, "fps": 1, "frame_bytes": 10}]}`,
	`{"duration_sec": 1, "tiers": [{"name": "a", "uplink": {"gbps": 1},
	  "compute": {"cores": -1, "service_rate_fps": 10}}],
	  "classes": [{"name": "c", "count": 1, "fps": 1, "frame_bytes": 10}]}`,
	`{"duration_sec": 1, "tiers": [{"name": "a", "uplink": {"gbps": 1},
	  "compute": {"cores": 1, "service_sec": [{"class": "c", "sec": 0.1}]}}],
	  "classes": [{"name": "c", "count": 1, "fps": 1, "frame_bytes": 10},
	              {"name": "d", "count": 1, "fps": 1, "frame_bytes": 10, "tier": "a"}]}`,
	// streaming telemetry: sketch-backed quantiles with a windowed time
	// series
	`{
	  "name": "stream", "seed": 11, "duration_sec": 4,
	  "tiers": [
	    {"name": "gw", "parent": "core", "uplink": {"gbps": 2}, "propagation_sec": 0.0002},
	    {"name": "core", "uplink": {"gbps": 8}, "propagation_sec": 0.002}
	  ],
	  "classes": [
	    {"name": "fa", "count": 20, "fps": 5, "arrival": "poisson", "tier": "gw",
	     "frame_bytes": 100000, "offload_prob": 0.5, "compute_sec": 0.01, "queue_depth": 3}
	  ],
	  "telemetry": {"streaming": true, "window_sec": 0.5}
	}`,
	// telemetry configs the validator must reject: a window without
	// streaming (the time series rides the sketch path) and a negative
	// window
	`{"duration_sec": 1, "uplink": {"gbps": 1},
	  "classes": [{"name": "c", "count": 1, "fps": 1, "frame_bytes": 10}],
	  "telemetry": {"streaming": false, "window_sec": 1}}`,
	`{"duration_sec": 1, "uplink": {"gbps": 1},
	  "classes": [{"name": "c", "count": 1, "fps": 1, "frame_bytes": 10}],
	  "telemetry": {"streaming": true, "window_sec": -2}}`,
	// fleet dynamics: a full fault schedule over a two-gateway tree —
	// diurnal rate profile, recurring churn, an outage with a fallback,
	// recovery, a degraded-then-restored link, a core-pool rescale
	`{
	  "name": "dyn", "seed": 13, "duration_sec": 8,
	  "tiers": [
	    {"name": "gw-a", "parent": "core", "uplink": {"gbps": 0.2},
	     "compute": {"cores": 2, "service_rate_fps": 80}},
	    {"name": "gw-b", "parent": "core", "uplink": {"gbps": 0.2, "contention": "fifo"}},
	    {"name": "core", "uplink": {"gbps": 0.8}}
	  ],
	  "classes": [
	    {"name": "east", "count": 8, "fps": 5, "arrival": "poisson",
	     "frame_bytes": 100000, "tier": "gw-a", "queue_depth": 4},
	    {"name": "west", "count": 8, "fps": 5, "frame_bytes": 100000, "tier": "gw-b"}
	  ],
	  "dynamics": {"events": [
	    {"time_sec": 1, "kind": "fps_profile", "class": "east", "multiplier": 2},
	    {"time_sec": 1.5, "kind": "camera_join", "class": "east", "count": 2, "every_sec": 2},
	    {"time_sec": 2, "kind": "camera_leave", "class": "west"},
	    {"time_sec": 2.5, "kind": "compute_scale", "tier": "gw-a", "cores": 6},
	    {"time_sec": 3, "kind": "tier_outage", "tier": "gw-a", "fallback": "gw-b"},
	    {"time_sec": 4.5, "kind": "tier_recover", "tier": "gw-a"},
	    {"time_sec": 5, "kind": "link_degrade", "tier": "gw-b", "factor": 0.5},
	    {"time_sec": 6.5, "kind": "link_restore", "tier": "gw-b"}
	  ]}
	}`,
	// dynamics schedules the validator must reject: an unknown event kind,
	// a negative time, an out-of-order pair, a ghost tier, a factor out of
	// range, an outage that strands its attached class without a fallback,
	// and a misplaced knob on a churn event
	`{"duration_sec": 1, "uplink": {"gbps": 1},
	  "classes": [{"name": "c", "count": 1, "fps": 1, "frame_bytes": 10}],
	  "dynamics": {"events": [{"time_sec": 0.5, "kind": "meteor_strike"}]}}`,
	`{"duration_sec": 1, "uplink": {"gbps": 1},
	  "classes": [{"name": "c", "count": 1, "fps": 1, "frame_bytes": 10}],
	  "dynamics": {"events": [{"time_sec": -1, "kind": "camera_join", "class": "c"}]}}`,
	`{"duration_sec": 1, "uplink": {"gbps": 1},
	  "classes": [{"name": "c", "count": 1, "fps": 1, "frame_bytes": 10}],
	  "dynamics": {"events": [
	    {"time_sec": 0.8, "kind": "camera_join", "class": "c"},
	    {"time_sec": 0.2, "kind": "camera_leave", "class": "c"}]}}`,
	`{"duration_sec": 1, "uplink": {"gbps": 1},
	  "classes": [{"name": "c", "count": 1, "fps": 1, "frame_bytes": 10}],
	  "dynamics": {"events": [{"time_sec": 0.5, "kind": "link_degrade", "tier": "ghost", "factor": 0.5}]}}`,
	`{"duration_sec": 1, "uplink": {"gbps": 1},
	  "classes": [{"name": "c", "count": 1, "fps": 1, "frame_bytes": 10}],
	  "dynamics": {"events": [{"time_sec": 0.5, "kind": "link_degrade", "tier": "uplink", "factor": -2}]}}`,
	`{"duration_sec": 1,
	  "tiers": [{"name": "gw", "parent": "core", "uplink": {"gbps": 1}},
	            {"name": "core", "uplink": {"gbps": 1}}],
	  "classes": [{"name": "c", "count": 1, "fps": 1, "frame_bytes": 10, "tier": "gw"}],
	  "dynamics": {"events": [{"time_sec": 0.5, "kind": "tier_outage", "tier": "gw"}]}}`,
	`{"duration_sec": 1, "uplink": {"gbps": 1},
	  "classes": [{"name": "c", "count": 1, "fps": 1, "frame_bytes": 10}],
	  "dynamics": {"events": [{"time_sec": 0.5, "kind": "camera_join", "class": "c", "factor": 0.5}]}}`,
}

// FuzzScenarioDecode feeds arbitrary bytes to the scenario decoder:
// whatever the input, ParseScenario must either return an error or a
// scenario that validates, normalizes idempotently, and survives a
// marshal/re-parse round trip — and must never panic.
func FuzzScenarioDecode(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := ParseScenario(data)
		if err != nil {
			return
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("parsed scenario fails re-validation: %v", err)
		}
		if sc.Cameras() <= 0 {
			t.Fatalf("valid scenario with %d cameras", sc.Cameras())
		}
		// Normalize must be idempotent. Deep-copy first — a plain struct
		// copy would alias the backing storage and hide any second-pass
		// mutation. The reflection copy (deepcopy_test.go) preserves
		// nil-vs-empty exactly and covers every section by construction,
		// so one DeepEqual is the whole check. JSON cannot produce NaN,
		// so DeepEqual's NaN != NaN quirk cannot misfire here.
		norm := deepCopyScenario(sc)
		norm.Normalize()
		if !reflect.DeepEqual(norm, sc) {
			t.Fatalf("Normalize not idempotent:\n%+v\nvs\n%+v", norm, sc)
		}
		// A parsed scenario must survive a JSON round trip.
		out, err := json.Marshal(sc)
		if err != nil {
			t.Fatalf("valid scenario does not re-marshal: %v", err)
		}
		if _, err := ParseScenario(out); err != nil {
			t.Fatalf("re-marshaled scenario does not re-parse: %v\njson: %s", err, out)
		}
	})
}
