package fleet

import (
	"runtime"
	"sync"
)

// Outcome pairs one swept scenario's result with its error, in input
// order.
type Outcome struct {
	Result *Result
	Err    error
}

// Sweep runs independent scenarios across a worker pool and returns their
// outcomes indexed like the input. workers <= 0 uses GOMAXPROCS. Each run
// is internally deterministic, so the pool parallelizes across points
// without perturbing any point's numbers.
func Sweep(scenarios []Scenario, workers int) []Outcome {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}
	out := make([]Outcome, len(scenarios))
	if len(scenarios) == 0 {
		return out
	}
	jobs := make(chan int) //fleetvet:allow work distribution only; scenario indices carry no simulation state
	var wg sync.WaitGroup  //fleetvet:allow pool shutdown barrier; no result passes through it
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//fleetvet:allow workers parallelize across independent scenarios; each run stays single-threaded
		go func() {
			defer wg.Done()
			//fleetvet:allow job order is irrelevant: out[i] slots are disjoint per scenario
			for i := range jobs {
				res, err := Run(scenarios[i])
				out[i] = Outcome{Result: res, Err: err}
			}
		}()
	}
	for i := range scenarios {
		jobs <- i //fleetvet:allow dispatch order cannot reach results; outcomes index by input position
	}
	close(jobs)
	wg.Wait()
	return out
}
