package fleet

import (
	"math"
	"math/rand"
	"testing"
)

// TestPRNGReferenceVectors pins the compact stream to the splitmix64
// reference sequence: the generator IS the seeded-results contract now
// (doc.go "Performance"), so any change to the increment, the mixer, or
// the float conversion must show up here before it silently shifts every
// golden.
func TestPRNGReferenceVectors(t *testing.T) {
	cases := []struct {
		seed int64
		want [5]uint64
	}{
		// The canonical splitmix64 outputs for state 1.
		{1, [5]uint64{
			0x910a2dec89025cc1,
			0xbeeb8da1658eec67,
			0xf893a2eefb32555e,
			0x71c18690ee42c90b,
			0x71bb54d8d101b5b9,
		}},
		// A seed equal to the gamma itself must not degenerate.
		{int64(-7046029254386353131), [5]uint64{
			0x6e789e6aa1b965f4,
			0x06c45d188009454f,
			0xf88bb8a8724c81ec,
			0x1b39896a51a8749b,
			0x53cb9f0c747ea2ea,
		}},
	}
	for _, tc := range cases {
		p := newPRNG(tc.seed)
		for i, want := range tc.want {
			if got := p.Uint64(); got != want {
				t.Fatalf("seed %d draw %d: %#016x, want %#016x", tc.seed, i, got, want)
			}
		}
	}

	// The derived distributions are pure functions of Uint64; pin the
	// float conversion too (53-bit mantissa, [0,1)).
	p := newPRNG(42)
	wantF := []float64{0.74156487877182331, 0.1599103928769201, 0.27860113025513866}
	for i, want := range wantF {
		if got := p.Float64(); got != want {
			t.Fatalf("Float64 draw %d: %.17g, want %.17g", i, got, want)
		}
	}
}

func TestPRNGDistributionsInRange(t *testing.T) {
	p := newPRNG(7)
	for i := 0; i < 10_000; i++ {
		if f := p.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
		if e := p.ExpFloat64(); e < 0 || math.IsInf(e, 0) || math.IsNaN(e) {
			t.Fatalf("ExpFloat64 invalid: %v", e)
		}
		if n := p.Intn(7); n < 0 || n >= 7 {
			t.Fatalf("Intn(7) out of range: %d", n)
		}
	}
	mean := 0.0
	const draws = 200_000
	for i := 0; i < draws; i++ {
		mean += p.ExpFloat64()
	}
	mean /= draws
	if mean < 0.99 || mean > 1.01 {
		t.Fatalf("ExpFloat64 mean %v far from 1", mean)
	}
}

// TestPRNGIsSource64 keeps the stream pluggable into math/rand for any
// caller that needs the full rand.Rand surface over the compact state.
func TestPRNGIsSource64(t *testing.T) {
	p := newPRNG(3)
	r := rand.New(&p)
	for i := 0; i < 1000; i++ {
		if v := r.Int63(); v < 0 {
			t.Fatalf("Int63 negative: %d", v)
		}
	}
	p.Seed(3)
	first := p.Uint64()
	p.Seed(3)
	if again := p.Uint64(); again != first {
		t.Fatalf("Seed does not reposition the stream: %x vs %x", first, again)
	}
}

func TestPRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	p := newPRNG(1)
	p.Intn(0)
}
