package fleet

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refHeap adapts a slice + comparator to container/heap.Interface — the
// reference implementation the specialized heaps must match pop for pop.
type refHeap[T any] struct {
	items []T
	less  func(a, b T) bool
}

func (h *refHeap[T]) Len() int           { return len(h.items) }
func (h *refHeap[T]) Less(i, j int) bool { return h.less(h.items[i], h.items[j]) }
func (h *refHeap[T]) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *refHeap[T]) Push(x any)         { h.items = append(h.items, x.(T)) }
func (h *refHeap[T]) Pop() any {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}

// drive feeds an identical randomized push/pop interleaving (~60% pushes,
// then a full drain) through the specialized heap and the container/heap
// reference, comparing every popped element. The comparators impose a
// total order (unique tie-break keys), so the pop sequences must be
// identical element for element — the property that makes the heap swap
// output-invariant.
func drive[T comparable](t *testing.T, rng *rand.Rand, gen func(i int) T,
	less func(a, b T) bool, push func(T), pop func() T, size func() int) {
	t.Helper()
	ref := &refHeap[T]{less: less}
	const ops = 4000
	pushed := 0
	for i := 0; i < ops; i++ {
		if ref.Len() == 0 || rng.Float64() < 0.6 {
			it := gen(pushed)
			pushed++
			push(it)
			heap.Push(ref, it)
		} else {
			got, want := pop(), heap.Pop(ref).(T)
			if got != want {
				t.Fatalf("op %d: popped %+v, reference popped %+v", i, got, want)
			}
		}
		if size() != ref.Len() {
			t.Fatalf("op %d: size %d, reference %d", i, size(), ref.Len())
		}
	}
	for ref.Len() > 0 {
		got, want := pop(), heap.Pop(ref).(T)
		if got != want {
			t.Fatalf("drain: popped %+v, reference popped %+v", got, want)
		}
	}
	if size() != 0 {
		t.Fatalf("specialized heap retains %d items after drain", size())
	}
}

// TestHeapsMatchContainerHeap is the differential property test behind
// the boxing-free heap swap: randomized event, fair-share and link-index
// streams pop in exactly the order container/heap produced, so replacing
// the boxed heaps cannot have changed any simulation output.
func TestHeapsMatchContainerHeap(t *testing.T) {
	// Times are drawn from a small discrete set so ties are frequent and
	// the tie-break keys do real work.
	times := []float64{0, 0.25, 0.25, 1, 1, 1, 2.5, 7}

	t.Run("eventHeap", func(t *testing.T) {
		rng := rand.New(rand.NewSource(101))
		var h eventHeap
		drive(t, rng,
			func(i int) event {
				return event{
					t:    times[rng.Intn(len(times))],
					seq:  int64(i), // unique: the loop's scheduling counter
					kind: rng.Intn(6),
					cam:  int32(rng.Intn(50)),
				}
			},
			func(a, b event) bool { return a.t < b.t || (a.t == b.t && a.seq < b.seq) },
			func(ev event) { h.push(ev) },
			func() event { return h.pop() },
			func() int { return len(h) })
	})

	t.Run("psHeap", func(t *testing.T) {
		rng := rand.New(rand.NewSource(102))
		var h psHeap
		drive(t, rng,
			func(i int) psItem {
				return psItem{
					id:      i,
					bytes:   float64(rng.Intn(1000)),
					vfinish: times[rng.Intn(len(times))],
					seq:     int64(i), // unique: the uplink's admission counter
				}
			},
			func(a, b psItem) bool {
				return a.vfinish < b.vfinish || (a.vfinish == b.vfinish && a.seq < b.seq)
			},
			func(it psItem) { h.push(it) },
			func() psItem { return h.pop() },
			func() int { return len(h) })
	})

	t.Run("liHeap", func(t *testing.T) {
		rng := rand.New(rand.NewSource(103))
		var h liHeap
		drive(t, rng,
			func(i int) liEntry {
				// li is the unique tie-break here; in production stale
				// entries can tie a live one exactly, but peek's result is
				// invariant to their order, so unique keys lose no coverage.
				return liEntry{t: times[rng.Intn(len(times))], li: i, ver: uint64(rng.Intn(4))}
			},
			func(a, b liEntry) bool { return a.t < b.t || (a.t == b.t && a.li < b.li) },
			func(e liEntry) { h.push(e) },
			func() liEntry { return h.pop() },
			func() int { return len(h) })
	})
}
