package fleet

import (
	"os"
	"reflect"
	"strings"
	"testing"
)

// sectionTags walks the Scenario type graph and collects the json tag of
// every struct-valued field — the "sections" of the strictly-decoded
// scenario format (a struct, a pointer to one, or a slice of them), as
// opposed to scalar knobs. Growing the format grows this set
// automatically.
func sectionTags(t reflect.Type, visited map[reflect.Type]bool, tags map[string]bool) {
	if visited[t] {
		return
	}
	visited[t] = true
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if f.PkgPath != "" {
			continue // unexported: not part of the decoded format
		}
		name := strings.Split(f.Tag.Get("json"), ",")[0]
		ft := f.Type
		for ft.Kind() == reflect.Ptr || ft.Kind() == reflect.Slice || ft.Kind() == reflect.Array {
			ft = ft.Elem()
		}
		if ft.Kind() != reflect.Struct {
			continue
		}
		if name != "" && name != "-" {
			tags[name] = true
		}
		sectionTags(ft, visited, tags)
	}
}

// TestDocMentionsEveryScenarioSection is the docs-drift gate (run in the
// CI lint job): every section of the strictly-decoded scenario format
// must appear, quoted, in the package comment. A new section that ships
// without documentation fails here, naming itself.
func TestDocMentionsEveryScenarioSection(t *testing.T) {
	doc, err := os.ReadFile("doc.go")
	if err != nil {
		t.Fatal(err)
	}
	tags := map[string]bool{}
	sectionTags(reflect.TypeOf(Scenario{}), map[reflect.Type]bool{}, tags)
	if len(tags) < 10 {
		t.Fatalf("section walk found only %d sections — walker broken?", len(tags))
	}
	for tag := range tags {
		if !strings.Contains(string(doc), `"`+tag+`"`) {
			t.Errorf("scenario section %q is strictly decoded but undocumented in doc.go", tag)
		}
	}
}
