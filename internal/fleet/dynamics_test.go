package fleet

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

// dynamicsDemo is a two-gateway tree with enough traffic that an outage
// catches transfers in flight: slow gateway uplinks keep several frames
// resident per event.
func dynamicsDemo(seed int64) Scenario {
	return Scenario{
		Name:     "dynamics-demo",
		Seed:     seed,
		Duration: 8,
		Tiers: []Tier{
			{Name: "gw-a", Parent: "core", Uplink: UplinkConfig{Gbps: 0.002}},
			{Name: "gw-b", Parent: "core", Uplink: UplinkConfig{Gbps: 0.002, Contention: ContentionFIFO}},
			{Name: "core", Uplink: UplinkConfig{Gbps: 0.008}},
		},
		Classes: []Class{
			{Name: "east", Count: 12, FPS: 6, FrameBytes: 40_000, Tier: "gw-a", QueueDepth: 4},
			{Name: "west", Count: 12, FPS: 6, FrameBytes: 40_000, Tier: "gw-b", QueueDepth: 4},
		},
	}
}

// assertConserved checks the dynamics conservation property: every
// captured frame is accounted exactly once — completed, queue-dropped,
// energy-dropped, or dropped by an outage. The run has drained when the
// loop exits, so nothing can remain "queued" invisibly.
func assertConserved(t *testing.T, label string, res *Result) {
	t.Helper()
	for i := range res.Classes {
		s := &res.Classes[i]
		if got := s.Offloaded + s.DroppedQueue + s.DroppedEnergy + s.DroppedOutage; got != s.Captured {
			t.Errorf("%s: class %s: %d offloaded + %d dropQ + %d dropE + %d dropOutage = %d, captured %d",
				label, s.Name, s.Offloaded, s.DroppedQueue, s.DroppedEnergy, s.DroppedOutage, got, s.Captured)
		}
	}
}

// TestDynamicsEmptyScheduleIsIdentical pins the opt-in contract: a
// present dynamics section with an empty event list must be
// byte-identical to no section at all — the engine is never constructed.
func TestDynamicsEmptyScheduleIsIdentical(t *testing.T) {
	plain, err := Run(dynamicsDemo(7))
	if err != nil {
		t.Fatal(err)
	}
	sc := dynamicsDemo(7)
	sc.Dynamics = &DynamicsConfig{Events: []FleetEvent{}}
	empty, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Table() != empty.Table() {
		t.Fatalf("empty schedule perturbed the run:\n%s\nvs\n%s", plain.Table(), empty.Table())
	}
	if empty.Dynamics != nil {
		t.Fatal("empty schedule produced dynamics stats")
	}
	if !reflect.DeepEqual(plain.Classes, empty.Classes) || !reflect.DeepEqual(plain.Tiers, empty.Tiers) {
		t.Fatal("empty schedule perturbed class or tier stats")
	}
}

// TestDynamicsConservation drives churn, an outage/recovery cycle and a
// never-restored dead link across several seeds and holds the
// conservation property each time, alongside run-twice determinism.
func TestDynamicsConservation(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 11, 42} {
		sc := dynamicsDemo(seed)
		sc.Dynamics = &DynamicsConfig{Events: []FleetEvent{
			{Time: 0.5, Kind: DynCameraJoin, Class: "east", Count: 3, EverySec: 1.5},
			{Time: 1.0, Kind: DynCameraLeave, Class: "west", EverySec: 2},
			{Time: 2.0, Kind: DynTierOutage, Tier: "gw-a", Fallback: "gw-b"},
			{Time: 4.0, Kind: DynTierRecover, Tier: "gw-a"},
			{Time: 6.0, Kind: DynLinkDegrade, Tier: "gw-b", Factor: 0},
			// gw-b is never restored: everything parked on it at the end
			// must drain as accounted outage drops, not hang or vanish.
		}}
		a, err := Run(sc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		assertConserved(t, sc.Name, a)
		if a.Dynamics == nil || a.Dynamics.Events != 5 {
			t.Fatalf("seed %d: dynamics stats %+v", seed, a.Dynamics)
		}
		if a.Dynamics.Joined == 0 || a.Dynamics.Left == 0 || a.Dynamics.DroppedOutage == 0 {
			t.Fatalf("seed %d: schedule did not exercise churn and outage drops: %+v", seed, a.Dynamics)
		}
		b, err := Run(sc)
		if err != nil {
			t.Fatalf("seed %d: rerun: %v", seed, err)
		}
		if a.Table() != b.Table() {
			t.Fatalf("seed %d: dynamics run is not deterministic:\n%s\nvs\n%s", seed, a.Table(), b.Table())
		}
		if !reflect.DeepEqual(a.Dynamics, b.Dynamics) {
			t.Fatalf("seed %d: dynamics stats diverged between identical runs", seed)
		}
	}
}

// TestDynamicsOutageRehoming pins the outage lifecycle: downtime
// accrues exactly outage→recovery, in-flight transfers through the dead
// tier are dropped and attributed to it, the attached class re-homes to
// the fallback for the window (the fallback carries its traffic) and
// re-homes back on recovery.
func TestDynamicsOutageRehoming(t *testing.T) {
	sc := dynamicsDemo(3)
	sc.Dynamics = &DynamicsConfig{Events: []FleetEvent{
		{Time: 2, Kind: DynTierOutage, Tier: "gw-a", Fallback: "gw-b"},
		{Time: 5, Kind: DynTierRecover, Tier: "gw-a"},
	}}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	assertConserved(t, sc.Name, res)
	gwa := res.TierNamed("gw-a")
	if gwa.DowntimeSec != 3 {
		t.Fatalf("gw-a downtime = %v, want 3", gwa.DowntimeSec)
	}
	if gwa.OutageDrops == 0 || res.Classes[0].DroppedOutage == 0 {
		t.Fatalf("outage caught nothing in flight: tier %d, class %d", gwa.OutageDrops, res.Classes[0].DroppedOutage)
	}
	// 12 east cameras re-home out and back: 24 re-homings.
	if res.Dynamics.Rehomed != 24 || res.Classes[0].Rehomed != 24 {
		t.Fatalf("rehomed = %d (class %d), want 24", res.Dynamics.Rehomed, res.Classes[0].Rehomed)
	}
	if res.TierNamed("gw-b").DowntimeSec != 0 {
		t.Fatal("downtime leaked onto the healthy gateway")
	}
	// The fallback carried east's traffic during the window, so it served
	// strictly more than in the undisturbed run.
	plain, err := Run(dynamicsDemo(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.TierNamed("gw-b").ServedBytes <= plain.TierNamed("gw-b").ServedBytes {
		t.Fatalf("fallback served %v, undisturbed %v — re-homed traffic missing",
			res.TierNamed("gw-b").ServedBytes, plain.TierNamed("gw-b").ServedBytes)
	}
	if res.Classes[0].Offloaded == 0 {
		t.Fatal("east completed nothing despite the fallback")
	}
}

// TestDynamicsLinkDegradeRestore pins mid-run capacity rescale with
// conserved progress on both contention models: a degraded window slows
// completions (higher p95), a zero-factor park with a later restore
// loses nothing, and the tier's served bytes are conserved.
func TestDynamicsLinkDegradeRestore(t *testing.T) {
	for _, contention := range []string{ContentionFairShare, ContentionFIFO} {
		sc := dynamicsDemo(5)
		sc.Tiers[0].Uplink.Contention = contention
		sc.Dynamics = &DynamicsConfig{Events: []FleetEvent{
			{Time: 2, Kind: DynLinkDegrade, Tier: "gw-a", Factor: 0},
			{Time: 4, Kind: DynLinkRestore, Tier: "gw-a"},
		}}
		res, err := Run(sc)
		if err != nil {
			t.Fatalf("%s: %v", contention, err)
		}
		assertConserved(t, contention, res)
		// A parked-then-restored link drops nothing: frames stall and then
		// finish (or are queue-dropped at their cameras while parked).
		if res.Dynamics.DroppedOutage != 0 {
			t.Fatalf("%s: park+restore dropped %d frames", contention, res.Dynamics.DroppedOutage)
		}
		plain, err := Run(dynamicsDemo(5))
		if err != nil {
			t.Fatalf("%s: %v", contention, err)
		}
		if res.Classes[0].LatencyP95 <= plain.Classes[0].LatencyP95 {
			t.Fatalf("%s: two-second park did not raise east's p95 (%v vs %v)",
				contention, res.Classes[0].LatencyP95, plain.Classes[0].LatencyP95)
		}
	}
}

// TestDynamicsStallDrain pins the terminal stall path: a link degraded
// to zero and never restored must not hang the run — everything parked
// on it drains as accounted outage drops and the loop terminates.
func TestDynamicsStallDrain(t *testing.T) {
	for _, contention := range []string{ContentionFairShare, ContentionFIFO} {
		sc := dynamicsDemo(9)
		sc.Tiers[0].Uplink.Contention = contention
		sc.Dynamics = &DynamicsConfig{Events: []FleetEvent{
			{Time: 2, Kind: DynLinkDegrade, Tier: "gw-a", Factor: 0},
		}}
		res, err := Run(sc)
		if err != nil {
			t.Fatalf("%s: %v", contention, err)
		}
		assertConserved(t, contention, res)
		if res.Dynamics.DroppedOutage == 0 {
			t.Fatalf("%s: dead link stranded no frames — the stall path was not exercised", contention)
		}
		if res.TierNamed("gw-a").OutageDrops != res.Dynamics.DroppedOutage {
			t.Fatalf("%s: stall drops not attributed to the dead tier", contention)
		}
	}
}

// TestDynamicsFPSProfile pins the rate multiplier: doubling a class's
// rate mid-run captures more frames than the undisturbed run, halving
// captures fewer, and the other class is untouched either way.
func TestDynamicsFPSProfile(t *testing.T) {
	plain, err := Run(dynamicsDemo(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		mul  float64
		more bool
	}{{2, true}, {0.5, false}} {
		sc := dynamicsDemo(4)
		sc.Dynamics = &DynamicsConfig{Events: []FleetEvent{
			{Time: 4, Kind: DynFPSProfile, Class: "east", Multiplier: tc.mul},
		}}
		res, err := Run(sc)
		if err != nil {
			t.Fatalf("mul %v: %v", tc.mul, err)
		}
		if more := res.Classes[0].Captured > plain.Classes[0].Captured; more != tc.more {
			t.Fatalf("mul %v: east captured %d vs %d", tc.mul, res.Classes[0].Captured, plain.Classes[0].Captured)
		}
		if res.Classes[1].Captured != plain.Classes[1].Captured {
			t.Fatalf("mul %v: west's captures moved (%d vs %d)", tc.mul, res.Classes[1].Captured, plain.Classes[1].Captured)
		}
	}
}

// TestDynamicsChurnCounters pins churn bookkeeping: joins and leaves
// land in the class and run-wide counters, the final camera count moves
// accordingly, and joiners actually capture frames.
func TestDynamicsChurnCounters(t *testing.T) {
	sc := dynamicsDemo(6)
	sc.Dynamics = &DynamicsConfig{Events: []FleetEvent{
		{Time: 1, Kind: DynCameraJoin, Class: "east", Count: 5},
		{Time: 2, Kind: DynCameraLeave, Class: "west", Count: 3},
	}}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	assertConserved(t, sc.Name, res)
	if res.Classes[0].Joined != 5 || res.Classes[0].Cameras != 17 {
		t.Fatalf("east joined %d, cameras %d", res.Classes[0].Joined, res.Classes[0].Cameras)
	}
	if res.Classes[1].Left != 3 || res.Classes[1].Cameras != 9 {
		t.Fatalf("west left %d, cameras %d", res.Classes[1].Left, res.Classes[1].Cameras)
	}
	if res.Dynamics.Joined != 5 || res.Dynamics.Left != 3 {
		t.Fatalf("run-wide churn %+v", res.Dynamics)
	}
	plain, err := Run(dynamicsDemo(6))
	if err != nil {
		t.Fatal(err)
	}
	if res.Classes[0].Captured <= plain.Classes[0].Captured {
		t.Fatal("joiners captured nothing")
	}
	if res.Classes[1].Captured >= plain.Classes[1].Captured {
		t.Fatal("leavers kept capturing")
	}
}

// TestDynamicsJoinDoesNotPerturbExistingCameras pins seed-family
// isolation: adding a second, traffic-free class plus a churn schedule
// for it leaves the first class's results bit-identical — existing
// cameras' streams and the shared links never see the difference.
func TestDynamicsJoinDoesNotPerturbExistingCameras(t *testing.T) {
	base := dynamicsDemo(8)
	base.Classes = base.Classes[:1]
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	sc := dynamicsDemo(8)
	sc.Classes = append(sc.Classes[:1], Class{Name: "ghost", Count: 2, FPS: 1, Tier: "gw-b"})
	sc.Dynamics = &DynamicsConfig{Events: []FleetEvent{
		{Time: 1, Kind: DynCameraJoin, Class: "ghost", Count: 4, EverySec: 1},
	}}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Classes[0], res.Classes[0]) {
		t.Fatalf("ghost churn perturbed east:\n%+v\nvs\n%+v", plain.Classes[0], res.Classes[0])
	}
}

// TestDynamicsComputeScale pins the scheduled core-pool resize: scaling
// the pool up mid-run relieves queueing (lower wait p95 than the
// undersized constant pool), conserves frames, and replays exactly.
func TestDynamicsComputeScale(t *testing.T) {
	shape := func() Scenario {
		sc := dynamicsDemo(10)
		sc.Tiers[0].Compute = &ComputeConfig{Cores: 1, ServiceRateFPS: 40}
		return sc
	}
	slow, err := Run(shape())
	if err != nil {
		t.Fatal(err)
	}
	sc := shape()
	sc.Dynamics = &DynamicsConfig{Events: []FleetEvent{
		{Time: 1, Kind: DynComputeScale, Tier: "gw-a", Cores: 8},
	}}
	fast, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	assertConserved(t, sc.Name, fast)
	sw, fw := slow.TierNamed("gw-a").Compute, fast.TierNamed("gw-a").Compute
	if fw.WaitP95 >= sw.WaitP95 {
		t.Fatalf("8-core rescale did not relieve queueing: wait p95 %v vs %v", fw.WaitP95, sw.WaitP95)
	}
	again, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Table() != again.Table() {
		t.Fatal("compute_scale run is not deterministic")
	}
}

// TestDynamicsTelemetryAvailability pins the per-window availability
// columns: downtime seconds sum to the tier's run-wide downtime, the
// capacity fraction reflects the degraded window, outage drops land in
// their windows, and the CSV gains exactly the three new columns.
func TestDynamicsTelemetryAvailability(t *testing.T) {
	sc := dynamicsDemo(12)
	sc.Telemetry = &TelemetryConfig{Streaming: true, WindowSec: 1}
	sc.Dynamics = &DynamicsConfig{Events: []FleetEvent{
		{Time: 2, Kind: DynTierOutage, Tier: "gw-a", Fallback: "gw-b"},
		{Time: 4, Kind: DynTierRecover, Tier: "gw-a"},
		{Time: 5, Kind: DynLinkDegrade, Tier: "gw-b", Factor: 0.5},
		{Time: 7, Kind: DynLinkRestore, Tier: "gw-b"},
	}}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	ts := res.TimeSeries
	if ts == nil || len(ts.Windows) == 0 {
		t.Fatal("no time series")
	}
	var downA, dropOutage float64
	for _, win := range ts.Windows {
		if len(win.TierDownSec) != len(win.TierUtil) || len(win.TierCapFrac) != len(win.TierUtil) {
			t.Fatalf("availability columns misshapen: %+v", win)
		}
		downA += win.TierDownSec[0]
		for ci := range win.Classes {
			dropOutage += float64(win.Classes[ci].DroppedOutage)
		}
		for li, f := range win.TierCapFrac {
			if !(f >= 0) || math.IsInf(f, 0) {
				t.Fatalf("window %d link %d cap frac %v", win.Index, li, f)
			}
		}
	}
	if math.Abs(downA-res.TierNamed("gw-a").DowntimeSec) > 1e-9 {
		t.Fatalf("windowed downtime %v, run-wide %v", downA, res.TierNamed("gw-a").DowntimeSec)
	}
	if int64(dropOutage) != res.Total.DroppedOutage {
		t.Fatalf("windowed outage drops %v, run-wide %d", dropOutage, res.Total.DroppedOutage)
	}
	// Window [5,6) ran gw-b at factor 0.5 throughout.
	if got := ts.Windows[5].TierCapFrac[1]; math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("degraded window cap frac = %v, want 0.5", got)
	}
	if got := ts.Windows[2].TierDownSec[0]; math.Abs(got-1) > 1e-9 {
		t.Fatalf("outage window downtime = %v, want 1", got)
	}
	var csv strings.Builder
	if err := ts.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	header, _, _ := strings.Cut(csv.String(), "\n")
	if !strings.HasSuffix(header, ",utilization,dropped_outage,down_sec,cap_frac") {
		t.Fatalf("CSV header missing availability columns: %q", header)
	}
}

// TestDynamicsValidation walks the schedule's rejection surface.
func TestDynamicsValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		evs  []FleetEvent
		want string
	}{
		{"unknown kind", []FleetEvent{{Time: 1, Kind: "meteor_strike"}}, "unknown event kind"},
		{"negative time", []FleetEvent{{Time: -1, Kind: DynCameraJoin, Class: "east"}}, "finite and non-negative"},
		{"out of order", []FleetEvent{
			{Time: 2, Kind: DynCameraJoin, Class: "east"},
			{Time: 1, Kind: DynCameraJoin, Class: "east"},
		}, "time-ordered"},
		{"ghost class", []FleetEvent{{Time: 1, Kind: DynCameraJoin, Class: "nope"}}, `unknown class "nope"`},
		{"ghost tier", []FleetEvent{{Time: 1, Kind: DynLinkDegrade, Tier: "nope", Factor: 0.5}}, `unknown tier "nope"`},
		{"negative factor", []FleetEvent{{Time: 1, Kind: DynLinkDegrade, Tier: "gw-a", Factor: -0.5}}, "out of range"},
		{"misplaced factor", []FleetEvent{{Time: 1, Kind: DynCameraJoin, Class: "east", Factor: 0.5}}, "factor belongs"},
		{"misplaced multiplier", []FleetEvent{{Time: 1, Kind: DynTierRecover, Tier: "gw-a", Multiplier: 2}}, "multiplier belongs"},
		{"root outage", []FleetEvent{{Time: 1, Kind: DynTierOutage, Tier: "core"}}, "root tier cannot fail"},
		{"double outage", []FleetEvent{
			{Time: 1, Kind: DynTierOutage, Tier: "gw-a", Fallback: "gw-b"},
			{Time: 2, Kind: DynTierOutage, Tier: "gw-a", Fallback: "gw-b"},
		}, "already down"},
		{"recover while up", []FleetEvent{{Time: 1, Kind: DynTierRecover, Tier: "gw-a"}}, "not down"},
		{"stranded without fallback", []FleetEvent{{Time: 1, Kind: DynTierOutage, Tier: "gw-a"}}, "needs a fallback"},
		{"fallback is self", []FleetEvent{{Time: 1, Kind: DynTierOutage, Tier: "gw-a", Fallback: "gw-a"}}, "failing tier itself"},
		{"zero multiplier", []FleetEvent{{Time: 1, Kind: DynFPSProfile, Class: "east", Multiplier: 0}}, "must be positive"},
		{"compute scale without pool", []FleetEvent{{Time: 1, Kind: DynComputeScale, Tier: "gw-a", Cores: 2}}, "no compute section"},
	} {
		sc := dynamicsDemo(1)
		sc.Dynamics = &DynamicsConfig{Events: tc.evs}
		if _, err := Run(sc); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	// A fallback whose offload path crosses the failing tier is useless.
	sc := dynamicsDemo(1)
	sc.Tiers = []Tier{
		{Name: "leaf", Parent: "mid", Uplink: UplinkConfig{Gbps: 1}},
		{Name: "mid", Parent: "core", Uplink: UplinkConfig{Gbps: 1}},
		{Name: "core", Uplink: UplinkConfig{Gbps: 1}},
	}
	sc.Classes = []Class{{Name: "east", Count: 2, FPS: 1, FrameBytes: 1000, Tier: "mid"}}
	sc.Dynamics = &DynamicsConfig{Events: []FleetEvent{
		{Time: 1, Kind: DynTierOutage, Tier: "mid", Fallback: "leaf"},
	}}
	if _, err := Run(sc); err == nil || !strings.Contains(err.Error(), "offloads through the failing tier") {
		t.Errorf("fallback through failing tier: err = %v", err)
	}
	// Dynamics cannot ride alongside a federated job.
	sc = dynamicsDemo(1)
	fl := FederatedDemoScenario(1)
	sc.Federated = fl.Federated
	sc.Dynamics = &DynamicsConfig{Events: []FleetEvent{
		{Time: 1, Kind: DynCameraJoin, Class: "east"},
	}}
	if _, err := Run(sc); err == nil || !strings.Contains(err.Error(), "federated") {
		t.Errorf("federated combo: err = %v", err)
	}
}
