package fleet

import (
	"fmt"
	"math"
)

// Tier is one node of an arbitrary-depth tier tree: an aggregation point
// whose Uplink carries traffic one hop toward the cloud. Parent names the
// tier this one's uplink feeds into; exactly one tier (the root) leaves it
// empty, and its uplink is the final hop out of the simulated network.
// PropagationSec is the one-way propagation delay of the uplink: a transfer
// finishing transmission on this tier's link arrives at the parent (or, from
// the root, at the cloud) that much later.
type Tier struct {
	Name           string       `json:"name"`
	Parent         string       `json:"parent,omitempty"`
	Uplink         UplinkConfig `json:"uplink"`
	PropagationSec float64      `json:"propagation_sec,omitempty"`
	// Downlink, when present, gives the tier a link in the opposite
	// direction — parent→tier, or cloud→root at the root — with its own
	// capacity, contention discipline and one-way propagation delay. It
	// carries root→leaf traffic (today the federated model broadcast)
	// and leaves the uplink untouched: a scenario without downlinks
	// simulates exactly as before.
	Downlink *DownlinkConfig `json:"downlink,omitempty"`
	// Compute, when present, gives the tier a finite pool of cores that
	// every offloaded frame must be serviced by before this tier forwards
	// it up its uplink — queueing plus service become part of end-to-end
	// latency (see ComputeConfig). A tier without the section processes
	// frames instantaneously, exactly as before the section existed.
	Compute *ComputeConfig `json:"compute,omitempty"`
	// TxPerByteJ is the network-side forwarding energy this link spends
	// per payload byte it serves (switch fabric, line drivers, backhaul
	// radio — see energy.ForwardPerByteJ for a default figure). It feeds
	// two places: observed ServedBytes × TxPerByteJ is the tier's
	// ForwardJ in the results, and the placement controllers charge a
	// class's offload bytes the summed TxPerByteJ of every hop between
	// its attach tier and the root when scoring placement energy.
	TxPerByteJ float64 `json:"tx_per_byte_j,omitempty"`
}

// DownlinkConfig sizes one tier's parent→tier link: capacity, contention
// discipline (the same fair-share/FIFO models as uplinks) and one-way
// propagation delay. The uplink's PropagationSec belongs to the Tier
// because the legacy forms predate downlinks; a downlink carries its own.
type DownlinkConfig struct {
	Gbps           float64 `json:"gbps"`
	Contention     string  `json:"contention"` // ContentionFairShare (default) or ContentionFIFO
	PropagationSec float64 `json:"propagation_sec,omitempty"`
}

// BytesPerSecond returns the downlink's payload capacity.
func (d DownlinkConfig) BytesPerSecond() float64 { return d.Gbps * 1e9 / 8 }

// uplinkConfig views the downlink as a plain link configuration, for the
// shared validation and link construction paths.
func (d DownlinkConfig) uplinkConfig() UplinkConfig {
	return UplinkConfig{Gbps: d.Gbps, Contention: d.Contention}
}

// tierNode is one resolved node of a scenario's tier tree, produced by
// Scenario.topology: the declared Tier plus its parent's index and its hop
// distance from the root.
type tierNode struct {
	Tier
	parent int // index into the node slice, -1 at the root
	depth  int // hops below the root link; the root is 0
}

// topology resolves the scenario's network into its tier tree. The three
// scenario forms normalize as follows:
//
//   - "tiers" present: the declared tree, in declaration order.
//   - "gateways" present: a depth-2 tree — each gateway a leaf, the
//     top-level "uplink" its shared root, named "wan".
//   - neither: the single root link "wan" (the flat model).
//
// Node order is declaration order with the synthesized root last, so link
// indices — and therefore simultaneous-completion tie-breaks — are stable
// across releases for the legacy forms. Returns the nodes, the root's
// index, and the first validation error.
func (sc *Scenario) topology() ([]tierNode, int, error) {
	if len(sc.Tiers) == 0 {
		nodes := make([]tierNode, 0, len(sc.Gateways)+1)
		root := len(sc.Gateways)
		for _, gw := range sc.Gateways {
			nodes = append(nodes, tierNode{
				Tier:   Tier{Name: gw.Name, Parent: rootTierName, Uplink: gw.Uplink},
				parent: root,
				depth:  1,
			})
		}
		nodes = append(nodes, tierNode{
			Tier:   Tier{Name: rootTierName, Uplink: sc.Uplink},
			parent: -1,
		})
		for _, gw := range sc.Gateways {
			if gw.Name == rootTierName {
				return nil, 0, fmt.Errorf("fleet: scenario %q: gateway name %q is reserved for the top tier",
					sc.Name, rootTierName)
			}
		}
		return nodes, root, nil
	}

	if len(sc.Gateways) > 0 {
		return nil, 0, fmt.Errorf("fleet: scenario %q: tiers and gateways are mutually exclusive", sc.Name)
	}
	nodes := make([]tierNode, len(sc.Tiers))
	index := make(map[string]int, len(sc.Tiers))
	root := -1
	for i, ti := range sc.Tiers {
		if ti.Name == "" {
			return nil, 0, fmt.Errorf("fleet: scenario %q: tier %d has no name", sc.Name, i)
		}
		if _, dup := index[ti.Name]; dup {
			return nil, 0, fmt.Errorf("fleet: scenario %q: duplicate tier %q", sc.Name, ti.Name)
		}
		index[ti.Name] = i
		nodes[i] = tierNode{Tier: ti, parent: -1}
		if ti.Parent == "" {
			if root >= 0 {
				return nil, 0, fmt.Errorf("fleet: scenario %q: tiers %q and %q both claim the root (empty parent)",
					sc.Name, nodes[root].Name, ti.Name)
			}
			root = i
		}
	}
	if root < 0 {
		return nil, 0, fmt.Errorf("fleet: scenario %q: no root tier (every tier names a parent)", sc.Name)
	}
	for i := range nodes {
		if i == root {
			continue
		}
		pi, ok := index[nodes[i].Parent]
		if !ok {
			return nil, 0, fmt.Errorf("fleet: tier %q: unknown parent %q", nodes[i].Name, nodes[i].Parent)
		}
		if pi == i {
			return nil, 0, fmt.Errorf("fleet: tier %q is its own parent", nodes[i].Name)
		}
		nodes[i].parent = pi
	}
	// Depth doubles as the cycle check: a chain longer than the node count
	// can only mean the parent pointers loop.
	for i := range nodes {
		depth, at := 0, i
		for nodes[at].parent >= 0 {
			at = nodes[at].parent
			if depth++; depth > len(nodes) {
				return nil, 0, fmt.Errorf("fleet: tier %q: parent chain does not reach a root (cycle)", nodes[i].Name)
			}
		}
		nodes[i].depth = depth
	}
	return nodes, root, nil
}

// rootTierName names the synthesized top tier of the flat and gateway
// scenario forms (and the stat entry legacy callers look up).
const rootTierName = "wan"

// validateTopologyNodes checks a resolved tree's links and delays plus
// every class's attach point. The caller resolves nodes via topology(), so
// Run shares one resolution between validation and the simulation.
func (sc *Scenario) validateTopologyNodes(nodes []tierNode) error {
	names := make(map[string]bool, len(nodes))
	for _, nd := range nodes {
		// Classes may attach to any declared tier, but in the legacy
		// flat/gateway forms the synthesized root is not a valid attach
		// name — "gateway": "wan" stays the typo it always was (empty
		// already means the root).
		if len(sc.Tiers) > 0 || nd.parent >= 0 {
			names[nd.Name] = true
		}
		if err := validateUplink(nd.Uplink, fmt.Sprintf("tier %q", nd.Name)); err != nil {
			return err
		}
		if !(nd.PropagationSec >= 0) || math.IsInf(nd.PropagationSec, 0) {
			return fmt.Errorf("fleet: tier %q: propagation %v sec must be finite and non-negative",
				nd.Name, nd.PropagationSec)
		}
		if !(nd.TxPerByteJ >= 0) || math.IsInf(nd.TxPerByteJ, 0) {
			return fmt.Errorf("fleet: tier %q: forwarding energy %v J/byte must be finite and non-negative",
				nd.Name, nd.TxPerByteJ)
		}
		if d := nd.Downlink; d != nil {
			if err := validateUplink(d.uplinkConfig(), fmt.Sprintf("tier %q downlink", nd.Name)); err != nil {
				return err
			}
			if !(d.PropagationSec >= 0) || math.IsInf(d.PropagationSec, 0) {
				return fmt.Errorf("fleet: tier %q: downlink propagation %v sec must be finite and non-negative",
					nd.Name, d.PropagationSec)
			}
		}
		if len(sc.Tiers) > 0 && nd.parent < 0 &&
			sc.Uplink != (UplinkConfig{}) && sc.Uplink != nd.Uplink {
			// A zero-value Uplink is simply undeclared (Validate must also
			// work before Normalize mirrors the root into it); anything
			// else that disagrees with the root means the scenario declared
			// both — reject rather than silently prefer one, mirroring the
			// tiers/gateways exclusion.
			return fmt.Errorf("fleet: scenario %q: top-level uplink conflicts with root tier %q; omit \"uplink\" when \"tiers\" is given",
				sc.Name, nd.Name)
		}
	}
	for _, c := range sc.Classes {
		if c.Tier != "" && c.Gateway != "" && c.Tier != c.Gateway {
			return fmt.Errorf("fleet: class %q: tier %q and gateway %q disagree", c.Name, c.Tier, c.Gateway)
		}
		if at := c.attach(); at != "" && !names[at] {
			return fmt.Errorf("fleet: class %q: unknown tier %q", c.Name, at)
		}
	}
	return nil
}

// attach returns the name of the tier the class's cameras transmit on
// first; empty means the root.
func (c *Class) attach() string {
	if c.Tier != "" {
		return c.Tier
	}
	return c.Gateway
}
