package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"camsim/internal/core"
	"camsim/internal/energy"
	"camsim/internal/fleet/fl"
	"camsim/internal/platform"
	"camsim/internal/vr"
)

// Scenario describes one fleet simulation: a camera population, a network
// (either one shared uplink or a tiered gateway topology), and a duration.
// See the package comment for the JSON form.
type Scenario struct {
	Name     string  `json:"name"`
	Seed     int64   `json:"seed"`
	Duration float64 `json:"duration_sec"` // simulated seconds of capture
	// Uplink is the top-tier link. With no Gateways it is the single
	// shared uplink of the flat model; with Gateways it is the WAN link
	// every gateway's traffic funnels into.
	Uplink UplinkConfig `json:"uplink"`
	// Gateways, when non-empty, makes the network tiered: each class
	// attaches its cameras to one gateway (Class.Gateway), offloads cross
	// the finite camera→gateway link first and the shared WAN second, and
	// each tier runs its own contention discipline.
	Gateways []Gateway `json:"gateways,omitempty"`
	// Tiers, when non-empty, describes an arbitrary-depth tier tree
	// instead: each tier names its parent (one root leaves it empty),
	// carries its own uplink and a one-way propagation delay, and a
	// transfer rides every link from its class's attach point (Class.Tier)
	// to the root. Mutually exclusive with Gateways; the flat and gateway
	// forms are themselves normalized into depth-1 and depth-2 trees.
	Tiers   []Tier  `json:"tiers,omitempty"`
	Classes []Class `json:"classes"`
	// Global, when present, runs the fleet-wide energy-aware placement
	// controller: on a seeded epoch tick it sees every class's window
	// stats, scores placements on per-frame energy (camera-side transmit
	// plus per-hop forwarding along the tier tree), and reassigns cameras
	// so the fleet's projected placement power stays under BudgetW.
	Global *GlobalConfig `json:"global,omitempty"`
	// Federated, when present, runs a round-structured federated-learning
	// job over the tier tree: participating cameras push update blobs up
	// their attach tier's uplink, tiers aggregate fan-in blobs to one per
	// round, and the cloud broadcasts the merged model down the tree's
	// downlinks to start the next round. Requires the "tiers" form, with
	// a downlink on every tier of the broadcast span.
	Federated *fl.Config `json:"federated,omitempty"`
	// Telemetry, when present, opts the run into streaming statistics:
	// bounded-memory quantile sketches in place of exact per-class
	// latency sample sets, and (with a window) a per-window time series.
	// Absent, results are byte-identical to every release before the
	// section existed.
	Telemetry *TelemetryConfig `json:"telemetry,omitempty"`
	// Dynamics, when present with a non-empty schedule, injects
	// time-ordered fleet events into the run: camera churn, link
	// degradation, tier outages with re-homing, capture-rate profiles
	// and core-pool resizes. Absent — or present with an empty event
	// list — results are byte-identical to every release before the
	// section existed.
	Dynamics *DynamicsConfig `json:"dynamics,omitempty"`
}

// UplinkConfig sizes one shared link and names its contention model.
type UplinkConfig struct {
	Gbps       float64 `json:"gbps"`
	Contention string  `json:"contention"` // ContentionFairShare (default) or ContentionFIFO
}

// Gateway is one edge aggregation point: the cameras attached to it share
// its camera→gateway uplink before their traffic enters the WAN tier.
type Gateway struct {
	Name   string       `json:"name"`
	Uplink UplinkConfig `json:"uplink"`
}

// GatewayIndex returns the position of the named gateway, or -1.
func (sc *Scenario) GatewayIndex(name string) int {
	for i := range sc.Gateways {
		if sc.Gateways[i].Name == name {
			return i
		}
	}
	return -1
}

// BytesPerSecond returns the uplink's payload capacity.
func (u UplinkConfig) BytesPerSecond() float64 { return u.Gbps * 1e9 / 8 }

// Class is a population of identical cameras.
type Class struct {
	Name    string  `json:"name"`
	Count   int     `json:"count"`
	FPS     float64 `json:"fps"`     // capture rate per camera
	Arrival string  `json:"arrival"` // "periodic" (default) or "poisson"

	// FrameBytes is the offload payload per transmitted frame; 0 means the
	// class never offloads (a fully in-camera decision pipeline).
	FrameBytes int64 `json:"frame_bytes"`
	// OffloadProb is the fraction of captured frames that produce an
	// offload (a progressive-filtering pipeline ships only survivors).
	// Zero with FrameBytes > 0 is normalized to 1.
	OffloadProb float64 `json:"offload_prob"`
	// ComputeSeconds is the in-camera processing time per frame; the
	// offload enters the uplink that long after capture.
	ComputeSeconds float64 `json:"compute_sec"`
	// QueueDepth caps a camera's in-flight offloads; a frame captured at
	// the cap is dropped (backpressure). Zero is normalized to 4.
	QueueDepth int `json:"queue_depth"`

	// Per-frame energy model, joules.
	CaptureJ   float64 `json:"capture_j"`
	ComputeJ   float64 `json:"compute_j"`
	TxFixedJ   float64 `json:"tx_fixed_j"`
	TxPerByteJ float64 `json:"tx_per_byte_j"`

	// HarvestW > 0 marks the class energy-harvesting: each camera owns a
	// store of StoreJ joules charged at HarvestW watts, and skips frames
	// the store cannot pay for.
	HarvestW float64 `json:"harvest_w"`
	StoreJ   float64 `json:"store_j"`

	// Gateway attaches the class's cameras to the named gateway in a
	// tiered scenario; empty attaches them directly to the top-tier link.
	Gateway string `json:"gateway,omitempty"`
	// Tier attaches the class's cameras to the named node of a tier-tree
	// scenario (Scenario.Tiers); empty attaches them at the root. Gateway
	// is accepted as a synonym for the legacy two-tier form.
	Tier string `json:"tier,omitempty"`

	// Placements, when non-empty, is the class's runtime cost table:
	// each camera holds a current placement index and uses that row's
	// frame bytes / compute time / compute energy instead of the
	// class-level FrameBytes, ComputeSeconds and ComputeJ. Order the rows
	// from most-offload (index 0) to most-in-camera (last): the adaptive
	// policies step indices up under congestion and down when idle.
	Placements []PlacementCost `json:"placements,omitempty"`
	// Policy controls how cameras move through Placements at runtime.
	Policy PolicyConfig `json:"policy,omitempty"`
}

// PlacementCost is one row of a class's runtime cost table — the fleet
// mirror of core.CostEntry, carrying the per-frame numbers the simulator
// charges while a camera holds this placement.
type PlacementCost struct {
	Name           string  `json:"name"`
	FrameBytes     int64   `json:"frame_bytes"`
	ComputeSeconds float64 `json:"compute_sec"`
	ComputeJ       float64 `json:"compute_j"`
}

// PolicyConfig is a class's adaptive-placement policy: every IntervalSec
// of simulated time a per-class controller looks at the offload latencies
// and queue drops observed since its last decision and moves a fraction of
// the class's cameras along the Placements table.
type PolicyConfig struct {
	// Kind selects the decision rule: PolicyStatic (default, never moves),
	// PolicyLatencyThreshold (one-way escalation toward in-camera compute
	// when the window p95 exceeds HighSec or frames were queue-dropped) or
	// PolicyHysteresis (two thresholds: above HighSec step toward
	// in-camera, below LowSec step back toward offload, hold in between).
	Kind string `json:"kind,omitempty"`
	// IntervalSec is the control period; 0 is normalized to 1.
	IntervalSec float64 `json:"interval_sec,omitempty"`
	// HighSec is the congestion threshold on window p95 offload latency.
	HighSec float64 `json:"high_sec,omitempty"`
	// LowSec is the idle threshold (hysteresis only); 0 is normalized to
	// HighSec/4.
	LowSec float64 `json:"low_sec,omitempty"`
	// MoveFraction is the fraction of the class moved per decision; 0 is
	// normalized to 0.25. Which cameras move is drawn from the scenario's
	// seeded controller stream.
	MoveFraction float64 `json:"move_fraction,omitempty"`
	// Start is the initial placement index of every camera in the class.
	Start int `json:"start,omitempty"`
	// EnergyWeight (energy-latency policy only) converts joules per frame
	// into comparable seconds of latency: the controller moves cameras
	// toward an adjacent placement when the weighted per-frame energy
	// saving outweighs the latency it risks re-adding. Zero disables every
	// energy-motivated move, leaving exactly the latency-threshold rule.
	EnergyWeight float64 `json:"energy_weight,omitempty"`
}

// GlobalConfig configures the fleet-wide energy-aware placement
// controller. It runs above the per-class policies on its own epoch tick:
// each epoch it recomputes the fleet's projected placement power — every
// camera's per-frame energy at its current placement row times its capture
// rate — and greedily reassigns cameras (cheapest watts first, most p95
// headroom first) until the projection fits BudgetW.
type GlobalConfig struct {
	// EpochSec is the controller's decision period; 0 is normalized to 1.
	EpochSec float64 `json:"epoch_sec,omitempty"`
	// BudgetW is the fleet-wide placement power budget in watts (camera
	// energy plus per-hop network forwarding). Required and positive.
	BudgetW float64 `json:"budget_w"`
	// HighSec marks a class congested when its epoch-window p95 offload
	// latency exceeds it: congested classes get latency-relief moves and
	// are exempt from energy shedding that epoch. 0 means never congested.
	HighSec float64 `json:"high_sec,omitempty"`
	// MoveFraction caps the fraction of any one class reassigned per
	// epoch; 0 is normalized to 0.25.
	MoveFraction float64 `json:"move_fraction,omitempty"`
}

// Placement policy names.
const (
	PolicyStatic           = "static"
	PolicyLatencyThreshold = "latency-threshold"
	PolicyHysteresis       = "hysteresis"
	// PolicyEnergyLatency extends latency-threshold with energy-motivated
	// moves: congestion still escalates toward in-camera compute, but in
	// the absence of congestion the controller walks cameras toward the
	// adjacent placement whose weighted per-frame energy saving (see
	// PolicyConfig.EnergyWeight) beats the observed p95 it would risk.
	PolicyEnergyLatency = "energy-latency"
)

// adaptive reports whether the class runs a placement controller.
func (c *Class) adaptive() bool {
	return len(c.Placements) > 0 && c.Policy.Kind != PolicyStatic
}

// Arrival pattern names.
const (
	ArrivalPeriodic = "periodic"
	ArrivalPoisson  = "poisson"
)

// ParseScenario decodes, normalizes and validates a JSON scenario.
// Decoding is strict: an unknown field is an error, not silently ignored
// configuration — a misspelled knob in a scenario file must not run as if
// it were absent.
func ParseScenario(data []byte) (Scenario, error) {
	var sc Scenario
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return Scenario{}, fmt.Errorf("fleet: decoding scenario: %w", err)
	}
	// A scenario is one JSON object; trailing non-space content is a
	// second document, not padding.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return Scenario{}, fmt.Errorf("fleet: decoding scenario: trailing data after the scenario object")
	}
	sc.Normalize()
	if err := sc.Validate(); err != nil {
		return Scenario{}, err
	}
	return sc, nil
}

// Normalize fills defaulted fields in place: contention models (every
// tier), arrival pattern, queue depth, offload probability and the
// adaptive-policy knobs. It is idempotent.
func (sc *Scenario) Normalize() {
	// Whether the scenario declared any top-level uplink at all, before
	// defaults obscure it: a declared uplink is never overwritten by the
	// tier-tree mirror below (Validate rejects a disagreement instead).
	uplinkDeclared := sc.Uplink != (UplinkConfig{})
	if sc.Uplink.Contention == "" {
		sc.Uplink.Contention = ContentionFairShare
	}
	for i := range sc.Gateways {
		if sc.Gateways[i].Uplink.Contention == "" {
			sc.Gateways[i].Uplink.Contention = ContentionFairShare
		}
	}
	root := -1
	for i := range sc.Tiers {
		if sc.Tiers[i].Uplink.Contention == "" {
			sc.Tiers[i].Uplink.Contention = ContentionFairShare
		}
		if d := sc.Tiers[i].Downlink; d != nil && d.Contention == "" {
			d.Contention = ContentionFairShare
		}
		if cc := sc.Tiers[i].Compute; cc != nil {
			cc.normalize()
		}
		if sc.Tiers[i].Parent == "" && root < 0 {
			root = i
		}
	}
	if root >= 0 && !uplinkDeclared {
		// The tier tree is authoritative: mirror the root link into an
		// undeclared top-level Uplink so legacy display paths (Table
		// headers) and the flat-model accessors keep reporting the real
		// top tier.
		sc.Uplink = sc.Tiers[root].Uplink
	}
	for i := range sc.Classes {
		c := &sc.Classes[i]
		if c.Arrival == "" {
			c.Arrival = ArrivalPeriodic
		}
		if c.QueueDepth == 0 {
			c.QueueDepth = 4
		}
		if (c.FrameBytes > 0 || len(c.Placements) > 0) && c.OffloadProb == 0 {
			c.OffloadProb = 1
		}
		if len(c.Placements) > 0 {
			p := &c.Policy
			if p.Kind == "" {
				p.Kind = PolicyStatic
			}
			if p.IntervalSec == 0 {
				p.IntervalSec = 1
			}
			if p.MoveFraction == 0 {
				p.MoveFraction = 0.25
			}
			if p.Kind == PolicyHysteresis && p.LowSec == 0 {
				p.LowSec = p.HighSec / 4
			}
		}
	}
	if g := sc.Global; g != nil {
		if g.EpochSec == 0 {
			g.EpochSec = 1
		}
		if g.MoveFraction == 0 {
			g.MoveFraction = 0.25
		}
	}
	if sc.Federated != nil {
		sc.Federated.Normalize()
	}
	if sc.Dynamics != nil {
		sc.Dynamics.normalize()
	}
}

// validateUplink checks one tier's link configuration.
func validateUplink(u UplinkConfig, tier string) error {
	if !(u.Gbps > 0) || math.IsInf(u.Gbps, 0) {
		return fmt.Errorf("fleet: %s: uplink %v Gbps must be positive and finite", tier, u.Gbps)
	}
	if u.Contention != ContentionFairShare && u.Contention != ContentionFIFO {
		return fmt.Errorf("fleet: %s: unknown contention model %q", tier, u.Contention)
	}
	return nil
}

// Validate rejects scenarios the simulator cannot run.
func (sc *Scenario) Validate() error { return sc.validate(nil) }

// validate is Validate over an optionally pre-resolved tier tree: Run
// resolves the topology once and shares it, everyone else passes nil.
func (sc *Scenario) validate(nodes []tierNode) error {
	if !(sc.Duration > 0) || math.IsInf(sc.Duration, 0) {
		return fmt.Errorf("fleet: scenario %q: duration %v must be positive and finite", sc.Name, sc.Duration)
	}
	if len(sc.Tiers) == 0 {
		if err := validateUplink(sc.Uplink, fmt.Sprintf("scenario %q", sc.Name)); err != nil {
			return err
		}
	}
	for i, gw := range sc.Gateways {
		if gw.Name == "" {
			return fmt.Errorf("fleet: scenario %q: gateway %d has no name", sc.Name, i)
		}
		if sc.GatewayIndex(gw.Name) != i {
			return fmt.Errorf("fleet: scenario %q: duplicate gateway %q", sc.Name, gw.Name)
		}
		if err := validateUplink(gw.Uplink, fmt.Sprintf("gateway %q", gw.Name)); err != nil {
			return err
		}
	}
	if nodes == nil {
		var err error
		if nodes, _, err = sc.topology(); err != nil {
			return err
		}
	}
	if err := sc.validateTopologyNodes(nodes); err != nil {
		return err
	}
	if err := sc.validateComputeNodes(nodes); err != nil {
		return err
	}
	if len(sc.Classes) == 0 {
		return fmt.Errorf("fleet: scenario %q has no camera classes", sc.Name)
	}
	total := 0
	for _, c := range sc.Classes {
		if c.Count <= 0 {
			return fmt.Errorf("fleet: class %q: count %d must be positive", c.Name, c.Count)
		}
		if c.FPS <= 0 {
			return fmt.Errorf("fleet: class %q: fps %v must be positive", c.Name, c.FPS)
		}
		if c.Arrival != ArrivalPeriodic && c.Arrival != ArrivalPoisson {
			return fmt.Errorf("fleet: class %q: unknown arrival pattern %q", c.Name, c.Arrival)
		}
		if c.FrameBytes < 0 || c.ComputeSeconds < 0 || c.QueueDepth < 0 {
			return fmt.Errorf("fleet: class %q: negative frame bytes, compute time or queue depth", c.Name)
		}
		if c.OffloadProb < 0 || c.OffloadProb > 1 {
			return fmt.Errorf("fleet: class %q: offload probability %v outside [0,1]", c.Name, c.OffloadProb)
		}
		if c.CaptureJ < 0 || c.ComputeJ < 0 || c.TxFixedJ < 0 || c.TxPerByteJ < 0 {
			return fmt.Errorf("fleet: class %q: negative energy parameters", c.Name)
		}
		if c.HarvestW < 0 || (c.HarvestW > 0 && c.StoreJ <= 0) {
			return fmt.Errorf("fleet: class %q: harvesting needs positive harvest power and store", c.Name)
		}
		if err := c.validatePlacements(); err != nil {
			return err
		}
		total += c.Count
	}
	if total == 0 {
		return fmt.Errorf("fleet: scenario %q has no cameras", sc.Name)
	}
	if err := sc.validateGlobal(); err != nil {
		return err
	}
	if err := sc.validateFederated(nodes); err != nil {
		return err
	}
	if err := sc.validateTelemetry(); err != nil {
		return err
	}
	if err := sc.validateDynamics(nodes); err != nil {
		return err
	}
	return nil
}

// validateFederated checks the federated-learning section against the
// resolved tier tree by building (and discarding) the round engine — the
// same constructor Run uses, so validation and simulation cannot
// disagree about what is runnable.
func (sc *Scenario) validateFederated(nodes []tierNode) error {
	f := sc.Federated
	if f == nil {
		return nil
	}
	if err := f.Validate(); err != nil {
		return fmt.Errorf("fleet: scenario %q: %w", sc.Name, err)
	}
	if len(sc.Tiers) == 0 {
		return fmt.Errorf("fleet: scenario %q: federated learning needs a \"tiers\" topology (the model broadcast rides tier downlinks)", sc.Name)
	}
	topo, err := sc.flTopology(nodes)
	if err != nil {
		return err
	}
	if _, err := fl.NewEngine(*f, topo); err != nil {
		return fmt.Errorf("fleet: scenario %q: %w", sc.Name, err)
	}
	return nil
}

// flTopology builds the federated engine's view of the resolved tier
// tree: names, parent pointers, downlink presence, and the participating
// camera census per attach tier (every class when Federated.Classes is
// empty, else exactly the named ones).
func (sc *Scenario) flTopology(nodes []tierNode) (fl.Topology, error) {
	topo := fl.Topology{
		Names:   make([]string, len(nodes)),
		Parent:  make([]int, len(nodes)),
		Cams:    make([]int, len(nodes)),
		HasDown: make([]bool, len(nodes)),
		Root:    -1,
	}
	idx := make(map[string]int, len(nodes))
	for i, nd := range nodes {
		topo.Names[i] = nd.Name
		topo.Parent[i] = nd.parent
		topo.HasDown[i] = nd.Downlink != nil
		idx[nd.Name] = i
		if nd.parent < 0 {
			topo.Root = i
		}
	}
	part := make(map[string]bool, len(sc.Federated.Classes))
	for _, name := range sc.Federated.Classes {
		known := false
		for i := range sc.Classes {
			if sc.Classes[i].Name == name {
				known = true
				break
			}
		}
		if !known {
			return fl.Topology{}, fmt.Errorf("fleet: scenario %q: federated class %q not in the scenario", sc.Name, name)
		}
		part[name] = true
	}
	for i := range sc.Classes {
		c := &sc.Classes[i]
		if len(part) > 0 && !part[c.Name] {
			continue
		}
		ti := topo.Root
		if at := c.attach(); at != "" {
			ti = idx[at]
		}
		topo.Cams[ti] += c.Count
	}
	return topo, nil
}

// validateGlobal checks the fleet-wide controller configuration.
func (sc *Scenario) validateGlobal() error {
	g := sc.Global
	if g == nil {
		return nil
	}
	if !(g.BudgetW > 0) || math.IsInf(g.BudgetW, 0) {
		return fmt.Errorf("fleet: scenario %q: global budget %v W must be positive and finite", sc.Name, g.BudgetW)
	}
	if !(g.EpochSec > 0) || math.IsInf(g.EpochSec, 0) {
		return fmt.Errorf("fleet: scenario %q: global epoch %v sec must be positive and finite", sc.Name, g.EpochSec)
	}
	if !(g.HighSec >= 0) || math.IsInf(g.HighSec, 0) {
		return fmt.Errorf("fleet: scenario %q: global high_sec %v must be finite and non-negative", sc.Name, g.HighSec)
	}
	if !(g.MoveFraction > 0) || g.MoveFraction > 1 {
		return fmt.Errorf("fleet: scenario %q: global move fraction %v outside (0,1]", sc.Name, g.MoveFraction)
	}
	for _, c := range sc.Classes {
		if len(c.Placements) > 0 {
			return nil
		}
	}
	return fmt.Errorf("fleet: scenario %q: global controller with no placements table to reassign", sc.Name)
}

// validatePlacements checks the class's runtime cost table and policy.
func (c *Class) validatePlacements() error {
	p := &c.Policy
	if len(c.Placements) == 0 {
		if p.Kind != "" && p.Kind != PolicyStatic {
			return fmt.Errorf("fleet: class %q: policy %q without a placements table", c.Name, p.Kind)
		}
		return nil
	}
	for i, pc := range c.Placements {
		if pc.FrameBytes <= 0 {
			return fmt.Errorf("fleet: class %q: placement %d (%s) frame bytes %d must be positive",
				c.Name, i, pc.Name, pc.FrameBytes)
		}
		if pc.ComputeSeconds < 0 || pc.ComputeJ < 0 || math.IsNaN(pc.ComputeSeconds) || math.IsNaN(pc.ComputeJ) {
			return fmt.Errorf("fleet: class %q: placement %d (%s) has negative compute cost",
				c.Name, i, pc.Name)
		}
	}
	switch p.Kind {
	case PolicyStatic:
	case PolicyLatencyThreshold, PolicyHysteresis, PolicyEnergyLatency:
		if !(p.HighSec > 0) || math.IsInf(p.HighSec, 0) {
			return fmt.Errorf("fleet: class %q: policy %q needs a positive finite high_sec", c.Name, p.Kind)
		}
		if !(p.LowSec >= 0) || p.LowSec > p.HighSec {
			return fmt.Errorf("fleet: class %q: low_sec %v outside [0, high_sec %v]", c.Name, p.LowSec, p.HighSec)
		}
	default:
		return fmt.Errorf("fleet: class %q: unknown placement policy %q", c.Name, p.Kind)
	}
	if !(p.EnergyWeight >= 0) || math.IsInf(p.EnergyWeight, 0) {
		return fmt.Errorf("fleet: class %q: energy weight %v must be finite and non-negative", c.Name, p.EnergyWeight)
	}
	if !(p.IntervalSec > 0) || math.IsInf(p.IntervalSec, 0) {
		return fmt.Errorf("fleet: class %q: policy interval %v must be positive and finite", c.Name, p.IntervalSec)
	}
	if !(p.MoveFraction > 0) || p.MoveFraction > 1 {
		return fmt.Errorf("fleet: class %q: move fraction %v outside (0,1]", c.Name, p.MoveFraction)
	}
	if p.Start < 0 || p.Start >= len(c.Placements) {
		return fmt.Errorf("fleet: class %q: start placement %d outside table of %d", c.Name, p.Start, len(c.Placements))
	}
	return nil
}

// Cameras returns the total camera population.
func (sc *Scenario) Cameras() int {
	n := 0
	for _, c := range sc.Classes {
		n += c.Count
	}
	return n
}

// FaceAuthClass models the §III battery-free face-authentication camera as
// a fleet class. The per-frame energy comes from a core.EnergyPipeline
// assembled out of the internal/energy device models (streaming motion
// gate, Viola-Jones accelerator, accelerated NN over the multi-crop
// sweep); the offload is the 20×20 authentication chip shipped for frames
// that survive the whole chain, over the backscatter radio, on the
// harvested supply.
func FaceAuthClass(count int) Class {
	const (
		w, h  = 160, 120 // QVGA-class sensor, as in the E6 trace
		chipB = 20 * 20  // 8-bit authentication chip payload
	)
	sensor := energy.DefaultSensor()
	stream := energy.DefaultStreamAccel()
	vjAcc := energy.DefaultVJAccel()
	radio := energy.BackscatterRadio()
	harv := energy.DefaultHarvester()

	// Progressive filtering, E6 shape: the motion gate passes ~1 frame in
	// 5, detection finds a face on ~half of those, and every candidate face
	// is authenticated (15 crops through the accelerator, ~60 nJ each
	// including scaling — the cheap end of the chain).
	pixels := float64(w * h)
	ep := core.EnergyPipeline{
		CaptureEnergy: float64(sensor.CaptureEnergy(w, h)),
		Stages: []core.EnergyStage{
			{Name: "MD", EnergyPerFrame: pixels * float64(stream.MotionPerPixel), PassRate: 0.2},
			{Name: "VJ", EnergyPerFrame: float64(vjAcc.DetectEnergy(w*h, 40*int64(w*h)/100)), PassRate: 0.5},
			{Name: "NN", EnergyPerFrame: 15 * 60e-9, PassRate: 1},
		},
	}
	a, err := ep.Evaluate()
	if err != nil {
		panic(err) // constants above are valid by construction
	}
	computeJ := a.Total - a.Capture - a.Offload // radio cost is charged per offload below
	return Class{
		Name:           "faceauth",
		Count:          count,
		FPS:            1,
		Arrival:        ArrivalPoisson, // visits arrive, frames do not tick in lockstep
		FrameBytes:     chipB,
		OffloadProb:    a.OffloadShare,
		ComputeSeconds: 0.02,
		QueueDepth:     4,
		CaptureJ:       a.Capture,
		ComputeJ:       computeJ, // expected filtering energy per captured frame
		TxFixedJ:       radio.TxFixedJ(),
		TxPerByteJ:     radio.TxPerByteJ(),
		HarvestW:       float64(harv.HarvestPower),
		StoreJ:         float64(harv.UsableEnergy()),
	}
}

// VRDevicePowerWatts models the electrical draw of each Fig. 10
// implementation target while its block runs (ARM cores, discrete GPU,
// Zynq fabric).
var VRDevicePowerWatts = map[string]float64{"CPU": 5, "GPU": 60, "FPGA": 10}

// PaperVRPipeline assembles the Fig. 10 VR pipeline (paper byte model ×
// paper block throughputs) as a core.ThroughputPipeline, scaled to one
// camera's share of the 16-camera frame-set so a fleet node is a single
// camera head.
func PaperVRPipeline() *core.ThroughputPipeline {
	const rigCameras = 16
	m := vr.PaperByteModel()
	tp := platform.PaperThroughput()
	fps := func(block int, devs ...platform.Device) map[string]float64 {
		out := map[string]float64{}
		for _, d := range devs {
			out[d.String()] = tp.BlockFPS(block, d)
		}
		return out
	}
	return &core.ThroughputPipeline{
		SensorBytes: m.Sensor / rigCameras,
		Stages: []core.Stage{
			{Name: "B1", OutputBytes: m.B1 / rigCameras, FPS: fps(1, platform.CPU)},
			{Name: "B2", OutputBytes: m.B2 / rigCameras, FPS: fps(2, platform.CPU)},
			{Name: "B3", OutputBytes: m.B3 / rigCameras, FPS: fps(3, platform.CPU, platform.GPU, platform.FPGA)},
			{Name: "B4", OutputBytes: m.B4 / rigCameras, FPS: fps(4, platform.CPU, platform.GPU, platform.FPGA)},
		},
	}
}

// VRClass models one camera head of the §IV VR rig running the given
// Fig. 10 placement as a fleet class: per-frame compute time and offload
// payload come from the core cost hook, transmit energy from the WiFi
// radio, and compute energy from the placement's most power-hungry device
// running for the frame's compute time. Mains powered.
func VRClass(count int, pl core.Placement, targetFPS float64) (Class, error) {
	p := PaperVRPipeline()
	cost, err := p.Cost(pl)
	if err != nil {
		return Class{}, err
	}
	radio := energy.WiFiRadio()
	watts := 2.0 // sensor interface + ISP floor for a sensor-only node
	name := "vr-S"
	for i, impl := range pl.Impl {
		if w, ok := VRDevicePowerWatts[impl]; ok && w > watts {
			watts = w
		}
		// Fig. 10-style compact label: stage name plus device initial.
		name += p.Stages[i].Name + impl[:1]
	}
	return Class{
		Name:           name,
		Count:          count,
		FPS:            targetFPS,
		Arrival:        ArrivalPeriodic, // genlocked capture, staggered phases
		FrameBytes:     cost.OffloadBytes,
		OffloadProb:    1,
		ComputeSeconds: cost.ComputeSeconds,
		QueueDepth:     4,
		CaptureJ:       5e-3, // 4K sensor readout per frame
		ComputeJ:       watts * cost.ComputeSeconds,
		TxFixedJ:       radio.TxFixedJ(),
		TxPerByteJ:     radio.TxPerByteJ(),
	}, nil
}

// PlacementEnergyPerFrame returns the expected joules per captured frame
// of a camera of this class holding placement row i, charging capture,
// the row's compute, and — for the offloading fraction of frames — the
// camera radio plus netPerByteJ of per-byte forwarding summed over every
// network hop the payload crosses (the tier tree's per-link TxPerByteJ).
// With no cost table, i is ignored and the class-level fields price the
// frame.
func (c *Class) PlacementEnergyPerFrame(i int, netPerByteJ float64) float64 {
	bytes, computeJ := c.FrameBytes, c.ComputeJ
	if len(c.Placements) > 0 {
		bytes, computeJ = c.Placements[i].FrameBytes, c.Placements[i].ComputeJ
	}
	return energy.FrameEnergy(c.CaptureJ, computeJ, c.TxFixedJ, c.TxPerByteJ+netPerByteJ, bytes, c.OffloadProb)
}
