// Package platform models the hardware the VR case study runs on: the
// network uplink (25 GbE in the paper, 400 GbE in its sensitivity
// analysis), the per-device throughput of each pipeline block (ARM CPU,
// GPU, FPGA — anchored to the paper's measured FPS), and the FPGA
// resource accounting behind Table I.
package platform

import "fmt"

// Link is a network uplink model.
type Link struct {
	Name string
	Gbps float64
}

// Standard links from the paper.
var (
	Ethernet25G  = Link{Name: "25GbE", Gbps: 25}
	Ethernet400G = Link{Name: "400GbE", Gbps: 400}
)

// BytesPerSecond returns the link's payload rate.
func (l Link) BytesPerSecond() float64 { return l.Gbps * 1e9 / 8 }

// FPS returns how many frame-sets of the given size the link uploads per
// second.
func (l Link) FPS(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return l.BytesPerSecond() / float64(bytes)
}

// Device enumerates the implementation targets compared in Fig. 10.
type Device int

// Devices of the Fig. 10 comparison.
const (
	CPU  Device = iota // dual ARM Cortex-A9 on the Zynq (mobile-grade proxy)
	GPU                // NVIDIA Quadro K2200 running Halide-tuned BSSA
	FPGA               // Zynq-7020 fabric with streaming compute units
)

func (d Device) String() string {
	switch d {
	case CPU:
		return "CPU"
	case GPU:
		return "GPU"
	case FPGA:
		return "FPGA"
	}
	return fmt.Sprintf("Device(%d)", int(d))
}

// BlockThroughput is the frames-per-second table for the four pipeline
// blocks on each device, for the full 16-camera frame-set.
//
// Anchors: the paper measures B3 (disparity refinement) at 0.09 FPS on the
// ARM CPU, 5.27 FPS on the GPU, and 31.6 FPS on the FPGA. The remaining
// blocks run on the ARM cores in every configuration; their rates derive
// from the Fig. 9 time distribution (B1 5%, B2 20%, B3 70%, B4 5%)
// interpreted relative to the accelerated pipeline's 31.6 FPS B3 — the
// only reading consistent with Fig. 10, where B1/B2/B4 never bottleneck
// a configuration.
type BlockThroughput struct {
	FPS map[Device][4]float64 // per device: B1..B4 frames/sec
}

// PaperThroughput returns the Fig. 9/Fig. 10-anchored table.
func PaperThroughput() BlockThroughput {
	// From Fig. 9 shares at the accelerated design point: B3 takes 70% of
	// 1/31.6 s×(0.70)⁻¹... i.e. total frame time T with B3 = 0.70·T =
	// 1/31.6 s → T = 45.2 ms → B1 = B4 = 0.05·T → 442 FPS; B2 = 0.20·T →
	// 110.6 FPS.
	const (
		b1 = 442.4
		b2 = 110.6
		b4 = 442.4
	)
	return BlockThroughput{FPS: map[Device][4]float64{
		CPU:  {b1, b2, 0.09, b4},
		GPU:  {b1, b2, 5.27, b4}, // B1/B2/B4 stay on the ARM cores
		FPGA: {b1, b2, 31.6, b4},
	}}
}

// BlockFPS returns the throughput of block (1-based: 1..4) on a device.
func (t BlockThroughput) BlockFPS(block int, d Device) float64 {
	row, ok := t.FPS[d]
	if !ok {
		panic(fmt.Sprintf("platform: no throughput row for device %v", d))
	}
	if block < 1 || block > 4 {
		panic(fmt.Sprintf("platform: block %d out of range 1..4", block))
	}
	return row[block-1]
}

// FPGAModel describes one FPGA part and the synthesis footprint of the
// BSSA streaming compute unit on it. Per-CU and overhead values are
// calibrated against the utilizations the paper reports in Table I.
type FPGAModel struct {
	Name      string
	LUTs      int
	BRAMs     int
	DSPs      int
	ClockMHz  float64
	DSPPerCU  int
	LUTPerCU  int
	BRAMPerCU float64
	// Fixed infrastructure outside the compute units (DMA, HDMI cores,
	// interconnect — Fig. 8).
	LUTOverhead  int
	BRAMOverhead float64
}

// Zynq7020 is the evaluation platform (ZC702 board, §IV-B/Table I).
func Zynq7020() FPGAModel {
	return FPGAModel{
		Name: "Zynq-7000 (XC7Z020)", LUTs: 53200, BRAMs: 140, DSPs: 220,
		ClockMHz: 125, DSPPerCU: 18, LUTPerCU: 1852, BRAMPerCU: 0.55,
		LUTOverhead: 2200, BRAMOverhead: 2.8,
	}
}

// VirtexUltraScalePlus is the projected 16-camera target (VU13P-class,
// §IV-B/Table I: 682 compute units at 99.98% DSP).
func VirtexUltraScalePlus() FPGAModel {
	return FPGAModel{
		Name: "Virtex UltraScale+ (VU13P)", LUTs: 1728000, BRAMs: 2688, DSPs: 12288,
		ClockMHz: 125, DSPPerCU: 18, LUTPerCU: 1697, BRAMPerCU: 0.69,
		LUTOverhead: 2200, BRAMOverhead: 2.8,
	}
}

// MaxComputeUnits returns how many compute units the DSP budget allows —
// the paper's limiting resource (94%+ DSP utilization on both parts).
func (m FPGAModel) MaxComputeUnits() int { return m.DSPs / m.DSPPerCU }

// Utilization is a resource report for a CU count on a part.
type Utilization struct {
	ComputeUnits int
	LogicPct     float64
	RAMPct       float64
	DSPPct       float64
}

// Utilization computes the Table I percentages for a CU count.
func (m FPGAModel) Utilization(cus int) Utilization {
	if cus < 0 || cus > m.MaxComputeUnits() {
		panic(fmt.Sprintf("platform: %d CUs out of range 0..%d on %s", cus, m.MaxComputeUnits(), m.Name))
	}
	return Utilization{
		ComputeUnits: cus,
		LogicPct:     100 * float64(m.LUTOverhead+cus*m.LUTPerCU) / float64(m.LUTs),
		RAMPct:       100 * (m.BRAMOverhead + float64(cus)*m.BRAMPerCU) / float64(m.BRAMs),
		DSPPct:       100 * float64(cus*m.DSPPerCU) / float64(m.DSPs),
	}
}

// DepthFPS returns the FPGA's B3 throughput for a workload of
// verticesPerFrame bilateral-grid vertex operations per frame-set:
// each CU retires one vertex op per cycle once its pipeline fills.
// cyclesPerVertex absorbs fill/stall overheads (calibrated 1.43 so that
// 12 CUs at 125 MHz sustain the paper's measured 31.6 FPS on the
// 2-camera evaluation workload).
func (m FPGAModel) DepthFPS(cus int, verticesPerFrame int64, cyclesPerVertex float64) float64 {
	if cus <= 0 || verticesPerFrame <= 0 {
		return 0
	}
	cycles := float64(verticesPerFrame) * cyclesPerVertex / float64(cus)
	return m.ClockMHz * 1e6 / cycles
}

// CalibratedCyclesPerVertex is the stall factor that reconciles the
// compute-unit model with the paper's measured 31.6 FPS (12 CUs, 125 MHz,
// 2×4K pair, cell-4 grid ≈ 33.2M vertices).
const CalibratedCyclesPerVertex = 1.43

// EvalVerticesPerFrame is the 2-camera evaluation workload's bilateral
// grid size: a 3840×2160 pair with 4-pixel spatial cells and 64 intensity
// bins ≈ (3840/4)·(2160/4)·64 vertices.
const EvalVerticesPerFrame = int64(3840 / 4 * 2160 / 4 * 64)
