package platform

import (
	"math"
	"testing"
)

func TestLinkFPS(t *testing.T) {
	// 25 GbE = 3.125 GB/s; a 197.8 MB frame-set uploads at ~15.8 FPS.
	fps := Ethernet25G.FPS(197_784_810)
	if math.Abs(fps-15.8) > 0.05 {
		t.Fatalf("sensor upload FPS = %v, want ~15.8", fps)
	}
	if Ethernet25G.FPS(0) != 0 {
		t.Fatal("zero-byte payload should return 0, not Inf")
	}
}

func TestLink400GScaling(t *testing.T) {
	b := int64(100e6)
	if r := Ethernet400G.FPS(b) / Ethernet25G.FPS(b); math.Abs(r-16) > 1e-9 {
		t.Fatalf("400G/25G ratio %v, want 16", r)
	}
}

func TestPaperThroughputAnchors(t *testing.T) {
	tp := PaperThroughput()
	cases := []struct {
		d   Device
		fps float64
	}{
		{CPU, 0.09}, {GPU, 5.27}, {FPGA, 31.6},
	}
	for _, c := range cases {
		if got := tp.BlockFPS(3, c.d); got != c.fps {
			t.Fatalf("B3 on %v = %v, want %v", c.d, got, c.fps)
		}
	}
	// B1/B2/B4 run on the ARM cores regardless of the B3 device, and never
	// bottleneck below 30 FPS.
	for _, d := range []Device{CPU, GPU, FPGA} {
		for _, b := range []int{1, 2, 4} {
			if fps := tp.BlockFPS(b, d); fps < 30 {
				t.Fatalf("block %d on %v = %v FPS — should not bottleneck", b, d, fps)
			}
		}
	}
	// Fig. 9 proportions: B2 takes 4x the time of B1 (20% vs 5%).
	if r := tp.BlockFPS(1, CPU) / tp.BlockFPS(2, CPU); math.Abs(r-4) > 0.01 {
		t.Fatalf("B1/B2 ratio %v, want 4", r)
	}
}

func TestBlockFPSPanics(t *testing.T) {
	tp := PaperThroughput()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tp.BlockFPS(5, CPU)
}

func TestDeviceString(t *testing.T) {
	if CPU.String() != "CPU" || GPU.String() != "GPU" || FPGA.String() != "FPGA" {
		t.Fatal("device names wrong")
	}
	if Device(9).String() == "" {
		t.Fatal("unknown device should still stringify")
	}
}

func TestZynqTableI(t *testing.T) {
	z := Zynq7020()
	// The paper scales to 12 parallel compute units on the ZC702.
	if max := z.MaxComputeUnits(); max != 12 {
		t.Fatalf("Zynq max CUs = %d, want 12 (220 DSPs / 18 per CU)", max)
	}
	u := z.Utilization(12)
	if math.Abs(u.LogicPct-45.91) > 0.5 {
		t.Fatalf("Zynq logic %% = %v, want ~45.91", u.LogicPct)
	}
	if math.Abs(u.RAMPct-6.70) > 0.3 {
		t.Fatalf("Zynq RAM %% = %v, want ~6.70", u.RAMPct)
	}
	// Paper reports 94.09% DSP; our 18-DSP/CU model gives 98.2% — the
	// known deviation documented in EXPERIMENTS.md. Assert the model's own
	// arithmetic.
	if math.Abs(u.DSPPct-100*216.0/220) > 1e-9 {
		t.Fatalf("Zynq DSP %% = %v", u.DSPPct)
	}
}

func TestVirtexTableI(t *testing.T) {
	v := VirtexUltraScalePlus()
	// The paper projects 682 compute units on a top-of-the-line part.
	if max := v.MaxComputeUnits(); max != 682 {
		t.Fatalf("Virtex max CUs = %d, want 682", max)
	}
	u := v.Utilization(682)
	if math.Abs(u.LogicPct-67.10) > 0.7 {
		t.Fatalf("Virtex logic %% = %v, want ~67.10", u.LogicPct)
	}
	if math.Abs(u.RAMPct-17.60) > 0.5 {
		t.Fatalf("Virtex RAM %% = %v, want ~17.60", u.RAMPct)
	}
	if math.Abs(u.DSPPct-99.90) > 0.15 {
		t.Fatalf("Virtex DSP %% = %v, want ~99.9", u.DSPPct)
	}
}

func TestUtilizationPanicsOutOfRange(t *testing.T) {
	z := Zynq7020()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	z.Utilization(13)
}

func TestDepthFPSCalibration(t *testing.T) {
	// 12 CUs at 125 MHz on the evaluation workload reproduce the measured
	// 31.6 FPS within 2%.
	z := Zynq7020()
	fps := z.DepthFPS(12, EvalVerticesPerFrame, CalibratedCyclesPerVertex)
	if math.Abs(fps-31.6)/31.6 > 0.02 {
		t.Fatalf("calibrated FPGA depth FPS = %v, want ~31.6", fps)
	}
}

func TestDepthFPSScalesWithCUs(t *testing.T) {
	z := Zynq7020()
	f6 := z.DepthFPS(6, EvalVerticesPerFrame, CalibratedCyclesPerVertex)
	f12 := z.DepthFPS(12, EvalVerticesPerFrame, CalibratedCyclesPerVertex)
	if math.Abs(f12/f6-2) > 1e-9 {
		t.Fatalf("throughput not linear in CUs: %v vs %v", f6, f12)
	}
	if z.DepthFPS(0, EvalVerticesPerFrame, 1) != 0 {
		t.Fatal("zero CUs should give zero FPS")
	}
}

func TestVirtexSupports16CameraRealTime(t *testing.T) {
	// The projection that motivates Table I: 682 CUs handle the 16-camera
	// workload (8× the 2-camera evaluation) at ≥ 30 FPS.
	v := VirtexUltraScalePlus()
	vertices16 := EvalVerticesPerFrame * 8 // 16 pairwise pipelines vs 2
	fps := v.DepthFPS(682, vertices16, CalibratedCyclesPerVertex)
	if fps < 30 {
		t.Fatalf("Virtex 16-camera depth FPS = %v, want >= 30", fps)
	}
}
