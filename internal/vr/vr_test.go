package vr

import (
	"math"
	"math/rand"
	"testing"

	"camsim/internal/bilateral"
	"camsim/internal/img"
	"camsim/internal/quality"
	"camsim/internal/rig"
)

func testRig(seed int64) *rig.Rig {
	return rig.NewRig(rand.New(rand.NewSource(seed)), 4, 128, 64, 0.75, 3)
}

func TestCapturePreprocessRoundTrip(t *testing.T) {
	r := testRig(1)
	view := r.View(0)
	raw := CaptureFrame(view)
	if raw.Bits != 12 || raw.W != view.W {
		t.Fatalf("raw %dx%d@%d", raw.W, raw.H, raw.Bits)
	}
	pre := Preprocess(raw)
	if pre.W != view.W || pre.H != view.H {
		t.Fatalf("preprocessed size %dx%d", pre.W, pre.H)
	}
	// B1 output must stay close to the clean view (gamma 1.1 shifts values
	// slightly; structural similarity is the right lens).
	if s := quality.SSIM(view, pre); s < 0.7 {
		t.Fatalf("preprocessed SSIM vs clean view %v too low", s)
	}
}

func TestPreprocessDenoises(t *testing.T) {
	r := testRig(2)
	view := r.View(0)
	noisy := view.Clone()
	rng := rand.New(rand.NewSource(3))
	// Salt-and-pepper noise, which the median stage should remove.
	for k := 0; k < len(noisy.Pix)/50; k++ {
		i := rng.Intn(len(noisy.Pix))
		if k%2 == 0 {
			noisy.Pix[i] = 1
		} else {
			noisy.Pix[i] = 0
		}
	}
	pre := Preprocess(CaptureFrame(noisy))
	preNoisy := Preprocess(CaptureFrame(view))
	// The denoised noisy capture should be nearly as similar to the clean
	// capture as a clean capture is.
	sNoisy := quality.SSIM(pre, preNoisy)
	if sNoisy < 0.8 {
		t.Fatalf("median stage failed to suppress impulses: SSIM %v", sNoisy)
	}
}

func TestAlignRecoversPanSpacing(t *testing.T) {
	r := testRig(4)
	left, right := r.RawPair(0)
	nominal := int(r.PanSpacing)
	al, err := Align(left, right, nominal, 6)
	if err != nil {
		t.Fatal(err)
	}
	// The SAD optimum is pan spacing plus the dominant (background)
	// parallax of ~3 px; accept a small band around that.
	if d := al.Shift - nominal - 3; d < -3 || d > 3 {
		t.Fatalf("estimated shift %d, want ~%d", al.Shift, nominal+3)
	}
	if al.LeftOverlap.W != left.W-al.Shift {
		t.Fatalf("overlap width %d", al.LeftOverlap.W)
	}
	// Overlap crops must be far more similar than the raw views.
	if al.LeftOverlap.MeanAbsDiff(al.RightOverlap) >= left.MeanAbsDiff(right) {
		t.Fatal("aligned overlaps no more similar than raw views")
	}
}

func TestAlignWithWrongNominalStillSearches(t *testing.T) {
	r := testRig(5)
	left, right := r.RawPair(0)
	nominal := int(r.PanSpacing)
	al, err := Align(left, right, nominal+3, 6) // offset nominal inside radius
	if err != nil {
		t.Fatal(err)
	}
	if d := al.Shift - nominal - 3; d < -4 || d > 4 {
		t.Fatalf("search failed to recover true shift: got %d, want ~%d", al.Shift, nominal+3)
	}
}

func TestAlignErrors(t *testing.T) {
	a := img.NewGray(32, 32)
	if _, err := Align(a, img.NewGray(31, 32), 4, 2); err == nil {
		t.Fatal("accepted size mismatch")
	}
	if _, err := Align(a, a.Clone(), 40, 2); err == nil {
		t.Fatal("accepted nominal shift beyond width")
	}
	if _, err := Align(a, a.Clone(), -1, 2); err == nil {
		t.Fatal("accepted negative nominal shift")
	}
}

func TestStitchFlatViews(t *testing.T) {
	views := make([]*img.Gray, 4)
	for i := range views {
		v := img.NewGray(64, 32)
		v.Fill(0.6)
		views[i] = v
	}
	pano, err := Stitch(views, nil, StitchConfig{PanSpacing: 32})
	if err != nil {
		t.Fatal(err)
	}
	if pano.W != 3*32+64 {
		t.Fatalf("panorama width %d", pano.W)
	}
	for _, v := range pano.Pix {
		if math.Abs(float64(v)-0.6) > 0.01 {
			t.Fatalf("flat stitch value %v", v)
		}
	}
}

func TestStitchErrors(t *testing.T) {
	if _, err := Stitch(nil, nil, StitchConfig{}); err == nil {
		t.Fatal("accepted empty views")
	}
	a := img.NewGray(16, 16)
	b := img.NewGray(17, 16)
	if _, err := Stitch([]*img.Gray{a, b}, nil, StitchConfig{PanSpacing: 4}); err == nil {
		t.Fatal("accepted mismatched view sizes")
	}
	if _, err := Stitch([]*img.Gray{a, a}, nil, StitchConfig{PanSpacing: 4, ParallaxCompensate: true}); err == nil {
		t.Fatal("accepted compensation without disparity maps")
	}
}

func TestParallaxCompensationImprovesStitch(t *testing.T) {
	// Stitching with depth-based compensation must beat naive stitching
	// against the reference panorama — the paper's core point that depth
	// (B3) enables high-quality stitching (B4).
	r := testRig(6)
	p := NewPipeline(r)
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Stitch(res.Preprocessed, res.Disparities, StitchConfig{
		PanSpacing: r.PanSpacing, ParallaxCompensate: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref := r.ReferencePanorama()
	// Compare on the common width.
	w := minI(ref.W, res.Panorama.W)
	crop := func(g *img.Gray) *img.Gray { return g.SubImage(0, 0, w, g.H) }
	qComp := quality.SSIM(crop(ref), crop(res.Panorama))
	qNaive := quality.SSIM(crop(ref), crop(naive))
	if qComp <= qNaive-0.002 {
		t.Fatalf("parallax compensation SSIM %v vs naive %v — compensation hurt", qComp, qNaive)
	}
}

func TestEyePairDiffers(t *testing.T) {
	r := testRig(7)
	p := NewPipeline(r)
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.LeftEye == nil || res.RightEye == nil {
		t.Fatal("eye pair missing")
	}
	if d := res.LeftEye.MeanAbsDiff(res.RightEye); d < 1e-4 {
		t.Fatalf("stereo eyes nearly identical (%v) — no parallax synthesized", d)
	}
	// But they must still be views of the same scene.
	if s := quality.SSIM(res.LeftEye, res.RightEye); s < 0.5 {
		t.Fatalf("eyes too dissimilar: SSIM %v", s)
	}
}

func TestEyePairErrors(t *testing.T) {
	if _, _, err := EyePair(img.NewGray(8, 8), img.NewGray(9, 8), 1); err == nil {
		t.Fatal("accepted size mismatch")
	}
}

func TestPipelineRunBytesOrdering(t *testing.T) {
	// The scaled pipeline must reproduce the paper's data-size *shape*:
	// B2 expands the data (largest), B4 is the smallest output.
	r := testRig(8)
	res, err := NewPipeline(r).Run()
	if err != nil {
		t.Fatal(err)
	}
	b := res.Bytes
	if !(b.B2 > b.Sensor) {
		t.Fatalf("B2 (%d) must exceed sensor (%d) — alignment expands data", b.B2, b.Sensor)
	}
	// Paper shape (Fig. 10 bytes): B2 > B3 > sensor ≈ B1 ≫ B4.
	if !(b.B2 > b.B3 && b.B3 > b.Sensor && b.B4 < b.Sensor) {
		t.Fatalf("byte shape wrong: %+v", b)
	}
}

func TestPipelineDepthQuality(t *testing.T) {
	r := testRig(9)
	p := NewPipeline(r)
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Disparities) != r.Cameras/2 {
		t.Fatalf("disparity maps %d, want %d", len(res.Disparities), r.Cameras/2)
	}
	_, _, gt := r.Pair(0)
	mae := res.Disparities[0].MeanAbsDiff(gt)
	if mae > 3 {
		t.Fatalf("pipeline depth MAE %v px vs ground truth", mae)
	}
}

func TestPaperByteModelMatchesFig10(t *testing.T) {
	m := PaperByteModel()
	const linkBps = 25e9 / 8
	cases := []struct {
		bytes int64
		fps   float64
	}{
		{m.Sensor, 15.8}, {m.B1, 15.8}, {m.B2, 3.95}, {m.B3, 11.2}, {m.B4, 174},
	}
	for i, c := range cases {
		got := linkBps / float64(c.bytes)
		if math.Abs(got-c.fps)/c.fps > 0.01 {
			t.Fatalf("stage %d: %v FPS, want %v", i, got, c.fps)
		}
	}
	// Shape assertions from the paper's narrative: alignment expands the
	// data the most, depth maps still exceed the raw sensor bytes, and
	// only the stitched output is small.
	if !(m.B2 > m.B3 && m.B3 > m.Sensor && m.B4 < m.Sensor/10) {
		t.Fatalf("byte model shape wrong: %+v", m)
	}
	// Sensor ≈ 16 4K frames of 12-bit data (~190-200 MB).
	if m.Sensor < 190e6 || m.Sensor > 205e6 {
		t.Fatalf("sensor frame-set %d B implausible", m.Sensor)
	}
}

func TestByteModelStagePrefix(t *testing.T) {
	m := PaperByteModel()
	if m.Stage(0) != m.Sensor || m.Stage(4) != m.B4 {
		t.Fatal("Stage indexing wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for prefix 5")
		}
	}()
	m.Stage(5)
}

func TestComputeShareSumsToOne(t *testing.T) {
	s := ComputeShare()
	var sum float64
	for _, v := range s {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("compute shares sum to %v", sum)
	}
	if s[2] != 0.70 {
		t.Fatalf("B3 share %v, want 0.70", s[2])
	}
}

func TestPipelineWithBlockMatchConfigStillRuns(t *testing.T) {
	// Coarser BSSA settings (cheap mode) must flow through the pipeline.
	r := testRig(10)
	p := NewPipeline(r)
	p.BSSA = bilateral.BSSAConfig{
		MaxDisparity: r.MaxDisparity(), MatchRadius: 2,
		CellXY: 16, IntensityBins: 4, Iterations: 1, Lambda: 0.5, BlurPasses: 1,
	}
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkPipelineFullRig(b *testing.B) {
	r := testRig(1)
	p := NewPipeline(r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
