package vr

import (
	"fmt"

	"camsim/internal/img"
)

// StitchConfig parameterizes block B4.
type StitchConfig struct {
	// PanSpacing is the pan displacement between adjacent cameras in
	// pixels (from the rig geometry or the B2 estimates).
	PanSpacing float64
	// PanoramaW is the output width; 0 derives it from the view count.
	PanoramaW int
	// ParallaxCompensate shifts odd (baseline-displaced) cameras by their
	// per-pixel disparity before compositing, removing double images of
	// near objects. Disabling it is the ablation baseline.
	ParallaxCompensate bool
}

// Stitch is block B4: it composites the camera views into a single
// panorama with linear feather blending in the overlaps. views[i] is
// camera i's processed frame; disparities[i/2] is the pair disparity map
// used to parallax-compensate odd cameras (may be nil when compensation is
// off).
func Stitch(views []*img.Gray, disparities []*img.Gray, cfg StitchConfig) (*img.Gray, error) {
	if len(views) == 0 {
		return nil, fmt.Errorf("vr: no views to stitch")
	}
	w, h := views[0].W, views[0].H
	for i, v := range views {
		if v.W != w || v.H != h {
			return nil, fmt.Errorf("vr: view %d size %dx%d differs from %dx%d", i, v.W, v.H, w, h)
		}
	}
	if cfg.ParallaxCompensate && len(disparities) < len(views)/2 {
		return nil, fmt.Errorf("vr: need %d disparity maps, got %d", len(views)/2, len(disparities))
	}
	panW := cfg.PanoramaW
	if panW <= 0 {
		panW = int(float64(len(views)-1)*cfg.PanSpacing) + w
	}
	acc := img.NewGray(panW, h)
	wt := img.NewGray(panW, h)

	for i, v := range views {
		panX := float64(i) * cfg.PanSpacing
		var disp *img.Gray
		if cfg.ParallaxCompensate && i%2 == 1 {
			disp = disparities[i/2]
		}
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				// Feather: weight peaks at the view centre.
				fx := float64(x)/float64(w-1)*2 - 1
				weight := float32(1 - fx*fx)
				if weight <= 0 {
					continue
				}
				// Odd cameras sit one baseline to the side; their content
				// appears disparity pixels later in panorama space.
				px := panX + float64(x)
				if disp != nil {
					px += float64(disp.AtClamped(x, y))
				}
				ix := int(px + 0.5)
				if ix < 0 || ix >= panW {
					continue
				}
				acc.Pix[y*panW+ix] += weight * v.Pix[y*w+x]
				wt.Pix[y*panW+ix] += weight
			}
		}
	}
	out := img.NewGray(panW, h)
	for i := range acc.Pix {
		if wt.Pix[i] > 1e-6 {
			out.Pix[i] = acc.Pix[i] / wt.Pix[i]
		}
	}
	// Forward warping and zero-weight feather edges leave holes; fill from
	// the left, then fill any leading holes from the right.
	for y := 0; y < h; y++ {
		last := float32(0)
		haveLast := false
		for x := 0; x < panW; x++ {
			i := y*panW + x
			if wt.Pix[i] <= 1e-6 {
				if haveLast {
					out.Pix[i] = last
				}
			} else {
				last = out.Pix[i]
				haveLast = true
			}
		}
		for x := panW - 1; x >= 0; x-- {
			i := y*panW + x
			if wt.Pix[i] > 1e-6 {
				last = out.Pix[i]
			} else {
				out.Pix[i] = last
			}
		}
	}
	return out, nil
}

// EyePair synthesizes the stereoscopic output pair from a stitched
// panorama and its disparity panorama: each eye sees the panorama warped
// by ±ipdScale·disparity/2 — the final 3D-360° product of the pipeline.
func EyePair(pano, dispPano *img.Gray, ipdScale float64) (left, right *img.Gray, err error) {
	if pano.W != dispPano.W || pano.H != dispPano.H {
		return nil, nil, fmt.Errorf("vr: panorama %dx%d vs disparity %dx%d", pano.W, pano.H, dispPano.W, dispPano.H)
	}
	left = img.NewGray(pano.W, pano.H)
	right = img.NewGray(pano.W, pano.H)
	for y := 0; y < pano.H; y++ {
		for x := 0; x < pano.W; x++ {
			d := float64(dispPano.At(x, y)) * ipdScale / 2
			left.Pix[y*pano.W+x] = img.SampleBilinear(pano, float64(x)-d, float64(y))
			right.Pix[y*pano.W+x] = img.SampleBilinear(pano, float64(x)+d, float64(y))
		}
	}
	return left, right, nil
}
