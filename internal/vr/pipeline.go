package vr

import (
	"fmt"

	"camsim/internal/bilateral"
	"camsim/internal/img"
	"camsim/internal/rig"
)

// Pipeline runs the full B1→B4 flow over a synthetic rig at working
// resolution, producing every intermediate artifact plus actual byte
// counts so the scaled pipeline can be compared against the paper's
// full-scale byte model.
type Pipeline struct {
	Rig        *rig.Rig
	BSSA       bilateral.BSSAConfig
	SearchRad  int // B2 shift search radius
	Compensate bool
}

// NewPipeline builds a pipeline over the rig with a fine-grid BSSA
// configuration.
func NewPipeline(r *rig.Rig) *Pipeline {
	return &Pipeline{
		Rig:        r,
		BSSA:       bilateral.DefaultBSSAConfig(r.MaxDisparity()),
		SearchRad:  4,
		Compensate: true,
	}
}

// Result holds every intermediate output of one full-rig run.
type Result struct {
	Raw          []*img.Raw    // sensor output per camera
	Preprocessed []*img.Gray   // B1 output per camera
	Aligned      []AlignResult // B2 output per adjacent pair (cameras i, i+1)
	Disparities  []*img.Gray   // B3 output per stereo pair (even i)
	DepthStats   []bilateral.Stats
	Panorama     *img.Gray // B4 output
	LeftEye      *img.Gray
	RightEye     *img.Gray

	// Bytes actually produced by each stage at working resolution.
	Bytes StageBytes
}

// StageBytes records per-stage output sizes in bytes.
type StageBytes struct {
	Sensor, B1, B2, B3, B4 int64
}

// Run executes the full pipeline over every camera of the rig.
func (p *Pipeline) Run() (*Result, error) {
	r := p.Rig
	res := &Result{}

	// Sensor + B1 per camera.
	for i := 0; i < r.Cameras; i++ {
		raw := CaptureFrame(r.View(i))
		res.Raw = append(res.Raw, raw)
		res.Bytes.Sensor += raw.SizeBytes()
		pre := Preprocess(raw)
		res.Preprocessed = append(res.Preprocessed, pre)
		res.Bytes.B1 += raw.SizeBytes() // B1 keeps the packed-raw footprint
	}

	// B2 per adjacent pair.
	nominal := int(r.PanSpacing)
	for i := 0; i+1 < r.Cameras; i++ {
		al, err := Align(res.Preprocessed[i], res.Preprocessed[i+1], nominal, p.SearchRad)
		if err != nil {
			return nil, fmt.Errorf("vr: align pair %d: %w", i, err)
		}
		res.Aligned = append(res.Aligned, al)
		// Aligned overlap pairs at 16-bit working precision.
		res.Bytes.B2 += int64(al.LeftOverlap.W*al.LeftOverlap.H) * 2 * 2
	}

	// B3 per stereo pair (even cameras). The stereo pair uses the rig's
	// rectified rendering; the B2 overlap estimate validates alignment.
	for i := 0; i+1 < r.Cameras; i += 2 {
		left, right, _ := r.Pair(i)
		d, st, err := Depth(left, right, p.BSSA)
		if err != nil {
			return nil, fmt.Errorf("vr: depth pair %d: %w", i, err)
		}
		res.Disparities = append(res.Disparities, d)
		res.DepthStats = append(res.DepthStats, st)
		// Depth (16-bit) + confidence (8-bit) + reference luma (8-bit) per
		// pixel — like the paper, the depth stage's output exceeds the raw
		// sensor bytes because stitching needs imagery alongside depth.
		res.Bytes.B3 += int64(d.W*d.H) * 4
	}

	// B4: panorama + eye pair.
	pano, err := Stitch(res.Preprocessed, res.Disparities, StitchConfig{
		PanSpacing:         r.PanSpacing,
		ParallaxCompensate: p.Compensate,
	})
	if err != nil {
		return nil, err
	}
	res.Panorama = pano
	// Disparity panorama: stitch the per-pair disparity maps the same way.
	dispViews := make([]*img.Gray, len(res.Preprocessed))
	for i := range dispViews {
		d := res.Disparities[i/2]
		dispViews[i] = d
	}
	dispPano, err := Stitch(dispViews, res.Disparities, StitchConfig{
		PanSpacing: r.PanSpacing,
	})
	if err != nil {
		return nil, err
	}
	l, rr, err := EyePair(pano, dispPano, 0.5)
	if err != nil {
		return nil, err
	}
	res.LeftEye, res.RightEye = l, rr
	res.Bytes.B4 = int64(l.W*l.H) * 2 // 8-bit stereo pair
	return res, nil
}
