// Package vr implements the four processing blocks of the paper's
// real-time VR video pipeline (§IV, Fig. 5): B1 pre-processing (demosaic,
// denoise, gamma), B2 image alignment (pairwise shift estimation and
// rectification), B3 depth estimation (BSSA, internal/bilateral), and B4
// panorama stitching with parallax compensation, plus the data-size model
// behind Figs. 9 and 10.
package vr

import (
	"fmt"
	"math"

	"camsim/internal/bilateral"
	"camsim/internal/img"
)

// CaptureFrame simulates the sensor: it mosaics the scene view through a
// 12-bit Bayer CFA, producing the raw frame the pipeline ingests
// (and whose packed size is the sensor's communication cost).
func CaptureFrame(view *img.Gray) *img.Raw {
	return img.Mosaic(img.GrayToRGB(view), 12, img.BayerRGGB)
}

// Preprocess is block B1: demosaic the raw frame, convert to luma, apply a
// 3×3 median denoise and gamma encoding. Output is a full-resolution
// grayscale frame in [0, 1].
func Preprocess(raw *img.Raw) *img.Gray {
	rgb := img.Demosaic(raw)
	luma := rgb.Luma()
	den := img.Median3(luma)
	return img.GammaEncode(den, 1.1)
}

// AlignResult is block B2's output for one adjacent camera pair.
type AlignResult struct {
	// Shift is the estimated pan displacement in pixels between the views.
	Shift int
	// Score is the mean absolute residual at the chosen shift.
	Score float64
	// LeftOverlap and RightOverlap are the rectified overlap crops: pixel
	// (x, y) of both images views the same scene column up to stereo
	// parallax, ready for depth estimation.
	LeftOverlap, RightOverlap *img.Gray
}

// Align is block B2: it estimates the pan shift between two adjacent views
// by SAD search within ±searchRadius of the rig's nominal spacing, then
// crops both views to their common overlap.
func Align(left, right *img.Gray, nominalShift, searchRadius int) (AlignResult, error) {
	if left.W != right.W || left.H != right.H {
		return AlignResult{}, fmt.Errorf("vr: view size mismatch %dx%d vs %dx%d", left.W, left.H, right.W, right.H)
	}
	if nominalShift < 0 || nominalShift >= left.W {
		return AlignResult{}, fmt.Errorf("vr: nominal shift %d outside view width %d", nominalShift, left.W)
	}
	best := AlignResult{Shift: -1, Score: math.Inf(1)}
	lo := nominalShift - searchRadius
	hi := nominalShift + searchRadius
	if lo < 0 {
		lo = 0
	}
	if hi >= left.W {
		hi = left.W - 1
	}
	for s := lo; s <= hi; s++ {
		ow := left.W - s
		var sum float64
		// Subsample rows for speed; alignment needs no per-pixel precision.
		rows := 0
		for y := 0; y < left.H; y += 2 {
			for x := 0; x < ow; x += 2 {
				d := float64(left.At(x+s, y) - right.At(x, y))
				if d < 0 {
					d = -d
				}
				sum += d
			}
			rows++
		}
		score := sum / float64(rows*(ow/2+1))
		if score < best.Score {
			best.Score = score
			best.Shift = s
		}
	}
	ow := left.W - best.Shift
	best.LeftOverlap = left.SubImage(best.Shift, 0, ow, left.H)
	best.RightOverlap = right.SubImage(0, 0, ow, right.H)
	return best, nil
}

// Depth is block B3: BSSA disparity refinement on a rectified pair.
// It is a thin wrapper so the pipeline can swap solver configurations
// (the CPU/GPU/FPGA comparisons share this exact computation).
func Depth(left, right *img.Gray, cfg bilateral.BSSAConfig) (*img.Gray, bilateral.Stats, error) {
	return bilateral.Solve(left, right, cfg)
}
