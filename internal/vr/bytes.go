package vr

// PaperByteModel returns the full-scale per-frame-set output sizes (bytes)
// of the 16-camera 4K rig's pipeline stages, reverse-engineered from the
// upload rates of the paper's Fig. 10 at the stated 25 GbE uplink
// (3.125 GB/s): FPS = 3.125e9 / bytes.
//
//	sensor  → 15.8 FPS → 197.8 MB  (16 × 3840×2160 × 12-bit packed Bayer)
//	B1 out  → 15.8 FPS → 197.8 MB  (denoised raw, same packing)
//	B2 out  →  3.95 FPS → 791.1 MB (16 aligned overlap pairs, 16-bit — the
//	                                data *expansion* the paper highlights)
//	B3 out  → 11.2 FPS → 279.0 MB  (pairwise depth + confidence maps)
//	B4 out  →   174 FPS → 17.96 MB (stereo panorama pair — the only output
//	                                small enough for real-time upload)
type ByteModel struct {
	Sensor, B1, B2, B3, B4 int64
}

// PaperByteModel returns the Fig. 10-calibrated sizes.
func PaperByteModel() ByteModel {
	const gbps25 = 25e9 / 8 // bytes per second on 25 GbE
	fromFPS := func(fps float64) int64 { return int64(gbps25 / fps) }
	return ByteModel{
		Sensor: fromFPS(15.8),
		B1:     fromFPS(15.8),
		B2:     fromFPS(3.95),
		B3:     fromFPS(11.2),
		B4:     fromFPS(174),
	}
}

// Stage returns the output bytes after the pipeline prefix of the given
// length (0 = raw sensor, 1 = after B1, … 4 = after B4).
func (m ByteModel) Stage(prefix int) int64 {
	switch prefix {
	case 0:
		return m.Sensor
	case 1:
		return m.B1
	case 2:
		return m.B2
	case 3:
		return m.B3
	case 4:
		return m.B4
	}
	panic("vr: pipeline prefix must be 0..4")
}

// ComputeShare returns the paper's Fig. 9 per-block computation-time
// distribution (B1 5%, B2 20%, B3 70%, B4 5%).
func ComputeShare() [4]float64 { return [4]float64{0.05, 0.20, 0.70, 0.05} }
