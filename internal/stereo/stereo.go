// Package stereo implements the classical local block-matching baseline
// for depth from rectified stereo pairs: a SAD cost volume, winner-take-all
// disparity selection with subpixel refinement, left-right consistency
// checking, and a confidence map. BSSA (internal/bilateral) consumes its
// output as the noisy data term and is compared against it in E14.
package stereo

import (
	"fmt"
	"math"

	"camsim/internal/img"
)

// Config parameterizes the matcher.
type Config struct {
	// MaxDisparity bounds the search: candidate disparities are 0..Max-1,
	// with the right image shifted leftward (standard rectified geometry:
	// left pixel (x) matches right pixel (x − d)).
	MaxDisparity int
	// WindowRadius is the SAD aggregation window radius (window edge 2r+1).
	WindowRadius int
	// LRCheck enables left-right consistency invalidation; invalid pixels
	// get confidence 0 and disparity filled from the nearest valid left
	// neighbour.
	LRCheck bool
	// LRTolerance is the maximum |dL − dR| treated as consistent.
	LRTolerance float32
}

// Result bundles the matcher outputs.
type Result struct {
	// Disparity in pixels (float for subpixel refinement).
	Disparity *img.Gray
	// Confidence in [0, 1]: peak-ratio confidence of the WTA minimum,
	// zeroed where the LR check fails.
	Confidence *img.Gray
	// CostVolumeOps counts accumulated per-pixel-per-disparity operations
	// (the computational cost driver).
	CostVolumeOps int64
}

// BlockMatch computes disparity from a rectified pair (left reference).
func BlockMatch(left, right *img.Gray, cfg Config) Result {
	if left.W != right.W || left.H != right.H {
		panic(fmt.Sprintf("stereo: size mismatch %dx%d vs %dx%d", left.W, left.H, right.W, right.H))
	}
	if cfg.MaxDisparity < 1 {
		panic("stereo: MaxDisparity must be >= 1")
	}
	if cfg.WindowRadius < 0 {
		cfg.WindowRadius = 0
	}
	if cfg.LRTolerance <= 0 {
		cfg.LRTolerance = 1.5
	}
	dl, conf, cost := matchDirection(left, right, cfg, false)
	res := Result{Disparity: dl, Confidence: conf, CostVolumeOps: cost}
	if cfg.LRCheck {
		dr, _, cost2 := matchDirection(right, left, cfg, true)
		res.CostVolumeOps += cost2
		invalidateLR(res, dr, cfg.LRTolerance)
	}
	return res
}

// matchDirection computes WTA disparity for the reference image against
// the other image. reversed=false searches right image at x−d (left
// reference); reversed=true searches at x+d (right reference).
func matchDirection(ref, other *img.Gray, cfg Config, reversed bool) (*img.Gray, *img.Gray, int64) {
	w, h := ref.W, ref.H
	nd := cfg.MaxDisparity
	r := cfg.WindowRadius

	bestCost := make([]float32, w*h)
	secondCost := make([]float32, w*h)
	bestD := make([]float32, w*h)
	costAtD := make([][]float32, nd) // aggregated cost planes (kept for subpixel)
	for i := range bestCost {
		bestCost[i] = math.MaxFloat32
		secondCost[i] = math.MaxFloat32
	}

	var ops int64
	diff := img.NewGray(w, h)
	for d := 0; d < nd; d++ {
		// Per-pixel absolute difference at disparity d.
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				xo := x - d
				if reversed {
					xo = x + d
				}
				v := ref.Pix[y*w+x] - other.AtClamped(xo, y)
				if v < 0 {
					v = -v
				}
				// Penalize out-of-frame matches so WTA prefers in-range
				// disparities near the border.
				if xo < 0 || xo >= w {
					v += 0.5
				}
				diff.Pix[y*w+x] = v
			}
		}
		agg := img.BoxFilter(diff, r)
		costAtD[d] = append([]float32(nil), agg.Pix...)
		ops += int64(w * h)
		for i, c := range agg.Pix {
			switch {
			case c < bestCost[i]:
				secondCost[i] = bestCost[i]
				bestCost[i] = c
				bestD[i] = float32(d)
			case c < secondCost[i]:
				secondCost[i] = c
			}
		}
	}

	disp := img.NewGray(w, h)
	conf := img.NewGray(w, h)
	for i := range bestCost {
		d := int(bestD[i])
		// Parabolic subpixel refinement from the cost planes around d.
		dd := float32(d)
		if d > 0 && d < nd-1 {
			c0 := costAtD[d-1][i]
			c1 := costAtD[d][i]
			c2 := costAtD[d+1][i]
			den := c0 - 2*c1 + c2
			if den > 1e-9 {
				off := 0.5 * (c0 - c2) / den
				if off > -1 && off < 1 {
					dd += off
				}
			}
		}
		disp.Pix[i] = dd
		// Peak-ratio confidence: distinct minima are trustworthy.
		if secondCost[i] > 1e-9 && secondCost[i] != math.MaxFloat32 {
			ratio := 1 - bestCost[i]/secondCost[i]
			if ratio < 0 {
				ratio = 0
			}
			conf.Pix[i] = ratio
		}
	}
	return disp, conf, ops
}

// invalidateLR zeroes the confidence of pixels failing the left-right
// consistency check and inpaints their disparity from the nearest valid
// pixel to the left (the classic occlusion fill).
func invalidateLR(res Result, dr *img.Gray, tol float32) {
	w, h := res.Disparity.W, res.Disparity.H
	for y := 0; y < h; y++ {
		lastValid := float32(0)
		for x := 0; x < w; x++ {
			i := y*w + x
			dl := res.Disparity.Pix[i]
			xr := x - int(dl+0.5)
			consistent := false
			if xr >= 0 && xr < w {
				if d := dl - dr.Pix[y*w+xr]; d < tol && d > -tol {
					consistent = true
				}
			}
			if consistent {
				lastValid = dl
			} else {
				res.Disparity.Pix[i] = lastValid
				res.Confidence.Pix[i] = 0
			}
		}
	}
}

// BadPixelRate returns the fraction of pixels whose disparity deviates
// from ground truth by more than tol pixels — the standard stereo accuracy
// metric (Scharstein & Szeliski 2002).
func BadPixelRate(disp, truth *img.Gray, tol float32) float64 {
	if disp.W != truth.W || disp.H != truth.H {
		panic("stereo: size mismatch in BadPixelRate")
	}
	if len(disp.Pix) == 0 {
		return 0
	}
	bad := 0
	for i := range disp.Pix {
		d := disp.Pix[i] - truth.Pix[i]
		if d < 0 {
			d = -d
		}
		if d > tol {
			bad++
		}
	}
	return float64(bad) / float64(len(disp.Pix))
}

// MeanAbsError returns the mean absolute disparity error vs ground truth.
func MeanAbsError(disp, truth *img.Gray) float64 {
	return disp.MeanAbsDiff(truth)
}
