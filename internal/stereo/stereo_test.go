package stereo

import (
	"math/rand"
	"testing"

	"camsim/internal/img"
	"camsim/internal/rig"
	"camsim/internal/synth"
)

// texturedImage builds a random but smooth test image with enough texture
// for matching.
func texturedImage(seed uint32, w, h int) *img.Gray {
	g := img.NewGray(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			g.Pix[y*w+x] = synth.FractalNoise(float64(x)/16, float64(y)/16, 4, 3, seed)
		}
	}
	return g
}

func TestBlockMatchConstantShift(t *testing.T) {
	left := texturedImage(1, 96, 48)
	const d = 5
	right := img.Translate(left, -d, 0) // right view: content shifted left by d
	res := BlockMatch(left, right, Config{MaxDisparity: 12, WindowRadius: 3})
	// Interior pixels should recover the shift.
	var errSum float64
	var n int
	for y := 8; y < 40; y++ {
		for x := 16; x < 80; x++ {
			e := float64(res.Disparity.At(x, y)) - d
			if e < 0 {
				e = -e
			}
			errSum += e
			n++
		}
	}
	if avg := errSum / float64(n); avg > 0.5 {
		t.Fatalf("mean disparity error %v for constant shift %d", avg, d)
	}
}

func TestBlockMatchZeroShift(t *testing.T) {
	left := texturedImage(2, 64, 32)
	res := BlockMatch(left, left.Clone(), Config{MaxDisparity: 8, WindowRadius: 2})
	for y := 4; y < 28; y++ {
		for x := 8; x < 56; x++ {
			if d := res.Disparity.At(x, y); d > 0.5 {
				t.Fatalf("identical pair: disparity %v at (%d,%d)", d, x, y)
			}
		}
	}
}

func TestBlockMatchSubpixel(t *testing.T) {
	left := img.GaussianBlur(texturedImage(3, 96, 48), 1)
	right := img.Translate(left, -4.5, 0)
	res := BlockMatch(left, right, Config{MaxDisparity: 10, WindowRadius: 3})
	var sum float64
	var n int
	for y := 8; y < 40; y++ {
		for x := 16; x < 80; x++ {
			sum += float64(res.Disparity.At(x, y))
			n++
		}
	}
	avg := sum / float64(n)
	if avg < 4.2 || avg > 4.8 {
		t.Fatalf("subpixel mean %v, want ~4.5", avg)
	}
}

func TestConfidenceHigherOnTexture(t *testing.T) {
	// A textured region should yield higher matching confidence than a
	// flat region.
	w, h := 96, 48
	left := img.NewGray(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x < w/2 {
				left.Pix[y*w+x] = synth.FractalNoise(float64(x)/8, float64(y)/8, 6, 3, 9)
			} else {
				left.Pix[y*w+x] = 0.5
			}
		}
	}
	right := img.Translate(left, -3, 0)
	res := BlockMatch(left, right, Config{MaxDisparity: 8, WindowRadius: 2})
	var texConf, flatConf float64
	var n1, n2 int
	for y := 8; y < 40; y++ {
		for x := 10; x < 38; x++ {
			texConf += float64(res.Confidence.At(x, y))
			n1++
		}
		for x := 58; x < 86; x++ {
			flatConf += float64(res.Confidence.At(x, y))
			n2++
		}
	}
	if texConf/float64(n1) <= flatConf/float64(n2) {
		t.Fatalf("texture confidence %v not above flat confidence %v",
			texConf/float64(n1), flatConf/float64(n2))
	}
}

func TestLRCheckZeroesOcclusions(t *testing.T) {
	left := texturedImage(4, 96, 48)
	right := img.Translate(left, -6, 0)
	noCheck := BlockMatch(left, right, Config{MaxDisparity: 12, WindowRadius: 3})
	withCheck := BlockMatch(left, right, Config{MaxDisparity: 12, WindowRadius: 3, LRCheck: true})
	var zeroedNo, zeroedWith int
	for i := range withCheck.Confidence.Pix {
		if noCheck.Confidence.Pix[i] == 0 {
			zeroedNo++
		}
		if withCheck.Confidence.Pix[i] == 0 {
			zeroedWith++
		}
	}
	if zeroedWith <= zeroedNo {
		t.Fatalf("LR check zeroed %d pixels, plain %d — expected more", zeroedWith, zeroedNo)
	}
	if withCheck.CostVolumeOps <= noCheck.CostVolumeOps {
		t.Fatal("LR check must cost extra cost-volume work")
	}
}

func TestBlockMatchOnRigPair(t *testing.T) {
	r := rig.NewRig(rand.New(rand.NewSource(5)), 4, 128, 64, 0.75, 3)
	left, right, gt := r.Pair(0)
	res := BlockMatch(left, right, Config{MaxDisparity: r.MaxDisparity(), WindowRadius: 3})
	bad := BadPixelRate(res.Disparity, gt, 3)
	if bad > 0.35 {
		t.Fatalf("bad-pixel rate %v vs ground truth too high", bad)
	}
}

func TestBlockMatchPanics(t *testing.T) {
	a := img.NewGray(8, 8)
	for _, fn := range []func(){
		func() { BlockMatch(a, img.NewGray(9, 8), Config{MaxDisparity: 4}) },
		func() { BlockMatch(a, a.Clone(), Config{MaxDisparity: 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestBadPixelRateBasics(t *testing.T) {
	a := img.NewGray(4, 1)
	b := img.NewGray(4, 1)
	copy(a.Pix, []float32{0, 1, 2, 3})
	copy(b.Pix, []float32{0, 1, 5, 3})
	if r := BadPixelRate(a, b, 1); r != 0.25 {
		t.Fatalf("BadPixelRate = %v, want 0.25", r)
	}
	if r := BadPixelRate(a, b, 10); r != 0 {
		t.Fatalf("loose tolerance rate = %v", r)
	}
	if MeanAbsError(a, b) != 0.75 {
		t.Fatalf("MeanAbsError = %v", MeanAbsError(a, b))
	}
}

func BenchmarkBlockMatchQVGA(b *testing.B) {
	left := texturedImage(6, 320, 240)
	right := img.Translate(left, -7, 0)
	cfg := Config{MaxDisparity: 16, WindowRadius: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BlockMatch(left, right, cfg)
	}
}
