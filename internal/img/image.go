// Package img provides the image substrate used by every other package in
// camsim: grayscale and RGB float32 images, Bayer-mosaic raw frames,
// integral images, resampling, filtering, PNM I/O and simple drawing.
//
// Images store pixels in row-major order. Grayscale intensities are
// conventionally in [0, 1] but nothing in the package enforces that range;
// filters and metrics operate on arbitrary float32 data.
package img

import (
	"fmt"
	"math"
)

// Gray is a single-channel float32 image in row-major order.
type Gray struct {
	W, H int
	Pix  []float32
}

// NewGray allocates a zero-filled W×H grayscale image.
// It panics if either dimension is negative.
func NewGray(w, h int) *Gray {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("img: invalid dimensions %dx%d", w, h))
	}
	return &Gray{W: w, H: h, Pix: make([]float32, w*h)}
}

// At returns the pixel at (x, y). It panics on out-of-bounds access.
func (g *Gray) At(x, y int) float32 { return g.Pix[y*g.W+x] }

// Set writes the pixel at (x, y). It panics on out-of-bounds access.
func (g *Gray) Set(x, y int, v float32) { g.Pix[y*g.W+x] = v }

// AtClamped returns the pixel at (x, y) with coordinates clamped to the
// image bounds, implementing "replicate" edge handling.
func (g *Gray) AtClamped(x, y int) float32 {
	if x < 0 {
		x = 0
	} else if x >= g.W {
		x = g.W - 1
	}
	if y < 0 {
		y = 0
	} else if y >= g.H {
		y = g.H - 1
	}
	return g.Pix[y*g.W+x]
}

// Clone returns a deep copy of the image.
func (g *Gray) Clone() *Gray {
	out := NewGray(g.W, g.H)
	copy(out.Pix, g.Pix)
	return out
}

// Fill sets every pixel to v.
func (g *Gray) Fill(v float32) {
	for i := range g.Pix {
		g.Pix[i] = v
	}
}

// Bounds reports whether (x, y) lies inside the image.
func (g *Gray) Bounds(x, y int) bool {
	return x >= 0 && y >= 0 && x < g.W && y < g.H
}

// SubImage copies the w×h region with top-left corner (x, y) into a new
// image. The region is clipped to the source bounds; pixels outside the
// source are replicated from the nearest edge so the result is always w×h.
func (g *Gray) SubImage(x, y, w, h int) *Gray {
	out := NewGray(w, h)
	for j := 0; j < h; j++ {
		for i := 0; i < w; i++ {
			out.Pix[j*w+i] = g.AtClamped(x+i, y+j)
		}
	}
	return out
}

// MinMax returns the minimum and maximum pixel values.
// For an empty image it returns (0, 0).
func (g *Gray) MinMax() (min, max float32) {
	if len(g.Pix) == 0 {
		return 0, 0
	}
	min, max = g.Pix[0], g.Pix[0]
	for _, v := range g.Pix[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// Mean returns the arithmetic mean of all pixels (0 for an empty image).
func (g *Gray) Mean() float64 {
	if len(g.Pix) == 0 {
		return 0
	}
	var s float64
	for _, v := range g.Pix {
		s += float64(v)
	}
	return s / float64(len(g.Pix))
}

// Normalize linearly rescales the image so its values span [0, 1].
// A constant image becomes all zeros.
func (g *Gray) Normalize() {
	min, max := g.MinMax()
	span := max - min
	if span == 0 {
		for i := range g.Pix {
			g.Pix[i] = 0
		}
		return
	}
	inv := 1 / span
	for i, v := range g.Pix {
		g.Pix[i] = (v - min) * inv
	}
}

// Clamp01 clamps every pixel into [0, 1].
func (g *Gray) Clamp01() {
	for i, v := range g.Pix {
		if v < 0 {
			g.Pix[i] = 0
		} else if v > 1 {
			g.Pix[i] = 1
		}
	}
}

// AbsDiff returns the per-pixel absolute difference |g - o|.
// It panics if the dimensions differ.
func (g *Gray) AbsDiff(o *Gray) *Gray {
	mustSameSize(g, o)
	out := NewGray(g.W, g.H)
	for i := range g.Pix {
		d := g.Pix[i] - o.Pix[i]
		if d < 0 {
			d = -d
		}
		out.Pix[i] = d
	}
	return out
}

// MeanAbsDiff returns the mean absolute per-pixel difference between two
// equal-size images.
func (g *Gray) MeanAbsDiff(o *Gray) float64 {
	mustSameSize(g, o)
	if len(g.Pix) == 0 {
		return 0
	}
	var s float64
	for i := range g.Pix {
		d := float64(g.Pix[i] - o.Pix[i])
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s / float64(len(g.Pix))
}

func mustSameSize(a, b *Gray) {
	if a.W != b.W || a.H != b.H {
		panic(fmt.Sprintf("img: size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H))
	}
}

// RGB is a three-channel interleaved float32 image (R, G, B per pixel).
type RGB struct {
	W, H int
	Pix  []float32 // len == 3*W*H
}

// NewRGB allocates a zero-filled W×H RGB image.
func NewRGB(w, h int) *RGB {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("img: invalid dimensions %dx%d", w, h))
	}
	return &RGB{W: w, H: h, Pix: make([]float32, 3*w*h)}
}

// At returns the (r, g, b) triple at (x, y).
func (m *RGB) At(x, y int) (r, g, b float32) {
	i := 3 * (y*m.W + x)
	return m.Pix[i], m.Pix[i+1], m.Pix[i+2]
}

// Set writes the (r, g, b) triple at (x, y).
func (m *RGB) Set(x, y int, r, g, b float32) {
	i := 3 * (y*m.W + x)
	m.Pix[i], m.Pix[i+1], m.Pix[i+2] = r, g, b
}

// Luma converts the image to grayscale using Rec. 601 luma weights.
func (m *RGB) Luma() *Gray {
	out := NewGray(m.W, m.H)
	for p := 0; p < m.W*m.H; p++ {
		i := 3 * p
		out.Pix[p] = 0.299*m.Pix[i] + 0.587*m.Pix[i+1] + 0.114*m.Pix[i+2]
	}
	return out
}

// GrayToRGB expands a grayscale image into an RGB image with equal channels.
func GrayToRGB(g *Gray) *RGB {
	out := NewRGB(g.W, g.H)
	for p, v := range g.Pix {
		i := 3 * p
		out.Pix[i], out.Pix[i+1], out.Pix[i+2] = v, v, v
	}
	return out
}

// BayerPattern identifies the 2×2 colour-filter-array layout of a raw frame.
type BayerPattern int

// Supported Bayer colour-filter layouts. The two letters name the first two
// pixels of the even rows; e.g. RGGB has R at (0,0), G at (1,0), G at (0,1),
// B at (1,1).
const (
	BayerRGGB BayerPattern = iota
	BayerBGGR
	BayerGRBG
	BayerGBRG
)

func (p BayerPattern) String() string {
	switch p {
	case BayerRGGB:
		return "RGGB"
	case BayerBGGR:
		return "BGGR"
	case BayerGRBG:
		return "GRBG"
	case BayerGBRG:
		return "GBRG"
	}
	return fmt.Sprintf("BayerPattern(%d)", int(p))
}

// Raw is a Bayer-mosaic sensor frame: one colour sample per pixel, stored as
// unsigned integers of Bits precision (typically 10 or 12).
type Raw struct {
	W, H    int
	Bits    int // sample precision in bits, 1..16
	Pattern BayerPattern
	Pix     []uint16
}

// NewRaw allocates a zero-filled raw frame with the given sample precision.
func NewRaw(w, h, bits int, pattern BayerPattern) *Raw {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("img: invalid dimensions %dx%d", w, h))
	}
	if bits < 1 || bits > 16 {
		panic(fmt.Sprintf("img: invalid raw bit depth %d", bits))
	}
	return &Raw{W: w, H: h, Bits: bits, Pattern: pattern, Pix: make([]uint16, w*h)}
}

// MaxValue returns the largest representable sample (2^Bits − 1).
func (r *Raw) MaxValue() uint16 { return uint16(1<<uint(r.Bits)) - 1 }

// At returns the sample at (x, y).
func (r *Raw) At(x, y int) uint16 { return r.Pix[y*r.W+x] }

// Set writes the sample at (x, y), saturating at the frame's bit depth.
func (r *Raw) Set(x, y int, v uint16) {
	if max := r.MaxValue(); v > max {
		v = max
	}
	r.Pix[y*r.W+x] = v
}

// ColorAt reports which colour channel (0=R, 1=G, 2=B) the CFA samples
// at pixel (x, y).
func (r *Raw) ColorAt(x, y int) int {
	ex, ey := x&1, y&1
	switch r.Pattern {
	case BayerRGGB:
		switch {
		case ex == 0 && ey == 0:
			return 0
		case ex == 1 && ey == 1:
			return 2
		default:
			return 1
		}
	case BayerBGGR:
		switch {
		case ex == 0 && ey == 0:
			return 2
		case ex == 1 && ey == 1:
			return 0
		default:
			return 1
		}
	case BayerGRBG:
		switch {
		case ex == 1 && ey == 0:
			return 0
		case ex == 0 && ey == 1:
			return 2
		default:
			return 1
		}
	case BayerGBRG:
		switch {
		case ex == 0 && ey == 1:
			return 0
		case ex == 1 && ey == 0:
			return 2
		default:
			return 1
		}
	}
	panic("img: unknown Bayer pattern")
}

// SizeBytes returns the number of bytes the frame occupies when packed at
// its native bit depth (e.g. 12-bit samples pack 2 pixels into 3 bytes),
// rounded up to a whole byte. This is the number used for communication-cost
// accounting throughout camsim.
func (r *Raw) SizeBytes() int64 {
	bits := int64(r.W) * int64(r.H) * int64(r.Bits)
	return (bits + 7) / 8
}

// Mosaic samples an RGB image through the CFA to produce a raw frame,
// quantizing [0,1] channel values to the target bit depth. Values outside
// [0, 1] are clamped.
func Mosaic(m *RGB, bits int, pattern BayerPattern) *Raw {
	out := NewRaw(m.W, m.H, bits, pattern)
	maxV := float32(out.MaxValue())
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			r, g, b := m.At(x, y)
			var v float32
			switch out.ColorAt(x, y) {
			case 0:
				v = r
			case 1:
				v = g
			default:
				v = b
			}
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			out.Pix[y*m.W+x] = uint16(v*maxV + 0.5)
		}
	}
	return out
}

// Demosaic reconstructs an RGB image from a Bayer raw frame using bilinear
// interpolation of the missing colour samples, returning channels in [0, 1].
func Demosaic(r *Raw) *RGB {
	out := NewRGB(r.W, r.H)
	inv := 1 / float32(r.MaxValue())
	at := func(x, y int) float32 {
		if x < 0 {
			x = 0
		} else if x >= r.W {
			x = r.W - 1
		}
		if y < 0 {
			y = 0
		} else if y >= r.H {
			y = r.H - 1
		}
		return float32(r.Pix[y*r.W+x]) * inv
	}
	for y := 0; y < r.H; y++ {
		for x := 0; x < r.W; x++ {
			var rgb [3]float32
			c := r.ColorAt(x, y)
			rgb[c] = at(x, y)
			switch c {
			case 1: // green pixel: interpolate R and B from the axis neighbours
				// Horizontal neighbours carry one of R/B, vertical the other.
				hc := r.ColorAt(x+1, y)
				vc := 2 - hc // the remaining non-green channel
				if hc == 1 || vc == 1 {
					// Degenerate at edges where ColorAt clamps; fall back to
					// averaging all four neighbours for both channels.
					avg := (at(x-1, y) + at(x+1, y) + at(x, y-1) + at(x, y+1)) / 4
					rgb[0], rgb[2] = avg, avg
				} else {
					rgb[hc] = (at(x-1, y) + at(x+1, y)) / 2
					rgb[vc] = (at(x, y-1) + at(x, y+1)) / 2
				}
			default: // red or blue pixel
				other := 2 - c
				rgb[1] = (at(x-1, y) + at(x+1, y) + at(x, y-1) + at(x, y+1)) / 4
				rgb[other] = (at(x-1, y-1) + at(x+1, y-1) + at(x-1, y+1) + at(x+1, y+1)) / 4
			}
			out.Set(x, y, rgb[0], rgb[1], rgb[2])
		}
	}
	return out
}

// GammaEncode applies the power-law transfer v^(1/gamma) to every pixel of a
// copy of g (values clamped to non-negative first).
func GammaEncode(g *Gray, gamma float64) *Gray {
	out := NewGray(g.W, g.H)
	inv := 1 / gamma
	for i, v := range g.Pix {
		if v < 0 {
			v = 0
		}
		out.Pix[i] = float32(math.Pow(float64(v), inv))
	}
	return out
}
