package img

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestPGMRoundTrip(t *testing.T) {
	g := randomImage(rand.New(rand.NewSource(1)), 13, 7)
	var buf bytes.Buffer
	if err := WritePGM(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.W != g.W || back.H != g.H {
		t.Fatalf("round trip size %dx%d", back.W, back.H)
	}
	// 8-bit quantization bounds the error by 1/510 + rounding.
	if mad := g.MeanAbsDiff(back); mad > 1.0/255 {
		t.Fatalf("round trip error %v", mad)
	}
}

func TestPGMClampsOutOfRange(t *testing.T) {
	g := NewGray(2, 1)
	copy(g.Pix, []float32{-0.5, 1.5})
	var buf bytes.Buffer
	if err := WritePGM(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Pix[0] != 0 || back.Pix[1] != 1 {
		t.Fatalf("clamping failed: %v", back.Pix)
	}
}

func TestReadPGMWithComments(t *testing.T) {
	data := "P5\n# a comment line\n2 1\n# another\n255\n\x10\x20"
	g, err := ReadPGM(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if g.W != 2 || g.H != 1 {
		t.Fatalf("size %dx%d", g.W, g.H)
	}
	if math.Abs(float64(g.Pix[0])-16.0/255) > 1e-6 {
		t.Fatalf("pixel 0 = %v", g.Pix[0])
	}
}

func TestReadPGM16Bit(t *testing.T) {
	data := "P5\n1 1\n65535\n\x80\x00"
	g, err := ReadPGM(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(g.Pix[0])-0x8000/65535.0) > 1e-6 {
		t.Fatalf("16-bit pixel = %v", g.Pix[0])
	}
}

func TestReadPGMRejectsBadMagic(t *testing.T) {
	if _, err := ReadPGM(strings.NewReader("P2\n1 1\n255\n0")); err == nil {
		t.Fatal("accepted ASCII PGM")
	}
}

func TestReadPGMRejectsTruncated(t *testing.T) {
	if _, err := ReadPGM(strings.NewReader("P5\n4 4\n255\nab")); err == nil {
		t.Fatal("accepted truncated pixel data")
	}
}

func TestReadPGMRejectsBadHeader(t *testing.T) {
	for _, hdr := range []string{"P5\n0 4\n255\n", "P5\n4 -1\n255\n", "P5\n4 4\n0\n", "P5\n4 4\n70000\n"} {
		if _, err := ReadPGM(strings.NewReader(hdr)); err == nil {
			t.Fatalf("accepted invalid header %q", hdr)
		}
	}
}

func TestPPMRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := NewRGB(5, 4)
	for i := range m.Pix {
		m.Pix[i] = rng.Float32()
	}
	var buf bytes.Buffer
	if err := WritePPM(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPPM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.W != m.W || back.H != m.H {
		t.Fatalf("round trip size %dx%d", back.W, back.H)
	}
	var maxErr float64
	for i := range m.Pix {
		if d := math.Abs(float64(m.Pix[i] - back.Pix[i])); d > maxErr {
			maxErr = d
		}
	}
	if maxErr > 1.0/255 {
		t.Fatalf("round trip error %v", maxErr)
	}
}

func TestReadPPMRejectsPGM(t *testing.T) {
	if _, err := ReadPPM(strings.NewReader("P5\n1 1\n255\nx")); err == nil {
		t.Fatal("ReadPPM accepted a PGM stream")
	}
}

func TestSavePGMToTempDir(t *testing.T) {
	g := randomImage(rand.New(rand.NewSource(2)), 4, 4)
	path := t.TempDir() + "/out.pgm"
	if err := SavePGM(path, g); err != nil {
		t.Fatal(err)
	}
}
