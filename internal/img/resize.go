package img

// ResizeBilinear resamples g to w×h using bilinear interpolation with
// half-pixel-centre alignment. Upscaling and downscaling are both supported,
// though heavy downscaling should use Downsample first to avoid aliasing.
func ResizeBilinear(g *Gray, w, h int) *Gray {
	out := NewGray(w, h)
	if w == 0 || h == 0 || g.W == 0 || g.H == 0 {
		return out
	}
	sx := float64(g.W) / float64(w)
	sy := float64(g.H) / float64(h)
	for y := 0; y < h; y++ {
		fy := (float64(y)+0.5)*sy - 0.5
		y0 := int(fy)
		if fy < 0 {
			fy, y0 = 0, 0
		}
		if y0 >= g.H-1 {
			y0 = g.H - 2
			if y0 < 0 {
				y0 = 0
			}
		}
		wy := float32(fy - float64(y0))
		if g.H == 1 {
			wy = 0
		}
		for x := 0; x < w; x++ {
			fx := (float64(x)+0.5)*sx - 0.5
			x0 := int(fx)
			if fx < 0 {
				fx, x0 = 0, 0
			}
			if x0 >= g.W-1 {
				x0 = g.W - 2
				if x0 < 0 {
					x0 = 0
				}
			}
			wx := float32(fx - float64(x0))
			if g.W == 1 {
				wx = 0
			}
			x1, y1 := x0+1, y0+1
			if x1 >= g.W {
				x1 = g.W - 1
			}
			if y1 >= g.H {
				y1 = g.H - 1
			}
			p00 := g.Pix[y0*g.W+x0]
			p10 := g.Pix[y0*g.W+x1]
			p01 := g.Pix[y1*g.W+x0]
			p11 := g.Pix[y1*g.W+x1]
			top := p00 + (p10-p00)*wx
			bot := p01 + (p11-p01)*wx
			out.Pix[y*w+x] = top + (bot-top)*wy
		}
	}
	return out
}

// Downsample halves the image n times by 2×2 box averaging (each call to a
// level rounds odd dimensions down; a 1-pixel dimension stays 1).
func Downsample(g *Gray, levels int) *Gray {
	cur := g
	for l := 0; l < levels; l++ {
		w, h := cur.W/2, cur.H/2
		if w < 1 {
			w = 1
		}
		if h < 1 {
			h = 1
		}
		next := NewGray(w, h)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				x0, y0 := 2*x, 2*y
				s := cur.AtClamped(x0, y0) + cur.AtClamped(x0+1, y0) +
					cur.AtClamped(x0, y0+1) + cur.AtClamped(x0+1, y0+1)
				next.Pix[y*w+x] = s / 4
			}
		}
		cur = next
	}
	return cur
}

// Pyramid returns levels+1 images: the original followed by `levels`
// successive 2× box-filtered downsamplings.
func Pyramid(g *Gray, levels int) []*Gray {
	out := make([]*Gray, 0, levels+1)
	out = append(out, g)
	cur := g
	for l := 0; l < levels; l++ {
		cur = Downsample(cur, 1)
		out = append(out, cur)
	}
	return out
}

// Translate shifts the image by (dx, dy) pixels (positive moves content
// right/down) with replicate edge handling. Fractional shifts interpolate
// bilinearly.
func Translate(g *Gray, dx, dy float64) *Gray {
	out := NewGray(g.W, g.H)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			out.Pix[y*g.W+x] = SampleBilinear(g, float64(x)-dx, float64(y)-dy)
		}
	}
	return out
}

// SampleBilinear samples g at the continuous coordinate (fx, fy) using
// bilinear interpolation with replicate edge handling.
func SampleBilinear(g *Gray, fx, fy float64) float32 {
	x0 := int(fastFloor(fx))
	y0 := int(fastFloor(fy))
	wx := float32(fx - float64(x0))
	wy := float32(fy - float64(y0))
	p00 := g.AtClamped(x0, y0)
	p10 := g.AtClamped(x0+1, y0)
	p01 := g.AtClamped(x0, y0+1)
	p11 := g.AtClamped(x0+1, y0+1)
	top := p00 + (p10-p00)*wx
	bot := p01 + (p11-p01)*wx
	return top + (bot-top)*wy
}

func fastFloor(v float64) float64 {
	f := float64(int64(v))
	if v < f {
		f--
	}
	return f
}
