package img

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// WritePGM encodes g as a binary (P5) PGM file. Pixels are clamped to [0,1]
// and quantized to 8 bits.
func WritePGM(w io.Writer, g *Gray) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", g.W, g.H); err != nil {
		return err
	}
	buf := make([]byte, g.W)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			v := g.Pix[y*g.W+x]
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			buf[x] = byte(v*255 + 0.5)
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SavePGM writes g to path as a binary PGM file.
func SavePGM(path string, g *Gray) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WritePGM(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadPGM decodes a binary (P5) PGM stream into a grayscale image with
// values scaled to [0, 1]. Both 8-bit and 16-bit maxval are supported.
func ReadPGM(r io.Reader) (*Gray, error) {
	br := bufio.NewReader(r)
	magic, err := pnmToken(br)
	if err != nil {
		return nil, err
	}
	if magic != "P5" {
		return nil, fmt.Errorf("img: not a binary PGM (magic %q)", magic)
	}
	w, err := pnmInt(br)
	if err != nil {
		return nil, err
	}
	h, err := pnmInt(br)
	if err != nil {
		return nil, err
	}
	maxv, err := pnmInt(br)
	if err != nil {
		return nil, err
	}
	if w <= 0 || h <= 0 || maxv <= 0 || maxv > 65535 {
		return nil, fmt.Errorf("img: invalid PGM header %dx%d maxval %d", w, h, maxv)
	}
	g := NewGray(w, h)
	inv := 1 / float32(maxv)
	if maxv < 256 {
		buf := make([]byte, w)
		for y := 0; y < h; y++ {
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, fmt.Errorf("img: short PGM data: %w", err)
			}
			for x, b := range buf {
				g.Pix[y*w+x] = float32(b) * inv
			}
		}
	} else {
		buf := make([]byte, 2*w)
		for y := 0; y < h; y++ {
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, fmt.Errorf("img: short PGM data: %w", err)
			}
			for x := 0; x < w; x++ {
				v := uint16(buf[2*x])<<8 | uint16(buf[2*x+1])
				g.Pix[y*w+x] = float32(v) * inv
			}
		}
	}
	return g, nil
}

// WritePPM encodes m as a binary (P6) PPM file with 8-bit channels.
func WritePPM(w io.Writer, m *RGB) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", m.W, m.H); err != nil {
		return err
	}
	buf := make([]byte, 3*m.W)
	for y := 0; y < m.H; y++ {
		for x := 0; x < 3*m.W; x++ {
			v := m.Pix[y*3*m.W+x]
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			buf[x] = byte(v*255 + 0.5)
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPPM decodes a binary (P6) PPM stream with 8-bit channels into an RGB
// image scaled to [0, 1].
func ReadPPM(r io.Reader) (*RGB, error) {
	br := bufio.NewReader(r)
	magic, err := pnmToken(br)
	if err != nil {
		return nil, err
	}
	if magic != "P6" {
		return nil, fmt.Errorf("img: not a binary PPM (magic %q)", magic)
	}
	w, err := pnmInt(br)
	if err != nil {
		return nil, err
	}
	h, err := pnmInt(br)
	if err != nil {
		return nil, err
	}
	maxv, err := pnmInt(br)
	if err != nil {
		return nil, err
	}
	if w <= 0 || h <= 0 || maxv != 255 {
		return nil, fmt.Errorf("img: unsupported PPM header %dx%d maxval %d", w, h, maxv)
	}
	m := NewRGB(w, h)
	buf := make([]byte, 3*w)
	for y := 0; y < h; y++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("img: short PPM data: %w", err)
		}
		for x := 0; x < 3*w; x++ {
			m.Pix[y*3*w+x] = float32(buf[x]) / 255
		}
	}
	return m, nil
}

// pnmToken reads the next whitespace-delimited token, skipping '#' comments.
func pnmToken(br *bufio.Reader) (string, error) {
	var tok []byte
	for {
		b, err := br.ReadByte()
		if err != nil {
			if len(tok) > 0 && err == io.EOF {
				return string(tok), nil
			}
			return "", err
		}
		switch {
		case b == '#':
			if _, err := br.ReadString('\n'); err != nil && err != io.EOF {
				return "", err
			}
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			if len(tok) > 0 {
				return string(tok), nil
			}
		default:
			tok = append(tok, b)
		}
	}
}

func pnmInt(br *bufio.Reader) (int, error) {
	tok, err := pnmToken(br)
	if err != nil {
		return 0, err
	}
	var n int
	if _, err := fmt.Sscanf(tok, "%d", &n); err != nil {
		return 0, fmt.Errorf("img: bad PNM integer %q", tok)
	}
	return n, nil
}
