package img

import (
	"math"
	"math/rand"
	"testing"
)

func TestBoxFilterConstant(t *testing.T) {
	g := NewGray(10, 10)
	g.Fill(0.4)
	out := BoxFilter(g, 3)
	for _, v := range out.Pix {
		if math.Abs(float64(v)-0.4) > 1e-6 {
			t.Fatalf("box filter broke constant image: %v", v)
		}
	}
}

func TestBoxFilterZeroRadiusIsCopy(t *testing.T) {
	g := randomImage(rand.New(rand.NewSource(1)), 6, 6)
	out := BoxFilter(g, 0)
	if mad := g.MeanAbsDiff(out); mad != 0 {
		t.Fatalf("r=0 box filter is not identity: %v", mad)
	}
	out.Set(0, 0, 99)
	if g.At(0, 0) == 99 {
		t.Fatal("r=0 box filter aliases input storage")
	}
}

func TestBoxFilterMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomImage(rng, 12, 9)
	r := 2
	out := BoxFilter(g, r)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			var s float64
			var n int
			for dy := -r; dy <= r; dy++ {
				for dx := -r; dx <= r; dx++ {
					xx, yy := x+dx, y+dy
					if xx < 0 || yy < 0 || xx >= g.W || yy >= g.H {
						continue
					}
					s += float64(g.At(xx, yy))
					n++
				}
			}
			want := s / float64(n)
			if math.Abs(float64(out.At(x, y))-want) > 1e-5 {
				t.Fatalf("box(%d,%d) = %v, want %v", x, y, out.At(x, y), want)
			}
		}
	}
}

func TestGaussianKernelNormalized(t *testing.T) {
	for _, sigma := range []float64{0.5, 1, 2.5, 4} {
		k := GaussianKernel(sigma)
		if len(k)%2 == 0 {
			t.Fatalf("sigma %v: even kernel length %d", sigma, len(k))
		}
		var sum float64
		for _, v := range k {
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("sigma %v: kernel sum %v", sigma, sum)
		}
		// Symmetry.
		for i := 0; i < len(k)/2; i++ {
			if k[i] != k[len(k)-1-i] {
				t.Fatalf("sigma %v: kernel not symmetric", sigma)
			}
		}
	}
}

func TestGaussianKernelDegenerateSigma(t *testing.T) {
	k := GaussianKernel(0)
	if len(k) != 1 || k[0] != 1 {
		t.Fatalf("sigma=0 kernel = %v, want [1]", k)
	}
}

func TestGaussianBlurPreservesMean(t *testing.T) {
	g := randomImage(rand.New(rand.NewSource(3)), 40, 40)
	out := GaussianBlur(g, 1.5)
	// Replicate edges distort the mean slightly; interior mass is preserved.
	if d := math.Abs(g.Mean() - out.Mean()); d > 0.01 {
		t.Fatalf("gaussian blur mean drift %v", d)
	}
}

func TestGaussianBlurReducesVariance(t *testing.T) {
	g := randomImage(rand.New(rand.NewSource(4)), 40, 40)
	out := GaussianBlur(g, 2)
	varOf := func(im *Gray) float64 {
		m := im.Mean()
		var s float64
		for _, v := range im.Pix {
			d := float64(v) - m
			s += d * d
		}
		return s / float64(len(im.Pix))
	}
	if varOf(out) >= varOf(g)/2 {
		t.Fatalf("blur did not reduce noise variance: %v -> %v", varOf(g), varOf(out))
	}
}

func TestSobelFlatIsZeroAndEdgeIsStrong(t *testing.T) {
	g := NewGray(16, 16)
	g.Fill(0.5)
	out := SobelMagnitude(g)
	for _, v := range out.Pix {
		if v != 0 {
			t.Fatalf("sobel of flat image nonzero: %v", v)
		}
	}
	// Vertical step edge at x=8.
	for y := 0; y < 16; y++ {
		for x := 8; x < 16; x++ {
			g.Set(x, y, 1)
		}
	}
	out = SobelMagnitude(g)
	if out.At(8, 8) < 1 {
		t.Fatalf("edge response %v too weak", out.At(8, 8))
	}
	if out.At(2, 8) != 0 {
		t.Fatalf("flat region response %v, want 0", out.At(2, 8))
	}
}

func TestMedian3RemovesImpulse(t *testing.T) {
	g := NewGray(9, 9)
	g.Fill(0.5)
	g.Set(4, 4, 1) // salt impulse
	out := Median3(g)
	if out.At(4, 4) != 0.5 {
		t.Fatalf("median did not remove impulse: %v", out.At(4, 4))
	}
}

func TestMedian3PreservesEdge(t *testing.T) {
	g := NewGray(8, 8)
	for y := 0; y < 8; y++ {
		for x := 4; x < 8; x++ {
			g.Set(x, y, 1)
		}
	}
	out := Median3(g)
	if out.At(3, 4) != 0 || out.At(4, 4) != 1 {
		t.Fatalf("median blurred the step edge: %v %v", out.At(3, 4), out.At(4, 4))
	}
}

func TestMedian9Value(t *testing.T) {
	w := [9]float32{9, 1, 8, 2, 7, 3, 6, 4, 5}
	if m := median9(&w); m != 5 {
		t.Fatalf("median9 = %v, want 5", m)
	}
}

func BenchmarkBoxFilter1MP(b *testing.B) {
	g := randomImage(rand.New(rand.NewSource(1)), 1024, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BoxFilter(g, 4)
	}
}

func BenchmarkGaussianBlur1MP(b *testing.B) {
	g := randomImage(rand.New(rand.NewSource(1)), 1024, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GaussianBlur(g, 1.5)
	}
}
