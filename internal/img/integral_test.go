package img

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveSum computes a rectangle sum directly for cross-checking.
func naiveSum(g *Gray, x, y, w, h int) float64 {
	var s float64
	for yy := y; yy < y+h; yy++ {
		for xx := x; xx < x+w; xx++ {
			s += float64(g.At(xx, yy))
		}
	}
	return s
}

func randomImage(rng *rand.Rand, w, h int) *Gray {
	g := NewGray(w, h)
	for i := range g.Pix {
		g.Pix[i] = rng.Float32()
	}
	return g
}

func TestIntegralMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := randomImage(rng, 17, 11)
	it := NewIntegral(g)
	for trial := 0; trial < 200; trial++ {
		x := rng.Intn(g.W)
		y := rng.Intn(g.H)
		w := 1 + rng.Intn(g.W-x)
		h := 1 + rng.Intn(g.H-y)
		got := it.Sum(x, y, w, h)
		want := naiveSum(g, x, y, w, h)
		if math.Abs(got-want) > 1e-4 {
			t.Fatalf("Sum(%d,%d,%d,%d) = %v, want %v", x, y, w, h, got, want)
		}
	}
}

func TestIntegralFullImageEqualsTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomImage(rng, 31, 9)
	it := NewIntegral(g)
	want := g.Mean() * float64(g.W*g.H)
	if got := it.Sum(0, 0, g.W, g.H); math.Abs(got-want) > 1e-4 {
		t.Fatalf("full sum %v, want %v", got, want)
	}
}

func TestIntegralZeroAreaRect(t *testing.T) {
	g := randomImage(rand.New(rand.NewSource(3)), 5, 5)
	it := NewIntegral(g)
	if s := it.Sum(2, 2, 0, 3); s != 0 {
		t.Fatalf("zero-width sum = %v", s)
	}
	if s := it.Sum(2, 2, 3, 0); s != 0 {
		t.Fatalf("zero-height sum = %v", s)
	}
	if m := it.Mean(1, 1, 0, 0); m != 0 {
		t.Fatalf("zero-area mean = %v", m)
	}
}

// TestIntegralAdditivity: the sum over a rectangle equals the sum of its
// left and right halves — the defining property of a summed-area table.
func TestIntegralAdditivity(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := randomImage(rng, 24, 16)
	it := NewIntegral(g)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := r.Intn(g.W - 1)
		y := r.Intn(g.H)
		w := 2 + r.Intn(g.W-x-1)
		if x+w > g.W {
			w = g.W - x
		}
		h := 1 + r.Intn(g.H-y)
		split := 1 + r.Intn(w-1)
		whole := it.Sum(x, y, w, h)
		parts := it.Sum(x, y, split, h) + it.Sum(x+split, y, w-split, h)
		return math.Abs(whole-parts) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSquaredIntegralVariance(t *testing.T) {
	g := NewGray(4, 1)
	copy(g.Pix, []float32{1, 2, 3, 4})
	plain := NewIntegral(g)
	sq := NewSquaredIntegral(g)
	mean, variance := WindowStats(plain, sq, 0, 0, 4, 1)
	if math.Abs(mean-2.5) > 1e-9 {
		t.Fatalf("mean = %v, want 2.5", mean)
	}
	if math.Abs(variance-1.25) > 1e-9 {
		t.Fatalf("variance = %v, want 1.25", variance)
	}
}

func TestWindowStatsConstantImageHasZeroVariance(t *testing.T) {
	g := NewGray(8, 8)
	g.Fill(0.75)
	plain := NewIntegral(g)
	sq := NewSquaredIntegral(g)
	_, variance := WindowStats(plain, sq, 1, 2, 5, 4)
	if variance != 0 {
		t.Fatalf("constant image variance = %v, want exactly 0 (clamped)", variance)
	}
}

func TestWindowStatsZeroArea(t *testing.T) {
	g := NewGray(4, 4)
	plain := NewIntegral(g)
	sq := NewSquaredIntegral(g)
	mean, variance := WindowStats(plain, sq, 0, 0, 0, 0)
	if mean != 0 || variance != 0 {
		t.Fatalf("zero-area stats = %v, %v", mean, variance)
	}
}

func BenchmarkIntegralBuild1MP(b *testing.B) {
	g := randomImage(rand.New(rand.NewSource(1)), 1024, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewIntegral(g)
	}
}
