package img

import "math"

// BoxFilter applies a (2r+1)×(2r+1) mean filter using a summed-area table,
// with windows clipped at the image borders (so edge pixels average over the
// in-bounds part of the window only). It runs in O(W·H) independent of r.
func BoxFilter(g *Gray, r int) *Gray {
	if r <= 0 {
		return g.Clone()
	}
	it := NewIntegral(g)
	out := NewGray(g.W, g.H)
	for y := 0; y < g.H; y++ {
		y0 := y - r
		if y0 < 0 {
			y0 = 0
		}
		y1 := y + r + 1
		if y1 > g.H {
			y1 = g.H
		}
		for x := 0; x < g.W; x++ {
			x0 := x - r
			if x0 < 0 {
				x0 = 0
			}
			x1 := x + r + 1
			if x1 > g.W {
				x1 = g.W
			}
			n := float64((x1 - x0) * (y1 - y0))
			out.Pix[y*g.W+x] = float32(it.Sum(x0, y0, x1-x0, y1-y0) / n)
		}
	}
	return out
}

// GaussianKernel returns a normalized 1-D Gaussian kernel with the given
// standard deviation, truncated at ±3σ (minimum radius 1).
func GaussianKernel(sigma float64) []float32 {
	if sigma <= 0 {
		return []float32{1}
	}
	r := int(math.Ceil(3 * sigma))
	if r < 1 {
		r = 1
	}
	k := make([]float32, 2*r+1)
	var sum float64
	for i := -r; i <= r; i++ {
		v := math.Exp(-float64(i*i) / (2 * sigma * sigma))
		k[i+r] = float32(v)
		sum += v
	}
	inv := float32(1 / sum)
	for i := range k {
		k[i] *= inv
	}
	return k
}

// GaussianBlur applies a separable Gaussian blur with standard deviation
// sigma and replicate edge handling.
func GaussianBlur(g *Gray, sigma float64) *Gray {
	k := GaussianKernel(sigma)
	return convolveSeparable(g, k)
}

// convolveSeparable applies the same odd-length 1-D kernel horizontally then
// vertically with replicate edges.
func convolveSeparable(g *Gray, k []float32) *Gray {
	r := len(k) / 2
	tmp := NewGray(g.W, g.H)
	for y := 0; y < g.H; y++ {
		row := y * g.W
		for x := 0; x < g.W; x++ {
			var s float32
			for i := -r; i <= r; i++ {
				xi := x + i
				if xi < 0 {
					xi = 0
				} else if xi >= g.W {
					xi = g.W - 1
				}
				s += k[i+r] * g.Pix[row+xi]
			}
			tmp.Pix[row+x] = s
		}
	}
	out := NewGray(g.W, g.H)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			var s float32
			for i := -r; i <= r; i++ {
				yi := y + i
				if yi < 0 {
					yi = 0
				} else if yi >= g.H {
					yi = g.H - 1
				}
				s += k[i+r] * tmp.Pix[yi*g.W+x]
			}
			out.Pix[y*g.W+x] = s
		}
	}
	return out
}

// SobelMagnitude returns the gradient magnitude of g computed with 3×3 Sobel
// operators (replicate edges).
func SobelMagnitude(g *Gray) *Gray {
	out := NewGray(g.W, g.H)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			p := func(dx, dy int) float32 { return g.AtClamped(x+dx, y+dy) }
			gx := -p(-1, -1) - 2*p(-1, 0) - p(-1, 1) + p(1, -1) + 2*p(1, 0) + p(1, 1)
			gy := -p(-1, -1) - 2*p(0, -1) - p(1, -1) + p(-1, 1) + 2*p(0, 1) + p(1, 1)
			out.Pix[y*g.W+x] = float32(math.Sqrt(float64(gx*gx + gy*gy)))
		}
	}
	return out
}

// Median3 applies a 3×3 median filter with replicate edges, used as a cheap
// denoiser in the VR pre-processing block.
func Median3(g *Gray) *Gray {
	out := NewGray(g.W, g.H)
	var w [9]float32
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			i := 0
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					w[i] = g.AtClamped(x+dx, y+dy)
					i++
				}
			}
			out.Pix[y*g.W+x] = median9(&w)
		}
	}
	return out
}

// median9 returns the median of nine values via partial insertion sort:
// only the first five sorted positions are needed.
func median9(w *[9]float32) float32 {
	for i := 1; i < 9; i++ {
		v := w[i]
		j := i - 1
		for j >= 0 && w[j] > v {
			w[j+1] = w[j]
			j--
		}
		w[j+1] = v
	}
	return w[4]
}
