package img

import (
	"math"
	"testing"
)

func TestFillRectClips(t *testing.T) {
	g := NewGray(4, 4)
	FillRect(g, -2, -2, 4, 4, 1) // only the 2x2 top-left overlap is inside
	var count int
	for _, v := range g.Pix {
		if v == 1 {
			count++
		}
	}
	if count != 4 {
		t.Fatalf("filled %d pixels, want 4", count)
	}
	if g.At(0, 0) != 1 || g.At(1, 1) != 1 || g.At(2, 2) != 0 {
		t.Fatal("wrong pixels filled")
	}
}

func TestFillRectFullyOutsideIsNoop(t *testing.T) {
	g := NewGray(4, 4)
	FillRect(g, 10, 10, 3, 3, 1)
	for _, v := range g.Pix {
		if v != 0 {
			t.Fatal("out-of-bounds rect modified image")
		}
	}
}

func TestBlendRectAlpha(t *testing.T) {
	g := NewGray(2, 2)
	g.Fill(0.2)
	BlendRect(g, 0, 0, 2, 2, 1, 0.5)
	for _, v := range g.Pix {
		if math.Abs(float64(v)-0.6) > 1e-6 {
			t.Fatalf("blend result %v, want 0.6", v)
		}
	}
}

func TestFillEllipseCentreAndOutside(t *testing.T) {
	g := NewGray(21, 21)
	FillEllipse(g, 10, 10, 6, 4, 1)
	if g.At(10, 10) != 1 {
		t.Fatalf("centre %v, want 1", g.At(10, 10))
	}
	if g.At(0, 0) != 0 || g.At(10, 2) != 0 {
		t.Fatal("pixels outside ellipse were painted")
	}
	// Interior point on the long axis.
	if g.At(14, 10) != 1 {
		t.Fatalf("interior point %v, want 1", g.At(14, 10))
	}
}

func TestFillEllipseDegenerateRadii(t *testing.T) {
	g := NewGray(8, 8)
	FillEllipse(g, 4, 4, 0, 3, 1)
	for _, v := range g.Pix {
		if v != 0 {
			t.Fatal("degenerate ellipse painted pixels")
		}
	}
}

func TestDrawLineHorizontalVertical(t *testing.T) {
	g := NewGray(8, 8)
	DrawLine(g, 1, 3, 6, 3, 1)
	for x := 1; x <= 6; x++ {
		if g.At(x, 3) != 1 {
			t.Fatalf("horizontal line missing pixel at x=%d", x)
		}
	}
	DrawLine(g, 2, 1, 2, 6, 0.5)
	for y := 1; y <= 6; y++ {
		if g.At(2, y) != 0.5 && !(y == 3 && g.At(2, y) == 0.5) {
			if g.At(2, y) != 0.5 {
				t.Fatalf("vertical line missing pixel at y=%d: %v", y, g.At(2, y))
			}
		}
	}
}

func TestDrawLineDiagonalEndpoints(t *testing.T) {
	g := NewGray(8, 8)
	DrawLine(g, 0, 0, 7, 7, 1)
	if g.At(0, 0) != 1 || g.At(7, 7) != 1 || g.At(3, 3) != 1 {
		t.Fatal("diagonal line missing endpoints or midpoint")
	}
}

func TestDrawLineClipsOutOfBounds(t *testing.T) {
	g := NewGray(4, 4)
	DrawLine(g, -3, -3, 8, 8, 1) // must not panic
	if g.At(1, 1) != 1 {
		t.Fatal("clipped diagonal missing interior pixel")
	}
}

func TestDrawRectOutline(t *testing.T) {
	g := NewGray(10, 10)
	DrawRectOutline(g, 2, 2, 5, 4, 1)
	// Corners.
	for _, c := range [][2]int{{2, 2}, {6, 2}, {2, 5}, {6, 5}} {
		if g.At(c[0], c[1]) != 1 {
			t.Fatalf("corner (%d,%d) not drawn", c[0], c[1])
		}
	}
	// Interior stays empty.
	if g.At(4, 3) != 0 {
		t.Fatal("outline filled interior")
	}
}
